module uniask

go 1.22
