package uniask_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"uniask"
)

func newSystem(t *testing.T) (*uniask.System, *uniask.Corpus) {
	t.Helper()
	corpus := uniask.SyntheticCorpus(200, 7)
	sys, err := uniask.NewFromCorpus(context.Background(), corpus, uniask.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, corpus
}

func TestQuickstartFlow(t *testing.T) {
	sys, corpus := newSystem(t)
	if sys.IndexedChunks() < len(corpus.Docs) {
		t.Fatalf("indexed %d chunks for %d docs", sys.IndexedChunks(), len(corpus.Docs))
	}
	d := corpus.Docs[0]
	resp, err := sys.Ask(context.Background(), "Come posso "+strings.ToLower(d.Title)+"?")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer == "" {
		t.Fatal("empty answer")
	}
	if len(resp.Documents) == 0 {
		t.Fatal("no documents")
	}
}

func TestSearchAPI(t *testing.T) {
	sys, corpus := newSystem(t)
	res, err := sys.Search(context.Background(), corpus.Docs[3].Title)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].ParentID == "" || res[0].Title == "" {
		t.Fatalf("result incomplete: %+v", res[0])
	}
}

func TestIndexHTMLIncremental(t *testing.T) {
	sys := uniask.New(uniask.Config{})
	html := `<html><head><title>Pagina incrementale</title></head><body>
<p>Per attivare il servizio speciale degli incrementi chiamare il numero interno.</p></body></html>`
	if err := sys.IndexHTML(context.Background(), "extra1", html); err != nil {
		t.Fatal(err)
	}
	if sys.IndexedChunks() == 0 {
		t.Fatal("nothing indexed")
	}
	res, err := sys.Search(context.Background(), "servizio speciale incrementi")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ParentID != "extra1" {
		t.Fatalf("results = %+v", res)
	}
}

func TestGuardrailOnOffTopic(t *testing.T) {
	sys, _ := newSystem(t)
	resp, err := sys.Ask(context.Background(), "Qual è la ricetta della carbonara?")
	if err != nil {
		t.Fatal(err)
	}
	if resp.AnswerValid {
		t.Fatalf("off-topic question got a valid answer: %q", resp.Answer)
	}
	if resp.Guardrail.String() == "none" {
		t.Fatal("no guardrail reported")
	}
}

func TestNewServerServesTraffic(t *testing.T) {
	sys, _ := newSystem(t)
	srv := sys.NewServer()
	if srv == nil || srv.Engine != sys.Engine() {
		t.Fatal("server not wired to engine")
	}
}

func TestSaveLoadIndex(t *testing.T) {
	sys, corpus := newSystem(t)
	var buf bytes.Buffer
	if err := sys.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh system sharing the same lexicon loads the snapshot.
	sys2 := uniask.New(uniask.Config{Lexicon: corpus.Lexicon()})
	if err := sys2.LoadIndex(&buf); err != nil {
		t.Fatal(err)
	}
	if sys2.IndexedChunks() != sys.IndexedChunks() {
		t.Fatalf("chunks %d != %d", sys2.IndexedChunks(), sys.IndexedChunks())
	}
	a, _ := sys.Search(context.Background(), corpus.Docs[0].Title)
	b, _ := sys2.Search(context.Background(), corpus.Docs[0].Title)
	if len(a) == 0 || len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("restored search differs: %v vs %v", a[:min(2, len(a))], b[:min(2, len(b))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
