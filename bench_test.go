// Benchmarks regenerating every table and figure of the paper's evaluation
// plus ablation benches for the design choices called out in DESIGN.md.
// Shape numbers (MRR, rates, failure counts) are attached to each benchmark
// through b.ReportMetric, so `go test -bench . -benchmem` both times the
// pipelines and reproduces the experiment outcomes. cmd/uniask-bench prints
// the same results as formatted tables.
package uniask_test

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"uniask/internal/chunker"
	"uniask/internal/eval"
	"uniask/internal/experiments"
	"uniask/internal/guardrails"
	"uniask/internal/index"
	"uniask/internal/kb"
	"uniask/internal/rouge"
	"uniask/internal/search"
	"uniask/internal/vector"
)

// benchEnv is shared across benchmarks; building it (corpus generation +
// indexing) is excluded from every timing loop.
var (
	benchOnce sync.Once
	benchE    *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchE, benchErr = experiments.Setup(context.Background(),
			experiments.Scale{Docs: 2000, Human: 300, Keyword: 150, Seed: 1})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchE
}

// ---------------------------------------------------------------------------
// Table 1 — retrieval performance, UniAsk vs the previous engine.

func BenchmarkTable1_HumanRetrieval(b *testing.B) {
	env := benchEnvironment(b)
	hss := env.UniAskRetriever(search.Options{})
	prev := env.PrevRetriever()
	var uni, old eval.Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uni = eval.Evaluate(env.HumanTest, hss)
		old = eval.Evaluate(env.HumanTest, prev)
	}
	b.ReportMetric(uni.OverAll.MRR, "uniask-MRR")
	b.ReportMetric(old.OverAll.MRR, "prev-MRR")
	b.ReportMetric(100*old.AnsweredRate(), "prev-answered-%")
}

func BenchmarkTable1_KeywordRetrieval(b *testing.B) {
	env := benchEnvironment(b)
	hss := env.UniAskRetriever(search.Options{})
	prev := env.PrevRetriever()
	var uni, old eval.Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uni = eval.Evaluate(env.KeywordTest, hss)
		old = eval.Evaluate(env.KeywordTest, prev)
	}
	b.ReportMetric(uni.OverAll.MRR, "uniask-MRR")
	b.ReportMetric(old.OverAll.MRR, "prev-MRR")
}

// ---------------------------------------------------------------------------
// Table 2 — hybrid-search component ablation.

func BenchmarkTable2_Ablation(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.Table2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = env.Table2()
	}
	b.ReportMetric(r.HumanText.MRR, "human-text-MRRvar-%")
	b.ReportMetric(r.HumanVector.MRR, "human-vector-MRRvar-%")
	b.ReportMetric(r.KeywordText.MRR, "kw-text-MRRvar-%")
	b.ReportMetric(r.KeywordVector.MRR, "kw-vector-MRRvar-%")
}

// ---------------------------------------------------------------------------
// Table 3 — query expansion and title boosting.

func BenchmarkTable3_QueryExpansion(b *testing.B) {
	env := benchEnvironment(b)
	hss := eval.Evaluate(env.HumanTest, env.UniAskRetriever(search.Options{}))
	var qga eval.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qga = eval.VarTable(hss, eval.Evaluate(env.HumanTest,
			env.UniAskRetriever(search.Options{Expansion: search.QGA})))
	}
	b.ReportMetric(qga.MRR, "QGA-MRRvar-%")
}

func BenchmarkTable3_TitleBoost(b *testing.B) {
	env := benchEnvironment(b)
	hss := eval.Evaluate(env.HumanTest, env.UniAskRetriever(search.Options{}))
	var t500 eval.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t500 = eval.VarTable(hss, eval.Evaluate(env.HumanTest,
			env.UniAskRetriever(search.Options{TitleBoost: 500})))
	}
	b.ReportMetric(t500.R50, "T500-r50var-%")
}

// ---------------------------------------------------------------------------
// Table 4 — index enrichment with LLM keywords (rebuilds the index, so it
// runs at reduced scale inside the loop body).

func BenchmarkTable4_KeywordEnrichment(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.Table4Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = env.Table4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.HumanKT.MRR, "HSS-KT-MRRvar-%")
	b.ReportMetric(r.HumanKTC.MRR, "HSS-KTC-MRRvar-%")
}

// ---------------------------------------------------------------------------
// Table 5 — guardrail distribution over the full RAG pipeline.

func BenchmarkTable5_Guardrails(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.Table5Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = env.Table5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rate(r.Generated), "generated-%")
	b.ReportMetric(r.Rate(r.Citation), "citation-%")
	b.ReportMetric(r.Rate(r.Rouge), "rouge-%")
}

// ---------------------------------------------------------------------------
// Figure 2 — LLM-service load test (60 virtual minutes per iteration).

func BenchmarkFigure2_LoadTest(b *testing.B) {
	var rep = experiments.Figure2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = experiments.Figure2()
	}
	b.ReportMetric(float64(rep.TotalRequests), "requests")
	b.ReportMetric(float64(rep.TotalFailures), "failures")
}

// ---------------------------------------------------------------------------
// Figure 3 — monitoring dashboard over replayed traffic.

func BenchmarkFigure3_Dashboard(b *testing.B) {
	env := benchEnvironment(b)
	d, err := env.Figure3(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err = env.Figure3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.Queries), "queries")
	b.ReportMetric(float64(d.GuardrailsTriggered), "guardrails")
}

// ---------------------------------------------------------------------------
// §8 — UAT.

func BenchmarkPilot_UAT(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.PilotsResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = env.Pilots(context.Background())
	}
	b.ReportMetric(100*r.UAT.Correct, "uat-correct-%")
	b.ReportMetric(100*r.UAT.GuardrailsOK, "uat-guardrails-ok-%")
}

// ---------------------------------------------------------------------------
// Ablation benches for DESIGN.md §4 design choices.

// BenchmarkAblationANN verifies the paper's observation that HNSW and
// exhaustive k-NN yield similar retrieval results, and times both.
func BenchmarkAblationANN(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	dim, n, k := 128, 5000, 15
	vecs := make([]vector.Vector, n)
	for i := range vecs {
		v := make(vector.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = vector.Normalize(v)
	}
	queries := make([]vector.Vector, 50)
	for i := range queries {
		v := make(vector.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		queries[i] = vector.Normalize(v)
	}
	build := func(ix vector.Index) {
		for i, v := range vecs {
			ix.Add(i, v)
		}
	}
	hnsw := vector.NewHNSW(vector.HNSWConfig{Seed: 1, EfConstruction: 80})
	exact := vector.NewExhaustive()
	build(hnsw)
	build(exact)

	// Recall parity check (outside the timed loop).
	hits, total := 0, 0
	for _, q := range queries {
		truth := map[int]bool{}
		for _, r := range exact.Search(q, k) {
			truth[r.ID] = true
		}
		for _, r := range hnsw.Search(q, k) {
			if truth[r.ID] {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)

	b.Run("hnsw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hnsw.Search(queries[i%len(queries)], k)
		}
		b.ReportMetric(recall, "recall-vs-exact")
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			exact.Search(queries[i%len(queries)], k)
		}
	})
}

// BenchmarkAblationChunking compares the adopted HTML-paragraph splitter
// with the rejected recursive character splitter.
func BenchmarkAblationChunking(b *testing.B) {
	corpus := kb.Generate(kb.GenConfig{Docs: 200, Seed: 5})
	htmlSplit := &chunker.HTMLSplitter{}
	recSplit := &chunker.RecursiveSplitter{}
	b.Run("html-paragraph", func(b *testing.B) {
		b.ReportAllocs()
		chunks := 0
		for i := 0; i < b.N; i++ {
			chunks = 0
			for _, d := range corpus.Docs {
				chunks += len(htmlSplit.SplitHTML(d.HTML))
			}
		}
		b.ReportMetric(float64(chunks)/float64(len(corpus.Docs)), "chunks/doc")
	})
	b.Run("recursive-character", func(b *testing.B) {
		b.ReportAllocs()
		chunks := 0
		for i := 0; i < b.N; i++ {
			chunks = 0
			for _, d := range corpus.Docs {
				chunks += len(recSplit.Split(d.HTML))
			}
		}
		b.ReportMetric(float64(chunks)/float64(len(corpus.Docs)), "chunks/doc")
	})
}

// BenchmarkAblationVectorK reproduces the §7 K sweep that selected K=15.
func BenchmarkAblationVectorK(b *testing.B) {
	env := benchEnvironment(b)
	for _, k := range []int{3, 15, 50} {
		k := k
		b.Run(map[int]string{3: "K3", 15: "K15", 50: "K50"}[k], func(b *testing.B) {
			retr := env.UniAskRetriever(search.Options{VectorK: k})
			var s eval.Summary
			for i := 0; i < b.N; i++ {
				s = eval.Evaluate(env.HumanVal, retr)
			}
			b.ReportMetric(s.OverAll.MRR, "MRR")
		})
	}
}

// BenchmarkAblationRRFC sweeps the RRF constant around the deployed c=60.
func BenchmarkAblationRRFC(b *testing.B) {
	env := benchEnvironment(b)
	for _, c := range []int{10, 60, 240} {
		c := c
		b.Run(map[int]string{10: "c10", 60: "c60", 240: "c240"}[c], func(b *testing.B) {
			retr := env.UniAskRetriever(search.Options{RRFC: c})
			var s eval.Summary
			for i := 0; i < b.N; i++ {
				s = eval.Evaluate(env.HumanVal, retr)
			}
			b.ReportMetric(s.OverAll.MRR, "MRR")
		})
	}
}

// BenchmarkAblationGuardrailThreshold shows the block-rate consequences of
// the ROUGE-L threshold (deployed: 0.15; the release-1 bug behaved like a
// much higher one).
func BenchmarkAblationGuardrailThreshold(b *testing.B) {
	env := benchEnvironment(b)
	answers := make([]string, 0, 50)
	contexts := make([][]string, 0, 50)
	for _, q := range env.HumanTest.Queries[:50] {
		resp, err := env.Engine.Ask(context.Background(), q.Text)
		if err != nil {
			b.Fatal(err)
		}
		answers = append(answers, resp.GeneratedAnswer)
		var ctxs []string
		for i, d := range resp.Documents {
			if i == 4 {
				break
			}
			ctxs = append(ctxs, d.Content)
		}
		contexts = append(contexts, ctxs)
	}
	for _, th := range []float64{0.15, 0.30, 0.45} {
		th := th
		name := map[float64]string{0.15: "t015", 0.30: "t030", 0.45: "t045"}[th]
		b.Run(name, func(b *testing.B) {
			blocked := 0
			for i := 0; i < b.N; i++ {
				blocked = 0
				for j, a := range answers {
					if rouge.MaxLAgainst(a, contexts[j]) < th {
						blocked++
					}
				}
			}
			b.ReportMetric(100*float64(blocked)/float64(len(answers)), "blocked-%")
		})
	}
	_ = guardrails.DefaultRougeThreshold
}

// BenchmarkAskEndToEnd times the full query flow (retrieve + generate +
// guardrails) per question.
func BenchmarkAskEndToEnd(b *testing.B) {
	env := benchEnvironment(b)
	qs := env.HumanTest.Queries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Engine.Ask(context.Background(), qs[i%len(qs)].Text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexingThroughput times the ingestion+indexing pipeline.
func BenchmarkIndexingThroughput(b *testing.B) {
	corpus := kb.Generate(kb.GenConfig{Docs: 300, Seed: 17})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := experiments.Setup(context.Background(),
			experiments.Scale{Docs: 300, Human: 10, Keyword: 10, Seed: int64(i + 100)})
		if err != nil {
			b.Fatal(err)
		}
		_ = env
	}
	b.ReportMetric(float64(len(corpus.Docs)), "docs")
}

// BenchmarkAblationChunkSize sweeps the 512-token chunk-size choice.
func BenchmarkAblationChunkSize(b *testing.B) {
	corpus := kb.Generate(kb.GenConfig{Docs: 150, Seed: 23})
	for _, size := range []int{128, 512, 1024} {
		size := size
		name := map[int]string{128: "t128", 512: "t512", 1024: "t1024"}[size]
		b.Run(name, func(b *testing.B) {
			sp := &chunker.HTMLSplitter{TargetTokens: size}
			chunks, tokens := 0, 0
			for i := 0; i < b.N; i++ {
				chunks, tokens = 0, 0
				for _, d := range corpus.Docs {
					for _, c := range sp.SplitHTML(d.HTML) {
						chunks++
						tokens += c.Tokens
					}
				}
			}
			b.ReportMetric(float64(chunks)/float64(len(corpus.Docs)), "chunks/doc")
			if chunks > 0 {
				b.ReportMetric(float64(tokens)/float64(chunks), "tokens/chunk")
			}
		})
	}
}

// BenchmarkIndexPersistence times index save/load against a fresh rebuild.
func BenchmarkIndexPersistence(b *testing.B) {
	env := benchEnvironment(b)
	var buf bytes.Buffer
	if err := env.Engine.Index.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := env.Engine.Index.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.Read(bytes.NewReader(data), index.Config{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(data))/1e6, "MB")
	})
}
