// Package uniask is the public API of the UniAsk reproduction: a
// Retrieval-Augmented-Generation search system for enterprise knowledge
// bases, after "UniAsk: AI-powered search for banking knowledge bases"
// (EDBT 2025).
//
// A System wraps the full pipeline the paper describes: HTML ingestion and
// paragraph-aware chunking, a hybrid index (Italian-analyzed BM25 full-text
// search plus HNSW vector search over synthetic embeddings), Reciprocal
// Rank Fusion with semantic reranking, grounded answer generation with
// citations through a chat-completion LLM interface, and the guardrail
// pipeline (ROUGE-L, citation, clarification, content filter).
//
// Quick start:
//
//	corpus := uniask.SyntheticCorpus(1000, 42)
//	sys, err := uniask.NewFromCorpus(context.Background(), corpus, uniask.Config{})
//	if err != nil { ... }
//	resp, err := sys.Ask(context.Background(), "Come posso bloccare la carta di credito?")
//	fmt.Println(resp.Answer)
package uniask

import (
	"context"
	"fmt"
	"io"
	"time"

	"uniask/internal/core"
	"uniask/internal/embedding"
	"uniask/internal/eventlog"
	"uniask/internal/guardrails"
	"uniask/internal/indexer"
	"uniask/internal/ingest"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/pipeline"
	"uniask/internal/queue"
	"uniask/internal/search"
	"uniask/internal/server"
	"uniask/internal/tenant"
	"uniask/internal/trace"
)

// Config configures a System. The zero value reproduces the deployed
// configuration of the paper: 512-token chunks, m=4 context chunks,
// ROUGE-L guardrail threshold 0.15, hybrid search with n=50/K=15/c=60 and
// semantic reranking.
type Config struct {
	// LLM is the chat-completion backend. Nil selects the built-in
	// deterministic simulator.
	LLM llm.Client
	// Lexicon is the concept lexicon driving the synthetic embedder's (and
	// simulator's) paraphrase understanding. NewFromCorpus fills it from
	// the corpus automatically.
	Lexicon embedding.Lexicon
	// EmbeddingDim overrides the embedding dimensionality (default 256).
	EmbeddingDim int
	// ChunkTokens overrides the chunk-size target (default 512).
	ChunkTokens int
	// M overrides the number of context chunks given to the LLM (default 4).
	M int
	// RougeThreshold overrides the ROUGE-L guardrail threshold (default 0.15).
	RougeThreshold float64
	// EnrichSummary asks the LLM for a per-document summary at indexing
	// time, stored as retrievable metadata.
	EnrichSummary bool
	// SearchOptions overrides the default retrieval configuration.
	SearchOptions search.Options
	// SearchWorkers bounds the concurrent retrieval fan-out (BM25 + one
	// ANN search per vector field run in parallel; default: one worker
	// per CPU). 1 forces fully sequential retrieval.
	SearchWorkers int
	// ShardCount splits the index into N hash-routed shards built and
	// searched in parallel, with results merged into the exact ranking a
	// monolithic index would return (see docs/OPERATIONS.md). 0 or 1 keeps
	// the single monolithic index.
	ShardCount int
	// RemoteShards lists uniask-shard server endpoints (host:port). When
	// non-empty the index shards live on those servers instead of
	// in-process: each logical shard is replicated on RemoteReplication
	// endpoints, reads hedge across replicas, and rankings stay
	// byte-identical to the local topologies (see docs/OPERATIONS.md §
	// remote shards). The servers must run the same schema configuration.
	RemoteShards []string
	// RemoteReplication is how many endpoints host each shard (default 2).
	RemoteReplication int
	// MemtableMaxDocs seals a store's mutable memtable into an immutable
	// sealed segment once it holds this many chunks (0 = 1024; negative
	// disables auto-sealing so only end-of-ingestion publication seals).
	// See docs/OPERATIONS.md for sizing guidance.
	MemtableMaxDocs int
	// CompactionFanIn is how many adjacent sealed segments one background
	// compaction merges (0 = 4; negative disables background compaction).
	CompactionFanIn int
	// DisableVectorQuantization makes ANN search traverse full float32
	// vectors instead of the int8 quantized arena (exact traversal, ~4×
	// the memory bandwidth). See docs/OPERATIONS.md.
	DisableVectorQuantization bool
	// Observer receives per-stage pipeline reports for every query
	// (latency, sizes, errors). NewServer overrides it with the server's
	// metrics registry; set it here for custom instrumentation.
	Observer pipeline.Observer
	// TraceCapacity bounds the in-memory trace store behind /api/traces
	// (0 = the default 2048 retained traces; negative disables per-request
	// tracing entirely).
	TraceCapacity int
	// TraceSampleRate is the head-sampling probability in (0, 1]; 0 records
	// every request. Error, degraded and slow traces are tail-retained
	// regardless of store pressure once sampled.
	TraceSampleRate float64
	// TraceSlowThreshold is the latency at which a trace counts as slow and
	// is always retained (0 = 250ms; negative disables the slow rule).
	TraceSlowThreshold time.Duration
}

// System is a fully assembled UniAsk instance.
type System struct {
	engine *core.Engine
}

// Response is the outcome of an Ask call: the answer (or the apology /
// clarification message when a guardrail fired), the guardrail verdict,
// the citations and the retrieved document list.
type Response = core.Response

// Result is one retrieved chunk.
type Result = search.Result

// Corpus is a synthetic knowledge base (see SyntheticCorpus).
type Corpus = kb.Corpus

// AdmissionConfig tunes the multi-tenant admission front door (slots,
// queue depths, class weights) — see MultiTenantConfig.Admission.
type AdmissionConfig = tenant.AdmissionConfig

// coreConfig lowers the public Config to the engine configuration — shared
// by New and the multi-tenant per-tenant engine factory.
func (cfg Config) coreConfig() core.Config {
	return core.Config{
		LLM:          cfg.LLM,
		EmbeddingDim: cfg.EmbeddingDim,
		Lexicon:      cfg.Lexicon,
		Indexer: indexer.Config{
			ChunkTokens:   cfg.ChunkTokens,
			EnrichSummary: cfg.EnrichSummary,
		},
		Guardrails:                guardrails.Config{RougeThreshold: cfg.RougeThreshold},
		M:                         cfg.M,
		SearchOptions:             cfg.SearchOptions,
		Observer:                  cfg.Observer,
		SearchWorkers:             cfg.SearchWorkers,
		ShardCount:                cfg.ShardCount,
		RemoteShards:              cfg.RemoteShards,
		RemoteReplication:         cfg.RemoteReplication,
		MemtableMaxDocs:           cfg.MemtableMaxDocs,
		CompactionFanIn:           cfg.CompactionFanIn,
		DisableVectorQuantization: cfg.DisableVectorQuantization,
		TraceCapacity:             cfg.TraceCapacity,
		TraceSampleRate:           cfg.TraceSampleRate,
		TraceSlowThreshold:        cfg.TraceSlowThreshold,
	}
}

// New creates a System with an empty index. Feed it with IndexHTML or
// IndexCorpus.
func New(cfg Config) *System {
	return &System{engine: core.New(cfg.coreConfig())}
}

// NewFromCorpus creates a System and indexes the given corpus through the
// full ingestion pipeline. When cfg.Lexicon is nil the corpus' own concept
// lexicon is used, which is what gives the embedder paraphrase proximity.
func NewFromCorpus(ctx context.Context, corpus *Corpus, cfg Config) (*System, error) {
	if cfg.Lexicon == nil {
		cfg.Lexicon = corpus.Lexicon()
	}
	s := New(cfg)
	if err := s.IndexCorpus(ctx, corpus); err != nil {
		return nil, err
	}
	return s, nil
}

// SyntheticCorpus generates a deterministic synthetic Italian banking
// knowledge base with the statistical shape of the paper's corpus: short
// HTML documents, editor tags, jargon codes and near-duplicate clusters.
// The paper's deployment indexed 59308 documents.
func SyntheticCorpus(docs int, seed int64) *Corpus {
	return kb.Generate(kb.GenConfig{Docs: docs, Seed: seed})
}

// IndexCorpus ingests and indexes every page of a corpus.
func (s *System) IndexCorpus(ctx context.Context, corpus *Corpus) error {
	return s.engine.IndexCorpus(ctx, corpus)
}

// IndexHTML ingests and indexes a single HTML page under the given id,
// exercising the same extraction/chunking/enrichment path as bulk loads.
func (s *System) IndexHTML(ctx context.Context, id, html string) error {
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: ingest.StaticSource{{ID: id, HTML: html}}, Out: q}
	if _, err := ing.SyncOnce(); err != nil {
		return err
	}
	q.Close()
	in := indexer.New(s.engine.Index, s.engine.Embedder, s.engine.Client, indexer.Config{})
	if _, err := in.Run(ctx, q); err != nil {
		return err
	}
	s.engine.Publish()
	return nil
}

// Ask runs the full RAG query flow: content filter, hybrid retrieval with
// semantic reranking, grounded generation, guardrails. The document list in
// the response is populated even when a guardrail invalidates the answer.
func (s *System) Ask(ctx context.Context, question string) (Response, error) {
	return s.engine.Ask(ctx, question)
}

// Search runs retrieval only and returns the ranked chunks.
func (s *System) Search(ctx context.Context, query string) ([]Result, error) {
	return s.engine.Search(ctx, query)
}

// SearchWith runs retrieval with explicit options (modes, expansions,
// boosts — see the search package).
func (s *System) SearchWith(ctx context.Context, query string, opts search.Options) ([]Result, error) {
	return s.engine.Searcher.Search(ctx, query, opts)
}

// IndexedChunks reports how many chunks the index holds.
func (s *System) IndexedChunks() int { return s.engine.Index.Len() }

// Engine exposes the underlying core engine for advanced composition
// (custom evaluation harnesses, servers, experiments).
func (s *System) Engine() *core.Engine { return s.engine }

// NewServer wraps the system in the REST backend (login, ask, search,
// feedback, dashboard endpoints).
func (s *System) NewServer() *server.Server { return server.New(s.engine) }

// SaveIndex serializes the system's index (documents, inverted postings,
// HNSW graphs) so a later LoadIndex skips the expensive build.
func (s *System) SaveIndex(w io.Writer) error {
	return s.engine.Index.Save(w)
}

// MultiTenantConfig assembles multi-tenant serving ("one deployment, many
// banks" — see docs/MULTITENANCY.md): per-tenant engines derived from a
// base Config, per-tenant limits from a hot-reloadable overrides file, an
// admission-control front door and a shared trace store.
type MultiTenantConfig struct {
	// Base is the engine shape every tenant starts from; per-tenant limits
	// (cache share, fan-out) specialize it.
	Base Config
	// OverridesPath is the tenant limits JSON file (see
	// docs/MULTITENANCY.md for the format). Tenants listed there are the
	// onboarded set; requests naming any other tenant get 404.
	OverridesPath string
	// ReloadInterval is the overrides-file poll interval (0 = 5s; negative
	// disables hot reload). A bad file keeps the last good configuration.
	ReloadInterval time.Duration
	// CacheBudget bounds total query-cache entries across all tenant
	// partitions (0 = 4096; negative = unbounded).
	CacheBudget int
	// Admission tunes the front door (zero value = library defaults:
	// 64 slots, 4:1 interactive:best-effort weights, 500ms max queue wait).
	Admission tenant.AdmissionConfig
	// Corpus, when non-nil, provides each tenant's knowledge base at
	// onboarding (first request). Nil tenants start empty.
	Corpus func(tenantID string) *Corpus
	// Log, when non-nil, receives overrides reload diagnostics ("reloaded",
	// "keeping last good config: ...") in addition to the server event log
	// — the binary points it at stderr so a rejected config push is visible
	// to the operator who made it.
	Log func(format string, args ...any)
}

// DefaultTenantCacheBudget is MultiTenantConfig.CacheBudget's default.
const DefaultTenantCacheBudget = 4096

// NewMultiTenantServer loads the overrides file and assembles the
// multi-tenant REST backend: registry (lazy per-tenant engines), admission
// controller, shared tracer, partitioned query cache. The returned server
// serves the same API as NewServer plus tenant routing (X-Uniask-Tenant
// header or /t/{tenant}/api/... paths) and 429 + Retry-After shedding. The
// overrides watcher runs until ctx is cancelled.
func NewMultiTenantServer(ctx context.Context, cfg MultiTenantConfig) (*server.Server, error) {
	ov, err := tenant.LoadOverrides(cfg.OverridesPath)
	if err != nil {
		return nil, err
	}
	var tracer *trace.Tracer
	if cfg.Base.TraceCapacity >= 0 {
		tracer = trace.New(trace.Config{
			Capacity:      cfg.Base.TraceCapacity,
			SampleRate:    cfg.Base.TraceSampleRate,
			SlowThreshold: cfg.Base.TraceSlowThreshold,
		})
	}
	budget := cfg.CacheBudget
	if budget == 0 {
		budget = DefaultTenantCacheBudget
	}
	pool := search.NewCachePool(budget, 0)

	var srv *server.Server // captured by onCreate; assigned before first use
	onCreate := func(id string, eng *core.Engine) error {
		srv.ObserveEngine(eng)
		return nil
	}
	reg := tenant.NewRegistry(ov, tenantFactory(ctx, cfg.Base, pool, tracer, cfg.Corpus, onCreate))
	ctrl := tenant.NewController(cfg.Admission, ov)
	srv = server.NewMultiTenant(reg, ctrl, tracer, pool)
	ov.Log = func(format string, args ...any) {
		srv.Log.Append(eventlog.Event{
			At: time.Now(), Service: "tenant-overrides", Type: "reload",
			Fields: map[string]string{"msg": fmt.Sprintf(format, args...)},
		})
		if cfg.Log != nil {
			cfg.Log(format, args...)
		}
	}
	if cfg.ReloadInterval >= 0 {
		go ov.Watch(ctx, cfg.ReloadInterval)
	}
	return srv, nil
}

// tenantFactory builds one tenant's engine: the base config specialized by
// the tenant's limits, with the tenant corpus' lexicon when a corpus
// provider is configured (so per-tenant synthetic embeddings stay coherent
// with the tenant's own vocabulary), ingesting that corpus at onboarding.
func tenantFactory(ctx context.Context, base Config, pool *search.CachePool, tracer *trace.Tracer, corpusFn func(string) *Corpus, onCreate func(string, *core.Engine) error) tenant.EngineFactory {
	return func(id string, lim tenant.Limits) (*core.Engine, error) {
		cfg := base
		var corpus *Corpus
		if corpusFn != nil {
			corpus = corpusFn(id)
		}
		if cfg.Lexicon == nil && corpus != nil {
			cfg.Lexicon = corpus.Lexicon()
		}
		eng, err := tenant.StandardFactory(cfg.coreConfig(), pool, tracer, onCreate)(id, lim)
		if err != nil {
			return nil, err
		}
		if corpus != nil {
			if err := eng.IndexCorpus(ctx, corpus); err != nil {
				return nil, err
			}
		}
		return eng, nil
	}
}

// LoadIndex replaces the system's index with one previously written by
// SaveIndex. The embedder configuration must match the one used when the
// index was built. Segmented containers, PR-4 era sharded containers and
// legacy single-file snapshots all load: a system configured with
// ShardCount > 1 accepts snapshots written before sharding (or at a
// different shard count), migrating them by re-routing every document; a
// monolithic system adopts a legacy single-file snapshot as one sealed
// segment and rejects sharded snapshots with a descriptive error.
func (s *System) LoadIndex(r io.Reader) error {
	return s.engine.LoadIndex(r)
}
