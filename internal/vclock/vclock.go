// Package vclock provides a clock abstraction with a real implementation
// and a virtual (manually advanced) one. The ingestion service's 15-minute
// polling cron and the 60-minute load test of Figure 2 run on the virtual
// clock, so experiments that span hours of simulated time complete in
// milliseconds and remain fully deterministic.
package vclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal clock interface UniAsk components depend on.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that fires once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a manually advanced clock. All waiters are released in
// timestamp order as Advance moves time forward.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewVirtual returns a virtual clock starting at the given time.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel fires when Advance moves the
// clock past the deadline. A non-positive duration fires immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.waiters = append(v.waiters, waiter{at: v.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing every waiter whose deadline
// is reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	var due, rest []waiter
	for _, w := range v.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	v.waiters = rest
	v.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, w := range due {
		w.ch <- w.at
	}
}

// PendingWaiters reports how many timers are armed (diagnostics).
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}
