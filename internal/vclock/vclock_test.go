package vclock

import (
	"testing"
	"time"
)

var epoch = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v", v.Now())
	}
	v.Advance(time.Hour)
	if !v.Now().Equal(epoch.Add(time.Hour)) {
		t.Fatalf("Now after advance = %v", v.Now())
	}
}

func TestVirtualAfterFires(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Minute)
	select {
	case <-ch:
		t.Fatal("fired before advance")
	default:
	}
	v.Advance(9 * time.Minute)
	select {
	case <-ch:
		t.Fatal("fired too early")
	default:
	}
	v.Advance(2 * time.Minute)
	select {
	case at := <-ch:
		if !at.Equal(epoch.Add(10 * time.Minute)) {
			t.Fatalf("fired at %v", at)
		}
	default:
		t.Fatal("did not fire")
	}
}

func TestVirtualAfterNonPositive(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	default:
		t.Fatal("zero-duration After did not fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("negative After did not fire immediately")
	}
}

func TestVirtualMultipleWaitersOrdered(t *testing.T) {
	v := NewVirtual(epoch)
	ch2 := v.After(2 * time.Minute)
	ch1 := v.After(1 * time.Minute)
	v.Advance(5 * time.Minute)
	at1 := <-ch1
	at2 := <-ch2
	if !at1.Before(at2) {
		t.Fatalf("order wrong: %v then %v", at1, at2)
	}
	if v.PendingWaiters() != 0 {
		t.Fatalf("pending = %d", v.PendingWaiters())
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	if c.Now().Before(before.Add(-time.Second)) {
		t.Fatal("Real.Now in the past")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}
