// Package tickets models the operational process behind the paper's
// headline post-launch result: employees who cannot find an answer open a
// support ticket, and UniAsk's deployment reduced the volume of
// search-failure tickets by around 20%.
//
// The model follows §2's description of the process: every year thousands
// of tickets are opened due to search-engine failures. An employee opens a
// ticket when the search experience fails her — the engine returned
// nothing, nothing relevant appeared near the top, or (with UniAsk) the
// generated answer was invalidated and the document list did not help
// either. Each outcome carries an empirically motivated ticket propensity;
// the simulation replays an identical query stream through both systems
// and compares the expected ticket volumes.
package tickets

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// Outcome describes how a single search interaction ended, from the
// employee's point of view.
type Outcome int

const (
	// AnsweredWell: a valid answer grounded on a relevant document (UniAsk)
	// or a relevant document in the top results (previous engine).
	AnsweredWell Outcome = iota
	// DocsOnly: no valid answer, but the visible document list contains a
	// relevant document the employee can open.
	DocsOnly
	// Irrelevant: results were returned but nothing relevant is visible.
	Irrelevant
	// Nothing: the engine returned no results at all.
	Nothing
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case AnsweredWell:
		return "answered-well"
	case DocsOnly:
		return "docs-only"
	case Irrelevant:
		return "irrelevant"
	case Nothing:
		return "nothing"
	}
	return "unknown"
}

// Propensities maps each outcome to the probability that the employee
// opens a ticket afterwards. The defaults encode the obvious ordering
// (nothing > irrelevant > docs-only > answered) with magnitudes chosen so
// the previous engine's failure profile produces a ticket stream of the
// size §2 describes.
type Propensities struct {
	AnsweredWell float64
	DocsOnly     float64
	Irrelevant   float64
	Nothing      float64
}

// DefaultPropensities is the calibrated ticket model.
func DefaultPropensities() Propensities {
	return Propensities{
		AnsweredWell: 0.01,
		DocsOnly:     0.05,
		Irrelevant:   0.35,
		Nothing:      0.55,
	}
}

// For returns the propensity for an outcome.
func (p Propensities) For(o Outcome) float64 {
	switch o {
	case AnsweredWell:
		return p.AnsweredWell
	case DocsOnly:
		return p.DocsOnly
	case Irrelevant:
		return p.Irrelevant
	}
	return p.Nothing
}

// Tally accumulates outcomes and expected/sampled tickets for one system.
type Tally struct {
	Name        string
	Queries     int
	ByOutcome   map[Outcome]int
	Tickets     int     // sampled ticket count
	ExpectedTkt float64 // expected ticket volume (sum of propensities)
}

// NewTally creates an empty tally.
func NewTally(name string) *Tally {
	return &Tally{Name: name, ByOutcome: make(map[Outcome]int)}
}

// Record adds one interaction. Sampling is deterministic per (seed, query).
func (t *Tally) Record(query string, o Outcome, p Propensities, seed int64) {
	t.Queries++
	t.ByOutcome[o]++
	prob := p.For(o)
	t.ExpectedTkt += prob
	h := fnv.New64a()
	h.Write([]byte(query))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	if rng.Float64() < prob {
		t.Tickets++
	}
}

// TicketRate is tickets per query (expected).
func (t *Tally) TicketRate() float64 {
	if t.Queries == 0 {
		return 0
	}
	return t.ExpectedTkt / float64(t.Queries)
}

// Reduction compares two tallies over the same query stream and reports
// the relative ticket-volume reduction of after vs before (0.2 = -20%).
func Reduction(before, after *Tally) float64 {
	if before.ExpectedTkt == 0 {
		return 0
	}
	return 1 - after.ExpectedTkt/before.ExpectedTkt
}

// Report renders the post-launch comparison.
func Report(before, after *Tally) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Post-launch analysis: ticket volume for unsuccessful searches\n")
	for _, t := range []*Tally{before, after} {
		fmt.Fprintf(&b, "  %-10s %5d queries | well %4d, docs-only %4d, irrelevant %4d, nothing %4d | expected tickets %.1f (%.1f%% of queries)\n",
			t.Name, t.Queries,
			t.ByOutcome[AnsweredWell], t.ByOutcome[DocsOnly],
			t.ByOutcome[Irrelevant], t.ByOutcome[Nothing],
			t.ExpectedTkt, 100*t.TicketRate())
	}
	fmt.Fprintf(&b, "  ticket reduction: %.1f%%  [paper: ~20%%]\n", 100*Reduction(before, after))
	return b.String()
}
