package tickets

import (
	"strings"
	"testing"
)

func TestOutcomeOrdering(t *testing.T) {
	p := DefaultPropensities()
	if !(p.AnsweredWell < p.DocsOnly && p.DocsOnly < p.Irrelevant && p.Irrelevant < p.Nothing) {
		t.Fatalf("propensities not ordered: %+v", p)
	}
}

func TestOutcomeStrings(t *testing.T) {
	names := map[Outcome]string{
		AnsweredWell: "answered-well", DocsOnly: "docs-only",
		Irrelevant: "irrelevant", Nothing: "nothing",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
	if Outcome(99).String() != "unknown" {
		t.Error("unknown outcome name")
	}
}

func TestTallyAccumulates(t *testing.T) {
	p := DefaultPropensities()
	tl := NewTally("x")
	tl.Record("q1", AnsweredWell, p, 1)
	tl.Record("q2", Nothing, p, 1)
	if tl.Queries != 2 {
		t.Fatalf("queries = %d", tl.Queries)
	}
	if tl.ByOutcome[AnsweredWell] != 1 || tl.ByOutcome[Nothing] != 1 {
		t.Fatalf("by outcome = %v", tl.ByOutcome)
	}
	want := p.AnsweredWell + p.Nothing
	if tl.ExpectedTkt != want {
		t.Fatalf("expected tickets = %v, want %v", tl.ExpectedTkt, want)
	}
	if rate := tl.TicketRate(); rate != want/2 {
		t.Fatalf("rate = %v", rate)
	}
}

func TestRecordDeterministic(t *testing.T) {
	p := DefaultPropensities()
	a, b := NewTally("a"), NewTally("b")
	for i := 0; i < 200; i++ {
		q := "query" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		a.Record(q, Nothing, p, 7)
		b.Record(q, Nothing, p, 7)
	}
	if a.Tickets != b.Tickets {
		t.Fatalf("sampled tickets differ: %d vs %d", a.Tickets, b.Tickets)
	}
	// Sampled count should approximate expectation.
	if a.Tickets < 70 || a.Tickets > 150 {
		t.Fatalf("sampled tickets = %d, expected ~%d", a.Tickets, int(a.ExpectedTkt))
	}
}

func TestReduction(t *testing.T) {
	p := DefaultPropensities()
	before, after := NewTally("before"), NewTally("after")
	for i := 0; i < 100; i++ {
		before.Record("q", Nothing, p, 1)
		after.Record("q", AnsweredWell, p, 1)
	}
	red := Reduction(before, after)
	want := 1 - p.AnsweredWell/p.Nothing
	if red < want-1e-9 || red > want+1e-9 {
		t.Fatalf("reduction = %v, want %v", red, want)
	}
	if Reduction(NewTally("e"), after) != 0 {
		t.Fatal("reduction with empty baseline should be 0")
	}
}

func TestTicketRateEmpty(t *testing.T) {
	if NewTally("x").TicketRate() != 0 {
		t.Fatal("empty tally rate != 0")
	}
}

func TestReportRendering(t *testing.T) {
	p := DefaultPropensities()
	before, after := NewTally("previous"), NewTally("uniask")
	before.Record("q", Nothing, p, 1)
	after.Record("q", AnsweredWell, p, 1)
	out := Report(before, after)
	for _, want := range []string{"Post-launch", "previous", "uniask", "ticket reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
