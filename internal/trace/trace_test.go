package trace

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"uniask/internal/pipeline"
)

// endRequest finishes a request and returns its stored trace.
func endRequest(t *testing.T, tr *Tracer, req *Request) *TraceData {
	t.Helper()
	req.End()
	td, ok := tr.Store().Get(req.TraceID())
	if !ok {
		t.Fatalf("trace %s not stored", req.TraceID())
	}
	return td
}

func TestStartRequestSampledRecordsSpans(t *testing.T) {
	tr := New(Config{})
	ctx, req := tr.StartRequest(context.Background(), "ask")
	if !req.Sampled() {
		t.Fatal("default config must sample every request")
	}
	if req.TraceID() == "" {
		t.Fatal("sampled request must have a trace id")
	}
	if got := ContextID(ctx); got != req.TraceID() {
		t.Fatalf("ContextID = %q, want %q", got, req.TraceID())
	}

	cctx, child := Start(ctx, "retrieval", A("mode", "hybrid"))
	if child == nil {
		t.Fatal("Start on a traced ctx must return a live span")
	}
	_, grand := Start(cctx, "shard.search", A("shard", "3"))
	grand.End()
	child.End()

	td := endRequest(t, tr, req)
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	if td.Spans[0].Name != "ask" || td.Spans[0].Parent != 0 {
		t.Fatalf("root = %+v, want name ask parent 0", td.Spans[0])
	}
	if td.Spans[1].Parent != td.Spans[0].SpanID {
		t.Fatal("child must parent to root")
	}
	if td.Spans[2].Parent != td.Spans[1].SpanID {
		t.Fatal("grandchild must parent to child")
	}
	if td.Spans[1].Duration <= 0 || td.Spans[0].Duration <= 0 {
		t.Fatal("ended spans must have positive durations")
	}

	tree := td.Tree()
	if len(tree) != 1 || tree[0].Name != "ask" {
		t.Fatalf("tree roots = %d, want single ask root", len(tree))
	}
	if len(tree[0].Children) != 1 || len(tree[0].Children[0].Children) != 1 {
		t.Fatal("tree must nest ask > retrieval > shard.search")
	}
}

func TestStartRequestSampledOut(t *testing.T) {
	tr := New(Config{SampleRate: -1}) // trace nothing
	base := context.Background()
	ctx, req := tr.StartRequest(base, "ask")
	if ctx != base {
		t.Fatal("sampled-out request must return ctx unchanged")
	}
	if req.TraceID() == "" {
		t.Fatal("sampled-out request still needs an id for the header")
	}
	if req.Sampled() {
		t.Fatal("Sampled() must be false")
	}
	if req.Root() != nil {
		t.Fatal("Root() must be nil when unsampled")
	}
	// All downstream instrumentation must be a no-op, not a panic.
	sctx, sp := Start(ctx, "retrieval")
	if sp != nil || sctx != base {
		t.Fatal("Start on untraced ctx must be a no-op")
	}
	sp.SetAttr("k", "v")
	sp.SetStatus(StatusError)
	sp.SetError(errors.New("x"))
	sp.AddEvent("retry")
	sp.End()
	AddEvent(ctx, "retry")
	if Enabled(ctx) {
		t.Fatal("Enabled must be false")
	}
	req.End()
	if n := tr.Store().Len(); n != 0 {
		t.Fatalf("store holds %d traces, want 0", n)
	}
}

func TestNilTracerAndNilRequest(t *testing.T) {
	var tr *Tracer
	base := context.Background()
	ctx, req := tr.StartRequest(base, "ask")
	if ctx != base || req != nil {
		t.Fatal("nil tracer must return ctx unchanged and a nil request")
	}
	if req.TraceID() != "" || req.Sampled() || req.Root() != nil {
		t.Fatal("nil request accessors must be zero-valued")
	}
	req.End() // must not panic
	if tr.Store() != nil {
		t.Fatal("nil tracer store must be nil")
	}
	if _, ok := tr.Store().Get("x"); ok {
		t.Fatal("nil store Get must miss")
	}
	if tr.Store().Len() != 0 || tr.Store().List(nil, 0) != nil {
		t.Fatal("nil store must answer empty")
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	count := func(seed int64) (sampled int, ids []string) {
		tr := New(Config{SampleRate: 0.5, Seed: seed})
		for i := 0; i < 200; i++ {
			_, req := tr.StartRequest(context.Background(), "ask")
			ids = append(ids, req.TraceID())
			if req.Sampled() {
				sampled++
			}
		}
		return sampled, ids
	}
	n1, ids1 := count(7)
	n2, ids2 := count(7)
	if n1 != n2 {
		t.Fatalf("same seed must sample identically: %d vs %d", n1, n2)
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("trace ids must be deterministic per seed: %q vs %q", ids1[i], ids2[i])
		}
	}
	if n1 == 0 || n1 == 200 {
		t.Fatalf("rate 0.5 sampled %d/200 — head sampling is not discriminating", n1)
	}
}

func TestTailRetentionReasons(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Nanosecond}) // everything counts as slow
	_, req := tr.StartRequest(context.Background(), "ask")
	time.Sleep(time.Microsecond)
	td := endRequest(t, tr, req)
	if td.Retained != "slow" {
		t.Fatalf("Retained = %q, want slow", td.Retained)
	}

	tr = New(Config{})
	_, req = tr.StartRequest(context.Background(), "ask")
	req.Root().SetError(errors.New("boom"))
	td = endRequest(t, tr, req)
	if td.Retained != "error" || td.Status != StatusError {
		t.Fatalf("got (%s, %v), want (error, StatusError)", td.Retained, td.Status)
	}

	_, req = tr.StartRequest(context.Background(), "ask")
	req.Root().SetStatus(StatusDegraded)
	td = endRequest(t, tr, req)
	if td.Retained != "degraded" || td.Status != StatusDegraded {
		t.Fatalf("got (%s, %v), want (degraded, StatusDegraded)", td.Retained, td.Status)
	}

	_, req = tr.StartRequest(context.Background(), "ask")
	td = endRequest(t, tr, req)
	if td.Retained != "sampled" {
		t.Fatalf("Retained = %q, want sampled", td.Retained)
	}
}

func TestProtectedRingSurvivesHealthyFlood(t *testing.T) {
	// Tiny store: three ordinary + three protected slots per lock shard, so
	// the few error traces below cannot collide each other out of one shard.
	tr := New(Config{Capacity: 96})

	var errIDs []string
	for i := 0; i < 3; i++ {
		_, req := tr.StartRequest(context.Background(), "ask")
		req.Root().SetError(fmt.Errorf("failure %d", i))
		req.End()
		errIDs = append(errIDs, req.TraceID())
	}
	// Flood with healthy traffic: orders of magnitude more than capacity.
	for i := 0; i < 2000; i++ {
		_, req := tr.StartRequest(context.Background(), "ask")
		req.End()
	}
	for _, id := range errIDs {
		td, ok := tr.Store().Get(id)
		if !ok {
			t.Fatalf("error trace %s evicted by healthy flood", id)
		}
		if td.Retained != "error" {
			t.Fatalf("trace %s retained as %q, want error", id, td.Retained)
		}
	}
	// The store stays strictly bounded: 16 lock shards x 2 rings x 3 slots.
	if n := tr.Store().Len(); n > 96 {
		t.Fatalf("store holds %d traces, capacity 96", n)
	}
}

func TestStoreListFilterAndOrder(t *testing.T) {
	tr := New(Config{})
	var last string
	for i := 0; i < 5; i++ {
		_, req := tr.StartRequest(context.Background(), "ask")
		if i == 2 {
			req.Root().SetError(errors.New("x"))
		}
		req.End()
		last = req.TraceID()
		time.Sleep(time.Millisecond) // distinct Start stamps for the ordering check
	}
	all := tr.Store().List(nil, 0)
	if len(all) != 5 {
		t.Fatalf("List(nil) = %d traces, want 5", len(all))
	}
	if all[0].TraceID != last {
		t.Fatal("List must return newest first")
	}
	for i := 1; i < len(all); i++ {
		if all[i].Start.After(all[i-1].Start) {
			t.Fatal("List order must be non-increasing by Start")
		}
	}
	errs := tr.Store().List(func(td *TraceData) bool { return td.Status == StatusError }, 0)
	if len(errs) != 1 {
		t.Fatalf("error filter matched %d, want 1", len(errs))
	}
	if got := tr.Store().List(nil, 2); len(got) != 2 {
		t.Fatalf("limit 2 returned %d", len(got))
	}
}

func TestSpanAttrsEventsAndStatus(t *testing.T) {
	tr := New(Config{})
	ctx, req := tr.StartRequest(context.Background(), "ask")
	_, sp := Start(ctx, "llm.complete")
	sp.SetAttr("model", "sim")
	sp.SetAttr("model", "sim-2") // overwrite, not append
	sp.AddEvent("retry", A("attempt", "1"), A("error", "rate limited"))
	sp.AddEvent("retry", A("attempt", "2"))
	sp.SetError(errors.New("exhausted"))
	sp.End()
	td := endRequest(t, tr, req)

	got, ok := td.SpanByName("llm.complete")
	if !ok {
		t.Fatal("llm.complete span missing")
	}
	if len(got.Attrs) != 1 || got.Attrs[0].Value != "sim-2" {
		t.Fatalf("attrs = %+v, want single model=sim-2", got.Attrs)
	}
	if len(got.Events) != 2 || got.Events[0].Name != "retry" {
		t.Fatalf("events = %+v, want two retry events", got.Events)
	}
	if got.Status != StatusError || got.Error != "exhausted" {
		t.Fatalf("status = %v error = %q", got.Status, got.Error)
	}
}

func TestConcurrentSpanCreation(t *testing.T) {
	tr := New(Config{})
	ctx, req := tr.StartRequest(context.Background(), "ask")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := Start(ctx, "shard.search", A("shard", strconv.Itoa(i)))
			sp.AddEvent("probe")
			sp.End()
		}(i)
	}
	wg.Wait()
	td := endRequest(t, tr, req)
	if len(td.Spans) != 33 {
		t.Fatalf("got %d spans, want 33", len(td.Spans))
	}
	seen := map[uint64]bool{}
	for _, sp := range td.Spans {
		if seen[sp.SpanID] {
			t.Fatalf("duplicate span id %d", sp.SpanID)
		}
		seen[sp.SpanID] = true
	}
}

func TestStageObserverBuildsPostHocSpans(t *testing.T) {
	tr := New(Config{})
	ctx, req := tr.StartRequest(context.Background(), "ask")
	obs := Stages()

	err := pipeline.Run(ctx, obs, pipeline.StageRetrieval, 7, func(context.Context) (int, error) {
		time.Sleep(time.Millisecond)
		return 4, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A degraded report (StageDegraded with a cause) becomes a degraded span.
	pipeline.Observe(ctx, obs, pipeline.StageInfo{
		Stage: pipeline.StageDegraded, In: 1, Err: errors.New("search: shed vector: boom"),
	})
	td := endRequest(t, tr, req)

	st, ok := td.SpanByName(pipeline.StageRetrieval)
	if !ok {
		t.Fatal("retrieval stage span missing")
	}
	if st.Parent != 1 {
		t.Fatal("stage span must parent to the root")
	}
	if st.Duration < time.Millisecond {
		t.Fatalf("stage span duration %v, want >= 1ms", st.Duration)
	}
	wantIn, wantOut := false, false
	for _, a := range st.Attrs {
		wantIn = wantIn || (a.Key == "in" && a.Value == "7")
		wantOut = wantOut || (a.Key == "out" && a.Value == "4")
	}
	if !wantIn || !wantOut {
		t.Fatalf("stage attrs = %+v, want in=7 out=4", st.Attrs)
	}

	dg, ok := td.SpanByName(pipeline.StageDegraded)
	if !ok {
		t.Fatal("degraded stage span missing")
	}
	if dg.Status != StatusDegraded {
		t.Fatalf("degraded span status = %v, want StatusDegraded", dg.Status)
	}

	// On an untraced context the observer must not record anything.
	pipeline.Observe(context.Background(), obs, pipeline.StageInfo{Stage: "x"})
}

func TestStatusJSONAndParse(t *testing.T) {
	for _, tc := range []struct {
		st   Status
		want string
	}{{StatusOK, "ok"}, {StatusError, "error"}, {StatusDegraded, "degraded"}} {
		b, err := tc.st.MarshalJSON()
		if err != nil || string(b) != `"`+tc.want+`"` {
			t.Fatalf("MarshalJSON(%v) = %s, %v", tc.st, b, err)
		}
		back, ok := ParseStatus(tc.want)
		if !ok || back != tc.st {
			t.Fatalf("ParseStatus(%q) = %v, %v", tc.want, back, ok)
		}
	}
	if _, ok := ParseStatus("bogus"); ok {
		t.Fatal("ParseStatus must reject unknown strings")
	}
}
