package trace

import (
	"context"
	"testing"
	"time"
)

// BenchmarkTraceStartSampledOut is the head-sampled-out hot path: every
// instrumented layer calls Start unconditionally, so on an untraced context
// the whole span API must cost nothing — no allocations, a couple of ns.
func BenchmarkTraceStartSampledOut(b *testing.B) {
	tr := New(Config{SampleRate: -1}) // sample nothing
	ctx, req := tr.StartRequest(context.Background(), "ask")
	defer req.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sctx, sp := Start(ctx, "shard.search", A("shard", "3"))
		sp.SetAttr("leg", "text")
		sp.End()
		_ = sctx
	}
}

// BenchmarkTraceStartSampled is the traced path: one child span with one
// attribute, created and ended.
func BenchmarkTraceStartSampled(b *testing.B) {
	tr := New(Config{})
	ctx, req := tr.StartRequest(context.Background(), "ask")
	defer req.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "shard.search", A("shard", "3"))
		sp.End()
	}
}

// BenchmarkTraceRequestSampledOut is the whole per-request overhead when
// head sampling rejects the request: id minting plus the Request handle.
func BenchmarkTraceRequestSampledOut(b *testing.B) {
	tr := New(Config{SampleRate: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, req := tr.StartRequest(context.Background(), "ask")
		req.End()
	}
}

// BenchmarkTraceRequestSampled is one fully traced request: root span, a
// child per pipeline stage, tail-sampling decision, store insert.
func BenchmarkTraceRequestSampled(b *testing.B) {
	tr := New(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, req := tr.StartRequest(context.Background(), "ask")
		for _, stage := range []string{"retrieval", "fusion", "rerank", "generation"} {
			_, sp := Start(ctx, stage)
			sp.End()
		}
		req.End()
	}
}

// BenchmarkTraceQLMatch runs the matcher of a three-condition query over a
// stored trace with a realistic span count.
func BenchmarkTraceQLMatch(b *testing.B) {
	q, err := Parse("name=shard.search dur>5ms shard=3")
	if err != nil {
		b.Fatal(err)
	}
	spans := []Span{{SpanID: 1, Name: "ask", Duration: 80 * time.Millisecond}}
	for i := 2; i <= 20; i++ {
		spans = append(spans, Span{
			SpanID: uint64(i), Parent: 1, Name: "shard.search",
			Duration: time.Duration(i) * time.Millisecond,
			Attrs:    []Attr{{Key: "shard", Value: "3"}, {Key: "leg", Value: "text"}},
		})
	}
	td := &TraceData{TraceID: "t", Spans: spans}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.MatchTrace(td) {
			b.Fatal("must match")
		}
	}
}
