package trace

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, s string) Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseValid(t *testing.T) {
	for _, tc := range []struct {
		in    string
		conds int
	}{
		{"", 0},
		{"   \t\n  ", 0},
		{"name=retrieval", 1},
		{"name=retrieval dur>50ms status=error", 3},
		{"shard=3", 1},
		{"dur>=1.5s", 1},
		{"status!=ok", 1},
		{`cause="context deadline exceeded"`, 1},
		{"attempt>2 leg=text", 2},
	} {
		q := mustParse(t, tc.in)
		if len(q.Conds) != tc.conds {
			t.Errorf("Parse(%q) = %d conds, want %d", tc.in, len(q.Conds), tc.conds)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"name",             // no operator
		"name=",            // empty value
		"=value",           // empty field (op at index 0 is rejected)
		"name>retrieval",   // ordered op on name
		"status<error",     // ordered op on status
		"status=bogus",     // unknown status
		"dur=fast",         // not a duration
		"dur>50",           // bare number is not a Go duration
		"shard>three",      // ordered op on non-numeric attribute
		`cause="unterm`,    // unbalanced quote
		"name=ok extra",    // second token has no operator
		"name=retrieval >", // dangling operator token: field is empty
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error, got none", in)
		}
	}
}

func TestStringRoundtrip(t *testing.T) {
	for _, in := range []string{
		"name=retrieval dur>50ms status=error",
		`cause="context deadline exceeded" shard=3`,
		"dur<=100ms attempt!=0",
	} {
		q := mustParse(t, in)
		s := q.String()
		back := mustParse(t, s)
		if back.String() != s {
			t.Errorf("roundtrip %q: String=%q, reparse String=%q", in, s, back.String())
		}
	}
}

// matchTD builds a minimal stored trace out of spans for matcher tests.
func matchTD(spans ...Span) *TraceData {
	return &TraceData{TraceID: "t", Spans: spans}
}

func TestMatchSemantics(t *testing.T) {
	td := matchTD(
		Span{SpanID: 1, Name: "ask", Duration: 80 * time.Millisecond, Status: StatusDegraded},
		Span{SpanID: 2, Parent: 1, Name: "retrieval", Duration: 60 * time.Millisecond},
		Span{SpanID: 3, Parent: 2, Name: "shard.search", Duration: 10 * time.Millisecond,
			Attrs: []Attr{{Key: "shard", Value: "3"}, {Key: "leg", Value: "text"}}},
		Span{SpanID: 4, Parent: 1, Name: "llm.complete", Duration: 5 * time.Millisecond,
			Status: StatusError, Error: "boom"},
	)
	for _, tc := range []struct {
		q    string
		want bool
	}{
		{"", true},
		{"name=retrieval", true},
		{"name=missing", false},
		{"name!=ask", true},  // some span is not "ask"
		{"dur>50ms", true},   // root and retrieval qualify
		{"dur>500ms", false}, // nothing that slow
		{"status=error", true},
		{"status=degraded", true},
		{"status=ok", true},                 // retrieval and shard.search are ok
		{"status!=error", true},             // plenty of non-error spans
		{"shard=3", true},                   // numeric attribute equality
		{"shard>2", true},                   // numeric attribute range
		{"shard<3", false},                  // 3 is the only shard
		{"shard=03", true},                  // numeric compare: 03 == 3
		{"leg=text", true},                  // string attribute
		{"leg=vector", false},               // wrong value
		{"leg!=vector", true},               // held by every span (absent is vacuous)
		{"missing=x", false},                // absent attribute fails =
		{"missing!=x", true},                // absent attribute passes !=
		{"name=shard.search shard=3", true}, // conjunction on one span
		{"name=retrieval shard=3", false},   // single-spanset: no span has both
		{"name=llm.complete status=error", true},
		{"dur>50ms status=degraded", true}, // the root satisfies both
	} {
		q := mustParse(t, tc.q)
		if got := q.MatchTrace(td); got != tc.want {
			t.Errorf("MatchTrace(%q) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func FuzzTraceQL(f *testing.F) {
	for _, seed := range []string{
		"",
		"name=retrieval dur>50ms status=error",
		`cause="context deadline exceeded"`,
		"shard>=3 leg!=text",
		"dur<1h30m",
		`a="b c" d=e`,
		"x=\"\" y>1",
		"!==<>\"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		q, err := Parse(in)
		if err != nil {
			return // malformed input must error, never panic — reaching here is the test
		}
		// Accepted input must roundtrip through the canonical form.
		s := q.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q) ok but canonical form %q does not reparse: %v", in, s, err)
		}
		if back.String() != s {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", s, back.String())
		}
		if len(back.Conds) != len(q.Conds) {
			t.Fatalf("roundtrip changed arity: %d -> %d", len(q.Conds), len(back.Conds))
		}
		// And the matcher must not panic on any accepted query.
		td := matchTD(
			Span{SpanID: 1, Name: "ask", Duration: time.Millisecond},
			Span{SpanID: 2, Parent: 1, Name: "x", Attrs: []Attr{{Key: "shard", Value: "1"}}},
		)
		q.MatchTrace(td)
	})
}

func TestQuoteIfNeeded(t *testing.T) {
	if got := quoteIfNeeded("plain"); got != "plain" {
		t.Fatalf("quoteIfNeeded(plain) = %q", got)
	}
	if got := quoteIfNeeded("two words"); got != `"two words"` {
		t.Fatalf("quoteIfNeeded = %q", got)
	}
	if !strings.Contains(mustParse(t, `a="b c"`).String(), `"b c"`) {
		t.Fatal("String must requote spaced values")
	}
}
