package trace

// Bounded lock-sharded in-memory trace store. Finished traces land in one
// of 16 lock shards (by trace-id hash); each lock shard keeps two fixed
// ring buffers — ordinary head-sampled traces, and the protected class the
// tail-sampling rules always retain (error / degraded / slow). Overwriting
// the oldest entry of the same class is the only eviction, so a flood of
// healthy traffic can never push out the failing traces an operator is
// debugging, and memory stays strictly bounded either way.

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// TraceData is one finished, stored trace.
type TraceData struct {
	// TraceID is the id returned to the client in X-Uniask-Trace-Id.
	TraceID string `json:"traceId"`
	// Name is the root span's operation ("ask", "search").
	Name string `json:"name"`
	// Start and Duration are the root span's.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	// Status is the root span's outcome.
	Status Status `json:"status"`
	// Retained records why tail sampling kept the trace: "error",
	// "degraded", "slow", or "sampled" (ordinary ring).
	Retained string `json:"retained"`
	// Spans is the flat span list in creation order (Spans[0] is the root).
	Spans []Span `json:"spans"`
}

// storeShards is the lock-shard count; a power of two so the id hash maps
// with a mask.
const storeShards = 16

// storeShard is one lock shard: a lookup map plus the two eviction rings.
type storeShard struct {
	mu       sync.Mutex
	byID     map[string]*TraceData
	ordinary ring
	hot      ring
}

// ring is a fixed-capacity FIFO of trace ids; push reports the id it
// evicted ("" while the ring still has room).
type ring struct {
	ids  []string
	next int
	full bool
}

func (r *ring) push(id string) (evicted string) {
	if r.full {
		evicted = r.ids[r.next]
	}
	r.ids[r.next] = id
	r.next++
	if r.next == len(r.ids) {
		r.next = 0
		r.full = true
	}
	return evicted
}

// Store is the bounded trace store. Construct through New (the Tracer owns
// one); a nil *Store answers every query empty.
type Store struct {
	shards [storeShards]*storeShard
}

func newStore(capacity int) *Store {
	per := capacity / storeShards / 2
	if per < 1 {
		per = 1
	}
	s := &Store{}
	for i := range s.shards {
		s.shards[i] = &storeShard{
			byID:     make(map[string]*TraceData),
			ordinary: ring{ids: make([]string, per)},
			hot:      ring{ids: make([]string, per)},
		}
	}
	return s
}

func (s *Store) shardFor(id string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()&(storeShards-1)]
}

// put stores a finished trace, evicting the oldest trace of the same
// retention class when that class's ring is full.
func (s *Store) put(td *TraceData, hot bool) {
	sh := s.shardFor(td.TraceID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var evicted string
	if hot {
		evicted = sh.hot.push(td.TraceID)
	} else {
		evicted = sh.ordinary.push(td.TraceID)
	}
	if evicted != "" {
		delete(sh.byID, evicted)
	}
	sh.byID[td.TraceID] = td
}

// Get fetches one trace by id.
func (s *Store) Get(id string) (*TraceData, bool) {
	if s == nil {
		return nil, false
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	td, ok := sh.byID[id]
	return td, ok
}

// Len reports how many traces are retained.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.byID)
		sh.mu.Unlock()
	}
	return n
}

// List returns the retained traces matching filter (nil = all), newest
// first, truncated to limit (<= 0 = no limit). Stored traces are
// immutable, so the returned pointers are safe to read without locks.
func (s *Store) List(filter func(*TraceData) bool, limit int) []*TraceData {
	if s == nil {
		return nil
	}
	var out []*TraceData
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, td := range sh.byID {
			if filter == nil || filter(td) {
				out = append(out, td)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].TraceID < out[j].TraceID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Node is one span with its children resolved — the tree form of a trace
// served by /api/traces/{id}.
type Node struct {
	Span
	Children []*Node `json:"children,omitempty"`
}

// Tree nests the flat span list under its parent links. Spans whose parent
// is missing (never on traces this package builds) surface as extra roots,
// so the result is always complete.
func (td *TraceData) Tree() []*Node {
	nodes := make(map[uint64]*Node, len(td.Spans))
	for i := range td.Spans {
		nodes[td.Spans[i].SpanID] = &Node{Span: td.Spans[i]}
	}
	var roots []*Node
	for i := range td.Spans {
		n := nodes[td.Spans[i].SpanID]
		if p, ok := nodes[n.Parent]; ok && n.Parent != n.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// SpanByName returns the first span with the given name (creation order).
func (td *TraceData) SpanByName(name string) (Span, bool) {
	for _, sp := range td.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return Span{}, false
}
