// Package trace is UniAsk's per-request distributed-tracing subsystem: the
// debugging counterpart to the monitor package's aggregates. The §9
// dashboard answers "is the p99 regressing?"; a trace answers "which stage,
// shard, retry attempt or breaker did it to *this* query".
//
// A Tracer mints one trace per request (Tracer.StartRequest), decides up
// front whether the request is head-sampled, and — once the request ends —
// applies tail-sampling rules that always retain error, degraded and slow
// traces regardless of ordinary ring-buffer pressure. Sampled requests
// carry their active span in the context; trace.Start creates child spans
// anywhere downstream without the layers knowing about each other, and
// trace.Event attaches retry attempts, breaker transitions and hedges to
// whatever span is active. On a head-sampled-out request every entry point
// is a nil-receiver no-op costing no allocations, which is what keeps the
// BM25 hot path unchanged (see BenchmarkTraceStartSampledOut).
//
// Finished traces live in a bounded lock-sharded in-memory ring-buffer
// store (Store) queryable by the TraceQL-lite matcher grammar of this
// package's Parse ("name=retrieval dur>50ms status=error"), surfaced over
// the server's /api/traces endpoints.
package trace

import (
	"context"
	"time"
)

// Status classifies a span (and, through the root span, a whole trace).
type Status int

// Span statuses.
const (
	// StatusOK is the default: the span completed normally.
	StatusOK Status = iota
	// StatusError means the span's operation failed.
	StatusError
	// StatusDegraded means the operation completed at reduced fidelity
	// (shed retrieval legs, extractive generation fallback).
	StatusDegraded
)

// String renders the status for JSON and the TraceQL-lite matcher.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusError:
		return "error"
	case StatusDegraded:
		return "degraded"
	}
	return "unknown"
}

// MarshalJSON renders the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ParseStatus maps a status string back to its Status (ok=false when the
// string names no status).
func ParseStatus(s string) (Status, bool) {
	switch s {
	case "ok":
		return StatusOK, true
	case "error":
		return StatusError, true
	case "degraded":
		return StatusDegraded, true
	}
	return StatusOK, false
}

// Attr is one key/value span attribute. Values are strings; numeric
// attributes (shard ids, attempt counts) render with strconv and compare
// numerically in the TraceQL-lite matcher.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A returns an Attr — shorthand for call sites that add several.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one timestamped point-in-span occurrence: a retry attempt, a
// breaker transition, a hedge firing.
type Event struct {
	// At is when the event happened.
	At time.Time `json:"at"`
	// Name identifies the event kind ("retry", "breaker.transition", ...).
	Name string `json:"name"`
	// Attrs carries the event details.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Span is one timed operation inside a trace. Spans are created through
// Tracer.StartRequest (the root) and Start (children); a nil *Span is the
// valid no-op span of an unsampled request, and every method tolerates it.
type Span struct {
	// SpanID is unique within the trace (1 is the root).
	SpanID uint64 `json:"spanId"`
	// Parent is the parent span's SpanID (0 on the root).
	Parent uint64 `json:"parentId,omitempty"`
	// Name is the operation ("ask", "retrieval", "shard.search", ...).
	Name string `json:"name"`
	// Start is when the operation began.
	Start time.Time `json:"start"`
	// Duration is how long it ran (0 while still running).
	Duration time.Duration `json:"durationNs"`
	// Status is the span outcome.
	Status Status `json:"status"`
	// Error carries the failure message when Status is StatusError.
	Error string `json:"error,omitempty"`
	// Attrs are the span's key/value attributes.
	Attrs []Attr `json:"attrs,omitempty"`
	// Events are the span's timestamped occurrences.
	Events []Event `json:"events,omitempty"`

	rec *rec // owning trace; nil only on the shared no-op span
}

// SetAttr adds (or overwrites) an attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetStatus sets the span outcome.
func (s *Span) SetStatus(st Status) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	s.Status = st
	s.rec.mu.Unlock()
}

// SetError marks the span failed with err's message (no-op on nil err).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.rec.mu.Lock()
	s.Status = StatusError
	s.Error = err.Error()
	s.rec.mu.Unlock()
}

// AddEvent appends a timestamped event to the span.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	// Copy the variadic (see Start): callers' attr slices stay on the stack,
	// so a nil receiver costs nothing.
	var held []Attr
	if len(attrs) > 0 {
		held = append(held, attrs...)
	}
	s.rec.mu.Lock()
	s.Events = append(s.Events, Event{At: now, Name: name, Attrs: held})
	s.rec.mu.Unlock()
}

// End stamps the span's duration. Call exactly once, when the operation
// finishes; the span stays queryable in its trace afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.Start)
	s.rec.mu.Lock()
	if s.Duration == 0 {
		s.Duration = d
	}
	s.rec.mu.Unlock()
}

// TraceID reports the owning trace's id ("" on the nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.id
}

// ctxKey carries the active *Span through a request's context.
type ctxKey struct{}

// FromContext returns the active span, or nil when the request is
// untraced or head-sampled out.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextID reports the trace id active in ctx ("" when untraced).
func ContextID(ctx context.Context) string {
	return FromContext(ctx).TraceID()
}

// Start opens a child span of the span active in ctx and returns a context
// carrying it. On an untraced context it returns ctx unchanged and a nil
// span — zero allocations, which is the whole point: instrumented layers
// call Start unconditionally and sampling stays a per-request decision.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	// Copy the variadic instead of retaining it: that keeps the caller's
	// attrs slice non-escaping, so the sampled-out early return above costs
	// zero allocations at every instrumented call site.
	var held []Attr
	if len(attrs) > 0 {
		held = append(held, attrs...)
	}
	child := parent.rec.newSpan(name, parent.SpanID, time.Now(), 0, held)
	return context.WithValue(ctx, ctxKey{}, child), child
}

// AddEvent appends an event to the span active in ctx (no-op when
// untraced). This is how the resilience layer records retry attempts and
// breaker transitions without holding a span of its own.
func AddEvent(ctx context.Context, name string, attrs ...Attr) {
	FromContext(ctx).AddEvent(name, attrs...)
}

// Enabled reports whether ctx carries a sampled trace — the guard for
// instrumentation whose argument construction itself would allocate.
func Enabled(ctx context.Context) bool {
	return FromContext(ctx) != nil
}
