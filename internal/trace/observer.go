package trace

// The pipeline.Observer adapter: every stage report of the existing query
// pipeline becomes a span on the trace active in the stage's context, so
// the whole Figure-1 flow is traced without the stages changing at all.
// Stage spans are recorded post-hoc from the report (start reconstructed
// as now - duration), which keeps the observer contract one-way: the
// pipeline never waits on the tracer.

import (
	"context"
	"strconv"
	"time"

	"uniask/internal/pipeline"
)

// stageObserver adapts stage reports to spans. It is stateless: the trace
// to record into travels in the stage's context, so one shared adapter
// serves every engine.
type stageObserver struct{}

// Stages returns the pipeline.Observer that records every stage report as
// a span on the context's active trace. Compose it with the metrics
// registry via pipeline.Multi.
func Stages() pipeline.Observer { return stageObserver{} }

// ObserveStage implements pipeline.Observer. Without a context there is no
// trace to attach to, so plain reports are dropped; the pipeline always
// prefers ObserveStageCtx.
func (stageObserver) ObserveStage(pipeline.StageInfo) {}

// ObserveStageCtx implements pipeline.CtxObserver.
func (stageObserver) ObserveStageCtx(ctx context.Context, info pipeline.StageInfo) {
	parent := FromContext(ctx)
	if parent == nil {
		return
	}
	attrs := []Attr{
		{Key: "in", Value: strconv.Itoa(info.In)},
		{Key: "out", Value: strconv.Itoa(info.Out)},
	}
	sp := parent.rec.newSpan(info.Stage, parent.SpanID, time.Now().Add(-info.Duration), info.Duration, attrs)
	if info.Err != nil {
		if info.Stage == pipeline.StageDegraded {
			// Degraded-stage reports carry the shed cause in Err by
			// convention; the work unit itself succeeded at lower fidelity.
			sp.SetStatus(StatusDegraded)
			sp.SetAttr("cause", info.Err.Error())
		} else {
			sp.SetError(info.Err)
		}
	}
}
