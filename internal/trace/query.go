package trace

// TraceQL-lite: the matcher grammar behind GET /api/traces?q=…, a
// deliberately small cut of Grafana Tempo's TraceQL. A query is a
// whitespace-separated conjunction of conditions; a trace matches when at
// least one of its spans satisfies every condition (Tempo's spanset
// semantics, restricted to a single spanset):
//
//	name=retrieval dur>50ms status=error shard=3
//
// Fields: "name" (span name), "dur" (span duration, Go duration literals),
// "status" (ok | error | degraded), anything else matches span attributes.
// Operators: = != on strings; = != > >= < <= on durations and on
// attributes whose value parses as a number. Values containing spaces are
// double-quoted.

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Cond is one parsed condition.
type Cond struct {
	// Field is "name", "dur", "status", or an attribute key.
	Field string
	// Op is one of = != > >= < <=.
	Op string
	// Value is the raw comparison value.
	Value string

	dur    time.Duration // parsed Value when Field == "dur"
	status Status        // parsed Value when Field == "status"
	num    float64       // parsed Value for numeric attribute comparison
	isNum  bool
}

// Query is a parsed TraceQL-lite expression. The zero value matches every
// trace.
type Query struct {
	Conds []Cond
}

// ordered reports whether op is a range operator.
func ordered(op string) bool {
	return op == ">" || op == ">=" || op == "<" || op == "<="
}

// Parse parses a TraceQL-lite expression. An empty (or all-whitespace)
// input yields the match-everything query; malformed input returns an
// error, never a panic — the parser is fuzzed (FuzzTraceQL).
func Parse(s string) (Query, error) {
	var q Query
	toks, err := tokenize(s)
	if err != nil {
		return Query{}, err
	}
	for _, tok := range toks {
		c, err := parseCond(tok)
		if err != nil {
			return Query{}, err
		}
		q.Conds = append(q.Conds, c)
	}
	return q, nil
}

// tokenize splits on whitespace, keeping double-quoted sections (which may
// contain spaces) inside their token. Quotes must balance.
func tokenize(s string) ([]string, error) {
	var (
		toks []string
		cur  strings.Builder
		in   bool // inside quotes
		any  bool // cur holds a token (possibly empty quoted string)
	)
	for _, r := range s {
		switch {
		case r == '"':
			in = !in
			any = true
			cur.WriteRune(r)
		case !in && (r == ' ' || r == '\t' || r == '\n' || r == '\r'):
			if any {
				toks = append(toks, cur.String())
				cur.Reset()
				any = false
			}
		default:
			any = true
			cur.WriteRune(r)
		}
	}
	if in {
		return nil, fmt.Errorf("trace: unterminated quote in %q", s)
	}
	if any {
		toks = append(toks, cur.String())
	}
	return toks, nil
}

// parseCond parses one `field op value` term.
func parseCond(tok string) (Cond, error) {
	// Longest operators first, so ">=" is not read as ">" + "=value".
	var field, op, val string
	for _, cand := range []string{"!=", ">=", "<=", "=", ">", "<"} {
		if i := strings.Index(tok, cand); i > 0 {
			field, op, val = tok[:i], cand, tok[i+len(cand):]
			break
		}
	}
	if op == "" {
		return Cond{}, fmt.Errorf("trace: condition %q: want field=value (ops = != > >= < <=)", tok)
	}
	val = unquote(val)
	if val == "" {
		return Cond{}, fmt.Errorf("trace: condition %q: empty value", tok)
	}
	// The grammar has no escape sequences, so a quote may only wrap a whole
	// value; embedded quotes would not survive the canonical String form.
	if strings.Contains(field, `"`) || strings.Contains(val, `"`) {
		return Cond{}, fmt.Errorf("trace: condition %q: embedded quotes are not supported", tok)
	}
	c := Cond{Field: field, Op: op, Value: val}
	switch field {
	case "name":
		if ordered(op) {
			return Cond{}, fmt.Errorf("trace: name supports only = and !=, got %q", op)
		}
	case "dur":
		d, err := time.ParseDuration(val)
		if err != nil {
			return Cond{}, fmt.Errorf("trace: dur value %q: %w", val, err)
		}
		c.dur = d
	case "status":
		if ordered(op) {
			return Cond{}, fmt.Errorf("trace: status supports only = and !=, got %q", op)
		}
		st, ok := ParseStatus(val)
		if !ok {
			return Cond{}, fmt.Errorf("trace: status value %q: want ok, error or degraded", val)
		}
		c.status = st
	default:
		if n, err := strconv.ParseFloat(val, 64); err == nil {
			c.num, c.isNum = n, true
		} else if ordered(op) {
			return Cond{}, fmt.Errorf("trace: attribute %s: %q is not numeric, %q needs a number", field, val, op)
		}
	}
	return c, nil
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// quoteIfNeeded renders a value back into token form.
func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\n\r") {
		return `"` + s + `"`
	}
	return s
}

// String renders the query back into its canonical textual form;
// Parse(q.String()) reproduces q.
func (q Query) String() string {
	parts := make([]string, len(q.Conds))
	for i, c := range q.Conds {
		parts[i] = c.Field + c.Op + quoteIfNeeded(c.Value)
	}
	return strings.Join(parts, " ")
}

// cmpOK applies an ordered/equality comparison result: c is negative,
// zero or positive as left <op> right.
func cmpOK(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	}
	return false
}

// MatchSpan reports whether one span satisfies every condition.
func (q Query) MatchSpan(sp *Span) bool {
	for _, c := range q.Conds {
		if !c.matchSpan(sp) {
			return false
		}
	}
	return true
}

func (c Cond) matchSpan(sp *Span) bool {
	switch c.Field {
	case "name":
		return cmpOK(c.Op, strings.Compare(sp.Name, c.Value))
	case "dur":
		switch {
		case sp.Duration == c.dur:
			return cmpOK(c.Op, 0)
		case sp.Duration > c.dur:
			return cmpOK(c.Op, 1)
		}
		return cmpOK(c.Op, -1)
	case "status":
		return cmpOK(c.Op, int(sp.Status)-int(c.status))
	}
	for _, a := range sp.Attrs {
		if a.Key != c.Field {
			continue
		}
		if c.isNum {
			if v, err := strconv.ParseFloat(a.Value, 64); err == nil {
				switch {
				case v == c.num:
					return cmpOK(c.Op, 0)
				case v > c.num:
					return cmpOK(c.Op, 1)
				default:
					return cmpOK(c.Op, -1)
				}
			}
		}
		return cmpOK(c.Op, strings.Compare(a.Value, c.Value))
	}
	// Absent attribute: != holds vacuously, everything else fails.
	return c.Op == "!="
}

// MatchTrace reports whether any span of the trace satisfies every
// condition (single-spanset TraceQL semantics).
func (q Query) MatchTrace(td *TraceData) bool {
	if len(q.Conds) == 0 {
		return true
	}
	for i := range td.Spans {
		if q.MatchSpan(&td.Spans[i]) {
			return true
		}
	}
	return false
}
