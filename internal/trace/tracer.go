package trace

// Tracer: trace-id minting, head sampling, and the per-request lifecycle.
// The head-sampling decision is taken once per request from a
// deterministic hash of the trace id, so a fixed seed reproduces exactly
// which requests of a test run were traced.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the zero Config.
const (
	// DefaultCapacity is the default trace-store size (retained traces,
	// ordinary + always-retained combined).
	DefaultCapacity = 2048
	// DefaultSlowThreshold is the root-span duration beyond which a trace
	// counts as slow and is always retained by tail sampling.
	DefaultSlowThreshold = 250 * time.Millisecond
)

// Config parameterizes a Tracer. The zero value samples every request
// (rate 1.0), retains DefaultCapacity traces and treats requests slower
// than DefaultSlowThreshold as always-retain.
type Config struct {
	// Capacity bounds the store (0 = DefaultCapacity). The always-retained
	// class (error/degraded/slow) and the ordinary class each get half, so
	// a flood of healthy traffic can never evict the failures an operator
	// is hunting.
	Capacity int
	// SampleRate is the head-sampling probability in [0, 1] (0 = 1.0, i.e.
	// trace everything; negative = trace nothing). Sampled-out requests
	// record no spans at all — they still get a trace id for the response
	// header, but cost no allocations on the query path.
	SampleRate float64
	// SlowThreshold is the always-retain latency bound (0 =
	// DefaultSlowThreshold; negative disables the slow rule).
	SlowThreshold time.Duration
	// Seed drives trace-id generation and therefore the deterministic
	// head-sampling sequence (0 = seed 1).
	Seed int64
}

func (c Config) capacity() int {
	if c.Capacity <= 0 {
		return DefaultCapacity
	}
	return c.Capacity
}

func (c Config) rate() float64 {
	switch {
	case c.SampleRate < 0:
		return 0
	case c.SampleRate == 0 || c.SampleRate > 1:
		return 1
	}
	return c.SampleRate
}

func (c Config) slow() time.Duration {
	switch {
	case c.SlowThreshold < 0:
		return time.Duration(1<<63 - 1)
	case c.SlowThreshold == 0:
		return DefaultSlowThreshold
	}
	return c.SlowThreshold
}

// rec is one in-flight trace: the spans recorded so far and the lock that
// makes concurrent fan-out goroutines' appends safe.
type rec struct {
	id string

	mu       sync.Mutex
	spans    []*Span
	nextSpan uint64
}

// newSpan appends a span to the trace. A zero duration means the span is
// still running (End stamps it); the post-hoc stage observer passes the
// final duration directly.
func (r *rec) newSpan(name string, parent uint64, start time.Time, dur time.Duration, attrs []Attr) *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSpan++
	s := &Span{
		SpanID: r.nextSpan, Parent: parent, Name: name,
		Start: start, Duration: dur, Attrs: attrs, rec: r,
	}
	r.spans = append(r.spans, s)
	return s
}

// Tracer mints per-request traces and owns their store. A nil *Tracer is
// valid and traces nothing.
type Tracer struct {
	cfg   Config
	store *Store
	seq   atomic.Uint64
	seed  uint64
}

// New creates a Tracer with its bounded store.
func New(cfg Config) *Tracer {
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 1
	}
	return &Tracer{cfg: cfg, store: newStore(cfg.capacity()), seed: seed}
}

// Store exposes the tracer's trace store (nil on a nil tracer).
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// splitmix64 is the id/sampling mixer: cheap, stateless, well distributed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Request is the root handle for one traced request: the trace id for the
// response header, the root span, and the End that runs tail sampling and
// stores the finished trace. A nil *Request (nil tracer) is a no-op; a
// head-sampled-out request has a Request with an id but no spans.
type Request struct {
	t    *Tracer
	rec  *rec
	root *Span
	id   string
}

// StartRequest mints a trace id, takes the head-sampling decision and — on
// a sampled request — opens the root span and threads it through the
// returned context. Sampled-out requests get back their context unchanged.
func (t *Tracer) StartRequest(ctx context.Context, name string) (context.Context, *Request) {
	return t.StartRequestRate(ctx, name, 0)
}

// StartRequestRate is StartRequest with a per-request head-sampling rate
// override in (0, 1] — the hook multi-tenant serving uses to apply a
// tenant's TraceSampleRate against the shared tracer. A non-positive rate
// inherits the tracer's configured rate; the deterministic id/sampling
// sequence is shared either way, so a fixed seed still reproduces exactly
// which requests were traced.
func (t *Tracer) StartRequestRate(ctx context.Context, name string, rate float64) (context.Context, *Request) {
	if t == nil {
		return ctx, nil
	}
	n := t.seq.Add(1)
	idBits := splitmix64(t.seed ^ n*0x2545f4914f6cdd1d)
	id := fmt.Sprintf("%016x", idBits)
	if rate <= 0 {
		rate = t.cfg.rate()
	} else if rate > 1 {
		rate = 1
	}
	// A second mix decorrelates the sampling decision from the id bits the
	// operator sees.
	if float64(splitmix64(idBits))/float64(1<<64) >= rate {
		return ctx, &Request{t: t, id: id}
	}
	r := &rec{id: id}
	root := r.newSpan(name, 0, time.Now(), 0, nil)
	return context.WithValue(ctx, ctxKey{}, root), &Request{t: t, rec: r, root: root, id: id}
}

// TraceID reports the request's trace id ("" on a nil request).
func (r *Request) TraceID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// Sampled reports whether the request records spans.
func (r *Request) Sampled() bool { return r != nil && r.rec != nil }

// Root returns the root span (nil when unsampled) for status and attrs.
func (r *Request) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// End closes the root span and runs the tail-sampling decision: error,
// degraded and slow traces are always retained (the protected ring),
// everything else competes for the ordinary ring. Call exactly once, after
// the request finished and its fan-out goroutines joined.
func (r *Request) End() {
	if r == nil || r.rec == nil {
		return
	}
	r.root.End()
	r.rec.mu.Lock()
	spans := make([]Span, len(r.rec.spans))
	for i, s := range r.rec.spans {
		spans[i] = *s
	}
	root := spans[0]
	r.rec.mu.Unlock()

	reason := "sampled"
	switch {
	case root.Status == StatusError:
		reason = "error"
	case root.Status == StatusDegraded:
		reason = "degraded"
	case root.Duration >= r.t.cfg.slow():
		reason = "slow"
	}
	r.t.store.put(&TraceData{
		TraceID:  r.id,
		Name:     root.Name,
		Start:    root.Start,
		Duration: root.Duration,
		Status:   root.Status,
		Retained: reason,
		Spans:    spans,
	}, reason != "sampled")
}
