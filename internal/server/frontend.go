package server

import "net/http"

// The FrontEnd service (§3) "exposes a search box to query the engine and a
// feedback form where the user can provide information about the answer
// quality". This file serves that interface: a single self-contained page
// talking to the JSON API. In production it is a separate microservice; the
// reproduction mounts it on the same server at "/".

const frontendHTML = `<!DOCTYPE html>
<html lang="it">
<head>
<meta charset="utf-8">
<title>UniAsk</title>
<style>
  body { font-family: system-ui, sans-serif; max-width: 780px; margin: 2rem auto; padding: 0 1rem; color: #1c2733; }
  h1 { font-size: 1.5rem; } h1 span { color: #b00; }
  .box { display: flex; gap: .5rem; margin: 1rem 0; }
  input[type=text] { flex: 1; padding: .6rem; font-size: 1rem; border: 1px solid #aaa; border-radius: 6px; }
  button { padding: .6rem 1.2rem; border: 0; border-radius: 6px; background: #1c2733; color: #fff; cursor: pointer; }
  #answer { background: #f4f6f8; border-radius: 8px; padding: 1rem; margin: 1rem 0; white-space: pre-wrap; }
  #answer.blocked { background: #fdf1f1; }
  .doc { border-bottom: 1px solid #e3e7ea; padding: .5rem 0; }
  .doc b { display: block; } .doc small { color: #5a6a78; }
  #feedback { border: 1px solid #e3e7ea; border-radius: 8px; padding: 1rem; margin-top: 1.5rem; }
  #feedback label { display: block; margin: .4rem 0; }
  .muted { color: #5a6a78; font-size: .9rem; }
</style>
</head>
<body>
<h1>Uni<span>Ask</span> <small class="muted">ricerca assistita della base di conoscenza</small></h1>
<div class="box">
  <input type="text" id="q" placeholder="Fai una domanda in italiano…" autofocus>
  <button onclick="ask()">Cerca</button>
</div>
<div id="answer" hidden></div>
<div id="docs"></div>
<div id="feedback" hidden>
  <b>La risposta è stata utile?</b>
  <label><input type="radio" name="helpful" value="true"> Sì</label>
  <label><input type="radio" name="helpful" value="false"> No</label>
  <label>Voto (1-5): <input type="number" id="rating" min="1" max="5" value="4"></label>
  <label>Link al documento corretto: <input type="text" id="links" placeholder="kb00042"></label>
  <label>Commenti: <input type="text" id="comments"></label>
  <button onclick="sendFeedback()">Invia feedback</button>
  <span id="fbstate" class="muted"></span>
</div>
<script>
let token = null, lastQuery = "";
async function login() {
  const r = await fetch("/api/login", {method: "POST", body: JSON.stringify({user: "web-user"})});
  token = (await r.json()).token;
}
async function ask() {
  if (!token) await login();
  lastQuery = document.getElementById("q").value;
  const r = await fetch("/api/ask", {
    method: "POST",
    headers: {Authorization: "Bearer " + token},
    body: JSON.stringify({question: lastQuery}),
  });
  const data = await r.json();
  const a = document.getElementById("answer");
  a.hidden = false;
  a.textContent = data.answer;
  a.className = data.answerValid ? "" : "blocked";
  const docs = document.getElementById("docs");
  docs.innerHTML = "";
  for (const d of data.documents || []) {
    const div = document.createElement("div");
    div.className = "doc";
    div.innerHTML = "<b></b><small></small>";
    div.querySelector("b").textContent = d.title;
    div.querySelector("small").textContent = d.parent + " — " + d.snippet;
    docs.appendChild(div);
  }
  document.getElementById("feedback").hidden = false;
}
async function sendFeedback() {
  const helpful = document.querySelector('input[name=helpful]:checked');
  const links = document.getElementById("links").value;
  await fetch("/api/feedback", {
    method: "POST",
    headers: {Authorization: "Bearer " + token},
    body: JSON.stringify({
      query: lastQuery,
      helpful: helpful ? helpful.value === "true" : false,
      relevantDocs: true,
      rating: parseInt(document.getElementById("rating").value, 10),
      links: links ? links.split(",").map(s => s.trim()) : [],
      comments: document.getElementById("comments").value,
    }),
  });
  document.getElementById("fbstate").textContent = "grazie!";
}
document.getElementById("q").addEventListener("keydown", e => { if (e.key === "Enter") ask(); });
</script>
</body>
</html>`

// handleFrontend serves the search page.
func (s *Server) handleFrontend(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(frontendHTML))
}
