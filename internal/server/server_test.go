package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uniask/internal/core"
	"uniask/internal/eventlog"
	"uniask/internal/kb"
	"uniask/internal/monitor"
	"uniask/internal/pipeline"
)

var (
	testSrv *httptest.Server
	testAPI *Server
	corpus  *kb.Corpus
)

func setup(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	if testSrv == nil {
		corpus = kb.Generate(kb.GenConfig{Docs: 150, Seed: 21})
		engine, err := core.BuildFromCorpus(context.Background(), corpus, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		testAPI = New(engine)
		testSrv = httptest.NewServer(testAPI.Handler())
	}
	return testSrv, testAPI
}

func login(t testing.TB, base, user string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"user": user})
	resp, err := http.Post(base+"/api/login", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login status = %d", resp.StatusCode)
	}
	var out struct {
		Token string `json:"token"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	if out.Token == "" {
		t.Fatal("empty token")
	}
	return out.Token
}

func authedReq(t *testing.T, method, url, token string, payload interface{}) *http.Response {
	t.Helper()
	var body *bytes.Reader
	if payload != nil {
		b, _ := json.Marshal(payload)
		body = bytes.NewReader(b)
	} else {
		body = bytes.NewReader(nil)
	}
	req, _ := http.NewRequest(method, url, body)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv, _ := setup(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestLoginRequired(t *testing.T) {
	srv, _ := setup(t)
	resp, _ := http.Get(srv.URL + "/api/search?q=carta")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated search status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestLoginRejectsEmptyUser(t *testing.T) {
	srv, _ := setup(t)
	resp, _ := http.Post(srv.URL+"/api/login", "application/json", strings.NewReader(`{"user":""}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestAskEndpoint(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "mario.rossi")
	d := corpus.Docs[0]
	resp := authedReq(t, "POST", srv.URL+"/api/ask", token, map[string]string{"question": d.Title + "?"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask status = %d", resp.StatusCode)
	}
	var out struct {
		Answer    string `json:"answer"`
		Guardrail string `json:"guardrail"`
		Documents []struct {
			ID, Parent, Title, Snippet string
			Score                      float64
		} `json:"documents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Answer == "" || len(out.Documents) == 0 {
		t.Fatalf("ask response incomplete: %+v", out)
	}
	if out.Documents[0].Parent == "" || out.Documents[0].Title == "" {
		t.Fatalf("document fields missing: %+v", out.Documents[0])
	}
}

func TestAskValidation(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "u1")
	resp := authedReq(t, "POST", srv.URL+"/api/ask", token, map[string]string{"question": " "})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("blank question status = %d", resp.StatusCode)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "u2")
	resp := authedReq(t, "GET", srv.URL+"/api/search?q="+strings.ReplaceAll(corpus.Docs[1].Title, " ", "+"), token, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	var out []struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out) == 0 {
		t.Fatal("no search results")
	}
}

func TestFeedbackFlow(t *testing.T) {
	srv, api := setup(t)
	token := login(t, srv.URL, "feedback.user")
	before := len(api.Feedback.All())
	resp := authedReq(t, "POST", srv.URL+"/api/feedback", token, Feedback{
		Query: "come bloccare la carta", Helpful: true, RelevantDocs: true,
		Rating: 4, Links: []string{"kb00001"}, Comments: "ottimo",
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("feedback status = %d", resp.StatusCode)
	}
	all := api.Feedback.All()
	if len(all) != before+1 {
		t.Fatalf("feedback not stored")
	}
	last := all[len(all)-1]
	if last.User != "feedback.user" || !last.Positive() || last.At.IsZero() {
		t.Fatalf("stored feedback = %+v", last)
	}
}

func TestFeedbackValidation(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "u3")
	resp := authedReq(t, "POST", srv.URL+"/api/feedback", token, Feedback{Rating: 9})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid rating status = %d", resp.StatusCode)
	}
}

func TestDashboardReflectsTraffic(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "dash.user")
	resp := authedReq(t, "POST", srv.URL+"/api/ask", token, map[string]string{"question": corpus.Docs[2].Title + "?"})
	resp.Body.Close()
	resp = authedReq(t, "GET", srv.URL+"/api/dashboard", token, nil)
	defer resp.Body.Close()
	var d monitor.Dashboard
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Queries == 0 || d.Users == 0 {
		t.Fatalf("dashboard empty: %+v", d)
	}
}

// TestDashboardRecordsPipelineStages checks the acceptance criterion that
// an end-to-end Ask through the server records per-stage latency for every
// Figure-1 stage in the monitoring dashboard.
func TestDashboardRecordsPipelineStages(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "stage.user")
	resp := authedReq(t, "POST", srv.URL+"/api/ask", token, map[string]string{"question": corpus.Docs[3].Title + "?"})
	resp.Body.Close()
	resp = authedReq(t, "GET", srv.URL+"/api/dashboard", token, nil)
	defer resp.Body.Close()
	var d monitor.Dashboard
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{
		pipeline.StageFilter, pipeline.StageRetrieval, pipeline.StageFusion,
		pipeline.StageRerank, pipeline.StageGeneration, pipeline.StageGuardrails,
	} {
		s, ok := d.StageByName(stage)
		if !ok || s.Count == 0 {
			t.Errorf("stage %q not recorded in dashboard: %+v", stage, d.Stages)
		}
	}
}

func TestFeedbackPositiveBoundary(t *testing.T) {
	cases := map[int]bool{1: false, 2: false, 3: true, 4: true, 5: true}
	for rating, want := range cases {
		f := Feedback{Rating: rating}
		if f.Positive() != want {
			t.Errorf("rating %d positive = %v", rating, f.Positive())
		}
	}
}

func TestSnippet(t *testing.T) {
	if got := snippet("breve", 100); got != "breve" {
		t.Fatalf("snippet = %q", got)
	}
	long := strings.Repeat("parola ", 50)
	got := snippet(long, 40)
	if len(got) > 45 || !strings.HasSuffix(got, "…") {
		t.Fatalf("snippet = %q", got)
	}
}

func TestConcurrentAsk(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "par.user")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			q := fmt.Sprintf("%s variante %d?", corpus.Docs[i%10].Title, i)
			resp := authedReq(t, "POST", srv.URL+"/api/ask", token, map[string]string{"question": q})
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHarvestGroundTruth(t *testing.T) {
	store := &FeedbackStore{}
	store.Add(Feedback{User: "a", Query: "come bloccare la carta?", Rating: 2, Links: []string{"kb00002", "kb00001"}})
	store.Add(Feedback{User: "b", Query: "come bloccare la carta?", Rating: 4, Links: []string{"kb00001"}})
	store.Add(Feedback{User: "c", Query: "senza link", Rating: 3})
	store.Add(Feedback{User: "d", Query: "bonifico estero", Rating: 5, Links: []string{"kb00009"}})

	ds := store.HarvestGroundTruth()
	if len(ds.Queries) != 2 {
		t.Fatalf("harvested %d queries", len(ds.Queries))
	}
	first := ds.Queries[0]
	if first.Text != "come bloccare la carta?" {
		t.Fatalf("first = %+v", first)
	}
	if len(first.Relevant) != 2 || first.Relevant[0] != "kb00001" || first.Relevant[1] != "kb00002" {
		t.Fatalf("links not merged/sorted: %v", first.Relevant)
	}
	if first.ID != "f0000" || ds.Queries[1].ID != "f0001" {
		t.Fatalf("ids = %s, %s", first.ID, ds.Queries[1].ID)
	}
}

func TestNegativeFeedbackQueries(t *testing.T) {
	store := &FeedbackStore{}
	store.Add(Feedback{User: "a", Query: "q1", Rating: 2})
	store.Add(Feedback{User: "b", Query: "q2", Rating: 5})
	store.Add(Feedback{User: "c", Query: "q1", Rating: 4}) // latest for q1 is positive
	store.Add(Feedback{User: "d", Query: "q3", Rating: 1})
	neg := store.NegativeFeedbackQueries()
	if len(neg) != 1 || neg[0] != "q3" {
		t.Fatalf("negative = %v", neg)
	}
}

func TestEventLogRecordsTraffic(t *testing.T) {
	srv, api := setup(t)
	token := login(t, srv.URL, "log.user")
	before := api.Log.Count(eventlog.Query{Type: "query"})
	resp := authedReq(t, "POST", srv.URL+"/api/ask", token, map[string]string{"question": corpus.Docs[4].Title + "?"})
	resp.Body.Close()
	if got := api.Log.Count(eventlog.Query{Type: "query"}); got != before+1 {
		t.Fatalf("query events = %d, want %d", got, before+1)
	}
	resp = authedReq(t, "POST", srv.URL+"/api/feedback", token, Feedback{Query: "x", Rating: 5})
	resp.Body.Close()
	if got := api.Log.Count(eventlog.Query{Type: "feedback", User: "log.user"}); got != 1 {
		t.Fatalf("feedback events = %d", got)
	}
}

func TestFrontendPage(t *testing.T) {
	srv, _ := setup(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	page := string(body)
	for _, want := range []string{"UniAsk", "/api/ask", "/api/feedback", "feedback"} {
		if !strings.Contains(page, want) {
			t.Errorf("frontend missing %q", want)
		}
	}
	// Unknown paths 404.
	resp2, _ := http.Get(srv.URL + "/nope")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", resp2.StatusCode)
	}
}

// TestPprofEndpoints verifies the profiling routes are wired into the mux
// (the server does not use http.DefaultServeMux, so they must be explicit).
func TestPprofEndpoints(t *testing.T) {
	srv, _ := setup(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
