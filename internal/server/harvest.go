package server

import (
	"sort"

	"uniask/internal/kb"
)

// Ground-truth harvesting (§8): the feedback form's last two fields — links
// to the documents containing the right answer, and free comments — were
// "extremely useful to gather ground-truth documents and answers for
// questions on which the system had failed". HarvestGroundTruth turns the
// accumulated feedback into an evaluation dataset for the next tuning
// iteration.

// HarvestGroundTruth builds a query dataset from feedback entries that
// carry document links. Entries for the same query are merged (links
// unioned); negative ratings are kept too — a user that links the right
// document after a bad answer is exactly the signal the team mined.
func (s *FeedbackStore) HarvestGroundTruth() kb.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()

	byQuery := make(map[string]map[string]bool)
	var order []string
	for _, f := range s.items {
		if f.Query == "" || len(f.Links) == 0 {
			continue
		}
		set, ok := byQuery[f.Query]
		if !ok {
			set = make(map[string]bool)
			byQuery[f.Query] = set
			order = append(order, f.Query)
		}
		for _, link := range f.Links {
			set[link] = true
		}
	}

	ds := kb.Dataset{Name: "harvested-feedback"}
	for i, q := range order {
		links := make([]string, 0, len(byQuery[q]))
		for l := range byQuery[q] {
			links = append(links, l)
		}
		sort.Strings(links)
		ds.Queries = append(ds.Queries, kb.Query{
			ID:       harvestID(i),
			Text:     q,
			Kind:     kb.HumanQuery,
			Relevant: links,
		})
	}
	return ds
}

func harvestID(i int) string {
	// f0000, f0001, ...
	digits := []byte{'f', '0', '0', '0', '0'}
	for p := 4; p >= 1 && i > 0; p-- {
		digits[p] = byte('0' + i%10)
		i /= 10
	}
	return string(digits)
}

// NegativeFeedbackQueries returns the queries whose latest rating was
// negative — the failure sample the team reviewed weekly during the pilots.
func (s *FeedbackStore) NegativeFeedbackQueries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	latest := make(map[string]Feedback)
	var order []string
	for _, f := range s.items {
		if f.Query == "" {
			continue
		}
		if _, seen := latest[f.Query]; !seen {
			order = append(order, f.Query)
		}
		latest[f.Query] = f
	}
	var out []string
	for _, q := range order {
		if !latest[q].Positive() {
			out = append(out, q)
		}
	}
	return out
}
