// Package server implements UniAsk's BackEnd service (§3): a REST layer
// with login, search/ask and feedback endpoints, a feedback store that
// collects the granular feedback form of §8, and monitoring hooks feeding
// the Figure-3 dashboard. The production deployment runs this as a
// Kubernetes microservice behind a separate FrontEnd; here both are one
// net/http server (the FrontEnd's search box and feedback modal are the
// JSON API's clients).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"uniask/internal/core"
	"uniask/internal/eventlog"
	"uniask/internal/monitor"
	"uniask/internal/resilience"
	"uniask/internal/session"
	"uniask/internal/tenant"
	"uniask/internal/trace"
)

// TraceIDHeader is the response header carrying the request's trace id on
// the query endpoints — the handle an operator pastes into /api/traces/{id}
// when a user reports a slow or wrong answer.
const TraceIDHeader = "X-Uniask-Trace-Id"

// Feedback is one granular feedback submission, mirroring the §8 pop-up
// modal fields.
type Feedback struct {
	// User is the session user that submitted the feedback.
	User string `json:"user"`
	// Query is the question the feedback refers to.
	Query string `json:"query"`
	// Helpful answers "Was the answer helpful?".
	Helpful bool `json:"helpful"`
	// RelevantDocs answers "Did the system retrieve relevant documents?".
	RelevantDocs bool `json:"relevantDocs"`
	// Rating is the 1-5 experience score (1-2 negative, 3-5 positive).
	Rating int `json:"rating"`
	// Links lets the user point at the documents holding the right answer.
	Links []string `json:"links,omitempty"`
	// Comments is the free-text field.
	Comments string `json:"comments,omitempty"`
	// At is the submission time.
	At time.Time `json:"at"`
}

// Positive reports whether the rating counts as positive (3-5 per §8).
func (f Feedback) Positive() bool { return f.Rating >= 3 }

// FeedbackStore accumulates feedback submissions.
type FeedbackStore struct {
	mu    sync.Mutex
	items []Feedback
}

// Add validates and stores a feedback entry.
func (s *FeedbackStore) Add(f Feedback) error {
	if f.Rating < 1 || f.Rating > 5 {
		return fmt.Errorf("server: rating %d out of range 1-5", f.Rating)
	}
	if f.User == "" {
		return errors.New("server: feedback requires a user")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, f)
	return nil
}

// All returns a copy of the stored feedback.
func (s *FeedbackStore) All() []Feedback {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Feedback, len(s.items))
	copy(out, s.items)
	return out
}

// DefaultRequestTimeout caps how long one /api/ask or /api/search request
// may run before the server gives up with 503 (a hung dependency must not
// wedge handler goroutines indefinitely).
const DefaultRequestTimeout = 10 * time.Second

// Server is the REST backend.
type Server struct {
	Engine   *core.Engine
	Metrics  *monitor.Metrics
	Feedback *FeedbackStore
	// Log is the structured service log the §9 dashboard queries.
	Log *eventlog.Log
	// RequestTimeout is the per-request deadline for the query endpoints
	// (0 = DefaultRequestTimeout; negative disables the deadline). SSE
	// session streams are exempt — they use per-write deadlines instead.
	RequestTimeout time.Duration

	// Sessions is the conversational session store (created by New /
	// NewMultiTenant; replace before serving to customize TTL or budget).
	Sessions *session.Store
	// SSEHeartbeat is the keep-alive comment interval on idle session
	// streams (0 = DefaultSSEHeartbeat; negative disables heartbeats).
	SSEHeartbeat time.Duration
	// SSEWriteTimeout is the per-write deadline on session streams
	// (0 = sse.DefaultWriteTimeout; negative disables it).
	SSEWriteTimeout time.Duration

	// Tenants, when set, switches the server to multi-tenant serving:
	// Engine is nil, queries name a tenant (X-Uniask-Tenant header or
	// /t/{tenant}/api/... path) and route to that tenant's engine. See
	// NewMultiTenant.
	Tenants *tenant.Registry
	// Admission is the multi-tenant front door; when set, every query
	// passes through it before touching an engine and shed requests get
	// 429 + Retry-After, never 5xx.
	Admission *tenant.Controller
	// Tracer is the shared tracer in multi-tenant mode (every tenant
	// engine aliases it, so one store answers /api/traces across tenants).
	Tracer *trace.Tracer

	mu       sync.Mutex
	sessions map[string]string // token -> user
	seq      int
}

// New creates a server over an engine. The server's metrics registry is
// installed as the engine's pipeline observer, so every Ask/Search that
// flows through the engine feeds the per-stage section of the Figure-3
// dashboard (GET /api/dashboard), and as the engine's breaker-transition
// hook, so the dashboard's breaker gauge tracks circuit state. On a sharded
// engine the dashboard additionally carries per-shard index gauges.
func New(engine *core.Engine) *Server {
	s := &Server{
		Engine:   engine,
		Metrics:  monitor.New(),
		Feedback: &FeedbackStore{},
		Log:      eventlog.New(),
		sessions: make(map[string]string),
	}
	engine.SetObserver(s.Metrics)
	engine.SetBreakerNotify(s.Metrics.RecordBreakerTransition)
	if sh := engine.Sharded(); sh != nil {
		s.Metrics.SetShardSource(func() []monitor.ShardGauge {
			stats := sh.ShardStats()
			out := make([]monitor.ShardGauge, len(stats))
			for i, st := range stats {
				out[i] = monitor.ShardGauge{
					Shard: st.Shard, Docs: st.Docs, Live: st.Live,
					Tombstones: st.Tombstones, Postings: st.Postings,
					Queries: st.Queries, AvgQueryLatency: st.AvgQueryLatency,
				}
			}
			return out
		})
	}
	s.Metrics.SetSegmentSource(func() []monitor.SegmentGauge {
		stats := engine.SegmentStats()
		out := make([]monitor.SegmentGauge, len(stats))
		for i, st := range stats {
			out[i] = monitor.SegmentGauge{
				Shard: i, MemtableDocs: st.MemtableDocs,
				Segments: st.Segments, Backlog: st.Backlog,
				Seals: st.Seals, Compactions: st.Compactions,
				StatsKey: st.StatsKey,
			}
		}
		return out
	})
	s.Metrics.SetCacheSource(func() (monitor.CacheGauge, bool) {
		cs, ok := engine.CacheStats()
		if !ok {
			return monitor.CacheGauge{}, false
		}
		return monitor.CacheGauge{
			Hits: cs.Hits, Misses: cs.Misses, HitRate: cs.HitRate(),
			Entries: cs.Entries, DeleteEvictions: cs.DeleteEvictions,
		}, true
	})
	s.wireSessionMetrics()
	return s
}

// withDeadline bounds a query handler: the request context gets the
// configured deadline, so a hung dependency surfaces as a deadline error
// the handler maps to 503 instead of a goroutine stuck forever.
func (s *Server) withDeadline(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		timeout := s.RequestTimeout
		if timeout == 0 {
			timeout = DefaultRequestTimeout
		}
		if timeout < 0 {
			h(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// unavailable reports whether err means the backend could not serve the
// request right now — a deadline that fired or an open circuit — which maps
// to 503 rather than 500.
func unavailable(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, resilience.ErrBreakerOpen)
}

// queryErrorStatus maps an Ask/Search error to its HTTP status.
func queryErrorStatus(err error) int {
	if unavailable(err) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/login", s.handleLogin)
	mux.HandleFunc("POST /api/ask", s.withDeadline(s.handleAsk))
	mux.HandleFunc("GET /api/search", s.withDeadline(s.handleSearch))
	mux.HandleFunc("POST /api/feedback", s.handleFeedback)
	// Session routes: the ask stream is deliberately NOT wrapped in
	// withDeadline — an SSE stream outlives any per-request deadline; the
	// sse.Writer's per-write deadline bounds each frame instead.
	mux.HandleFunc("POST /api/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /api/sessions/{sid}", s.handleSessionGet)
	mux.HandleFunc("POST /api/sessions/{sid}/ask", s.handleSessionAsk)
	mux.HandleFunc("POST /api/sessions/{sid}/feedback", s.handleSessionFeedback)
	mux.HandleFunc("GET /api/dashboard", s.handleDashboard)
	mux.HandleFunc("GET /api/traces", s.handleTraces)
	mux.HandleFunc("GET /api/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("GET /api/health", s.handleHealth)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if s.Tenants != nil {
		// Path-scoped aliases: /t/{tenant}/api/... pins the tenant without a
		// header, so per-tenant dashboards and traces are plain links.
		mux.HandleFunc("POST /t/{tenant}/api/login", s.handleLogin)
		mux.HandleFunc("POST /t/{tenant}/api/ask", s.withDeadline(s.handleAsk))
		mux.HandleFunc("GET /t/{tenant}/api/search", s.withDeadline(s.handleSearch))
		mux.HandleFunc("POST /t/{tenant}/api/feedback", s.handleFeedback)
		mux.HandleFunc("POST /t/{tenant}/api/sessions", s.handleSessionCreate)
		mux.HandleFunc("GET /t/{tenant}/api/sessions/{sid}", s.handleSessionGet)
		mux.HandleFunc("POST /t/{tenant}/api/sessions/{sid}/ask", s.handleSessionAsk)
		mux.HandleFunc("POST /t/{tenant}/api/sessions/{sid}/feedback", s.handleSessionFeedback)
		mux.HandleFunc("GET /t/{tenant}/api/dashboard", s.handleDashboard)
		mux.HandleFunc("GET /t/{tenant}/api/traces", s.handleTraces)
		mux.HandleFunc("GET /t/{tenant}/api/health", s.handleHealth)
	}
	// Profiling endpoints for live CPU/heap/goroutine capture against a
	// running instance. Registered explicitly because this mux is not
	// http.DefaultServeMux.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /", s.handleFrontend)
	return mux
}

// loginRequest is the login payload. The production system delegates to the
// corporate identity provider; the reproduction accepts any non-empty
// employee id and issues a bearer token.
type loginRequest struct {
	User string `json:"user"`
}

type loginResponse struct {
	Token string `json:"token"`
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req loginRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.User) == "" {
		httpError(w, http.StatusBadRequest, "user required")
		return
	}
	s.mu.Lock()
	s.seq++
	token := fmt.Sprintf("tok-%s-%06d", req.User, s.seq)
	s.sessions[token] = req.User
	s.mu.Unlock()
	writeJSON(w, loginResponse{Token: token})
}

// auth resolves the bearer token to a user ("" when unauthenticated).
func (s *Server) auth(r *http.Request) string {
	h := r.Header.Get("Authorization")
	token := strings.TrimPrefix(h, "Bearer ")
	if token == h {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[token]
}

// askRequest is the question payload.
type askRequest struct {
	Question string `json:"question"`
}

// askResponse mirrors what the FrontEnd renders: the answer (or apology),
// its validity, the guardrail outcome and the document list.
type askResponse struct {
	Answer      string        `json:"answer"`
	AnswerValid bool          `json:"answerValid"`
	Guardrail   string        `json:"guardrail"`
	Citations   []string      `json:"citations,omitempty"`
	Documents   []docResponse `json:"documents"`
	// Degraded marks answers computed at reduced fidelity (shed vector
	// legs, skipped expansion, extractive fallback); DegradedParts names
	// what was shed.
	Degraded      bool     `json:"degraded,omitempty"`
	DegradedParts []string `json:"degradedParts,omitempty"`
	// TraceID identifies this request's trace (also in X-Uniask-Trace-Id):
	// GET /api/traces/{traceId} returns the full span tree.
	TraceID string `json:"traceId,omitempty"`
}

type docResponse struct {
	ID      string  `json:"id"`
	Parent  string  `json:"parent"`
	Title   string  `json:"title"`
	Snippet string  `json:"snippet"`
	Score   float64 `json:"score"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	user := s.auth(r)
	if user == "" {
		httpError(w, http.StatusUnauthorized, "login required")
		return
	}
	var req askRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Question) == "" {
		httpError(w, http.StatusBadRequest, "question required")
		return
	}
	q, ok := s.queryContext(w, r)
	if !ok {
		return
	}
	ctx, treq := q.eng.Tracer.StartRequestRate(q.ctx, "ask", q.lim.TraceSampleRate)
	defer treq.End()
	if id := treq.TraceID(); id != "" {
		w.Header().Set(TraceIDHeader, id)
	}
	treq.Root().SetAttr("user", user)
	if q.tenant != "" {
		treq.Root().SetAttr("tenant", q.tenant)
	}
	start := time.Now()
	defer func() { q.release(time.Since(start)) }()
	resp, err := q.eng.Ask(ctx, req.Question)
	latency := time.Since(start)
	if err != nil {
		treq.Root().SetError(err)
		s.Metrics.RecordQuery(user, latency, "", true)
		s.Log.Append(eventlog.Event{At: time.Now(), Service: "backend", Type: "error", User: user})
		httpErrorTraced(w, queryErrorStatus(err), "ask failed", treq.TraceID())
		return
	}
	if resp.Degraded {
		// A degraded answer marks the whole trace degraded, which tail
		// sampling always retains.
		treq.Root().SetStatus(trace.StatusDegraded)
		treq.Root().SetAttr("degradedParts", strings.Join(resp.DegradedParts, ","))
	}
	s.Metrics.RecordQuery(user, latency, resp.Guardrail.String(), false)
	s.Metrics.RecordDegraded(resp.DegradedParts)
	s.Log.Append(eventlog.Event{
		At: time.Now(), Service: "backend", Type: "query", User: user,
		DurationMS: latency.Milliseconds(),
		Fields: map[string]string{
			"guardrail": resp.Guardrail.String(),
			"valid":     strconv.FormatBool(resp.AnswerValid),
		},
	})
	out := askResponse{
		Answer:        resp.Answer,
		AnswerValid:   resp.AnswerValid,
		Guardrail:     resp.Guardrail.String(),
		Citations:     resp.Citations,
		Degraded:      resp.Degraded,
		DegradedParts: resp.DegradedParts,
		TraceID:       treq.TraceID(),
	}
	for i, d := range resp.Documents {
		if i >= 10 {
			break
		}
		out.Documents = append(out.Documents, docResponse{
			ID: d.ChunkID, Parent: d.ParentID, Title: d.Title,
			Snippet: snippet(d.Content, 160), Score: d.Score,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	user := s.auth(r)
	if user == "" {
		httpError(w, http.StatusUnauthorized, "login required")
		return
	}
	query := r.URL.Query().Get("q")
	if strings.TrimSpace(query) == "" {
		httpError(w, http.StatusBadRequest, "q required")
		return
	}
	q, ok := s.queryContext(w, r)
	if !ok {
		return
	}
	ctx, treq := q.eng.Tracer.StartRequestRate(q.ctx, "search", q.lim.TraceSampleRate)
	defer treq.End()
	if id := treq.TraceID(); id != "" {
		w.Header().Set(TraceIDHeader, id)
	}
	treq.Root().SetAttr("user", user)
	if q.tenant != "" {
		treq.Root().SetAttr("tenant", q.tenant)
	}
	start := time.Now()
	defer func() { q.release(time.Since(start)) }()
	results, err := q.eng.Search(ctx, query)
	latency := time.Since(start)
	if err != nil {
		treq.Root().SetError(err)
		s.Metrics.RecordQuery(user, latency, "", true)
		httpErrorTraced(w, queryErrorStatus(err), "search failed", treq.TraceID())
		return
	}
	s.Metrics.RecordQuery(user, latency, "", false)
	var out []docResponse
	for i, d := range results {
		if i >= 20 {
			break
		}
		out = append(out, docResponse{
			ID: d.ChunkID, Parent: d.ParentID, Title: d.Title,
			Snippet: snippet(d.Content, 160), Score: d.Score,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	user := s.auth(r)
	if user == "" {
		httpError(w, http.StatusUnauthorized, "login required")
		return
	}
	var f Feedback
	if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
		httpError(w, http.StatusBadRequest, "invalid feedback")
		return
	}
	f.User = user
	f.At = time.Now()
	if err := s.Feedback.Add(f); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.Metrics.RecordFeedback(f.Positive())
	s.Log.Append(eventlog.Event{
		At: time.Now(), Service: "backend", Type: "feedback", User: user,
		Fields: map[string]string{"positive": strconv.FormatBool(f.Positive())},
	})
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	snap := s.Metrics.Snapshot()
	if id := s.requestTenant(r); id != "" && s.Tenants != nil {
		s.writeTenantDashboard(w, snap, id)
		return
	}
	writeJSON(w, snap)
}

// traceSummary is one row of the GET /api/traces listing.
type traceSummary struct {
	TraceID    string    `json:"traceId"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"durationMs"`
	Status     string    `json:"status"`
	// Retained says why tail sampling kept the trace ("error", "degraded",
	// "slow", or "sampled" for the ordinary ring).
	Retained string `json:"retained"`
	Spans    int    `json:"spans"`
}

// defaultTraceListLimit caps an unfiltered /api/traces listing.
const defaultTraceListLimit = 50

// handleTraces lists retained traces, newest first. Query parameters
// compose conjunctively:
//
//	q            TraceQL-lite span matcher, e.g. name=retrieval dur>50ms status=error
//	min_duration whole-trace duration floor (Go duration literal)
//	status       trace outcome: ok | error | degraded
//	stage        keep traces containing a span with this name ("retrieval", ...)
//	shard        keep traces that touched this shard id
//	tenant       keep traces whose root span carries tenant=<id> (multi-tenant
//	             serving; /t/{tenant}/api/traces pins this filter)
//	session      keep traces whose spans carry session=<id> — every turn of a
//	             conversation, in order
//	limit        row cap (default 50)
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	store := s.traceStore()
	qp := r.URL.Query()

	tq, err := trace.Parse(qp.Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var minDur time.Duration
	if v := qp.Get("min_duration"); v != "" {
		if minDur, err = time.ParseDuration(v); err != nil {
			httpError(w, http.StatusBadRequest, "min_duration: "+err.Error())
			return
		}
	}
	var (
		wantStatus trace.Status
		hasStatus  bool
	)
	if v := qp.Get("status"); v != "" {
		if wantStatus, hasStatus = trace.ParseStatus(v); !hasStatus {
			httpError(w, http.StatusBadRequest, "status: want ok, error or degraded")
			return
		}
	}
	stage := qp.Get("stage")
	shardID := qp.Get("shard")
	sessionID := qp.Get("session")
	tenantID := qp.Get("tenant")
	if id := r.PathValue("tenant"); id != "" {
		tenantID = id
	}
	limit := defaultTraceListLimit
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit: want a positive integer")
			return
		}
		limit = n
	}

	filter := func(td *trace.TraceData) bool {
		if td.Duration < minDur {
			return false
		}
		if hasStatus && td.Status != wantStatus {
			return false
		}
		if stage != "" {
			if _, ok := td.SpanByName(stage); !ok {
				return false
			}
		}
		if shardID != "" && !traceTouchedShard(td, shardID) {
			return false
		}
		if tenantID != "" && !traceHasAttr(td, "tenant", tenantID) {
			return false
		}
		if sessionID != "" && !traceHasAttr(td, "session", sessionID) {
			return false
		}
		return tq.MatchTrace(td)
	}
	out := []traceSummary{}
	for _, td := range store.List(filter, limit) {
		out = append(out, traceSummary{
			TraceID:    td.TraceID,
			Name:       td.Name,
			Start:      td.Start,
			DurationMS: float64(td.Duration) / float64(time.Millisecond),
			Status:     td.Status.String(),
			Retained:   td.Retained,
			Spans:      len(td.Spans),
		})
	}
	writeJSON(w, out)
}

// traceTouchedShard reports whether any span of the trace carries a
// shard=<id> attribute (the per-shard fan-out spans do).
func traceTouchedShard(td *trace.TraceData, id string) bool {
	return traceHasAttr(td, "shard", id)
}

// traceHasAttr reports whether any span of the trace carries key=value.
func traceHasAttr(td *trace.TraceData, key, value string) bool {
	for i := range td.Spans {
		for _, a := range td.Spans[i].Attrs {
			if a.Key == key && a.Value == value {
				return true
			}
		}
	}
	return false
}

// traceDetail is the GET /api/traces/{id} payload: the listing row plus the
// full span tree.
type traceDetail struct {
	traceSummary
	Tree []*trace.Node `json:"tree"`
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	td, ok := s.traceStore().Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "trace not found (evicted, unsampled, or never existed)")
		return
	}
	writeJSON(w, traceDetail{
		traceSummary: traceSummary{
			TraceID:    td.TraceID,
			Name:       td.Name,
			Start:      td.Start,
			DurationMS: float64(td.Duration) / float64(time.Millisecond),
			Status:     td.Status.String(),
			Retained:   td.Retained,
			Spans:      len(td.Spans),
		},
		Tree: td.Tree(),
	})
}

// healthResponse is the /api/health readiness payload.
type healthResponse struct {
	Status   string                     `json:"status"`
	Breakers []resilience.BreakerStatus `json:"breakers,omitempty"`
}

// handleHealth is the readiness probe: 200 while every circuit breaker is
// closed (or half-open — the system is probing its way back), 503 while any
// dependency's breaker is open and queries would be served degraded. In
// multi-tenant serving a tenant-scoped request reports that tenant's engine
// (and its current admission state); the unscoped probe aggregates across
// active tenants.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Tenants != nil {
		s.handleTenantHealth(w, r)
		return
	}
	breakers := s.Engine.Breakers()
	status := "ok"
	code := http.StatusOK
	for _, b := range breakers {
		if b.State == "open" {
			status = "degraded"
			code = http.StatusServiceUnavailable
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(healthResponse{Status: status, Breakers: breakers})
}

// Serve runs the server until ctx is cancelled.
func (s *Server) Serve(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errCh:
		return err
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// httpErrorTraced is httpError plus the request's trace id, so a 500/503
// body carries the handle for /api/traces/{id} — the error trace is always
// tail-retained, so the id stays resolvable.
func httpErrorTraced(w http.ResponseWriter, code int, msg, traceID string) {
	if traceID == "" {
		httpError(w, code, msg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "traceId": traceID})
}

// snippet truncates text on a word boundary.
func snippet(text string, max int) string {
	if len(text) <= max {
		return text
	}
	cut := text[:max]
	if i := strings.LastIndexByte(cut, ' '); i > 0 {
		cut = cut[:i]
	}
	return cut + "…"
}
