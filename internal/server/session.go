package server

// Conversational sessions over SSE: the HTTP face of internal/session.
// POST /api/sessions opens a conversation, POST /api/sessions/{sid}/ask
// streams one turn — citations as soon as retrieval lands, answer tokens as
// the LLM produces them, a terminal done event always — and
// POST /api/sessions/{sid}/feedback folds a click on a cited document into
// the engine's rerank weights. Session turns pass the same tenant front
// door as one-shot asks (admission slot held for the stream's duration), so
// a tenant's open streams count against its concurrency quota.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uniask/internal/core"
	"uniask/internal/eventlog"
	"uniask/internal/monitor"
	"uniask/internal/rerank"
	"uniask/internal/search"
	"uniask/internal/session"
	"uniask/internal/sse"
	"uniask/internal/tenant"
	"uniask/internal/trace"
)

// DefaultSSEHeartbeat is how often an idle stream gets a keep-alive comment
// so intermediaries don't reap the connection between token bursts.
const DefaultSSEHeartbeat = 15 * time.Second

// wireSessionMetrics creates the server's session store and installs the
// session and rerank-feedback dashboard gauges. Called by both New and
// NewMultiTenant.
func (s *Server) wireSessionMetrics() {
	if s.Sessions == nil {
		s.Sessions = session.NewStore(session.Config{})
	}
	s.Metrics.SetSessionSource(func() (monitor.SessionGauge, bool) {
		if s.Sessions == nil {
			return monitor.SessionGauge{}, false
		}
		st := s.Sessions.Stats()
		return monitor.SessionGauge{
			Live: st.Live, Turns: st.Turns,
			Expired: st.Expired, Evicted: st.Evicted,
			OpenStreams:   st.Streams.Open,
			StreamsOpened: st.Streams.Opened,
			StreamsClosed: st.Streams.Closed,
			Heartbeats:    st.Streams.Heartbeats,
			Disconnects:   st.Streams.Disconnects,
		}, true
	})
	s.Metrics.SetRerankSource(func() []monitor.RerankGauge {
		var out []monitor.RerankGauge
		add := func(tenantID string, eng *core.Engine) {
			if eng == nil || eng.Searcher == nil || eng.Searcher.Reranker == nil {
				return
			}
			st := eng.Searcher.Reranker.Stats()
			out = append(out, monitor.RerankGauge{
				Tenant: tenantID, Clicks: st.Clicks,
				Version: st.Version, Drift: st.Drift,
			})
		}
		if s.Tenants != nil {
			for _, id := range s.Tenants.Active() {
				if eng, ok := s.Tenants.EngineIfActive(id); ok {
					add(id, eng)
				}
			}
		} else {
			add("", s.Engine)
		}
		return out
	})
}

// sessionTenant resolves the store-side tenant key for a session request:
// the request's tenant in multi-tenant serving, "" otherwise. In
// multi-tenant mode it validates the tenant and writes the error response
// itself (ok=false).
func (s *Server) sessionTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	if s.Tenants == nil {
		return "", true
	}
	id := s.requestTenant(r)
	if id == "" {
		httpError(w, http.StatusBadRequest, "tenant required ("+TenantHeader+" header or /t/{tenant}/api/... path)")
		return "", false
	}
	if err := tenant.ValidateID(id); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return "", false
	}
	if !s.Tenants.AllowUnknown {
		if ov := s.Tenants.Overrides(); ov == nil || !ov.Known(id) {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", id))
			return "", false
		}
	}
	return id, true
}

// tenantSessionCap resolves the per-tenant live-session cap for Create:
// the overrides' maxSessions when set, session.DefaultTenantSessions
// otherwise; negative means uncapped (0 for the store). Single-tenant
// serving has no per-tenant cap — the global LRU budget still bounds it.
func (s *Server) tenantSessionCap(tenantID string) int {
	if s.Tenants == nil {
		return 0
	}
	max := 0
	if ov := s.Tenants.Overrides(); ov != nil {
		max = ov.For(tenantID).MaxSessions
	}
	switch {
	case max == 0:
		return session.DefaultTenantSessions
	case max < 0:
		return 0
	default:
		return max
	}
}

// sessionResponse is the POST /api/sessions and GET /api/sessions/{sid}
// payload.
type sessionResponse struct {
	ID        string         `json:"id"`
	Tenant    string         `json:"tenant,omitempty"`
	CreatedAt time.Time      `json:"createdAt"`
	Turns     []turnResponse `json:"turns"`
}

type turnResponse struct {
	Question       string        `json:"question"`
	RewrittenQuery string        `json:"rewrittenQuery,omitempty"`
	Answer         string        `json:"answer"`
	Documents      []docResponse `json:"documents"`
	TraceID        string        `json:"traceId,omitempty"`
	Degraded       bool          `json:"degraded,omitempty"`
	DegradedParts  []string      `json:"degradedParts,omitempty"`
}

func sessionView(sess session.Session) sessionResponse {
	out := sessionResponse{
		ID: sess.ID, Tenant: sess.Tenant, CreatedAt: sess.CreatedAt,
		Turns: []turnResponse{},
	}
	for _, t := range sess.Turns {
		tr := turnResponse{
			Question:       t.Question,
			RewrittenQuery: t.RewrittenQuery,
			Answer:         t.Answer,
			TraceID:        t.TraceID,
			Degraded:       t.Degraded,
			DegradedParts:  t.DegradedParts,
			Documents:      []docResponse{},
		}
		for _, d := range t.Documents {
			tr.Documents = append(tr.Documents, docResponse{
				ID: d.ChunkID, Parent: d.ParentID, Title: d.Title,
			})
		}
		out.Turns = append(out.Turns, tr)
	}
	return out
}

// handleSessionCreate opens a conversation: POST /api/sessions.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	user := s.auth(r)
	if user == "" {
		httpError(w, http.StatusUnauthorized, "login required")
		return
	}
	tenantID, ok := s.sessionTenant(w, r)
	if !ok {
		return
	}
	sess, err := s.Sessions.Create(tenantID, s.tenantSessionCap(tenantID))
	if err != nil {
		if errors.Is(err, session.ErrTenantBudget) {
			// Session quota exhausted is shed like any other quota: 429,
			// retry when a conversation expires.
			w.Header().Set("Retry-After", "60")
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.Log.Append(eventlog.Event{
		At: time.Now(), Service: "backend", Type: "session", User: user,
		Fields: map[string]string{"session": sess.ID, "event": "created"},
	})
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(sessionView(sess))
}

// handleSessionGet returns the session transcript: GET /api/sessions/{sid}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	user := s.auth(r)
	if user == "" {
		httpError(w, http.StatusUnauthorized, "login required")
		return
	}
	tenantID, ok := s.sessionTenant(w, r)
	if !ok {
		return
	}
	sess, err := s.Sessions.Get(tenantID, r.PathValue("sid"))
	if err != nil {
		sessionError(w, err)
		return
	}
	writeJSON(w, sessionView(sess))
}

// sessionError maps a store error to its HTTP status. ErrWrongTenant is
// reported as 404, not 403: confirming a session ID exists under another
// tenant would leak cross-tenant information.
func sessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, session.ErrNotFound), errors.Is(err, session.ErrWrongTenant):
		httpError(w, http.StatusNotFound, "session not found (expired, evicted, or never existed)")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// sseCitations is the citations event payload: the ranked document list,
// sent as soon as retrieval + rerank land, before the answer streams.
type sseCitations struct {
	Documents []docResponse `json:"documents"`
}

// sseToken is one incremental answer chunk.
type sseToken struct {
	Text string `json:"text"`
}

// sseFallback is the terminal fallback payload: generation degraded after
// streaming may have started, so the client must discard streamed tokens
// and render this answer instead.
type sseFallback struct {
	Answer string `json:"answer"`
}

// sseDone is the terminal event of every stream. Error is set when the turn
// failed outright (no answer); otherwise the answer fields mirror
// askResponse.
type sseDone struct {
	Answer         string   `json:"answer"`
	AnswerValid    bool     `json:"answerValid"`
	Guardrail      string   `json:"guardrail,omitempty"`
	RewrittenQuery string   `json:"rewrittenQuery,omitempty"`
	Degraded       bool     `json:"degraded,omitempty"`
	DegradedParts  []string `json:"degradedParts,omitempty"`
	TraceID        string   `json:"traceId,omitempty"`
	Turn           int      `json:"turn"`
	Error          string   `json:"error,omitempty"`
}

// handleSessionAsk streams one conversational turn over SSE:
// POST /api/sessions/{sid}/ask. Event order on the wire:
//
//	citations  once, when retrieval + rerank land
//	token      zero or more incremental answer chunks
//	fallback   only when generation degraded mid-stream — discard tokens
//	done       always terminal (carries the final answer and trace id)
//
// Comment frames (": hb") are heartbeats. The handler is registered
// without withDeadline: a stream lives as long as the client reads it;
// each individual write still carries the sse.Writer per-write deadline.
func (s *Server) handleSessionAsk(w http.ResponseWriter, r *http.Request) {
	user := s.auth(r)
	if user == "" {
		httpError(w, http.StatusUnauthorized, "login required")
		return
	}
	var req askRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Question) == "" {
		httpError(w, http.StatusBadRequest, "question required")
		return
	}
	tenantKey, ok := s.sessionTenant(w, r)
	if !ok {
		return
	}
	// Resolve the session before admission so a bogus session ID cannot
	// consume an admission slot.
	sess, err := s.Sessions.Get(tenantKey, r.PathValue("sid"))
	if err != nil {
		sessionError(w, err)
		return
	}
	q, ok := s.queryContext(w, r)
	if !ok {
		return
	}
	start := time.Now()
	defer func() { q.release(time.Since(start)) }()

	ctx, treq := q.eng.Tracer.StartRequestRate(q.ctx, "session.turn", q.lim.TraceSampleRate)
	defer treq.End()
	if id := treq.TraceID(); id != "" {
		w.Header().Set(TraceIDHeader, id)
	}
	turnIndex := len(sess.Turns)
	treq.Root().SetAttr("user", user)
	treq.Root().SetAttr("session", sess.ID)
	treq.Root().SetAttr("turn", strconv.Itoa(turnIndex))
	if q.tenant != "" {
		treq.Root().SetAttr("tenant", q.tenant)
	}

	sw := sse.NewWriter(w, s.SSEWriteTimeout)
	s.Sessions.StreamOpened()
	disconnected := false
	defer func() { s.Sessions.StreamClosed(disconnected) }()

	// Heartbeats keep the connection alive through long retrieval or a slow
	// LLM; the ticker dies with the handler.
	hbEvery := s.SSEHeartbeat
	if hbEvery == 0 {
		hbEvery = DefaultSSEHeartbeat
	}
	if hbEvery > 0 {
		hbDone := make(chan struct{})
		defer close(hbDone)
		go func() {
			t := time.NewTicker(hbEvery)
			defer t.Stop()
			for {
				select {
				case <-hbDone:
					return
				case <-t.C:
					if sw.Comment("hb") == nil {
						s.Sessions.StreamHeartbeat()
					}
				}
			}
		}()
	}

	streamed := false
	ev := core.StreamEvents{
		OnCitations: func(results []search.Result) {
			payload := sseCitations{Documents: []docResponse{}}
			for i, d := range results {
				if i >= 10 {
					break
				}
				payload.Documents = append(payload.Documents, docResponse{
					ID: d.ChunkID, Parent: d.ParentID, Title: d.Title,
					Snippet: snippet(d.Content, 160), Score: d.Score,
				})
			}
			sw.Event("citations", mustJSON(payload))
		},
		OnToken: func(chunk string) error {
			streamed = true
			return sw.Event("token", mustJSON(sseToken{Text: chunk}))
		},
	}

	resp, err := q.eng.AskConversational(ctx, req.Question, sess.History(), ev)
	latency := time.Since(start)
	if r.Context().Err() != nil {
		// The client went away mid-turn: nothing left to write to.
		disconnected = true
		treq.Root().SetError(r.Context().Err())
		return
	}
	if err != nil {
		// A hard engine error still terminates the stream with done — an
		// SSE response never turns into a dangling connection or a late 5xx.
		treq.Root().SetError(err)
		s.Metrics.RecordQuery(user, latency, "", true)
		s.Log.Append(eventlog.Event{At: time.Now(), Service: "backend", Type: "error", User: user})
		sw.Event("done", mustJSON(sseDone{
			Error: "ask failed", TraceID: treq.TraceID(), Turn: turnIndex,
		}))
		return
	}
	if resp.Degraded {
		treq.Root().SetStatus(trace.StatusDegraded)
		treq.Root().SetAttr("degradedParts", strings.Join(resp.DegradedParts, ","))
	}
	if degradedGeneration(resp.DegradedParts) && streamed {
		// Mid-stream LLM death: the tokens already sent are a prefix of an
		// answer that no longer exists. Tell the client to discard them and
		// render the extractive fallback.
		sw.Event("fallback", mustJSON(sseFallback{Answer: resp.Answer}))
	}
	s.Metrics.RecordQuery(user, latency, resp.Guardrail.String(), false)
	s.Metrics.RecordDegraded(resp.DegradedParts)
	s.Log.Append(eventlog.Event{
		At: time.Now(), Service: "backend", Type: "query", User: user,
		DurationMS: latency.Milliseconds(),
		Fields: map[string]string{
			"session":   sess.ID,
			"guardrail": resp.Guardrail.String(),
			"valid":     strconv.FormatBool(resp.AnswerValid),
		},
	})

	turn := session.Turn{
		Question:       req.Question,
		RewrittenQuery: resp.RewrittenQuery,
		Answer:         resp.Answer,
		TraceID:        treq.TraceID(),
		Degraded:       resp.Degraded,
		DegradedParts:  resp.DegradedParts,
	}
	for i, d := range resp.Documents {
		if i >= 10 {
			break
		}
		turn.Documents = append(turn.Documents, session.TurnDoc{
			ChunkID: d.ChunkID, ParentID: d.ParentID, Title: d.Title,
		})
	}
	// The session may have expired or been evicted while the turn ran; the
	// turn still completes for this client, the next one gets ErrNotFound.
	s.Sessions.AppendTurn(tenantKey, sess.ID, turn)

	sw.Event("done", mustJSON(sseDone{
		Answer:         resp.Answer,
		AnswerValid:    resp.AnswerValid,
		Guardrail:      resp.Guardrail.String(),
		RewrittenQuery: resp.RewrittenQuery,
		Degraded:       resp.Degraded,
		DegradedParts:  resp.DegradedParts,
		TraceID:        treq.TraceID(),
		Turn:           turnIndex,
	}))
}

// degradedGeneration reports whether "generation" is among the degraded
// parts — the marker that the streamed tokens were abandoned for the
// extractive fallback.
func degradedGeneration(parts []string) bool {
	for _, p := range parts {
		if p == "generation" {
			return true
		}
	}
	return false
}

// sessionFeedbackRequest is the click payload: which turn, which cited
// document the user opened.
type sessionFeedbackRequest struct {
	Turn    int    `json:"turn"`
	ChunkID string `json:"chunkId"`
}

// sessionFeedbackResponse reports the recalibration outcome.
type sessionFeedbackResponse struct {
	Applied bool   `json:"applied"`
	Version uint64 `json:"version,omitempty"`
	Clicks  uint64 `json:"clicks,omitempty"`
}

// handleSessionFeedback records a click on a cited document and folds it
// into the tenant engine's rerank weights:
// POST /api/sessions/{sid}/feedback. The click's positive example is the
// opened document; the documents ranked above it are the negatives.
func (s *Server) handleSessionFeedback(w http.ResponseWriter, r *http.Request) {
	user := s.auth(r)
	if user == "" {
		httpError(w, http.StatusUnauthorized, "login required")
		return
	}
	var req sessionFeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.ChunkID) == "" {
		httpError(w, http.StatusBadRequest, "turn and chunkId required")
		return
	}
	tenantKey, ok := s.sessionTenant(w, r)
	if !ok {
		return
	}
	sess, err := s.Sessions.Get(tenantKey, r.PathValue("sid"))
	if err != nil {
		sessionError(w, err)
		return
	}
	if req.Turn < 0 || req.Turn >= len(sess.Turns) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("turn %d out of range (session has %d)", req.Turn, len(sess.Turns)))
		return
	}
	turn := sess.Turns[req.Turn]
	clickedAt := -1
	for i, d := range turn.Documents {
		if d.ChunkID == req.ChunkID {
			clickedAt = i
			break
		}
	}
	if clickedAt < 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("chunk %q was not cited on turn %d", req.ChunkID, req.Turn))
		return
	}
	q, ok := s.queryContext(w, r)
	if !ok {
		return
	}
	start := time.Now()
	defer func() { q.release(time.Since(start)) }()

	s.Metrics.RecordFeedback(true)
	s.Log.Append(eventlog.Event{
		At: time.Now(), Service: "backend", Type: "feedback", User: user,
		Fields: map[string]string{"session": sess.ID, "chunk": req.ChunkID},
	})

	rr := q.eng.Searcher.Reranker
	if rr == nil {
		// No reranker on this engine: the click is logged but cannot move
		// any weights.
		writeJSON(w, sessionFeedbackResponse{Applied: false})
		return
	}
	queryText := turn.RewrittenQuery
	if queryText == "" {
		queryText = turn.Question
	}
	click := rerank.Click{
		Query:    queryText,
		QueryVec: q.eng.Embedder.Embed(queryText),
		Clicked:  s.clickInput(q, turn.Documents[clickedAt]),
	}
	for _, d := range turn.Documents[:clickedAt] {
		click.SkippedAbove = append(click.SkippedAbove, s.clickInput(q, d))
	}
	rr.Recalibrate(click)
	st := rr.Stats()
	writeJSON(w, sessionFeedbackResponse{Applied: true, Version: st.Version, Clicks: st.Clicks})
}

// clickInput resolves a cited turn document into the reranker's feature
// input, re-reading the live chunk for its text and embedding. A chunk
// deleted since the turn degrades to the title recorded at answer time.
func (s *Server) clickInput(q queryGrant, d session.TurnDoc) rerank.Input {
	in := rerank.Input{ID: d.ChunkID, Title: d.Title}
	if doc, ok := q.eng.Index.DocByID(d.ChunkID); ok {
		in.Title = doc.Fields["title"]
		in.Content = doc.Fields["content"]
		in.ContentVector = doc.Vectors["contentVector"]
	}
	return in
}

// mustJSON marshals a payload that cannot fail (plain structs, no cycles).
func mustJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		return `{"error":"encode failed"}`
	}
	return string(b)
}
