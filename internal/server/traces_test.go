package server

// End-to-end tests for the tracing subsystem: a sharded engine with
// injected upstream faults answers /api/ask, and the stored trace fetched
// through /api/traces/{id} must show the whole story — per-shard fan-out
// spans, retry events from the resilience layer, and the degraded status
// the shed vector legs caused.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"uniask/internal/core"
	"uniask/internal/embedding"
	"uniask/internal/faulty"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/resilience"
)

// buildTracedServer assembles a 2-shard engine with fault-injected LLM and
// query embedder and a deterministic tracer.
func buildTracedServer(t *testing.T, llmSched, embSched *faulty.Schedule, cfg core.Config) (*httptest.Server, *Server) {
	t.Helper()
	c := kb.Generate(kb.GenConfig{Docs: 30, Seed: 5})
	cfg.ShardCount = 2
	cfg.TraceSeed = 42
	if llmSched != nil {
		cfg.LLMMiddleware = func(inner llm.Client) llm.Client {
			return &faulty.Client{Inner: inner, Sched: llmSched}
		}
	}
	if embSched != nil {
		inner := cfg.EmbedderMiddleware
		cfg.EmbedderMiddleware = func(e embedding.CtxEmbedder) embedding.CtxEmbedder {
			if inner != nil {
				e = inner(e)
			}
			return &faulty.Embedder{Inner: e, Sched: embSched}
		}
	}
	engine, err := core.BuildFromCorpus(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	api := New(engine)
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return srv, api
}

// attrJSON mirrors the trace.Attr wire form.
type attrJSON struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// nodeJSON mirrors one trace.Node in the /api/traces/{id} tree.
type nodeJSON struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Error  string `json:"error"`
	Attrs  []attrJSON
	Events []struct {
		Name  string `json:"name"`
		Attrs []attrJSON
	} `json:"events"`
	Children []nodeJSON `json:"children"`
}

type traceDetailJSON struct {
	TraceID  string     `json:"traceId"`
	Name     string     `json:"name"`
	Status   string     `json:"status"`
	Retained string     `json:"retained"`
	Spans    int        `json:"spans"`
	Tree     []nodeJSON `json:"tree"`
}

func flatten(nodes []nodeJSON) []nodeJSON {
	var out []nodeJSON
	for _, n := range nodes {
		out = append(out, n)
		out = append(out, flatten(n.Children)...)
	}
	return out
}

// getTrace fetches one trace, retrying briefly: the handler's deferred
// Request.End may still be running when the client already has the ask
// response.
func getTrace(t *testing.T, base, id string) (traceDetailJSON, bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(base + "/api/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var out traceDetailJSON
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return out, true
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			return traceDetailJSON{}, false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAskTraceShowsFanOutRetriesAndDegradation(t *testing.T) {
	// First LLM call fails once (retried to success); the first query-time
	// embedding exhausts its 2-attempt budget, shedding the vector legs and
	// degrading the answer.
	srv, _ := buildTracedServer(t,
		faulty.Script(faulty.Error),
		faulty.Script(faulty.Error, faulty.Error),
		core.Config{Resilience: core.ResilienceConfig{
			LLMPolicy:   resilience.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
			EmbedPolicy: resilience.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		}})
	token := login(t, srv.URL, "trace.user")

	resp := authedReq(t, http.MethodPost, srv.URL+"/api/ask", token, map[string]string{"question": "Come posso bloccare la carta di credito?"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask status = %d, want 200", resp.StatusCode)
	}
	headerID := resp.Header.Get(TraceIDHeader)
	if headerID == "" {
		t.Fatal("response missing " + TraceIDHeader)
	}
	var ask askResponse
	if err := json.NewDecoder(resp.Body).Decode(&ask); err != nil {
		t.Fatal(err)
	}
	if ask.TraceID != headerID {
		t.Fatalf("body traceId %q != header %q", ask.TraceID, headerID)
	}
	if !ask.Degraded {
		t.Fatalf("answer not degraded despite exhausted embedding budget: %+v", ask.DegradedParts)
	}

	td, ok := getTrace(t, srv.URL, headerID)
	if !ok {
		t.Fatalf("trace %s not retrievable", headerID)
	}
	if td.Name != "ask" || td.Status != "degraded" || td.Retained != "degraded" {
		t.Fatalf("trace summary = %+v, want ask/degraded/degraded", td)
	}
	if len(td.Tree) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(td.Tree))
	}
	spans := flatten(td.Tree)
	if td.Spans != len(spans) {
		t.Fatalf("span count %d != flattened tree size %d", td.Spans, len(spans))
	}

	// Per-shard fan-out: the 2-shard text leg must leave shard.search spans
	// for both shards.
	shardsSeen := map[string]bool{}
	var retryEvents, degradedSpans int
	var sawLLM, sawEmbed bool
	for _, sp := range spans {
		if sp.Name == "shard.search" {
			for _, a := range sp.Attrs {
				if a.Key == "shard" {
					shardsSeen[a.Value] = true
				}
			}
		}
		if sp.Name == "llm.complete" {
			sawLLM = true
		}
		if sp.Name == "embedding.embed" {
			sawEmbed = true
		}
		if sp.Status == "degraded" {
			degradedSpans++
		}
		for _, ev := range sp.Events {
			if ev.Name == "retry" {
				retryEvents++
			}
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("shard.search spans cover shards %v, want both of 2", shardsSeen)
	}
	if !sawLLM || !sawEmbed {
		t.Fatalf("missing leaf spans: llm=%v embed=%v", sawLLM, sawEmbed)
	}
	// One LLM retry + two failed embedding attempts.
	if retryEvents < 3 {
		t.Fatalf("saw %d retry events, want >= 3", retryEvents)
	}
	if degradedSpans == 0 {
		t.Fatal("no degraded spans despite shed vector legs")
	}

	// The listing endpoints see the same trace through every filter.
	for _, query := range []string{
		"status=degraded",
		"stage=retrieval",
		"shard=0",
		"q=" + url.QueryEscape("name=llm.complete"),
		"q=" + url.QueryEscape("shard>=0 leg=text"),
	} {
		var list []struct {
			TraceID string `json:"traceId"`
		}
		resp := mustGetJSON(t, srv.URL+"/api/traces?"+query, &list)
		if resp != http.StatusOK {
			t.Fatalf("GET /api/traces?%s = %d", query, resp)
		}
		found := false
		for _, row := range list {
			found = found || row.TraceID == headerID
		}
		if !found {
			t.Fatalf("filter %q does not return trace %s", query, headerID)
		}
	}
	// And a filter that cannot match excludes it.
	var empty []struct{}
	if code := mustGetJSON(t, srv.URL+"/api/traces?q="+url.QueryEscape("name=no.such.span"), &empty); code != http.StatusOK || len(empty) != 0 {
		t.Fatalf("impossible filter: code %d, %d rows", code, len(empty))
	}
}

func TestTraceEndpointErrors(t *testing.T) {
	srv, _ := setup(t)
	resp, err := http.Get(srv.URL + "/api/traces/does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: status = %d, want 404", resp.StatusCode)
	}
	for _, bad := range []string{
		"q=" + url.QueryEscape("name>retrieval"),
		"min_duration=fast",
		"status=bogus",
		"limit=-3",
		"limit=x",
	} {
		resp, err := http.Get(srv.URL + "/api/traces?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /api/traces?%s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestErrorResponseCarriesTraceID(t *testing.T) {
	// Every LLM call hangs; with a short request deadline the ask fails 503
	// and both the header and the error body must carry the trace id — and
	// that error trace must be tail-retained and fetchable.
	sched := faulty.NewSchedule(1, 0, 0, 1.0, 0)
	srv, api := buildTracedServer(t, sched, nil,
		core.Config{Resilience: core.ResilienceConfig{LLMPolicy: resilience.Policy{MaxAttempts: -1}}})
	api.RequestTimeout = 150 * time.Millisecond
	token := login(t, srv.URL, "trace.err")

	resp := authedReq(t, http.MethodPost, srv.URL+"/api/ask", token, map[string]string{"question": "Come blocco la carta?"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hanging LLM: status = %d, want 503", resp.StatusCode)
	}
	headerID := resp.Header.Get(TraceIDHeader)
	var body struct {
		Error   string `json:"error"`
		TraceID string `json:"traceId"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID == "" || body.TraceID != headerID {
		t.Fatalf("error body traceId %q, header %q — must match and be set", body.TraceID, headerID)
	}
	td, ok := getTrace(t, srv.URL, headerID)
	if !ok {
		t.Fatalf("error trace %s not retained", headerID)
	}
	if td.Status != "error" || td.Retained != "error" {
		t.Fatalf("error trace stored as %s/%s, want error/error", td.Status, td.Retained)
	}
}

func TestSampledOutRequestStillGetsID(t *testing.T) {
	srv, _ := buildTracedServer(t, nil, nil, core.Config{TraceSampleRate: -1})
	token := login(t, srv.URL, "trace.off")
	resp := authedReq(t, http.MethodPost, srv.URL+"/api/ask", token, map[string]string{"question": "Come blocco la carta?"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask status = %d", resp.StatusCode)
	}
	id := resp.Header.Get(TraceIDHeader)
	if id == "" {
		t.Fatal("sampled-out request must still return a trace id header")
	}
	// ...but no spans were recorded, so the store has nothing to serve.
	tresp, err := http.Get(srv.URL + "/api/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unsampled trace fetch = %d, want 404", tresp.StatusCode)
	}
}

// mustGetJSON GETs a URL and decodes the JSON body into out.
func mustGetJSON(t *testing.T, u string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}
