package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"uniask/internal/core"
	"uniask/internal/kb"
	"uniask/internal/search"
	"uniask/internal/tenant"
	"uniask/internal/trace"
)

// newTenantTestServer assembles a two-tenant server: banca-alfa
// (interactive, roomy limits) and banca-batch (best-effort, tight rate).
func newTenantTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	f, err := tenant.ParseFile([]byte(`{
		"defaults": {"rate": 1000, "burst": 1000, "maxConcurrent": 8, "cacheShare": 64},
		"tenants": {
			"banca-alfa":  {},
			"banca-batch": {"class": "best-effort", "rate": 2, "burst": 2}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ov := tenant.NewOverrides(f)
	tracer := trace.New(trace.Config{})
	pool := search.NewCachePool(0, 64)

	var srv *Server
	factory := func(id string, lim tenant.Limits) (*core.Engine, error) {
		corpus := kb.Generate(kb.GenConfig{Docs: 40, Seed: int64(len(id))})
		base := core.Config{Lexicon: corpus.Lexicon()}
		eng, err := tenant.StandardFactory(base, pool, tracer, func(_ string, eng *core.Engine) error {
			srv.ObserveEngine(eng)
			return nil
		})(id, lim)
		if err != nil {
			return nil, err
		}
		if err := eng.IndexCorpus(context.Background(), corpus); err != nil {
			return nil, err
		}
		return eng, nil
	}
	reg := tenant.NewRegistry(ov, factory)
	ctrl := tenant.NewController(tenant.AdmissionConfig{Capacity: 16}, ov)
	srv = NewMultiTenant(reg, ctrl, tracer, pool)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs, srv
}

func tenantSearch(t *testing.T, base, token, tenantID, q string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest("GET", base+"/api/search?q="+q, nil)
	req.Header.Set("Authorization", "Bearer "+token)
	if tenantID != "" {
		req.Header.Set(TenantHeader, tenantID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTenantRoutingHeaderAndPath(t *testing.T) {
	hs, _ := newTenantTestServer(t)
	token := login(t, hs.URL, "mario")

	// Header form.
	resp := tenantSearch(t, hs.URL, token, "banca-alfa", "conto")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("header-routed search status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Path form: /t/{tenant}/api/search.
	req, _ := http.NewRequest("GET", hs.URL+"/t/banca-alfa/api/search?q=conto", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("path-routed search status = %d", resp2.StatusCode)
	}

	// No tenant at all: 400 with a hint, not a 5xx.
	resp3 := tenantSearch(t, hs.URL, token, "", "conto")
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("tenantless request status = %d, want 400", resp3.StatusCode)
	}

	// Unknown tenant: 404 (onboarding is explicit, not implicit).
	resp4 := tenantSearch(t, hs.URL, token, "banca-ignota", "conto")
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d, want 404", resp4.StatusCode)
	}
}

// TestTenantShedIs429WithRetryAfter floods banca-batch past its 2 q/s
// bucket: shed responses must be 429 with a positive Retry-After header and
// a machine-readable reason — never a 5xx.
func TestTenantShedIs429WithRetryAfter(t *testing.T) {
	hs, _ := newTenantTestServer(t)
	token := login(t, hs.URL, "mario")

	var shed *http.Response
	for i := 0; i < 10; i++ {
		resp := tenantSearch(t, hs.URL, token, "banca-batch", "conto")
		if resp.StatusCode >= 500 {
			t.Fatalf("request %d: shed path answered %d, must never be 5xx", i, resp.StatusCode)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		resp.Body.Close()
	}
	if shed == nil {
		t.Fatal("10 immediate requests against a 2 q/s bucket never shed")
	}
	defer shed.Body.Close()
	ra, err := strconv.Atoi(shed.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", shed.Header.Get("Retry-After"))
	}
	var body struct {
		Error  string `json:"error"`
		Tenant string `json:"tenant"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(shed.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Tenant != "banca-batch" || body.Reason != string(tenant.ReasonRate) {
		t.Fatalf("shed body = %+v", body)
	}
}

func TestTenantDashboardAndHealthViews(t *testing.T) {
	hs, _ := newTenantTestServer(t)
	token := login(t, hs.URL, "mario")
	tenantSearch(t, hs.URL, token, "banca-alfa", "conto").Body.Close()

	// Per-tenant dashboard: only banca-alfa's slice.
	resp, err := http.Get(hs.URL + "/t/banca-alfa/api/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant dashboard status = %d", resp.StatusCode)
	}
	var dash struct {
		Tenant string `json:"tenant"`
		Active bool   `json:"active"`
		Gauges *struct {
			Admitted uint64 `json:"Admitted"`
		} `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dash); err != nil {
		t.Fatal(err)
	}
	if dash.Tenant != "banca-alfa" || !dash.Active {
		t.Fatalf("dashboard = %+v, want active banca-alfa", dash)
	}
	if dash.Gauges == nil || dash.Gauges.Admitted == 0 {
		t.Fatalf("dashboard gauges = %+v, want admitted > 0", dash.Gauges)
	}

	// Per-tenant health: active tenant is ok, idle tenant reports idle.
	for _, tc := range []struct{ id, status string }{
		{"banca-alfa", "ok"}, {"banca-batch", "idle"},
	} {
		hr, err := http.Get(hs.URL + "/t/" + tc.id + "/api/health")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Status string `json:"status"`
		}
		json.NewDecoder(hr.Body).Decode(&health)
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK || health.Status != tc.status {
			t.Fatalf("%s health = %d %q, want 200 %q", tc.id, hr.StatusCode, health.Status, tc.status)
		}
	}
	// Unknown tenant health: 404.
	hr, _ := http.Get(hs.URL + "/t/banca-ignota/api/health")
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant health = %d, want 404", hr.StatusCode)
	}
}

// TestTenantTraceAttribute checks the tenant span attribute lands on root
// spans and that /api/traces filters by it — both via the tenant query
// param and the TraceQL-lite matcher.
func TestTenantTraceAttribute(t *testing.T) {
	hs, srv := newTenantTestServer(t)
	token := login(t, hs.URL, "mario")
	tenantSearch(t, hs.URL, token, "banca-alfa", "conto").Body.Close()

	// Ask with a body to get a POST root span too.
	body, _ := json.Marshal(map[string]string{"question": "Come apro un conto corrente?"})
	req, _ := http.NewRequest("POST", hs.URL+"/t/banca-alfa/api/ask", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for _, url := range []string{
		hs.URL + "/api/traces?tenant=banca-alfa",
		hs.URL + "/t/banca-alfa/api/traces",
		hs.URL + "/api/traces?q=" + "tenant%3Dbanca-alfa",
	} {
		lr, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var rows []map[string]any
		json.NewDecoder(lr.Body).Decode(&rows)
		lr.Body.Close()
		if len(rows) == 0 {
			t.Fatalf("%s returned no traces", url)
		}
	}
	// A filter on the other tenant returns nothing.
	lr, _ := http.Get(hs.URL + "/api/traces?tenant=banca-batch")
	var rows []map[string]any
	json.NewDecoder(lr.Body).Decode(&rows)
	lr.Body.Close()
	if len(rows) != 0 {
		t.Fatalf("banca-batch filter matched %d traces, want 0", len(rows))
	}
	_ = srv
}

// TestTenantCtxCarriesID verifies the tenant ID is threaded onto the
// request context alongside the trace context.
func TestTenantCtxCarriesID(t *testing.T) {
	f, _ := tenant.ParseFile([]byte(`{"tenants": {"banca-alfa": {"rate": -1}}}`))
	ov := tenant.NewOverrides(f)
	seen := make(chan string, 1)
	reg := tenant.NewRegistry(ov, func(id string, lim tenant.Limits) (*core.Engine, error) {
		eng := core.New(core.Config{})
		return eng, nil
	})
	srv := NewMultiTenant(reg, tenant.NewController(tenant.AdmissionConfig{}, ov), nil, nil)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, ok := srv.queryContext(w, r)
		if !ok {
			return
		}
		defer q.release(time.Millisecond)
		seen <- tenant.FromContext(q.ctx)
	}))
	defer hs.Close()

	req, _ := http.NewRequest("GET", hs.URL+"/", nil)
	req.Header.Set(TenantHeader, "banca-alfa")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := <-seen; got != "banca-alfa" {
		t.Fatalf("tenant.FromContext = %q, want banca-alfa", got)
	}
}
