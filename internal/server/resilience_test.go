package server

// Tests for the server-side resilience surface: per-request deadlines that
// turn a hung LLM into a fast 503, the /api/health readiness probe
// reflecting circuit-breaker state, and degraded-answer flags in the ask
// response.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"uniask/internal/core"
	"uniask/internal/faulty"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/resilience"
)

// buildFaultyServer assembles a small engine whose LLM is wrapped in the
// fault injector, plus a server with the given request timeout.
func buildFaultyServer(t *testing.T, sched *faulty.Schedule, timeout time.Duration, res core.ResilienceConfig) (*httptest.Server, *Server) {
	t.Helper()
	c := kb.Generate(kb.GenConfig{Docs: 30, Seed: 5})
	engine, err := core.BuildFromCorpus(context.Background(), c, core.Config{
		Resilience: res,
		LLMMiddleware: func(inner llm.Client) llm.Client {
			return &faulty.Client{Inner: inner, Sched: sched}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	api := New(engine)
	api.RequestTimeout = timeout
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return srv, api
}

func TestHangingLLMReturns503(t *testing.T) {
	// Every LLM call hangs until its context is cancelled. With a short
	// request deadline the server must answer 503, not wedge the handler.
	// Retries are disabled so the one hanging attempt consumes the deadline.
	srv, _ := buildFaultyServer(t, faulty.NewSchedule(1, 0, 0, 1.0, 0), 150*time.Millisecond,
		core.ResilienceConfig{LLMPolicy: resilience.Policy{MaxAttempts: -1}})
	token := login(t, srv.URL, "chaos-user")

	start := time.Now()
	resp := authedReq(t, http.MethodPost, srv.URL+"/api/ask", token, map[string]string{"question": "Come blocco la carta?"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hanging LLM: status = %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("503 took %v — the deadline did not bound the request", elapsed)
	}
}

func TestHealthReflectsBreakerState(t *testing.T) {
	// All LLM calls fail; a tight breaker opens within one request's retry
	// budget, flipping /api/health from 200 to 503.
	srv, api := buildFaultyServer(t, faulty.NewSchedule(1, 1.0, 0, 0, 0), time.Second,
		core.ResilienceConfig{
			LLMPolicy:  resilience.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
			LLMBreaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		})

	hr := getHealth(t, srv.URL)
	if hr.code != http.StatusOK || hr.body.Status != "ok" {
		t.Fatalf("healthy system: /api/health = %d %+v", hr.code, hr.body)
	}

	token := login(t, srv.URL, "chaos-user")
	resp := authedReq(t, http.MethodPost, srv.URL+"/api/ask", token, map[string]string{"question": "Come blocco la carta?"})
	resp.Body.Close()

	if st := api.Engine.LLMBreaker.State(); st != resilience.Open {
		t.Fatalf("LLM breaker state = %v, want Open", st)
	}
	hr = getHealth(t, srv.URL)
	if hr.code != http.StatusServiceUnavailable || hr.body.Status != "degraded" {
		t.Fatalf("open breaker: /api/health = %d %+v", hr.code, hr.body)
	}
	found := false
	for _, b := range hr.body.Breakers {
		if b.Name == "llm" && b.State == "open" {
			found = true
		}
	}
	if !found {
		t.Fatalf("health breakers missing open llm entry: %+v", hr.body.Breakers)
	}
}

func TestOpenBreakerServesExtractiveFallback(t *testing.T) {
	// With the LLM breaker already open, /api/ask still answers 200: the
	// generation stage degrades to the extractive fallback and the response
	// is flagged degraded.
	srv, api := buildFaultyServer(t, faulty.NewSchedule(1, 1.0, 0, 0, 0), time.Second,
		core.ResilienceConfig{
			LLMPolicy:  resilience.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
			LLMBreaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		})
	token := login(t, srv.URL, "chaos-user")

	// First request trips the breaker (its generation fallback may already
	// fire once the retry budget is exhausted).
	resp := authedReq(t, http.MethodPost, srv.URL+"/api/ask", token, map[string]string{"question": "Come blocco la carta?"})
	resp.Body.Close()
	if st := api.Engine.LLMBreaker.State(); st != resilience.Open {
		t.Fatalf("breaker state = %v, want Open", st)
	}

	resp = authedReq(t, http.MethodPost, srv.URL+"/api/ask", token, map[string]string{"question": "Come blocco la carta di credito?"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open breaker ask: status = %d, want 200 (degraded answer)", resp.StatusCode)
	}
	var out askResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatalf("answer not flagged degraded: %+v", out)
	}
	hasGen := false
	for _, p := range out.DegradedParts {
		if p == "generation" {
			hasGen = true
		}
	}
	if !hasGen {
		t.Fatalf("degraded parts = %v, want generation", out.DegradedParts)
	}
	if out.Answer == "" {
		t.Fatal("degraded answer is empty")
	}
	// The dashboard degradation gauge saw it.
	snap := mustSnapshot(t, srv.URL)
	if snap.DegradedQueries == 0 {
		t.Fatalf("dashboard DegradedQueries = 0 after degraded answers")
	}
	if snap.Breakers["llm"] != "open" {
		t.Fatalf("dashboard breaker gauge = %+v, want llm open", snap.Breakers)
	}
}

type healthResult struct {
	code int
	body healthResponse
}

func getHealth(t *testing.T, base string) healthResult {
	t.Helper()
	resp, err := http.Get(base + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return healthResult{code: resp.StatusCode, body: body}
}

type dashboardSnapshot struct {
	DegradedQueries int               `json:"DegradedQueries"`
	Breakers        map[string]string `json:"Breakers"`
}

func mustSnapshot(t *testing.T, base string) dashboardSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/api/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap dashboardSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}
