package server

// Multi-tenant serving mode: the tenant front door. One Server hosts many
// banks' knowledge bases; every query names its tenant (header or path),
// passes the admission controller (token bucket → per-tenant concurrency →
// global slots with weighted fair queueing), and routes to that tenant's
// engine from the registry. Shed requests are 429 + Retry-After by
// construction — admission never answers 5xx. docs/MULTITENANCY.md is the
// operator-facing description of this file's behavior.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"uniask/internal/core"
	"uniask/internal/eventlog"
	"uniask/internal/index"
	"uniask/internal/monitor"
	"uniask/internal/resilience"
	"uniask/internal/search"
	"uniask/internal/tenant"
	"uniask/internal/trace"
)

// TenantHeader names the request's tenant in multi-tenant serving. The
// /t/{tenant}/api/... path form takes precedence when both are present.
const TenantHeader = "X-Uniask-Tenant"

// NewMultiTenant creates a server hosting one engine per tenant. The
// registry builds tenant engines lazily (its factory should call
// ObserveEngine so per-tenant engines feed the shared dashboard); ctrl is
// the admission front door (nil = no admission control); tracer is the
// shared trace store all tenant engines alias; pool, when non-nil,
// contributes per-tenant cache-partition gauges to the dashboard.
func NewMultiTenant(reg *tenant.Registry, ctrl *tenant.Controller, tracer *trace.Tracer, pool *search.CachePool) *Server {
	s := &Server{
		Metrics:   monitor.New(),
		Feedback:  &FeedbackStore{},
		Log:       eventlog.New(),
		sessions:  make(map[string]string),
		Tenants:   reg,
		Admission: ctrl,
		Tracer:    tracer,
	}
	if ctrl != nil {
		s.Metrics.SetTenantSource(func() []monitor.TenantGauge { return tenantGauges(ctrl, pool) })
	}
	s.wireSessionMetrics()
	return s
}

// ObserveEngine wires a tenant engine into the server's shared metrics —
// pipeline observer and breaker hook — mirroring what New does for the
// single engine. The registry factory's onCreate should call it, since
// tenant engines are built after the server exists.
func (s *Server) ObserveEngine(eng *core.Engine) {
	eng.SetObserver(s.Metrics)
	eng.SetBreakerNotify(s.Metrics.RecordBreakerTransition)
}

// tenantGauges joins the admission controller's stats with the cache
// pool's partition stats into dashboard rows.
func tenantGauges(ctrl *tenant.Controller, pool *search.CachePool) []monitor.TenantGauge {
	stats := ctrl.Stats()
	var parts map[string]search.PartitionStats
	if pool != nil {
		ps := pool.Stats()
		parts = make(map[string]search.PartitionStats, len(ps))
		for _, p := range ps {
			parts[p.Tenant] = p
		}
	}
	out := make([]monitor.TenantGauge, len(stats))
	for i, st := range stats {
		g := monitor.TenantGauge{
			Tenant: st.Tenant, Class: st.Class.String(),
			Admitted: st.Admitted, Queued: st.Queued, Shed: st.Shed,
			ShedByReason: make(map[string]uint64, len(st.ShedByReason)),
			Inflight:     st.Inflight, P99: st.P99,
			RateLimit: st.RateLimit, MaxConcurrent: st.MaxConcurrent,
		}
		for r, n := range st.ShedByReason {
			g.ShedByReason[string(r)] = n
		}
		if p, ok := parts[st.Tenant]; ok {
			g.HasCache = true
			g.CacheHitRate = p.HitRate()
			g.CacheEntries = p.Entries
		}
		out[i] = g
	}
	return out
}

// requestTenant extracts the request's tenant ID: the /t/{tenant}/ path
// segment wins, then the X-Uniask-Tenant header ("" when neither names one).
func (s *Server) requestTenant(r *http.Request) string {
	if id := r.PathValue("tenant"); id != "" {
		return id
	}
	return r.Header.Get(TenantHeader)
}

// queryGrant is everything a query handler needs after the front door: the
// engine to query, the tenant-tagged context, the tenant's effective limits
// (for the per-request trace sample rate) and the admission release to call
// with the request latency.
type queryGrant struct {
	eng     *core.Engine
	ctx     context.Context
	tenant  string
	lim     tenant.Limits
	release func(time.Duration)
}

// queryContext runs the tenant front door for one query request. In
// single-tenant mode it is a pass-through to s.Engine. In multi-tenant mode
// it resolves the tenant, runs admission, and resolves the tenant's engine;
// on any refusal it writes the HTTP response itself and returns ok=false.
// Shed traffic gets 429 with a Retry-After header — never 5xx.
func (s *Server) queryContext(w http.ResponseWriter, r *http.Request) (queryGrant, bool) {
	if s.Tenants == nil {
		return queryGrant{eng: s.Engine, ctx: r.Context(), release: func(time.Duration) {}}, true
	}
	id := s.requestTenant(r)
	if id == "" {
		httpError(w, http.StatusBadRequest, "tenant required ("+TenantHeader+" header or /t/{tenant}/api/... path)")
		return queryGrant{}, false
	}
	if err := tenant.ValidateID(id); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return queryGrant{}, false
	}
	// Refuse unknown tenants before admission so a stream of typoed or
	// hostile tenant IDs cannot grow controller state.
	if !s.Tenants.AllowUnknown {
		if ov := s.Tenants.Overrides(); ov == nil || !ov.Known(id) {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q (add it to the overrides file to onboard)", id))
			return queryGrant{}, false
		}
	}
	release := func(time.Duration) {}
	if s.Admission != nil {
		var rej *tenant.Rejection
		release, rej = s.Admission.Admit(r.Context(), id)
		if rej != nil {
			writeRejection(w, rej)
			return queryGrant{}, false
		}
	}
	eng, err := s.Tenants.Engine(id)
	if err != nil {
		release(0)
		switch {
		case errors.Is(err, tenant.ErrUnknownTenant):
			httpError(w, http.StatusNotFound, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, "tenant engine unavailable: "+err.Error())
		}
		return queryGrant{}, false
	}
	var lim tenant.Limits
	if ov := s.Tenants.Overrides(); ov != nil {
		lim = ov.For(id)
	}
	return queryGrant{
		eng:     eng,
		ctx:     tenant.WithID(r.Context(), id),
		tenant:  id,
		lim:     lim,
		release: release,
	}, true
}

// writeRejection maps a shed request to 429 Too Many Requests with a
// Retry-After header (whole seconds, rounded up, at least 1).
func writeRejection(w http.ResponseWriter, rej *tenant.Rejection) {
	secs := int(math.Ceil(rej.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	fmt.Fprintf(w, `{"error":"request shed","tenant":%q,"class":%q,"reason":%q,"retryAfterMs":%d}`+"\n",
		rej.Tenant, rej.Class.String(), string(rej.Reason), rej.RetryAfter.Milliseconds())
}

// traceStore resolves the trace store: the shared tracer in multi-tenant
// mode, the engine's tracer otherwise.
func (s *Server) traceStore() *trace.Store {
	if s.Tracer != nil {
		return s.Tracer.Store()
	}
	return s.Engine.Tracer.Store()
}

// tenantDashboard is the per-tenant GET /api/dashboard view: the tenant's
// admission/cache gauge row plus its engine's segment shape when the engine
// is active. The noisy-neighbor runbook (docs/OPERATIONS.md) starts here.
type tenantDashboard struct {
	Tenant   string               `json:"tenant"`
	Active   bool                 `json:"active"`
	Gauges   *monitor.TenantGauge `json:"gauges,omitempty"`
	Segments []index.SegmentStats `json:"segments,omitempty"`
}

func (s *Server) writeTenantDashboard(w http.ResponseWriter, snap monitor.Dashboard, id string) {
	if err := tenant.ValidateID(id); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := tenantDashboard{Tenant: id}
	if g, ok := snap.TenantByID(id); ok {
		out.Gauges = &g
	}
	if eng, ok := s.Tenants.EngineIfActive(id); ok {
		out.Active = true
		out.Segments = eng.SegmentStats()
	}
	if !out.Active && out.Gauges == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("tenant %q has no activity (never admitted, engine not built)", id))
		return
	}
	writeJSON(w, out)
}

// tenantHealthResponse is the multi-tenant /api/health payload. Scoped to a
// tenant it reports that tenant's engine breakers and admission state;
// unscoped it aggregates across active tenants.
type tenantHealthResponse struct {
	Status   string                     `json:"status"`
	Tenant   string                     `json:"tenant,omitempty"`
	Active   bool                       `json:"active"`
	Breakers []resilience.BreakerStatus `json:"breakers,omitempty"`
	// Shedding reports whether the tenant has shed requests recently (any
	// rejection counted) — the first thing the throttling runbook checks.
	Shed    uint64 `json:"shed"`
	Tenants int    `json:"tenants,omitempty"`
}

func (s *Server) handleTenantHealth(w http.ResponseWriter, r *http.Request) {
	id := s.requestTenant(r)
	if id == "" {
		// Unscoped probe: degraded if any active tenant's breaker is open.
		status, code := "ok", http.StatusOK
		active := s.Tenants.Active()
		var breakers []resilience.BreakerStatus
		for _, tid := range active {
			eng, ok := s.Tenants.EngineIfActive(tid)
			if !ok {
				continue
			}
			for _, b := range eng.Breakers() {
				if b.State == "open" {
					status, code = "degraded", http.StatusServiceUnavailable
					breakers = append(breakers, b)
				}
			}
		}
		writeJSONStatus(w, code, tenantHealthResponse{Status: status, Active: len(active) > 0, Breakers: breakers, Tenants: len(active)})
		return
	}
	if err := tenant.ValidateID(id); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.Tenants.AllowUnknown {
		if ov := s.Tenants.Overrides(); ov == nil || !ov.Known(id) {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", id))
			return
		}
	}
	resp := tenantHealthResponse{Status: "idle", Tenant: id}
	if s.Admission != nil {
		if st, ok := s.Admission.StatsFor(id); ok {
			resp.Shed = st.Shed
		}
	}
	eng, ok := s.Tenants.EngineIfActive(id)
	if !ok {
		// Onboarded but never queried: healthy, just not built yet.
		writeJSON(w, resp)
		return
	}
	resp.Active = true
	resp.Status = "ok"
	code := http.StatusOK
	resp.Breakers = eng.Breakers()
	for _, b := range resp.Breakers {
		if b.State == "open" {
			resp.Status = "degraded"
			code = http.StatusServiceUnavailable
			break
		}
	}
	writeJSONStatus(w, code, resp)
}

// writeJSONStatus is writeJSON with an explicit HTTP status code.
func writeJSONStatus(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
