package server

// Conversational-session API tests: SSE event ordering on the wire, session
// persistence across turns, the per-turn trace trees sharing the session
// attribute, the click-feedback recalibration loop, and the steady-state
// benchmarks (allocations per turn, time to first citation) that feed
// BENCH_query.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"uniask/internal/core"
	"uniask/internal/kb"
	"uniask/internal/sse"
)

// createSession opens a conversation and returns its ID.
func createSession(t testing.TB, base, token string) string {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, base+"/api/sessions", bytes.NewReader([]byte("{}")))
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("create session: status %d: %s", resp.StatusCode, msg)
	}
	var out struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	if out.ID == "" {
		t.Fatal("create session: empty id")
	}
	return out.ID
}

// askStream drives one SSE turn and returns the parsed events in order.
func askStream(t testing.TB, base, token, sid, question string) []sse.Event {
	t.Helper()
	events, status := askStreamStatus(t, base, token, sid, question)
	if status != http.StatusOK {
		t.Fatalf("ask stream: status %d", status)
	}
	return events
}

func askStreamStatus(t testing.TB, base, token, sid, question string) ([]sse.Event, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"question": question})
	req, _ := http.NewRequest(http.MethodPost, base+"/api/sessions/"+sid+"/ask", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("ask stream: Content-Type = %q", ct)
	}
	var (
		p      sse.Parser
		events []sse.Event
		buf    = make([]byte, 4096)
	)
	for {
		n, readErr := resp.Body.Read(buf)
		if n > 0 {
			evs, err := p.Feed(buf[:n])
			if err != nil {
				t.Fatalf("ask stream: parse: %v", err)
			}
			events = append(events, evs...)
		}
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			t.Fatalf("ask stream: read: %v", readErr)
		}
	}
	return events, http.StatusOK
}

// eventNames projects the event sequence for ordering assertions.
func eventNames(events []sse.Event) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.Name
	}
	return out
}

func findEvent(events []sse.Event, name string) (sse.Event, bool) {
	for _, e := range events {
		if e.Name == name {
			return e, true
		}
	}
	return sse.Event{}, false
}

type doneEvent struct {
	Answer         string   `json:"answer"`
	AnswerValid    bool     `json:"answerValid"`
	Guardrail      string   `json:"guardrail"`
	RewrittenQuery string   `json:"rewrittenQuery"`
	Degraded       bool     `json:"degraded"`
	DegradedParts  []string `json:"degradedParts"`
	TraceID        string   `json:"traceId"`
	Turn           int      `json:"turn"`
	Error          string   `json:"error"`
}

func parseDone(t testing.TB, events []sse.Event) doneEvent {
	t.Helper()
	ev, ok := findEvent(events, "done")
	if !ok {
		t.Fatalf("no done event; got %v", eventNames(events))
	}
	var d doneEvent
	if err := json.Unmarshal([]byte(ev.Data), &d); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	return d
}

func TestSessionStreamOrdering(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "maria")
	sid := createSession(t, srv.URL, token)

	q := "Come posso " + corpus.Docs[0].Title + "?"
	events := askStream(t, srv.URL, token, sid, q)

	// The wire contract: citations strictly before any token, done terminal.
	names := eventNames(events)
	citAt, tokAt, doneAt := -1, -1, -1
	for i, n := range names {
		switch n {
		case "citations":
			if citAt == -1 {
				citAt = i
			}
		case "token":
			if tokAt == -1 {
				tokAt = i
			}
		case "done":
			doneAt = i
		}
	}
	if citAt == -1 || doneAt == -1 {
		t.Fatalf("missing citations or done: %v", names)
	}
	if tokAt != -1 && tokAt < citAt {
		t.Fatalf("token before citations: %v", names)
	}
	if doneAt != len(names)-1 {
		t.Fatalf("done is not terminal: %v", names)
	}

	var cits struct {
		Documents []struct {
			ID string `json:"id"`
		} `json:"documents"`
	}
	if err := json.Unmarshal([]byte(events[citAt].Data), &cits); err != nil || len(cits.Documents) == 0 {
		t.Fatalf("citations payload: err=%v docs=%d", err, len(cits.Documents))
	}

	d := parseDone(t, events)
	if d.Error != "" || d.Answer == "" {
		t.Fatalf("done: error=%q answer=%q", d.Error, d.Answer)
	}
	if d.Turn != 0 {
		t.Fatalf("first turn index = %d", d.Turn)
	}

	// When the answer is valid, the streamed tokens must concatenate to the
	// raw generated answer byte-for-byte (pre-guardrail contract).
	if d.AnswerValid {
		var streamed bytes.Buffer
		for _, e := range events {
			if e.Name != "token" {
				continue
			}
			var tok struct {
				Text string `json:"text"`
			}
			if err := json.Unmarshal([]byte(e.Data), &tok); err != nil {
				t.Fatal(err)
			}
			streamed.WriteString(tok.Text)
		}
		if streamed.Len() > 0 && streamed.String() != d.Answer {
			t.Fatalf("streamed tokens != answer:\n%q\n%q", streamed.String(), d.Answer)
		}
	}
}

func TestSessionMultiTurnHistory(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "maria")
	sid := createSession(t, srv.URL, token)

	q1 := "Come posso " + corpus.Docs[0].Title + "?"
	d1 := parseDone(t, askStream(t, srv.URL, token, sid, q1))
	if d1.Turn != 0 {
		t.Fatalf("turn 1 index = %d", d1.Turn)
	}
	// An elliptical follow-up: the rewrite stage has history to resolve it
	// against (whether the simulator rewrites it depends on the question's
	// term count — the turn must complete either way).
	d2 := parseDone(t, askStream(t, srv.URL, token, sid, "E i costi?"))
	if d2.Turn != 1 {
		t.Fatalf("turn 2 index = %d", d2.Turn)
	}

	// The transcript endpoint shows both turns in order.
	resp := authedReq(t, http.MethodGet, srv.URL+"/api/sessions/"+sid, token, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: status %d", resp.StatusCode)
	}
	var sess struct {
		Turns []struct {
			Question string `json:"question"`
			Answer   string `json:"answer"`
			TraceID  string `json:"traceId"`
		} `json:"turns"`
	}
	json.NewDecoder(resp.Body).Decode(&sess)
	if len(sess.Turns) != 2 {
		t.Fatalf("transcript has %d turns, want 2", len(sess.Turns))
	}
	if sess.Turns[0].Question != q1 || sess.Turns[1].Question != "E i costi?" {
		t.Fatalf("transcript questions: %q, %q", sess.Turns[0].Question, sess.Turns[1].Question)
	}
	for i, turn := range sess.Turns {
		if turn.Answer == "" {
			t.Fatalf("turn %d has no answer", i)
		}
	}
}

// TestSessionTraceTree: every turn produces one span tree, all carrying the
// session attribute, and /api/traces?session= lists exactly that
// conversation in order.
func TestSessionTraceTree(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "tracer")
	sid := createSession(t, srv.URL, token)

	questions := []string{
		"Come posso " + corpus.Docs[1].Title + "?",
		"Quali documenti servono?",
		"E per conto di terzi?",
	}
	traceIDs := make([]string, len(questions))
	for i, q := range questions {
		d := parseDone(t, askStream(t, srv.URL, token, sid, q))
		if d.TraceID == "" {
			t.Fatalf("turn %d: no trace id", i)
		}
		traceIDs[i] = d.TraceID
	}

	// The session filter returns exactly this conversation's turns.
	resp := authedReq(t, http.MethodGet, srv.URL+"/api/traces?session="+sid, token, nil)
	defer resp.Body.Close()
	var list []struct {
		TraceID string `json:"traceId"`
		Name    string `json:"name"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	if len(list) != len(questions) {
		t.Fatalf("traces?session= returned %d rows, want %d", len(list), len(questions))
	}
	listed := map[string]bool{}
	for _, row := range list {
		if row.Name != "session.turn" {
			t.Fatalf("trace %s has name %q", row.TraceID, row.Name)
		}
		listed[row.TraceID] = true
	}
	for i, id := range traceIDs {
		if !listed[id] {
			t.Fatalf("turn %d trace %s missing from session listing", i, id)
		}
	}

	// Each turn's span tree carries session and turn attributes on the root
	// and real pipeline spans beneath it.
	for i, id := range traceIDs {
		resp := authedReq(t, http.MethodGet, srv.URL+"/api/traces/"+id, token, nil)
		var detail struct {
			Spans int `json:"spans"`
			Tree  []struct {
				Attrs []struct {
					Key   string `json:"key"`
					Value string `json:"value"`
				} `json:"attrs"`
			} `json:"tree"`
		}
		json.NewDecoder(resp.Body).Decode(&detail)
		resp.Body.Close()
		if detail.Spans < 2 {
			t.Fatalf("turn %d trace has only %d spans", i, detail.Spans)
		}
		attrs := map[string]string{}
		for _, root := range detail.Tree {
			for _, a := range root.Attrs {
				attrs[a.Key] = a.Value
			}
		}
		if attrs["session"] != sid {
			t.Fatalf("turn %d root session attr = %q, want %q", i, attrs["session"], sid)
		}
		if attrs["turn"] != strconv.Itoa(i) {
			t.Fatalf("turn %d root turn attr = %q", i, attrs["turn"])
		}
	}
}

func TestSessionFeedbackRecalibrates(t *testing.T) {
	srv, api := setup(t)
	token := login(t, srv.URL, "clicker")
	sid := createSession(t, srv.URL, token)

	events := askStream(t, srv.URL, token, sid, "Come posso "+corpus.Docs[2].Title+"?")
	cit, ok := findEvent(events, "citations")
	if !ok {
		t.Fatal("no citations event")
	}
	var cits struct {
		Documents []struct {
			ID string `json:"id"`
		} `json:"documents"`
	}
	json.NewDecoder(bytes.NewReader([]byte(cit.Data))).Decode(&cits)
	if len(cits.Documents) < 2 {
		t.Fatalf("want >= 2 citations, got %d", len(cits.Documents))
	}

	before := api.Engine.Searcher.Reranker.Stats()
	// Click the second-ranked document: the first becomes a negative
	// example, the clicked one positive.
	resp := authedReq(t, http.MethodPost, srv.URL+"/api/sessions/"+sid+"/feedback", token,
		map[string]interface{}{"turn": 0, "chunkId": cits.Documents[1].ID})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("feedback: status %d: %s", resp.StatusCode, msg)
	}
	var out struct {
		Applied bool   `json:"applied"`
		Version uint64 `json:"version"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	if !out.Applied {
		t.Fatal("feedback not applied")
	}
	after := api.Engine.Searcher.Reranker.Stats()
	if after.Version != before.Version+1 || after.Clicks != before.Clicks+1 {
		t.Fatalf("stats before=%+v after=%+v", before, after)
	}
	if out.Version != after.Version {
		t.Fatalf("response version %d != reranker version %d", out.Version, after.Version)
	}

	// Clicking an uncited chunk is a client error, not a weight update.
	resp2 := authedReq(t, http.MethodPost, srv.URL+"/api/sessions/"+sid+"/feedback", token,
		map[string]interface{}{"turn": 0, "chunkId": "not-a-cited-chunk"})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("uncited click: status %d, want 400", resp2.StatusCode)
	}
}

func TestSessionNotFound(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "ghost")
	_, status := askStreamStatus(t, srv.URL, token, "s-nonexistent", "Domanda?")
	if status != http.StatusNotFound {
		t.Fatalf("ask on unknown session: status %d, want 404", status)
	}
	resp := authedReq(t, http.MethodGet, srv.URL+"/api/sessions/s-nonexistent", token, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown session: status %d, want 404", resp.StatusCode)
	}
}

func TestSessionDashboardGauges(t *testing.T) {
	srv, _ := setup(t)
	token := login(t, srv.URL, "gauge")
	sid := createSession(t, srv.URL, token)
	parseDone(t, askStream(t, srv.URL, token, sid, "Come posso "+corpus.Docs[3].Title+"?"))

	resp := authedReq(t, http.MethodGet, srv.URL+"/api/dashboard", token, nil)
	defer resp.Body.Close()
	var dash struct {
		HasSessions bool
		Sessions    struct {
			Live          int
			Turns         int
			StreamsOpened uint64
			StreamsClosed uint64
			OpenStreams   int64
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&dash); err != nil {
		t.Fatal(err)
	}
	if !dash.HasSessions {
		t.Fatal("dashboard has no session gauge")
	}
	if dash.Sessions.Live < 1 || dash.Sessions.Turns < 1 {
		t.Fatalf("session gauge: %+v", dash.Sessions)
	}
	if dash.Sessions.StreamsOpened < 1 || dash.Sessions.StreamsOpened != dash.Sessions.StreamsClosed {
		t.Fatalf("stream counters should balance after the turn: %+v", dash.Sessions)
	}
	if dash.Sessions.OpenStreams != 0 {
		t.Fatalf("no stream should remain open: %+v", dash.Sessions)
	}
}

// BenchmarkSessionAsk measures a steady-state conversational turn through
// the full HTTP+SSE surface: rewrite, retrieval, streaming generation,
// transcript append.
func BenchmarkSessionAsk(b *testing.B) {
	srv, _ := benchSetup(b)
	token := login(b, srv.URL, "bench")
	sid := createSession(b, srv.URL, token)
	q := "Come posso " + corpus.Docs[0].Title + "?"
	askStream(b, srv.URL, token, sid, q) // warm: caches, session history
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := askStream(b, srv.URL, token, sid, q)
		if _, ok := findEvent(events, "done"); !ok {
			b.Fatal("no done event")
		}
	}
}

// BenchmarkSSEStream measures time-to-first-citation: how long a client
// waits before it can render the document list, reported as
// time-to-first-citation-ns (the streaming win over the one-shot API).
func BenchmarkSSEStream(b *testing.B) {
	srv, _ := benchSetup(b)
	token := login(b, srv.URL, "bench")
	sid := createSession(b, srv.URL, token)
	q := "Come posso " + corpus.Docs[1].Title + "?"
	askStream(b, srv.URL, token, sid, q)
	var totalFirstCitation time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(map[string]string{"question": q})
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/api/sessions/"+sid+"/ask", bytes.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+token)
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		var (
			p             sse.Parser
			buf           = make([]byte, 4096)
			firstCitation time.Duration
		)
		for {
			n, readErr := resp.Body.Read(buf)
			if n > 0 {
				evs, _ := p.Feed(buf[:n])
				for _, ev := range evs {
					if ev.Name == "citations" && firstCitation == 0 {
						firstCitation = time.Since(start)
					}
				}
			}
			if readErr != nil {
				break
			}
		}
		resp.Body.Close()
		if firstCitation == 0 {
			b.Fatal("no citations event")
		}
		totalFirstCitation += firstCitation
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(totalFirstCitation.Nanoseconds())/float64(b.N), "time-to-first-citation-ns")
	}
}

// benchSetup is setup(t) for benchmarks: builds (or reuses) the shared
// test server.
func benchSetup(b *testing.B) (*httptest.Server, *Server) {
	b.Helper()
	if testSrv == nil {
		corpus = kb.Generate(kb.GenConfig{Docs: 150, Seed: 21})
		engine, err := core.BuildFromCorpus(context.Background(), corpus, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		testAPI = New(engine)
		testSrv = httptest.NewServer(testAPI.Handler())
	}
	return testSrv, testAPI
}
