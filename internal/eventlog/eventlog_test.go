package eventlog

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2025, 3, 1, 10, 0, 0, 0, time.UTC)

func seeded() *Log {
	l := New()
	l.Append(Event{At: t0, Service: "backend", Type: "query", User: "alice", DurationMS: 100})
	l.Append(Event{At: t0.Add(time.Minute), Service: "backend", Type: "query", User: "bob", DurationMS: 300})
	l.Append(Event{At: t0.Add(2 * time.Minute), Service: "generation", Type: "guardrail", User: "bob",
		Fields: map[string]string{"trigger": "citation"}})
	l.Append(Event{At: t0.Add(3 * time.Minute), Service: "backend", Type: "feedback", User: "alice",
		Fields: map[string]string{"positive": "true"}})
	l.Append(Event{At: t0.Add(4 * time.Minute), Service: "ingestion", Type: "ingest"})
	return l
}

func TestSelectFilters(t *testing.T) {
	l := seeded()
	if got := len(l.Select(Query{})); got != 5 {
		t.Fatalf("all = %d", got)
	}
	if got := len(l.Select(Query{Service: "backend"})); got != 3 {
		t.Fatalf("backend = %d", got)
	}
	if got := len(l.Select(Query{Type: "query"})); got != 2 {
		t.Fatalf("queries = %d", got)
	}
	if got := len(l.Select(Query{User: "bob"})); got != 2 {
		t.Fatalf("bob = %d", got)
	}
	if got := len(l.Select(Query{Service: "backend", Type: "query", User: "alice"})); got != 1 {
		t.Fatalf("conjunction = %d", got)
	}
}

func TestTimeWindow(t *testing.T) {
	l := seeded()
	got := l.Select(Query{Since: t0.Add(time.Minute), Until: t0.Add(3 * time.Minute)})
	if len(got) != 2 {
		t.Fatalf("window = %d events", len(got))
	}
	// Until is exclusive, Since inclusive.
	if !got[0].At.Equal(t0.Add(time.Minute)) {
		t.Fatalf("first = %v", got[0].At)
	}
}

func TestCountAndAggregate(t *testing.T) {
	l := seeded()
	if got := l.Count(Query{Type: "query"}); got != 2 {
		t.Fatalf("count = %d", got)
	}
	byUser := l.Aggregate(Query{Service: "backend"}, "user")
	if byUser["alice"] != 2 || byUser["bob"] != 1 {
		t.Fatalf("byUser = %v", byUser)
	}
	byTrigger := l.Aggregate(Query{Type: "guardrail"}, "trigger")
	if byTrigger["citation"] != 1 {
		t.Fatalf("byTrigger = %v", byTrigger)
	}
	byService := l.Aggregate(Query{}, "service")
	if byService["backend"] != 3 || byService["ingestion"] != 1 {
		t.Fatalf("byService = %v", byService)
	}
}

func TestAvgDuration(t *testing.T) {
	l := seeded()
	if got := l.AvgDuration(Query{Type: "query"}); got != 200*time.Millisecond {
		t.Fatalf("avg = %v", got)
	}
	if got := l.AvgDuration(Query{Type: "ingest"}); got != 0 {
		t.Fatalf("avg with no durations = %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := seeded()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Fatalf("exported %d lines", lines)
	}
	restored := New()
	if err := restored.ReadJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 5 {
		t.Fatalf("restored %d events", restored.Len())
	}
	if got := restored.Count(Query{Type: "guardrail"}); got != 1 {
		t.Fatalf("restored guardrails = %d", got)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	l := New()
	if err := l.ReadJSONL(strings.NewReader("{bad json}\n")); err == nil {
		t.Fatal("bad line accepted")
	}
	if err := l.ReadJSONL(strings.NewReader("\n\n")); err != nil {
		t.Fatalf("blank lines rejected: %v", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(Event{Service: "s", Type: "t"})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("lost events: %d", l.Len())
	}
}

// Property: Count always equals len(Select) for the same query, and the
// empty query matches everything.
func TestCountSelectConsistencyProperty(t *testing.T) {
	l := seeded()
	queries := []Query{
		{}, {Service: "backend"}, {Type: "query"}, {User: "alice"},
		{Service: "backend", Type: "feedback"},
		{Since: t0.Add(time.Minute)}, {Until: t0.Add(2 * time.Minute)},
	}
	for _, q := range queries {
		if l.Count(q) != len(l.Select(q)) {
			t.Fatalf("Count != len(Select) for %+v", q)
		}
	}
	if l.Count(Query{}) != l.Len() {
		t.Fatal("empty query does not match all")
	}
}
