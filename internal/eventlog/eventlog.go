// Package eventlog implements the structured service log behind UniAsk's
// monitoring (§9): the dashboard "directly queries the logs of the various
// microservices". Services append typed events to a log (in memory, with
// JSONL export/import for durability); the analytics side runs filtered
// queries and aggregations over it to build the dashboard panels.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one structured log record.
type Event struct {
	// At is the event timestamp.
	At time.Time `json:"at"`
	// Service is the emitting microservice ("backend", "retrieval",
	// "generation", "ingestion", ...).
	Service string `json:"service"`
	// Type is the event type ("query", "feedback", "guardrail", "error",
	// "ingest", ...).
	Type string `json:"type"`
	// User is the acting user, when applicable.
	User string `json:"user,omitempty"`
	// DurationMS is the operation latency in milliseconds, when applicable.
	DurationMS int64 `json:"durationMs,omitempty"`
	// Fields carries event-specific attributes.
	Fields map[string]string `json:"fields,omitempty"`
}

// Log is an append-only in-memory event log safe for concurrent use.
type Log struct {
	mu     sync.RWMutex
	events []Event
}

// New creates an empty log.
func New() *Log { return &Log{} }

// Append adds an event.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Len reports the number of events.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Query is a filter over the log. Zero fields match everything.
type Query struct {
	// Service and Type filter by exact match when non-empty.
	Service, Type string
	// User filters by exact match when non-empty.
	User string
	// Since and Until bound the time window (zero = unbounded).
	Since, Until time.Time
}

func (q Query) matches(e Event) bool {
	if q.Service != "" && e.Service != q.Service {
		return false
	}
	if q.Type != "" && e.Type != q.Type {
		return false
	}
	if q.User != "" && e.User != q.User {
		return false
	}
	if !q.Since.IsZero() && e.At.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !e.At.Before(q.Until) {
		return false
	}
	return true
}

// Select returns the matching events in append order.
func (l *Log) Select(q Query) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if q.matches(e) {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of matching events.
func (l *Log) Count(q Query) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, e := range l.events {
		if q.matches(e) {
			n++
		}
	}
	return n
}

// Aggregate groups matching events by a field value and counts them. The
// special keys "service", "type" and "user" group by the event attributes;
// any other key groups by Fields[key] (missing values group under "").
func (l *Log) Aggregate(q Query, key string) map[string]int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string]int)
	for _, e := range l.events {
		if !q.matches(e) {
			continue
		}
		var v string
		switch key {
		case "service":
			v = e.Service
		case "type":
			v = e.Type
		case "user":
			v = e.User
		default:
			v = e.Fields[key]
		}
		out[v]++
	}
	return out
}

// AvgDuration returns the mean DurationMS of matching events (0 when none
// carry a duration).
func (l *Log) AvgDuration(q Query) time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var total int64
	n := 0
	for _, e := range l.events {
		if q.matches(e) && e.DurationMS > 0 {
			total += e.DurationMS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return time.Duration(total/int64(n)) * time.Millisecond
}

// WriteJSONL exports the log as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	enc := json.NewEncoder(w)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("eventlog: encode: %w", err)
		}
	}
	return nil
}

// ReadJSONL imports events from JSON lines, appending them to the log.
func (l *Log) ReadJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("eventlog: line %d: %w", line, err)
		}
		l.Append(e)
	}
	return sc.Err()
}
