// Package fusion implements Reciprocal Rank Fusion (RRF), the algorithm
// Azure AI Search — and therefore UniAsk — uses to merge the rankings
// produced by full-text search and by each vector field into a single
// hybrid ranking. Each document receives, from every ranking it appears in,
// a score of 1/(rank + c); the fused score is the sum.
package fusion

import "sort"

// DefaultC is the RRF constant used by Azure AI Search and by the paper.
const DefaultC = 60

// Ranking is an ordered list of document ids, best first.
type Ranking []string

// Fused is one entry of the fused ranking.
type Fused struct {
	// ID is the document id.
	ID string
	// Score is the summed reciprocal-rank score.
	Score float64
	// Sources counts how many input rankings contained the document.
	Sources int
}

// RRF fuses the given rankings with constant c (DefaultC when c < 1, since
// the paper requires c >= 1). Ties are broken by id for determinism.
func RRF(rankings []Ranking, c int) []Fused {
	if c < 1 {
		c = DefaultC
	}
	scores := make(map[string]*Fused)
	order := make([]string, 0)
	for _, r := range rankings {
		for rank, id := range r {
			f, ok := scores[id]
			if !ok {
				f = &Fused{ID: id}
				scores[id] = f
				order = append(order, id)
			}
			// The paper's formula is 1/(rank + c) with 1-based ranks.
			f.Score += 1.0 / float64(rank+1+c)
			f.Sources++
		}
	}
	out := make([]Fused, 0, len(order))
	for _, id := range order {
		out = append(out, *scores[id])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TopIDs returns the ids of the first n fused results.
func TopIDs(fused []Fused, n int) []string {
	if n > len(fused) {
		n = len(fused)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fused[i].ID
	}
	return out
}
