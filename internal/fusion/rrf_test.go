package fusion

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRRFSingleRanking(t *testing.T) {
	out := RRF([]Ranking{{"a", "b", "c"}}, 60)
	if len(out) != 3 || out[0].ID != "a" || out[1].ID != "b" || out[2].ID != "c" {
		t.Fatalf("out = %v", out)
	}
	want := 1.0 / 61
	if math.Abs(out[0].Score-want) > 1e-12 {
		t.Fatalf("score = %v, want %v", out[0].Score, want)
	}
}

func TestRRFAgreementWins(t *testing.T) {
	// "b" is ranked 2nd by both lists; "a" and "c" are 1st in one list only.
	out := RRF([]Ranking{{"a", "b"}, {"c", "b"}}, 60)
	if out[0].ID != "b" {
		t.Fatalf("consensus doc should win: %v", out)
	}
	if out[0].Sources != 2 {
		t.Fatalf("sources = %d", out[0].Sources)
	}
}

func TestRRFDefaultConstant(t *testing.T) {
	a := RRF([]Ranking{{"x"}}, 0)  // invalid -> default
	b := RRF([]Ranking{{"x"}}, 60) // explicit default
	if a[0].Score != b[0].Score {
		t.Fatalf("default constant not applied: %v vs %v", a[0].Score, b[0].Score)
	}
}

func TestRRFEmpty(t *testing.T) {
	if out := RRF(nil, 60); len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
	if out := RRF([]Ranking{{}, {}}, 60); len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}

func TestRRFDeterministicTieBreak(t *testing.T) {
	// Same rank in disjoint lists -> identical scores -> order by id.
	out := RRF([]Ranking{{"zz"}, {"aa"}}, 60)
	if out[0].ID != "aa" || out[1].ID != "zz" {
		t.Fatalf("tie-break wrong: %v", out)
	}
}

func TestTopIDs(t *testing.T) {
	fused := RRF([]Ranking{{"a", "b", "c"}}, 60)
	if got := TopIDs(fused, 2); len(got) != 2 || got[0] != "a" {
		t.Fatalf("TopIDs = %v", got)
	}
	if got := TopIDs(fused, 10); len(got) != 3 {
		t.Fatalf("TopIDs over-length = %v", got)
	}
}

// Property: fused scores decrease monotonically and every input id appears
// exactly once.
func TestRRFProperties(t *testing.T) {
	f := func(ids []string) bool {
		// Build two rankings from the same unique ids (forward/reverse).
		seen := map[string]bool{}
		var unique Ranking
		for _, id := range ids {
			if id == "" || seen[id] {
				continue
			}
			seen[id] = true
			unique = append(unique, id)
		}
		rev := make(Ranking, len(unique))
		for i, id := range unique {
			rev[len(unique)-1-i] = id
		}
		out := RRF([]Ranking{unique, rev}, 60)
		if len(out) != len(unique) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1].Score < out[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a forward and a reversed ranking of distinct ids, middle
// elements (balanced ranks) score at least as well as the extremes' average
// — sanity of the 1/(rank+c) curve shape.
func TestRRFSymmetricPair(t *testing.T) {
	out := RRF([]Ranking{{"a", "m", "z"}, {"z", "m", "a"}}, 60)
	// a and z have identical summed scores; m is strictly between or above.
	var am, zm, mm float64
	for _, f := range out {
		switch f.ID {
		case "a":
			am = f.Score
		case "z":
			zm = f.Score
		case "m":
			mm = f.Score
		}
	}
	if math.Abs(am-zm) > 1e-12 {
		t.Fatalf("a and z should tie: %v vs %v", am, zm)
	}
	if mm <= 0 || am <= 0 {
		t.Fatal("scores must be positive")
	}
}
