// Package pipeline models UniAsk's Figure-1 query path as named,
// composable stages. A stage is any unit of work with an input size, an
// output size, a latency and an error; stages report themselves through an
// Observer so the §9 monitoring layer sees every hop of every query
// without the stages knowing who is watching.
//
// The package also provides the bounded concurrent fan-out the query path
// uses to run its independent retrieval legs (BM25 text search plus one
// ANN search per vector field, and the per-query searches of the MQ1
// expansion) in parallel: Map preserves task order exactly, so the fused
// ranking downstream of a concurrent fan-out is byte-identical to the
// sequential execution.
//
// Every entry point takes a context.Context and honors cancellation: a
// cancelled pipeline returns ctx.Err(), never partial results.
package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical stage names of the Figure-1 query path. Observers receive
// these in StageInfo.Stage; anything else is a custom stage.
const (
	StageFilter = "filter"
	// StageRewrite is the history-aware query rewrite of a conversational
	// turn: the raw question plus the session history in, one standalone
	// query out. Runs before expansion; sheds to the raw query on failure.
	StageRewrite    = "rewrite"
	StageExpand     = "expand"
	StageEmbed      = "embed"
	StageRetrieval  = "retrieval"
	StageFusion     = "fusion"
	StageRerank     = "rerank"
	StageGeneration = "generation"
	StageGuardrails = "guardrails"
	// StageDegraded is the synthetic stage reporting every shed unit of
	// work: a failed retrieval leg, a skipped expansion, an extractive
	// generation fallback. Its Err carries the cause; its In counts the
	// shed items. The monitor surfaces it as the degradation gauge.
	StageDegraded = "degraded"
)

// StageOrder returns the display rank of a stage: canonical Figure-1
// stages in query-flow order first, unknown stages after them.
func StageOrder(stage string) int {
	for i, s := range []string{
		StageFilter, StageRewrite, StageExpand, StageEmbed, StageRetrieval,
		StageFusion, StageRerank, StageGeneration, StageGuardrails,
		StageDegraded,
	} {
		if s == stage {
			return i
		}
	}
	return 100
}

// StageInfo describes one completed (or refused) stage execution.
type StageInfo struct {
	// Stage is the stage name (one of the Stage* constants or custom).
	Stage string
	// Duration is how long the stage ran (zero when the stage was refused
	// because its context was already cancelled).
	Duration time.Duration
	// In and Out are the stage's input and output sizes — items, not
	// bytes: documents in, rankings out, chunks in, one answer out.
	In, Out int
	// Err is the stage error, including ctx.Err() on cancellation.
	Err error
}

// Observer receives stage reports. Implementations must be safe for
// concurrent use: fan-out stages report from multiple goroutines.
type Observer interface {
	ObserveStage(StageInfo)
}

// CtxObserver is the optional context-aware extension of Observer: an
// observer that also wants the reporting stage's context — the tracing
// adapter reads the active trace from it, the monitor reads the trace id
// for its exemplar links. Observe prefers this method when present.
type CtxObserver interface {
	Observer
	ObserveStageCtx(ctx context.Context, info StageInfo)
}

// observerPanics counts observer panics swallowed by Observe. Observers
// are bystanders: one that panics must not kill the query it is watching,
// so the dispatch recovers, counts, and moves on.
var observerPanics atomic.Uint64

// ObserverPanics reports how many observer panics have been recovered
// process-wide (monotonic; exposed for tests and health diagnostics).
func ObserverPanics() uint64 { return observerPanics.Load() }

// Observe dispatches one stage report to obs, preferring the context-aware
// interface, and recovers (and counts) an observer panic instead of
// letting it unwind into the stage that reported.
func Observe(ctx context.Context, obs Observer, info StageInfo) {
	if obs == nil {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			observerPanics.Add(1)
		}
	}()
	if co, ok := obs.(CtxObserver); ok {
		co.ObserveStageCtx(ctx, info)
		return
	}
	obs.ObserveStage(info)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(StageInfo)

// ObserveStage implements Observer.
func (f ObserverFunc) ObserveStage(info StageInfo) { f(info) }

type nopObserver struct{}

func (nopObserver) ObserveStage(StageInfo) {}

// Nop is the observer that discards every report.
var Nop Observer = nopObserver{}

// OrNop returns obs, or Nop when obs is nil, so call sites never need a
// nil check.
func OrNop(obs Observer) Observer {
	if obs == nil {
		return Nop
	}
	return obs
}

type multiObserver []Observer

func (m multiObserver) ObserveStage(info StageInfo) {
	m.ObserveStageCtx(context.Background(), info)
}

// ObserveStageCtx fans the report out to every member through the
// panic-recovering dispatch, so one crashing observer cannot starve its
// siblings of the report (or kill the query).
func (m multiObserver) ObserveStageCtx(ctx context.Context, info StageInfo) {
	for _, o := range m {
		Observe(ctx, o, info)
	}
}

// Multi fans each stage report out to every given observer (nils skipped).
func Multi(obs ...Observer) Observer {
	var out multiObserver
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	if len(out) == 0 {
		return Nop
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// Run executes fn as a named stage: it refuses to start when ctx is
// already cancelled (reporting the refusal), times the execution, and
// reports the outcome to obs. fn returns the stage's output size. Run
// returns fn's error, or ctx.Err() when the stage never started.
func Run(ctx context.Context, obs Observer, stage string, in int, fn func(context.Context) (int, error)) error {
	obs = OrNop(obs)
	if err := ctx.Err(); err != nil {
		Observe(ctx, obs, StageInfo{Stage: stage, In: in, Err: err})
		return err
	}
	start := time.Now()
	out, err := fn(ctx)
	Observe(ctx, obs, StageInfo{Stage: stage, Duration: time.Since(start), In: in, Out: out, Err: err})
	return err
}

// DefaultWorkers is the fan-out width used when a caller does not set one.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs n independent tasks over a bounded pool of workers and returns
// their results in task order: out[i] is fn(ctx, i). The concurrent
// execution is observationally identical to running the tasks 0..n-1
// sequentially — callers that join the results (RRF fusion) see the exact
// ordering of the sequential path.
//
// If ctx is cancelled mid-flight Map returns ctx.Err() and no results.
// If a task fails, the remaining tasks are cancelled and the error of the
// lowest-index failed task is returned (matching what a sequential loop
// would have surfaced first); task errors caused only by that internal
// cancellation do not mask the original failure.
func Map[T any](ctx context.Context, workers, n int, fn func(context.Context, int) (T, error)) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	fail := func(i int, err error) {
		mu.Lock()
		switch {
		case firstErr == nil:
			firstErr, firstIdx = err, i
		case i < firstIdx && !isOnlyCancellation(err, firstErr):
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if mctx.Err() != nil {
					return
				}
				v, err := fn(mctx, i)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-mctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	// The caller's cancellation always wins: never return partial results.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// isOnlyCancellation reports whether err is just the echo of the internal
// cancellation triggered by prev — such an error must not displace the
// failure that caused it merely because it carries a lower task index.
func isOnlyCancellation(err, prev error) bool {
	return errors.Is(err, context.Canceled) && !errors.Is(prev, context.Canceled)
}
