package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recorder is a thread-safe test observer.
type recorder struct {
	mu    sync.Mutex
	infos []StageInfo
}

func (r *recorder) ObserveStage(info StageInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos = append(r.infos, info)
}

func (r *recorder) byStage(stage string) []StageInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []StageInfo
	for _, i := range r.infos {
		if i.Stage == stage {
			out = append(out, i)
		}
	}
	return out
}

func TestRunReportsStage(t *testing.T) {
	rec := &recorder{}
	err := Run(context.Background(), rec, StageFusion, 7, func(ctx context.Context) (int, error) {
		time.Sleep(time.Millisecond)
		return 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rec.byStage(StageFusion)
	if len(got) != 1 {
		t.Fatalf("reports = %+v", got)
	}
	info := got[0]
	if info.In != 7 || info.Out != 3 || info.Err != nil || info.Duration <= 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestRunReportsError(t *testing.T) {
	rec := &recorder{}
	boom := errors.New("boom")
	err := Run(context.Background(), rec, StageGeneration, 1, func(ctx context.Context) (int, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := rec.byStage(StageGeneration); len(got) != 1 || !errors.Is(got[0].Err, boom) {
		t.Fatalf("reports = %+v", got)
	}
}

func TestRunRefusesCancelledContext(t *testing.T) {
	rec := &recorder{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Run(ctx, rec, StageRerank, 5, func(ctx context.Context) (int, error) {
		ran = true
		return 5, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("stage body ran under a cancelled context")
	}
	got := rec.byStage(StageRerank)
	if len(got) != 1 || !errors.Is(got[0].Err, context.Canceled) || got[0].In != 5 {
		t.Fatalf("reports = %+v", got)
	}
}

func TestRunNilObserver(t *testing.T) {
	if err := Run(context.Background(), nil, "x", 0, func(ctx context.Context) (int, error) {
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(context.Background(), workers, 100, func(ctx context.Context, i int) (string, error) {
			return fmt.Sprintf("task-%03d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != fmt.Sprintf("task-%03d", i) {
				t.Fatalf("workers=%d: out[%d] = %q", workers, i, v)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	_, err := Map(context.Background(), workers, 50, func(ctx context.Context, i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks with %d workers", p, workers)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(ctx context.Context, i int) (int, error) {
		t.Fatal("task ran for n=0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapTaskErrorCancelsRest(t *testing.T) {
	boom := errors.New("task failed")
	var ran atomic.Int32
	_, err := Map(context.Background(), 2, 100, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 100 {
		t.Fatal("error did not cancel remaining tasks")
	}
}

func TestMapErrorNotMaskedByCancellationEcho(t *testing.T) {
	boom := errors.New("real failure")
	release := make(chan struct{})
	_, err := Map(context.Background(), 2, 4, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			// Wait until task 1 has failed, then echo the internal
			// cancellation like a well-behaved ctx-aware task.
			<-release
			<-ctx.Done()
			return 0, ctx.Err()
		}
		if i == 1 {
			defer close(release)
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real failure", err)
	}
}

func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Map(ctx, 4, 10, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapMidFlightCancellationReturnsNoPartialResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		out, err := Map(ctx, workers, 100, func(c context.Context, i int) (int, error) {
			if i == 10 {
				cancel()
			}
			if err := c.Err(); err != nil {
				return 0, err
			}
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: partial results leaked: %v", workers, out)
		}
	}
}

func TestMultiAndOrNop(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	obs := Multi(nil, a, b)
	obs.ObserveStage(StageInfo{Stage: "x"})
	if len(a.byStage("x")) != 1 || len(b.byStage("x")) != 1 {
		t.Fatal("multi observer dropped a report")
	}
	if Multi() != Nop {
		t.Fatal("empty Multi is not Nop")
	}
	if OrNop(nil) != Nop || OrNop(a) != Observer(a) {
		t.Fatal("OrNop misbehaves")
	}
}

func TestStageOrder(t *testing.T) {
	if !(StageOrder(StageFilter) < StageOrder(StageRetrieval) &&
		StageOrder(StageRetrieval) < StageOrder(StageFusion) &&
		StageOrder(StageFusion) < StageOrder(StageRerank) &&
		StageOrder(StageRerank) < StageOrder(StageGeneration) &&
		StageOrder(StageGeneration) < StageOrder(StageGuardrails)) {
		t.Fatal("canonical stage order broken")
	}
	if StageOrder("custom") <= StageOrder(StageGuardrails) {
		t.Fatal("unknown stages must sort after canonical ones")
	}
}

// ctxRecorder is a context-aware test observer: it records which context
// key values it saw, proving Observe prefers ObserveStageCtx.
type ctxRecorder struct {
	recorder
	ctxSeen atomic.Int64
}

type testCtxKey struct{}

func (r *ctxRecorder) ObserveStageCtx(ctx context.Context, info StageInfo) {
	if ctx.Value(testCtxKey{}) != nil {
		r.ctxSeen.Add(1)
	}
	r.ObserveStage(info)
}

func TestObservePrefersCtxObserver(t *testing.T) {
	rec := &ctxRecorder{}
	ctx := context.WithValue(context.Background(), testCtxKey{}, "yes")
	Observe(ctx, rec, StageInfo{Stage: "x"})
	if rec.ctxSeen.Load() != 1 {
		t.Fatal("Observe must dispatch through ObserveStageCtx when implemented")
	}
	if len(rec.byStage("x")) != 1 {
		t.Fatal("report lost")
	}
	// Run must hand its context through to the observer too.
	if err := Run(ctx, rec, "y", 0, func(context.Context) (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if rec.ctxSeen.Load() != 2 {
		t.Fatal("Run must dispatch reports with the stage's context")
	}
}

// panicObserver panics on every report, in both dispatch shapes.
type panicObserver struct{}

func (panicObserver) ObserveStage(StageInfo) { panic("observer bug") }
func (panicObserver) ObserveStageCtx(context.Context, StageInfo) {
	panic("ctx observer bug")
}

func TestObserveRecoversPanickingObserver(t *testing.T) {
	before := ObserverPanics()
	rec := &recorder{}
	obs := Multi(panicObserver{}, rec)

	// The stage must complete and its report must still reach the healthy
	// sibling, with the panic counted instead of unwinding into the query.
	err := Run(context.Background(), obs, StageRerank, 5, func(context.Context) (int, error) {
		return 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.byStage(StageRerank); len(got) != 1 || got[0].Out != 2 {
		t.Fatalf("healthy sibling reports = %+v, want one rerank report", got)
	}
	if ObserverPanics() <= before {
		t.Fatal("recovered panic must be counted")
	}

	// A bare (non-Multi) panicking observer must not kill Run either.
	if err := Run(context.Background(), panicObserver{}, "z", 0, func(context.Context) (int, error) {
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiObserverConcurrent(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	obs := Multi(a, b, panicObserver{})
	const goroutines, reports = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reports; i++ {
				Observe(context.Background(), obs, StageInfo{Stage: "conc", In: g, Out: i})
			}
		}(g)
	}
	wg.Wait()
	if got := len(a.byStage("conc")); got != goroutines*reports {
		t.Fatalf("observer a saw %d reports, want %d", got, goroutines*reports)
	}
	if got := len(b.byStage("conc")); got != goroutines*reports {
		t.Fatalf("observer b saw %d reports, want %d", got, goroutines*reports)
	}
}
