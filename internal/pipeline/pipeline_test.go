package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recorder is a thread-safe test observer.
type recorder struct {
	mu    sync.Mutex
	infos []StageInfo
}

func (r *recorder) ObserveStage(info StageInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos = append(r.infos, info)
}

func (r *recorder) byStage(stage string) []StageInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []StageInfo
	for _, i := range r.infos {
		if i.Stage == stage {
			out = append(out, i)
		}
	}
	return out
}

func TestRunReportsStage(t *testing.T) {
	rec := &recorder{}
	err := Run(context.Background(), rec, StageFusion, 7, func(ctx context.Context) (int, error) {
		time.Sleep(time.Millisecond)
		return 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rec.byStage(StageFusion)
	if len(got) != 1 {
		t.Fatalf("reports = %+v", got)
	}
	info := got[0]
	if info.In != 7 || info.Out != 3 || info.Err != nil || info.Duration <= 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestRunReportsError(t *testing.T) {
	rec := &recorder{}
	boom := errors.New("boom")
	err := Run(context.Background(), rec, StageGeneration, 1, func(ctx context.Context) (int, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := rec.byStage(StageGeneration); len(got) != 1 || !errors.Is(got[0].Err, boom) {
		t.Fatalf("reports = %+v", got)
	}
}

func TestRunRefusesCancelledContext(t *testing.T) {
	rec := &recorder{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Run(ctx, rec, StageRerank, 5, func(ctx context.Context) (int, error) {
		ran = true
		return 5, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("stage body ran under a cancelled context")
	}
	got := rec.byStage(StageRerank)
	if len(got) != 1 || !errors.Is(got[0].Err, context.Canceled) || got[0].In != 5 {
		t.Fatalf("reports = %+v", got)
	}
}

func TestRunNilObserver(t *testing.T) {
	if err := Run(context.Background(), nil, "x", 0, func(ctx context.Context) (int, error) {
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(context.Background(), workers, 100, func(ctx context.Context, i int) (string, error) {
			return fmt.Sprintf("task-%03d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != fmt.Sprintf("task-%03d", i) {
				t.Fatalf("workers=%d: out[%d] = %q", workers, i, v)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	_, err := Map(context.Background(), workers, 50, func(ctx context.Context, i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks with %d workers", p, workers)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(ctx context.Context, i int) (int, error) {
		t.Fatal("task ran for n=0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapTaskErrorCancelsRest(t *testing.T) {
	boom := errors.New("task failed")
	var ran atomic.Int32
	_, err := Map(context.Background(), 2, 100, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 100 {
		t.Fatal("error did not cancel remaining tasks")
	}
}

func TestMapErrorNotMaskedByCancellationEcho(t *testing.T) {
	boom := errors.New("real failure")
	release := make(chan struct{})
	_, err := Map(context.Background(), 2, 4, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			// Wait until task 1 has failed, then echo the internal
			// cancellation like a well-behaved ctx-aware task.
			<-release
			<-ctx.Done()
			return 0, ctx.Err()
		}
		if i == 1 {
			defer close(release)
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real failure", err)
	}
}

func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Map(ctx, 4, 10, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapMidFlightCancellationReturnsNoPartialResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		out, err := Map(ctx, workers, 100, func(c context.Context, i int) (int, error) {
			if i == 10 {
				cancel()
			}
			if err := c.Err(); err != nil {
				return 0, err
			}
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: partial results leaked: %v", workers, out)
		}
	}
}

func TestMultiAndOrNop(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	obs := Multi(nil, a, b)
	obs.ObserveStage(StageInfo{Stage: "x"})
	if len(a.byStage("x")) != 1 || len(b.byStage("x")) != 1 {
		t.Fatal("multi observer dropped a report")
	}
	if Multi() != Nop {
		t.Fatal("empty Multi is not Nop")
	}
	if OrNop(nil) != Nop || OrNop(a) != Observer(a) {
		t.Fatal("OrNop misbehaves")
	}
}

func TestStageOrder(t *testing.T) {
	if !(StageOrder(StageFilter) < StageOrder(StageRetrieval) &&
		StageOrder(StageRetrieval) < StageOrder(StageFusion) &&
		StageOrder(StageFusion) < StageOrder(StageRerank) &&
		StageOrder(StageRerank) < StageOrder(StageGeneration) &&
		StageOrder(StageGeneration) < StageOrder(StageGuardrails)) {
		t.Fatal("canonical stage order broken")
	}
	if StageOrder("custom") <= StageOrder(StageGuardrails) {
		t.Fatal("unknown stages must sort after canonical ones")
	}
}
