package indexer

import (
	"context"
	"strings"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/index"
	"uniask/internal/ingest"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/queue"
)

func testSetup(cfg Config) (*Indexer, *index.Index) {
	ix := index.New(index.Config{Schema: Schema()})
	emb := embedding.NewSynth(64, nil)
	client := llm.NewSim(llm.DefaultBehavior())
	return New(ix, emb, client, cfg), ix
}

func extractedPage(id, html string) ingest.Extracted {
	src := ingest.StaticSource{{ID: id, HTML: html}}
	q := queue.New[ingest.Extracted]()
	(&ingest.Ingester{Source: src, Out: q}).SyncOnce()
	msg, _ := q.TryDequeue()
	return msg
}

const page = `<html><head><title>Blocco carta di credito</title>
<meta name="domain" content="prodotti"><meta name="section" content="carte"><meta name="topic" content="t1">
</head><body><h1>Blocco carta</h1>
<p>Per bloccare la carta di credito è necessario chiamare il numero verde.</p>
<p>Il servizio è attivo tutti i giorni della settimana.</p>
</body></html>`

func TestIndexDocumentBasic(t *testing.T) {
	in, ix := testSetup(Config{EnrichSummary: true})
	n, err := in.IndexDocument(context.Background(), extractedPage("kb00001", page))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || ix.Len() != n {
		t.Fatalf("chunks = %d, index len = %d", n, ix.Len())
	}
	doc, ok := ix.DocByID("kb00001#0")
	if !ok {
		t.Fatal("chunk not in index")
	}
	if doc.ParentID != "kb00001" {
		t.Fatalf("parent = %q", doc.ParentID)
	}
	if doc.Fields["title"] != "Blocco carta di credito" {
		t.Fatalf("title = %q", doc.Fields["title"])
	}
	if doc.Fields["domain"] != "prodotti" || doc.Fields["topic"] != "t1" {
		t.Fatalf("meta fields = %v", doc.Fields)
	}
	if doc.Fields["summary"] == "" {
		t.Fatal("summary enrichment missing")
	}
	if len(doc.Vectors["titleVector"]) == 0 || len(doc.Vectors["contentVector"]) == 0 {
		t.Fatal("vectors missing")
	}
}

func TestKeywordEnrichmentFields(t *testing.T) {
	in, ix := testSetup(Config{KeywordsFromTitle: true, KeywordsFromTitleContent: true})
	if _, err := in.IndexDocument(context.Background(), extractedPage("kb1", page)); err != nil {
		t.Fatal(err)
	}
	doc, _ := ix.DocByID("kb1#0")
	if doc.Fields["kwTitle"] == "" || doc.Fields["kwTitleContent"] == "" {
		t.Fatalf("keyword fields = %v", doc.Fields)
	}
	if !strings.Contains(doc.Fields["kwTitle"], "cart") {
		t.Fatalf("kwTitle = %q", doc.Fields["kwTitle"])
	}
}

func TestDeletedDocumentAcknowledged(t *testing.T) {
	in, ix := testSetup(Config{})
	n, err := in.IndexDocument(context.Background(), ingest.Extracted{ID: "gone", Deleted: true})
	if err != nil || n != 0 || ix.Len() != 0 {
		t.Fatalf("deletion handling: n=%d err=%v len=%d", n, err, ix.Len())
	}
}

func TestChunkIDRoundTrip(t *testing.T) {
	if got := chunkID("kb00042", 3); got != "kb00042#3" {
		t.Fatalf("chunkID = %q", got)
	}
	if got := ParentOf("kb00042#3"); got != "kb00042" {
		t.Fatalf("ParentOf = %q", got)
	}
	if got := ParentOf("plain"); got != "plain" {
		t.Fatalf("ParentOf(no #) = %q", got)
	}
}

func TestRunConsumesQueue(t *testing.T) {
	in, ix := testSetup(Config{})
	q := queue.New[ingest.Extracted]()
	q.Publish(extractedPage("kb1", page))
	q.Publish(extractedPage("kb2", page))
	q.Close()
	total, err := in.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || ix.Len() != total {
		t.Fatalf("total = %d, index len = %d", total, ix.Len())
	}
}

func TestEndToEndCorpusIndexing(t *testing.T) {
	// Full pipeline over a small generated corpus: kb -> ingest -> queue ->
	// indexer -> index.
	corpus := kb.Generate(kb.GenConfig{Docs: 50, Seed: 3})
	var pages ingest.StaticSource
	for _, d := range corpus.Docs {
		pages = append(pages, ingest.Page{ID: d.ID, HTML: d.HTML})
	}
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: pages, Out: q}
	if _, err := ing.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	q.Close()

	ix := index.New(index.Config{Schema: Schema()})
	emb := embedding.NewSynth(64, corpus.Lexicon())
	in := New(ix, emb, llm.NewSim(llm.DefaultBehavior()), Config{EnrichSummary: true})
	total, err := in.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if total < 50 {
		t.Fatalf("indexed %d chunks from 50 docs", total)
	}
	// Every corpus doc must have at least chunk #0 indexed with its title.
	for _, d := range corpus.Docs {
		chunk, ok := ix.DocByID(d.ID + "#0")
		if !ok {
			t.Fatalf("doc %s has no chunk 0", d.ID)
		}
		if chunk.Fields["title"] != d.Title {
			t.Fatalf("doc %s title mismatch: %q vs %q", d.ID, chunk.Fields["title"], d.Title)
		}
		if chunk.Fields["domain"] != d.Domain {
			t.Fatalf("doc %s domain mismatch", d.ID)
		}
	}
}

// TestLiveUpdateFlow exercises the full §3 dataflow for edits: the poller
// detects a modified page, the indexer replaces its chunks, a later
// deletion tombstones them.
func TestLiveUpdateFlow(t *testing.T) {
	in, ix := testSetup(Config{})
	ctx := context.Background()

	// Initial version.
	v1 := extractedPage("kb9", page)
	if _, err := in.IndexDocument(ctx, v1); err != nil {
		t.Fatal(err)
	}
	before := ix.LiveLen()

	// Modified version: different content must replace the old chunks.
	const pageV2 = `<html><head><title>Blocco carta di credito</title>
<meta name="domain" content="prodotti"></head><body>
<p>La nuova procedura prevede il blocco immediato tramite app mobile certificata.</p>
</body></html>`
	v2 := extractedPage("kb9", pageV2)
	if _, err := in.IndexDocument(ctx, v2); err != nil {
		t.Fatal(err)
	}
	hits := ix.SearchText("app mobile certificata", 5, index.TextOptions{})
	if len(hits) == 0 {
		t.Fatal("updated content not searchable")
	}
	stale := ix.SearchText("numero verde", 5, index.TextOptions{})
	for _, h := range stale {
		if index.Document(ix.Doc(h.Ord)).ParentID == "kb9" {
			t.Fatal("stale content still searchable")
		}
	}
	if ix.LiveLen() > before {
		t.Fatalf("live chunks grew on update: %d -> %d", before, ix.LiveLen())
	}

	// Deletion.
	if _, err := in.IndexDocument(ctx, ingest.Extracted{ID: "kb9", Deleted: true}); err != nil {
		t.Fatal(err)
	}
	if ix.HasParent("kb9") {
		t.Fatal("deleted page still live")
	}
}

// TestIndexBatchEquivalence: the parallel bulk path must produce the same
// index contents as the sequential path.
func TestIndexBatchEquivalence(t *testing.T) {
	corpus := kb.Generate(kb.GenConfig{Docs: 40, Seed: 9})
	var extracted []ingest.Extracted
	for _, d := range corpus.Docs {
		extracted = append(extracted, extractedPage(d.ID, d.HTML))
	}

	seqIdx, batchIdx := index.New(index.Config{Schema: Schema()}), index.New(index.Config{Schema: Schema()})
	emb := embedding.NewSynth(64, corpus.Lexicon())
	client := llm.NewSim(llm.DefaultBehavior())
	seq := New(seqIdx, emb, client, Config{EnrichSummary: true})
	bat := New(batchIdx, emb, client, Config{EnrichSummary: true})

	ctx := context.Background()
	seqTotal := 0
	for _, e := range extracted {
		n, err := seq.IndexDocument(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		seqTotal += n
	}
	batTotal, err := bat.IndexBatch(ctx, extracted, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seqTotal != batTotal {
		t.Fatalf("chunk counts differ: %d vs %d", seqTotal, batTotal)
	}
	// Every chunk must exist in both with identical fields.
	for _, d := range corpus.Docs {
		a, okA := seqIdx.DocByID(d.ID + "#0")
		b, okB := batchIdx.DocByID(d.ID + "#0")
		if !okA || !okB {
			t.Fatalf("doc %s missing: seq=%v batch=%v", d.ID, okA, okB)
		}
		for f, v := range a.Fields {
			if b.Fields[f] != v {
				t.Fatalf("doc %s field %s differs", d.ID, f)
			}
		}
	}
	// Search results must match.
	q := corpus.Docs[0].Title
	ha := seqIdx.SearchText(q, 5, index.TextOptions{})
	hb := batchIdx.SearchText(q, 5, index.TextOptions{})
	if len(ha) != len(hb) {
		t.Fatalf("results differ: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].ID != hb[i].ID {
			t.Fatalf("hit %d differs: %s vs %s", i, ha[i].ID, hb[i].ID)
		}
	}
}

// TestIndexBatchHandlesDeletes: deletion messages in a batch tombstone.
func TestIndexBatchHandlesDeletes(t *testing.T) {
	in, ix := testSetup(Config{})
	ctx := context.Background()
	if _, err := in.IndexBatch(ctx, []ingest.Extracted{extractedPage("kbx", page)}, 2); err != nil {
		t.Fatal(err)
	}
	if !ix.HasParent("kbx") {
		t.Fatal("batch add failed")
	}
	if _, err := in.IndexBatch(ctx, []ingest.Extracted{{ID: "kbx", Deleted: true}}, 2); err != nil {
		t.Fatal(err)
	}
	if ix.HasParent("kbx") {
		t.Fatal("batch delete failed")
	}
}
