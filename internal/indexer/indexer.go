// Package indexer implements UniAsk's indexing service (§3): it consumes
// documents posted by the ingester, splits them into chunks with the
// HTML-paragraph strategy, populates chunk metadata (including the
// LLM-generated summary and keyword list the paper adds), computes the
// title and content embeddings, and feeds the search index.
package indexer

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"uniask/internal/chunker"
	"uniask/internal/embedding"
	"uniask/internal/index"
	"uniask/internal/ingest"
	"uniask/internal/llm"
	"uniask/internal/queue"
	"uniask/internal/vector"
)

// Config controls indexing behavior.
type Config struct {
	// ChunkTokens is the chunk-size target (default 512, as deployed).
	ChunkTokens int
	// EnrichSummary asks the LLM for a document summary stored in the
	// retrievable summary field.
	EnrichSummary bool
	// KeywordsFromTitle populates the kwTitle searchable field with LLM
	// keywords extracted from the title (HSS-KT, Table 4).
	KeywordsFromTitle bool
	// KeywordsFromTitleContent populates the kwTitleContent field with LLM
	// keywords from title and content (HSS-KTC, Table 4).
	KeywordsFromTitleContent bool
}

// Indexer turns extracted documents into index chunks.
type Indexer struct {
	cfg      Config
	index    index.Writer
	embedder embedding.Embedder
	client   llm.Client
	splitter *chunker.HTMLSplitter
}

// Schema returns the index schema the indexer writes, extending the default
// UniAsk schema with the optional keyword-enrichment searchable fields.
func Schema() index.Schema {
	s := index.DefaultSchema()
	s["kwTitle"] = index.FieldAttr{Searchable: true}
	s["kwTitleContent"] = index.FieldAttr{Searchable: true}
	return s
}

// New creates an indexer feeding ix — a monolithic *index.Index or the
// sharded facade; the indexer only needs the write surface.
func New(ix index.Writer, emb embedding.Embedder, client llm.Client, cfg Config) *Indexer {
	if cfg.ChunkTokens <= 0 {
		cfg.ChunkTokens = chunker.DefaultChunkTokens
	}
	return &Indexer{
		cfg:      cfg,
		index:    ix,
		embedder: emb,
		client:   client,
		splitter: &chunker.HTMLSplitter{TargetTokens: cfg.ChunkTokens},
	}
}

// IndexDocument chunks and indexes one extracted document. A deletion
// message tombstones the document's chunks; a re-ingested (modified)
// document replaces its previous chunks. It returns the number of chunks
// added.
func (in *Indexer) IndexDocument(ctx context.Context, doc ingest.Extracted) (int, error) {
	if doc.Deleted {
		in.index.DeleteParent(doc.ID)
		return 0, nil
	}
	if in.index.HasParent(doc.ID) {
		// Modified page: drop the stale chunks before indexing the new ones.
		in.index.DeleteParent(doc.ID)
	}
	chunks := in.splitter.SplitDocument(doc.Doc)
	if len(chunks) == 0 {
		return 0, nil
	}

	summary := ""
	if in.cfg.EnrichSummary {
		resp, err := in.client.Complete(ctx, llm.BuildSummaryPrompt(doc.Title, doc.Doc.Text()))
		if err != nil {
			return 0, fmt.Errorf("indexer: summary for %s: %w", doc.ID, err)
		}
		summary = resp.Content
	}
	kwTitle := ""
	if in.cfg.KeywordsFromTitle {
		resp, err := in.client.Complete(ctx, llm.BuildKeywordsPrompt(doc.Title, ""))
		if err != nil {
			return 0, fmt.Errorf("indexer: title keywords for %s: %w", doc.ID, err)
		}
		kwTitle = resp.Content
	}

	titleVec := in.embedder.Embed(doc.Title)
	added := 0
	for _, ch := range chunks {
		kwTC := ""
		if in.cfg.KeywordsFromTitleContent {
			resp, err := in.client.Complete(ctx, llm.BuildKeywordsPrompt(doc.Title, ch.Text))
			if err != nil {
				return added, fmt.Errorf("indexer: content keywords for %s: %w", doc.ID, err)
			}
			kwTC = resp.Content
		}
		fields := map[string]string{
			"title":   doc.Title,
			"content": ch.Text,
			"domain":  doc.Domain,
			"section": doc.Section,
			"topic":   doc.Topic,
		}
		if summary != "" {
			fields["summary"] = summary
		}
		if kwTitle != "" {
			fields["kwTitle"] = kwTitle
		}
		if kwTC != "" {
			fields["kwTitleContent"] = kwTC
		}
		err := in.index.Add(index.Document{
			ID:       chunkID(doc.ID, ch.Ordinal),
			ParentID: doc.ID,
			Fields:   fields,
			Vectors: map[string]vector.Vector{
				"titleVector":   titleVec,
				"contentVector": in.embedder.Embed(ch.Text),
			},
		})
		if err != nil {
			return added, fmt.Errorf("indexer: add %s: %w", doc.ID, err)
		}
		added++
	}
	return added, nil
}

// chunkID derives the chunk identifier from the parent document id.
func chunkID(docID string, ordinal int) string {
	return fmt.Sprintf("%s#%d", docID, ordinal)
}

// ParentOf recovers the KB document id from a chunk id.
func ParentOf(chunkID string) string {
	if i := strings.LastIndexByte(chunkID, '#'); i >= 0 {
		return chunkID[:i]
	}
	return chunkID
}

// Run consumes the ingestion queue until it is closed and drained or ctx is
// cancelled. It returns the total number of chunks indexed.
func (in *Indexer) Run(ctx context.Context, q *queue.Queue[ingest.Extracted]) (int, error) {
	total := 0
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		doc, ok := q.Dequeue()
		if !ok {
			return total, nil
		}
		n, err := in.IndexDocument(ctx, doc)
		if err != nil {
			return total, err
		}
		total += n
	}
}

// batchItem carries one document's precomputed artifacts from the parallel
// preparation stage to the sequential index feed.
type batchItem struct {
	doc     ingest.Extracted
	chunks  []chunker.Chunk
	summary string
	kwTitle string
	kwTC    []string
	titleV  vector.Vector
	chunkV  []vector.Vector
	err     error
}

// IndexBatch indexes many documents, running the CPU-heavy per-document
// work — chunking, LLM enrichment, embedding — on parallel workers while
// feeding the index in document order. It returns the total number of
// chunks added. Bulk loads of the 59k-document corpus are several times
// faster than the one-at-a-time path.
//
// Runs of pure additions (no deletions, no replacements of already-indexed
// parents) feed the index through AddBulk, which a sharded index turns into
// a parallel per-shard build; items that delete or replace fall back to the
// sequential path so replacement semantics stay exact. Either way the
// per-index insertion order is identical to a one-at-a-time loop, so
// insertion-order-sensitive structures (the HNSW graphs) are deterministic.
func (in *Indexer) IndexBatch(ctx context.Context, docs []ingest.Extracted, workers int) (int, error) {
	if workers <= 0 {
		workers = 4
	}
	jobs := make(chan int)
	items := make([]batchItem, len(docs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				items[i] = in.prepare(ctx, docs[i])
			}
		}()
	}
	for i := range docs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	total := 0
	var pending []index.Document
	pendingParents := make(map[string]bool)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := in.index.AddBulk(pending); err != nil {
			return err
		}
		total += len(pending)
		pending = nil
		pendingParents = make(map[string]bool)
		return nil
	}
	for i := range items {
		it := &items[i]
		if it.err != nil {
			if err := flush(); err != nil {
				return total, err
			}
			return total, it.err
		}
		// Deletions, replacements of indexed parents, and replacements of
		// parents still sitting in the pending bulk all need the sequential
		// delete-then-add path.
		if it.doc.Deleted || pendingParents[it.doc.ID] || in.index.HasParent(it.doc.ID) {
			if err := flush(); err != nil {
				return total, err
			}
			n, err := in.feed(it)
			if err != nil {
				return total, err
			}
			total += n
			continue
		}
		pending = append(pending, in.chunkDocs(it)...)
		pendingParents[it.doc.ID] = true
	}
	return total, flush()
}

// prepare runs the parallelizable stage for one document.
func (in *Indexer) prepare(ctx context.Context, doc ingest.Extracted) batchItem {
	it := batchItem{doc: doc}
	if doc.Deleted {
		return it
	}
	it.chunks = in.splitter.SplitDocument(doc.Doc)
	if len(it.chunks) == 0 {
		return it
	}
	if in.cfg.EnrichSummary {
		resp, err := in.client.Complete(ctx, llm.BuildSummaryPrompt(doc.Title, doc.Doc.Text()))
		if err != nil {
			it.err = fmt.Errorf("indexer: summary for %s: %w", doc.ID, err)
			return it
		}
		it.summary = resp.Content
	}
	if in.cfg.KeywordsFromTitle {
		resp, err := in.client.Complete(ctx, llm.BuildKeywordsPrompt(doc.Title, ""))
		if err != nil {
			it.err = fmt.Errorf("indexer: title keywords for %s: %w", doc.ID, err)
			return it
		}
		it.kwTitle = resp.Content
	}
	it.titleV = in.embedder.Embed(doc.Title)
	it.chunkV = make([]vector.Vector, len(it.chunks))
	it.kwTC = make([]string, len(it.chunks))
	for i, ch := range it.chunks {
		it.chunkV[i] = in.embedder.Embed(ch.Text)
		if in.cfg.KeywordsFromTitleContent {
			resp, err := in.client.Complete(ctx, llm.BuildKeywordsPrompt(doc.Title, ch.Text))
			if err != nil {
				it.err = fmt.Errorf("indexer: content keywords for %s: %w", doc.ID, err)
				return it
			}
			it.kwTC[i] = resp.Content
		}
	}
	return it
}

// feed applies one prepared document to the index (single-threaded).
func (in *Indexer) feed(it *batchItem) (int, error) {
	if it.doc.Deleted {
		in.index.DeleteParent(it.doc.ID)
		return 0, nil
	}
	if in.index.HasParent(it.doc.ID) {
		in.index.DeleteParent(it.doc.ID)
	}
	added := 0
	for _, d := range in.chunkDocs(it) {
		if err := in.index.Add(d); err != nil {
			return added, fmt.Errorf("indexer: add %s: %w", it.doc.ID, err)
		}
		added++
	}
	return added, nil
}

// chunkDocs builds the index documents of one prepared item.
func (in *Indexer) chunkDocs(it *batchItem) []index.Document {
	out := make([]index.Document, 0, len(it.chunks))
	for i, ch := range it.chunks {
		fields := map[string]string{
			"title":   it.doc.Title,
			"content": ch.Text,
			"domain":  it.doc.Domain,
			"section": it.doc.Section,
			"topic":   it.doc.Topic,
		}
		if it.summary != "" {
			fields["summary"] = it.summary
		}
		if it.kwTitle != "" {
			fields["kwTitle"] = it.kwTitle
		}
		if it.kwTC[i] != "" {
			fields["kwTitleContent"] = it.kwTC[i]
		}
		out = append(out, index.Document{
			ID:       chunkID(it.doc.ID, ch.Ordinal),
			ParentID: it.doc.ID,
			Fields:   fields,
			Vectors: map[string]vector.Vector{
				"titleVector":   it.titleV,
				"contentVector": it.chunkV[i],
			},
		})
	}
	return out
}
