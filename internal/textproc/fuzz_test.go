package textproc

// Native fuzz targets for the tokenizer and analyzer (run via
// `make fuzz-short`), plus the checked-in crasher corpus as permanent
// regression cases. The invariants fuzzed here are the contracts chunking
// and indexing rely on: token offsets address the input, positions are
// strictly increasing, token text matches its span, and analysis never
// panics on arbitrary UTF-8 or invalid bytes.

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// crashers holds inputs that broke (or nearly broke) earlier
// implementations; they are replayed by both the fuzz targets (as seed
// corpus) and the plain test below, so regressions fail even without -fuzz.
var crashers = []string{
	"",
	" ",
	"-",
	"...",
	"-_./",
	"a-",
	"-a",
	"a-b-",
	"ERR-4032",
	"PROC_118",
	"v2.3",
	"a..b",
	"à",
	"l'iban",
	"dell'IBAN",
	"\xff\xfe",         // invalid UTF-8
	"a\xffb",           // invalid byte inside a word
	"é\x80",            // truncated multi-byte rune
	"à̀",     // combining diacritics
	"𝒜𝓃𝒸𝒽",             // astral-plane letters
	"ᏣᎳᎩ",              // non-Latin letters
	"1/2.3-4_5",        // connector soup
	"card--number",     // doubled connector must split
	strings.Repeat("a-", 500) + "a", // long identifier chain
}

func checkTokens(t *testing.T, text string, tokens []Token) {
	t.Helper()
	lastPos := -1
	lastEnd := 0
	for _, tok := range tokens {
		if tok.Start < 0 || tok.End > len(text) || tok.Start >= tok.End {
			t.Fatalf("token %+v out of bounds for %q", tok, text)
		}
		if tok.Start < lastEnd {
			t.Fatalf("token %+v overlaps previous (end %d) in %q", tok, lastEnd, text)
		}
		lastEnd = tok.End
		if text[tok.Start:tok.End] != tok.Text {
			t.Fatalf("token text %q != span %q in %q", tok.Text, text[tok.Start:tok.End], text)
		}
		if tok.Position <= lastPos {
			t.Fatalf("positions not increasing: %d after %d in %q", tok.Position, lastPos, text)
		}
		lastPos = tok.Position
	}
}

func FuzzTokenize(f *testing.F) {
	for _, c := range crashers {
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text)
		checkTokens(t, text, tokens)
	})
}

func FuzzAnalyze(f *testing.F) {
	for _, c := range crashers {
		f.Add(c)
	}
	it := ItalianFull()
	en := EnglishFull()
	raw := Raw()
	f.Fuzz(func(t *testing.T, text string) {
		for _, a := range []*Analyzer{it, en, raw} {
			for _, tok := range a.Analyze(text) {
				if tok.Term == "" {
					t.Fatalf("analyzer emitted empty term for %q", text)
				}
				if !utf8.ValidString(tok.Term) && utf8.ValidString(text) {
					t.Fatalf("analyzer broke UTF-8: %q from %q", tok.Term, text)
				}
			}
			// AnalyzeTerms/AnalyzeUnique must agree with Analyze on term count.
			if got, want := len(a.AnalyzeTerms(text)), len(a.Analyze(text)); got != want {
				t.Fatalf("AnalyzeTerms len %d != Analyze len %d for %q", got, want, text)
			}
		}
	})
}

// TestCrasherCorpus replays the corpus through all entry points without
// -fuzz, so the regression protection runs on every plain `go test`.
func TestCrasherCorpus(t *testing.T) {
	it := ItalianFull()
	for _, c := range crashers {
		checkTokens(t, c, Tokenize(c))
		it.Analyze(c)
		it.AnalyzeUnique(c)
		SplitSentences(c)
	}
}
