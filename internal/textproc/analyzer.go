package textproc

// Analyzer composes the full analysis pipeline applied to both indexed
// fields and queries: tokenize -> strip elision -> lowercase -> fold
// diacritics -> drop stop words -> stem. Each stage can be disabled, which
// the baseline engine (internal/baseline) uses to reproduce the previous
// system's raw exact matching.
type Analyzer struct {
	// Language selects the stop-word list and stemmer (default Italian,
	// the paper's deployment language).
	Language Language
	// KeepStopwords disables stop-word removal.
	KeepStopwords bool
	// NoStem disables stemming.
	NoStem bool
	// UseSnowball selects the full Snowball stemmer instead of the light
	// stemmer (Italian only).
	UseSnowball bool
	// NoElision disables elision stripping.
	NoElision bool
	// NoFold disables diacritics folding.
	NoFold bool
}

// ItalianFull returns the analyzer configuration equivalent to Lucene's
// it-analyzer-lucene-full: all stages enabled.
func ItalianFull() *Analyzer { return &Analyzer{} }

// Raw returns an analyzer that only tokenizes and lower-cases, used by the
// previous-generation keyword engine.
func Raw() *Analyzer {
	return &Analyzer{KeepStopwords: true, NoStem: true, NoElision: true, NoFold: true}
}

// AnalyzedToken is a normalized term together with the source token it was
// derived from.
type AnalyzedToken struct {
	Term     string
	Source   Token
	Position int
}

// Analyze runs the pipeline over text and returns the surviving normalized
// tokens in order.
func (a *Analyzer) Analyze(text string) []AnalyzedToken {
	raw := Tokenize(text)
	out := make([]AnalyzedToken, 0, len(raw))
	pos := 0
	for _, tok := range raw {
		term, ok := a.normalizeTerm(tok.Text)
		if !ok {
			continue
		}
		out = append(out, AnalyzedToken{Term: term, Source: tok, Position: pos})
		pos++
	}
	return out
}

// normalizeTerm runs one token through strip-elision -> lowercase -> fold ->
// stop-word check -> stem; ok is false when the token is dropped.
func (a *Analyzer) normalizeTerm(term string) (_ string, ok bool) {
	if !a.NoElision {
		term = StripElision(term)
	}
	term = Lowercase(term)
	if !a.NoFold {
		term = FoldDiacritics(term)
	}
	if term == "" {
		return "", false
	}
	if !a.KeepStopwords && a.isStopword(term) {
		return "", false
	}
	if !a.NoStem {
		term = a.stem(term)
	}
	if term == "" {
		return "", false
	}
	return term, true
}

// isStopword dispatches on the analyzer language.
func (a *Analyzer) isStopword(term string) bool {
	if a.Language == English {
		return IsEnglishStopword(term)
	}
	return IsStopword(term)
}

// stem dispatches on the analyzer language and stemmer flavor.
func (a *Analyzer) stem(term string) string {
	if a.Language == English {
		return StemEnglish(term)
	}
	if a.UseSnowball {
		return StemItalianSnowball(term)
	}
	return StemItalian(term)
}

// AnalyzeTerms returns only the normalized term strings. It is the query
// hot path's entry point, so it skips the AnalyzedToken materialization
// Analyze performs.
func (a *Analyzer) AnalyzeTerms(text string) []string {
	raw := Tokenize(text)
	terms := make([]string, 0, len(raw))
	for _, tok := range raw {
		if term, ok := a.normalizeTerm(tok.Text); ok {
			terms = append(terms, term)
		}
	}
	return terms
}

// AnalyzeUnique returns the set of distinct normalized terms.
func (a *Analyzer) AnalyzeUnique(text string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, t := range a.Analyze(text) {
		set[t.Term] = struct{}{}
	}
	return set
}
