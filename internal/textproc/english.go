package textproc

// English support: the paper's knowledge base exists in multiple languages
// and §11 plans to adapt UniAsk beyond Italian. The analyzer is language-
// pluggable; this file provides the English stages (stop words and a light
// S/ed/ing stemmer in the spirit of Lucene's EnglishMinimalStemFilter),
// selected through Analyzer.Language.

// Language selects the analysis pipeline's language-specific stages.
type Language int

// Supported analyzer languages.
const (
	// Italian is the deployment language of the paper.
	Italian Language = iota
	// English is the first future-work language.
	English
)

var englishStopwords = map[string]struct{}{}

func init() {
	words := []string{
		"a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
		"if", "in", "into", "is", "it", "no", "not", "of", "on", "or",
		"such", "that", "the", "their", "then", "there", "these", "they",
		"this", "to", "was", "will", "with", "i", "you", "he", "she",
		"we", "his", "her", "its", "our", "your", "from", "have", "has",
		"had", "do", "does", "did", "can", "could", "should", "would",
		"may", "might", "must", "shall", "about", "after", "before",
		"between", "during", "each", "how", "what", "when", "where",
		"which", "who", "why", "all", "any", "both", "more", "most", "my",
		"other", "some", "than", "too", "very", "so", "also", "been",
		"being", "am", "were", "up", "down", "out", "over", "under",
	}
	for _, w := range words {
		englishStopwords[w] = struct{}{}
	}
}

// IsEnglishStopword reports whether the lower-cased term is an English stop
// word.
func IsEnglishStopword(term string) bool {
	_, ok := englishStopwords[term]
	return ok
}

// StemEnglish applies a light English stemmer: plural -s forms, -ed and
// -ing endings, mirroring minimal-stemming configurations used in
// enterprise search. Terms with digits are identifiers and pass through.
func StemEnglish(term string) string {
	if len(term) < 4 {
		return term
	}
	for _, r := range term {
		if r >= '0' && r <= '9' {
			return term
		}
	}
	t := term
	switch {
	case hasSuffix(t, "sses"):
		return t[:len(t)-2] // dresses -> dress
	case hasSuffix(t, "ies") && len(t) > 4:
		return t[:len(t)-3] + "y" // policies -> policy
	case hasSuffix(t, "ss"):
		return t
	case hasSuffix(t, "s") && !hasSuffix(t, "us") && !hasSuffix(t, "is"):
		return t[:len(t)-1] // accounts -> account
	}
	if hasSuffix(t, "ing") && len(t) > 5 {
		stem := t[:len(t)-3]
		return undouble(stem) // blocking -> block
	}
	if hasSuffix(t, "ed") && len(t) > 4 {
		stem := t[:len(t)-2]
		return undouble(stem) // blocked -> block
	}
	return t
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// undouble collapses a doubled final consonant left by -ed/-ing stripping
// (stopped -> stop) while keeping legitimate doubles like "fall".
func undouble(s string) string {
	n := len(s)
	if n >= 2 && s[n-1] == s[n-2] {
		switch s[n-1] {
		case 'l', 's', 'z':
			return s // calls, passes-type stems keep the double
		}
		return s[:n-1]
	}
	return s
}

// EnglishFull returns the analyzer configuration for English: all stages
// enabled with the English stop-word list and stemmer.
func EnglishFull() *Analyzer { return &Analyzer{Language: English} }
