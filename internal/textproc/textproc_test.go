package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Terms("Come posso bloccare la carta di credito?")
	want := []string{"Come", "posso", "bloccare", "la", "carta", "di", "credito"}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("Tokenize = %v, want %v", toks, want)
	}
}

func TestTokenizeKeepsCodes(t *testing.T) {
	cases := map[string][]string{
		"errore ERR-4032 in fase di bonifico": {"errore", "ERR-4032", "in", "fase", "di", "bonifico"},
		"procedura PROC_118 versione v2.3":    {"procedura", "PROC_118", "versione", "v2.3"},
		"percorso app/mobile attivo":          {"percorso", "app/mobile", "attivo"},
		"fine. ERR-1 inizio":                  {"fine", "ERR-1", "inizio"},
	}
	for in, want := range cases {
		if got := Terms(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Terms(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTokenizeTrailingConnectorDropped(t *testing.T) {
	got := Terms("fine- inizio .")
	want := []string{"fine", "inizio"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "città è bella"
	toks := Tokenize(text)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3", len(toks))
	}
	for _, tok := range toks {
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: text[%d:%d]=%q, token %q", tok.Start, tok.End, text[tok.Start:tok.End], tok.Text)
		}
	}
	if toks[2].Position != 2 {
		t.Errorf("position = %d, want 2", toks[2].Position)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := Tokenize(" ,;! "); len(got) != 0 {
		t.Fatalf("Tokenize(punct) = %v, want empty", got)
	}
}

func TestStripElision(t *testing.T) {
	cases := map[string]string{
		"l'ufficio":         "ufficio",
		"dell'operazione":   "operazione",
		"all'estero":        "estero",
		"un'applicazione":   "applicazione",
		"nell'area":         "area",
		"carta":             "carta",
		"l'":                "l'",
		"po'":               "po'", // not an elided article
		"quell'interfaccia": "interfaccia",
	}
	for in, want := range cases {
		if got := StripElision(in); got != want {
			t.Errorf("StripElision(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStripElisionUnicodeApostrophe(t *testing.T) {
	if got := StripElision("l’ufficio"); got != "ufficio" {
		t.Fatalf("StripElision(l’ufficio) = %q", got)
	}
}

func TestFoldDiacritics(t *testing.T) {
	if got := FoldDiacritics("perché città è lì"); got != "perche citta e li" {
		t.Fatalf("FoldDiacritics = %q", got)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"il", "la", "di", "che", "per", "sono", "è"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"bonifico", "carta", "errore", "mutuo"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
	if StopwordCount() < 200 {
		t.Errorf("stop-word list unexpectedly small: %d", StopwordCount())
	}
}

func TestStemItalianConflatesInflections(t *testing.T) {
	groups := [][]string{
		{"conto", "conti"},
		{"carta", "carte"},
		{"bonifico", "bonifici"},
		{"operazione", "operazioni"},
		{"bloccare", "bloccato", "bloccata", "bloccati"},
		{"pagamento", "pagamenti"},
		{"autorizzazione", "autorizzazioni"},
	}
	for _, g := range groups {
		base := StemItalian(g[0])
		for _, w := range g[1:] {
			if got := StemItalian(w); got != base {
				t.Errorf("StemItalian(%q) = %q, want %q (stem of %q)", w, got, base, g[0])
			}
		}
	}
}

func TestStemItalianPreservesCodes(t *testing.T) {
	for _, w := range []string{"err-4032", "proc118", "v2.3", "abi12345"} {
		if got := StemItalian(w); got != w {
			t.Errorf("StemItalian(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemItalianShortWords(t *testing.T) {
	for _, w := range []string{"re", "blu", "qui"} {
		if got := StemItalian(w); got != w {
			t.Errorf("StemItalian(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemItalianNeverEmpty(t *testing.T) {
	f := func(s string) bool {
		w := strings.ToLower(s)
		if w == "" {
			return true
		}
		return len(StemItalian(w)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzerFullPipeline(t *testing.T) {
	a := ItalianFull()
	terms := a.AnalyzeTerms("Come posso bloccare la carta di credito all'estero?")
	// Stopwords (come, posso, la, di) removed; elision stripped; stems applied.
	joined := strings.Join(terms, " ")
	for _, must := range []string{"blocca", "cart", "credi", "ester"} {
		if !strings.Contains(joined, must) {
			t.Errorf("analyzed terms %v missing stem %q", terms, must)
		}
	}
	for _, mustNot := range []string{"come", "posso", "la ", "di "} {
		if strings.Contains(joined+" ", mustNot+" ") && mustNot != "la" && mustNot != "di" {
			t.Errorf("analyzed terms %v contain stop word %q", terms, mustNot)
		}
	}
}

func TestAnalyzerRawKeepsEverything(t *testing.T) {
	a := Raw()
	terms := a.AnalyzeTerms("La Carta di Credito")
	want := []string{"la", "carta", "di", "credito"}
	if !reflect.DeepEqual(terms, want) {
		t.Fatalf("Raw().AnalyzeTerms = %v, want %v", terms, want)
	}
}

func TestAnalyzerPositionsContiguous(t *testing.T) {
	a := ItalianFull()
	toks := a.Analyze("il bonifico estero richiede la procedura di autorizzazione")
	for i, tok := range toks {
		if tok.Position != i {
			t.Fatalf("token %d has position %d", i, tok.Position)
		}
	}
}

func TestAnalyzeUnique(t *testing.T) {
	a := ItalianFull()
	set := a.AnalyzeUnique("bonifico bonifici bonifico")
	if len(set) != 1 {
		t.Fatalf("AnalyzeUnique = %v, want a single stem", set)
	}
}

func TestSplitSentencesBasic(t *testing.T) {
	ss := SentenceTexts("Prima frase. Seconda frase! Terza frase?")
	if len(ss) != 3 {
		t.Fatalf("got %d sentences: %v", len(ss), ss)
	}
}

func TestSplitSentencesAbbreviationsAndCodes(t *testing.T) {
	text := "Contattare il dott. Rossi per il codice v2.3 della procedura. Fine."
	ss := SentenceTexts(text)
	if len(ss) != 2 {
		t.Fatalf("got %d sentences: %v", len(ss), ss)
	}
	if !strings.Contains(ss[0], "v2.3") {
		t.Errorf("first sentence lost the code: %q", ss[0])
	}
}

func TestSplitSentencesNewlines(t *testing.T) {
	ss := SentenceTexts("riga uno\nriga due\n\nriga tre")
	if len(ss) != 3 {
		t.Fatalf("got %d sentences: %v", len(ss), ss)
	}
}

func TestSplitSentencesOffsets(t *testing.T) {
	text := "Alfa beta. Gamma delta."
	for _, s := range SplitSentences(text) {
		if text[s.Start:s.End] != s.Text {
			t.Errorf("offsets wrong: %q vs %q", text[s.Start:s.End], s.Text)
		}
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if got := SplitSentences("   "); len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

// Property: tokenization offsets always slice back to the token text.
func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: no analyzed term contains whitespace or is empty.
func TestAnalyzerTermShapeProperty(t *testing.T) {
	a := ItalianFull()
	f := func(s string) bool {
		for _, term := range a.AnalyzeTerms(s) {
			if term == "" {
				return false
			}
			for _, r := range term {
				if unicode.IsSpace(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStemEnglish(t *testing.T) {
	cases := map[string]string{
		"accounts": "account",
		"policies": "policy",
		"dresses":  "dress",
		"blocking": "block",
		"blocked":  "block",
		"stopped":  "stop",
		"calls":    "call",
		"access":   "access",
		"err-4032": "err-4032",
		"card":     "card",
		"analysis": "analysis",
	}
	for in, want := range cases {
		if got := StemEnglish(in); got != want {
			t.Errorf("StemEnglish(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEnglishAnalyzer(t *testing.T) {
	a := EnglishFull()
	terms := a.AnalyzeTerms("How do I block the credit cards for my account?")
	joined := strings.Join(terms, " ")
	for _, must := range []string{"block", "credit", "card", "account"} {
		if !strings.Contains(joined, must) {
			t.Errorf("terms %v missing %q", terms, must)
		}
	}
	for _, mustNot := range []string{"how", "the", "for", "my", "do"} {
		for _, term := range terms {
			if term == mustNot {
				t.Errorf("English stop word %q survived: %v", mustNot, terms)
			}
		}
	}
}

func TestEnglishStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "with", "should"} {
		if !IsEnglishStopword(w) {
			t.Errorf("IsEnglishStopword(%q) = false", w)
		}
	}
	if IsEnglishStopword("account") {
		t.Error("content word flagged as stop word")
	}
}

func TestLanguageSelectionIndependent(t *testing.T) {
	it := ItalianFull()
	en := EnglishFull()
	// "conti" is an Italian plural the Italian stemmer conflates with
	// "conto"; the English stemmer must not.
	itTerms := it.AnalyzeTerms("conti conto")
	if len(itTerms) != 2 || itTerms[0] != itTerms[1] {
		t.Errorf("Italian stemming broken: %v", itTerms)
	}
	enTerms := en.AnalyzeTerms("conti conto")
	if len(enTerms) != 2 || enTerms[0] == enTerms[1] {
		t.Errorf("English analyzer applied Italian stemming: %v", enTerms)
	}
}

func TestSnowballConflation(t *testing.T) {
	// Inflection families must share a stem; distinct families must not.
	groups := [][]string{
		{"abbandonata", "abbandonate", "abbandonati", "abbandonato", "abbandonare", "abbandonava"},
		{"pagamento", "pagamenti"},
		{"autorizzazione", "autorizzazioni"},
		{"bloccare", "bloccato", "bloccata"},
		{"operazione", "operazioni"},
	}
	stems := make([]string, len(groups))
	for gi, g := range groups {
		base := StemItalianSnowball(g[0])
		stems[gi] = base
		for _, w := range g[1:] {
			if got := StemItalianSnowball(w); got != base {
				t.Errorf("StemItalianSnowball(%q) = %q, want %q (family of %q)", w, got, base, g[0])
			}
		}
	}
	seen := map[string]int{}
	for gi, s := range stems {
		if prev, dup := seen[s]; dup {
			t.Errorf("families %d and %d conflated to %q", prev, gi, s)
		}
		seen[s] = gi
	}
}

func TestSnowballKnownStems(t *testing.T) {
	// Reference outputs of the published Snowball Italian algorithm.
	cases := map[string]string{
		"abbandonata": "abbandon",
		"pronto":      "pront",
		"propaganda":  "propagand",
	}
	for in, want := range cases {
		if got := StemItalianSnowball(in); got != want {
			t.Errorf("StemItalianSnowball(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSnowballPreservesIdentifiers(t *testing.T) {
	for _, w := range []string{"err-4032", "proc118", "ab1"} {
		if got := StemItalianSnowball(w); got != w {
			t.Errorf("StemItalianSnowball(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestSnowballNeverEmpty(t *testing.T) {
	f := func(s string) bool {
		w := strings.ToLower(strings.TrimSpace(s))
		if w == "" {
			return true
		}
		return len(StemItalianSnowball(w)) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzerSnowballOption(t *testing.T) {
	light := ItalianFull()
	snow := &Analyzer{UseSnowball: true}
	lt := light.AnalyzeTerms("autorizzazione del pagamento")
	st := snow.AnalyzeTerms("autorizzazione del pagamento")
	if len(lt) != len(st) {
		t.Fatalf("term counts differ: %v vs %v", lt, st)
	}
	// The snowball stems are at least as aggressive (never longer).
	for i := range lt {
		if len(st[i]) > len(lt[i]) {
			t.Errorf("snowball stem longer than light: %q vs %q", st[i], lt[i])
		}
	}
}
