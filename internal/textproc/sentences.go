package textproc

import (
	"strings"
	"unicode"
)

// Sentence is a sentence span within a text.
type Sentence struct {
	Text  string
	Start int // byte offset
	End   int // byte offset (exclusive)
}

// commonAbbreviations holds Italian abbreviations after which a period does
// not terminate a sentence.
var commonAbbreviations = map[string]struct{}{
	"sig": {}, "sigg": {}, "dott": {}, "ing": {}, "art": {}, "n": {},
	"pag": {}, "es": {}, "ecc": {}, "tel": {}, "rif": {}, "cod": {},
	"proc": {}, "dr": {}, "prof": {}, "geom": {}, "rag": {}, "vs": {},
	"ca": {}, "al": {}, "all": {},
}

// SplitSentences splits text into sentences on ., !, ? and newlines, with
// handling for Italian abbreviations, decimal numbers and identifier codes
// (a period inside "v2.3" or "ERR.4032" never splits).
func SplitSentences(text string) []Sentence {
	var out []Sentence
	start := 0
	i := 0
	flush := func(end int) {
		seg := strings.TrimSpace(text[start:end])
		if seg != "" {
			// Recompute trimmed offsets.
			lead := strings.Index(text[start:end], seg)
			out = append(out, Sentence{Text: seg, Start: start + lead, End: start + lead + len(seg)})
		}
		start = end
	}
	for i < len(text) {
		c := text[i]
		switch c {
		case '\n':
			// A blank line (paragraph break) always terminates a sentence.
			flush(i)
			start = i + 1
			i++
			continue
		case '!', '?':
			flush(i + 1)
			i++
			continue
		case '.':
			// Not a boundary if surrounded by alphanumerics (decimal or code).
			prevAlnum := i > 0 && isASCIIAlnum(text[i-1])
			nextAlnum := i+1 < len(text) && isASCIIAlnum(text[i+1])
			if prevAlnum && nextAlnum {
				i++
				continue
			}
			// Not a boundary after a known abbreviation.
			if prevAlnum {
				w := lastWord(text[:i])
				if _, ok := commonAbbreviations[strings.ToLower(w)]; ok {
					i++
					continue
				}
			}
			flush(i + 1)
			i++
			continue
		}
		i++
	}
	flush(len(text))
	return out
}

func isASCIIAlnum(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

// lastWord returns the trailing run of letters in s.
func lastWord(s string) string {
	end := len(s)
	i := end
	for i > 0 {
		r := rune(s[i-1])
		if r < 0x80 && !unicode.IsLetter(r) {
			break
		}
		i--
	}
	return s[i:end]
}

// SentenceTexts returns just the sentence strings.
func SentenceTexts(text string) []string {
	ss := SplitSentences(text)
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Text
	}
	return out
}
