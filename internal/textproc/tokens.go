package textproc

// ApproxTokens estimates the number of LLM (BPE) tokens in text. The paper
// sizes chunks in tokens of the text-embedding-ada-002 tokenizer; without
// the proprietary BPE vocabulary we use the standard approximation that one
// token covers about four characters of natural-language text, with a floor
// of one token per whitespace-separated word. The estimate is deterministic,
// monotone in text length, and accurate enough for chunk sizing and rate
// limiting.
func ApproxTokens(text string) int {
	tokens := 0
	wordLen := 0
	flush := func() {
		if wordLen == 0 {
			return
		}
		t := (wordLen + 3) / 4
		if t < 1 {
			t = 1
		}
		tokens += t
		wordLen = 0
	}
	for _, r := range text {
		if r == ' ' || r == '\n' || r == '\t' || r == '\r' {
			flush()
			continue
		}
		wordLen++
	}
	flush()
	return tokens
}
