package textproc

import "strings"

// StemItalian applies a light Italian stemmer in the spirit of Lucene's
// ItalianLightStemmer: it conflates plural/gender inflections and the most
// common verb endings without attempting the full Snowball algorithm. Light
// stemming is what enterprise search configurations typically use, because
// aggressive stemming over jargon-heavy corpora causes false conflations.
//
// The input is expected to be lower-cased. Terms containing digits are
// returned untouched: identifiers such as "err-4032" must never be stemmed.
func StemItalian(term string) string {
	if len(term) < 4 {
		return term
	}
	for _, r := range term {
		if r >= '0' && r <= '9' {
			return term
		}
	}
	t := FoldDiacritics(term)

	// Longest-match suffix stripping. Order matters: longer suffixes first.
	// Each rule carries a minimum remaining stem length so that short roots
	// are not destroyed.
	type rule struct {
		suffix  string
		minStem int
		replace string
	}
	rules := []rule{
		// Verb endings (infinitive, participle, gerund, common finite forms).
		{"azione", 3, "a"}, {"azioni", 3, "a"},
		{"uzione", 3, "u"}, {"uzioni", 3, "u"},
		{"amento", 3, "a"}, {"amenti", 3, "a"},
		{"imento", 3, "i"}, {"imenti", 3, "i"},
		{"abile", 3, "a"}, {"abili", 3, "a"},
		{"ibile", 3, "i"}, {"ibili", 3, "i"},
		{"mente", 3, ""},
		{"atore", 3, "a"}, {"atori", 3, "a"}, {"atrice", 3, "a"}, {"atrici", 3, "a"},
		{"ando", 3, "a"}, {"endo", 3, "e"},
		{"ato", 3, "a"}, {"ata", 3, "a"}, {"ati", 3, "a"}, {"ate", 3, "a"},
		{"uto", 3, "u"}, {"uta", 3, "u"}, {"uti", 3, "u"}, {"ute", 3, "u"},
		{"ito", 3, "i"}, {"ita", 3, "i"}, {"iti", 3, "i"}, {"ite", 3, "i"},
		{"are", 3, "a"}, {"ere", 3, "e"}, {"ire", 3, "i"},
		{"ità", 3, ""}, {"ita'", 3, ""},
		// Noun/adjective gender & number.
		{"ghi", 3, "go"}, {"ghe", 3, "ga"},
		{"chi", 3, "co"}, {"che", 3, "ca"},
	}
	for _, r := range rules {
		if strings.HasSuffix(t, r.suffix) && len(t)-len(r.suffix) >= r.minStem {
			return t[:len(t)-len(r.suffix)] + r.replace
		}
	}

	// Final vowel normalization: conti/conto/conta/conte -> cont, matching
	// the Lucene light stemmer's final step.
	last := t[len(t)-1]
	switch last {
	case 'o', 'a', 'i', 'e':
		if len(t)-1 >= 3 {
			t = t[:len(t)-1]
			// Collapse doubled-consonant + i plurals like "uffici" already
			// handled by vowel drop; also drop a residual trailing "i" from
			// "-ii".
			if len(t) >= 4 && t[len(t)-1] == 'i' {
				t = t[:len(t)-1]
			}
		}
	}
	return t
}
