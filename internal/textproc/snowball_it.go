package textproc

import "strings"

// StemItalianSnowball implements the Snowball (Porter-style) Italian
// stemming algorithm — the full stemmer behind Lucene's ItalianStemmer,
// which the it-analyzer-lucene-full configuration named in the paper can
// run in place of the light stemmer. The Analyzer exposes it through the
// UseSnowball flag; the light stemmer remains the default because
// aggressive stemming over jargon-heavy corpora causes false conflations
// (the trade-off enterprise deployments usually resolve the same way).
//
// The algorithm follows the published description: prelude (mark u/i
// between vowels), region computation (RV, R1, R2), attached-pronoun
// removal, standard suffix removal, verb suffix removal, and cleanup.
func StemItalianSnowball(word string) string {
	if len(word) < 3 {
		return word
	}
	for _, r := range word {
		if r >= '0' && r <= '9' {
			return word // identifiers pass through
		}
	}
	w := []rune(strings.ToLower(word))

	// Prelude: replace á é í ó ú with accented-grave forms, and mark u/i
	// between vowels as consonants (U/I).
	for i, r := range w {
		switch r {
		case 'á':
			w[i] = 'à'
		case 'é':
			w[i] = 'è'
		case 'í':
			w[i] = 'ì'
		case 'ó':
			w[i] = 'ò'
		case 'ú':
			w[i] = 'ù'
		}
	}
	for i := 1; i < len(w)-1; i++ {
		if isItVowel(w[i-1]) && isItVowel(w[i+1]) {
			if w[i] == 'u' {
				w[i] = 'U'
			} else if w[i] == 'i' {
				w[i] = 'I'
			}
		}
	}
	// "qu": the u after q is a consonant.
	for i := 1; i < len(w); i++ {
		if w[i-1] == 'q' && w[i] == 'u' {
			w[i] = 'U'
		}
	}

	rv := computeRV(w)
	r1 := computeR(w, 0)
	r2 := computeR(w, r1)

	s := string(w)

	// Step 0: attached pronouns, preceded by one of the verb endings
	// -ando/-endo (delete pronoun) or -ar/-er/-ir (replace with e).
	pronouns := []string{
		"gliela", "gliele", "glieli", "glielo", "gliene",
		"sene", "mela", "mele", "meli", "melo", "mene",
		"tela", "tele", "teli", "telo", "tene",
		"cela", "cele", "celi", "celo", "cene",
		"vela", "vele", "veli", "velo", "vene",
		"gli", "ci", "la", "le", "li", "lo", "mi", "ne", "si", "ti", "vi",
	}
	for _, p := range pronouns {
		if !strings.HasSuffix(s, p) {
			continue
		}
		base := s[:len(s)-len(p)]
		inRV := len(s)-len(p) >= rv
		if !inRV {
			break
		}
		if strings.HasSuffix(base, "ando") || strings.HasSuffix(base, "endo") {
			s = base
		} else if strings.HasSuffix(base, "ar") || strings.HasSuffix(base, "er") || strings.HasSuffix(base, "ir") {
			s = base + "e"
		} else {
			break
		}
		break
	}

	// Step 1: standard suffix removal.
	step1Applied := false
	// Ordered longest-match groups per the algorithm.
	del := func(sufs []string, region int) bool {
		for _, suf := range longestFirst(sufs) {
			if strings.HasSuffix(s, suf) && len(s)-len(suf) >= region {
				s = s[:len(s)-len(suf)]
				return true
			}
		}
		return false
	}
	// amente/imente (R1), with further trimming in R2.
	for _, suf := range []string{"amente", "imente"} {
		if strings.HasSuffix(s, suf) && len(s)-len(suf) >= r1 {
			s = s[:len(s)-len(suf)]
			step1Applied = true
			// if preceded by iv (R2), delete; then if at/os/ic (R2), delete
			if strings.HasSuffix(s, "iv") && len(s)-2 >= r2 {
				s = s[:len(s)-2]
				if strings.HasSuffix(s, "at") && len(s)-2 >= r2 {
					s = s[:len(s)-2]
				}
			} else {
				for _, t := range []string{"os", "ic", "abil"} {
					if strings.HasSuffix(s, t) && len(s)-len(t) >= r2 {
						s = s[:len(s)-len(t)]
						break
					}
				}
			}
			break
		}
	}
	if !step1Applied {
		switch {
		case del([]string{"amento", "amenti", "imento", "imenti"}, min2(rv, r2)):
			step1Applied = true
		case func() bool { // -mente in R2
			if strings.HasSuffix(s, "mente") && len(s)-5 >= r2 {
				s = s[:len(s)-5]
				return true
			}
			return false
		}():
			step1Applied = true
		case func() bool { // logia/logie -> log (R2)
			for _, suf := range []string{"logia", "logie"} {
				if strings.HasSuffix(s, suf) && len(s)-len(suf)+3 >= r2 {
					s = s[:len(s)-len(suf)+3]
					return true
				}
			}
			return false
		}():
			step1Applied = true
		case func() bool { // uzione/uzioni/usione/usioni -> u (R2)
			for _, suf := range []string{"uzione", "uzioni", "usione", "usioni"} {
				if strings.HasSuffix(s, suf) && len(s)-len(suf)+1 >= r2 {
					s = s[:len(s)-len(suf)+1]
					return true
				}
			}
			return false
		}():
			step1Applied = true
		case func() bool { // enza/enze -> ente (R2)
			for _, suf := range []string{"enza", "enze"} {
				if strings.HasSuffix(s, suf) && len(s)-len(suf) >= r2 {
					s = s[:len(s)-len(suf)] + "ente"
					return true
				}
			}
			return false
		}():
			step1Applied = true
		case func() bool { // ic/abil/iv + ità (R2)
			for _, suf := range []string{"ità"} {
				if strings.HasSuffix(s, suf) && len(s)-len(suf) >= r2 {
					s = s[:len(s)-len(suf)]
					for _, t := range []string{"abil", "ic", "iv"} {
						if strings.HasSuffix(s, t) && len(s)-len(t) >= r2 {
							s = s[:len(s)-len(t)]
							break
						}
					}
					return true
				}
			}
			return false
		}():
			step1Applied = true
		case func() bool { // ivo/ivi/iva/ive (R2), then at (R2), then ic (R2)
			for _, suf := range []string{"ivo", "ivi", "iva", "ive"} {
				if strings.HasSuffix(s, suf) && len(s)-len(suf) >= r2 {
					s = s[:len(s)-len(suf)]
					if strings.HasSuffix(s, "at") && len(s)-2 >= r2 {
						s = s[:len(s)-2]
						if strings.HasSuffix(s, "ic") && len(s)-2 >= r2 {
							s = s[:len(s)-2]
						}
					}
					return true
				}
			}
			return false
		}():
			step1Applied = true
		case del([]string{
			"atrice", "atrici", "abile", "abili", "ibile", "ibili", "mente",
			"anza", "anze", "iche", "ichi", "ismo", "ismi", "ista", "iste",
			"isti", "istà", "istè", "istì", "ante", "anti",
			"ico", "ici", "ica", "ice", "oso", "osi", "osa", "ose",
		}, r2):
			step1Applied = true
		case func() bool { // azione/azioni/atore/atori (R2, preceded by ic also removed)
			for _, suf := range []string{"azione", "azioni", "atore", "atori"} {
				if strings.HasSuffix(s, suf) && len(s)-len(suf) >= r2 {
					s = s[:len(s)-len(suf)]
					if strings.HasSuffix(s, "ic") && len(s)-2 >= r2 {
						s = s[:len(s)-2]
					}
					return true
				}
			}
			return false
		}():
			step1Applied = true
		}
	}

	// Step 2: verb suffixes (only if step 1 removed nothing), in RV.
	if !step1Applied {
		verbSuffixes := []string{
			"erebbero", "irebbero", "assero", "assimo", "eranno", "erebbe",
			"eremmo", "ereste", "eresti", "essero", "iranno", "irebbe",
			"iremmo", "ireste", "iresti", "iscano", "iscono", "issero",
			"arono", "avamo", "avano", "avate", "eremo", "erete", "erono",
			"evamo", "evano", "evate", "iremo", "irete", "irono", "ivamo",
			"ivano", "ivate", "ammo", "ando", "asse", "assi", "emmo",
			"enda", "ende", "endi", "endo", "erai", "erei", "yamo", "iamo",
			"immo", "irai", "irei", "isca", "isce", "isci", "isco", "ano",
			"are", "ata", "ate", "ati", "ato", "ava", "avi", "avo", "erà",
			"ere", "erò", "ete", "eva", "evi", "evo", "irà", "ire", "irò",
			"ita", "ite", "iti", "ito", "iva", "ivi", "ivo", "ono", "uta",
			"ute", "uti", "uto", "ar", "ir",
		}
		for _, suf := range longestFirst(verbSuffixes) {
			if strings.HasSuffix(s, suf) && len(s)-len(suf) >= rv {
				s = s[:len(s)-len(suf)]
				break
			}
		}
	}

	// Step 3a: delete a final a/e/i/o/à/è/ì/ò in RV, and a preceding i in RV.
	if len(s) > 0 {
		last := []rune(s)
		r := last[len(last)-1]
		if strings.ContainsRune("aeioàèìò", r) && len(string(last[:len(last)-1])) >= rv {
			s = string(last[:len(last)-1])
			if strings.HasSuffix(s, "i") && len(s)-1 >= rv {
				s = s[:len(s)-1]
			}
		}
	}
	// Step 3b: ch -> c, gh -> g (in RV).
	if (strings.HasSuffix(s, "ch") || strings.HasSuffix(s, "gh")) && len(s)-1 >= rv {
		s = s[:len(s)-1]
	}

	// Postlude: unmark U/I.
	s = strings.Map(func(r rune) rune {
		switch r {
		case 'U':
			return 'u'
		case 'I':
			return 'i'
		}
		return r
	}, s)
	return s
}

func isItVowel(r rune) bool {
	return strings.ContainsRune("aeiouàèìòù", r)
}

// computeRV finds the RV region start (byte offset) per the Snowball
// definition.
func computeRV(w []rune) int {
	n := len(w)
	byteAt := func(i int) int { return len(string(w[:i])) }
	if n < 2 {
		return byteAt(n)
	}
	if !isItVowel(w[1]) {
		// Second letter is a consonant: RV after the next vowel.
		for i := 2; i < n; i++ {
			if isItVowel(w[i]) {
				return byteAt(i + 1)
			}
		}
		return byteAt(n)
	}
	if isItVowel(w[0]) && isItVowel(w[1]) {
		// First two letters are vowels: RV after the next consonant.
		for i := 2; i < n; i++ {
			if !isItVowel(w[i]) {
				return byteAt(i + 1)
			}
		}
		return byteAt(n)
	}
	// Consonant-vowel start: RV after the third letter.
	if n >= 3 {
		return byteAt(3)
	}
	return byteAt(n)
}

// computeR finds R1 (from 0) or R2 (from r1): the region after the first
// consonant following a vowel, searching from the given byte offset.
func computeR(w []rune, fromByte int) int {
	// Convert byte offset to rune index.
	start := 0
	off := 0
	for i := range w {
		if off >= fromByte {
			start = i
			break
		}
		off += len(string(w[i]))
		start = i + 1
	}
	n := len(w)
	byteAt := func(i int) int { return len(string(w[:i])) }
	for i := start; i < n-1; i++ {
		if isItVowel(w[i]) && !isItVowel(w[i+1]) {
			return byteAt(i + 2)
		}
	}
	return byteAt(n)
}

// longestFirst returns suffixes sorted by descending length (stable).
func longestFirst(sufs []string) []string {
	out := make([]string, len(sufs))
	copy(out, sufs)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && len(out[j]) > len(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
