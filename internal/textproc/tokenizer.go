// Package textproc implements the text-analysis pipeline UniAsk uses for
// full-text search over Italian documents. It mirrors the stages of the
// Lucene Italian analyzer the paper relies on (it-analyzer-lucene-full):
// tokenization, elision removal, lower-casing, stop-word removal and light
// stemming, plus a sentence splitter used by chunking and answer generation.
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single lexical unit produced by the tokenizer, annotated with
// its byte offsets in the original text so callers can map analysis results
// back to source spans.
type Token struct {
	// Text is the token surface form (not normalized).
	Text string
	// Start and End are byte offsets of the token in the input.
	Start, End int
	// Position is the token's ordinal position in the token stream.
	Position int
}

// isTokenRune reports whether r can appear inside a token. Letters and
// digits always can; a small set of connector punctuation is admitted so
// domain codes such as "ERR-4032", "PROC_118" or "v2.3" survive as single
// tokens, matching how enterprise search engines index jargon identifiers.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isConnector reports whether r may join two token runs (it must be
// surrounded by token runes on both sides to be kept).
func isConnector(r rune) bool {
	switch r {
	case '-', '_', '.', '/':
		return true
	}
	return false
}

// Tokenize splits text into tokens. It is Unicode-aware and keeps
// identifier-style tokens (error codes, procedure codes, versions) intact
// when letters/digits are joined by -, _, . or /. Token texts are
// substrings of the input (no per-token copy), so they share its memory.
func Tokenize(text string) []Token {
	tokens := make([]Token, 0, len(text)/8+1)
	// Decode runes and their byte offsets by ranging over the string
	// itself: offsets stay anchored to the input even for invalid UTF-8,
	// where a bad byte decodes to the 3-byte replacement rune but occupies
	// a single byte in the source (re-encoding would overrun the text).
	runes := make([]rune, 0, len(text))
	byteOff := make([]int, 0, len(text)+1)
	for i, r := range text {
		byteOff = append(byteOff, i)
		runes = append(runes, r)
	}
	byteOff = append(byteOff, len(text))

	pos := 0
	i := 0
	for i < len(runes) {
		if !isTokenRune(runes[i]) {
			i++
			continue
		}
		start := i
		for i < len(runes) {
			if isTokenRune(runes[i]) {
				i++
				continue
			}
			// Admit a connector only if flanked by token runes.
			if isConnector(runes[i]) && i+1 < len(runes) && isTokenRune(runes[i+1]) {
				i += 2
				continue
			}
			break
		}
		tokens = append(tokens, Token{
			Text:     text[byteOff[start]:byteOff[i]],
			Start:    byteOff[start],
			End:      byteOff[i],
			Position: pos,
		})
		pos++
	}
	return tokens
}

// Terms is a convenience wrapper returning only the token surface forms.
func Terms(text string) []string {
	toks := Tokenize(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

// StripElision removes Italian elided articles and prepositions from the
// front of a token: "l'ufficio" -> "ufficio", "dell'operazione" ->
// "operazione". Lucene's Italian analyzer applies the same filter before
// stemming.
func StripElision(term string) string {
	idx := strings.IndexAny(term, "'’")
	if idx <= 0 || idx == len(term)-1 {
		return term
	}
	prefix := strings.ToLower(term[:idx])
	switch prefix {
	case "c", "l", "all", "dall", "dell", "nell", "sull", "coll", "pell",
		"gl", "agl", "dagl", "degl", "negl", "sugl", "un", "m", "t", "s", "v", "d", "quell", "quest", "sant", "senz", "tutt":
		rest := term[idx:]
		// Skip the apostrophe rune (ASCII ' is 1 byte, ’ is 3 bytes).
		if strings.HasPrefix(rest, "'") {
			return rest[1:]
		}
		return rest[len("’"):]
	}
	return term
}

// Lowercase normalizes a term to lower case, Unicode-aware.
func Lowercase(term string) string { return strings.ToLower(term) }

// FoldDiacritics maps common Italian accented vowels onto their base form,
// so "perché" and "perche" match. Enterprise queries are typed quickly and
// frequently omit accents. Pure-ASCII terms (the vast majority) are
// returned unchanged without allocating.
func FoldDiacritics(term string) string {
	ascii := true
	for i := 0; i < len(term); i++ {
		if term[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if ascii {
		return term
	}
	var b strings.Builder
	b.Grow(len(term))
	for _, r := range term {
		switch r {
		case 'à', 'á', 'â', 'ä':
			b.WriteRune('a')
		case 'è', 'é', 'ê', 'ë':
			b.WriteRune('e')
		case 'ì', 'í', 'î', 'ï':
			b.WriteRune('i')
		case 'ò', 'ó', 'ô', 'ö':
			b.WriteRune('o')
		case 'ù', 'ú', 'û', 'ü':
			b.WriteRune('u')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
