package textproc

// italianStopwords is the Italian stop-word list used by the analyzer. It
// follows the Snowball/Lucene Italian list, which is what the
// it-analyzer-lucene-full analyzer named in the paper applies.
var italianStopwords = map[string]struct{}{}

func init() {
	words := []string{
		"ad", "al", "allo", "ai", "agli", "all", "agl", "alla", "alle",
		"con", "col", "coi", "da", "dal", "dallo", "dai", "dagli", "dall",
		"dagl", "dalla", "dalle", "di", "del", "dello", "dei", "degli",
		"dell", "degl", "della", "delle", "in", "nel", "nello", "nei",
		"negli", "nell", "negl", "nella", "nelle", "su", "sul", "sullo",
		"sui", "sugli", "sull", "sugl", "sulla", "sulle", "per", "tra",
		"contro", "io", "tu", "lui", "lei", "noi", "voi", "loro", "mio",
		"mia", "miei", "mie", "tuo", "tua", "tuoi", "tue", "suo", "sua",
		"suoi", "sue", "nostro", "nostra", "nostri", "nostre", "vostro",
		"vostra", "vostri", "vostre", "mi", "ti", "ci", "vi", "lo", "la",
		"li", "le", "gli", "ne", "il", "un", "uno", "una", "ma", "ed",
		"se", "perche", "perché", "anche", "come", "dov", "dove", "che",
		"chi", "cui", "non", "piu", "più", "quale", "quanto", "quanti",
		"quanta", "quante", "quello", "quelli", "quella", "quelle",
		"questo", "questi", "questa", "queste", "si", "tutto", "tutti",
		"a", "c", "e", "i", "l", "o", "ho", "hai", "ha", "abbiamo",
		"avete", "hanno", "abbia", "abbiate", "abbiano", "avro", "avrò",
		"avrai", "avra", "avrà", "avremo", "avrete", "avranno", "avrei",
		"avresti", "avrebbe", "avremmo", "avreste", "avrebbero", "avevo",
		"avevi", "aveva", "avevamo", "avevate", "avevano", "ebbi",
		"avesti", "ebbe", "avemmo", "aveste", "ebbero", "avessi",
		"avesse", "avessimo", "avessero", "avendo", "avuto", "avuta",
		"avuti", "avute", "sono", "sei", "siamo", "siete", "sia",
		"siate", "siano", "saro", "sarò", "sarai", "sara", "sarà",
		"saremo", "sarete", "saranno", "sarei", "saresti", "sarebbe",
		"saremmo", "sareste", "sarebbero", "ero", "eri", "era",
		"eravamo", "eravate", "erano", "fui", "fosti", "fu", "fummo",
		"foste", "furono", "fossi", "fosse", "fossimo", "fossero",
		"essendo", "faccio", "fai", "facciamo", "fanno", "faccia",
		"facciate", "facciano", "faro", "farò", "farai", "fara", "farà",
		"faremo", "farete", "faranno", "farei", "faresti", "farebbe",
		"faremmo", "fareste", "farebbero", "facevo", "facevi", "faceva",
		"facevamo", "facevate", "facevano", "feci", "facesti", "fece",
		"facemmo", "faceste", "fecero", "facessi", "facesse",
		"facessimo", "facessero", "facendo", "sto", "stai", "sta",
		"stiamo", "stanno", "stia", "stiate", "stiano", "staro", "starò",
		"starai", "stara", "starà", "staremo", "starete", "staranno",
		"starei", "staresti", "starebbe", "staremmo", "stareste",
		"starebbero", "stavo", "stavi", "stava", "stavamo", "stavate",
		"stavano", "stetti", "stesti", "stette", "stemmo", "steste",
		"stettero", "stessi", "stesse", "stessimo", "stessero", "stando",
		"è", "e'", "era'", "già", "gia", "fa", "poi", "qui", "qua",
		"quando", "cosa", "cosi", "così", "deve", "devo", "devi",
		"dobbiamo", "dovete", "devono", "puo", "può", "posso", "puoi",
		"possiamo", "potete", "possono", "essere", "fare", "ogni",
		"senza", "sopra", "sotto", "dopo", "prima", "durante",
	}
	for _, w := range words {
		italianStopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (already lower-cased) term is an Italian
// stop word.
func IsStopword(term string) bool {
	_, ok := italianStopwords[term]
	return ok
}

// StopwordCount returns the size of the stop-word list (useful for tests
// and diagnostics).
func StopwordCount() int { return len(italianStopwords) }
