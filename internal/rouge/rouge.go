// Package rouge implements the ROUGE family of summary-evaluation metrics
// (Lin, 2004). UniAsk's primary guardrail scores a generated answer against
// each retrieved context chunk with ROUGE-L and blocks the answer when the
// best score falls below a threshold (0.15 in the deployment).
package rouge

import (
	"strings"
	"unicode"
)

// Score holds precision, recall and F-measure for one ROUGE computation.
type Score struct {
	Precision float64
	Recall    float64
	F1        float64
}

// tokenize lower-cases and splits on non-alphanumeric runes. ROUGE operates
// on raw word overlap; no stemming or stop-word removal is applied, matching
// the reference implementation.
func tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// lcsLength computes the length of the longest common subsequence of a and
// b using the standard two-row dynamic program (O(len(a)·len(b)) time,
// O(min) space).
func lcsLength(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// L computes ROUGE-L between a candidate text and a reference text.
func L(candidate, reference string) Score {
	c := tokenize(candidate)
	r := tokenize(reference)
	if len(c) == 0 || len(r) == 0 {
		return Score{}
	}
	lcs := float64(lcsLength(c, r))
	p := lcs / float64(len(c))
	rec := lcs / float64(len(r))
	return Score{Precision: p, Recall: rec, F1: f1(p, rec)}
}

// N computes ROUGE-N (n-gram overlap) between candidate and reference.
func N(n int, candidate, reference string) Score {
	if n < 1 {
		n = 1
	}
	c := ngrams(tokenize(candidate), n)
	r := ngrams(tokenize(reference), n)
	if len(c) == 0 || len(r) == 0 {
		return Score{}
	}
	refCounts := make(map[string]int, len(r))
	for _, g := range r {
		refCounts[g]++
	}
	match := 0
	for _, g := range c {
		if refCounts[g] > 0 {
			refCounts[g]--
			match++
		}
	}
	p := float64(match) / float64(len(c))
	rec := float64(match) / float64(len(r))
	return Score{Precision: p, Recall: rec, F1: f1(p, rec)}
}

func ngrams(tokens []string, n int) []string {
	if len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], " "))
	}
	return out
}

func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MaxLAgainst returns the highest ROUGE-L F1 of candidate against any of
// the references — the guardrail's aggregation: the answer is compared to
// every retrieved chunk and the maximum similarity is kept.
func MaxLAgainst(candidate string, references []string) float64 {
	best := 0.0
	for _, ref := range references {
		if s := L(candidate, ref).F1; s > best {
			best = s
		}
	}
	return best
}
