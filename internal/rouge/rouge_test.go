package rouge

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIdenticalTexts(t *testing.T) {
	s := L("la carta va bloccata subito", "la carta va bloccata subito")
	if !almost(s.Precision, 1) || !almost(s.Recall, 1) || !almost(s.F1, 1) {
		t.Fatalf("identical texts: %+v", s)
	}
}

func TestDisjointTexts(t *testing.T) {
	s := L("alfa beta gamma", "uno due tre")
	if s.F1 != 0 {
		t.Fatalf("disjoint texts: %+v", s)
	}
}

func TestEmptyTexts(t *testing.T) {
	if s := L("", "qualcosa"); s.F1 != 0 {
		t.Fatalf("empty candidate: %+v", s)
	}
	if s := L("qualcosa", ""); s.F1 != 0 {
		t.Fatalf("empty reference: %+v", s)
	}
	if s := L("", ""); s.F1 != 0 {
		t.Fatalf("both empty: %+v", s)
	}
}

func TestKnownLCS(t *testing.T) {
	// candidate: "a b c d", reference: "a c d e" -> LCS = a c d = 3.
	s := L("a b c d", "a c d e")
	if !almost(s.Precision, 3.0/4) || !almost(s.Recall, 3.0/4) {
		t.Fatalf("known LCS: %+v", s)
	}
}

func TestCaseAndPunctuationInsensitive(t *testing.T) {
	a := L("La Carta, va bloccata!", "la carta va bloccata")
	if !almost(a.F1, 1) {
		t.Fatalf("case/punct: %+v", a)
	}
}

func TestSubsequenceNotSubstring(t *testing.T) {
	// LCS respects order but allows gaps.
	s := L("bloccare subito la carta", "bloccare immediatamente la carta di credito")
	// LCS = "bloccare la carta" = 3; |c| = 4, |r| = 6.
	if !almost(s.Precision, 3.0/4) || !almost(s.Recall, 3.0/6) {
		t.Fatalf("gap LCS: %+v", s)
	}
}

func TestOrderMatters(t *testing.T) {
	s := L("carta la bloccare", "bloccare la carta")
	// LCS of reversed trigram is 1 ("la" pivot allows ["carta"]? compute:
	// [carta la bloccare] vs [bloccare la carta] -> LCS length 1 ("la") or
	// single word matches; must be < 3.
	if s.F1 >= 0.99 {
		t.Fatalf("order ignored: %+v", s)
	}
}

func TestRougeN(t *testing.T) {
	s := N(2, "la carta va bloccata", "la carta va sostituita")
	// candidate bigrams: {la carta, carta va, va bloccata};
	// reference: {la carta, carta va, va sostituita}; match = 2.
	if !almost(s.Precision, 2.0/3) || !almost(s.Recall, 2.0/3) {
		t.Fatalf("ROUGE-2: %+v", s)
	}
}

func TestRougeNClipping(t *testing.T) {
	// Repeated candidate n-grams must not double count.
	s := N(1, "banca banca banca", "banca istituto")
	if !almost(s.Precision, 1.0/3) || !almost(s.Recall, 1.0/2) {
		t.Fatalf("clipping: %+v", s)
	}
}

func TestMaxLAgainst(t *testing.T) {
	refs := []string{
		"documento completamente diverso su mutui",
		"la carta va bloccata chiamando il numero verde",
	}
	got := MaxLAgainst("la carta va bloccata subito", refs)
	want := L("la carta va bloccata subito", refs[1]).F1
	if !almost(got, want) {
		t.Fatalf("MaxLAgainst = %v, want %v", got, want)
	}
	if MaxLAgainst("x", nil) != 0 {
		t.Fatal("MaxLAgainst with no refs should be 0")
	}
}

// Property: F1 is within [0,1] and symmetric under swapping for L (since
// precision/recall swap).
func TestRougeLBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := L(a, b)
		if s.F1 < 0 || s.F1 > 1 || s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 {
			return false
		}
		sw := L(b, a)
		return almost(s.F1, sw.F1) && almost(s.Precision, sw.Recall) && almost(s.Recall, sw.Precision)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a text always achieves F1 = 1 against itself (when non-empty).
func TestRougeLReflexive(t *testing.T) {
	f := func(words []string) bool {
		text := strings.Join(words, " ")
		if len(tokenize(text)) == 0 {
			return true
		}
		return almost(L(text, text).F1, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRougeL(b *testing.B) {
	cand := strings.Repeat("la procedura di blocco della carta prevede la chiamata al numero verde ", 8)
	ref := strings.Repeat("per bloccare la carta di credito occorre chiamare il servizio clienti dedicato ", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		L(cand, ref)
	}
}
