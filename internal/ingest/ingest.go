// Package ingest implements UniAsk's ingestion service (§3): it extracts
// text and metadata from each HTML document in the knowledge base and keeps
// the downstream index updated by polling for modifications every 15
// minutes (a cron-triggered serverless function in the deployment; a
// clock-driven loop here). New or changed pages are posted to the message
// queue consumed by the indexing service.
package ingest

import (
	"context"
	"hash/fnv"
	"time"

	"uniask/internal/htmlx"
	"uniask/internal/queue"
	"uniask/internal/vclock"
)

// Page is one raw knowledge-base page as served by the source system.
type Page struct {
	// ID is the KB document id.
	ID string
	// HTML is the raw page markup.
	HTML string
}

// Source is the knowledge-base backend the ingester polls.
type Source interface {
	// Pages returns the current full listing of pages.
	Pages() []Page
}

// Extracted is the ingestion output for one page: the parsed document plus
// the editor-provided metadata, ready for chunking and indexing.
type Extracted struct {
	// ID is the KB document id.
	ID string
	// Title is the extracted page title.
	Title string
	// Doc is the structured extraction (paragraphs with offsets).
	Doc htmlx.Document
	// Domain, Section and Topic are the KB editor tags from <meta>.
	Domain, Section, Topic string
	// Deleted marks a page that disappeared from the source.
	Deleted bool
}

// DefaultPollInterval is the paper's 15-minute modification polling period.
const DefaultPollInterval = 15 * time.Minute

// Ingester polls a Source and publishes changed documents.
type Ingester struct {
	// Source is the KB backend.
	Source Source
	// Out receives one message per new/changed/deleted page.
	Out *queue.Queue[Extracted]
	// Clock drives polling (virtual in tests). Defaults to the real clock.
	Clock vclock.Clock
	// PollInterval defaults to DefaultPollInterval.
	PollInterval time.Duration

	hashes map[string]uint64
}

// hashPage fingerprints page content for change detection.
func hashPage(html string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(html))
	return h.Sum64()
}

// extract parses one page into an Extracted message.
func extract(p Page) Extracted {
	doc := htmlx.Extract(p.HTML)
	return Extracted{
		ID:      p.ID,
		Title:   doc.Title,
		Doc:     doc,
		Domain:  doc.Meta["domain"],
		Section: doc.Meta["section"],
		Topic:   doc.Meta["topic"],
	}
}

// SyncOnce performs one polling pass: new and modified pages are extracted
// and published; vanished pages are published as deletions. It returns the
// number of messages published.
func (ing *Ingester) SyncOnce() (int, error) {
	if ing.hashes == nil {
		ing.hashes = make(map[string]uint64)
	}
	published := 0
	current := make(map[string]bool)
	for _, p := range ing.Source.Pages() {
		current[p.ID] = true
		h := hashPage(p.HTML)
		if prev, seen := ing.hashes[p.ID]; seen && prev == h {
			continue
		}
		ing.hashes[p.ID] = h
		if err := ing.Out.Publish(extract(p)); err != nil {
			return published, err
		}
		published++
	}
	for id := range ing.hashes {
		if !current[id] {
			delete(ing.hashes, id)
			if err := ing.Out.Publish(Extracted{ID: id, Deleted: true}); err != nil {
				return published, err
			}
			published++
		}
	}
	return published, nil
}

// Run polls until ctx is cancelled. The first pass runs immediately; later
// passes run every PollInterval on the configured clock.
func (ing *Ingester) Run(ctx context.Context) error {
	clock := ing.Clock
	if clock == nil {
		clock = vclock.Real{}
	}
	interval := ing.PollInterval
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	for {
		if _, err := ing.SyncOnce(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clock.After(interval):
		}
	}
}

// StaticSource is a Source over a fixed page set (tests, batch loads).
type StaticSource []Page

// Pages implements Source.
func (s StaticSource) Pages() []Page { return s }
