package ingest

import (
	"context"
	"testing"
	"time"

	"uniask/internal/queue"
	"uniask/internal/vclock"
)

const pageA = `<html><head><title>Pagina A</title><meta name="domain" content="prodotti"><meta name="section" content="carte"><meta name="topic" content="t1"></head><body><h1>Pagina A</h1><p>Contenuto A.</p></body></html>`
const pageB = `<html><head><title>Pagina B</title></head><body><p>Contenuto B.</p></body></html>`

// mutableSource lets tests change the page set between polls.
type mutableSource struct{ pages []Page }

func (m *mutableSource) Pages() []Page { return m.pages }

func TestSyncOnceExtractsAll(t *testing.T) {
	q := queue.New[Extracted]()
	ing := &Ingester{Source: StaticSource{{ID: "a", HTML: pageA}, {ID: "b", HTML: pageB}}, Out: q}
	n, err := ing.SyncOnce()
	if err != nil || n != 2 {
		t.Fatalf("SyncOnce = %d, %v", n, err)
	}
	first, _ := q.Dequeue()
	if first.ID != "a" || first.Title != "Pagina A" || first.Domain != "prodotti" ||
		first.Section != "carte" || first.Topic != "t1" {
		t.Fatalf("extracted = %+v", first)
	}
	if len(first.Doc.Paragraphs) == 0 {
		t.Fatal("no paragraphs extracted")
	}
}

func TestSyncOnceIdempotent(t *testing.T) {
	q := queue.New[Extracted]()
	ing := &Ingester{Source: StaticSource{{ID: "a", HTML: pageA}}, Out: q}
	ing.SyncOnce()
	n, _ := ing.SyncOnce()
	if n != 0 {
		t.Fatalf("unchanged pages republished: %d", n)
	}
}

func TestSyncDetectsModification(t *testing.T) {
	q := queue.New[Extracted]()
	src := &mutableSource{pages: []Page{{ID: "a", HTML: pageA}}}
	ing := &Ingester{Source: src, Out: q}
	ing.SyncOnce()
	q.TryDequeue()

	src.pages = []Page{{ID: "a", HTML: pageA + "<!-- edit -->"}}
	n, _ := ing.SyncOnce()
	if n != 1 {
		t.Fatalf("modification not detected: %d", n)
	}
}

func TestSyncDetectsDeletion(t *testing.T) {
	q := queue.New[Extracted]()
	src := &mutableSource{pages: []Page{{ID: "a", HTML: pageA}, {ID: "b", HTML: pageB}}}
	ing := &Ingester{Source: src, Out: q}
	ing.SyncOnce()
	for q.Len() > 0 {
		q.TryDequeue()
	}
	src.pages = []Page{{ID: "a", HTML: pageA}}
	n, _ := ing.SyncOnce()
	if n != 1 {
		t.Fatalf("deletion not detected: %d", n)
	}
	msg, _ := q.TryDequeue()
	if msg.ID != "b" || !msg.Deleted {
		t.Fatalf("deletion message = %+v", msg)
	}
	// A re-added page is re-published.
	src.pages = []Page{{ID: "a", HTML: pageA}, {ID: "b", HTML: pageB}}
	if n, _ := ing.SyncOnce(); n != 1 {
		t.Fatalf("re-added page not republished: %d", n)
	}
}

func TestRunPollsOnVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	q := queue.New[Extracted]()
	src := &mutableSource{pages: []Page{{ID: "a", HTML: pageA}}}
	ing := &Ingester{Source: src, Out: q, Clock: clk, PollInterval: 15 * time.Minute}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ing.Run(ctx) }()

	// First pass is immediate.
	if msg, ok := q.Dequeue(); !ok || msg.ID != "a" {
		t.Fatalf("first poll missing: %+v %v", msg, ok)
	}
	// Modify the page, advance 15 virtual minutes: second pass picks it up.
	src.pages = []Page{{ID: "a", HTML: pageA + "v2"}}
	for i := 0; clk.PendingWaiters() == 0 && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(15 * time.Minute)
	if msg, ok := q.Dequeue(); !ok || msg.ID != "a" {
		t.Fatalf("second poll missing: %+v %v", msg, ok)
	}
	cancel()
	clk.Advance(15 * time.Minute) // release the timer wait
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

func TestDefaultPollInterval(t *testing.T) {
	if DefaultPollInterval != 15*time.Minute {
		t.Fatalf("DefaultPollInterval = %v, paper specifies 15 minutes", DefaultPollInterval)
	}
}
