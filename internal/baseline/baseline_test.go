package baseline

import "testing"

func newEngine() *Engine {
	e := New()
	e.Add("d1", "Blocco carta di credito. Per bloccare la carta chiamare il numero verde.")
	e.Add("d2", "Bonifico estero. Il bonifico richiede il codice BIC della banca.")
	e.Add("d3", "Errore ERR-4032 durante il bonifico: verificare il codice IBAN.")
	return e
}

func TestExactMatchFinds(t *testing.T) {
	e := newEngine()
	res := e.Search("bonifico estero", 10)
	if len(res) != 1 || res[0].DocID != "d2" {
		t.Fatalf("res = %v", res)
	}
}

func TestConjunctiveSemantics(t *testing.T) {
	e := newEngine()
	// "bonifico" matches d2,d3 but "carta" only d1 -> intersection empty.
	if res := e.Search("bonifico carta", 10); res != nil {
		t.Fatalf("conjunction should fail: %v", res)
	}
}

func TestNoStemming(t *testing.T) {
	e := newEngine()
	// Documents say "bonifico"; the inflected "bonifici" must NOT match.
	if res := e.Search("bonifici", 10); res != nil {
		t.Fatalf("legacy engine must not stem: %v", res)
	}
}

func TestNoSynonyms(t *testing.T) {
	e := newEngine()
	// "sospendere tessera" is a paraphrase of d1; exact match fails.
	if res := e.Search("sospendere tessera", 10); res != nil {
		t.Fatalf("legacy engine must not handle synonyms: %v", res)
	}
}

func TestNaturalLanguageQuestionFails(t *testing.T) {
	e := newEngine()
	res := e.Search("come posso effettuare una disposizione verso un paese estero?", 10)
	if res != nil {
		t.Fatalf("NL question should fail: %v", res)
	}
}

func TestShortTermsIgnored(t *testing.T) {
	e := newEngine()
	// "il" and "di" are below MinTermLen and must be ignored, so the query
	// reduces to "carta" and matches d1.
	res := e.Search("il di carta", 10)
	if len(res) != 1 || res[0].DocID != "d1" {
		t.Fatalf("res = %v", res)
	}
}

func TestCodeQueryExact(t *testing.T) {
	e := newEngine()
	res := e.Search("ERR-4032", 10)
	if len(res) != 1 || res[0].DocID != "d3" {
		t.Fatalf("res = %v", res)
	}
	// A different code finds nothing.
	if res := e.Search("ERR-4033", 10); res != nil {
		t.Fatalf("wrong code matched: %v", res)
	}
}

func TestRankingByTermFrequency(t *testing.T) {
	e := New()
	e.Add("a", "carta carta carta")
	e.Add("b", "carta")
	res := e.Search("carta", 10)
	if len(res) != 2 || res[0].DocID != "a" || res[0].Score <= res[1].Score {
		t.Fatalf("res = %v", res)
	}
}

func TestEmptyAndStopOnlyQueries(t *testing.T) {
	e := newEngine()
	if res := e.Search("", 10); res != nil {
		t.Fatalf("empty query: %v", res)
	}
	if res := e.Search("il lo la", 10); res != nil {
		t.Fatalf("short-terms-only query: %v", res)
	}
	if res := e.Search("carta", 0); res != nil {
		t.Fatalf("n=0: %v", res)
	}
}

func TestCaseInsensitive(t *testing.T) {
	e := newEngine()
	res := e.Search("CARTA", 10)
	if len(res) != 1 || res[0].DocID != "d1" {
		t.Fatalf("res = %v", res)
	}
}

func TestTopNTruncation(t *testing.T) {
	e := New()
	for i := 0; i < 30; i++ {
		e.Add(string(rune('a'+i%26))+string(rune('0'+i/26)), "parola comune")
	}
	if res := e.Search("parola", 5); len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	e := New()
	e.Add("z", "termine")
	e.Add("a", "termine")
	res := e.Search("termine", 10)
	if res[0].DocID != "a" || res[1].DocID != "z" {
		t.Fatalf("tie-break: %v", res)
	}
}
