// Package baseline reproduces the pre-existing UniCredit intranet search
// engine that UniAsk replaced and is compared against in Table 1. Per §2 of
// the paper, that system "only performs an exact keyword matching on the
// documents in the knowledge base": no stemming, no synonym handling, no
// natural-language support. A query only returns documents that contain
// every query term verbatim, which is why the engine retrieved non-empty
// results for just 19.1% of the expert-authored natural-language questions
// while serving its own keyword-style log queries well.
package baseline

import (
	"sort"

	"uniask/internal/textproc"
)

// Result is one ranked document.
type Result struct {
	// DocID is the knowledge-base document id.
	DocID string
	// Score is the ranking score (total term frequency of the query terms).
	Score float64
}

// Engine is the exact-keyword-match search engine.
type Engine struct {
	analyzer *textproc.Analyzer
	postings map[string]map[int]int // term -> doc ordinal -> tf
	ids      []string
	// MinTermLen drops very short query terms (articles, prepositions) the
	// legacy engine ignored. Default 3.
	MinTermLen int
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		analyzer:   textproc.Raw(),
		postings:   make(map[string]map[int]int),
		MinTermLen: 3,
	}
}

// Add indexes a document's raw text (title plus body).
func (e *Engine) Add(docID, text string) {
	ord := len(e.ids)
	e.ids = append(e.ids, docID)
	for _, term := range e.analyzer.AnalyzeTerms(text) {
		m := e.postings[term]
		if m == nil {
			m = make(map[int]int)
			e.postings[term] = m
		}
		m[ord]++
	}
}

// Len reports the number of indexed documents.
func (e *Engine) Len() int { return len(e.ids) }

// legacyQueryStopwords are the generic Italian words the old engine's query
// parser discarded before matching: articles/prepositions (via the standard
// stop-word list) plus the interrogative scaffolding employees type in
// questions ("come posso...", "cosa devo fare per..."). Content terms —
// including every synonym — are matched verbatim, which is exactly why the
// engine failed on most natural-language questions: any colloquial synonym
// absent from the editorial text empties the conjunction.
var legacyQueryStopwords = map[string]bool{
	"come": true, "posso": true, "cosa": true, "devo": true, "fare": true,
	"possibile": true, "quali": true, "qual": true, "modo": true,
	"procedo": true, "procedere": true, "aiutarmi": true, "aiutare": true,
	"serve": true, "sapere": true, "vorrei": true, "capire": true,
	"potete": true, "chiede": true, "chiedere": true, "bisogna": true,
	"prassi": true, "passaggi": true, "corretta": true, "corretto": true,
	"prevede": true, "significato": true, "gestisce": true, "risolve": true,
	"compare": true, "segnala": true, "quando": true, "mentre": true,
	"durante": true, "dopo": true, "prima": true, "ogni": true,
}

// Search returns up to n documents containing every (sufficiently long)
// query term verbatim, ranked by total term frequency. It returns nil when
// no document matches all terms — the legacy engine's signature failure
// mode on natural-language questions.
func (e *Engine) Search(query string, n int) []Result {
	if n <= 0 {
		return nil
	}
	var terms []string
	for _, t := range e.analyzer.AnalyzeTerms(query) {
		if len([]rune(t)) < e.MinTermLen {
			continue
		}
		if textproc.IsStopword(t) || legacyQueryStopwords[t] {
			continue
		}
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		return nil
	}
	// Conjunctive intersection, smallest posting list first.
	sort.Slice(terms, func(i, j int) bool {
		return len(e.postings[terms[i]]) < len(e.postings[terms[j]])
	})
	first, ok := e.postings[terms[0]]
	if !ok {
		return nil
	}
	scores := make(map[int]float64, len(first))
	for doc, tf := range first {
		scores[doc] = float64(tf)
	}
	for _, t := range terms[1:] {
		pl, ok := e.postings[t]
		if !ok {
			return nil
		}
		for doc := range scores {
			if tf, in := pl[doc]; in {
				scores[doc] += float64(tf)
			} else {
				delete(scores, doc)
			}
		}
		if len(scores) == 0 {
			return nil
		}
	}
	out := make([]Result, 0, len(scores))
	for doc, s := range scores {
		out = append(out, Result{DocID: e.ids[doc], Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
