package llm

// Streaming seam on the chat-completion interface. The hosted API UniAsk
// calls supports server-sent token streaming; the session layer streams
// those chunks to the browser as SSE `token` events. SimLLM implements the
// seam by chunking its deterministic answer, so the streaming path is
// exercised end-to-end without a hosted model.

import "context"

// StreamClient is the optional streaming extension of Client: the
// completion is delivered incrementally through emit, then returned whole
// (with usage) like a plain Complete. An emit error (the consumer went
// away) aborts the stream and is returned as the call's error.
type StreamClient interface {
	Client
	CompleteStream(ctx context.Context, req Request, emit func(chunk string) error) (Response, error)
}

// CompleteStream runs a streaming completion against any Client: clients
// implementing StreamClient stream natively; everything else is adapted by
// completing first and emitting the whole content as one chunk. The seam
// callers (the generator) program against this helper so a non-streaming
// backend still works.
func CompleteStream(ctx context.Context, c Client, req Request, emit func(chunk string) error) (Response, error) {
	if sc, ok := c.(StreamClient); ok {
		return sc.CompleteStream(ctx, req, emit)
	}
	resp, err := c.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	if emit != nil && resp.Content != "" {
		if err := emit(resp.Content); err != nil {
			return Response{}, err
		}
	}
	return resp, nil
}

// streamChunkWords is how many words SimLLM packs into one streamed chunk —
// small enough that a multi-sentence answer streams over many token events,
// large enough that tests don't drown in frames.
const streamChunkWords = 4

// CompleteStream implements StreamClient: the deterministic completion is
// computed whole, then delivered in word-group chunks (whitespace
// preserved), honoring cancellation between chunks.
func (s *SimLLM) CompleteStream(ctx context.Context, req Request, emit func(chunk string) error) (Response, error) {
	resp, err := s.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	if emit == nil {
		return resp, nil
	}
	for _, chunk := range chunkWords(resp.Content, streamChunkWords) {
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		if err := emit(chunk); err != nil {
			return Response{}, err
		}
	}
	return resp, nil
}

// chunkWords splits text into chunks of n words each, preserving the exact
// byte content: concatenating the chunks reproduces text verbatim.
func chunkWords(text string, n int) []string {
	if text == "" {
		return nil
	}
	var chunks []string
	start, words, inWord := 0, 0, false
	for i := 0; i < len(text); i++ {
		sp := text[i] == ' ' || text[i] == '\n' || text[i] == '\t'
		if inWord && sp {
			inWord = false
			words++
			if words == n {
				chunks = append(chunks, text[start:i])
				start, words = i, 0
			}
		} else if !inWord && !sp {
			inWord = true
		}
	}
	if start < len(text) {
		chunks = append(chunks, text[start:])
	}
	return chunks
}
