package llm

import (
	"context"
	"errors"
	"testing"
	"time"

	"uniask/internal/resilience"
)

// flakyClient fails its first n calls with err, then delegates to SimLLM.
type flakyClient struct {
	failuresLeft int
	err          error
	inner        Client
	calls        int
}

func (f *flakyClient) Complete(ctx context.Context, req Request) (Response, error) {
	f.calls++
	if f.failuresLeft > 0 {
		f.failuresLeft--
		return Response{}, f.err
	}
	return f.inner.Complete(ctx, req)
}

func testReq() Request {
	return Request{Messages: []Message{{Role: User, Content: "Riassumi: il bonifico estero richiede l'IBAN."}}}
}

func fastPolicy() resilience.Policy {
	return resilience.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestResilientClientRetriesTransient(t *testing.T) {
	f := &flakyClient{failuresLeft: 2, err: errors.New("upstream 503"), inner: NewSim(DefaultBehavior())}
	c := &ResilientClient{Inner: f, Policy: fastPolicy()}
	resp, err := c.Complete(context.Background(), testReq())
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if f.calls != 3 {
		t.Fatalf("calls = %d, want 3", f.calls)
	}
	if resp.Content == "" {
		t.Fatal("empty content after successful retry")
	}
}

func TestResilientClientRateLimitedIsRetryable(t *testing.T) {
	f := &flakyClient{failuresLeft: 1, err: ErrRateLimited, inner: NewSim(DefaultBehavior())}
	c := &ResilientClient{Inner: f, Policy: fastPolicy()}
	if _, err := c.Complete(context.Background(), testReq()); err != nil {
		t.Fatalf("Complete after 429: %v", err)
	}
	if f.calls != 2 {
		t.Fatalf("calls = %d, want 2", f.calls)
	}
}

func TestResilientClientEmptyPromptTerminal(t *testing.T) {
	f := &flakyClient{inner: NewSim(DefaultBehavior())}
	c := &ResilientClient{Inner: f, Policy: fastPolicy()}
	if _, err := c.Complete(context.Background(), Request{}); !errors.Is(err, ErrEmptyPrompt) {
		t.Fatalf("err = %v, want ErrEmptyPrompt", err)
	}
	if f.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry on a structurally bad request)", f.calls)
	}
}

func TestResilientClientBudgetExhausted(t *testing.T) {
	f := &flakyClient{failuresLeft: 99, err: errors.New("upstream down"), inner: NewSim(DefaultBehavior())}
	c := &ResilientClient{Inner: f, Policy: fastPolicy()}
	_, err := c.Complete(context.Background(), testReq())
	if !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if f.calls != 3 {
		t.Fatalf("calls = %d, want 3", f.calls)
	}
}

func TestResilientClientBreakerShedsFast(t *testing.T) {
	f := &flakyClient{failuresLeft: 99, err: errors.New("upstream down"), inner: NewSim(DefaultBehavior())}
	br := resilience.NewBreaker(resilience.BreakerConfig{Name: "llm", FailureThreshold: 3, Cooldown: time.Hour})
	c := &ResilientClient{Inner: f, Policy: fastPolicy(), Breaker: br}

	// First call burns the failure threshold across its attempts.
	if _, err := c.Complete(context.Background(), testReq()); err == nil {
		t.Fatal("expected failure")
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state = %v, want Open", br.State())
	}
	callsBefore := f.calls
	// Subsequent calls are shed without touching the dependency.
	_, err := c.Complete(context.Background(), testReq())
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if f.calls != callsBefore {
		t.Fatalf("open breaker still reached the dependency (%d -> %d calls)", callsBefore, f.calls)
	}
}
