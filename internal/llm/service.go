package llm

import (
	"context"
	"sync"
	"time"

	"uniask/internal/textproc"
	"uniask/internal/vclock"
)

// ServiceConfig configures the hosted-LLM service wrapper: a token-bucket
// rate limit (the quota the paper sizes with the Figure-2 load test) and a
// simulated inference latency, both driven by a Clock so load tests can run
// on virtual time.
type ServiceConfig struct {
	// TokensPerMinute is the sustained token throughput the service grants.
	// Zero disables rate limiting.
	TokensPerMinute int
	// BurstTokens is the bucket capacity (defaults to one minute's worth).
	BurstTokens int
	// BaseLatency is the fixed per-request inference latency.
	BaseLatency time.Duration
	// PerTokenLatency is the additional latency per prompt+completion token.
	PerTokenLatency time.Duration
	// Clock defaults to the real clock.
	Clock vclock.Clock
}

// Service wraps a Client with rate limiting and latency simulation — the
// "LLM Hosting Service" resource of the deployment architecture.
type Service struct {
	cfg   ServiceConfig
	inner Client

	mu       sync.Mutex
	tokens   float64
	lastFill time.Time

	// Counters for monitoring.
	requests int64
	failures int64
}

// NewService wraps inner with the given config.
func NewService(inner Client, cfg ServiceConfig) *Service {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.BurstTokens <= 0 {
		cfg.BurstTokens = cfg.TokensPerMinute
	}
	return &Service{
		cfg:      cfg,
		inner:    inner,
		tokens:   float64(cfg.BurstTokens),
		lastFill: cfg.Clock.Now(),
	}
}

// acquire takes n tokens from the bucket, reporting whether the request is
// admitted. The bucket refills continuously at TokensPerMinute.
func (s *Service) acquire(n int) bool {
	if s.cfg.TokensPerMinute <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	elapsed := now.Sub(s.lastFill)
	if elapsed > 0 {
		s.tokens += elapsed.Minutes() * float64(s.cfg.TokensPerMinute)
		if s.tokens > float64(s.cfg.BurstTokens) {
			s.tokens = float64(s.cfg.BurstTokens)
		}
		s.lastFill = now
	}
	if s.tokens < float64(n) {
		return false
	}
	s.tokens -= float64(n)
	return true
}

// Complete implements Client. A request whose token demand exceeds the
// remaining quota fails immediately with ErrRateLimited (the HTTP 429 the
// load test counts as a failed query — UniAsk is an open system with no
// admission queue).
func (s *Service) Complete(ctx context.Context, req Request) (Response, error) {
	demand := textproc.ApproxTokens(promptText(req))
	maxTok := req.MaxTokens
	if maxTok <= 0 {
		maxTok = 1024
	}
	demand += maxTok / 4 // expected completion share, reserved up front

	s.mu.Lock()
	s.requests++
	s.mu.Unlock()

	if !s.acquire(demand) {
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
		return Response{}, ErrRateLimited
	}

	resp, err := s.inner.Complete(ctx, req)
	if err != nil {
		return Response{}, err
	}
	if d := s.cfg.BaseLatency + time.Duration(resp.PromptTokens+resp.CompletionTokens)*s.cfg.PerTokenLatency; d > 0 {
		select {
		case <-s.cfg.Clock.After(d):
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	return resp, nil
}

// Stats reports request/failure counters.
func (s *Service) Stats() (requests, failures int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests, s.failures
}
