package llm

import (
	"fmt"
	"strconv"
	"strings"
)

// Groundedness (§7): the paper evaluated the popular LLM-as-judge
// groundedness metric — feed an LLM the question, the retrieved contexts
// and the answer, ask for a coherence score — and found that it "failed to
// return meaningful results in the large majority of cases", which is why
// generation quality was assessed with real users instead. This file
// reproduces both the metric and its failure mode.

// BuildGroundednessPrompt asks the LLM to judge whether the answer is
// grounded in the contexts, on a 1-5 scale.
func BuildGroundednessPrompt(question, answer string, contexts []string) Request {
	var b strings.Builder
	b.WriteString(questionMarker + " " + question + "\n")
	b.WriteString("RISPOSTA: " + answer + "\n")
	b.WriteString(contextMarker + " [")
	for i, c := range contexts {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "{\"key\":\"doc%d\",\"title\":\"\",\"content\":%q}", i+1, c)
	}
	b.WriteString("]")
	return Request{Messages: []Message{
		{Role: System, Content: "Valuta la groundedness della risposta rispetto al contesto fornito. Rispondi esclusivamente con PUNTEGGIO: N dove N è un intero da 1 a 5."},
		{Role: User, Content: b.String()},
	}}
}

// ParseGroundedness extracts the 1-5 score from a judge response. ok is
// false when the response carries no usable score — the paper's
// "non-meaningful result".
func ParseGroundedness(response string) (score int, ok bool) {
	idx := strings.Index(response, "PUNTEGGIO:")
	if idx < 0 {
		return 0, false
	}
	rest := strings.TrimSpace(response[idx+len("PUNTEGGIO:"):])
	if rest == "" {
		return 0, false
	}
	end := 0
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	n, err := strconv.Atoi(rest[:end])
	if err != nil || n < 1 || n > 5 {
		return 0, false
	}
	return n, true
}

// groundednessJudge simulates the judge's behavior as the paper observed
// it: when the answer is plainly extractive (high lexical overlap with the
// context), the judge produces a clean score; for abstractive or partial
// answers — the majority — it rambles, caveats, or answers in prose
// without the requested format, yielding nothing parseable. The failure is
// deterministic per input.
func (s *SimLLM) groundednessJudge(req Request) string {
	question, _ := parseQuestion(req)
	chunks, _ := parseContext(req)
	answer := ""
	for _, m := range req.Messages {
		if i := strings.Index(m.Content, "RISPOSTA:"); i >= 0 {
			rest := m.Content[i+len("RISPOSTA:"):]
			if j := strings.Index(rest, contextMarker); j >= 0 {
				rest = rest[:j]
			}
			answer = strings.TrimSpace(rest)
		}
	}
	if answer == "" || len(chunks) == 0 {
		return "Non è possibile valutare la risposta senza un contesto adeguato."
	}

	aTerms := s.analyzer.AnalyzeUnique(answer)
	best := 0.0
	for _, ch := range chunks {
		if ov := setOverlap(aTerms, s.analyzer.AnalyzeUnique(ch.Content)); ov > best {
			best = ov
		}
	}
	rng := s.rngFor("groundedness:" + question + answer)
	// Format compliance is the judge's weak point (long Italian prompts,
	// multi-document contexts): even for plainly extractive answers the
	// model frequently drifts into prose instead of the requested
	// "PUNTEGGIO: N" — the paper's dominant failure.
	switch {
	case best > 0.8 && rng.Float64() < 0.35:
		// Plainly extractive and the judge stayed on format.
		return "PUNTEGGIO: 5"
	case best > 0.6 && rng.Float64() < 0.2:
		return fmt.Sprintf("PUNTEGGIO: %d", 3+rng.Intn(2))
	default:
		// The common case the paper reports: the judge produces prose
		// instead of the requested format.
		failures := []string{
			"La risposta sembra in parte coerente con il contesto, ma alcuni passaggi non trovano riscontro diretto; una valutazione numerica non renderebbe giustizia alle sfumature.",
			"Come modello linguistico non posso determinare con certezza la correttezza fattuale della risposta rispetto al contesto fornito.",
			"La valutazione dipende dall'interpretazione della domanda: se intesa in senso stretto il punteggio sarebbe diverso da quello in senso ampio.",
			"Punteggio: la risposta appare ragionevole.",
		}
		return failures[rng.Intn(len(failures))]
	}
}
