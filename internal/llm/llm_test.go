package llm

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"uniask/internal/vclock"
)

var testChunks = []ContextChunk{
	{Key: "doc1", Title: "Blocco carta di credito",
		Content: "Per bloccare la carta di credito è necessario chiamare il numero verde. Il servizio è attivo tutti i giorni."},
	{Key: "doc2", Title: "Bonifico estero",
		Content: "Il bonifico verso paesi extra SEPA richiede il codice BIC della banca beneficiaria."},
}

func sim() *SimLLM { return NewSim(DefaultBehavior()) }

func complete(t *testing.T, c Client, req Request) Response {
	t.Helper()
	resp, err := c.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAnswerGroundedWithCitations(t *testing.T) {
	resp := complete(t, sim(), BuildAnswerPrompt("Come posso bloccare la carta di credito?", testChunks))
	if !strings.Contains(resp.Content, "[doc1]") {
		t.Fatalf("answer lacks citation: %q", resp.Content)
	}
	if !strings.Contains(resp.Content, "numero verde") {
		t.Fatalf("answer not extractive: %q", resp.Content)
	}
}

func TestAnswerDeterministic(t *testing.T) {
	req := BuildAnswerPrompt("Come posso bloccare la carta?", testChunks)
	a := complete(t, sim(), req)
	b := complete(t, sim(), req)
	if a.Content != b.Content {
		t.Fatal("nondeterministic answer")
	}
}

func TestAnswerRefusesOffContext(t *testing.T) {
	// A question with zero overlap with the context cannot be answered; the
	// reply must be either a refusal or an uncited drift (never a cited
	// extractive answer).
	resp := complete(t, sim(), BuildAnswerPrompt("Qual è la ricetta della carbonara romana tradizionale?", testChunks))
	if strings.Contains(resp.Content, "numero verde") || strings.Contains(resp.Content, "BIC") {
		t.Fatalf("answered off-context question from context: %q", resp.Content)
	}
}

func TestAnswerEmptyContext(t *testing.T) {
	resp := complete(t, sim(), BuildAnswerPrompt("Come posso bloccare la carta?", nil))
	if !strings.Contains(resp.Content, "non sono in grado") {
		t.Fatalf("no-context answer: %q", resp.Content)
	}
}

func TestAnswerUsage(t *testing.T) {
	resp := complete(t, sim(), BuildAnswerPrompt("Come posso bloccare la carta di credito?", testChunks))
	if resp.PromptTokens == 0 || resp.CompletionTokens == 0 {
		t.Fatalf("usage not reported: %+v", resp)
	}
	if resp.FinishReason != "stop" {
		t.Fatalf("finish = %q", resp.FinishReason)
	}
}

func TestMaxTokensTruncates(t *testing.T) {
	req := BuildAnswerPrompt("Come posso bloccare la carta di credito?", testChunks)
	req.MaxTokens = 5
	resp := complete(t, sim(), req)
	if resp.FinishReason != "length" {
		t.Fatalf("finish = %q, content = %q", resp.FinishReason, resp.Content)
	}
	if resp.CompletionTokens > 5 {
		t.Fatalf("completion tokens = %d", resp.CompletionTokens)
	}
}

func TestEmptyPromptError(t *testing.T) {
	_, err := sim().Complete(context.Background(), Request{})
	if err != ErrEmptyPrompt {
		t.Fatalf("err = %v", err)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sim().Complete(ctx, BuildAnswerPrompt("x", testChunks))
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestFailureInjectionRates(t *testing.T) {
	// Over many distinct questions the injected failure modes must appear
	// at roughly their configured rates.
	b := Behavior{NoCitationRate: 0.2, DriftRate: 0.1, ClarifyRate: 0.05, MinEvidence: 0.2, Seed: 7}
	s := NewSim(b)
	noCite, clarify, total := 0, 0, 0
	for i := 0; i < 400; i++ {
		q := "Come posso bloccare la carta di credito numero " + strings.Repeat("x", i%7) + "?"
		// Vary the question so each gets an independent RNG draw.
		q = strings.Replace(q, "numero", "numero"+string(rune('a'+i%26)), 1)
		resp := complete(t, s, BuildAnswerPrompt(q, testChunks))
		total++
		if !strings.Contains(resp.Content, "[doc") {
			noCite++
		}
		if strings.Contains(resp.Content, "maggiori dettagli") {
			clarify++
		}
	}
	if noCite < total/20 {
		t.Errorf("no-citation injections too rare: %d/%d", noCite, total)
	}
	if clarify == 0 {
		t.Errorf("clarification injections never fired")
	}
}

func TestSummarize(t *testing.T) {
	req := BuildSummaryPrompt("Blocco carta",
		"Questa pagina descrive la procedura. Per bloccare la carta è necessario chiamare il numero verde. Altre informazioni seguono.")
	resp := complete(t, sim(), req)
	if !strings.Contains(resp.Content, "Blocco carta") {
		t.Fatalf("summary lost title: %q", resp.Content)
	}
	if !strings.Contains(resp.Content, "necessario") {
		t.Fatalf("summary lost instruction sentence: %q", resp.Content)
	}
}

func TestKeywords(t *testing.T) {
	req := BuildKeywordsPrompt("Blocco carta", "la carta di credito la carta la carta il blocco")
	resp := complete(t, sim(), req)
	if !strings.Contains(resp.Content, "cart") {
		t.Fatalf("keywords = %q", resp.Content)
	}
	if strings.Contains(resp.Content, " la") {
		t.Fatalf("stopwords leaked into keywords: %q", resp.Content)
	}
}

func TestRelatedQueries(t *testing.T) {
	req := BuildRelatedQueriesPrompt("Come posso bloccare la carta di credito?", 3)
	resp := complete(t, sim(), req)
	lines := strings.Split(strings.TrimSpace(resp.Content), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d related queries: %q", len(lines), resp.Content)
	}
	for _, l := range lines {
		if !strings.Contains(l, "carta") {
			t.Fatalf("related query lost topic: %q", l)
		}
	}
}

func TestDirectAnswerQGA(t *testing.T) {
	resp := complete(t, sim(), BuildDirectAnswerPrompt("Come posso bloccare la carta di credito?"))
	if !strings.Contains(resp.Content, "carta") {
		t.Fatalf("QGA answer lost topic: %q", resp.Content)
	}
	// Must contain generic boilerplate (the noise that degrades retrieval).
	if len(strings.Fields(resp.Content)) < 10 {
		t.Fatalf("QGA answer too short: %q", resp.Content)
	}
}

func TestParseContextRoundTrip(t *testing.T) {
	req := BuildAnswerPrompt("domanda?", testChunks)
	chunks, ok := parseContext(req)
	if !ok || len(chunks) != 2 || chunks[0].Key != "doc1" || chunks[1].Content == "" {
		t.Fatalf("parseContext = %v, %v", chunks, ok)
	}
	q, ok := parseQuestion(req)
	if !ok || q != "domanda?" {
		t.Fatalf("parseQuestion = %q, %v", q, ok)
	}
}

func TestTaskDispatch(t *testing.T) {
	cases := map[task]Request{
		taskAnswer:   BuildAnswerPrompt("q", testChunks),
		taskSummary:  BuildSummaryPrompt("t", "x"),
		taskKeywords: BuildKeywordsPrompt("t", "x"),
		taskRelated:  BuildRelatedQueriesPrompt("q", 2),
		taskDirect:   BuildDirectAnswerPrompt("q"),
	}
	for want, req := range cases {
		if got := taskOf(req); got != want {
			t.Errorf("taskOf = %v, want %v", got, want)
		}
	}
}

func TestPromptRepeatsCitationInstructions(t *testing.T) {
	// §5: the instructions about citations are repeated more than once.
	req := BuildAnswerPrompt("q", testChunks)
	sys := req.Messages[0].Content
	if strings.Count(sys, "citazion") < 2 {
		t.Fatalf("citation instructions not repeated: %q", sys)
	}
	if !strings.Contains(sys, "italiano") {
		t.Fatal("prompt does not require Italian")
	}
}

func TestServiceRateLimit(t *testing.T) {
	clk := vclock.NewVirtual(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	svc := NewService(sim(), ServiceConfig{
		TokensPerMinute: 1000,
		BurstTokens:     1000,
		Clock:           clk,
	})
	req := BuildAnswerPrompt("Come posso bloccare la carta?", testChunks)
	req.MaxTokens = 100

	// Exhaust the bucket.
	failures := 0
	for i := 0; i < 10; i++ {
		if _, err := svc.Complete(context.Background(), req); err == ErrRateLimited {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("rate limit never triggered")
	}
	reqs, fails := svc.Stats()
	if reqs != 10 || fails != int64(failures) {
		t.Fatalf("stats = %d/%d", reqs, fails)
	}
	// Refill after virtual time passes.
	clk.Advance(time.Minute)
	if _, err := svc.Complete(context.Background(), req); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestServiceLatencyOnVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	svc := NewService(sim(), ServiceConfig{
		BaseLatency: 2 * time.Second,
		Clock:       clk,
	})
	done := make(chan error, 1)
	go func() {
		_, err := svc.Complete(context.Background(), BuildAnswerPrompt("Come posso bloccare la carta?", testChunks))
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("completed before virtual latency elapsed")
	case <-time.After(50 * time.Millisecond):
	}
	clk.Advance(5 * time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("never completed")
	}
}

func TestServiceNoLimitPassthrough(t *testing.T) {
	svc := NewService(sim(), ServiceConfig{})
	resp, err := svc.Complete(context.Background(), BuildAnswerPrompt("Come posso bloccare la carta di credito?", testChunks))
	if err != nil || resp.Content == "" {
		t.Fatalf("passthrough failed: %v %q", err, resp.Content)
	}
}

func TestParseGroundedness(t *testing.T) {
	cases := map[string]struct {
		score int
		ok    bool
	}{
		"PUNTEGGIO: 5":                     {5, true},
		"PUNTEGGIO: 3 perché coerente":     {3, true},
		"PUNTEGGIO: 9":                     {0, false},
		"PUNTEGGIO:":                       {0, false},
		"la risposta sembra ragionevole":   {0, false},
		"Punteggio: la risposta è valida.": {0, false},
		"":                                 {0, false},
	}
	for in, want := range cases {
		score, ok := ParseGroundedness(in)
		if score != want.score || ok != want.ok {
			t.Errorf("ParseGroundedness(%q) = %d,%v; want %d,%v", in, score, ok, want.score, want.ok)
		}
	}
}

func TestGroundednessJudgeExtractive(t *testing.T) {
	// Extractive answers are the judge's best case, yet format compliance
	// is probabilistic: across many answers some clean scores appear, and
	// every clean score is high.
	s := sim()
	ctxText := "Per bloccare la carta di credito è necessario chiamare il numero verde."
	clean := 0
	for i := 0; i < 40; i++ {
		answer := fmt.Sprintf("Per bloccare la carta di credito è necessario chiamare il numero verde (rif %d).", i)
		req := BuildGroundednessPrompt("Come posso bloccare la carta?", answer, []string{ctxText})
		resp := complete(t, s, req)
		if score, ok := ParseGroundedness(resp.Content); ok {
			clean++
			if score < 3 {
				t.Fatalf("extractive answer scored %d", score)
			}
		}
	}
	if clean == 0 {
		t.Fatal("judge never produced a clean score for extractive answers")
	}
}

func TestGroundednessJudgeUnreliableOnAbstractive(t *testing.T) {
	// Abstractive/partial answers mostly produce non-parseable judgments —
	// the §7 finding that made the paper defer to user testing.
	s := sim()
	ctxText := "Per bloccare la carta di credito è necessario chiamare il numero verde dedicato del servizio clienti."
	failures := 0
	const n = 40
	for i := 0; i < n; i++ {
		answer := fmt.Sprintf("In generale conviene rivolgersi all'assistenza per il blocco, variante %d.", i)
		req := BuildGroundednessPrompt("Come posso bloccare la carta?", answer, []string{ctxText})
		resp := complete(t, s, req)
		if _, ok := ParseGroundedness(resp.Content); !ok {
			failures++
		}
	}
	if failures < n/2 {
		t.Fatalf("judge unexpectedly reliable: %d/%d unparseable", failures, n)
	}
}

func TestGroundednessJudgeDeterministic(t *testing.T) {
	s := sim()
	req := BuildGroundednessPrompt("domanda?", "risposta abbastanza generica sul tema", []string{"contesto di prova sul tema"})
	a := complete(t, s, req)
	b := complete(t, s, req)
	if a.Content != b.Content {
		t.Fatal("judge not deterministic")
	}
}
