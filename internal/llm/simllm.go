package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"uniask/internal/embedding"
	"uniask/internal/textproc"
)

// Behavior configures the simulator's failure injection. The default rates
// are calibrated so the guardrail distribution on the human test set lands
// near Table 5 of the paper (94.8% clean answers, 3.5% missing citations,
// 1.1% off-context drift, 0.2% clarification requests).
type Behavior struct {
	// NoCitationRate is the probability that a grounded answer is emitted
	// without its citations (the failure the citation guardrail catches).
	NoCitationRate float64
	// DriftRate is the probability that the model answers from parametric
	// knowledge instead of the context, keeping a citation but losing
	// faithfulness (caught by the ROUGE guardrail).
	DriftRate float64
	// ClarifyRate is the probability that the model ends a weak answer by
	// asking the user for more details (caught by the clarification
	// guardrail).
	ClarifyRate float64
	// MinEvidence is the minimum question-sentence overlap required to
	// consider a context sentence usable evidence.
	MinEvidence float64
	// Seed drives the failure-injection randomness (per-question,
	// deterministically derived).
	Seed int64
	// Lexicon, when set, lets the simulator match terms at the concept
	// level — a question using a colloquial synonym finds the editorial
	// sentence that answers it, the way a real LLM resolves paraphrase.
	// Without it, matching falls back to lexical stems.
	Lexicon embedding.Lexicon
}

// DefaultBehavior returns the Table-5 calibration.
func DefaultBehavior() Behavior {
	return Behavior{
		NoCitationRate: 0.030,
		DriftRate:      0.011,
		ClarifyRate:    0.002,
		MinEvidence:    0.10,
		Seed:           1,
	}
}

// SimLLM is the deterministic gpt-3.5-turbo substitute.
type SimLLM struct {
	behavior Behavior
	analyzer *textproc.Analyzer
}

// conceptTerms analyzes text and canonicalizes every stem through the
// lexicon, so synonyms of the same concept compare equal.
func (s *SimLLM) conceptTerms(text string) map[string]struct{} {
	out := make(map[string]struct{})
	for _, t := range s.analyzer.AnalyzeTerms(text) {
		if s.behavior.Lexicon != nil {
			if c, ok := s.behavior.Lexicon.ConceptOf(t); ok {
				out["c:"+c] = struct{}{}
				continue
			}
		}
		out[t] = struct{}{}
	}
	return out
}

// NewSim returns a simulator with the given behavior.
func NewSim(b Behavior) *SimLLM {
	if b.MinEvidence == 0 {
		b.MinEvidence = 0.10
	}
	return &SimLLM{behavior: b, analyzer: textproc.ItalianFull()}
}

// driftSentences is the pool of plausible-but-ungrounded banking prose the
// simulator draws on when it "answers from parametric knowledge".
var driftSentences = []string{
	"Le banche europee offrono generalmente questo servizio tramite i canali digitali e la rete di filiali.",
	"Di norma questa operazione richiede l'autenticazione del cliente e può comportare commissioni variabili.",
	"La normativa bancaria prevede requisiti specifici che possono variare a seconda dell'istituto.",
	"In generale è consigliabile rivolgersi al proprio consulente di riferimento per maggiori informazioni.",
	"Questo tipo di richiesta viene solitamente gestito dai sistemi centrali dell'istituto entro pochi giorni.",
}

// clarificationSuffix marks an answer that asks the user for more detail;
// the clarification guardrail matches on phrasing like this.
const clarificationSuffix = "Potresti fornire maggiori dettagli sulla tua richiesta?"

// refusalAnswer is the self-declared "I don't know" reply the prompt asks
// for when the context does not support an answer.
const refusalAnswer = "Mi dispiace, non sono in grado di fornire una risposta affidabile sulla base della documentazione disponibile."

// Complete implements Client.
func (s *SimLLM) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if len(req.Messages) == 0 {
		return Response{}, ErrEmptyPrompt
	}
	var content string
	switch taskOf(req) {
	case taskAnswer:
		content = s.answer(req)
	case taskSummary:
		content = s.summarize(req)
	case taskKeywords:
		content = s.keywords(req)
	case taskRelated:
		content = s.relatedQueries(req)
	case taskDirect:
		content = s.directAnswer(req)
	case taskGroundedness:
		content = s.groundednessJudge(req)
	case taskRewrite:
		content = s.rewrite(req)
	default:
		content = refusalAnswer
	}
	finish := "stop"
	maxTok := req.MaxTokens
	if maxTok <= 0 {
		maxTok = 1024
	}
	if textproc.ApproxTokens(content) > maxTok {
		content = truncateTokens(content, maxTok)
		finish = "length"
	}
	return Response{
		Content:          content,
		PromptTokens:     textproc.ApproxTokens(promptText(req)),
		CompletionTokens: textproc.ApproxTokens(content),
		FinishReason:     finish,
	}, nil
}

// rngFor derives a per-question deterministic RNG.
func (s *SimLLM) rngFor(text string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(text))
	return rand.New(rand.NewSource(s.behavior.Seed ^ int64(h.Sum64())))
}

// evidence is a scored context sentence, with the sentence that follows it
// in the chunk (LLM answers typically carry the surrounding procedural
// detail along, not just the single matching sentence).
type evidence struct {
	key      string
	sentence string
	next     string
	score    float64
}

// answer implements the RAG answer task: extract the context sentences
// that best cover the question and compose a cited answer, or fail in one
// of the calibrated ways.
func (s *SimLLM) answer(req Request) string {
	question, okQ := parseQuestion(req)
	chunks, okC := parseContext(req)
	if !okQ || !okC || len(chunks) == 0 {
		return refusalAnswer
	}
	rng := s.rngFor(question)
	qTerms := s.conceptTerms(question)
	if len(qTerms) == 0 {
		return refusalAnswer + " " + clarificationSuffix
	}

	// A sentence is usable evidence when it shares enough content stems
	// with the question: at least two, or one for very short questions.
	// (An LLM answers from partial overlap; it does not require the
	// context to cover every question word.)
	needed := 2
	if len(qTerms) <= 3 {
		needed = 1
	}
	evs := s.collectEvidence(qTerms, chunks, needed)
	if len(evs) == 0 && needed > 1 {
		// Nothing covers the question well, but the context may still be
		// topical: a chat model answers from the closest sentence anyway —
		// the grounded-but-incomplete behavior the paper's pilot analysis
		// attributes to strongly overlapping documents.
		evs = s.collectEvidence(qTerms, chunks, 1)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].score > evs[j].score })

	if len(evs) == 0 {
		// Nothing in the context supports an answer. Mirror the behaviors
		// observed in the pilots: usually an explicit refusal; sometimes a
		// parametric-knowledge drift; for very generic questions, a
		// clarification request.
		if len(qTerms) <= 2 {
			return refusalAnswer + " " + clarificationSuffix
		}
		if rng.Float64() < 0.5 {
			return s.drift(rng, chunks)
		}
		return refusalAnswer
	}

	// Failure injection on otherwise-good answers.
	roll := rng.Float64()
	b := s.behavior
	switch {
	case roll < b.DriftRate:
		return s.drift(rng, chunks)
	case roll < b.DriftRate+b.ClarifyRate:
		return composeAnswer(evs[:1], false) + " " + clarificationSuffix
	case roll < b.DriftRate+b.ClarifyRate+b.NoCitationRate:
		return composeAnswer(evs, false)
	}
	return composeAnswer(evs, true)
}

// collectEvidence gathers context sentences sharing at least `needed`
// concept terms with the question, scored by overlap and title affinity.
func (s *SimLLM) collectEvidence(qTerms map[string]struct{}, chunks []ContextChunk, needed int) []evidence {
	var evs []evidence
	// With a lexicon available, single-term evidence must rest on a domain
	// concept or an identifier: matching an incidental common word is not
	// grounds to answer. This is what keeps out-of-scope questions refused.
	conceptOnly := needed == 1 && s.behavior.Lexicon != nil
	for _, ch := range chunks {
		titleTerms := s.conceptTerms(ch.Title)
		titleBoost := 0.15 * setOverlap(qTerms, titleTerms)
		sents := textproc.SentenceTexts(ch.Content)
		for i, sent := range sents {
			sTerms := s.conceptTerms(sent)
			matched := 0
			for t := range qTerms {
				if _, ok := sTerms[t]; !ok {
					continue
				}
				if conceptOnly && !strings.HasPrefix(t, "c:") && !strings.ContainsAny(t, "0123456789") {
					continue
				}
				matched++
			}
			if matched < needed {
				continue
			}
			sc := setOverlap(qTerms, sTerms) + titleBoost
			if sc >= s.behavior.MinEvidence {
				ev := evidence{key: ch.Key, sentence: sent, score: sc}
				if i+1 < len(sents) {
					ev.next = sents[i+1]
				}
				evs = append(evs, ev)
			}
		}
	}
	return evs
}

// composeAnswer joins up to three top evidence sentences, citing each
// source chunk in the [key] format when cite is true. When the answer would
// be very short, the sentence following the best evidence is appended so
// the reply carries the surrounding procedural detail, the way a chat model
// elaborates.
func composeAnswer(evs []evidence, cite bool) string {
	n := len(evs)
	if n > 3 {
		n = 3
	}
	var b strings.Builder
	b.WriteString("In base alla documentazione interna: ")
	used := map[string]bool{}
	wrote := 0
	for _, ev := range evs {
		if wrote == n {
			break
		}
		if used[ev.sentence] {
			continue
		}
		used[ev.sentence] = true
		sent := strings.TrimRight(ev.sentence, ".")
		b.WriteString(sent)
		if cite {
			b.WriteString(" [" + ev.key + "]")
		}
		b.WriteString(". ")
		wrote++
	}
	if wrote > 0 && len(strings.Fields(b.String())) < 35 && evs[0].next != "" && !used[evs[0].next] {
		b.WriteString(strings.TrimRight(evs[0].next, "."))
		if cite {
			b.WriteString(" [" + evs[0].key + "]")
		}
		b.WriteString(".")
	}
	return strings.TrimSpace(b.String())
}

// drift produces plausible generic prose with a token citation to the
// first chunk: the citation guardrail passes but ROUGE-L against the
// context stays low.
func (s *SimLLM) drift(rng *rand.Rand, chunks []ContextChunk) string {
	i := rng.Intn(len(driftSentences))
	j := rng.Intn(len(driftSentences))
	text := driftSentences[i]
	if j != i {
		text += " " + driftSentences[j]
	}
	if len(chunks) > 0 {
		text += " [" + chunks[0].Key + "]"
	}
	return text
}

// summarize returns a two-sentence extractive summary: the first sentence
// plus the first instruction-bearing sentence.
func (s *SimLLM) summarize(req Request) string {
	var title, text string
	for _, m := range req.Messages {
		if m.Role != User {
			continue
		}
		if i := strings.Index(m.Content, "TITOLO:"); i >= 0 {
			rest := m.Content[i+len("TITOLO:"):]
			if j := strings.Index(rest, "TESTO:"); j >= 0 {
				title = strings.TrimSpace(rest[:j])
				text = strings.TrimSpace(rest[j+len("TESTO:"):])
			} else {
				title = strings.TrimSpace(rest)
			}
		} else {
			text = m.Content
		}
	}
	sents := textproc.SentenceTexts(text)
	var parts []string
	if title != "" {
		parts = append(parts, title+".")
	}
	if len(sents) > 0 {
		parts = append(parts, sents[0])
	}
	for _, sent := range sents[1:] {
		l := strings.ToLower(sent)
		if strings.Contains(l, "necessario") || strings.Contains(l, "occorre") || strings.Contains(l, "deve") {
			parts = append(parts, sent)
			break
		}
	}
	return strings.Join(parts, " ")
}

// keywords returns the most frequent analyzed content terms, comma
// separated.
func (s *SimLLM) keywords(req Request) string {
	var text string
	for _, m := range req.Messages {
		if m.Role == User {
			text = m.Content
		}
	}
	counts := map[string]int{}
	var order []string
	for _, t := range s.analyzer.AnalyzeTerms(text) {
		if counts[t] == 0 {
			order = append(order, t)
		}
		counts[t]++
	}
	sort.SliceStable(order, func(i, j int) bool { return counts[order[i]] > counts[order[j]] })
	if len(order) > 8 {
		order = order[:8]
	}
	return strings.Join(order, ", ")
}

// relatedQueries emits n deterministic reformulations of the question, one
// per line.
func (s *SimLLM) relatedQueries(req Request) string {
	question, _ := parseQuestion(req)
	n := 3
	for _, m := range req.Messages {
		if m.Role == System {
			fmt.Sscanf(m.Content, "Genera %d", &n)
		}
	}
	base := strings.TrimRight(strings.TrimSpace(question), "?")
	words := strings.Fields(base)
	core := strings.Join(dropQuestionWords(words), " ")
	variants := []string{
		"procedura per " + core + "?",
		core,
		"istruzioni per " + core,
		"come " + core + "?",
		"guida " + core,
	}
	if n > len(variants) {
		n = len(variants)
	}
	return strings.Join(variants[:n], "\n")
}

// directAnswer is the context-free generation used by the QGA expansion: it
// restates the question's content terms and adds one generic sentence of
// parametric-knowledge boilerplate. The boilerplate terms dilute the
// expanded query — the paper measures QGA at roughly -15% across metrics.
func (s *SimLLM) directAnswer(req Request) string {
	question, _ := parseQuestion(req)
	rng := s.rngFor(question)
	base := strings.Join(dropQuestionWords(strings.Fields(strings.TrimRight(question, "?"))), " ")
	a := driftSentences[rng.Intn(len(driftSentences))]
	return "Per " + base + " di solito si procede tramite i canali previsti. " + a
}

// maxCarryTerms bounds how many history terms a rewrite folds into the
// standalone question, so a long conversation cannot bloat retrieval
// queries without bound.
const maxCarryTerms = 6

// rewrite implements the history-aware query-rewriting task: the question
// is made standalone by folding in the salient content terms of recent
// turns that the question itself does not already carry — the deterministic
// analogue of resolving "e per la carta di debito?" against a conversation
// about blocking cards. A question that is already self-contained (no
// history, or rich in its own content terms) passes through unchanged.
func (s *SimLLM) rewrite(req Request) string {
	question, ok := parseQuestion(req)
	if !ok || strings.TrimSpace(question) == "" {
		return strings.TrimSpace(question)
	}
	history := parseHistory(req)
	if len(history) == 0 {
		return question
	}
	qSeen := s.conceptTerms(question)
	content := dropQuestionWords(strings.Fields(strings.TrimRight(question, "?")))
	// A question carrying plenty of its own content terms is standalone;
	// rewriting it would only dilute retrieval.
	if len(content) >= 4 {
		return question
	}
	var carry []string
	appendNew := func(text string) {
		for _, w := range dropQuestionWords(strings.Fields(strings.TrimRight(text, "?"))) {
			if len(carry) >= maxCarryTerms {
				return
			}
			covered := true
			for t := range s.conceptTerms(w) {
				if _, ok := qSeen[t]; !ok {
					covered = false
					qSeen[t] = struct{}{}
				}
			}
			if !covered {
				carry = append(carry, w)
			}
		}
	}
	// Most recent turn first: anaphora resolves against what was just said.
	for i := len(history) - 1; i >= 0 && len(carry) < maxCarryTerms; i-- {
		appendNew(history[i].Question)
	}
	if len(carry) == 0 {
		return question
	}
	base := strings.TrimRight(strings.TrimSpace(question), "?")
	return base + " " + strings.Join(carry, " ") + "?"
}

// dropQuestionWords strips interrogative scaffolding from a question.
func dropQuestionWords(words []string) []string {
	drop := map[string]bool{
		"come": true, "posso": true, "cosa": true, "che": true, "devo": true,
		"fare": true, "per": true, "è": true, "possibile": true, "quali": true,
		"sono": true, "i": true, "il": true, "la": true, "qual": true,
		"in": true, "modo": true, "si": true, "può": true, "mi": true,
		"serve": true, "sapere": true, "vorrei": true, "capire": true,
	}
	var out []string
	for _, w := range words {
		if !drop[strings.ToLower(w)] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return words
	}
	return out
}

// setOverlap is |a ∩ b| / |a|.
func setOverlap(a, b map[string]struct{}) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for t := range a {
		if _, ok := b[t]; ok {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// truncateTokens cuts text to approximately maxTokens tokens on a word
// boundary.
func truncateTokens(text string, maxTokens int) string {
	words := strings.Fields(text)
	var b strings.Builder
	for _, w := range words {
		if textproc.ApproxTokens(b.String()+" "+w) > maxTokens {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(w)
	}
	return b.String()
}
