package llm

// ResilientClient decorates any Client with the resilience layer: retries
// with capped-exponential backoff and deterministic jitter, per-attempt
// timeouts, and a per-dependency circuit breaker. This is the wrapper the
// engine installs between the pipeline and the hosted chat-completion
// service, so a flaky or briefly-down LLM costs retries and eventually a
// fast-failing open circuit — never a wedged query.

import (
	"context"
	"errors"

	"uniask/internal/resilience"
	"uniask/internal/trace"
)

// ClassifyLLMError is the retry classification for chat-completion errors:
// rate limits and unknown upstream failures are transient; a structurally
// bad request, a cancelled caller, or an open breaker is terminal.
func ClassifyLLMError(err error) resilience.Class {
	switch {
	case errors.Is(err, ErrEmptyPrompt):
		return resilience.Terminal
	case errors.Is(err, ErrRateLimited):
		return resilience.Retryable
	}
	return resilience.DefaultClassify(err)
}

// ResilientClient wraps a Client with retry + circuit-breaker behavior. On
// the happy path it adds one function call and no allocation.
type ResilientClient struct {
	// Inner is the wrapped chat-completion client.
	Inner Client
	// Policy is the retry policy; its Classify defaults to
	// ClassifyLLMError when nil.
	Policy resilience.Policy
	// Breaker, when set, guards the dependency: calls are shed with
	// resilience.ErrBreakerOpen while it is open, and every attempt's
	// outcome feeds its failure counter.
	Breaker *resilience.Breaker
}

// Complete implements Client. On a traced request the whole call — every
// retry attempt, breaker shed and breaker transition included — is one
// "llm.complete" leaf span.
func (c *ResilientClient) Complete(ctx context.Context, req Request) (resp Response, err error) {
	ctx, sp := trace.Start(ctx, "llm.complete")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	p := c.Policy
	if p.Classify == nil {
		p.Classify = ClassifyLLMError
	}
	if c.Breaker == nil {
		return resilience.DoValue(ctx, p, func(ctx context.Context) (Response, error) {
			return c.Inner.Complete(ctx, req)
		})
	}
	return resilience.DoValue(ctx, p, func(ctx context.Context) (Response, error) {
		if err := c.Breaker.Allow(); err != nil {
			trace.AddEvent(ctx, "breaker.shed", trace.A("breaker", c.Breaker.Name()))
			return Response{}, err
		}
		resp, err := c.Inner.Complete(ctx, req)
		c.Breaker.RecordCtx(ctx, err)
		return resp, err
	})
}

// CompleteStream implements StreamClient. Retries apply only before the
// first byte: once a chunk has been emitted downstream the consumer has
// seen partial output, so a replay would duplicate it — any later failure
// is marked terminal and surfaces to the caller, who degrades to the
// extractive fallback instead. Breaker accounting matches Complete.
func (c *ResilientClient) CompleteStream(ctx context.Context, req Request, emit func(chunk string) error) (resp Response, err error) {
	ctx, sp := trace.Start(ctx, "llm.complete")
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	p := c.Policy
	if p.Classify == nil {
		p.Classify = ClassifyLLMError
	}
	started := false
	return resilience.DoValue(ctx, p, func(ctx context.Context) (Response, error) {
		if c.Breaker != nil {
			if err := c.Breaker.Allow(); err != nil {
				trace.AddEvent(ctx, "breaker.shed", trace.A("breaker", c.Breaker.Name()))
				return Response{}, err
			}
		}
		wrapped := emit
		if wrapped != nil {
			wrapped = func(chunk string) error {
				started = true
				return emit(chunk)
			}
		}
		resp, err := CompleteStream(ctx, c.Inner, req, wrapped)
		if c.Breaker != nil {
			c.Breaker.RecordCtx(ctx, err)
		}
		if err != nil && started {
			err = resilience.MarkTerminal(err)
		}
		return resp, err
	})
}
