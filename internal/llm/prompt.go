package llm

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ContextChunk is one retrieved document fragment passed to the LLM as
// grounding context, in the JSON shape the paper describes: a key
// identifier, the title and the content of the chunk.
type ContextChunk struct {
	Key     string `json:"key"`
	Title   string `json:"title"`
	Content string `json:"content"`
}

// Prompt section markers. SimLLM locates the question and the context in
// the prompt through these, the way a hosted model follows the same
// instructions.
const (
	contextMarker  = "CONTESTO:"
	questionMarker = "DOMANDA:"
)

// answerSystemPrompt is the task prompt of §5, reconstructed from the
// paper's description: general background context, input-format
// instructions, a sequence of recommendations, and deliberate repetition of
// the citation requirements (the authors observed repetition helps the
// model not to forget them).
const answerSystemPrompt = `Sei un assistente virtuale per i dipendenti di una banca europea.
Il tuo compito è rispondere alla domanda dell'utente basandoti esclusivamente sul contesto fornito, ovvero un elenco di documenti rilevanti recuperati da una base di conoscenza aziendale.

FORMATO DELL'INPUT: il contesto è una lista JSON in cui ogni documento è un dizionario con i campi "key" (identificatore), "title" (titolo) e "content" (contenuto del frammento).

RACCOMANDAZIONI PER UNA RISPOSTA VALIDA:
1. Ogni frase della risposta deve citare i documenti del contesto usati come fonte, nel formato [key].
2. Rispondi sempre in italiano.
3. Se non puoi produrre una risposta chiaramente basata sul contesto fornito, rispondi che non conosci la risposta.
4. Non inventare informazioni non presenti nel contesto.
5. Includi sempre almeno una citazione nel formato [key].

RICORDA: ogni risposta valida contiene almeno una citazione nel formato [key]. Le citazioni vanno scritte esattamente come [key], ad esempio [doc1].
RICORDA ANCORA: una risposta senza citazioni nel formato [key] non è accettabile.`

// BuildAnswerPrompt constructs the RAG answer-generation request for a
// question and its top-m retrieved chunks.
func BuildAnswerPrompt(question string, chunks []ContextChunk) Request {
	ctxJSON, _ := json.Marshal(chunks)
	user := fmt.Sprintf("%s %s\n\n%s %s", contextMarker, ctxJSON, questionMarker, question)
	return Request{Messages: []Message{
		{Role: System, Content: answerSystemPrompt},
		{Role: User, Content: user},
	}}
}

// BuildSummaryPrompt asks for a short summary of a document (used by the
// indexing service to enrich chunk metadata).
func BuildSummaryPrompt(title, text string) Request {
	return Request{Messages: []Message{
		{Role: System, Content: "Riassumi il seguente documento della base di conoscenza in una o due frasi in italiano."},
		{Role: User, Content: "TITOLO: " + title + "\nTESTO: " + text},
	}}
}

// BuildKeywordsPrompt asks for a keyword list (index enrichment, and the
// HSS-KT / HSS-KTC experiments of Table 4).
func BuildKeywordsPrompt(title, content string) Request {
	text := title
	if content != "" {
		text += "\n" + content
	}
	return Request{Messages: []Message{
		{Role: System, Content: "Estrai le parole chiave più rappresentative dal seguente testo, separate da virgola."},
		{Role: User, Content: text},
	}}
}

// BuildRelatedQueriesPrompt asks for n related queries (the MQ1/MQ2
// query-expansion variants of Table 3).
func BuildRelatedQueriesPrompt(question string, n int) Request {
	return Request{Messages: []Message{
		{Role: System, Content: fmt.Sprintf("Genera %d domande correlate alla domanda dell'utente, una per riga, in italiano.", n)},
		{Role: User, Content: questionMarker + " " + question},
	}}
}

// BuildDirectAnswerPrompt asks for an answer with no supporting context
// (the QGA query-expansion variant of Table 3: the generated answer is
// appended to the query before retrieval).
func BuildDirectAnswerPrompt(question string) Request {
	return Request{Messages: []Message{
		{Role: System, Content: "Rispondi alla seguente domanda senza alcun contesto, usando le tue conoscenze generali. Rispondi in italiano."},
		{Role: User, Content: questionMarker + " " + question},
	}}
}

// Exchange is one past conversation turn handed to the rewrite prompt:
// what the user asked and what the assistant answered.
type Exchange struct {
	Question string
	Answer   string
}

// historyMarker introduces the serialized conversation history in the
// rewrite prompt, the way contextMarker introduces retrieved chunks.
const historyMarker = "STORIA:"

// rewriteSystemPrompt is the history-aware query-rewriting task: given the
// conversation so far and the user's latest (possibly elliptical or
// anaphoric) question, produce a single standalone question for retrieval.
const rewriteSystemPrompt = `Riscrivi la domanda dell'utente come una domanda autonoma e completa, risolvendo pronomi ed ellissi usando la conversazione precedente.
Rispondi con la sola domanda riscritta, senza spiegazioni, in italiano.`

// BuildRewritePrompt constructs the history-aware rewrite request: the
// conversation so far (question/answer pairs, oldest first) and the new
// question. With an empty history the rewrite is the identity; callers
// skip the call entirely in that case.
func BuildRewritePrompt(history []Exchange, question string) Request {
	var b strings.Builder
	b.WriteString(historyMarker)
	b.WriteByte('\n')
	for _, ex := range history {
		b.WriteString("U: ")
		b.WriteString(ex.Question)
		b.WriteByte('\n')
		if ex.Answer != "" {
			b.WriteString("A: ")
			b.WriteString(ex.Answer)
			b.WriteByte('\n')
		}
	}
	b.WriteString("\n")
	b.WriteString(questionMarker)
	b.WriteByte(' ')
	b.WriteString(question)
	return Request{Messages: []Message{
		{Role: System, Content: rewriteSystemPrompt},
		{Role: User, Content: b.String()},
	}}
}

// parseHistory extracts the serialized conversation turns from a rewrite
// prompt (the inverse of BuildRewritePrompt's encoding).
func parseHistory(req Request) []Exchange {
	var out []Exchange
	for _, m := range req.Messages {
		i := strings.Index(m.Content, historyMarker)
		if i < 0 {
			continue
		}
		rest := m.Content[i+len(historyMarker):]
		if j := strings.LastIndex(rest, questionMarker); j >= 0 {
			rest = rest[:j]
		}
		for _, line := range strings.Split(rest, "\n") {
			line = strings.TrimSpace(line)
			switch {
			case strings.HasPrefix(line, "U: "):
				out = append(out, Exchange{Question: strings.TrimPrefix(line, "U: ")})
			case strings.HasPrefix(line, "A: ") && len(out) > 0:
				out[len(out)-1].Answer = strings.TrimPrefix(line, "A: ")
			}
		}
	}
	return out
}

// promptText concatenates all message contents (for token accounting and
// parsing).
func promptText(req Request) string {
	var b strings.Builder
	for _, m := range req.Messages {
		b.WriteString(m.Content)
		b.WriteByte('\n')
	}
	return b.String()
}

// parseQuestion extracts the question following the question marker.
func parseQuestion(req Request) (string, bool) {
	for _, m := range req.Messages {
		if i := strings.LastIndex(m.Content, questionMarker); i >= 0 {
			return strings.TrimSpace(m.Content[i+len(questionMarker):]), true
		}
	}
	return "", false
}

// parseContext extracts the JSON context chunks, if present.
func parseContext(req Request) ([]ContextChunk, bool) {
	for _, m := range req.Messages {
		i := strings.Index(m.Content, contextMarker)
		if i < 0 {
			continue
		}
		rest := m.Content[i+len(contextMarker):]
		start := strings.Index(rest, "[")
		if start < 0 {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(rest[start:]))
		var chunks []ContextChunk
		if err := dec.Decode(&chunks); err != nil {
			continue
		}
		return chunks, true
	}
	return nil, false
}

// taskOf classifies a request by its system prompt, mirroring how the real
// deployment routes different prompt templates to the same model.
type task int

const (
	taskUnknown task = iota
	taskAnswer
	taskSummary
	taskKeywords
	taskRelated
	taskDirect
	taskGroundedness
	taskRewrite
)

func taskOf(req Request) task {
	for _, m := range req.Messages {
		if m.Role != System {
			continue
		}
		switch {
		case strings.Contains(m.Content, "assistente virtuale per i dipendenti"):
			return taskAnswer
		case strings.HasPrefix(m.Content, "Riassumi il seguente documento"):
			return taskSummary
		case strings.HasPrefix(m.Content, "Estrai le parole chiave"):
			return taskKeywords
		case strings.HasPrefix(m.Content, "Genera "):
			return taskRelated
		case strings.HasPrefix(m.Content, "Rispondi alla seguente domanda senza alcun contesto"):
			return taskDirect
		case strings.HasPrefix(m.Content, "Valuta la groundedness"):
			return taskGroundedness
		case strings.HasPrefix(m.Content, "Riscrivi la domanda"):
			return taskRewrite
		}
	}
	return taskUnknown
}
