// Package llm provides the large-language-model substrate of UniAsk. The
// production system calls gpt-3.5-turbo through a chat-completion API for
// four tasks: grounded answer generation, document summarization, keyword
// extraction and related-query generation (the query-expansion variants).
//
// The substitute is SimLLM, a deterministic seeded simulator that performs
// each task with classical NLP over the prompt content: it extracts and
// cites the context sentences most relevant to the question, refuses when
// the context carries no signal, and injects the paper-calibrated failure
// modes (missing citations, off-context drift, clarification requests) that
// the guardrail experiments measure. Everything downstream — prompt
// construction, citation parsing, guardrails, rate limiting, load testing —
// is exercised exactly as with a hosted model.
package llm

import (
	"context"
	"errors"
)

// Role identifies a chat message author.
type Role string

// Chat roles.
const (
	System    Role = "system"
	User      Role = "user"
	Assistant Role = "assistant"
)

// Message is one chat-completion message.
type Message struct {
	Role    Role
	Content string
}

// Request is a chat-completion request.
type Request struct {
	// Messages is the conversation so far.
	Messages []Message
	// MaxTokens caps the completion length (0 = default 1024).
	MaxTokens int
	// Temperature is accepted for interface fidelity; SimLLM is
	// deterministic regardless.
	Temperature float64
}

// Response is a chat-completion response.
type Response struct {
	// Content is the generated text.
	Content string
	// PromptTokens and CompletionTokens report usage for rate limiting.
	PromptTokens     int
	CompletionTokens int
	// FinishReason is "stop" or "length".
	FinishReason string
}

// Client is the chat-completion interface (the shape of the Azure OpenAI
// chat API UniAsk calls).
type Client interface {
	Complete(ctx context.Context, req Request) (Response, error)
}

// ErrRateLimited is returned when the service-level token rate limit is
// exhausted (HTTP 429 equivalent).
var ErrRateLimited = errors.New("llm: rate limited")

// ErrEmptyPrompt is returned for a request with no messages.
var ErrEmptyPrompt = errors.New("llm: empty prompt")
