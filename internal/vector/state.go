package vector

// Pooled search state. Every HNSW search needs a visited set, a frontier
// min-heap, a bounded result max-heap, a quantized query buffer and a
// rescoring scratch. All five live in one searchState recycled through a
// sync.Pool per index, so a steady-state search allocates nothing beyond
// the caller-visible result slice.
//
// The visited set is an epoch-stamped []uint32 indexed by node ordinal:
// visited[n] == epoch means "seen this search". Bumping the epoch resets
// the whole set in O(1); the array is only zeroed when the uint32 epoch
// wraps (once per ~4 billion searches on one pooled state).

// qItem is one heap entry: a node ordinal and its sort key. The key is the
// traversal distance — exact float32 cosine distance on the float path, or
// the negated int8 dot product on the quantized path (an int32 dot of
// unit-scale int8 vectors stays below 2^24 for dims up to ~1000, so it is
// exactly representable as a float32).
type qItem struct {
	node int32
	key  float32
}

type searchState struct {
	visited []uint32
	epoch   uint32
	cand    []qItem // frontier: min-heap, closest first
	res     []qItem // best ef so far: max-heap, farthest at root
	qq      []int8  // quantized query
	rescore []Result
}

// begin prepares the state for a search over n nodes.
func (st *searchState) begin(n int) {
	if len(st.visited) < n {
		st.visited = make([]uint32, n+n/2+8)
		st.epoch = 0
	}
	st.epoch++
	if st.epoch == 0 { // wrapped: stale stamps could collide, zero once
		for i := range st.visited {
			st.visited[i] = 0
		}
		st.epoch = 1
	}
	st.cand = st.cand[:0]
	st.res = st.res[:0]
	st.rescore = st.rescore[:0]
}

func (st *searchState) seen(n int32) bool { return st.visited[n] == st.epoch }
func (st *searchState) mark(n int32)      { st.visited[n] = st.epoch }

// pushMin/popMin maintain the frontier min-heap (smallest key at root).
func pushMin(h *[]qItem, it qItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].key <= s[i].key {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func popMin(h *[]qItem) qItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && s[l].key < s[small].key {
			small = l
		}
		if r := 2*i + 2; r < n && s[r].key < s[small].key {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// pushMax/popMax maintain the result max-heap (largest key at root).
func pushMax(h *[]qItem, it qItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].key >= s[i].key {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func popMax(h *[]qItem) qItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		big := i
		if l := 2*i + 1; l < n && s[l].key > s[big].key {
			big = l
		}
		if r := 2*i + 2; r < n && s[r].key > s[big].key {
			big = r
		}
		if big == i {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	return top
}

// sortResultsInPlace orders rescored results by (distance asc, id asc)
// with an allocation-free insertion sort; the slice never exceeds ef
// elements, where insertion sort beats the sort package's overhead.
func sortResultsInPlace(rs []Result) {
	for i := 1; i < len(rs); i++ {
		r := rs[i]
		j := i - 1
		for j >= 0 && resultBefore(r, rs[j]) {
			rs[j+1] = rs[j]
			j--
		}
		rs[j+1] = r
	}
}
