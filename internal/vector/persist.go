package vector

import (
	"encoding/gob"
	"fmt"
	"io"
)

// hnswNodeSnapshot is the gob-serializable form of one graph node.
type hnswNodeSnapshot struct {
	ID    int
	Vec   Vector
	Level int
	Links [][]int32
}

// hnswSnapshot is the gob-serializable form of the whole graph.
type hnswSnapshot struct {
	Cfg    HNSWConfig
	Nodes  []hnswNodeSnapshot
	Entry  int32
	MaxLvl int
	Dim    int
}

// Save serializes the graph, including its adjacency structure, so that
// loading skips reconstruction.
func (h *HNSW) Save(w io.Writer) error {
	snap := hnswSnapshot{Cfg: h.cfg, Entry: h.entry, MaxLvl: h.maxLvl, Dim: h.dim}
	snap.Nodes = make([]hnswNodeSnapshot, len(h.nodes))
	for i, n := range h.nodes {
		snap.Nodes[i] = hnswNodeSnapshot{ID: n.id, Vec: n.vec, Level: n.level, Links: n.links}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vector: encode hnsw: %w", err)
	}
	return nil
}

// ReadHNSW deserializes a graph written by Save.
func ReadHNSW(r io.Reader) (*HNSW, error) {
	var snap hnswSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vector: decode hnsw: %w", err)
	}
	h := NewHNSW(snap.Cfg)
	h.entry = snap.Entry
	h.maxLvl = snap.MaxLvl
	h.dim = snap.Dim
	h.nodes = make([]hnswNode, len(snap.Nodes))
	for i, n := range snap.Nodes {
		h.nodes[i] = hnswNode{id: n.ID, vec: n.Vec, level: n.Level, links: n.Links}
		h.byID[n.ID] = int32(i)
	}
	return h, nil
}
