package vector

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Persistence of the flat HNSW: the arenas serialize as-is (bulk slice
// copies, no per-node structures), so Save/ReadHNSW cost is dominated by
// raw byte I/O rather than graph reconstruction.

// hnswSnapshotVersion identifies the arena snapshot layout. Version 2 is
// the first flat-arena format; version 1 (implicit, no Version field) was
// the per-node format, which ReadHNSW refuses with ErrLegacyHNSWSnapshot
// so callers can fall back to rebuilding from source vectors instead of
// silently loading an empty graph.
const hnswSnapshotVersion = 2

// ErrLegacyHNSWSnapshot is returned by ReadHNSW for pre-arena snapshots.
// Callers that still hold the original vectors (the index layer does)
// should rebuild the graph from them.
var ErrLegacyHNSWSnapshot = errors.New(
	"vector: legacy per-node hnsw snapshot; rebuild the graph from source vectors")

// hnswSnapshot is the gob-serializable image of the flat graph.
type hnswSnapshot struct {
	Version int
	Cfg     HNSWConfig
	Dim     int
	Entry   int32
	MaxLvl  int
	IDs     []int32
	Levels  []int32
	Vecs    []float32
	QVecs   []int8
	QScale  float32
	MaxAbs  float32
	Links0  []int32
	Cnt0    []int32
	UpOff   []int32
	UpNbrs  []int32
	UpCnt   []int32
}

// Save serializes the graph, including its adjacency structure and the
// quantized arena, so that loading skips both reconstruction and
// requantization.
func (h *HNSW) Save(w io.Writer) error {
	snap := hnswSnapshot{
		Version: hnswSnapshotVersion,
		Cfg:     h.cfg,
		Dim:     h.dim,
		Entry:   h.entry,
		MaxLvl:  h.maxLvl,
		IDs:     h.ids,
		Levels:  h.levels,
		Vecs:    h.vecs,
		QVecs:   h.qvecs,
		QScale:  h.qscale,
		MaxAbs:  h.maxAbs,
		Links0:  h.links0,
		Cnt0:    h.cnt0,
		UpOff:   h.upOff,
		UpNbrs:  h.upNbrs,
		UpCnt:   h.upCnt,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vector: encode hnsw: %w", err)
	}
	return nil
}

// ReadHNSW deserializes a graph written by Save, validating the arena
// invariants so corrupted bytes surface as errors rather than panics on
// the first search.
func ReadHNSW(r io.Reader) (*HNSW, error) {
	var snap hnswSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vector: decode hnsw: %w", err)
	}
	if snap.Version != hnswSnapshotVersion {
		return nil, ErrLegacyHNSWSnapshot
	}
	h := NewHNSW(snap.Cfg)
	h.dim = snap.Dim
	h.entry = snap.Entry
	h.maxLvl = snap.MaxLvl
	h.ids = snap.IDs
	h.levels = snap.Levels
	h.vecs = snap.Vecs
	h.qvecs = snap.QVecs
	h.qscale = snap.QScale
	h.maxAbs = snap.MaxAbs
	h.links0 = snap.Links0
	h.cnt0 = snap.Cnt0
	h.upOff = snap.UpOff
	h.upNbrs = snap.UpNbrs
	h.upCnt = snap.UpCnt
	if err := h.validate(); err != nil {
		return nil, fmt.Errorf("vector: hnsw snapshot: %w", err)
	}
	for i, id := range h.ids {
		h.byID[int(id)] = int32(i)
	}
	return h, nil
}

// validate checks the structural invariants of the loaded arenas.
func (h *HNSW) validate() error {
	n := len(h.ids)
	if h.dim < 0 || (n > 0 && h.dim == 0) {
		return fmt.Errorf("bad dimension %d for %d nodes", h.dim, n)
	}
	if len(h.levels) != n || len(h.cnt0) != n || len(h.upOff) != n {
		return fmt.Errorf("arena lengths disagree: %d ids, %d levels, %d cnt0, %d upOff",
			n, len(h.levels), len(h.cnt0), len(h.upOff))
	}
	if len(h.vecs) != n*h.dim || len(h.qvecs) != n*h.dim {
		return fmt.Errorf("vector arenas sized %d/%d, want %d", len(h.vecs), len(h.qvecs), n*h.dim)
	}
	if len(h.links0) != n*h.m0 {
		return fmt.Errorf("layer-0 arena sized %d, want %d", len(h.links0), n*h.m0)
	}
	if n == 0 {
		if h.entry != -1 {
			return fmt.Errorf("entry %d in empty graph", h.entry)
		}
		return nil
	}
	if h.entry < 0 || int(h.entry) >= n {
		return fmt.Errorf("entry %d out of range [0,%d)", h.entry, n)
	}
	upSlots := 0
	for i := 0; i < n; i++ {
		lvl := int(h.levels[i])
		if lvl < 0 || lvl > h.maxLvl {
			return fmt.Errorf("node %d level %d outside [0,%d]", i, lvl, h.maxLvl)
		}
		if c := h.cnt0[i]; c < 0 || int(c) > h.m0 {
			return fmt.Errorf("node %d layer-0 degree %d outside [0,%d]", i, c, h.m0)
		}
		if lvl == 0 {
			if h.upOff[i] != -1 {
				return fmt.Errorf("level-0 node %d has upper offset %d", i, h.upOff[i])
			}
		} else {
			if int(h.upOff[i]) != upSlots {
				return fmt.Errorf("node %d upper offset %d, want %d", i, h.upOff[i], upSlots)
			}
			upSlots += lvl
		}
	}
	if len(h.upCnt) != upSlots || len(h.upNbrs) != upSlots*h.cfg.M {
		return fmt.Errorf("upper arenas sized %d/%d, want %d/%d",
			len(h.upCnt), len(h.upNbrs), upSlots, upSlots*h.cfg.M)
	}
	for i, c := range h.upCnt {
		if c < 0 || int(c) > h.cfg.M {
			return fmt.Errorf("upper slot %d degree %d outside [0,%d]", i, c, h.cfg.M)
		}
	}
	for i, t := range h.links0 {
		if t < 0 || int(t) >= n {
			if i%h.m0 < int(h.cnt0[i/h.m0]) { // only live slots matter
				return fmt.Errorf("layer-0 link %d targets %d outside [0,%d)", i, t, n)
			}
		}
	}
	for i, t := range h.upNbrs {
		if t < 0 || int(t) >= n {
			if i%h.cfg.M < int(h.upCnt[i/h.cfg.M]) {
				return fmt.Errorf("upper link %d targets %d outside [0,%d)", i, t, n)
			}
		}
	}
	return nil
}
