//go:build race

package vector

// raceEnabled reports whether the race detector is on; its instrumentation
// allocates, so the tight allocation pins skip under -race.
const raceEnabled = true
