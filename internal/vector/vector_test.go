package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return Normalize(v)
}

func TestDotAndNorm(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{0, 1, 0}
	if Dot(a, b) != 0 {
		t.Fatal("orthogonal dot != 0")
	}
	if Norm(Vector{3, 4}) != 5 {
		t.Fatal("norm of (3,4) != 5")
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize(Vector{3, 4})
	if math.Abs(float64(Norm(v))-1) > 1e-6 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := Normalize(Vector{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector changed")
	}
}

func TestCosine(t *testing.T) {
	if c := Cosine(Vector{1, 0}, Vector{1, 0}); math.Abs(float64(c)-1) > 1e-6 {
		t.Fatalf("cos(same) = %v", c)
	}
	if c := Cosine(Vector{1, 0}, Vector{-1, 0}); math.Abs(float64(c)+1) > 1e-6 {
		t.Fatalf("cos(opposite) = %v", c)
	}
	if c := Cosine(Vector{0, 0}, Vector{1, 0}); c != 0 {
		t.Fatalf("cos(zero) = %v", c)
	}
}

func TestExhaustiveExactOrder(t *testing.T) {
	e := NewExhaustive()
	vs := []Vector{{1, 0}, {0.9, 0.1}, {0, 1}, {-1, 0}}
	for i, v := range vs {
		if err := e.Add(i, Normalize(v)); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Search(Vector{1, 0}, 4)
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	wantOrder := []int{0, 1, 2, 3}
	for i, w := range wantOrder {
		if res[i].ID != w {
			t.Fatalf("order = %v", res)
		}
	}
}

func TestExhaustiveDuplicateID(t *testing.T) {
	e := NewExhaustive()
	if err := e.Add(1, Vector{1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(1, Vector{1}); err != ErrDuplicateID {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestExhaustiveDimensionMismatch(t *testing.T) {
	e := NewExhaustive()
	if err := e.Add(1, Vector{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(2, Vector{1}); err != ErrDimensionMismatch {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestExhaustiveKLargerThanIndex(t *testing.T) {
	e := NewExhaustive()
	e.Add(1, Vector{1, 0})
	if got := e.Search(Vector{1, 0}, 10); len(got) != 1 {
		t.Fatalf("got %d results, want 1", len(got))
	}
	if got := e.Search(Vector{1, 0}, 0); got != nil {
		t.Fatalf("k=0 should return nil")
	}
}

func TestHNSWEmpty(t *testing.T) {
	h := NewHNSW(HNSWConfig{Seed: 1})
	if got := h.Search(Vector{1, 0}, 5); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
	if h.Len() != 0 {
		t.Fatal("Len != 0")
	}
}

func TestHNSWSingle(t *testing.T) {
	h := NewHNSW(HNSWConfig{Seed: 1})
	h.Add(42, Normalize(Vector{1, 2, 3}))
	res := h.Search(Normalize(Vector{1, 2, 3}), 3)
	if len(res) != 1 || res[0].ID != 42 {
		t.Fatalf("res = %v", res)
	}
	if res[0].Distance > 1e-6 {
		t.Fatalf("self distance = %v", res[0].Distance)
	}
}

func TestHNSWDuplicateID(t *testing.T) {
	h := NewHNSW(HNSWConfig{Seed: 1})
	h.Add(1, Vector{1, 0})
	if err := h.Add(1, Vector{0, 1}); err != ErrDuplicateID {
		t.Fatalf("err = %v", err)
	}
}

func TestHNSWDimensionMismatch(t *testing.T) {
	h := NewHNSW(HNSWConfig{Seed: 1})
	h.Add(1, Vector{1, 0})
	if err := h.Add(2, Vector{1, 0, 0}); err != ErrDimensionMismatch {
		t.Fatalf("err = %v", err)
	}
}

// recallAtK measures HNSW recall against exhaustive ground truth.
func recallAtK(t *testing.T, n, dim, k, queries int, cfg HNSWConfig) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	h := NewHNSW(cfg)
	e := NewExhaustive()
	for i := 0; i < n; i++ {
		v := randVec(rng, dim)
		if err := h.Add(i, v); err != nil {
			t.Fatal(err)
		}
		if err := e.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	hits, total := 0, 0
	for q := 0; q < queries; q++ {
		qv := randVec(rng, dim)
		truth := e.Search(qv, k)
		approx := h.Search(qv, k)
		truthSet := make(map[int]bool, k)
		for _, r := range truth {
			truthSet[r.ID] = true
		}
		for _, r := range approx {
			if truthSet[r.ID] {
				hits++
			}
		}
		total += len(truth)
	}
	return float64(hits) / float64(total)
}

func TestHNSWRecallMatchesExhaustive(t *testing.T) {
	// The paper observes HNSW ≈ exhaustive k-NN; require recall ≥ 0.9 on a
	// random workload.
	rec := recallAtK(t, 2000, 32, 10, 50, HNSWConfig{M: 16, EfConstruction: 200, EfSearch: 128, Seed: 3})
	if rec < 0.9 {
		t.Fatalf("HNSW recall@10 = %.3f, want >= 0.9", rec)
	}
}

func TestHNSWResultsSortedAndUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHNSW(HNSWConfig{Seed: 5})
	for i := 0; i < 500; i++ {
		h.Add(i, randVec(rng, 16))
	}
	res := h.Search(randVec(rng, 16), 20)
	seen := make(map[int]bool)
	for i, r := range res {
		if seen[r.ID] {
			t.Fatalf("duplicate id %d in results", r.ID)
		}
		seen[r.ID] = true
		if i > 0 && res[i-1].Distance > r.Distance+1e-6 {
			t.Fatalf("results not sorted: %v", res)
		}
	}
}

func TestHNSWDeterministic(t *testing.T) {
	build := func() []Result {
		rng := rand.New(rand.NewSource(13))
		h := NewHNSW(HNSWConfig{Seed: 99})
		for i := 0; i < 300; i++ {
			h.Add(i, randVec(rng, 8))
		}
		return h.Search(randVec(rng, 8), 10)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("nondeterministic result count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic results: %v vs %v", a, b)
		}
	}
}

func TestHNSWGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := NewHNSW(HNSWConfig{M: 8, Seed: 21})
	for i := 0; i < 1000; i++ {
		h.Add(i, randVec(rng, 16))
	}
	if h.MaxLevel() < 1 {
		t.Errorf("max level = %d, expected hierarchy", h.MaxLevel())
	}
	if d := h.AvgDegree(); d == 0 || d > 16.5 {
		t.Errorf("layer-0 avg degree = %.1f, want in (0, 2*M]", d)
	}
}

// Property: exhaustive search returns results sorted by distance for random
// data.
func TestExhaustiveSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r2 := rand.New(rand.NewSource(seed))
		e := NewExhaustive()
		n := 5 + r2.Intn(50)
		for i := 0; i < n; i++ {
			e.Add(i, randVec(rng, 8))
		}
		res := e.Search(randVec(rng, 8), n)
		for i := 1; i < len(res); i++ {
			if res[i-1].Distance > res[i].Distance {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	h := NewHNSW(HNSWConfig{Seed: 7})
	for i := 0; i < 10000; i++ {
		h.Add(i, randVec(rng, 64))
	}
	q := randVec(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Search(q, 15)
	}
}

func BenchmarkExhaustiveSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	e := NewExhaustive()
	for i := 0; i < 10000; i++ {
		e.Add(i, randVec(rng, 64))
	}
	q := randVec(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(q, 15)
	}
}
