package vector

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// HNSWConfig holds the construction parameters of an HNSW graph.
type HNSWConfig struct {
	// M is the maximum number of bidirectional links per node on layers
	// above 0; layer 0 allows 2*M. Default 16 (the Azure AI Search default).
	M int
	// EfConstruction is the size of the candidate list during insertion.
	// Default 200.
	EfConstruction int
	// EfSearch is the default size of the candidate list during search; it
	// is raised to k when k is larger. Default 64.
	EfSearch int
	// Seed drives the level generator so index construction is
	// deterministic.
	Seed int64
	// DisableQuantization makes search traverse the float32 arena instead
	// of the int8 quantized one. Traversal distances are then exact, at
	// ~4× the memory bandwidth; the rescoring pass still runs so results
	// are identical in format and tie order.
	DisableQuantization bool
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

// HNSW is a Hierarchical Navigable Small World graph for approximate
// nearest-neighbor search under cosine distance.
//
// The graph is stored flat, hnswlib-style, with no per-node heap objects:
//
//   - vecs is one contiguous float32 arena (node n's unit vector occupies
//     vecs[n*dim : (n+1)*dim]); qvecs is its int8 scalar-quantized shadow
//     (see quantize.go).
//   - Layer-0 adjacency is a fixed-stride arena: node n owns the 2M-slot
//     block links0[n*2M : (n+1)*2M], of which the first cnt0[n] are live.
//   - Upper-layer adjacency is allocated per node on insert: a node of
//     level L owns L consecutive slots starting at upOff[n] (one per layer
//     1..L), each slot being M int32 neighbor entries in upNbrs with its
//     live count in upCnt. Level-0 nodes store upOff[n] = -1.
//
// Writes (Add) are not safe concurrently with anything; searches are safe
// concurrently with each other. The index layer above serializes Add under
// its write lock.
type HNSW struct {
	cfg    HNSWConfig
	byID   map[int]int32 // external id -> node ordinal
	entry  int32         // entry point ordinal (-1 when empty)
	maxLvl int
	rng    *rand.Rand
	levelM float64 // 1/ln(M): the level-assignment normalizer from the paper
	dim    int
	m0     int // 2*M, the layer-0 block stride

	ids    []int32 // node ordinal -> external id
	levels []int32
	vecs   []float32
	qvecs  []int8
	qscale float32 // 127/maxAbs; 0 until a nonzero vector is stored
	maxAbs float32

	links0 []int32
	cnt0   []int32
	upOff  []int32
	upNbrs []int32
	upCnt  []int32

	// Construction scratch (Add is externally serialized, so these are
	// plain fields rather than pooled).
	cst       searchState
	eps       []int32
	layerBuf  []int32
	nbrSel    []int32
	linkBuf   []int32
	shrinkSel []int32
	cds       []candDist
	disc      []int32

	statePool sync.Pool
}

// candDist pairs a candidate ordinal with its distance during neighbor
// selection.
type candDist struct {
	node int32
	dist float32
}

// NewHNSW creates an empty HNSW index with the given configuration.
func NewHNSW(cfg HNSWConfig) *HNSW {
	cfg = cfg.withDefaults()
	return &HNSW{
		cfg:    cfg,
		byID:   make(map[int]int32),
		entry:  -1,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		levelM: 1 / math.Log(float64(cfg.M)),
		m0:     2 * cfg.M,
	}
}

// Len implements Index.
func (h *HNSW) Len() int { return len(h.ids) }

// Arena views.
func (h *HNSW) vec(n int32) []float32 {
	s := int(n) * h.dim
	return h.vecs[s : s+h.dim]
}

func (h *HNSW) qvec(n int32) []int8 {
	s := int(n) * h.dim
	return h.qvecs[s : s+h.dim]
}

func (h *HNSW) neighbors0(n int32) []int32 {
	s := int(n) * h.m0
	return h.links0[s : s+int(h.cnt0[n])]
}

func (h *HNSW) neighborsUp(n int32, l int) []int32 {
	slot := int(h.upOff[n]) + l - 1
	s := slot * h.cfg.M
	return h.upNbrs[s : s+int(h.upCnt[slot])]
}

func (h *HNSW) layerNeighbors(n int32, l int) []int32 {
	if l == 0 {
		return h.neighbors0(n)
	}
	return h.neighborsUp(n, l)
}

// setLinks overwrites node n's neighbor list at layer l.
func (h *HNSW) setLinks(n int32, l int, nbrs []int32) {
	if l == 0 {
		copy(h.links0[int(n)*h.m0:], nbrs)
		h.cnt0[n] = int32(len(nbrs))
		return
	}
	slot := int(h.upOff[n]) + l - 1
	copy(h.upNbrs[slot*h.cfg.M:], nbrs)
	h.upCnt[slot] = int32(len(nbrs))
}

// addLink appends nb to node n's neighbors at layer l, re-selecting the
// best maxM links with the insertion heuristic when the block is full.
func (h *HNSW) addLink(n int32, l int, nb int32) {
	maxM := h.maxM(l)
	if l == 0 {
		if cnt := int(h.cnt0[n]); cnt < maxM {
			h.links0[int(n)*h.m0+cnt] = nb
			h.cnt0[n]++
			return
		}
	} else {
		slot := int(h.upOff[n]) + l - 1
		if cnt := int(h.upCnt[slot]); cnt < maxM {
			h.upNbrs[slot*h.cfg.M+cnt] = nb
			h.upCnt[slot]++
			return
		}
	}
	h.linkBuf = append(h.linkBuf[:0], h.layerNeighbors(n, l)...)
	h.linkBuf = append(h.linkBuf, nb)
	h.shrinkSel = h.selectHeuristicInto(h.shrinkSel[:0], h.vec(n), h.linkBuf, maxM)
	h.setLinks(n, l, h.shrinkSel)
}

// randomLevel draws a node level from the exponential distribution of the
// HNSW paper: floor(-ln(U) * mL).
func (h *HNSW) randomLevel() int {
	u := h.rng.Float64()
	for u == 0 {
		u = h.rng.Float64()
	}
	return int(-math.Log(u) * h.levelM)
}

// Add implements Index. The vector is copied into the arena and normalized
// on insertion: cosine distance is invariant to scaling, and unit-length
// storage turns every distance evaluation into a single dot product.
// Construction walks the float32 arena (exact distances, off the query hot
// path); only searches use the quantized shadow.
func (h *HNSW) Add(id int, v Vector) error {
	if int64(id) != int64(int32(id)) {
		return ErrIDOutOfRange
	}
	if _, dup := h.byID[id]; dup {
		return ErrDuplicateID
	}
	if h.dim == 0 {
		h.dim = len(v)
	} else if len(v) != h.dim {
		return ErrDimensionMismatch
	}
	level := h.randomLevel()
	idx := int32(len(h.ids))

	start := len(h.vecs)
	h.vecs = append(h.vecs, v...)
	nv := h.vecs[start:]
	normalizeF(nv)
	if m := maxAbsF(nv); m > h.maxAbs {
		// A new largest component: requantize the arena under the new
		// scale so the quantized shadow stays a pure function of the
		// stored vector set (insertion-order independent).
		h.maxAbs = m
		h.qscale = quantMax / m
		h.qvecs = h.qvecs[:0]
		for i := 0; i < len(h.ids); i++ {
			h.qvecs = quantizeInto(h.qvecs, h.vec(int32(i)), h.qscale)
		}
	}
	h.qvecs = quantizeInto(h.qvecs, nv, h.qscale)

	h.ids = append(h.ids, int32(id))
	h.levels = append(h.levels, int32(level))
	for i := 0; i < h.m0; i++ {
		h.links0 = append(h.links0, 0)
	}
	h.cnt0 = append(h.cnt0, 0)
	if level > 0 {
		h.upOff = append(h.upOff, int32(len(h.upCnt)))
		for i := 0; i < level; i++ {
			h.upCnt = append(h.upCnt, 0)
			for j := 0; j < h.cfg.M; j++ {
				h.upNbrs = append(h.upNbrs, 0)
			}
		}
	} else {
		h.upOff = append(h.upOff, -1)
	}
	h.byID[id] = idx

	if h.entry < 0 {
		h.entry = idx
		h.maxLvl = level
		return nil
	}

	q := h.vec(idx)
	ep := h.entry
	// Greedy descent through layers above the new node's level.
	for l := h.maxLvl; l > level; l-- {
		ep = h.greedyF(q, ep, l)
	}
	// Insert with neighbor selection from min(level, maxLvl) down to 0.
	top := level
	if top > h.maxLvl {
		top = h.maxLvl
	}
	h.eps = append(h.eps[:0], ep)
	for l := top; l >= 0; l-- {
		cand := h.searchLayerF(q, h.eps, h.cfg.EfConstruction, l)
		h.nbrSel = h.selectHeuristicInto(h.nbrSel[:0], q, cand, h.maxM(l))
		h.setLinks(idx, l, h.nbrSel)
		for _, n := range h.nbrSel {
			h.addLink(n, l, idx)
		}
		h.eps = append(h.eps[:0], cand...)
	}
	if level > h.maxLvl {
		h.maxLvl = level
		h.entry = idx
	}
	return nil
}

func (h *HNSW) maxM(layer int) int {
	if layer == 0 {
		return h.m0
	}
	return h.cfg.M
}

// greedyF walks layer l greedily from ep toward q over the float32 arena
// and returns the local minimum.
func (h *HNSW) greedyF(q []float32, ep int32, l int) int32 {
	best := ep
	bestD := 1 - dotF(q, h.vec(ep))
	for {
		improved := false
		for _, n := range h.layerNeighbors(best, l) {
			if d := 1 - dotF(q, h.vec(n)); d < bestD {
				best, bestD = n, d
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

// greedyQ is greedyF over the quantized arena (int32 keys, no float
// conversion needed for a strict descent).
func (h *HNSW) greedyQ(qq []int8, ep int32, l int) int32 {
	best := ep
	bestD := -dotQ(qq, h.qvec(ep))
	for {
		improved := false
		for _, n := range h.layerNeighbors(best, l) {
			if d := -dotQ(qq, h.qvec(n)); d < bestD {
				best, bestD = n, d
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

// searchLayerF is Algorithm 2 of the HNSW paper over the float32 arena:
// beam search with candidate list size ef at layer l, starting from entry
// points eps. It returns up to ef node ordinals ordered from closest to
// farthest, valid until the next construction call (shared scratch).
func (h *HNSW) searchLayerF(q []float32, eps []int32, ef, l int) []int32 {
	st := &h.cst
	st.begin(len(h.ids))
	for _, ep := range eps {
		if st.seen(ep) {
			continue
		}
		st.mark(ep)
		d := 1 - dotF(q, h.vec(ep))
		pushMin(&st.cand, qItem{ep, d})
		pushMax(&st.res, qItem{ep, d})
	}
	for len(st.cand) > 0 {
		c := popMin(&st.cand)
		if len(st.res) >= ef && c.key > st.res[0].key {
			break
		}
		for _, n := range h.layerNeighbors(c.node, l) {
			if st.seen(n) {
				continue
			}
			st.mark(n)
			d := 1 - dotF(q, h.vec(n))
			if len(st.res) < ef || d < st.res[0].key {
				pushMin(&st.cand, qItem{n, d})
				pushMax(&st.res, qItem{n, d})
				if len(st.res) > ef {
					popMax(&st.res)
				}
			}
		}
	}
	n := len(st.res)
	if cap(h.layerBuf) < n {
		h.layerBuf = make([]int32, n, n+n/2+8)
	}
	h.layerBuf = h.layerBuf[:n]
	for i := n - 1; i >= 0; i-- {
		h.layerBuf[i] = popMax(&st.res).node
	}
	return h.layerBuf
}

// selectHeuristicInto is Algorithm 4 (select-neighbors-heuristic): it keeps
// a candidate only if it is closer to q than to every already-selected
// neighbor, producing diverse links that preserve graph navigability. The
// selection is appended to dst (typically a reused scratch slice).
func (h *HNSW) selectHeuristicInto(dst []int32, q []float32, cand []int32, m int) []int32 {
	if len(cand) <= m {
		return append(dst, cand...)
	}
	h.cds = h.cds[:0]
	for _, c := range cand {
		h.cds = append(h.cds, candDist{c, 1 - dotF(q, h.vec(c))})
	}
	sort.Slice(h.cds, func(i, j int) bool { return h.cds[i].dist < h.cds[j].dist })

	selected := dst
	h.disc = h.disc[:0]
	for _, c := range h.cds {
		if len(selected) >= m {
			break
		}
		good := true
		for _, s := range selected {
			if 1-dotF(h.vec(c.node), h.vec(s)) < c.dist {
				good = false
				break
			}
		}
		if good {
			selected = append(selected, c.node)
		} else {
			h.disc = append(h.disc, c.node)
		}
	}
	// keepPruned: fill remaining slots with the closest discarded nodes.
	for _, c := range h.disc {
		if len(selected) >= m {
			break
		}
		selected = append(selected, c)
	}
	return selected
}

// getState checks a pooled search state out for one query.
func (h *HNSW) getState() *searchState {
	st, _ := h.statePool.Get().(*searchState)
	if st == nil {
		st = &searchState{}
	}
	st.begin(len(h.ids))
	return st
}

// Search implements Index: beam search from the top layer down.
func (h *HNSW) Search(q Vector, k int) []Result {
	if k <= 0 || h.entry < 0 {
		return nil
	}
	q = Normalize(append(Vector(nil), q...))
	return h.SearchUnit(q, k, nil)
}

// SearchUnit implements Index. The quantized path descends the upper
// layers and runs the layer-0 beam over int8 dot products, then rescores
// every surviving candidate (at most ef) against the float32 arena and
// returns the top k under exact (distance, id) order — so quantization can
// only cost recall at the beam edge, never final-ranking precision among
// the survivors. Nodes rejected by accept still feed the frontier (the
// graph stays navigable through them) but never enter the result heap.
func (h *HNSW) SearchUnit(q Vector, k int, accept Accept) []Result {
	if k <= 0 || h.entry < 0 {
		return nil
	}
	st := h.getState()
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	if h.cfg.DisableQuantization {
		ep := h.entry
		for l := h.maxLvl; l > 0; l-- {
			ep = h.greedyF(q, ep, l)
		}
		h.beamF(st, q, ep, ef, accept)
	} else {
		st.qq = quantizeInto(st.qq[:0], q, h.qscale)
		ep := h.entry
		for l := h.maxLvl; l > 0; l-- {
			ep = h.greedyQ(st.qq, ep, l)
		}
		h.beamQ(st, ep, ef, accept)
	}
	// Rescore the survivors with exact float32 distances.
	for _, it := range st.res {
		n := it.node
		st.rescore = append(st.rescore, Result{ID: int(h.ids[n]), Distance: 1 - dotF(q, h.vec(n))})
	}
	sortResultsInPlace(st.rescore)
	if k > len(st.rescore) {
		k = len(st.rescore)
	}
	out := make([]Result, k)
	copy(out, st.rescore[:k])
	h.statePool.Put(st)
	return out
}

// beamQ runs the layer-0 beam over the quantized arena. The result heap
// keys are negated int8 dot products widened to float32 (exact for any
// realistic dimension, see qItem).
func (h *HNSW) beamQ(st *searchState, ep int32, ef int, accept Accept) {
	st.mark(ep)
	d := float32(-dotQ(st.qq, h.qvec(ep)))
	pushMin(&st.cand, qItem{ep, d})
	if accept == nil || accept(h.ids[ep]) {
		pushMax(&st.res, qItem{ep, d})
	}
	for len(st.cand) > 0 {
		c := popMin(&st.cand)
		if len(st.res) >= ef && c.key > st.res[0].key {
			break
		}
		for _, n := range h.neighbors0(c.node) {
			if st.seen(n) {
				continue
			}
			st.mark(n)
			d := float32(-dotQ(st.qq, h.qvec(n)))
			if len(st.res) < ef || d < st.res[0].key {
				pushMin(&st.cand, qItem{n, d})
				if accept == nil || accept(h.ids[n]) {
					pushMax(&st.res, qItem{n, d})
					if len(st.res) > ef {
						popMax(&st.res)
					}
				}
			}
		}
	}
}

// beamF is beamQ over the float32 arena (exact traversal distances).
func (h *HNSW) beamF(st *searchState, q Vector, ep int32, ef int, accept Accept) {
	st.mark(ep)
	d := 1 - dotF(q, h.vec(ep))
	pushMin(&st.cand, qItem{ep, d})
	if accept == nil || accept(h.ids[ep]) {
		pushMax(&st.res, qItem{ep, d})
	}
	for len(st.cand) > 0 {
		c := popMin(&st.cand)
		if len(st.res) >= ef && c.key > st.res[0].key {
			break
		}
		for _, n := range h.neighbors0(c.node) {
			if st.seen(n) {
				continue
			}
			st.mark(n)
			d := 1 - dotF(q, h.vec(n))
			if len(st.res) < ef || d < st.res[0].key {
				pushMin(&st.cand, qItem{n, d})
				if accept == nil || accept(h.ids[n]) {
					pushMax(&st.res, qItem{n, d})
					if len(st.res) > ef {
						popMax(&st.res)
					}
				}
			}
		}
	}
}

// MaxLevel reports the current top layer of the graph (diagnostics).
func (h *HNSW) MaxLevel() int { return h.maxLvl }

// AvgDegree reports the mean layer-0 out-degree (diagnostics).
func (h *HNSW) AvgDegree() float64 {
	if len(h.ids) == 0 {
		return 0
	}
	total := 0
	for _, c := range h.cnt0 {
		total += int(c)
	}
	return float64(total) / float64(len(h.ids))
}
