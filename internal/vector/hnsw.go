package vector

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
)

// HNSWConfig holds the construction parameters of an HNSW graph.
type HNSWConfig struct {
	// M is the maximum number of bidirectional links per node on layers
	// above 0; layer 0 allows 2*M. Default 16 (the Azure AI Search default).
	M int
	// EfConstruction is the size of the candidate list during insertion.
	// Default 200.
	EfConstruction int
	// EfSearch is the default size of the candidate list during search; it
	// is raised to k when k is larger. Default 64.
	EfSearch int
	// Seed drives the level generator so index construction is
	// deterministic.
	Seed int64
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

type hnswNode struct {
	id    int
	vec   Vector
	level int
	// links[l] is the adjacency list at layer l (internal node indexes).
	links [][]int32
}

// HNSW is a Hierarchical Navigable Small World graph for approximate
// nearest-neighbor search under cosine distance.
type HNSW struct {
	cfg    HNSWConfig
	nodes  []hnswNode
	byID   map[int]int32 // external id -> node index
	entry  int32         // entry point node index (-1 when empty)
	maxLvl int
	rng    *rand.Rand
	levelM float64 // 1/ln(M): the level-assignment normalizer from the paper
	dim    int
}

// NewHNSW creates an empty HNSW index with the given configuration.
func NewHNSW(cfg HNSWConfig) *HNSW {
	cfg = cfg.withDefaults()
	return &HNSW{
		cfg:    cfg,
		byID:   make(map[int]int32),
		entry:  -1,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		levelM: 1 / math.Log(float64(cfg.M)),
	}
}

// Len implements Index.
func (h *HNSW) Len() int { return len(h.nodes) }

// randomLevel draws a node level from the exponential distribution of the
// HNSW paper: floor(-ln(U) * mL).
func (h *HNSW) randomLevel() int {
	u := h.rng.Float64()
	for u == 0 {
		u = h.rng.Float64()
	}
	return int(-math.Log(u) * h.levelM)
}

// Add implements Index. The vector is copied and normalized on insertion:
// cosine distance is invariant to scaling, and unit-length storage turns
// every distance evaluation into a single dot product.
func (h *HNSW) Add(id int, v Vector) error {
	if _, dup := h.byID[id]; dup {
		return ErrDuplicateID
	}
	if h.dim == 0 {
		h.dim = len(v)
	} else if len(v) != h.dim {
		return ErrDimensionMismatch
	}
	v = Normalize(append(Vector(nil), v...))
	level := h.randomLevel()
	node := hnswNode{id: id, vec: v, level: level, links: make([][]int32, level+1)}
	idx := int32(len(h.nodes))
	h.nodes = append(h.nodes, node)
	h.byID[id] = idx

	if h.entry < 0 {
		h.entry = idx
		h.maxLvl = level
		return nil
	}

	ep := h.entry
	// Greedy descent through layers above the new node's level.
	for l := h.maxLvl; l > level; l-- {
		ep = h.greedyClosest(v, ep, l)
	}
	// Insert with neighbor selection from min(level, maxLvl) down to 0.
	top := level
	if top > h.maxLvl {
		top = h.maxLvl
	}
	eps := []int32{ep}
	for l := top; l >= 0; l-- {
		cand := h.searchLayer(v, eps, h.cfg.EfConstruction, l)
		neighbors := h.selectHeuristic(v, cand, h.maxM(l))
		h.nodes[idx].links[l] = neighbors
		for _, n := range neighbors {
			h.nodes[n].links[l] = append(h.nodes[n].links[l], idx)
			if len(h.nodes[n].links[l]) > h.maxM(l) {
				h.shrink(n, l)
			}
		}
		eps = cand
	}
	if level > h.maxLvl {
		h.maxLvl = level
		h.entry = idx
	}
	return nil
}

func (h *HNSW) maxM(layer int) int {
	if layer == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// shrink re-selects the best maxM neighbors of node n at layer l using the
// same heuristic used at insertion.
func (h *HNSW) shrink(n int32, l int) {
	h.nodes[n].links[l] = h.selectHeuristic(h.nodes[n].vec, h.nodes[n].links[l], h.maxM(l))
}

// greedyClosest walks layer l greedily from ep toward q and returns the
// local minimum.
func (h *HNSW) greedyClosest(q Vector, ep int32, l int) int32 {
	best := ep
	bestD := unitDistance(q, h.nodes[ep].vec)
	for {
		improved := false
		for _, n := range h.nodes[best].links[l] {
			if d := unitDistance(q, h.nodes[n].vec); d < bestD {
				best, bestD = n, d
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

// distHeap is a heap of (node, distance) pairs; min or max order by sign.
type distItem struct {
	node int32
	dist float32
}

type minHeap []distItem

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type maxHeap []distItem

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// searchLayer is Algorithm 2 of the HNSW paper: beam search with candidate
// list size ef at layer l, starting from entry points eps. It returns up to
// ef node indexes ordered from closest to farthest.
func (h *HNSW) searchLayer(q Vector, eps []int32, ef, l int) []int32 {
	visited := make(map[int32]bool, ef*4)
	var candidates minHeap // frontier, closest first
	var results maxHeap    // best ef found, farthest on top

	for _, ep := range eps {
		if visited[ep] {
			continue
		}
		visited[ep] = true
		d := unitDistance(q, h.nodes[ep].vec)
		heap.Push(&candidates, distItem{ep, d})
		heap.Push(&results, distItem{ep, d})
	}
	for candidates.Len() > 0 {
		c := heap.Pop(&candidates).(distItem)
		if results.Len() >= ef && c.dist > results[0].dist {
			break
		}
		for _, n := range h.nodes[c.node].links[l] {
			if visited[n] {
				continue
			}
			visited[n] = true
			d := unitDistance(q, h.nodes[n].vec)
			if results.Len() < ef || d < results[0].dist {
				heap.Push(&candidates, distItem{n, d})
				heap.Push(&results, distItem{n, d})
				if results.Len() > ef {
					heap.Pop(&results)
				}
			}
		}
	}
	out := make([]int32, results.Len())
	dists := make([]float32, results.Len())
	for i := results.Len() - 1; i >= 0; i-- {
		it := heap.Pop(&results).(distItem)
		out[i] = it.node
		dists[i] = it.dist
	}
	return out
}

// selectHeuristic is Algorithm 4 (select-neighbors-heuristic): it keeps a
// candidate only if it is closer to q than to every already-selected
// neighbor, producing diverse links that preserve graph navigability.
func (h *HNSW) selectHeuristic(q Vector, cand []int32, m int) []int32 {
	if len(cand) <= m {
		out := make([]int32, len(cand))
		copy(out, cand)
		return out
	}
	type cd struct {
		node int32
		dist float32
	}
	cds := make([]cd, len(cand))
	for i, c := range cand {
		cds[i] = cd{c, unitDistance(q, h.nodes[c].vec)}
	}
	sort.Slice(cds, func(i, j int) bool { return cds[i].dist < cds[j].dist })

	var selected []int32
	var discarded []cd
	for _, c := range cds {
		if len(selected) >= m {
			break
		}
		good := true
		for _, s := range selected {
			if unitDistance(h.nodes[c.node].vec, h.nodes[s].vec) < c.dist {
				good = false
				break
			}
		}
		if good {
			selected = append(selected, c.node)
		} else {
			discarded = append(discarded, c)
		}
	}
	// keepPruned: fill remaining slots with the closest discarded nodes.
	for _, c := range discarded {
		if len(selected) >= m {
			break
		}
		selected = append(selected, c.node)
	}
	return selected
}

// Search implements Index: beam search from the top layer down.
func (h *HNSW) Search(q Vector, k int) []Result {
	if k <= 0 || h.entry < 0 {
		return nil
	}
	q = Normalize(append(Vector(nil), q...))
	ep := h.entry
	for l := h.maxLvl; l > 0; l-- {
		ep = h.greedyClosest(q, ep, l)
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	nodes := h.searchLayer(q, []int32{ep}, ef, 0)
	if k > len(nodes) {
		k = len(nodes)
	}
	out := make([]Result, k)
	for i := 0; i < k; i++ {
		out[i] = Result{ID: h.nodes[nodes[i]].id, Distance: unitDistance(q, h.nodes[nodes[i]].vec)}
	}
	return out
}

// MaxLevel reports the current top layer of the graph (diagnostics).
func (h *HNSW) MaxLevel() int { return h.maxLvl }

// AvgDegree reports the mean layer-0 out-degree (diagnostics).
func (h *HNSW) AvgDegree() float64 {
	if len(h.nodes) == 0 {
		return 0
	}
	total := 0
	for _, n := range h.nodes {
		total += len(n.links[0])
	}
	return float64(total) / float64(len(h.nodes))
}

// unitDistance is the cosine distance between unit-length vectors: a
// single dot product. Both the stored vectors and the search query are
// normalized before use.
func unitDistance(a, b Vector) float32 { return 1 - Dot(a, b) }
