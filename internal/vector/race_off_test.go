//go:build !race

package vector

const raceEnabled = false
