package vector

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"
)

// buildPair indexes the same n random dim-vectors into an HNSW (cfg) and an
// Exhaustive ground truth.
func buildPair(t *testing.T, n, dim int, seed int64, cfg HNSWConfig) (*HNSW, *Exhaustive, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := NewHNSW(cfg)
	e := NewExhaustive()
	for i := 0; i < n; i++ {
		v := randVec(rng, dim)
		if err := h.Add(i, v); err != nil {
			t.Fatal(err)
		}
		if err := e.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	return h, e, rng
}

// TestQuantizedRecallAt15 pins the quality bar of the int8 traversal + f32
// rescoring path: recall@15 against exhaustive ground truth must stay at
// 0.95 or better on the synthetic workload, with the same construction
// parameters the index layer uses (EfConstruction 80).
func TestQuantizedRecallAt15(t *testing.T) {
	rec := recallAtK(t, 2000, 64, 15, 50, HNSWConfig{Seed: 3, EfConstruction: 80})
	if rec < 0.95 {
		t.Fatalf("quantized HNSW recall@15 = %.3f, want >= 0.95", rec)
	}
}

// TestQuantizedMatchesFloat32Traversal verifies quantized traversal costs
// almost no recall relative to exact float32 traversal of the same graph.
func TestQuantizedMatchesFloat32Traversal(t *testing.T) {
	qRec := recallAtK(t, 2000, 64, 15, 50, HNSWConfig{Seed: 3, EfConstruction: 80})
	fRec := recallAtK(t, 2000, 64, 15, 50, HNSWConfig{Seed: 3, EfConstruction: 80, DisableQuantization: true})
	if qRec < fRec-0.02 {
		t.Fatalf("quantized recall %.3f vs float32 recall %.3f: quantization costs more than 2 points", qRec, fRec)
	}
}

// TestHNSWSearchUnitAccept drives the filter pushdown: only accepted ids
// may surface, the result is full-length despite the filter, and recall on
// the accepted subset stays high because rejected nodes keep the graph
// navigable.
func TestHNSWSearchUnitAccept(t *testing.T) {
	h, e, rng := buildPair(t, 1000, 32, 41, HNSWConfig{Seed: 9, EfConstruction: 80})
	accept := func(id int32) bool { return id%3 == 0 }
	hits, total := 0, 0
	for qi := 0; qi < 30; qi++ {
		q := randVec(rng, 32)
		truth := e.SearchUnit(q, 15, accept)
		got := h.SearchUnit(q, 15, accept)
		if len(got) != 15 {
			t.Fatalf("filtered search returned %d results, want 15", len(got))
		}
		truthSet := make(map[int]bool, len(truth))
		for _, r := range truth {
			truthSet[r.ID] = true
		}
		for _, r := range got {
			if int32(r.ID)%3 != 0 {
				t.Fatalf("result id %d violates accept predicate", r.ID)
			}
			if truthSet[r.ID] {
				hits++
			}
		}
		total += len(truth)
	}
	if rec := float64(hits) / float64(total); rec < 0.9 {
		t.Fatalf("filtered recall@15 = %.3f, want >= 0.9", rec)
	}
}

// TestHNSWSearchUnitAllocs pins the zero-alloc hot path: after the pool is
// warm, a search allocates only the caller-visible result slice.
func TestHNSWSearchUnitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the 1-alloc pin only holds un-raced")
	}
	rng := rand.New(rand.NewSource(51))
	h := NewHNSW(HNSWConfig{Seed: 7})
	for i := 0; i < 2000; i++ {
		if err := h.Add(i, randVec(rng, 64)); err != nil {
			t.Fatal(err)
		}
	}
	q := randVec(rng, 64)
	h.SearchUnit(q, 15, nil) // warm the state pool
	if n := testing.AllocsPerRun(50, func() { h.SearchUnit(q, 15, nil) }); n > 1 {
		t.Fatalf("SearchUnit allocates %.0f times per run, want <= 1 (the result slice)", n)
	}
}

// TestExhaustiveBoundedHeapMatchesFullSort cross-checks the bounded top-k
// heap against the full-sort reference order (distance asc, id asc),
// including under an accept predicate.
func TestExhaustiveBoundedHeapMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	e := NewExhaustive()
	vecs := make([]Vector, 400)
	for i := range vecs {
		vecs[i] = randVec(rng, 16)
		if err := e.Add(i, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	accepts := []Accept{nil, func(id int32) bool { return id%2 == 0 }}
	for _, accept := range accepts {
		for _, k := range []int{1, 7, 15, 400, 1000} {
			q := randVec(rng, 16)
			got := e.SearchUnit(q, k, accept)
			// Reference: exact scores of every accepted vector, insertion-
			// sorted by the canonical order, truncated to k. Re-normalize a
			// copy the same way Add does so the float arithmetic matches the
			// stored arena bit-for-bit.
			var ref []Result
			for id, v := range vecs {
				if accept != nil && !accept(int32(id)) {
					continue
				}
				w := Normalize(append(Vector(nil), v...))
				ref = append(ref, Result{ID: id, Distance: 1 - Dot(q, w)})
			}
			sortResultsInPlace(ref)
			if k < len(ref) {
				ref = ref[:k]
			}
			if len(got) != len(ref) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("k=%d: rank %d = %+v, want %+v", k, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestHNSWQuantizedSaveLoadRoundTrip verifies the arena snapshot carries
// the quantized arena byte-for-byte and the reloaded graph answers queries
// identically.
func TestHNSWQuantizedSaveLoadRoundTrip(t *testing.T) {
	h, _, rng := buildPair(t, 600, 24, 71, HNSWConfig{Seed: 15, EfConstruction: 80})
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadHNSW(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.qscale != h.qscale || g.maxAbs != h.maxAbs {
		t.Fatalf("quantization scale changed across round trip: %v/%v vs %v/%v",
			g.qscale, g.maxAbs, h.qscale, h.maxAbs)
	}
	if !bytes.Equal(int8Bytes(g.qvecs), int8Bytes(h.qvecs)) {
		t.Fatal("quantized arena not byte-identical after round trip")
	}
	for qi := 0; qi < 20; qi++ {
		q := randVec(rng, 24)
		a, b := h.SearchUnit(q, 15, nil), g.SearchUnit(q, 15, nil)
		if len(a) != len(b) {
			t.Fatalf("result count diverged: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
	if g.Len() != h.Len() || len(g.byID) != len(h.byID) {
		t.Fatalf("load dropped nodes: %d/%d ids, %d/%d byID", g.Len(), h.Len(), len(g.byID), len(h.byID))
	}
}

func int8Bytes(s []int8) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		out[i] = byte(v)
	}
	return out
}

// TestReadHNSWLegacySnapshot ensures a pre-arena snapshot is refused with
// the sentinel error (gob would otherwise decode it into an empty graph
// silently), so index.Read can fall back to rebuilding from documents.
func TestReadHNSWLegacySnapshot(t *testing.T) {
	// The v1 on-disk shape, reconstructed locally.
	type hnswNodeSnapshot struct {
		ID    int
		Vec   Vector
		Level int
		Links [][]int32
	}
	type legacySnapshot struct {
		Cfg    HNSWConfig
		Nodes  []hnswNodeSnapshot
		Entry  int32
		MaxLvl int
		Dim    int
	}
	var buf bytes.Buffer
	legacy := legacySnapshot{
		Cfg:   HNSWConfig{M: 16},
		Nodes: []hnswNodeSnapshot{{ID: 7, Vec: Vector{1, 0}, Links: [][]int32{{}}}},
		Dim:   2,
	}
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHNSW(&buf); !errors.Is(err, ErrLegacyHNSWSnapshot) {
		t.Fatalf("err = %v, want ErrLegacyHNSWSnapshot", err)
	}
}

// TestReadHNSWCorruptArena ensures inconsistent arena lengths surface as a
// decode error, not a panic at query time.
func TestReadHNSWCorruptArena(t *testing.T) {
	h, _, _ := buildPair(t, 50, 8, 81, HNSWConfig{Seed: 19})
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var snap hnswSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	snap.Vecs = snap.Vecs[:len(snap.Vecs)-3] // truncate the float arena
	var corrupt bytes.Buffer
	if err := gob.NewEncoder(&corrupt).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHNSW(&corrupt); err == nil {
		t.Fatal("corrupt arena accepted")
	}
}

func TestAddIDOutOfRange(t *testing.T) {
	h := NewHNSW(HNSWConfig{Seed: 1})
	if err := h.Add(1<<40, Vector{1, 0}); !errors.Is(err, ErrIDOutOfRange) {
		t.Fatalf("hnsw err = %v, want ErrIDOutOfRange", err)
	}
	e := NewExhaustive()
	if err := e.Add(-1<<40, Vector{1, 0}); !errors.Is(err, ErrIDOutOfRange) {
		t.Fatalf("exhaustive err = %v, want ErrIDOutOfRange", err)
	}
}
