// Package vector implements approximate and exact nearest-neighbor search
// over dense embeddings: a from-scratch HNSW graph (Malkov & Yashunin, 2018)
// — the ANN algorithm Azure AI Search runs and the paper uses with K=15 —
// plus an exhaustive k-NN scanner used as the exactness baseline. The paper
// reports HNSW and exhaustive search yield similar retrieval performance;
// the tests here verify that recall parity on synthetic workloads.
package vector

import (
	"errors"
	"math"
	"sort"
)

// Vector is a dense embedding.
type Vector []float32

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v Vector) float32 {
	return float32(math.Sqrt(float64(Dot(v, v))))
}

// Normalize scales v to unit length in place and returns it. The zero
// vector is returned unchanged.
func Normalize(v Vector) Vector {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Cosine returns the cosine similarity of a and b (0 for zero vectors).
func Cosine(a, b Vector) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CosineDistance returns 1 - Cosine(a, b), the metric both the HNSW index
// and the exhaustive scanner minimize (the ada-002 guidance is cosine
// similarity over unit vectors).
func CosineDistance(a, b Vector) float32 { return 1 - Cosine(a, b) }

// Result is one nearest-neighbor hit.
type Result struct {
	// ID is the caller-assigned identifier of the vector.
	ID int
	// Distance is the cosine distance from the query (smaller is closer).
	Distance float32
}

// Index is the interface shared by the exhaustive scanner and HNSW.
type Index interface {
	// Add inserts a vector under id. Adding an existing id is an error.
	Add(id int, v Vector) error
	// Search returns the k nearest neighbors of q, closest first.
	Search(q Vector, k int) []Result
	// Len reports the number of indexed vectors.
	Len() int
}

// ErrDuplicateID is returned when Add is called twice with the same id.
var ErrDuplicateID = errors.New("vector: duplicate id")

// ErrDimensionMismatch is returned when a vector's dimensionality differs
// from the first inserted vector's.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// Exhaustive is a brute-force exact k-NN index.
type Exhaustive struct {
	ids  []int
	vecs []Vector
	seen map[int]bool
	dim  int
}

// NewExhaustive returns an empty exact index.
func NewExhaustive() *Exhaustive {
	return &Exhaustive{seen: make(map[int]bool)}
}

// Add implements Index. The vector is copied and normalized so that every
// distance evaluation during search is a single dot product.
func (e *Exhaustive) Add(id int, v Vector) error {
	if e.seen[id] {
		return ErrDuplicateID
	}
	if e.dim == 0 {
		e.dim = len(v)
	} else if len(v) != e.dim {
		return ErrDimensionMismatch
	}
	e.seen[id] = true
	e.ids = append(e.ids, id)
	e.vecs = append(e.vecs, Normalize(append(Vector(nil), v...)))
	return nil
}

// Search implements Index with a full scan.
func (e *Exhaustive) Search(q Vector, k int) []Result {
	if k <= 0 || len(e.ids) == 0 {
		return nil
	}
	q = Normalize(append(Vector(nil), q...))
	res := make([]Result, len(e.ids))
	for i, v := range e.vecs {
		res[i] = Result{ID: e.ids[i], Distance: 1 - Dot(q, v)}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Distance != res[j].Distance {
			return res[i].Distance < res[j].Distance
		}
		return res[i].ID < res[j].ID
	})
	if k > len(res) {
		k = len(res)
	}
	return res[:k]
}

// Len implements Index.
func (e *Exhaustive) Len() int { return len(e.ids) }
