// Package vector implements approximate and exact nearest-neighbor search
// over dense embeddings: a from-scratch HNSW graph (Malkov & Yashunin, 2018)
// — the ANN algorithm Azure AI Search runs and the paper uses with K=15 —
// plus an exhaustive k-NN scanner used as the exactness baseline. The paper
// reports HNSW and exhaustive search yield similar retrieval performance;
// the tests here verify that recall parity on synthetic workloads.
//
// Both indexes store vectors in one contiguous float32 arena (the HNSW
// additionally keeps an int8 scalar-quantized copy it traverses, rescoring
// the survivors in float32), and both accept an optional per-id Accept
// predicate so callers can push tombstone/filter checks into the scan
// instead of over-fetching and re-filtering.
package vector

import (
	"errors"
	"math"
)

// Vector is a dense embedding.
type Vector []float32

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// dotF is Dot over raw float32 slices (arena views).
func dotF(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v Vector) float32 {
	return float32(math.Sqrt(float64(Dot(v, v))))
}

// Normalize scales v to unit length in place and returns it. The zero
// vector is returned unchanged.
func Normalize(v Vector) Vector {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Cosine returns the cosine similarity of a and b (0 for zero vectors).
func Cosine(a, b Vector) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CosineDistance returns 1 - Cosine(a, b), the metric both the HNSW index
// and the exhaustive scanner minimize (the ada-002 guidance is cosine
// similarity over unit vectors).
func CosineDistance(a, b Vector) float32 { return 1 - Cosine(a, b) }

// Result is one nearest-neighbor hit.
type Result struct {
	// ID is the caller-assigned identifier of the vector.
	ID int
	// Distance is the cosine distance from the query (smaller is closer).
	Distance float32
}

// Accept filters candidates during search: a vector whose id it rejects is
// still traversed for graph connectivity but never enters the result set.
// A nil Accept admits everything.
type Accept func(id int32) bool

// Index is the interface shared by the exhaustive scanner and HNSW.
type Index interface {
	// Add inserts a vector under id. Adding an existing id is an error.
	Add(id int, v Vector) error
	// Search returns the k nearest neighbors of q, closest first. q is
	// copied and normalized internally.
	Search(q Vector, k int) []Result
	// SearchUnit is Search for callers that already hold a unit-length
	// query: q must be normalized, is never modified, and an optional
	// accept predicate restricts which ids may appear in the results.
	// Ties are broken by ascending id, so the result order is a pure
	// function of the stored vector set.
	SearchUnit(q Vector, k int, accept Accept) []Result
	// Len reports the number of indexed vectors.
	Len() int
}

// ErrDuplicateID is returned when Add is called twice with the same id.
var ErrDuplicateID = errors.New("vector: duplicate id")

// ErrDimensionMismatch is returned when a vector's dimensionality differs
// from the first inserted vector's.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// ErrIDOutOfRange is returned when Add is called with an id outside the
// int32 range the arena-backed indexes (and the Accept predicate) use.
var ErrIDOutOfRange = errors.New("vector: id outside int32 range")

// Exhaustive is a brute-force exact k-NN index. Vectors live in one
// contiguous arena and search keeps a bounded top-k heap, so a query costs
// one allocation (the result slice) regardless of corpus size.
type Exhaustive struct {
	ids  []int32
	vecs []float32 // len(ids) * dim, unit-normalized
	seen map[int32]bool
	dim  int
}

// NewExhaustive returns an empty exact index.
func NewExhaustive() *Exhaustive {
	return &Exhaustive{seen: make(map[int32]bool)}
}

// Add implements Index. The vector is copied into the arena and normalized
// so that every distance evaluation during search is a single dot product.
func (e *Exhaustive) Add(id int, v Vector) error {
	if int64(id) != int64(int32(id)) {
		return ErrIDOutOfRange
	}
	if e.seen[int32(id)] {
		return ErrDuplicateID
	}
	if e.dim == 0 {
		e.dim = len(v)
	} else if len(v) != e.dim {
		return ErrDimensionMismatch
	}
	e.seen[int32(id)] = true
	e.ids = append(e.ids, int32(id))
	start := len(e.vecs)
	e.vecs = append(e.vecs, v...)
	normalizeF(e.vecs[start:])
	return nil
}

// normalizeF scales an arena view to unit length in place (zero stays zero).
func normalizeF(v []float32) {
	n := float32(math.Sqrt(float64(dotF(v, v))))
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// Search implements Index with a full scan.
func (e *Exhaustive) Search(q Vector, k int) []Result {
	if k <= 0 || len(e.ids) == 0 {
		return nil
	}
	q = Normalize(append(Vector(nil), q...))
	return e.SearchUnit(q, k, nil)
}

// SearchUnit implements Index: a full scan feeding a bounded top-k heap
// ordered by (distance, id), the same total order the previous full-sort
// implementation produced.
func (e *Exhaustive) SearchUnit(q Vector, k int, accept Accept) []Result {
	if k <= 0 || len(e.ids) == 0 {
		return nil
	}
	out := make([]Result, 0, min(k, len(e.ids)))
	for i, id := range e.ids {
		if accept != nil && !accept(id) {
			continue
		}
		r := Result{ID: int(id), Distance: 1 - dotF(q, e.vecs[i*e.dim:(i+1)*e.dim])}
		if len(out) < k {
			out = append(out, r)
			siftUpWorst(out, len(out)-1)
		} else if resultBefore(r, out[0]) {
			out[0] = r
			siftDownWorst(out, 0)
		}
	}
	// Heap-sort in place: repeatedly swap the worst survivor to the tail.
	for n := len(out) - 1; n > 0; n-- {
		out[0], out[n] = out[n], out[0]
		siftDownWorst(out[:n], 0)
	}
	return out
}

// resultBefore is the canonical result order: distance ascending, id
// ascending on ties.
func resultBefore(a, b Result) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ID < b.ID
}

// siftUpWorst/siftDownWorst maintain a max-heap under resultBefore (the
// worst kept result sits at the root, ready for eviction).
func siftUpWorst(h []Result, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !resultBefore(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDownWorst(h []Result, i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && resultBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && resultBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// Len implements Index.
func (e *Exhaustive) Len() int { return len(e.ids) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
