package vector

import "math"

// int8 scalar quantization (the RAGdb recipe): every stored unit vector is
// mapped component-wise to q = round(clamp(v*scale, ±127)) with one
// symmetric per-index scale = 127/maxAbs, where maxAbs is the largest
// absolute component seen across the stored set. Graph traversal then runs
// int8 dot products over a 4×-smaller arena; the float32 originals are kept
// for the rescoring pass over the surviving candidates.
//
// The scale is maintained online: whenever an insert raises maxAbs, every
// stored vector is requantized under the new scale. Requantization is a
// pure function of (vector, scale), so the final quantized arena depends
// only on the stored vector set — not on insertion order — which is what
// makes sealed-segment snapshots and their replayed rebuilds byte-identical.

// quantMax is the symmetric int8 range limit.
const quantMax = 127

// maxAbsF returns the largest absolute component of v.
func maxAbsF(v []float32) float32 {
	var m float32
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// quantizeInto appends the quantization of v under scale to dst. A zero
// scale (empty or all-zero corpus) quantizes everything to zero.
func quantizeInto(dst []int8, v []float32, scale float32) []int8 {
	for _, x := range v {
		q := float64(x * scale)
		if q > quantMax {
			q = quantMax
		} else if q < -quantMax {
			q = -quantMax
		}
		dst = append(dst, int8(math.Round(q)))
	}
	return dst
}

// dotQ returns the int8 inner product as an int32 (no overflow for
// dimensions up to 2^15 at the ±127 range).
// dotQ is 4-way unrolled: integer addition is associative, so splitting the
// accumulator breaks the loop-carried dependency chain without changing the
// result, and the explicit reslice of b lifts its bounds checks out of the
// loop. This is the innermost traversal operation — every candidate
// expansion pays one dotQ per neighbor.
func dotQ(a, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}
