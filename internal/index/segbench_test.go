package index

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"uniask/internal/vector"
)

// benchSegDoc generates the i-th streamed-ingest document: same vocabulary
// as benchIndex so posting lists stay long, with a vector drawn from a small
// pre-generated pool (vector contents don't affect text-path cost).
func benchSegDoc(i int, vecs []vector.Vector) Document {
	subjects := []string{
		"carta di credito", "bonifico estero", "conto corrente",
		"mutuo prima casa", "prestito personale", "deposito titoli",
	}
	actions := []string{"bloccare", "aprire", "chiudere", "modificare", "verificare", "autorizzare"}
	subj := subjects[i%len(subjects)]
	act := actions[(i/len(subjects))%len(actions)]
	return Document{
		ID:       fmt.Sprintf("w%06d#0", i),
		ParentID: fmt.Sprintf("w%06d", i),
		Fields: map[string]string{
			"title": fmt.Sprintf("Procedura live %d: %s %s", i, act, subj),
			"content": fmt.Sprintf(
				"La procedura operativa %d per %s il servizio %s prevede controlli e la verifica del codice PRC-%04d.",
				i, act, subj, i%97),
		},
		Vectors: map[string]vector.Vector{
			"contentVector": vecs[i%len(vecs)],
		},
	}
}

func benchVecPool(n, dim int, seed int64) []vector.Vector {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([]vector.Vector, n)
	for i := range vecs {
		v := make(vector.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = v
	}
	return vecs
}

// benchSegmented builds the segmented counterpart of benchIndex: the same
// 2000-doc corpus sealed into multiple segments plus a live memtable, so the
// multi-part search path (stats merge + per-part scoring) is what's measured.
func benchSegmented(tb testing.TB) *Segmented {
	tb.Helper()
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: 512, CompactionFanIn: -1})
	docs, _ := benchCorpus()
	for _, doc := range docs {
		if err := seg.Add(doc); err != nil {
			tb.Fatal(err)
		}
	}
	return seg
}

// BenchmarkSearchTextSegmented is BenchmarkSearchText over the segmented
// store (4 sealed segments + memtable): the delta against the monolithic
// number is the cost of stats-merge fan-out, guarded by
// TestSearchTextAllocsSegmented.
func BenchmarkSearchTextSegmented(b *testing.B) {
	seg := benchSegmented(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.SearchText("procedura autorizzativa per verificare il conto corrente", 50, TextOptions{})
	}
}

// BenchmarkSearchTextLiveIngest measures query latency while a writer
// goroutine streams documents into the memtable and publishes periodically —
// the live-ingestion steady state. ns/op is mean query latency under ingest;
// the p99-ns/op metric is the tail the OPERATIONS runbook budgets for.
func BenchmarkSearchTextLiveIngest(b *testing.B) {
	seg := benchSegmented(b)
	vecs := benchVecPool(256, 64, 7)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := seg.Add(benchSegDoc(i, vecs)); err != nil {
				b.Error(err)
				return
			}
			if i%512 == 511 {
				seg.Publish()
			}
		}
	}()

	lat := make([]int64, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		seg.SearchText("procedura autorizzativa per verificare il conto corrente", 50, TextOptions{})
		lat = append(lat, int64(time.Since(t0)))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	seg.WaitCompaction()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns/op")
}

// BenchmarkIngestSegmented measures sustained ingest throughput (docs/sec)
// while reader goroutines keep querying — writes must never stall behind the
// read path. ns/op is the per-document Add cost including amortized seals
// and background compaction.
func BenchmarkIngestSegmented(b *testing.B) {
	seg := benchSegmented(b)
	vecs := benchVecPool(256, 64, 9)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				seg.SearchText("bloccare la carta di credito", 10, TextOptions{})
			}
		}()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := seg.Add(benchSegDoc(i, vecs)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	seg.WaitCompaction()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/sec")
}
