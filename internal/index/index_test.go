package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"uniask/internal/embedding"
	"uniask/internal/vector"
)

func newTestIndex(t *testing.T) (*Index, *embedding.Synth) {
	t.Helper()
	emb := embedding.NewSynth(64, nil)
	ix := New(Config{})
	docs := []struct {
		id, title, content, domain string
	}{
		{"d1#0", "Blocco carta di credito", "Per bloccare la carta di credito chiamare il numero verde dedicato.", "prodotti"},
		{"d2#0", "Bonifico estero", "Il bonifico verso paesi extra SEPA richiede il codice BIC della banca beneficiaria.", "pagamenti"},
		{"d3#0", "Errore ERR-4032", "In caso di errore ERR-4032 durante il bonifico verificare il codice IBAN.", "errori"},
		{"d4#0", "Apertura conto corrente", "La procedura di apertura del conto corrente prevede il riconoscimento del cliente.", "prodotti"},
		{"d5#0", "Mutuo prima casa", "Il mutuo prima casa offre un tasso agevolato per i giovani acquirenti.", "prodotti"},
	}
	for _, d := range docs {
		err := ix.Add(Document{
			ID:       d.id,
			ParentID: strings.Split(d.id, "#")[0],
			Fields: map[string]string{
				"title": d.title, "content": d.content, "domain": d.domain,
			},
			Vectors: map[string]vector.Vector{
				"titleVector":   emb.Embed(d.title),
				"contentVector": emb.Embed(d.content),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return ix, emb
}

func TestAddAndLen(t *testing.T) {
	ix, _ := newTestIndex(t)
	if ix.Len() != 5 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestDuplicateID(t *testing.T) {
	ix, _ := newTestIndex(t)
	err := ix.Add(Document{ID: "d1#0", Fields: map[string]string{"title": "x"}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	ix, _ := newTestIndex(t)
	err := ix.Add(Document{ID: "new", Fields: map[string]string{"nope": "x"}})
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	err = ix.Add(Document{ID: "new2", Vectors: map[string]vector.Vector{"title": {1}}})
	if err == nil {
		t.Fatal("non-vector field accepted as vector")
	}
}

func TestSearchTextFindsRelevant(t *testing.T) {
	ix, _ := newTestIndex(t)
	hits := ix.SearchText("bloccare la carta di credito", 10, TextOptions{})
	if len(hits) == 0 || hits[0].ID != "d1#0" {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSearchTextCodeQuery(t *testing.T) {
	ix, _ := newTestIndex(t)
	hits := ix.SearchText("ERR-4032", 10, TextOptions{})
	if len(hits) == 0 || hits[0].ID != "d3#0" {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSearchTextEmptyAndNoMatch(t *testing.T) {
	ix, _ := newTestIndex(t)
	if hits := ix.SearchText("", 10, TextOptions{}); hits != nil {
		t.Fatalf("empty query: %v", hits)
	}
	if hits := ix.SearchText("zzz parolainesistente", 10, TextOptions{}); len(hits) != 0 {
		t.Fatalf("no-match query: %v", hits)
	}
	if hits := ix.SearchText("carta", 0, TextOptions{}); hits != nil {
		t.Fatalf("n=0: %v", hits)
	}
}

func TestSearchTextStemmedMatch(t *testing.T) {
	ix, _ := newTestIndex(t)
	// "bonifici" (plural) must match documents mentioning "bonifico".
	hits := ix.SearchText("bonifici esteri", 10, TextOptions{})
	if len(hits) == 0 {
		t.Fatal("stemmed query found nothing")
	}
	if hits[0].ID != "d2#0" {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSearchTextScoresSortedAndDeterministic(t *testing.T) {
	ix, _ := newTestIndex(t)
	a := ix.SearchText("codice bonifico", 10, TextOptions{})
	b := ix.SearchText("codice bonifico", 10, TextOptions{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic hit order")
		}
		if i > 0 && a[i-1].Score < a[i].Score {
			t.Fatal("not sorted by score")
		}
	}
}

func TestFieldWeightsBoostTitle(t *testing.T) {
	ix, _ := newTestIndex(t)
	// "conto" appears in d4 title+content; boosting title should raise d4's
	// score relative to unboosted.
	plain := ix.SearchText("apertura conto", 10, TextOptions{})
	boosted := ix.SearchText("apertura conto", 10, TextOptions{
		FieldWeights: map[string]float64{"title": 50},
	})
	if plain[0].ID != "d4#0" || boosted[0].ID != "d4#0" {
		t.Fatalf("plain=%v boosted=%v", plain, boosted)
	}
	if boosted[0].Score <= plain[0].Score {
		t.Fatalf("boost had no effect: %v vs %v", boosted[0].Score, plain[0].Score)
	}
}

func TestFilters(t *testing.T) {
	ix, _ := newTestIndex(t)
	hits := ix.SearchText("carta conto mutuo bonifico", 10, TextOptions{
		Filters: []Filter{{Field: "domain", Value: "prodotti"}},
	})
	for _, h := range hits {
		doc := ix.Doc(h.Ord)
		if doc.Fields["domain"] != "prodotti" {
			t.Fatalf("filter leaked: %v", doc.Fields)
		}
	}
	if len(hits) == 0 {
		t.Fatal("filtered search found nothing")
	}
	// Impossible filter conjunction.
	none := ix.SearchText("carta", 10, TextOptions{
		Filters: []Filter{{Field: "domain", Value: "prodotti"}, {Field: "domain", Value: "errori"}},
	})
	if len(none) != 0 {
		t.Fatalf("conjunctive filter failed: %v", none)
	}
}

func TestSearchVector(t *testing.T) {
	ix, emb := newTestIndex(t)
	q := emb.Embed("bloccare la carta di credito")
	hits := ix.SearchVector("contentVector", q, 3, nil)
	if len(hits) != 3 {
		t.Fatalf("got %d hits", len(hits))
	}
	if hits[0].ID != "d1#0" {
		t.Fatalf("vector search top = %v", hits[0])
	}
}

func TestSearchVectorWithFilter(t *testing.T) {
	ix, emb := newTestIndex(t)
	q := emb.Embed("carta di credito")
	hits := ix.SearchVector("contentVector", q, 5, []Filter{{Field: "domain", Value: "pagamenti"}})
	for _, h := range hits {
		if ix.Doc(h.Ord).Fields["domain"] != "pagamenti" {
			t.Fatalf("vector filter leaked")
		}
	}
}

func TestSearchVectorUnknownField(t *testing.T) {
	ix, emb := newTestIndex(t)
	if hits := ix.SearchVector("nope", emb.Embed("x"), 3, nil); hits != nil {
		t.Fatalf("unknown vector field: %v", hits)
	}
}

func TestRetrievableProjection(t *testing.T) {
	ix, _ := newTestIndex(t)
	doc, ok := ix.DocByID("d1#0")
	if !ok {
		t.Fatal("DocByID failed")
	}
	r := ix.Retrievable(doc)
	if _, ok := r["title"]; !ok {
		t.Fatal("title not retrievable")
	}
	if _, ok := r["domain"]; ok {
		t.Fatal("filterable-only field leaked into retrievable set")
	}
}

func TestVectorFields(t *testing.T) {
	ix, _ := newTestIndex(t)
	vf := ix.VectorFields()
	if len(vf) != 2 || vf[0] != "contentVector" || vf[1] != "titleVector" {
		t.Fatalf("VectorFields = %v", vf)
	}
}

func TestBM25IDFOrdersRareTermsFirst(t *testing.T) {
	emb := embedding.NewSynth(32, nil)
	_ = emb
	ix := New(Config{})
	// "banca" is in every doc (common), "anatocismo" only in one (rare).
	for i := 0; i < 20; i++ {
		content := "la banca offre servizi alla clientela"
		if i == 7 {
			content = "la banca applica la disciplina sull'anatocismo bancario"
		}
		err := ix.Add(Document{ID: fmt.Sprintf("d%d", i), Fields: map[string]string{"content": content}})
		if err != nil {
			t.Fatal(err)
		}
	}
	hits := ix.SearchText("anatocismo banca", 5, TextOptions{})
	if len(hits) == 0 || hits[0].ID != "d7" {
		t.Fatalf("rare term did not dominate: %v", hits)
	}
}

func TestTermStats(t *testing.T) {
	ix, _ := newTestIndex(t)
	if df := ix.TermStats("content", "bonific"); df != 2 {
		t.Fatalf("df(bonific) = %d, want 2", df)
	}
	if df := ix.TermStats("nofield", "x"); df != 0 {
		t.Fatalf("df on unknown field = %d", df)
	}
}

// Property: any document added to the index is findable by a distinctive
// term of its own content, and the returned hit maps back to the document.
func TestAddThenFindProperty(t *testing.T) {
	ix := New(Config{})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		id := fmt.Sprintf("q%d#0", rng.Int63())
		if _, exists := ix.DocByID(id); exists {
			return true
		}
		marker := fmt.Sprintf("marcatore%d", rng.Int63())
		err := ix.Add(Document{ID: id, ParentID: id, Fields: map[string]string{
			"content": "testo con " + marker + " incorporato",
		}})
		if err != nil {
			return false
		}
		hits := ix.SearchText(marker, 3, TextOptions{})
		return len(hits) >= 1 && hits[0].ID == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BM25 scores are positive and SearchText never returns more
// than n results.
func TestSearchTextBoundsProperty(t *testing.T) {
	ix, _ := newTestIndex(t)
	f := func(q string, n int) bool {
		if n < 0 {
			n = -n
		}
		n = n % 20
		hits := ix.SearchText(q, n, TextOptions{})
		if len(hits) > n {
			return false
		}
		for _, h := range hits {
			if h.Score <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
