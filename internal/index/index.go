// Package index implements the search index UniAsk builds over the chunked
// knowledge base — the reproduction of the Azure AI Search index described
// in §4 of the paper. Fields carry attributes (searchable, retrievable,
// filterable, vector); an inverted index with Okapi BM25 ranking is built
// for each searchable field, and an ANN index (HNSW by default) for each
// vector field.
package index

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"uniask/internal/textproc"
	"uniask/internal/vector"
)

// FieldAttr describes how a field may be used, mirroring Azure AI Search
// field attributes.
type FieldAttr struct {
	// Searchable fields participate in full-text search (inverted index).
	Searchable bool
	// Retrievable fields are returned in search results.
	Retrievable bool
	// Filterable fields support exact-match filtering.
	Filterable bool
	// Vector fields hold dense embeddings searched by ANN.
	Vector bool
}

// Schema maps field names to their attributes.
type Schema map[string]FieldAttr

// DefaultSchema is the UniAsk index schema from the paper: title, chunk
// content and summary are retrievable (title and content also searchable);
// domain, topic, section and keywords are filterable for exact matching;
// title and content have vector embeddings.
func DefaultSchema() Schema {
	return Schema{
		"title":    {Searchable: true, Retrievable: true},
		"content":  {Searchable: true, Retrievable: true},
		"summary":  {Searchable: true, Retrievable: true},
		"domain":   {Filterable: true},
		"section":  {Filterable: true},
		"topic":    {Filterable: true},
		"keywords": {Filterable: true},

		"titleVector":   {Vector: true},
		"contentVector": {Vector: true},
	}
}

// Document is one indexable unit (a chunk of a KB document).
type Document struct {
	// ID is the unique chunk identifier (e.g. "kb00042#1").
	ID string
	// ParentID is the identifier of the KB document the chunk belongs to.
	ParentID string
	// Fields holds the textual field values.
	Fields map[string]string
	// Vectors holds the embedding field values.
	Vectors map[string]vector.Vector
}

// posting is one (document, term-frequency) pair in a posting list.
type posting struct {
	doc int32
	tf  int32
}

// fieldIndex is the inverted index of a single searchable field.
type fieldIndex struct {
	postings map[string][]posting
	docLens  []int
	totalLen int
}

// BM25Params are the Okapi BM25 constants.
type BM25Params struct {
	K1 float64
	B  float64
}

// DefaultBM25 matches the Lucene/Azure defaults.
var DefaultBM25 = BM25Params{K1: 1.2, B: 0.75}

// Config controls index construction.
type Config struct {
	// Schema defaults to DefaultSchema().
	Schema Schema
	// Analyzer defaults to the full Italian analyzer.
	Analyzer *textproc.Analyzer
	// BM25 defaults to DefaultBM25.
	BM25 BM25Params
	// VectorIndex constructs the ANN index for a vector field; defaults to
	// HNSW with a seed derived from the field name.
	VectorIndex func(field string) vector.Index
	// DisableVectorQuantization makes the default HNSW traverse float32
	// vectors instead of the int8 quantized arena (see vector.HNSWConfig).
	// It has no effect when VectorIndex is set explicitly.
	DisableVectorQuantization bool
}

// Index is the searchable chunk store.
//
// Concurrency: an Index is safe for any number of concurrent readers
// (SearchText, SearchVector, Doc, DocByID, ...) racing a single live writer
// (Add, Delete, DeleteParent) — the 15-minute ingestion poller updating the
// index under production query traffic. Readers take mu.RLock, writers take
// mu.Lock, and every successful mutation bumps a monotonically increasing
// epoch that callers (e.g. the search-layer query cache) use to detect
// staleness without holding any lock.
type Index struct {
	cfg      Config
	mu       sync.RWMutex
	epoch    atomic.Uint64
	statsKey atomic.Uint64
	journal  *DeleteJournal
	docs     []Document
	byID     map[string]int32
	byParent map[string][]int32 // live chunk ordinals per KB document
	deleted  map[int32]bool     // tombstoned ordinals
	fields   map[string]*fieldIndex
	vecs     map[string]vector.Index
	filters  map[string]map[string][]int32 // field -> value -> docs

	// searchNames and vecNames are the sorted searchable / vector field
	// names, computed once at construction (the schema is immutable after
	// New) so the query path never re-sorts them.
	searchNames []string
	vecNames    []string

	// filterCache memoizes the ordinal bitset of each (field, value) pair;
	// Add invalidates exactly the entries whose value it extends. Guarded
	// by fcMu (mu alone is not enough: concurrent readers populate it).
	fcMu        sync.Mutex
	filterCache map[filterKey][]uint64

	// accPool recycles the flat score accumulators of the BM25 hot path.
	accPool sync.Pool
}

// ErrDuplicateID is returned when a document id is added twice.
var ErrDuplicateID = errors.New("index: duplicate document id")

// New creates an empty index.
func New(cfg Config) *Index {
	if cfg.Schema == nil {
		cfg.Schema = DefaultSchema()
	}
	if cfg.Analyzer == nil {
		cfg.Analyzer = textproc.ItalianFull()
	}
	if cfg.BM25.K1 == 0 && cfg.BM25.B == 0 {
		cfg.BM25 = DefaultBM25
	}
	if cfg.VectorIndex == nil {
		cfg.VectorIndex = func(field string) vector.Index {
			var seed int64
			for _, c := range field {
				seed = seed*131 + int64(c)
			}
			// EfConstruction 80 trades a little graph quality for much
			// faster bulk indexing; recall parity with exhaustive k-NN at
			// the K values UniAsk uses is verified in the ablation benches.
			return vector.NewHNSW(vector.HNSWConfig{
				Seed:                seed,
				EfConstruction:      80,
				DisableQuantization: cfg.DisableVectorQuantization,
			})
		}
	}
	ix := &Index{
		cfg:         cfg,
		journal:     NewDeleteJournal(),
		byID:        make(map[string]int32),
		byParent:    make(map[string][]int32),
		fields:      make(map[string]*fieldIndex),
		vecs:        make(map[string]vector.Index),
		filters:     make(map[string]map[string][]int32),
		filterCache: make(map[filterKey][]uint64),
	}
	for name, attr := range cfg.Schema {
		if attr.Searchable {
			ix.fields[name] = &fieldIndex{postings: make(map[string][]posting)}
			ix.searchNames = append(ix.searchNames, name)
		}
		if attr.Vector {
			ix.vecs[name] = cfg.VectorIndex(name)
			ix.vecNames = append(ix.vecNames, name)
		}
		if attr.Filterable {
			ix.filters[name] = make(map[string][]int32)
		}
	}
	sort.Strings(ix.searchNames)
	sort.Strings(ix.vecNames)
	return ix
}

// Epoch returns the index mutation epoch: a counter bumped by every
// successful Add/Delete. Readers snapshot it to detect concurrent mutation
// (the search-layer query cache invalidates on epoch change). It is safe to
// call without holding any lock.
func (ix *Index) Epoch() uint64 { return ix.epoch.Load() }

// StatsKey identifies the BM25 stats snapshot queries are currently scored
// under. On a plain mutable index every Add changes the corpus statistics
// immediately, so the key advances with each Add; Delete leaves it alone,
// because tombstones keep contributing to N, average length and DF exactly
// as before (deleted chunks are instead invalidated precisely through
// DeletesSince). The segmented store overrides this with
// publication-granular semantics: its key rotates only when a memtable seal
// or compaction publishes new statistics.
func (ix *Index) StatsKey() uint64 { return ix.statsKey.Load() }

// DeletesSince returns the chunk ids deleted at or after cursor and the
// cursor to resume from; ok is false when the bounded journal has dropped
// entries the caller has not seen (the caller should then discard all cached
// results). A zero cursor reads from the journal's retained start.
func (ix *Index) DeletesSince(cursor uint64) (ids []string, next uint64, ok bool) {
	return ix.journal.Since(cursor)
}

// Len reports the number of chunks ever inserted, including tombstoned
// ones; LiveLen counts only searchable chunks.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Schema returns the index schema.
func (ix *Index) Schema() Schema { return ix.cfg.Schema }

// Analyzer returns the analyzer used for searchable fields and queries.
func (ix *Index) Analyzer() *textproc.Analyzer { return ix.cfg.Analyzer }

// Add indexes a document. Vector fields present in the schema but missing
// from the document are skipped; unknown fields are an error.
func (ix *Index) Add(doc Document) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.byID[doc.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateID, doc.ID)
	}
	for f := range doc.Fields {
		if _, ok := ix.cfg.Schema[f]; !ok {
			return fmt.Errorf("index: field %q not in schema", f)
		}
	}
	for f := range doc.Vectors {
		if attr, ok := ix.cfg.Schema[f]; !ok || !attr.Vector {
			return fmt.Errorf("index: vector field %q not in schema", f)
		}
	}
	// Bump before the first mutation: even a failed vector insert below has
	// already changed index state, and a too-early bump only costs a cache
	// miss while a missed bump would serve stale results. The stats key moves
	// with it — on a mutable index every Add shifts the idf curve at once.
	ix.epoch.Add(1)
	ix.statsKey.Add(1)
	id := int32(len(ix.docs))
	ix.docs = append(ix.docs, doc)
	ix.byID[doc.ID] = id
	ix.byParent[doc.ParentID] = append(ix.byParent[doc.ParentID], id)

	for name, fi := range ix.fields {
		text := doc.Fields[name]
		terms := ix.cfg.Analyzer.AnalyzeTerms(text)
		fi.docLens = append(fi.docLens, len(terms))
		fi.totalLen += len(terms)
		counts := make(map[string]int32, len(terms))
		for _, t := range terms {
			counts[t]++
		}
		for t, c := range counts {
			fi.postings[t] = append(fi.postings[t], posting{doc: id, tf: c})
		}
	}
	for name, vals := range ix.filters {
		if v, ok := doc.Fields[name]; ok && v != "" {
			vals[v] = append(vals[v], id)
			ix.fcMu.Lock()
			delete(ix.filterCache, filterKey{field: name, value: v})
			ix.fcMu.Unlock()
		}
	}
	for name, vx := range ix.vecs {
		if v, ok := doc.Vectors[name]; ok {
			if err := vx.Add(int(id), v); err != nil {
				return fmt.Errorf("index: vector field %q: %w", name, err)
			}
		}
	}
	return nil
}

// Doc returns the stored document at the given internal ordinal.
func (ix *Index) Doc(ord int) Document {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs[ord]
}

// DocByID returns a stored document by external id.
func (ix *Index) DocByID(id string) (Document, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ord, ok := ix.byID[id]
	if !ok {
		return Document{}, false
	}
	return ix.docs[ord], true
}

// Retrievable projects doc onto its retrievable fields (what a search
// result exposes).
func (ix *Index) Retrievable(doc Document) map[string]string {
	out := make(map[string]string)
	for f, v := range doc.Fields {
		if ix.cfg.Schema[f].Retrievable {
			out[f] = v
		}
	}
	return out
}
