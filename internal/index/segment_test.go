package index

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"uniask/internal/vector"
)

// exhaustiveCfg builds an index config on the exact k-NN backend: per-part
// HNSW graphs are legitimately different graphs than one monolithic HNSW,
// so graph-based vector parity would compare two approximations. Exhaustive
// search makes both sides exact and the comparison meaningful (same
// rationale as the shard parity suite).
func exhaustiveCfg() Config {
	return Config{VectorIndex: func(string) vector.Index { return vector.NewExhaustive() }}
}

// segCorpus generates n deterministic documents with vectors, shaped like
// the concurrency fixture's corpus.
func segCorpus(n int) []Document {
	rng := rand.New(rand.NewSource(11))
	domains := []string{"prodotti", "pagamenti", "errori"}
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		v := make(vector.Vector, 16)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		docs = append(docs, Document{
			ID:       fmt.Sprintf("s%03d#0", i),
			ParentID: fmt.Sprintf("s%03d", i),
			Fields: map[string]string{
				"title":   fmt.Sprintf("Procedura %d per il conto corrente", i),
				"content": fmt.Sprintf("La procedura operativa %d prevede controlli sul conto e verifica del codice PRC-%03d.", i, i%37),
				"domain":  domains[i%len(domains)],
			},
			Vectors: map[string]vector.Vector{"contentVector": v},
		})
	}
	return docs
}

// segQueries are text queries that spread matches across the whole corpus.
var segQueries = []string{
	"procedura per verificare il conto corrente",
	"controlli sul conto",
	"codice PRC-005",
	"verifica del codice operativo",
	"conto",
}

// assertTextParity compares SearchText rankings (ids and scores; ordinals
// are part-local by design) between two stores for every fixture query.
func assertTextParity(t *testing.T, label string, mono, seg Searcher) {
	t.Helper()
	for _, q := range segQueries {
		want := mono.SearchText(q, 20, TextOptions{})
		got := seg.SearchText(q, 20, TextOptions{})
		if len(want) != len(got) {
			t.Fatalf("%s %q: %d hits, monolithic %d", label, q, len(got), len(want))
		}
		for i := range want {
			if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
				t.Fatalf("%s %q: hit %d = {%s %v}, monolithic {%s %v}",
					label, q, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

// assertVectorParity compares SearchVector rankings between two stores.
func assertVectorParity(t *testing.T, label string, mono, seg Searcher, q vector.Vector) {
	t.Helper()
	want := mono.SearchVector("contentVector", q, 15, nil)
	got := seg.SearchVector("contentVector", q, 15, nil)
	if len(want) != len(got) {
		t.Fatalf("%s vector: %d hits, monolithic %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
			t.Fatalf("%s vector: hit %d = {%s %v}, monolithic {%s %v}",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// segQueryVec is the deterministic query vector of the parity tests.
func segQueryVec() vector.Vector {
	rng := rand.New(rand.NewSource(23))
	q := make(vector.Vector, 16)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	return q
}

// TestSegmentedParityLiveMemtable is the core acceptance check: a segmented
// store with several sealed segments AND a live (non-empty) memtable must
// rank byte-identically to a monolithic index over the same documents —
// global statistics are collected across parts at query time, so unpublished
// writes score exactly as if the index were one flat structure.
func TestSegmentedParityLiveMemtable(t *testing.T) {
	docs := segCorpus(50)
	mono := New(exhaustiveCfg())
	// Memtable of 8 with compaction disabled: 50 docs yield 6 sealed
	// segments plus 2 documents live in the memtable.
	seg := NewSegmented(exhaustiveCfg(), SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: -1})
	for _, d := range docs {
		if err := mono.Add(d); err != nil {
			t.Fatal(err)
		}
		if err := seg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if st := seg.SegmentStats(); st.Segments < 2 || st.MemtableDocs == 0 {
		t.Fatalf("fixture did not produce sealed segments plus a live memtable: %+v", st)
	}
	assertTextParity(t, "live-memtable", mono, seg)
	assertVectorParity(t, "live-memtable", mono, seg, segQueryVec())

	// Deletes tombstone in place on both sides and must not break parity
	// (statistics keep counting tombstones on both sides).
	for i := 0; i < 50; i += 7 {
		id := fmt.Sprintf("s%03d#0", i)
		if !mono.Delete(id) || !seg.Delete(id) {
			t.Fatalf("delete %s failed", id)
		}
	}
	if mono.LiveLen() != seg.LiveLen() {
		t.Fatalf("live count %d, monolithic %d", seg.LiveLen(), mono.LiveLen())
	}
	assertTextParity(t, "post-delete", mono, seg)
	assertVectorParity(t, "post-delete", mono, seg, segQueryVec())
}

// TestSegmentedParityAfterCompaction checks the other end of the lifecycle:
// after deletes and a full compaction cycle, the segmented store must rank
// identically to a monolithic index compacted over the same documents —
// compaction reclaims tombstones without perturbing relative order.
func TestSegmentedParityAfterCompaction(t *testing.T) {
	docs := segCorpus(48)
	mono := New(exhaustiveCfg())
	// Background compaction stays off during the build so the deletes land
	// across six distinct sealed segments (48 docs / memtable of 8); the
	// drain below then merges every segment at least once.
	seg := NewSegmented(exhaustiveCfg(), SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: -1})
	for _, d := range docs {
		if err := mono.Add(d); err != nil {
			t.Fatal(err)
		}
		if err := seg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 48; i += 5 {
		id := fmt.Sprintf("s%03d#0", i)
		if !mono.Delete(id) || !seg.Delete(id) {
			t.Fatalf("delete %s failed", id)
		}
	}
	// Drain the backlog synchronously until no merge is possible.
	seg.scfg.CompactionFanIn = 2
	for {
		merged, err := seg.CompactOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !merged {
			break
		}
	}
	compacted, err := mono.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if seg.Tombstones() != 0 {
		t.Fatalf("full compaction left %d tombstones", seg.Tombstones())
	}
	if compacted.Len() != seg.Len() || compacted.LiveLen() != seg.LiveLen() {
		t.Fatalf("size after compaction = %d/%d live, compacted monolithic %d/%d",
			seg.Len(), seg.LiveLen(), compacted.Len(), compacted.LiveLen())
	}
	assertTextParity(t, "post-compaction", compacted, seg)
	assertVectorParity(t, "post-compaction", compacted, seg, segQueryVec())
}

// TestSegmentedStatsKeySemantics pins the publication contract: Add and
// Delete never rotate the stats snapshot key; sealing a non-empty memtable
// rotates it; sealing an empty one does not; a compaction rotates it only
// when it dropped tombstones.
func TestSegmentedStatsKeySemantics(t *testing.T) {
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: -1, CompactionFanIn: 2})
	docs := segCorpus(12)

	base := seg.StatsKey()
	for _, d := range docs[:4] {
		if err := seg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if got := seg.StatsKey(); got != base {
		t.Fatalf("Add rotated the stats key: %d -> %d", base, got)
	}

	seg.Publish()
	seg.WaitCompaction()
	afterSeal := seg.StatsKey()
	if afterSeal == base {
		t.Fatal("sealing a non-empty memtable did not rotate the stats key")
	}

	// Publishing with an empty memtable is a no-op.
	seg.Publish()
	seg.WaitCompaction()
	if got := seg.StatsKey(); got != afterSeal {
		t.Fatalf("empty seal rotated the stats key: %d -> %d", afterSeal, got)
	}

	// Deletes tombstone without rotation; the journal carries the ids.
	if !seg.Delete("s000#0") {
		t.Fatal("delete failed")
	}
	if got := seg.StatsKey(); got != afterSeal {
		t.Fatalf("Delete rotated the stats key: %d -> %d", afterSeal, got)
	}
	ids, _, ok := seg.DeletesSince(0)
	if !ok || len(ids) != 1 || ids[0] != "s000#0" {
		t.Fatalf("journal = %v ok=%v, want [s000#0]", ids, ok)
	}

	// A compaction over segments holding a tombstone drops it and rotates.
	for _, d := range docs[4:8] {
		if err := seg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	seg.Publish() // second sealed segment -> backlog reaches fan-in 2
	seg.WaitCompaction()
	rotated := seg.StatsKey()
	if rotated == afterSeal {
		t.Fatal("publish of the second batch did not rotate")
	}
	if st := seg.SegmentStats(); st.Tombstones != 0 {
		t.Fatalf("compaction left %d tombstones", st.Tombstones)
	}

	// A compaction with nothing to drop must NOT rotate.
	for _, d := range docs[8:10] {
		if err := seg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	seg.Publish()
	seg.WaitCompaction()
	afterThird := seg.StatsKey()
	merged, err := seg.CompactOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if merged && seg.StatsKey() != afterThird {
		t.Fatalf("tombstone-free compaction rotated the stats key: %d -> %d", afterThird, seg.StatsKey())
	}
}

// TestSegmentedEpochMatchesPlainIndex keeps the mutation epoch contract the
// shard facade relies on: every Add and successful Delete bumps by one,
// exactly like a plain index, regardless of seals in between.
func TestSegmentedEpochMatchesPlainIndex(t *testing.T) {
	plain := New(Config{})
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: 4, CompactionFanIn: -1})
	for _, d := range segCorpus(10) {
		if err := plain.Add(d); err != nil {
			t.Fatal(err)
		}
		if err := seg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	plain.Delete("s003#0")
	seg.Delete("s003#0")
	if plain.Epoch() != seg.Epoch() {
		t.Fatalf("segmented epoch %d, plain %d", seg.Epoch(), plain.Epoch())
	}
}

// TestSegmentedDuplicateAcrossParts rejects an id that lives in a sealed
// segment, not just the memtable.
func TestSegmentedDuplicateAcrossParts(t *testing.T) {
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: -1})
	docs := segCorpus(3)
	for _, d := range docs {
		if err := seg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	seg.Publish() // docs now in a sealed segment
	if err := seg.Add(docs[1]); err == nil {
		t.Fatal("duplicate id across a sealed segment accepted")
	}
}

// TestSegmentedDeleteParentAcrossParts tombstones a parent's chunks wherever
// they live and reports them through the journal.
func TestSegmentedDeleteParentAcrossParts(t *testing.T) {
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: -1})
	for i := 0; i < 2; i++ {
		err := seg.Add(Document{
			ID: fmt.Sprintf("p1#%d", i), ParentID: "p1",
			Fields: map[string]string{"content": "testo"},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seg.Publish()
	// A third chunk of the same parent lands in the fresh memtable.
	err := seg.Add(Document{ID: "p1#2", ParentID: "p1", Fields: map[string]string{"content": "testo"}})
	if err != nil {
		t.Fatal(err)
	}
	if n := seg.DeleteParent("p1"); n != 3 {
		t.Fatalf("DeleteParent removed %d chunks, want 3", n)
	}
	if seg.HasParent("p1") {
		t.Fatal("parent still visible after DeleteParent")
	}
	ids, _, ok := seg.DeletesSince(0)
	if !ok || len(ids) != 3 {
		t.Fatalf("journal = %v ok=%v, want 3 ids", ids, ok)
	}
}

// TestSegmentedCompactCancel verifies a canceled merge is abandoned cleanly:
// error out, store topology untouched.
func TestSegmentedCompactCancel(t *testing.T) {
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: 4, CompactionFanIn: -1})
	for _, d := range segCorpus(16) {
		if err := seg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	before := seg.SegmentStats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// CompactOnce with fan-in disabled reports no merge; re-enable manually.
	seg.scfg.CompactionFanIn = 2
	if merged, err := seg.CompactOnce(ctx); err == nil || merged {
		t.Fatalf("canceled compaction: merged=%v err=%v, want error", merged, err)
	}
	after := seg.SegmentStats()
	if before.Segments != after.Segments || after.Compactions != 0 {
		t.Fatalf("canceled compaction changed the store: before=%+v after=%+v", before, after)
	}
}

// TestSegmentedBackgroundCompactionKeepsUp verifies auto-seal plus the
// background compactor: a bulk load at a tiny memtable bound must leave the
// backlog below the fan-in once quiesced, with every document still
// searchable and arrival order preserved.
func TestSegmentedBackgroundCompactionKeepsUp(t *testing.T) {
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: 4})
	docs := segCorpus(100)
	if err := seg.AddBulk(docs); err != nil {
		t.Fatal(err)
	}
	seg.Publish()
	seg.WaitCompaction()
	st := seg.SegmentStats()
	if st.Backlog != 0 {
		t.Fatalf("compactor left a backlog: %+v", st)
	}
	if st.Seals == 0 || st.Compactions == 0 {
		t.Fatalf("expected seals and compactions to have run: %+v", st)
	}
	if seg.LiveLen() != len(docs) {
		t.Fatalf("live count %d, want %d", seg.LiveLen(), len(docs))
	}
	live := seg.LiveDocs()
	for i, d := range live {
		if d.ID != docs[i].ID {
			t.Fatalf("arrival order broken at %d: %s, want %s", i, d.ID, docs[i].ID)
		}
	}
}
