package index

import "sync"

// Delete journal. The search-layer query cache invalidates precisely on
// deletes: tombstoning a chunk leaves every BM25 corpus statistic unchanged
// (tombstones stay in the posting lists and keep counting toward N, average
// length and document frequency — see CorpusStats), so a cached top-k that
// does not contain the deleted chunk is still byte-exact, and only entries
// that do contain it are stale. Each top-level store (monolithic *Index,
// *Segmented, the shard facade) keeps a bounded journal of recently deleted
// chunk ids; the cache pulls the tail it has not seen yet and evicts exactly
// the entries naming one of those ids. When the journal has wrapped past a
// reader's cursor the reader must assume it missed deletes and purge
// everything — the journal degrades to the old flush-the-world behavior
// instead of ever serving a deleted document.

// defaultJournalCap bounds the retained delete tail. 4096 ids comfortably
// covers the deletes between two cache lookups under the 15-minute ingestion
// cadence; an overflow only costs a full cache purge, never staleness.
const defaultJournalCap = 4096

// DeleteJournal is a bounded, append-only log of deleted chunk ids with a
// monotonically increasing sequence. Safe for concurrent use.
type DeleteJournal struct {
	mu    sync.Mutex
	cap   int
	start uint64 // sequence number of ids[0]
	ids   []string
}

// NewDeleteJournal creates an empty journal with the default capacity.
func NewDeleteJournal() *DeleteJournal {
	return &DeleteJournal{cap: defaultJournalCap}
}

// Record appends one deleted id, dropping the oldest entries beyond the
// capacity bound.
func (j *DeleteJournal) Record(id string) {
	j.mu.Lock()
	j.ids = append(j.ids, id)
	if over := len(j.ids) - j.cap; over > 0 {
		j.ids = append(j.ids[:0], j.ids[over:]...)
		j.start += uint64(over)
	}
	j.mu.Unlock()
}

// Since returns a copy of the ids recorded at or after cursor plus the next
// cursor to resume from. ok is false when the journal has already dropped
// entries past the cursor — the caller missed deletes and must treat every
// cached result as suspect.
func (j *DeleteJournal) Since(cursor uint64) (ids []string, next uint64, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.start + uint64(len(j.ids))
	if cursor < j.start {
		return nil, end, false
	}
	if cursor >= end {
		return nil, end, true
	}
	tail := j.ids[cursor-j.start:]
	out := make([]string, len(tail))
	copy(out, tail)
	return out, end, true
}
