package index

import (
	"io"

	"uniask/internal/textproc"
	"uniask/internal/vector"
)

// The interfaces below decouple the layers above the index from its
// concrete shape, so a monolithic *Index and the N-way sharded facade
// (internal/shard) are interchangeable: the search layer programs against
// Queryable, the ingestion layer against Writer, and the engine holds the
// union, Repository. *Index satisfies all of them; the compile-time
// assertions at the bottom keep that true.

// Searcher is the per-shard query surface the sharded facade drives: plain
// local search plus the two hooks that make cross-shard BM25 exact —
// CollectStats exports a shard's corpus statistics and SearchTextGlobal
// scores with the merged aggregate instead of local stats.
type Searcher interface {
	Epoch() uint64
	SearchText(query string, n int, opts TextOptions) []Hit
	SearchTextGlobal(query string, n int, opts TextOptions, stats *CorpusStats) []Hit
	CollectStats(fields, terms []string) CorpusStats
	SearchVector(field string, q vector.Vector, k int, filters []Filter) []Hit
	// SearchVectorUnit is SearchVector for a query the caller already
	// normalized to unit length — the facade normalizes once per request
	// and fans the same unit vector out to every shard.
	SearchVectorUnit(field string, q vector.Vector, k int, filters []Filter) []Hit
	VectorFields() []string
	SearchableFields() []string
	DocByID(id string) (Document, bool)
}

// Queryable is the read surface the search layer needs: ranked retrieval,
// result materialization, and the staleness signals its query cache keys on
// — the stats snapshot key for score validity and the delete journal for
// precise per-document eviction.
type Queryable interface {
	Epoch() uint64
	// StatsKey identifies the BM25 stats snapshot in effect; it changes only
	// when corpus statistics (and therefore every query's scores) change.
	StatsKey() uint64
	// DeletesSince drains the delete journal from cursor; ok is false when
	// the journal wrapped past the cursor and the caller missed deletes.
	DeletesSince(cursor uint64) (ids []string, next uint64, ok bool)
	SearchText(query string, n int, opts TextOptions) []Hit
	SearchVector(field string, q vector.Vector, k int, filters []Filter) []Hit
	VectorFields() []string
	DocByID(id string) (Document, bool)
}

// Publisher is implemented by stores with a deferred publication point (the
// segmented store and the sharded facade over it): Publish seals the current
// memtable(s) into immutable segments, rotating the stats snapshot key and
// scheduling background compaction. The ingestion layer calls it at the end
// of each bulk load / poll cycle, mirroring a search engine's
// refresh-after-bulk. Stores whose writes publish immediately (the plain
// *Index) simply do not implement it.
type Publisher interface {
	Publish()
}

// Writer is the mutation surface the ingestion layer needs.
type Writer interface {
	Add(Document) error
	AddBulk(docs []Document) error
	Delete(chunkID string) bool
	DeleteParent(parentID string) int
	HasParent(parentID string) bool
}

// Repository is the full index surface the engine holds: queries, writes,
// persistence and the introspection the dashboard and tests rely on.
type Repository interface {
	Queryable
	Writer
	Doc(ord int) Document
	Len() int
	LiveLen() int
	Tombstones() int
	Schema() Schema
	Analyzer() *textproc.Analyzer
	SearchableFields() []string
	LiveDocs() []Document
	Save(w io.Writer) error
}

var (
	_ Searcher   = (*Index)(nil)
	_ Repository = (*Index)(nil)
)

// AddBulk indexes docs in order, stopping at the first error. On a
// monolithic index it is a plain sequential loop; the sharded facade
// overrides it with a parallel per-shard build.
func (ix *Index) AddBulk(docs []Document) error {
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			return err
		}
	}
	return nil
}
