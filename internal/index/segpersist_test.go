package index

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uniask/internal/vector"
)

// segStore builds a segmented store with sealed segments, a live memtable
// and a tombstone — every container feature a snapshot must carry.
func segStore(t testing.TB) *Segmented {
	t.Helper()
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: -1})
	if err := seg.AddBulk(segCorpus(20)); err != nil {
		t.Fatal(err)
	}
	if !seg.Delete("s004#0") {
		t.Fatal("delete failed")
	}
	return seg
}

func TestSegmentedPersistRoundTrip(t *testing.T) {
	seg := segStore(t)
	var buf bytes.Buffer
	if err := seg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSegmented(&buf, Config{}, SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: -1})
	if err != nil {
		t.Fatal(err)
	}

	if restored.Len() != seg.Len() || restored.LiveLen() != seg.LiveLen() || restored.Tombstones() != seg.Tombstones() {
		t.Fatalf("restored %d/%d/%d, want %d/%d/%d",
			restored.Len(), restored.LiveLen(), restored.Tombstones(),
			seg.Len(), seg.LiveLen(), seg.Tombstones())
	}
	if a, b := seg.SegmentStats(), restored.SegmentStats(); a.Segments != b.Segments || a.MemtableDocs != b.MemtableDocs {
		t.Fatalf("topology changed across save/load: %+v vs %+v", a, b)
	}
	if restored.StatsKey() != seg.StatsKey() || restored.Epoch() != seg.Epoch() {
		t.Fatalf("keys changed across save/load: statsKey %d/%d epoch %d/%d",
			restored.StatsKey(), seg.StatsKey(), restored.Epoch(), seg.Epoch())
	}
	for _, q := range segQueries {
		a := seg.SearchText(q, 15, TextOptions{})
		b := restored.SearchText(q, 15, TextOptions{})
		if len(a) != len(b) {
			t.Fatalf("%q: %d hits restored, want %d", q, len(b), len(a))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Fatalf("%q: restored hit %d = {%s %v}, want {%s %v}",
					q, i, b[i].ID, b[i].Score, a[i].ID, a[i].Score)
			}
		}
	}
	// The restored store must keep working: accept writes, seal, publish.
	if err := restored.Add(Document{ID: "new#0", ParentID: "new", Fields: map[string]string{"title": "nuovo documento"}}); err != nil {
		t.Fatal(err)
	}
	before := restored.StatsKey()
	restored.Publish()
	restored.WaitCompaction()
	if restored.StatsKey() == before {
		t.Fatal("restored store did not rotate on publish")
	}
}

// TestSegmentedPersistQuantizedVectorRoundTrip pins the quantized ANN path
// across the segmented container: the int8 arena travels inside each
// part's HNSW stream, so a restored store must reproduce vector rankings
// (ids, scores, order) exactly — sealed segments, live memtable and
// tombstones included — without requantizing or rebuilding any graph.
func TestSegmentedPersistQuantizedVectorRoundTrip(t *testing.T) {
	seg := segStore(t)
	rng := rand.New(rand.NewSource(29))
	queries := make([]vector.Vector, 10)
	for i := range queries {
		q := make(vector.Vector, 16)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		queries[i] = q
	}
	var buf bytes.Buffer
	if err := seg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSegmented(&buf, Config{}, SegmentConfig{MemtableMaxDocs: 8, CompactionFanIn: -1})
	if err != nil {
		t.Fatal(err)
	}
	filters := [][]Filter{nil, {{Field: "domain", Value: "pagamenti"}}}
	for qi, q := range queries {
		for fi, f := range filters {
			a := seg.SearchVector("contentVector", q, 10, f)
			b := restored.SearchVector("contentVector", q, 10, f)
			if len(a) != len(b) {
				t.Fatalf("query %d filter %d: %d hits restored, want %d", qi, fi, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("query %d filter %d rank %d: restored %+v, want %+v", qi, fi, i, b[i], a[i])
				}
			}
		}
	}
}

// TestSegmentedPersistLegacyMigration loads a snapshot written by the plain
// Index.Save into a segmented store: the whole index is adopted as one
// sealed segment, preserving documents, tombstones and rankings.
func TestSegmentedPersistLegacyMigration(t *testing.T) {
	ix, _ := newTestIndex(t)
	ix.Delete("d2#0")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	seg, err := ReadSegmented(&buf, Config{}, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if seg.Len() != ix.Len() || seg.LiveLen() != ix.LiveLen() || seg.Tombstones() != ix.Tombstones() {
		t.Fatalf("migrated %d/%d/%d, want %d/%d/%d",
			seg.Len(), seg.LiveLen(), seg.Tombstones(), ix.Len(), ix.LiveLen(), ix.Tombstones())
	}
	if st := seg.SegmentStats(); st.Segments != 1 || st.MemtableDocs != 0 {
		t.Fatalf("migration should adopt one sealed segment: %+v", st)
	}
	q := "bloccare la carta di credito"
	a := ix.SearchText(q, 10, TextOptions{})
	b := seg.SearchText(q, 10, TextOptions{})
	if len(a) != len(b) {
		t.Fatalf("%d hits after migration, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			t.Fatalf("migrated hit %d = {%s %v}, want {%s %v}", i, b[i].ID, b[i].Score, a[i].ID, a[i].Score)
		}
	}
	// The migrated store keeps the snapshot's schema for future memtables.
	if err := seg.Add(Document{ID: "post#0", ParentID: "post", Fields: map[string]string{"title": "dopo la migrazione"}}); err != nil {
		t.Fatal(err)
	}
	if hits := seg.SearchText("dopo la migrazione", 5, TextOptions{}); len(hits) == 0 || hits[0].ID != "post#0" {
		t.Fatalf("post-migration write not searchable: %v", hits)
	}
}

// TestSegmentedReadRejectsWrongContainer pins the wrong-container refusals
// of Read and ReadSegmented: the sentinel must survive errors.Is for
// programmatic branching, and the message must name the source (the file
// path when one is available, "stream" otherwise) and the detected format so
// the operator reading the log knows which file went to the wrong loader.
func TestSegmentedReadRejectsWrongContainer(t *testing.T) {
	seg := segStore(t)
	var segStream bytes.Buffer
	if err := seg.Save(&segStream); err != nil {
		t.Fatal(err)
	}
	shardedStream := []byte(ShardedSnapshotMagic + "garbage")

	// A file-backed source must be named by path in the error.
	shardedPath := filepath.Join(t.TempDir(), "cluster.snap")
	if err := os.WriteFile(shardedPath, shardedStream, 0o644); err != nil {
		t.Fatal(err)
	}
	segmentedPath := filepath.Join(t.TempDir(), "store.snap")
	if err := os.WriteFile(segmentedPath, segStream.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	openFile := func(path string) io.Reader {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}

	tests := []struct {
		name     string
		read     func(io.Reader) error
		src      io.Reader
		sentinel error
		wantName string
		wantKind string
	}{
		{
			name:     "Read refuses a sharded stream",
			read:     func(r io.Reader) error { _, err := Read(r, Config{}); return err },
			src:      bytes.NewReader(shardedStream),
			sentinel: ErrShardedSnapshot,
			wantName: "stream",
			wantKind: "sharded snapshot",
		},
		{
			name:     "Read refuses a segmented stream",
			read:     func(r io.Reader) error { _, err := Read(r, Config{}); return err },
			src:      bytes.NewReader(segStream.Bytes()),
			sentinel: ErrSegmentedSnapshot,
			wantName: "stream",
			wantKind: "segmented snapshot",
		},
		{
			name:     "Read refuses a sharded file by path",
			read:     func(r io.Reader) error { _, err := Read(r, Config{}); return err },
			src:      openFile(shardedPath),
			sentinel: ErrShardedSnapshot,
			wantName: shardedPath,
			wantKind: "sharded snapshot",
		},
		{
			name:     "Read refuses a segmented file by path",
			read:     func(r io.Reader) error { _, err := Read(r, Config{}); return err },
			src:      openFile(segmentedPath),
			sentinel: ErrSegmentedSnapshot,
			wantName: segmentedPath,
			wantKind: "segmented snapshot",
		},
		{
			name:     "ReadSegmented refuses a sharded stream",
			read:     func(r io.Reader) error { _, err := ReadSegmented(r, Config{}, SegmentConfig{}); return err },
			src:      bytes.NewReader(shardedStream),
			sentinel: ErrShardedSnapshot,
			wantName: "stream",
			wantKind: "sharded snapshot",
		},
		{
			name:     "ReadSegmented refuses a sharded file by path",
			read:     func(r io.Reader) error { _, err := ReadSegmented(r, Config{}, SegmentConfig{}); return err },
			src:      openFile(shardedPath),
			sentinel: ErrShardedSnapshot,
			wantName: shardedPath,
			wantKind: "sharded snapshot",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.read(tc.src)
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want errors.Is(%v)", err, tc.sentinel)
			}
			if !strings.Contains(err.Error(), tc.wantName) {
				t.Errorf("error %q does not name the source %q", err, tc.wantName)
			}
			if !strings.Contains(err.Error(), "detected a "+tc.wantKind) {
				t.Errorf("error %q does not name the detected format %q", err, tc.wantKind)
			}
		})
	}
}

// TestSegmentedPersistTruncated verifies every truncation point of a valid
// container comes back as an error — never a panic, never a silent partial
// load.
func TestSegmentedPersistTruncated(t *testing.T) {
	seg := segStore(t)
	var buf bytes.Buffer
	if err := seg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{len(SegmentedSnapshotMagic) + 3, len(SegmentedSnapshotMagic) + 9, len(full) / 2, len(full) - 1} {
		if n >= len(full) {
			continue
		}
		if _, err := ReadSegmented(bytes.NewReader(full[:n]), Config{}, SegmentConfig{}); err == nil {
			t.Fatalf("truncation at %d bytes accepted", n)
		}
	}
}

// FuzzSegmentedManifest fuzzes the container decode path with arbitrary
// bytes after the magic: corrupt manifests, hostile section lengths and
// truncated segment streams must all error out without panicking or
// allocating unboundedly. Wired into `make fuzz-short`.
func FuzzSegmentedManifest(f *testing.F) {
	// Seed with a valid container, a truncation of it, and hand-built junk.
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: 2, CompactionFanIn: -1})
	if err := seg.AddBulk(segCorpus(5)); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := seg.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte(SegmentedSnapshotMagic))
	f.Add([]byte(SegmentedSnapshotMagic + "\x00\x00\x00\x00\x00\x00\x00\x08garbage!"))
	f.Add([]byte(SegmentedSnapshotMagic + "\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("not a container at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSegmented(bytes.NewReader(data), Config{}, SegmentConfig{})
		if err != nil {
			return
		}
		// A stream that decodes must yield a usable store.
		s.LiveLen()
		s.SearchText("conto", 5, TextOptions{})
	})
}
