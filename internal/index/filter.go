package index

// Filter bitsets: filterable fields are low-cardinality metadata (domain,
// topic, section, keywords), so the same (field, value) predicates recur on
// nearly every filtered query. Instead of materializing a throwaway
// map[int32]bool per call, each (field, value) pair resolves once to a
// []uint64 bitset over document ordinals, cached on the index; conjunctive
// filters intersect cached bitsets with word-wise AND. Add invalidates
// exactly the entries whose posting list it extends, so a cached bitset is
// never stale. Tombstones are deliberately not folded in — deletion is
// checked separately on the query path, keeping Delete from invalidating
// the cache at all.

// filterKey identifies one cached (field, value) bitset.
type filterKey struct {
	field, value string
}

// bitTest reports whether ord is set in bits. Ordinals past the end of the
// bitset (documents added after the bitset was built, with other values)
// are correctly absent.
func bitTest(bits []uint64, ord int32) bool {
	w := int(ord >> 6)
	return w < len(bits) && bits[w]&(1<<(uint(ord)&63)) != 0
}

// filterBits resolves conjunctive filters to the allowed-ordinal bitset.
// filtered is false when no filters are given (everything allowed); an
// empty bits slice with filtered=true allows nothing. The caller must hold
// ix.mu (read or write).
func (ix *Index) filterBits(filters []Filter) (bits []uint64, filtered bool) {
	if len(filters) == 0 {
		return nil, false
	}
	bits = ix.valueBits(filters[0])
	if len(filters) == 1 {
		return bits, true
	}
	// Intersect into a scratch copy so cached bitsets stay pristine.
	out := make([]uint64, len(bits))
	copy(out, bits)
	for _, f := range filters[1:] {
		b := ix.valueBits(f)
		if len(b) < len(out) {
			out = out[:len(b)]
		}
		for i := range out {
			out[i] &= b[i]
		}
	}
	return out, true
}

// valueBits returns the cached bitset of ordinals carrying value in field,
// building it on first use. Concurrent readers may race to build the same
// entry; fcMu serializes the cache map itself.
func (ix *Index) valueBits(f Filter) []uint64 {
	key := filterKey{field: f.Field, value: f.Value}
	ix.fcMu.Lock()
	defer ix.fcMu.Unlock()
	if b, ok := ix.filterCache[key]; ok {
		return b
	}
	docs := ix.filters[f.Field][f.Value]
	var bits []uint64
	if len(docs) > 0 {
		max := docs[0]
		for _, d := range docs {
			if d > max {
				max = d
			}
		}
		bits = make([]uint64, int(max)>>6+1)
		for _, d := range docs {
			bits[d>>6] |= 1 << (uint(d) & 63)
		}
	}
	ix.filterCache[key] = bits
	return bits
}
