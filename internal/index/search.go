package index

import (
	"math"
	"sort"

	"uniask/internal/vector"
)

// Hit is one full-text search result.
type Hit struct {
	// Ord is the internal document ordinal (usable with Index.Doc).
	Ord int
	// ID is the external chunk id.
	ID string
	// Score is the BM25 relevance score.
	Score float64
}

// Filter is an exact-match predicate on a filterable field.
type Filter struct {
	Field string
	Value string
}

// TextOptions configures full-text search.
type TextOptions struct {
	// Fields restricts scoring to these searchable fields; all searchable
	// fields are used when empty.
	Fields []string
	// FieldWeights multiplies the BM25 contribution of a field (used by the
	// paper's title-boost experiments T5/T50/T500). Weight 0 means 1.
	FieldWeights map[string]float64
	// Filters are conjunctive exact-match predicates.
	Filters []Filter
}

// scoreAcc is the pooled flat score accumulator of the BM25 hot path: a
// []float64 indexed by document ordinal, a bitset marking which ordinals
// were touched, and the touched-ordinal list used to reset both in O(hits)
// instead of O(corpus).
type scoreAcc struct {
	scores  []float64
	seen    []uint64
	touched []int32
}

// getAcc returns an accumulator sized for the current corpus; the caller
// must hold ix.mu.
func (ix *Index) getAcc() *scoreAcc {
	a, _ := ix.accPool.Get().(*scoreAcc)
	if a == nil {
		a = &scoreAcc{}
	}
	if n := len(ix.docs); len(a.scores) < n {
		a.scores = make([]float64, n)
		a.seen = make([]uint64, (n+63)/64)
	}
	return a
}

// putAcc zeroes the touched entries and recycles the accumulator.
func (ix *Index) putAcc(a *scoreAcc) {
	for _, ord := range a.touched {
		a.scores[ord] = 0
		a.seen[ord>>6] &^= 1 << (uint(ord) & 63)
	}
	a.touched = a.touched[:0]
	ix.accPool.Put(a)
}

// SearchText ranks documents against query with Okapi BM25, summing
// per-field scores (weighted when FieldWeights is set), and returns the top
// n hits.
//
// Hot path: scores accumulate into a pooled flat []float64 indexed by doc
// ordinal (no per-query map), the top n are selected with a bounded
// min-heap instead of sorting every candidate, and the tombstone and filter
// branches are skipped entirely when no deletes/filters exist. The ranking
// (score desc, id asc) is identical to a full sort.
func (ix *Index) SearchText(query string, n int, opts TextOptions) []Hit {
	return ix.searchText(query, n, opts, nil)
}

// SearchTextGlobal is SearchText with the BM25 corpus statistics — document
// count, per-field total token length, per-term document frequency —
// injected by the caller instead of derived from this index alone. The
// sharded facade collects stats across all shards (CollectStats + Merge) and
// passes the aggregate here, so each shard scores with global idf and
// average length and the merged ranking is identical to a monolithic index.
//
// The stats must cover every queried field and term present in this shard
// (a term's global DF is never below its local DF). nil stats falls back to
// local statistics, i.e. plain SearchText.
func (ix *Index) SearchTextGlobal(query string, n int, opts TextOptions, stats *CorpusStats) []Hit {
	return ix.searchText(query, n, opts, stats)
}

func (ix *Index) searchText(query string, n int, opts TextOptions, gs *CorpusStats) []Hit {
	if n <= 0 {
		return nil
	}
	terms := ix.cfg.Analyzer.AnalyzeTerms(query)
	if len(terms) == 0 {
		return nil
	}
	// Deduplicate query terms in place, keeping multiplicity as a weight —
	// Lucene scores repeated terms once per occurrence. Queries are short,
	// so the quadratic scan beats a map.
	counts := make([]int32, 0, len(terms))
	uniq := 0
dedup:
	for _, t := range terms {
		for i := 0; i < uniq; i++ {
			if terms[i] == t {
				counts[i]++
				continue dedup
			}
		}
		terms[uniq] = t
		counts = append(counts, 1)
		uniq++
	}
	terms = terms[:uniq]

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docs) == 0 {
		return nil
	}

	fieldNames := opts.Fields
	if len(fieldNames) == 0 {
		fieldNames = ix.searchNames
	}
	allowed, filtered := ix.filterBits(opts.Filters)
	noDeletes := len(ix.deleted) == 0

	acc := ix.getAcc()
	scores, seen, touched := acc.scores, acc.seen, acc.touched

	N := float64(len(ix.docs))
	if gs != nil {
		N = float64(gs.Docs)
	}
	k1, b := ix.cfg.BM25.K1, ix.cfg.BM25.B
	for _, fname := range fieldNames {
		fi, ok := ix.fields[fname]
		if !ok {
			continue
		}
		weight := 1.0
		if w, ok := opts.FieldWeights[fname]; ok && w != 0 {
			weight = w
		}
		if len(fi.docLens) == 0 {
			continue
		}
		var avgLen float64
		var globalDF map[string]int
		if gs != nil {
			if gs.Docs == 0 {
				continue
			}
			fstats := gs.Fields[fname]
			avgLen = float64(fstats.TotalLen) / float64(gs.Docs)
			globalDF = fstats.DF
		} else {
			avgLen = float64(fi.totalLen) / float64(len(fi.docLens))
		}
		if avgLen == 0 {
			continue
		}
		docLens := fi.docLens
		for ti, term := range terms {
			pl := fi.postings[term]
			if len(pl) == 0 {
				continue
			}
			// Okapi BM25 idf with the standard +1 smoothing (Lucene).
			df := float64(len(pl))
			if globalDF != nil {
				if gdf := globalDF[term]; gdf > len(pl) {
					df = float64(gdf)
				}
			}
			idf := math.Log(1 + (N-df+0.5)/(df+0.5))
			wm := weight * float64(counts[ti])
			if noDeletes && !filtered {
				// Fast path: no tombstone or filter check per posting.
				for _, p := range pl {
					tf := float64(p.tf)
					dl := float64(docLens[p.doc])
					s := idf * (tf * (k1 + 1)) / (tf + k1*(1-b+b*dl/avgLen))
					if seen[p.doc>>6]&(1<<(uint(p.doc)&63)) == 0 {
						seen[p.doc>>6] |= 1 << (uint(p.doc) & 63)
						touched = append(touched, p.doc)
					}
					scores[p.doc] += wm * s
				}
				continue
			}
			for _, p := range pl {
				if !noDeletes && ix.deleted[p.doc] {
					continue
				}
				if filtered && !bitTest(allowed, p.doc) {
					continue
				}
				tf := float64(p.tf)
				dl := float64(docLens[p.doc])
				s := idf * (tf * (k1 + 1)) / (tf + k1*(1-b+b*dl/avgLen))
				if seen[p.doc>>6]&(1<<(uint(p.doc)&63)) == 0 {
					seen[p.doc>>6] |= 1 << (uint(p.doc) & 63)
					touched = append(touched, p.doc)
				}
				scores[p.doc] += wm * s
			}
		}
	}
	acc.touched = touched

	hits := ix.selectTopN(scores, touched, n)
	ix.putAcc(acc)
	return hits
}

// selectTopN picks the n best candidates under the total order (score desc,
// id asc). For candidate sets larger than n it maintains a bounded min-heap
// rooted at the current worst hit; since the order is total (ids are
// unique) the result is identical to fully sorting all candidates and
// truncating. The caller must hold ix.mu.
func (ix *Index) selectTopN(scores []float64, touched []int32, n int) []Hit {
	if len(touched) <= n {
		hits := make([]Hit, 0, len(touched))
		for _, ord := range touched {
			hits = append(hits, Hit{Ord: int(ord), ID: ix.docs[ord].ID, Score: scores[ord]})
		}
		SortHits(hits)
		return hits
	}
	hits := make([]Hit, 0, n)
	for _, ord := range touched {
		h := Hit{Ord: int(ord), ID: ix.docs[ord].ID, Score: scores[ord]}
		if len(hits) < n {
			hits = append(hits, h)
			siftUp(hits, len(hits)-1)
			continue
		}
		if worseHit(hits[0], h) {
			hits[0] = h
			siftDown(hits, 0)
		}
	}
	SortHits(hits)
	return hits
}

// worseHit reports whether a ranks strictly below b (lower score, or equal
// score and lexicographically greater id).
func worseHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// siftUp restores the min-heap (worst hit at the root) after appending at i.
func siftUp(h []Hit, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worseHit(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the min-heap after replacing the root.
func siftDown(h []Hit, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && worseHit(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && worseHit(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// SortHits orders hits by score descending, ties broken by id ascending —
// the canonical total order of every text search result in the system. The
// sharded facade re-sorts the union of per-shard hits with it, which is why
// it is exported: a single total order shared by shard merge and local
// top-n selection is what makes sharded and monolithic rankings identical.
func SortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}

// SearchVector returns the k nearest chunks to q in the given vector field,
// optionally filtered. Tombstones and filter bitsets are pushed into the
// graph walk as an Accept predicate — disqualified chunks are traversed for
// connectivity but never occupy result slots — so heavy filtering fills k
// survivors in one walk instead of the old geometric over-fetch-and-
// re-search loop.
func (ix *Index) SearchVector(field string, q vector.Vector, k int, filters []Filter) []Hit {
	qn := vector.Normalize(append(vector.Vector(nil), q...))
	return ix.SearchVectorUnit(field, qn, k, filters)
}

// SearchVectorUnit is SearchVector for callers that already normalized the
// query once per request (the segmented store and the shard facade fan one
// unit query out to every part). q must be unit length and is not modified.
func (ix *Index) SearchVectorUnit(field string, q vector.Vector, k int, filters []Filter) []Hit {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	vx, ok := ix.vecs[field]
	if !ok || k <= 0 {
		return nil
	}
	allowed, filtered := ix.filterBits(filters)
	var accept vector.Accept
	if deleted := ix.deleted; filtered || len(deleted) > 0 {
		accept = func(id int32) bool {
			if len(deleted) > 0 && deleted[id] {
				return false
			}
			return !filtered || bitTest(allowed, id)
		}
	}
	res := vx.SearchUnit(q, k, accept)
	hits := make([]Hit, 0, len(res))
	for _, r := range res {
		hits = append(hits, Hit{Ord: r.ID, ID: ix.docs[r.ID].ID, Score: 1 - float64(r.Distance)})
	}
	return hits
}

// VectorFields lists the vector fields present in the schema, sorted. The
// returned slice is computed once at construction and shared — callers must
// treat it as read-only.
func (ix *Index) VectorFields() []string { return ix.vecNames }

// SearchableFields lists the searchable fields, sorted; shared, read-only.
func (ix *Index) SearchableFields() []string { return ix.searchNames }

// TermStats reports document frequency of an analyzed term in a field
// (diagnostics and tests).
func (ix *Index) TermStats(field, term string) (df int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fi, ok := ix.fields[field]
	if !ok {
		return 0
	}
	return len(fi.postings[term])
}
