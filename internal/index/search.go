package index

import (
	"math"
	"sort"

	"uniask/internal/vector"
)

// Hit is one full-text search result.
type Hit struct {
	// Ord is the internal document ordinal (usable with Index.Doc).
	Ord int
	// ID is the external chunk id.
	ID string
	// Score is the BM25 relevance score.
	Score float64
}

// Filter is an exact-match predicate on a filterable field.
type Filter struct {
	Field string
	Value string
}

// TextOptions configures full-text search.
type TextOptions struct {
	// Fields restricts scoring to these searchable fields; all searchable
	// fields are used when empty.
	Fields []string
	// FieldWeights multiplies the BM25 contribution of a field (used by the
	// paper's title-boost experiments T5/T50/T500). Weight 0 means 1.
	FieldWeights map[string]float64
	// Filters are conjunctive exact-match predicates.
	Filters []Filter
}

// SearchText ranks documents against query with Okapi BM25, summing
// per-field scores (weighted when FieldWeights is set), and returns the top
// n hits.
func (ix *Index) SearchText(query string, n int, opts TextOptions) []Hit {
	if n <= 0 || len(ix.docs) == 0 {
		return nil
	}
	terms := ix.cfg.Analyzer.AnalyzeTerms(query)
	if len(terms) == 0 {
		return nil
	}
	// Deduplicate query terms but keep multiplicity as a weight, matching
	// Lucene's behavior of scoring repeated terms once per occurrence.
	qcount := make(map[string]int, len(terms))
	for _, t := range terms {
		qcount[t]++
	}

	fieldNames := opts.Fields
	if len(fieldNames) == 0 {
		for name := range ix.fields {
			fieldNames = append(fieldNames, name)
		}
		sort.Strings(fieldNames)
	}

	allowed := ix.filterSet(opts.Filters)

	scores := make(map[int32]float64)
	N := float64(len(ix.docs))
	for _, fname := range fieldNames {
		fi, ok := ix.fields[fname]
		if !ok {
			continue
		}
		weight := 1.0
		if w, ok := opts.FieldWeights[fname]; ok && w != 0 {
			weight = w
		}
		avgLen := 0.0
		if len(fi.docLens) > 0 {
			avgLen = float64(fi.totalLen) / float64(len(fi.docLens))
		}
		if avgLen == 0 {
			continue
		}
		for term, mult := range qcount {
			pl := fi.postings[term]
			if len(pl) == 0 {
				continue
			}
			// Okapi BM25 idf with the standard +1 smoothing (Lucene).
			df := float64(len(pl))
			idf := math.Log(1 + (N-df+0.5)/(df+0.5))
			for _, p := range pl {
				if ix.isDeleted(p.doc) {
					continue
				}
				if allowed != nil && !allowed[p.doc] {
					continue
				}
				tf := float64(p.tf)
				dl := float64(fi.docLens[p.doc])
				k1, b := ix.cfg.BM25.K1, ix.cfg.BM25.B
				s := idf * (tf * (k1 + 1)) / (tf + k1*(1-b+b*dl/avgLen))
				scores[p.doc] += weight * float64(mult) * s
			}
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Ord: int(doc), ID: ix.docs[doc].ID, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if n < len(hits) {
		hits = hits[:n]
	}
	return hits
}

// SearchVector returns the k nearest chunks to q in the given vector field,
// optionally post-filtered.
func (ix *Index) SearchVector(field string, q vector.Vector, k int, filters []Filter) []Hit {
	vx, ok := ix.vecs[field]
	if !ok || k <= 0 {
		return nil
	}
	allowed := ix.filterSet(filters)
	// Over-fetch when filtering or when tombstones exist so k survivors
	// remain.
	fetch := k
	if allowed != nil || len(ix.deleted) > 0 {
		fetch = k * 4
	}
	res := vx.Search(q, fetch)
	hits := make([]Hit, 0, k)
	for _, r := range res {
		if ix.isDeleted(int32(r.ID)) {
			continue
		}
		if allowed != nil && !allowed[int32(r.ID)] {
			continue
		}
		hits = append(hits, Hit{Ord: r.ID, ID: ix.docs[r.ID].ID, Score: 1 - float64(r.Distance)})
		if len(hits) == k {
			break
		}
	}
	return hits
}

// VectorFields lists the vector fields present in the schema, sorted.
func (ix *Index) VectorFields() []string {
	var out []string
	for name := range ix.vecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// filterSet resolves conjunctive filters to the allowed doc set (nil when
// no filters are given).
func (ix *Index) filterSet(filters []Filter) map[int32]bool {
	if len(filters) == 0 {
		return nil
	}
	var allowed map[int32]bool
	for _, f := range filters {
		vals := ix.filters[f.Field]
		docs := vals[f.Value]
		set := make(map[int32]bool, len(docs))
		for _, d := range docs {
			set[d] = true
		}
		if allowed == nil {
			allowed = set
			continue
		}
		for d := range allowed {
			if !set[d] {
				delete(allowed, d)
			}
		}
	}
	if allowed == nil {
		allowed = map[int32]bool{}
	}
	return allowed
}

// TermStats reports document frequency of an analyzed term in a field
// (diagnostics and tests).
func (ix *Index) TermStats(field, term string) (df int) {
	fi, ok := ix.fields[field]
	if !ok {
		return 0
	}
	return len(fi.postings[term])
}
