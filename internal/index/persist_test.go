package index

import (
	"bytes"
	"testing"
)

func TestPersistRoundTrip(t *testing.T) {
	ix, emb := newTestIndex(t)

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}

	if restored.Len() != ix.Len() {
		t.Fatalf("len %d != %d", restored.Len(), ix.Len())
	}
	// Text search results must be identical.
	q := "bloccare la carta di credito"
	a := ix.SearchText(q, 10, TextOptions{})
	b := restored.SearchText(q, 10, TextOptions{})
	if len(a) != len(b) {
		t.Fatalf("text results differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("text hit %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Vector search results must be identical (HNSW graph restored, not
	// rebuilt).
	qv := emb.Embed(q)
	av := ix.SearchVector("contentVector", qv, 3, nil)
	bv := restored.SearchVector("contentVector", qv, 3, nil)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("vector hit %d differs: %+v vs %+v", i, av[i], bv[i])
		}
	}
	// Filters must survive.
	fa := ix.SearchText("carta conto", 10, TextOptions{Filters: []Filter{{Field: "domain", Value: "prodotti"}}})
	fb := restored.SearchText("carta conto", 10, TextOptions{Filters: []Filter{{Field: "domain", Value: "prodotti"}}})
	if len(fa) != len(fb) {
		t.Fatalf("filtered results differ: %d vs %d", len(fa), len(fb))
	}
	// Stored documents and retrievable projection must survive.
	doc, ok := restored.DocByID("d1#0")
	if !ok || doc.Fields["title"] == "" {
		t.Fatalf("restored doc = %+v, %v", doc, ok)
	}
	// The restored index must accept new documents.
	if err := restored.Add(Document{ID: "new#0", Fields: map[string]string{"title": "nuovo documento"}}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistEmptyIndex(t *testing.T) {
	ix := New(Config{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Fatalf("len = %d", restored.Len())
	}
	if hits := restored.SearchText("qualcosa", 5, TextOptions{}); hits != nil {
		t.Fatalf("hits = %v", hits)
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gob stream")), Config{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDeleteAndReAdd(t *testing.T) {
	ix, emb := newTestIndex(t)
	if !ix.Delete("d1#0") {
		t.Fatal("Delete returned false")
	}
	if ix.Delete("d1#0") {
		t.Fatal("double delete returned true")
	}
	if ix.LiveLen() != 4 || ix.Tombstones() != 1 {
		t.Fatalf("live=%d tombstones=%d", ix.LiveLen(), ix.Tombstones())
	}
	// Tombstoned chunk disappears from text and vector search.
	for _, h := range ix.SearchText("bloccare la carta di credito", 10, TextOptions{}) {
		if h.ID == "d1#0" {
			t.Fatal("tombstoned chunk in text results")
		}
	}
	qv := emb.Embed("bloccare la carta di credito")
	for _, h := range ix.SearchVector("contentVector", qv, 5, nil) {
		if h.ID == "d1#0" {
			t.Fatal("tombstoned chunk in vector results")
		}
	}
	if _, ok := ix.DocByID("d1#0"); ok {
		t.Fatal("tombstoned chunk still resolvable")
	}
	// The external id is free for a replacement.
	err := ix.Add(Document{ID: "d1#0", ParentID: "d1", Fields: map[string]string{
		"title": "Blocco carta aggiornato", "content": "Per bloccare la carta usare la nuova app mobile.",
	}})
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.SearchText("nuova app mobile", 5, TextOptions{})
	if len(hits) == 0 || hits[0].ID != "d1#0" {
		t.Fatalf("replacement not searchable: %v", hits)
	}
}

func TestDeleteParent(t *testing.T) {
	ix, _ := newTestIndex(t)
	ix.Add(Document{ID: "d1#1", ParentID: "d1", Fields: map[string]string{"content": "secondo frammento della carta"}})
	if n := ix.DeleteParent("d1"); n != 2 {
		t.Fatalf("DeleteParent removed %d chunks, want 2", n)
	}
	if ix.HasParent("d1") {
		t.Fatal("parent still live")
	}
	if n := ix.DeleteParent("nonexistent"); n != 0 {
		t.Fatalf("DeleteParent(missing) = %d", n)
	}
}

func TestCompactDropsTombstones(t *testing.T) {
	ix, emb := newTestIndex(t)
	ix.Delete("d2#0")
	compacted, err := ix.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Len() != 4 || compacted.Tombstones() != 0 {
		t.Fatalf("compacted len=%d tombstones=%d", compacted.Len(), compacted.Tombstones())
	}
	// Search results must be equivalent to the tombstoned index.
	q := "bloccare la carta di credito"
	a := ix.SearchText(q, 10, TextOptions{})
	b := compacted.SearchText(q, 10, TextOptions{})
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("hit %d differs: %s vs %s", i, a[i].ID, b[i].ID)
		}
	}
	_ = emb
}

func TestPersistPreservesTombstones(t *testing.T) {
	ix, _ := newTestIndex(t)
	ix.Delete("d3#0")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.LiveLen() != ix.LiveLen() || restored.Tombstones() != 1 {
		t.Fatalf("restored live=%d tombstones=%d", restored.LiveLen(), restored.Tombstones())
	}
	if _, ok := restored.DocByID("d3#0"); ok {
		t.Fatal("tombstoned chunk resurrected by persistence")
	}
	for _, h := range restored.SearchText("ERR-4032", 5, TextOptions{}) {
		if h.ID == "d3#0" {
			t.Fatal("tombstoned chunk searchable after restore")
		}
	}
}
