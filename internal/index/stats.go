package index

// Corpus statistics. Okapi BM25 scores depend on three corpus-level
// quantities — the document count N, the per-field average length, and the
// per-term document frequency — and all three change meaning under
// sharding: a shard that computed them locally would rank its own documents
// against a different idf curve than its neighbors, and the merged top-k
// would diverge from the monolithic ranking. CollectStats exports one
// shard's contribution, CorpusStats.Merge folds contributions together, and
// SearchTextGlobal consumes the aggregate, so the sharded facade scores
// every document with exactly the statistics a monolithic index would use.

// FieldStats is one field's contribution to the corpus statistics.
type FieldStats struct {
	// TotalLen is the summed analyzed token count of the field over all
	// documents (the numerator of the BM25 average length).
	TotalLen int
	// DF maps an analyzed query term to the number of documents whose field
	// contains it. Terms absent from the shard are omitted.
	DF map[string]int
}

// CorpusStats aggregates the corpus-level BM25 inputs across shards.
type CorpusStats struct {
	// Docs counts documents including tombstoned ones, matching the N a
	// monolithic index uses (tombstones stay in its posting lists too).
	Docs int
	// Fields holds per-searchable-field statistics.
	Fields map[string]FieldStats
}

// Merge folds o into s. Document counts, total lengths and document
// frequencies are all additive because every document lives on exactly one
// shard.
func (s *CorpusStats) Merge(o CorpusStats) {
	s.Docs += o.Docs
	if s.Fields == nil {
		s.Fields = make(map[string]FieldStats, len(o.Fields))
	}
	for name, of := range o.Fields {
		f := s.Fields[name]
		f.TotalLen += of.TotalLen
		if f.DF == nil {
			f.DF = make(map[string]int, len(of.DF))
		}
		for t, df := range of.DF {
			f.DF[t] += df
		}
		s.Fields[name] = f
	}
}

// CollectStats gathers this index's BM25 statistics for the given
// searchable fields (all of them when empty) restricted to the given
// analyzed terms. The result is self-contained and safe to Merge with other
// shards' contributions after the lock is released; it reflects the index
// state at one instant, consistent with a search run under the same epoch.
func (ix *Index) CollectStats(fields, terms []string) CorpusStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(fields) == 0 {
		fields = ix.searchNames
	}
	cs := CorpusStats{Docs: len(ix.docs), Fields: make(map[string]FieldStats, len(fields))}
	for _, fname := range fields {
		fi, ok := ix.fields[fname]
		if !ok {
			continue
		}
		fs := FieldStats{TotalLen: fi.totalLen, DF: make(map[string]int, len(terms))}
		for _, t := range terms {
			if df := len(fi.postings[t]); df > 0 {
				fs.DF[t] = df
			}
		}
		cs.Fields[fname] = fs
	}
	return cs
}

// Stats is a point-in-time gauge snapshot of one index, surfaced per shard
// on the monitoring dashboard.
type Stats struct {
	// Docs counts chunks ever inserted, including tombstoned ones.
	Docs int
	// Live counts searchable (non-tombstoned) chunks.
	Live int
	// Tombstones counts deleted-but-unreclaimed chunks.
	Tombstones int
	// Terms counts distinct (field, term) posting lists.
	Terms int
	// Postings counts posting entries across all fields — the inverted
	// index's dominant memory term.
	Postings int
}

// Stats computes the gauge snapshot. It walks every posting list, so it is
// meant for dashboard polling, not the query hot path.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{Docs: len(ix.docs), Live: len(ix.byID), Tombstones: len(ix.deleted)}
	for _, fi := range ix.fields {
		st.Terms += len(fi.postings)
		for _, pl := range fi.postings {
			st.Postings += len(pl)
		}
	}
	return st
}

// LiveDocs returns the live (non-tombstoned) documents in insertion order.
// The documents share storage with the index — callers must not mutate
// them. The sharded facade uses it to migrate a snapshot across shard
// layouts by re-adding every live document.
func (ix *Index) LiveDocs() []Document {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Document, 0, len(ix.byID))
	for ord, doc := range ix.docs {
		if ix.isDeleted(int32(ord)) {
			continue
		}
		if _, live := ix.byID[doc.ID]; !live {
			continue
		}
		out = append(out, doc)
	}
	return out
}
