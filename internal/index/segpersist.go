package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Segmented snapshot container. The layout mirrors the sharded container:
// a magic prefix, a gob-encoded manifest, then one single-index snapshot
// per sealed segment (oldest first) and a final one for the memtable, each
// section length-prefixed so the frame boundaries never depend on the gob
// decoder stopping in the right place:
//
//	"uniask-segmented-snapshot/"          (SegmentedSnapshotMagic)
//	u64 big-endian manifest length, manifest gob
//	per sealed segment: u64 big-endian length, index snapshot (Save format)
//	memtable: u64 big-endian length, index snapshot (Save format)
//
// The magic lets Read reject a segmented stream with a pointed error, and
// lets ReadSegmented accept a legacy single-file snapshot by adopting the
// whole monolithic index as one sealed segment — a migration that costs no
// re-analysis and changes no statistics (tombstones ride along).

// SegmentedSnapshotMagic is the byte prefix of the segmented snapshot
// container written by Segmented.Save.
const SegmentedSnapshotMagic = "uniask-segmented-snapshot/"

// ErrSegmentedSnapshot is returned by Read when given a segmented snapshot
// container, which ReadSegmented (or any engine, all of which hold
// segmented stores) restores.
var ErrSegmentedSnapshot = errors.New(
	"index: stream is a segmented snapshot container, not a single-index snapshot; " +
		"load it with index.ReadSegmented")

// segManifest is the gob-encoded container header.
type segManifest struct {
	// Version of the container layout.
	Version int
	// Segments is the number of sealed-segment sections that follow; one
	// more section (the memtable) always trails them.
	Segments int
	// NextSeq and Seq restore the arrival sequence so vector-tie ordering
	// survives a save/load cycle.
	NextSeq uint64
	Seq     map[string]uint64
	// StatsKey and Epoch carry the published-snapshot key and mutation
	// epoch across restarts so monotonicity guarantees hold process-wide.
	StatsKey uint64
	Epoch    uint64
}

// segManifestVersion is the current container layout version.
const segManifestVersion = 1

// maxSegmentSections bounds how many sections a manifest may declare —
// far above any real store, low enough that a corrupt count cannot drive
// unbounded allocation.
const maxSegmentSections = 1 << 20

// writeSegSection writes one length-prefixed container section.
func writeSegSection(w io.Writer, b []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// readSegSection frames one length-prefixed container section.
func readSegSection(r io.Reader) (io.Reader, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return io.LimitReader(r, int64(binary.BigEndian.Uint64(hdr[:]))), nil
}

// decodeSegManifest frames and decodes the manifest section, validating
// every field a later allocation or loop trusts. Corrupt or truncated input
// must come back as an error, never a panic — the fuzz target in
// segpersist_test.go holds it to that.
func decodeSegManifest(r io.Reader) (segManifest, error) {
	sec, err := readSegSection(r)
	if err != nil {
		return segManifest{}, fmt.Errorf("index: read segmented manifest: %w", err)
	}
	var m segManifest
	if err := gob.NewDecoder(sec).Decode(&m); err != nil {
		return segManifest{}, fmt.Errorf("index: decode segmented manifest: %w", err)
	}
	if m.Version != segManifestVersion {
		return segManifest{}, fmt.Errorf("index: unsupported segmented container version %d (want %d)", m.Version, segManifestVersion)
	}
	if m.Segments < 0 || m.Segments > maxSegmentSections {
		return segManifest{}, fmt.Errorf("index: corrupt segmented manifest: %d segments", m.Segments)
	}
	return m, nil
}

// Save serializes the store as a segmented snapshot container. The store
// read lock is held for the duration, which also excludes a concurrent
// compaction splice, so the section list is internally consistent; as with
// the monolithic snapshot, save between ingestion cycles for a
// corpus-consistent image.
func (s *Segmented) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, err := io.WriteString(w, SegmentedSnapshotMagic); err != nil {
		return fmt.Errorf("index: write segmented magic: %w", err)
	}
	s.seqMu.RLock()
	m := segManifest{
		Version:  segManifestVersion,
		Segments: len(s.sealed),
		NextSeq:  s.nextSeq,
		Seq:      make(map[string]uint64, len(s.seq)),
		StatsKey: s.statsKey.Load(),
		Epoch:    s.epoch.Load(),
	}
	for id, sq := range s.seq {
		m.Seq[id] = sq
	}
	s.seqMu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("index: encode segmented manifest: %w", err)
	}
	if err := writeSegSection(w, buf.Bytes()); err != nil {
		return fmt.Errorf("index: write segmented manifest: %w", err)
	}
	for i, part := range append(append([]*Index{}, s.sealed...), s.mem) {
		buf.Reset()
		if err := part.Save(&buf); err != nil {
			return fmt.Errorf("index: snapshot segment %d: %w", i, err)
		}
		if err := writeSegSection(w, buf.Bytes()); err != nil {
			return fmt.Errorf("index: write segment %d: %w", i, err)
		}
	}
	return nil
}

// ReadSegmented restores a segmented store from either snapshot format:
//
//   - A segmented container restores every sealed segment and the memtable
//     directly (no re-analysis, HNSW graphs restored from their streams).
//   - A legacy single-file snapshot written by Index.Save is migrated by
//     adopting the whole index as one sealed segment: the document set,
//     tombstones and statistics are exactly what the monolithic index held,
//     so rankings are unchanged and the migration costs one decode.
//
// Sharded containers are refused with ErrShardedSnapshot — shard.Load owns
// that format.
func ReadSegmented(r io.Reader, cfg Config, scfg SegmentConfig) (*Segmented, error) {
	br := bufio.NewReader(r)
	if peek, err := br.Peek(len(ShardedSnapshotMagic)); err == nil && string(peek) == ShardedSnapshotMagic {
		return nil, wrongContainer(r, "sharded snapshot", ErrShardedSnapshot)
	}
	if peek, err := br.Peek(len(SegmentedSnapshotMagic)); err != nil || string(peek) != SegmentedSnapshotMagic {
		// Legacy single-file snapshot: adopt it as one sealed segment.
		ix, err := Read(br, cfg)
		if err != nil {
			return nil, fmt.Errorf("index: load legacy snapshot into segmented store: %w", err)
		}
		s := NewSegmented(cfg, scfg)
		// The snapshot's schema and BM25 params override the provided
		// config (mirroring Read); rebuild the memtable to match so every
		// future part is built against the restored schema.
		s.cfg = ix.cfg
		s.mem = New(s.cfg)
		s.adoptSegment(ix)
		return s, nil
	}
	if _, err := io.CopyN(io.Discard, br, int64(len(SegmentedSnapshotMagic))); err != nil {
		return nil, fmt.Errorf("index: read segmented magic: %w", err)
	}
	m, err := decodeSegManifest(br)
	if err != nil {
		return nil, err
	}
	s := NewSegmented(cfg, scfg)
	for i := 0; i < m.Segments; i++ {
		sec, err := readSegSection(br)
		if err != nil {
			return nil, fmt.Errorf("index: read segment %d: %w", i, err)
		}
		seg, err := Read(sec, cfg)
		if err != nil {
			return nil, fmt.Errorf("index: restore segment %d: %w", i, err)
		}
		s.sealed = append(s.sealed, seg)
	}
	sec, err := readSegSection(br)
	if err != nil {
		return nil, fmt.Errorf("index: read memtable section: %w", err)
	}
	mem, err := Read(sec, cfg)
	if err != nil {
		return nil, fmt.Errorf("index: restore memtable: %w", err)
	}
	s.mem = mem
	// Adopt the restored schema/BM25 params (every section carries the
	// same ones) so memtables sealed after the load are built identically.
	s.cfg = mem.cfg
	s.seq = m.Seq
	if s.seq == nil {
		s.seq = make(map[string]uint64)
	}
	s.nextSeq = m.NextSeq
	s.statsKey.Store(m.StatsKey)
	s.epoch.Store(m.Epoch)
	return s, nil
}

// adoptSegment installs ix as the newest sealed segment, stamping its live
// documents with arrival sequences in insertion order — the migration path
// for snapshots that predate the segmented container.
func (s *Segmented) adoptSegment(ix *Index) {
	if ix.Len() == 0 {
		return
	}
	s.mu.Lock()
	s.sealed = append(s.sealed, ix)
	s.mu.Unlock()
	for _, d := range ix.LiveDocs() {
		s.assignSeq(d.ID)
	}
}
