package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"uniask/internal/vector"
)

// smallIndex builds a compact corpus with vectors for the concurrency and
// allocation tests (the 2000-doc bench corpus is too slow to build per test).
func smallIndex(tb testing.TB, docs int) (*Index, vector.Vector) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	ix := New(Config{})
	domains := []string{"prodotti", "pagamenti", "errori"}
	dim := 16
	for i := 0; i < docs; i++ {
		v := make(vector.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		err := ix.Add(Document{
			ID:       fmt.Sprintf("c%03d#0", i),
			ParentID: fmt.Sprintf("c%03d", i),
			Fields: map[string]string{
				"title":   fmt.Sprintf("Procedura %d per il conto corrente", i),
				"content": fmt.Sprintf("La procedura operativa %d prevede controlli sul conto e verifica del codice PRC-%03d.", i, i%37),
				"domain":  domains[i%len(domains)],
			},
			Vectors: map[string]vector.Vector{"contentVector": v},
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	q := make(vector.Vector, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	return ix, q
}

// TestConcurrentSearchWithLiveWriter races text and vector searches, filtered
// variants, and metadata reads against a live stream of Add/Delete/
// DeleteParent calls. Run under -race (the Makefile's check target does) it
// verifies the RWMutex discipline of the index.
func TestConcurrentSearchWithLiveWriter(t *testing.T) {
	ix, q := smallIndex(t, 300)
	filters := []Filter{{Field: "domain", Value: "prodotti"}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	reader := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}

	reader(func() { ix.SearchText("procedura per verificare il conto corrente", 20, TextOptions{}) })
	reader(func() {
		ix.SearchText("controlli sul conto", 20, TextOptions{Filters: filters})
	})
	reader(func() { ix.SearchVector("contentVector", q, 10, nil) })
	reader(func() { ix.SearchVector("contentVector", q, 10, filters) })
	reader(func() {
		ix.DocByID("c005#0")
		ix.LiveLen()
		ix.Epoch()
		ix.Tombstones()
	})

	// Writer: interleave adds, deletes and parent deletes.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		switch i % 3 {
		case 0:
			v := make(vector.Vector, 16)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			err := ix.Add(Document{
				ID:       fmt.Sprintf("w%03d#0", i),
				ParentID: fmt.Sprintf("w%03d", i),
				Fields: map[string]string{
					"title":   fmt.Sprintf("Nuova procedura %d", i),
					"content": "Aggiornamento della procedura per il conto corrente.",
					"domain":  "prodotti",
				},
				Vectors: map[string]vector.Vector{"contentVector": v},
			})
			if err != nil {
				t.Error(err)
			}
		case 1:
			ix.Delete(fmt.Sprintf("c%03d#0", i))
		case 2:
			ix.DeleteParent(fmt.Sprintf("c%03d", i+100))
		}
	}
	close(stop)
	wg.Wait()

	if got := ix.Epoch(); got == 0 {
		t.Fatal("epoch did not advance under writes")
	}
	if hits := ix.SearchText("procedura conto corrente", 10, TextOptions{}); len(hits) == 0 {
		t.Fatal("no hits after concurrent mutation")
	}
}

// TestSearchTextAllocs guards the zero-allocation hot path: a warm SearchText
// must stay within a small constant allocation budget (term slice, hit slice,
// nothing per-posting). The measured value is ~10; the threshold leaves slack
// for runtime noise while still catching a reintroduced per-query map or
// per-token copy (which costs hundreds).
func TestSearchTextAllocs(t *testing.T) {
	ix := New(Config{})
	for i := 0; i < 500; i++ {
		err := ix.Add(Document{
			ID:       fmt.Sprintf("a%03d#0", i),
			ParentID: fmt.Sprintf("a%03d", i),
			Fields: map[string]string{
				"title":   fmt.Sprintf("Procedura %d verificare conto corrente", i),
				"content": fmt.Sprintf("La procedura autorizzativa %d per il conto corrente prevede controlli.", i),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	query := "procedura autorizzativa per verificare il conto corrente"
	// Warm the accumulator pool.
	ix.SearchText(query, 50, TextOptions{})
	allocs := testing.AllocsPerRun(50, func() {
		ix.SearchText(query, 50, TextOptions{})
	})
	if allocs > 30 {
		t.Fatalf("SearchText allocated %.0f times per run, want <= 30", allocs)
	}
}

// TestSearchVectorGrowsFetchUnderSelectiveFilter pins the satellite fix for
// the fixed k*4 over-fetch: with a filter matching few documents, the ANN
// fetch must keep growing until k survivors are found instead of silently
// under-filling the result.
func TestSearchVectorGrowsFetchUnderSelectiveFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := New(Config{})
	dim := 16
	const total, rare = 400, 12
	for i := 0; i < total; i++ {
		v := make(vector.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		domain := "comune"
		if i%(total/rare) == 0 {
			domain = "raro"
		}
		err := ix.Add(Document{
			ID:       fmt.Sprintf("v%03d#0", i),
			ParentID: fmt.Sprintf("v%03d", i),
			Fields:   map[string]string{"content": "testo", "domain": domain},
			Vectors:  map[string]vector.Vector{"contentVector": v},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	q := make(vector.Vector, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	k := 10 // k*4 = 40 fetched, but only ~12/400 docs pass the filter
	hits := ix.SearchVector("contentVector", q, k, []Filter{{Field: "domain", Value: "raro"}})
	if len(hits) != k {
		t.Fatalf("got %d hits, want %d (fetch must grow past the k*4 floor)", len(hits), k)
	}
	for _, h := range hits {
		if got := ix.Doc(h.Ord).Fields["domain"]; got != "raro" {
			t.Fatalf("hit %s has domain %q, want raro", h.ID, got)
		}
	}
}

// TestSearchVectorEmptyFilter checks the selectivity estimate handles a
// filter value that matches nothing.
func TestSearchVectorEmptyFilter(t *testing.T) {
	ix, q := smallIndex(t, 50)
	hits := ix.SearchVector("contentVector", q, 5, []Filter{{Field: "domain", Value: "inesistente"}})
	if len(hits) != 0 {
		t.Fatalf("got %d hits for a filter matching nothing", len(hits))
	}
}
