package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"uniask/internal/vector"
)

// smallIndex builds a compact corpus with vectors for the concurrency and
// allocation tests (the 2000-doc bench corpus is too slow to build per test).
func smallIndex(tb testing.TB, docs int) (*Index, vector.Vector) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	ix := New(Config{})
	domains := []string{"prodotti", "pagamenti", "errori"}
	dim := 16
	for i := 0; i < docs; i++ {
		v := make(vector.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		err := ix.Add(Document{
			ID:       fmt.Sprintf("c%03d#0", i),
			ParentID: fmt.Sprintf("c%03d", i),
			Fields: map[string]string{
				"title":   fmt.Sprintf("Procedura %d per il conto corrente", i),
				"content": fmt.Sprintf("La procedura operativa %d prevede controlli sul conto e verifica del codice PRC-%03d.", i, i%37),
				"domain":  domains[i%len(domains)],
			},
			Vectors: map[string]vector.Vector{"contentVector": v},
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	q := make(vector.Vector, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	return ix, q
}

// TestConcurrentSearchWithLiveWriter races text and vector searches, filtered
// variants, and metadata reads against a live stream of Add/Delete/
// DeleteParent calls. Run under -race (the Makefile's check target does) it
// verifies the RWMutex discipline of the index.
func TestConcurrentSearchWithLiveWriter(t *testing.T) {
	ix, q := smallIndex(t, 300)
	filters := []Filter{{Field: "domain", Value: "prodotti"}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	reader := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}

	reader(func() { ix.SearchText("procedura per verificare il conto corrente", 20, TextOptions{}) })
	reader(func() {
		ix.SearchText("controlli sul conto", 20, TextOptions{Filters: filters})
	})
	reader(func() { ix.SearchVector("contentVector", q, 10, nil) })
	reader(func() { ix.SearchVector("contentVector", q, 10, filters) })
	reader(func() {
		ix.DocByID("c005#0")
		ix.LiveLen()
		ix.Epoch()
		ix.Tombstones()
	})

	// Writer: interleave adds, deletes and parent deletes.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		switch i % 3 {
		case 0:
			v := make(vector.Vector, 16)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			err := ix.Add(Document{
				ID:       fmt.Sprintf("w%03d#0", i),
				ParentID: fmt.Sprintf("w%03d", i),
				Fields: map[string]string{
					"title":   fmt.Sprintf("Nuova procedura %d", i),
					"content": "Aggiornamento della procedura per il conto corrente.",
					"domain":  "prodotti",
				},
				Vectors: map[string]vector.Vector{"contentVector": v},
			})
			if err != nil {
				t.Error(err)
			}
		case 1:
			ix.Delete(fmt.Sprintf("c%03d#0", i))
		case 2:
			ix.DeleteParent(fmt.Sprintf("c%03d", i+100))
		}
	}
	close(stop)
	wg.Wait()

	if got := ix.Epoch(); got == 0 {
		t.Fatal("epoch did not advance under writes")
	}
	if hits := ix.SearchText("procedura conto corrente", 10, TextOptions{}); len(hits) == 0 {
		t.Fatal("no hits after concurrent mutation")
	}
}

// TestSegmentedIngestWhileQuery is the live-ingestion stress test for the
// segmented store: readers hammer text/vector search and the gauge surfaces
// while one writer streams adds, deletes and publications, with a memtable
// small enough that seals and background compactions fire mid-query. Run
// under -race (the Makefile's check target does) it verifies the store-level
// lock discipline: seal re-labels, compaction splices, stats-snapshot and
// journal reads must all be tear-free. After quiescing it checks no document
// was lost or duplicated across the part topology and that the final ranking
// matches a monolithic index over the surviving documents.
func TestSegmentedIngestWhileQuery(t *testing.T) {
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: 24, CompactionFanIn: 2})
	// Per-document rng so the monolithic reference below can regenerate the
	// exact same corpus without replaying one shared stream.
	mkDoc := func(i int) Document {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		v := make(vector.Vector, 16)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		return Document{
			ID:       fmt.Sprintf("g%03d#0", i),
			ParentID: fmt.Sprintf("g%03d", i),
			Fields: map[string]string{
				"title":   fmt.Sprintf("Procedura %d per il conto corrente", i),
				"content": fmt.Sprintf("La procedura operativa %d prevede controlli sul conto e verifica del codice PRC-%03d.", i, i%37),
				"domain":  []string{"prodotti", "pagamenti", "errori"}[i%3],
			},
			Vectors: map[string]vector.Vector{"contentVector": v},
		}
	}
	const preload = 60
	for i := 0; i < preload; i++ {
		if err := seg.Add(mkDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	qrng := rand.New(rand.NewSource(17))
	q := make(vector.Vector, 16)
	for j := range q {
		q[j] = float32(qrng.NormFloat64())
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	reader := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	reader(func() {
		hits := seg.SearchText("procedura per verificare il conto corrente", 20, TextOptions{})
		seen := make(map[string]bool, len(hits))
		for _, h := range hits {
			if seen[h.ID] {
				t.Errorf("duplicate id %s in one result set", h.ID)
				return
			}
			seen[h.ID] = true
		}
	})
	reader(func() { seg.SearchVector("contentVector", q, 10, nil) })
	reader(func() {
		seg.DocByID("g005#0")
		seg.LiveLen()
		seg.StatsKey()
		seg.Epoch()
		seg.SegmentStats()
		seg.DeletesSince(0)
	})

	// Writer: stream adds, deletes and explicit publications.
	deleted := make(map[string]bool)
	for i := preload; i < preload+180; i++ {
		if err := seg.Add(mkDoc(i)); err != nil {
			t.Error(err)
		}
		if i%3 == 0 {
			victim := fmt.Sprintf("g%03d#0", i-preload)
			if seg.Delete(victim) {
				deleted[victim] = true
			}
		}
		if i%25 == 0 {
			seg.Publish()
		}
	}
	close(stop)
	wg.Wait()
	seg.Publish()
	seg.WaitCompaction()
	// A sentinel document forces one final seal + merge so every tombstone
	// is reclaimed and the reference below can replay exact statistics.
	if err := seg.Add(mkDoc(preload + 180)); err != nil {
		t.Fatal(err)
	}
	seg.Publish()
	seg.WaitCompaction()
	if got := seg.Tombstones(); got != 0 {
		t.Fatalf("final compaction left %d tombstones", got)
	}

	// Quiesced invariants: exact survivor set, no duplicates.
	want := preload + 181 - len(deleted)
	if got := seg.LiveLen(); got != want {
		t.Fatalf("live count after quiesce = %d, want %d", got, want)
	}
	seen := make(map[string]bool)
	for _, d := range seg.LiveDocs() {
		if seen[d.ID] {
			t.Fatalf("duplicate live document %s across parts", d.ID)
		}
		seen[d.ID] = true
		if deleted[d.ID] {
			t.Fatalf("deleted document %s still live", d.ID)
		}
	}

	// Ranking parity: a monolithic index replaying the same add+delete
	// history, compacted tombstone-free like the quiesced segmented store,
	// must produce a byte-identical ranking.
	replay := New(Config{})
	for i := 0; i <= preload+180; i++ {
		if err := replay.Add(mkDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	for id := range deleted {
		if !replay.Delete(id) {
			t.Fatalf("reference delete %s failed", id)
		}
	}
	mono, err := replay.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if mono.LiveLen() != seg.LiveLen() {
		t.Fatalf("reference live %d, segmented %d", mono.LiveLen(), seg.LiveLen())
	}
	query := "procedura per verificare il conto corrente"
	wantHits := mono.SearchText(query, 20, TextOptions{})
	gotHits := seg.SearchText(query, 20, TextOptions{})
	if len(wantHits) != len(gotHits) {
		t.Fatalf("quiesced ranking has %d hits, monolithic %d", len(gotHits), len(wantHits))
	}
	for i := range wantHits {
		if wantHits[i].ID != gotHits[i].ID || wantHits[i].Score != gotHits[i].Score {
			t.Fatalf("quiesced hit %d = {%s %v}, monolithic {%s %v}",
				i, gotHits[i].ID, gotHits[i].Score, wantHits[i].ID, wantHits[i].Score)
		}
	}
}

// TestSearchTextAllocs guards the zero-allocation hot path: a warm SearchText
// must stay within a small constant allocation budget (term slice, hit slice,
// nothing per-posting). The measured value is ~10; the threshold leaves slack
// for runtime noise while still catching a reintroduced per-query map or
// per-token copy (which costs hundreds).
func TestSearchTextAllocs(t *testing.T) {
	ix := New(Config{})
	for i := 0; i < 500; i++ {
		err := ix.Add(Document{
			ID:       fmt.Sprintf("a%03d#0", i),
			ParentID: fmt.Sprintf("a%03d", i),
			Fields: map[string]string{
				"title":   fmt.Sprintf("Procedura %d verificare conto corrente", i),
				"content": fmt.Sprintf("La procedura autorizzativa %d per il conto corrente prevede controlli.", i),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	query := "procedura autorizzativa per verificare il conto corrente"
	// Warm the accumulator pool.
	ix.SearchText(query, 50, TextOptions{})
	allocs := testing.AllocsPerRun(50, func() {
		ix.SearchText(query, 50, TextOptions{})
	})
	if allocs > 30 {
		t.Fatalf("SearchText allocated %.0f times per run, want <= 30", allocs)
	}
}

// TestSearchTextAllocsSegmented extends the allocation guard to the
// multi-part path: searching 4 sealed segments plus a live memtable pays a
// per-part constant (stats collection, per-part hit slices, the final merge)
// but must stay bounded — no per-posting or per-document allocations. The
// measured value is ~60 on 5 parts; 120 leaves slack for runtime noise while
// still catching an accidental per-hit copy or per-query map.
func TestSearchTextAllocsSegmented(t *testing.T) {
	seg := NewSegmented(Config{}, SegmentConfig{MemtableMaxDocs: 128, CompactionFanIn: -1})
	for i := 0; i < 500; i++ {
		err := seg.Add(Document{
			ID:       fmt.Sprintf("a%03d#0", i),
			ParentID: fmt.Sprintf("a%03d", i),
			Fields: map[string]string{
				"title":   fmt.Sprintf("Procedura %d verificare conto corrente", i),
				"content": fmt.Sprintf("La procedura autorizzativa %d per il conto corrente prevede controlli.", i),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := seg.SegmentStats(); st.Segments < 3 {
		t.Fatalf("fixture must span several parts, got %+v", st)
	}
	query := "procedura autorizzativa per verificare il conto corrente"
	// Warm the accumulator pools in every part.
	seg.SearchText(query, 50, TextOptions{})
	allocs := testing.AllocsPerRun(50, func() {
		seg.SearchText(query, 50, TextOptions{})
	})
	if allocs > 120 {
		t.Fatalf("segmented SearchText allocated %.0f times per run, want <= 120", allocs)
	}
}

// TestSearchVectorAllocs extends the allocation guard to the ANN leg: the
// pooled search state makes the walk itself allocation-free, leaving only
// the normalized query copy, the result slices and (when filtering) the
// accept closure. Budget 16 per the PR-7 acceptance bar; measured ~3.
func TestSearchVectorAllocs(t *testing.T) {
	ix, q := smallIndex(t, 500)
	// Warm the pooled search state.
	ix.SearchVector("contentVector", q, 15, nil)
	allocs := testing.AllocsPerRun(50, func() {
		ix.SearchVector("contentVector", q, 15, nil)
	})
	if allocs > 16 {
		t.Fatalf("SearchVector allocated %.0f times per run, want <= 16", allocs)
	}
}

// TestSearchVectorFilteredAllocs is the same guard with a filter pushed
// into the graph walk (measured ~4: + the accept closure).
func TestSearchVectorFilteredAllocs(t *testing.T) {
	ix, q := smallIndex(t, 500)
	filters := []Filter{{Field: "domain", Value: "pagamenti"}}
	ix.SearchVector("contentVector", q, 15, filters) // warm pool + filter bitset cache
	allocs := testing.AllocsPerRun(50, func() {
		ix.SearchVector("contentVector", q, 15, filters)
	})
	if allocs > 16 {
		t.Fatalf("filtered SearchVector allocated %.0f times per run, want <= 16", allocs)
	}
}

// TestSearchVectorFillsKUnderSelectiveFilter pins the filter-pushdown
// guarantee: with a filter matching few documents, the graph walk keeps
// traversing rejected nodes for connectivity until k accepted survivors are
// found, instead of silently under-filling the result (the failure mode of
// the fixed k*4 over-fetch this replaced).
func TestSearchVectorFillsKUnderSelectiveFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := New(Config{})
	dim := 16
	const total, rare = 400, 12
	for i := 0; i < total; i++ {
		v := make(vector.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		domain := "comune"
		if i%(total/rare) == 0 {
			domain = "raro"
		}
		err := ix.Add(Document{
			ID:       fmt.Sprintf("v%03d#0", i),
			ParentID: fmt.Sprintf("v%03d", i),
			Fields:   map[string]string{"content": "testo", "domain": domain},
			Vectors:  map[string]vector.Vector{"contentVector": v},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	q := make(vector.Vector, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	k := 10 // only ~12/400 docs pass the filter, so the walk must flood far
	hits := ix.SearchVector("contentVector", q, k, []Filter{{Field: "domain", Value: "raro"}})
	if len(hits) != k {
		t.Fatalf("got %d hits, want %d (filtered walk must keep traversing until k survivors)", len(hits), k)
	}
	for _, h := range hits {
		if got := ix.Doc(h.Ord).Fields["domain"]; got != "raro" {
			t.Fatalf("hit %s has domain %q, want raro", h.ID, got)
		}
	}
}

// TestSearchVectorEmptyFilter checks the selectivity estimate handles a
// filter value that matches nothing.
func TestSearchVectorEmptyFilter(t *testing.T) {
	ix, q := smallIndex(t, 50)
	hits := ix.SearchVector("contentVector", q, 5, []Filter{{Field: "domain", Value: "inesistente"}})
	if len(hits) != 0 {
		t.Fatalf("got %d hits for a filter matching nothing", len(hits))
	}
}
