package index

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"uniask/internal/textproc"
	"uniask/internal/trace"
	"uniask/internal/vector"
)

// Segmented is the LSM-style index store: a small mutable memtable absorbs
// Add/Delete while immutable sealed segments are searched read-only, and a
// background compactor merges sealed segments off the query path. It
// satisfies the same Repository surface as a plain *Index, so the search,
// ingestion and persistence layers run on either interchangeably, and the
// same Searcher surface, so the shard facade can hold one Segmented per
// shard.
//
// Search visibility is immediate: queries always see memtable documents,
// scored with corpus statistics collected live across every part
// (CollectStats + Merge + SearchTextGlobal — the exact machinery the shard
// facade uses for cross-shard BM25), so rankings stay byte-identical to a
// monolithic index holding the same documents. What is deferred is
// *publication*: the stats snapshot key (StatsKey) rotates only when a
// non-empty memtable seals or a compaction drops tombstones — the two
// events that move the published idf curve — so query caches keyed on it
// survive writes that have not been published yet, the near-real-time
// refresh semantics of Lucene/Elasticsearch.
//
// "Immutable" for a sealed segment means it absorbs no new documents; like
// a Lucene segment with its live-docs bitset, deletes still tombstone
// chunks inside it (tombstones do not change BM25 statistics, so no
// publication happens). Compaction rebuilds a run of adjacent sealed
// segments into one, dropping tombstones and reclaiming posting and graph
// space.
//
// Concurrency matches the monolithic index: any number of concurrent
// readers racing a single live writer. The store-level RWMutex guards only
// the parts topology (which *Index is the memtable, which are sealed); each
// part has its own internal lock. Sealing re-labels the memtable object in
// place — no data is copied or rebuilt — so a search racing a seal sees the
// same documents and statistics either way, and can never observe a
// half-merged stats snapshot. The background compactor is the only code
// that splices the sealed list, it runs at most once concurrently, and the
// splice happens under the exclusive lock with deletes that arrived during
// the merge re-applied first.
type Segmented struct {
	cfg  Config
	scfg SegmentConfig

	mu     sync.RWMutex
	mem    *Index   // mutable memtable; always non-nil
	sealed []*Index // immutable sealed segments, oldest first

	epoch    atomic.Uint64
	statsKey atomic.Uint64
	journal  *DeleteJournal

	// seq stamps every chunk id with its arrival ordinal across the whole
	// store — the cross-segment equivalent of the monolithic insertion
	// ordinal, used to break vector-distance ties exactly like a single
	// index would (same trick the shard facade plays across shards).
	seqMu   sync.RWMutex
	seq     map[string]uint64
	nextSeq uint64

	seals       atomic.Uint64
	compactions atomic.Uint64
	compacting  atomic.Bool // single background compactor guard
	wg          sync.WaitGroup
}

// SegmentConfig tunes the segmented store's write path.
type SegmentConfig struct {
	// MemtableMaxDocs seals the memtable automatically once it holds this
	// many chunks (counting tombstones); 0 means DefaultMemtableMaxDocs,
	// negative disables auto-sealing so only Publish seals.
	MemtableMaxDocs int
	// CompactionFanIn is the number of adjacent sealed segments one
	// compaction merges; 0 means DefaultCompactionFanIn, negative disables
	// background compaction (CompactOnce still works when called).
	CompactionFanIn int
}

// DefaultMemtableMaxDocs bounds the memtable at 1024 chunks — small enough
// that a seal publishes fresh statistics every couple of poll cycles at the
// paper's ingestion rate, large enough that bulk loads do not shatter into
// confetti segments.
const DefaultMemtableMaxDocs = 1024

// DefaultCompactionFanIn merges four adjacent segments per compaction, the
// classic tiered fan-in: enough to keep the segment count logarithmic in
// corpus size, small enough that one merge stays cheap and cancelable.
const DefaultCompactionFanIn = 4

// memtableMax resolves the configured memtable bound.
func (c SegmentConfig) memtableMax() int {
	if c.MemtableMaxDocs == 0 {
		return DefaultMemtableMaxDocs
	}
	return c.MemtableMaxDocs
}

// fanIn resolves the configured compaction fan-in.
func (c SegmentConfig) fanIn() int {
	if c.CompactionFanIn == 0 {
		return DefaultCompactionFanIn
	}
	return c.CompactionFanIn
}

// NewSegmented creates an empty segmented store.
func NewSegmented(cfg Config, scfg SegmentConfig) *Segmented {
	s := &Segmented{
		scfg:    scfg,
		mem:     New(cfg),
		journal: NewDeleteJournal(),
		seq:     make(map[string]uint64),
	}
	// Adopt the memtable's normalized config (schema, analyzer, BM25
	// defaults filled in) so every future part is built identically.
	s.cfg = s.mem.cfg
	return s
}

// Compile-time checks: the segmented store is a drop-in Repository for the
// engine and a drop-in Searcher for the shard facade.
var (
	_ Repository = (*Segmented)(nil)
	_ Searcher   = (*Segmented)(nil)
	_ Publisher  = (*Segmented)(nil)
)

// parts returns a point-in-time view of the store: every sealed segment in
// order, then the memtable. The slice is a private copy; the *Index parts
// are shared and internally synchronized.
func (s *Segmented) parts() []*Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.partsLocked()
}

// partsLocked is parts with s.mu already held.
func (s *Segmented) partsLocked() []*Index {
	out := make([]*Index, 0, len(s.sealed)+1)
	out = append(out, s.sealed...)
	out = append(out, s.mem)
	return out
}

// Epoch returns the store mutation epoch: bumped by every Add and
// successful Delete (matching a plain index) and by every stats-changing
// compaction.
func (s *Segmented) Epoch() uint64 { return s.epoch.Load() }

// StatsKey identifies the published BM25 stats snapshot. Unlike a plain
// index — where every Add moves the key because statistics shift
// immediately — the segmented store rotates it only at publication points:
// a non-empty memtable sealing, or a compaction dropping tombstones. Writes
// between publications are searchable at once but do not invalidate caches
// keyed on this snapshot.
func (s *Segmented) StatsKey() uint64 { return s.statsKey.Load() }

// DeletesSince drains the store's delete journal from cursor (see
// Queryable).
func (s *Segmented) DeletesSince(cursor uint64) (ids []string, next uint64, ok bool) {
	return s.journal.Since(cursor)
}

// assignSeq stamps id with the next arrival sequence.
func (s *Segmented) assignSeq(id string) {
	s.seqMu.Lock()
	s.seq[id] = s.nextSeq
	s.nextSeq++
	s.seqMu.Unlock()
}

// Add indexes a document into the memtable, sealing it first when full.
// Duplicate ids are rejected across every part, not just the memtable.
func (s *Segmented) Add(doc Document) error {
	s.mu.RLock()
	for _, seg := range s.sealed {
		if _, dup := seg.DocByID(doc.ID); dup {
			s.mu.RUnlock()
			return fmt.Errorf("%w: %s", ErrDuplicateID, doc.ID)
		}
	}
	mem := s.mem
	s.mu.RUnlock()
	if err := mem.Add(doc); err != nil {
		return err
	}
	s.assignSeq(doc.ID)
	s.epoch.Add(1)
	if max := s.scfg.memtableMax(); max > 0 && mem.Len() >= max {
		s.seal()
		s.maybeCompact()
	}
	return nil
}

// AddBulk indexes docs in order, stopping at the first error. Sequential on
// purpose: memtable seals must interleave at deterministic document
// boundaries so a bulk load always produces the same segment layout.
func (s *Segmented) AddBulk(docs []Document) error {
	for _, d := range docs {
		if err := s.Add(d); err != nil {
			return err
		}
	}
	return nil
}

// Delete tombstones a chunk in whichever part holds it. Sealed segments
// accept tombstones (their document set is what is immutable); statistics
// do not change, so no publication happens — the delete journal carries the
// id to caches instead.
//
// The store read lock is held for the whole operation, not just the parts
// snapshot: the compactor's segment splice runs under the exclusive lock,
// so a delete can never land on a segment the splice is about to retire and
// silently miss the merged replacement.
func (s *Segmented) Delete(chunkID string) bool {
	s.mu.RLock()
	ok := false
	for _, part := range s.partsLocked() {
		if part.Delete(chunkID) {
			ok = true
			break
		}
	}
	s.mu.RUnlock()
	if ok {
		s.journal.Record(chunkID)
		s.epoch.Add(1)
	}
	return ok
}

// DeleteParent tombstones every chunk of a KB document across all parts and
// returns how many chunks were removed. Like Delete it holds the store read
// lock throughout so it cannot interleave with a compaction splice.
func (s *Segmented) DeleteParent(parentID string) int {
	s.mu.RLock()
	var removed []string
	for _, part := range s.partsLocked() {
		ids := part.ParentChunkIDs(parentID)
		if len(ids) == 0 {
			continue
		}
		part.DeleteParent(parentID)
		removed = append(removed, ids...)
	}
	s.mu.RUnlock()
	for _, id := range removed {
		s.journal.Record(id)
		s.epoch.Add(1)
	}
	return len(removed)
}

// ParentChunkIDs returns the live chunk ids of a KB document across all
// parts (see the method on *Index).
func (s *Segmented) ParentChunkIDs(parentID string) []string {
	var ids []string
	for _, part := range s.parts() {
		ids = append(ids, part.ParentChunkIDs(parentID)...)
	}
	return ids
}

// HasParent reports whether any part holds a live chunk of the KB document.
func (s *Segmented) HasParent(parentID string) bool {
	for _, part := range s.parts() {
		if part.HasParent(parentID) {
			return true
		}
	}
	return false
}

// Publish seals the memtable (when non-empty) and schedules background
// compaction — the store's publication point, called by the ingestion layer
// after each bulk load or poll cycle like a search engine's
// refresh-after-bulk. Queries already see the documents; Publish is what
// rotates the stats snapshot key so caches recompute against the new
// statistics.
func (s *Segmented) Publish() {
	s.seal()
	s.maybeCompact()
}

// seal converts a non-empty memtable into the newest sealed segment and
// installs a fresh memtable. The sealed *Index is the same object the
// memtable was — no data moves, so a concurrent search observes identical
// documents and statistics through either topology and a torn stats
// snapshot is structurally impossible.
func (s *Segmented) seal() {
	s.mu.Lock()
	if s.mem.Len() == 0 {
		s.mu.Unlock()
		return
	}
	s.sealed = append(s.sealed, s.mem)
	s.mem = New(s.cfg)
	s.mu.Unlock()
	s.seals.Add(1)
	// Publication: the sealed documents' contribution to the idf curve is
	// now permanent, so snapshots scored before them are stale.
	s.statsKey.Add(1)
}

// maybeCompact starts the background compactor when the sealed backlog
// reaches the fan-in and no compactor is already running. At most one
// compactor goroutine exists at a time; it keeps merging until the backlog
// drops below the fan-in.
func (s *Segmented) maybeCompact() {
	fan := s.scfg.fanIn()
	if fan <= 1 {
		return
	}
	s.mu.RLock()
	backlog := len(s.sealed)
	s.mu.RUnlock()
	if backlog < fan {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.compacting.Store(false)
		for {
			merged, err := s.CompactOnce(context.Background())
			if err != nil || !merged {
				return
			}
		}
	}()
}

// WaitCompaction blocks until the background compactor (if any) finishes
// its current run. Deterministic tests and snapshot writers use it to
// quiesce the store.
func (s *Segmented) WaitCompaction() { s.wg.Wait() }

// CompactOnce merges one run of adjacent sealed segments into a single
// segment, dropping tombstones. It reports whether a merge happened (false
// when the backlog is below the fan-in). The merge is:
//
//   - bounded: exactly fanIn adjacent segments, chosen as the run with the
//     fewest total chunks (oldest run on ties) — the size-tiered policy
//     that keeps merge work from re-processing big segments over and over;
//   - deterministic: documents re-add in arrival order (segment order,
//     then ordinal order), so the merged segment's postings, ordinals and
//     HNSW graphs are reproducible;
//   - cancelable: ctx is checked between documents, and a canceled merge
//     leaves the store untouched;
//   - off the query path: the rebuild runs without store locks; only the
//     final splice takes the write lock, after re-applying any delete that
//     arrived mid-merge.
func (s *Segmented) CompactOnce(ctx context.Context) (bool, error) {
	fan := s.scfg.fanIn()
	if fan <= 1 {
		return false, nil
	}
	s.mu.RLock()
	if len(s.sealed) < fan {
		s.mu.RUnlock()
		return false, nil
	}
	// Pick the adjacent run with the fewest total chunks, oldest on ties.
	best, bestSize := 0, -1
	for i := 0; i+fan <= len(s.sealed); i++ {
		size := 0
		for _, seg := range s.sealed[i : i+fan] {
			size += seg.Len()
		}
		if bestSize < 0 || size < bestSize {
			best, bestSize = i, size
		}
	}
	window := make([]*Index, fan)
	copy(window, s.sealed[best:best+fan])
	s.mu.RUnlock()

	_, sp := trace.Start(ctx, "index.compact",
		trace.A("segments", strconv.Itoa(fan)),
		trace.A("chunks", strconv.Itoa(bestSize)))
	defer sp.End()

	merged := New(s.cfg)
	sourceLen := 0
	for _, seg := range window {
		sourceLen += seg.Len()
		for _, d := range seg.LiveDocs() {
			if err := ctx.Err(); err != nil {
				sp.SetError(err)
				return false, err
			}
			if err := merged.Add(d); err != nil {
				sp.SetError(err)
				return false, fmt.Errorf("index: compact: %w", err)
			}
		}
	}

	s.mu.Lock()
	// Re-locate the window by identity: Publish may have appended newer
	// segments behind it, but only this (single) compactor splices, so the
	// run itself is still contiguous at the same offset.
	if best+fan > len(s.sealed) || s.sealed[best] != window[0] {
		s.mu.Unlock()
		err := fmt.Errorf("index: compact: sealed run moved under single-compactor contract")
		sp.SetError(err)
		return false, err
	}
	// Deletes that landed in the window during the merge are re-applied
	// before the swap so no tombstone is lost.
	liveNow := make(map[string]bool, merged.Len())
	for _, seg := range window {
		for _, d := range seg.LiveDocs() {
			liveNow[d.ID] = true
		}
	}
	for _, d := range merged.LiveDocs() {
		if !liveNow[d.ID] {
			merged.Delete(d.ID)
		}
	}
	dropped := sourceLen - merged.Len()
	tail := append([]*Index{merged}, s.sealed[best+fan:]...)
	s.sealed = append(s.sealed[:best], tail...)
	s.mu.Unlock()

	s.compactions.Add(1)
	sp.SetAttr("dropped", strconv.Itoa(dropped))
	if dropped > 0 {
		// Dropping tombstones shrinks N, total lengths and document
		// frequencies — a new published stats snapshot.
		s.statsKey.Add(1)
		s.epoch.Add(1)
	}
	return true, nil
}

// Len counts chunks across all parts, including tombstones still held in
// segments (compaction reclaims them).
func (s *Segmented) Len() int {
	n := 0
	for _, part := range s.parts() {
		n += part.Len()
	}
	return n
}

// LiveLen counts live chunks across all parts.
func (s *Segmented) LiveLen() int {
	n := 0
	for _, part := range s.parts() {
		n += part.LiveLen()
	}
	return n
}

// Tombstones counts tombstoned-but-unreclaimed chunks across all parts.
func (s *Segmented) Tombstones() int {
	n := 0
	for _, part := range s.parts() {
		n += part.Tombstones()
	}
	return n
}

// Doc returns the document at a global ordinal, where ordinals concatenate
// the parts in order (sealed segments oldest-first, then the memtable). The
// mapping is only stable between mutations and compactions; use DocByID to
// identify documents.
func (s *Segmented) Doc(ord int) Document {
	for _, part := range s.parts() {
		if n := part.Len(); ord < n {
			return part.Doc(ord)
		} else {
			ord -= n
		}
	}
	panic(fmt.Sprintf("index: segmented ordinal %d out of range", ord))
}

// DocByID fetches a live document from whichever part holds it.
func (s *Segmented) DocByID(id string) (Document, bool) {
	for _, part := range s.parts() {
		if d, ok := part.DocByID(id); ok {
			return d, true
		}
	}
	return Document{}, false
}

// Schema returns the shared part schema.
func (s *Segmented) Schema() Schema { return s.cfg.Schema }

// Analyzer returns the shared part analyzer.
func (s *Segmented) Analyzer() *textproc.Analyzer { return s.cfg.Analyzer }

// VectorFields lists the vector fields (schema-derived, identical in every
// part). The store lock covers the memtable pointer read — seal swaps it.
func (s *Segmented) VectorFields() []string {
	s.mu.RLock()
	mem := s.mem
	s.mu.RUnlock()
	return mem.VectorFields()
}

// SearchableFields lists the searchable fields (schema-derived, identical
// in every part; same locking note as VectorFields).
func (s *Segmented) SearchableFields() []string {
	s.mu.RLock()
	mem := s.mem
	s.mu.RUnlock()
	return mem.SearchableFields()
}

// Retrievable projects doc onto its retrievable fields.
func (s *Segmented) Retrievable(doc Document) map[string]string {
	out := make(map[string]string)
	for f, v := range doc.Fields {
		if s.cfg.Schema[f].Retrievable {
			out[f] = v
		}
	}
	return out
}

// LiveDocs concatenates the parts' live documents in part order — which is
// arrival order, because segments seal oldest-first and compaction
// preserves relative order inside the run it merges.
func (s *Segmented) LiveDocs() []Document {
	var out []Document
	for _, part := range s.parts() {
		out = append(out, part.LiveDocs()...)
	}
	return out
}

// CollectStats merges every part's BM25 statistics — the store's
// contribution when it is one shard of the sharded facade.
func (s *Segmented) CollectStats(fields, terms []string) CorpusStats {
	var cs CorpusStats
	for _, part := range s.parts() {
		cs.Merge(part.CollectStats(fields, terms))
	}
	return cs
}

// SearchText ranks chunks across all parts with Okapi BM25 and returns the
// global top n. With one part it is a plain delegated search; with several,
// statistics are first collected across every part and merged, then each
// part scores with the aggregate (SearchTextGlobal) — the same two-wave
// scheme the shard facade uses, which is what keeps the segmented ranking
// byte-identical to a monolithic index over the same documents.
func (s *Segmented) SearchText(query string, n int, opts TextOptions) []Hit {
	parts := s.parts()
	if len(parts) == 1 {
		return parts[0].SearchText(query, n, opts)
	}
	if n <= 0 {
		return nil
	}
	terms := s.cfg.Analyzer.AnalyzeTerms(query)
	if len(terms) == 0 {
		return nil
	}
	fields := opts.Fields
	if len(fields) == 0 {
		fields = s.SearchableFields()
	}
	var global CorpusStats
	for _, part := range parts {
		global.Merge(part.CollectStats(fields, terms))
	}
	return searchPartsGlobal(parts, query, n, opts, &global)
}

// SearchTextGlobal scores every part with caller-provided global statistics
// and merges — the per-shard leg of a sharded query, where the facade has
// already merged statistics across shards (and therefore across this
// store's parts, via CollectStats above).
func (s *Segmented) SearchTextGlobal(query string, n int, opts TextOptions, stats *CorpusStats) []Hit {
	parts := s.parts()
	if len(parts) == 1 {
		return parts[0].SearchTextGlobal(query, n, opts, stats)
	}
	return searchPartsGlobal(parts, query, n, opts, stats)
}

// searchPartsGlobal runs the scoring wave over each part with shared global
// statistics and merges the per-part top-n under the canonical text order.
func searchPartsGlobal(parts []*Index, query string, n int, opts TextOptions, stats *CorpusStats) []Hit {
	var merged []Hit
	for _, part := range parts {
		merged = append(merged, part.SearchTextGlobal(query, n, opts, stats)...)
	}
	SortHits(merged)
	if len(merged) > n {
		merged = merged[:n]
	}
	return merged
}

// SearchVector runs an ANN query across all parts and merges the per-part
// candidates into the global top-k, breaking score ties by arrival
// sequence then id — reproducing the insertion-ordinal tiebreak of a
// monolithic exhaustive index, exactly like the shard facade does across
// shards. The query is normalized once here, not once per part.
func (s *Segmented) SearchVector(field string, q vector.Vector, k int, filters []Filter) []Hit {
	qn := vector.Normalize(append(vector.Vector(nil), q...))
	return s.SearchVectorUnit(field, qn, k, filters)
}

// SearchVectorUnit is SearchVector for an already unit-length query (the
// shard facade normalizes once per request before fanning out).
func (s *Segmented) SearchVectorUnit(field string, q vector.Vector, k int, filters []Filter) []Hit {
	parts := s.parts()
	if len(parts) == 1 {
		return parts[0].SearchVectorUnit(field, q, k, filters)
	}
	if k <= 0 {
		return nil
	}
	var merged []Hit
	for _, part := range parts {
		merged = append(merged, part.SearchVectorUnit(field, q, k, filters)...)
	}
	seqs := make([]uint64, len(merged))
	s.seqMu.RLock()
	for i, h := range merged {
		seqs[i] = s.seq[h.ID]
	}
	s.seqMu.RUnlock()
	sort.Sort(&segSeqTie{hits: merged, seqs: seqs})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// segSeqTie orders hits by score descending, ties broken by arrival
// sequence ascending, then id ascending.
type segSeqTie struct {
	hits []Hit
	seqs []uint64
}

func (b *segSeqTie) Len() int { return len(b.hits) }

func (b *segSeqTie) Swap(i, j int) {
	b.hits[i], b.hits[j] = b.hits[j], b.hits[i]
	b.seqs[i], b.seqs[j] = b.seqs[j], b.seqs[i]
}

func (b *segSeqTie) Less(i, j int) bool {
	if b.hits[i].Score != b.hits[j].Score {
		return b.hits[i].Score > b.hits[j].Score
	}
	if b.seqs[i] != b.seqs[j] {
		return b.seqs[i] < b.seqs[j]
	}
	return b.hits[i].ID < b.hits[j].ID
}

// Stats sums the parts' gauge snapshots (docs, postings, ...), matching the
// shape a monolithic index reports on the dashboard.
func (s *Segmented) Stats() Stats {
	var st Stats
	for _, part := range s.parts() {
		ps := part.Stats()
		st.Docs += ps.Docs
		st.Live += ps.Live
		st.Tombstones += ps.Tombstones
		st.Terms += ps.Terms
		st.Postings += ps.Postings
	}
	return st
}

// SegmentStats is the segmented store's dashboard gauge snapshot.
type SegmentStats struct {
	// MemtableDocs counts chunks currently buffered in the memtable.
	MemtableDocs int
	// Segments counts sealed segments awaiting queries and compaction.
	Segments int
	// Seals counts memtable seals since process start.
	Seals uint64
	// Compactions counts completed merges since process start.
	Compactions uint64
	// Backlog is how far the sealed count exceeds the compaction trigger
	// (0 when compaction is keeping up).
	Backlog int
	// StatsKey is the current published stats snapshot key.
	StatsKey uint64
	// Docs/Live/Tombstones total the chunk counts across all parts.
	Docs, Live, Tombstones int
}

// SegmentStats computes the gauge snapshot for the monitoring dashboard.
func (s *Segmented) SegmentStats() SegmentStats {
	s.mu.RLock()
	mem, sealed := s.mem, len(s.sealed)
	s.mu.RUnlock()
	st := SegmentStats{
		MemtableDocs: mem.Len(),
		Segments:     sealed,
		Seals:        s.seals.Load(),
		Compactions:  s.compactions.Load(),
		StatsKey:     s.statsKey.Load(),
		Docs:         s.Len(),
		Live:         s.LiveLen(),
		Tombstones:   s.Tombstones(),
	}
	if fan := s.scfg.fanIn(); fan > 1 && sealed >= fan {
		st.Backlog = sealed - fan + 1
	}
	return st
}
