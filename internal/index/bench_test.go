package index

import (
	"fmt"
	"math/rand"
	"testing"

	"uniask/internal/vector"
)

// benchCorpus generates the warm 2000-doc corpus the query micro-benchmarks
// run against: realistic Italian banking text with shared vocabulary (so
// posting lists are long), four filterable domains, and 64-dim vectors in
// both vector fields. Returns the documents plus a query vector drawn from
// the same distribution.
func benchCorpus() ([]Document, vector.Vector) {
	rng := rand.New(rand.NewSource(42))
	subjects := []string{
		"carta di credito", "bonifico estero", "conto corrente",
		"mutuo prima casa", "prestito personale", "deposito titoli",
	}
	actions := []string{"bloccare", "aprire", "chiudere", "modificare", "verificare", "autorizzare"}
	domains := []string{"prodotti", "pagamenti", "errori", "normativa"}
	dim := 64
	docs := make([]Document, 0, 2000)
	for i := 0; i < 2000; i++ {
		subj := subjects[i%len(subjects)]
		act := actions[(i/len(subjects))%len(actions)]
		title := fmt.Sprintf("Procedura %d: %s %s", i, act, subj)
		content := fmt.Sprintf(
			"La procedura operativa %d per %s il servizio %s prevede passaggi autorizzativi, "+
				"controlli di conformità interni e la verifica del codice cliente PRC-%04d.",
			i, act, subj, i%97)
		tv := make(vector.Vector, dim)
		cv := make(vector.Vector, dim)
		for j := 0; j < dim; j++ {
			tv[j] = float32(rng.NormFloat64())
			cv[j] = float32(rng.NormFloat64())
		}
		docs = append(docs, Document{
			ID:       fmt.Sprintf("d%04d#0", i),
			ParentID: fmt.Sprintf("d%04d", i),
			Fields: map[string]string{
				"title":   title,
				"content": content,
				"domain":  domains[i%len(domains)],
				"topic":   subj,
			},
			Vectors: map[string]vector.Vector{
				"titleVector":   tv,
				"contentVector": cv,
			},
		})
	}
	q := make(vector.Vector, dim)
	for j := 0; j < dim; j++ {
		q[j] = float32(rng.NormFloat64())
	}
	return docs, q
}

// benchIndex loads the benchCorpus into a monolithic index.
func benchIndex(tb testing.TB) (*Index, vector.Vector) {
	tb.Helper()
	docs, q := benchCorpus()
	ix := New(Config{})
	for _, doc := range docs {
		if err := ix.Add(doc); err != nil {
			tb.Fatal(err)
		}
	}
	return ix, q
}

// BenchmarkSearchText is the headline hot-path benchmark: BM25 over two
// searchable fields, top-50 of ~2000 matching candidates.
func BenchmarkSearchText(b *testing.B) {
	ix, _ := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchText("procedura autorizzativa per verificare il conto corrente", 50, TextOptions{})
	}
}

// BenchmarkSearchTextFiltered adds a conjunctive filter, exercising the
// filter path on every posting.
func BenchmarkSearchTextFiltered(b *testing.B) {
	ix, _ := benchIndex(b)
	opts := TextOptions{Filters: []Filter{{Field: "domain", Value: "prodotti"}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchText("procedura autorizzativa per verificare il conto corrente", 50, opts)
	}
}

// BenchmarkSearchTextTitleBoost exercises the weighted-field path used by
// the paper's T5/T50/T500 experiments.
func BenchmarkSearchTextTitleBoost(b *testing.B) {
	ix, _ := benchIndex(b)
	opts := TextOptions{FieldWeights: map[string]float64{"title": 50}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchText("procedura autorizzativa per verificare il conto corrente", 50, opts)
	}
}

// BenchmarkSearchVector times one ANN leg (k=15, the deployed K).
func BenchmarkSearchVector(b *testing.B) {
	ix, q := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchVector("contentVector", q, 15, nil)
	}
}

// BenchmarkSearchVectorFiltered times the filtered ANN leg (over-fetch +
// post-filter).
func BenchmarkSearchVectorFiltered(b *testing.B) {
	ix, q := benchIndex(b)
	filters := []Filter{{Field: "domain", Value: "pagamenti"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchVector("contentVector", q, 15, filters)
	}
}

// benchIndexFloat32 loads the benchCorpus with vector quantization off, so
// the Float32 benchmark variants time exact float32 graph traversal against
// the default int8 path on identical data.
func benchIndexFloat32(tb testing.TB) (*Index, vector.Vector) {
	tb.Helper()
	docs, q := benchCorpus()
	ix := New(Config{DisableVectorQuantization: true})
	for _, doc := range docs {
		if err := ix.Add(doc); err != nil {
			tb.Fatal(err)
		}
	}
	return ix, q
}

// BenchmarkSearchVectorFloat32 is the control for BenchmarkSearchVector:
// the same graph walked with exact float32 dots instead of int8 dots (and
// without the rescoring pass). On this in-cache corpus the pair should run
// at rough latency parity — the quantized path trades rescoring overhead
// for cheaper dots and a 4x-smaller arena; final scores are identical
// either way because the quantized path rescores its candidates with exact
// float32 dots before ranking.
func BenchmarkSearchVectorFloat32(b *testing.B) {
	ix, q := benchIndexFloat32(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchVector("contentVector", q, 15, nil)
	}
}

// BenchmarkSearchVectorFilteredFloat32 is the float32 control for the
// filtered ANN leg.
func BenchmarkSearchVectorFilteredFloat32(b *testing.B) {
	ix, q := benchIndexFloat32(b)
	filters := []Filter{{Field: "domain", Value: "pagamenti"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchVector("contentVector", q, 15, filters)
	}
}

// BenchmarkFilterSet times resolving a two-term conjunctive filter to the
// allowed-document set (cached bitsets intersected by AND).
func BenchmarkFilterSet(b *testing.B) {
	ix, _ := benchIndex(b)
	filters := []Filter{
		{Field: "domain", Value: "prodotti"},
		{Field: "topic", Value: "carta di credito"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.mu.RLock()
		ix.filterBits(filters)
		ix.mu.RUnlock()
	}
}
