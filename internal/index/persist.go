package index

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"uniask/internal/vector"
)

// Persistence: Save serializes the whole index — documents, inverted
// postings, filters and the HNSW graphs — so Read restores it without
// re-analyzing documents or rebuilding the ANN structure (the expensive
// part of index construction). The format is a single gob stream.

// postingSnapshot mirrors the unexported posting type.
type postingSnapshot struct {
	Doc int32
	TF  int32
}

// fieldSnapshot mirrors fieldIndex.
type fieldSnapshot struct {
	Postings map[string][]postingSnapshot
	DocLens  []int
	TotalLen int
}

// indexSnapshot is the gob-serializable image of the index.
type indexSnapshot struct {
	Schema  Schema
	BM25    BM25Params
	Docs    []Document
	Fields  map[string]fieldSnapshot
	Filters map[string]map[string][]int32
	// Vectors holds one serialized HNSW stream per vector field; fields
	// whose index is not an HNSW are rebuilt from document vectors.
	Vectors map[string][]byte
	// Deleted lists tombstoned ordinals.
	Deleted []int32
}

// Save serializes the index. It holds the read lock for the duration, so a
// snapshot taken under live traffic is internally consistent.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := indexSnapshot{
		Schema:  ix.cfg.Schema,
		BM25:    ix.cfg.BM25,
		Docs:    ix.docs,
		Fields:  make(map[string]fieldSnapshot, len(ix.fields)),
		Filters: ix.filters,
		Vectors: make(map[string][]byte, len(ix.vecs)),
	}
	for ord := range ix.deleted {
		snap.Deleted = append(snap.Deleted, ord)
	}
	for name, fi := range ix.fields {
		fs := fieldSnapshot{
			Postings: make(map[string][]postingSnapshot, len(fi.postings)),
			DocLens:  fi.docLens,
			TotalLen: fi.totalLen,
		}
		for term, pl := range fi.postings {
			out := make([]postingSnapshot, len(pl))
			for i, p := range pl {
				out[i] = postingSnapshot{Doc: p.doc, TF: p.tf}
			}
			fs.Postings[term] = out
		}
		snap.Fields[name] = fs
	}
	for name, vx := range ix.vecs {
		h, ok := vx.(*vector.HNSW)
		if !ok {
			continue // rebuilt from document vectors on load
		}
		var buf bytes.Buffer
		if err := h.Save(&buf); err != nil {
			return fmt.Errorf("index: serialize vector field %q: %w", name, err)
		}
		snap.Vectors[name] = buf.Bytes()
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	return nil
}

// ShardedSnapshotMagic is the byte prefix of the multi-shard snapshot
// container written by the shard facade's Save. It lives here (not in the
// shard package) so Read can recognize a sharded stream and refuse it with
// a pointed error instead of a cryptic gob decode failure.
const ShardedSnapshotMagic = "uniask-sharded-snapshot/"

// ErrShardedSnapshot is returned by Read when given a sharded snapshot
// container, which only shard.Load (or an engine configured with
// ShardCount > 1) can restore.
var ErrShardedSnapshot = errors.New(
	"index: stream is a sharded snapshot container, not a single-index snapshot; " +
		"load it with shard.Load or an engine configured with ShardCount > 1")

// streamName names a snapshot source in wrong-container errors: the file
// path when the reader carries one (*os.File does), "stream" otherwise.
func streamName(r io.Reader) string {
	if n, ok := r.(interface{ Name() string }); ok {
		if name := n.Name(); name != "" {
			return name
		}
	}
	return "stream"
}

// wrongContainer builds the refusal error for a recognizably wrong snapshot
// container: it names the source and the detected format and wraps the
// sentinel, so callers branch with errors.Is while the operator reading the
// log sees which file was pointed at the wrong loader and what it actually
// holds.
func wrongContainer(r io.Reader, format string, sentinel error) error {
	return fmt.Errorf("index: %s: detected a %s container: %w", streamName(r), format, sentinel)
}

// Read restores an index written by Save. The provided Config supplies
// the non-serializable parts (analyzer, vector-index constructor); its
// Schema and BM25 params are overridden by the snapshot's.
func Read(r io.Reader, cfg Config) (*Index, error) {
	br := bufio.NewReader(r)
	if peek, err := br.Peek(len(ShardedSnapshotMagic)); err == nil && string(peek) == ShardedSnapshotMagic {
		return nil, wrongContainer(r, "sharded snapshot", ErrShardedSnapshot)
	}
	if peek, err := br.Peek(len(SegmentedSnapshotMagic)); err == nil && string(peek) == SegmentedSnapshotMagic {
		return nil, wrongContainer(r, "segmented snapshot", ErrSegmentedSnapshot)
	}
	var snap indexSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	cfg.Schema = snap.Schema
	cfg.BM25 = snap.BM25
	ix := New(cfg)
	ix.docs = snap.Docs
	for _, ord := range snap.Deleted {
		if ix.deleted == nil {
			ix.deleted = make(map[int32]bool)
		}
		ix.deleted[ord] = true
	}
	for i, d := range snap.Docs {
		if ix.isDeleted(int32(i)) {
			continue
		}
		ix.byID[d.ID] = int32(i)
		ix.byParent[d.ParentID] = append(ix.byParent[d.ParentID], int32(i))
	}
	for name, fs := range snap.Fields {
		fi := &fieldIndex{
			postings: make(map[string][]posting, len(fs.Postings)),
			docLens:  fs.DocLens,
			totalLen: fs.TotalLen,
		}
		for term, pl := range fs.Postings {
			out := make([]posting, len(pl))
			for i, p := range pl {
				out[i] = posting{doc: p.Doc, tf: p.TF}
			}
			fi.postings[term] = out
		}
		ix.fields[name] = fi
	}
	ix.filters = snap.Filters
	if ix.filters == nil {
		ix.filters = make(map[string]map[string][]int32)
	}
	for name := range ix.vecs {
		if data, ok := snap.Vectors[name]; ok {
			h, err := vector.ReadHNSW(bytes.NewReader(data))
			if err == nil {
				ix.vecs[name] = h
				continue
			}
			// A pre-arena graph snapshot cannot be adopted in place, but the
			// documents still carry their vectors — fall through and rebuild.
			if !errors.Is(err, vector.ErrLegacyHNSWSnapshot) {
				return nil, fmt.Errorf("index: vector field %q: %w", name, err)
			}
		}
		// No serialized graph: rebuild from stored document vectors.
		for i, d := range ix.docs {
			if v, ok := d.Vectors[name]; ok {
				if err := ix.vecs[name].Add(i, v); err != nil {
					return nil, fmt.Errorf("index: rebuild vector field %q: %w", name, err)
				}
			}
		}
	}
	return ix, nil
}
