package index

// Live updates: the knowledge base is edited daily and the ingestion
// service polls for changes every 15 minutes (§3), so the index must
// support deleting and replacing documents without a rebuild. Deletions are
// tombstones: the chunk stays in the posting lists and the ANN graph but is
// filtered out of every search result; its external id is freed for
// re-insertion. Compact rebuilds reclaim the space. Tombstoning does not
// touch the filter bitset cache — deletion is checked separately on the
// query path — but it does bump the mutation epoch so query-result caches
// invalidate.

// Delete tombstones a chunk by external id. It reports whether the id was
// present.
func (ix *Index) Delete(chunkID string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.deleteLocked(chunkID)
}

// deleteLocked is Delete with ix.mu already held for writing.
func (ix *Index) deleteLocked(chunkID string) bool {
	ord, ok := ix.byID[chunkID]
	if !ok {
		return false
	}
	delete(ix.byID, chunkID)
	if ix.deleted == nil {
		ix.deleted = make(map[int32]bool)
	}
	ix.deleted[ord] = true
	parent := ix.docs[ord].ParentID
	live := ix.byParent[parent][:0]
	for _, o := range ix.byParent[parent] {
		if o != ord {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		delete(ix.byParent, parent)
	} else {
		ix.byParent[parent] = live
	}
	ix.epoch.Add(1)
	// A tombstone does not move the stats key — BM25 statistics still count
	// the chunk — but the delete journal lets caches evict exactly the
	// entries that surfaced it.
	ix.journal.Record(chunkID)
	return true
}

// DeleteParent tombstones every chunk of a KB document and returns how many
// chunks were removed.
func (ix *Index) DeleteParent(parentID string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ords := append([]int32(nil), ix.byParent[parentID]...)
	n := 0
	for _, ord := range ords {
		if ix.deleteLocked(ix.docs[ord].ID) {
			n++
		}
	}
	return n
}

// ParentChunkIDs returns the external ids of the live chunks of a KB
// document. Wrapping stores (the segmented store, the shard facade) use it
// to learn which chunk ids a DeleteParent will remove, so their own delete
// journals can name them.
func (ix *Index) ParentChunkIDs(parentID string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ords := ix.byParent[parentID]
	if len(ords) == 0 {
		return nil
	}
	ids := make([]string, 0, len(ords))
	for _, ord := range ords {
		ids = append(ids, ix.docs[ord].ID)
	}
	return ids
}

// HasParent reports whether any live chunk of the KB document remains.
func (ix *Index) HasParent(parentID string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byParent[parentID]) > 0
}

// LiveLen reports the number of live (non-tombstoned) chunks.
func (ix *Index) LiveLen() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byID)
}

// Tombstones reports how many chunks are tombstoned (compaction metric).
func (ix *Index) Tombstones() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.deleted)
}

// isDeleted reports whether an ordinal is tombstoned; the caller must hold
// ix.mu.
func (ix *Index) isDeleted(ord int32) bool {
	return ix.deleted != nil && ix.deleted[ord]
}

// Compact rebuilds the index without tombstoned chunks, reclaiming posting
// and graph space. It returns the rebuilt index; the receiver is unchanged.
func (ix *Index) Compact() (*Index, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := New(ix.cfg)
	for ord, doc := range ix.docs {
		if ix.isDeleted(int32(ord)) {
			continue
		}
		if _, live := ix.byID[doc.ID]; !live {
			continue
		}
		if err := out.Add(doc); err != nil {
			return nil, err
		}
	}
	return out, nil
}
