package generation

// Fuzz target for the citation parser (run via `make fuzz-short`) plus its
// checked-in crasher corpus. ExtractCitationKeys consumes raw LLM output —
// under fault injection that can be truncated, byte-corrupted or adversarial
// text, so the invariants here are: never panic, keys are deduplicated and
// each actually appears bracketed in the input.

import (
	"strings"
	"testing"
)

// citationCrashers holds LLM outputs that stressed earlier parser drafts:
// unterminated brackets, nested/empty brackets, invalid UTF-8 and pathological
// repetition. Replayed by the fuzz seed corpus and the plain test below.
var citationCrashers = []string{
	"",
	"[",
	"]",
	"[]",
	"[[doc1]]",
	"[doc1",
	"doc1]",
	"[doc1] [doc2] [doc1]",
	"[doc1][doc1][doc1]",
	"[doc 1]",
	"[doc1\xff]",
	"\xff[doc1]",
	"[" + strings.Repeat("a", 100) + "1]",
	strings.Repeat("[doc1]", 200),
	strings.Repeat("[", 500),
	"testo [doc1] con [x9] e [DOC2] finale [",
}

func checkCitationKeys(t *testing.T, text string, keys []string) {
	t.Helper()
	seen := map[string]bool{}
	for _, k := range keys {
		if k == "" {
			t.Fatalf("empty key extracted from %q", text)
		}
		if seen[k] {
			t.Fatalf("duplicate key %q extracted from %q", k, text)
		}
		seen[k] = true
		if !strings.Contains(text, "["+k+"]") {
			t.Fatalf("key %q not present bracketed in %q", k, text)
		}
	}
}

func FuzzExtractCitationKeys(f *testing.F) {
	for _, c := range citationCrashers {
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, text string) {
		checkCitationKeys(t, text, ExtractCitationKeys(text))
	})
}

// TestCitationCrasherCorpus replays the corpus on every plain `go test`, so
// the regression protection does not depend on -fuzz runs.
func TestCitationCrasherCorpus(t *testing.T) {
	for _, c := range citationCrashers {
		checkCitationKeys(t, c, ExtractCitationKeys(c))
	}
}
