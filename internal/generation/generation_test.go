package generation

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"uniask/internal/llm"
)

var chunks = []RetrievedChunk{
	{ID: "kb00001#0", Title: "Blocco carta di credito",
		Content: "Per bloccare la carta di credito è necessario chiamare il numero verde."},
	{ID: "kb00002#1", Title: "Bonifico estero",
		Content: "Il bonifico verso paesi extra SEPA richiede il codice BIC."},
}

func TestGenerateGroundedAnswer(t *testing.T) {
	g := &Generator{Client: llm.NewSim(llm.DefaultBehavior())}
	ans, err := g.Generate(context.Background(), "Come posso bloccare la carta di credito?", chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Citations) == 0 {
		t.Fatalf("no citations resolved: %+v", ans)
	}
	if ans.Citations[0] != "kb00001#0" {
		t.Fatalf("citation resolved to %v", ans.Citations)
	}
	if !strings.Contains(ans.Text, "numero verde") {
		t.Fatalf("answer not grounded: %q", ans.Text)
	}
}

func TestGenerateCapsContextToM(t *testing.T) {
	var captured llm.Request
	g := &Generator{Client: clientFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		captured = req
		return llm.Response{Content: "ok [doc1]"}, nil
	}), M: 1}
	many := append([]RetrievedChunk{}, chunks...)
	many = append(many, RetrievedChunk{ID: "x", Title: "t", Content: "c"})
	if _, err := g.Generate(context.Background(), "q", many); err != nil {
		t.Fatal(err)
	}
	// Only doc1 should be in the prompt.
	joined := ""
	for _, m := range captured.Messages {
		joined += m.Content
	}
	if strings.Contains(joined, "doc2") {
		t.Fatalf("more than M chunks in prompt")
	}
}

func TestGenerateErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	g := &Generator{Client: clientFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{}, boom
	})}
	_, err := g.Generate(context.Background(), "q", chunks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestGenerateEmptyChunks(t *testing.T) {
	g := &Generator{Client: llm.NewSim(llm.DefaultBehavior())}
	ans, err := g.Generate(context.Background(), "Come posso bloccare la carta?", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Citations) != 0 {
		t.Fatalf("citations from empty context: %v", ans.Citations)
	}
}

// clientFunc adapts a function to llm.Client.
type clientFunc func(context.Context, llm.Request) (llm.Response, error)

func (f clientFunc) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return f(ctx, req)
}

func TestExtractCitationKeys(t *testing.T) {
	cases := map[string][]string{
		"Risposta [doc1]. Altra frase [doc2].":    {"doc1", "doc2"},
		"Ripetuta [doc1] e ancora [doc1].":        {"doc1"},
		"Niente citazioni qui.":                   nil,
		"Parentesi [non valida] e [doc3] valida.": {"doc3"},
		"[1] solo numero e [abc] solo lettere":    nil,
		"Chiusura mancante [doc1":                 nil,
		"":                                        nil,
		"[doc1][doc2][doc10]":                     {"doc1", "doc2", "doc10"},
	}
	for in, want := range cases {
		if got := ExtractCitationKeys(in); !reflect.DeepEqual(got, want) {
			t.Errorf("ExtractCitationKeys(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestIsCitationKey(t *testing.T) {
	valid := []string{"doc1", "doc10", "kb0042"}
	invalid := []string{"", "doc", "123", "doc 1", "doc-1", strings.Repeat("a", 40) + "1"}
	for _, k := range valid {
		if !isCitationKey(k) {
			t.Errorf("isCitationKey(%q) = false", k)
		}
	}
	for _, k := range invalid {
		if isCitationKey(k) {
			t.Errorf("isCitationKey(%q) = true", k)
		}
	}
}

func TestCitationsOnlyResolveKnownKeys(t *testing.T) {
	g := &Generator{Client: clientFunc(func(ctx context.Context, req llm.Request) (llm.Response, error) {
		return llm.Response{Content: "frase [doc1] e chiave inventata [doc9]"}, nil
	})}
	ans, err := g.Generate(context.Background(), "q", chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Citations) != 1 || ans.Citations[0] != "kb00001#0" {
		t.Fatalf("citations = %v", ans.Citations)
	}
	if len(ans.CitedKeys) != 2 {
		t.Fatalf("cited keys = %v", ans.CitedKeys)
	}
}
