// Package generation implements UniAsk's answer-generation module (§5): it
// takes the top-m chunks returned by the retrieval module, builds the
// task prompt (background context, JSON-formatted context, repeated
// citation instructions), queries the LLM through the chat-completion
// interface, and parses the citations back out of the generated text.
package generation

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"uniask/internal/llm"
	"uniask/internal/resilience"
)

// RetrievedChunk is one context chunk handed over by the search module.
type RetrievedChunk struct {
	// ID is the chunk id in the index.
	ID string
	// Title and Content are the retrievable fields shown to the LLM.
	Title   string
	Content string
}

// Answer is a generated response.
type Answer struct {
	// Text is the generated answer.
	Text string
	// Citations holds the chunk IDs the answer cites (resolved from the
	// [docN] keys).
	Citations []string
	// CitedKeys holds the raw [key] identifiers found in the text.
	CitedKeys []string
	// Usage is the underlying LLM usage.
	Usage llm.Response
	// Degraded reports that the LLM was unavailable and this answer is the
	// extractive fallback built from the top retrieved chunk.
	Degraded bool
}

// DefaultM is the number of context chunks in the current deployment.
const DefaultM = 4

// Generator produces grounded answers.
type Generator struct {
	// Client is the chat-completion backend.
	Client llm.Client
	// M caps the number of chunks placed in the prompt (DefaultM if 0).
	M int
	// MaxTokens caps the completion (0 = client default).
	MaxTokens int
	// DisableFallback turns the extractive fallback off: LLM-unavailability
	// errors then propagate instead of degrading.
	DisableFallback bool
}

// Generate builds the prompt for question over chunks and returns the
// parsed answer. Chunks beyond M are dropped, matching the deployment.
func (g *Generator) Generate(ctx context.Context, question string, chunks []RetrievedChunk) (Answer, error) {
	m := g.M
	if m <= 0 {
		m = DefaultM
	}
	if len(chunks) > m {
		chunks = chunks[:m]
	}
	ctxChunks := make([]llm.ContextChunk, len(chunks))
	keyToID := make(map[string]string, len(chunks))
	for i, ch := range chunks {
		key := fmt.Sprintf("doc%d", i+1)
		ctxChunks[i] = llm.ContextChunk{Key: key, Title: ch.Title, Content: ch.Content}
		keyToID[key] = ch.ID
	}
	req := llm.BuildAnswerPrompt(question, ctxChunks)
	req.MaxTokens = g.MaxTokens
	resp, err := g.Client.Complete(ctx, req)
	if err != nil {
		if g.fallbackEligible(ctx, err) {
			return Extractive(question, chunks), nil
		}
		return Answer{}, fmt.Errorf("generation: %w", err)
	}
	keys := ExtractCitationKeys(resp.Content)
	ans := Answer{Text: resp.Content, CitedKeys: keys, Usage: resp}
	for _, k := range keys {
		if id, ok := keyToID[k]; ok {
			ans.Citations = append(ans.Citations, id)
		}
	}
	return ans, nil
}

// GenerateStream is the streaming variant of Generate: answer chunks are
// delivered through emit as the LLM produces them, then the parsed answer
// is returned whole. The fallback contract is wider than Generate's — a
// stream that dies after its first byte cannot be retried (the consumer
// has already rendered partial output), so any mid-stream failure with the
// caller still waiting degrades to the extractive answer. The caller is
// responsible for telling its consumer to discard the partial tokens
// (the SSE layer's terminal `fallback` event).
func (g *Generator) GenerateStream(ctx context.Context, question string, chunks []RetrievedChunk, emit func(chunk string) error) (Answer, error) {
	m := g.M
	if m <= 0 {
		m = DefaultM
	}
	if len(chunks) > m {
		chunks = chunks[:m]
	}
	ctxChunks := make([]llm.ContextChunk, len(chunks))
	keyToID := make(map[string]string, len(chunks))
	for i, ch := range chunks {
		key := fmt.Sprintf("doc%d", i+1)
		ctxChunks[i] = llm.ContextChunk{Key: key, Title: ch.Title, Content: ch.Content}
		keyToID[key] = ch.ID
	}
	req := llm.BuildAnswerPrompt(question, ctxChunks)
	req.MaxTokens = g.MaxTokens
	started := false
	wrapped := emit
	if wrapped != nil {
		wrapped = func(chunk string) error {
			started = true
			return emit(chunk)
		}
	}
	resp, err := llm.CompleteStream(ctx, g.Client, req, wrapped)
	if err != nil {
		if g.fallbackEligible(ctx, err) || (started && !g.DisableFallback && ctx.Err() == nil) {
			return Extractive(question, chunks), nil
		}
		return Answer{}, fmt.Errorf("generation: %w", err)
	}
	keys := ExtractCitationKeys(resp.Content)
	ans := Answer{Text: resp.Content, CitedKeys: keys, Usage: resp}
	for _, k := range keys {
		if id, ok := keyToID[k]; ok {
			ans.Citations = append(ans.Citations, id)
		}
	}
	return ans, nil
}

// fallbackEligible decides whether a generation error degrades to the
// extractive answer: the LLM must be unavailable (open breaker or exhausted
// retry budget) while the caller is still waiting — a cancelled caller gets
// its cancellation back.
func (g *Generator) fallbackEligible(ctx context.Context, err error) bool {
	if g.DisableFallback || ctx.Err() != nil {
		return false
	}
	return errors.Is(err, resilience.ErrBreakerOpen) || errors.Is(err, resilience.ErrBudgetExhausted)
}

// FallbackPreamble opens every extractive fallback answer (Italian, like
// the deployment): it tells the user the assistant is unavailable and the
// text below is quoted from the most relevant document.
const FallbackPreamble = "L'assistente non è al momento disponibile. Riportiamo il passaggio più pertinente dalla documentazione:"

// Extractive builds the graceful-degradation answer used when the LLM is
// unavailable: a verbatim snippet of the top retrieved chunk, cited as
// [doc1]. Quoting the context verbatim keeps the answer grounded — it
// passes the citation and ROUGE guardrails by construction. With no chunks
// at all there is nothing to quote; the uncited preamble alone is returned
// and the citation guardrail downstream turns it into the apology message.
func Extractive(question string, chunks []RetrievedChunk) Answer {
	if len(chunks) == 0 {
		return Answer{Text: FallbackPreamble, Degraded: true}
	}
	top := chunks[0]
	snippet := extractSnippet(top.Content, 400)
	var b strings.Builder
	b.WriteString(FallbackPreamble)
	b.WriteString("\n\n")
	if top.Title != "" {
		b.WriteString(top.Title)
		b.WriteString(": ")
	}
	b.WriteString(snippet)
	b.WriteString(" [doc1]")
	return Answer{
		Text:      b.String(),
		Citations: []string{top.ID},
		CitedKeys: []string{"doc1"},
		Degraded:  true,
	}
}

// extractSnippet truncates text to at most max bytes on a sentence boundary
// when one exists, else on a word boundary.
func extractSnippet(text string, max int) string {
	text = strings.TrimSpace(text)
	if len(text) <= max {
		return text
	}
	cut := text[:max]
	if i := strings.LastIndexByte(cut, '.'); i > max/2 {
		return cut[:i+1]
	}
	if i := strings.LastIndexByte(cut, ' '); i > 0 {
		cut = cut[:i]
	}
	return cut + "…"
}

// ExtractCitationKeys scans text for [key] citations and returns the keys
// in order of first appearance, deduplicated. Only bracketed tokens that
// look like citation keys (letters+digits, no spaces) are accepted.
func ExtractCitationKeys(text string) []string {
	var keys []string
	seen := map[string]bool{}
	for i := 0; i < len(text); i++ {
		if text[i] != '[' {
			continue
		}
		end := strings.IndexByte(text[i:], ']')
		if end < 0 {
			break
		}
		key := text[i+1 : i+end]
		if isCitationKey(key) && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
		i += end
	}
	return keys
}

// isCitationKey accepts short alphanumeric identifiers like "doc1".
func isCitationKey(s string) bool {
	if s == "" || len(s) > 32 {
		return false
	}
	hasLetter, hasDigit := false, false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
			hasLetter = true
		case r >= '0' && r <= '9':
			hasDigit = true
		default:
			return false
		}
	}
	return hasLetter && hasDigit
}
