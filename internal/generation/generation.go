// Package generation implements UniAsk's answer-generation module (§5): it
// takes the top-m chunks returned by the retrieval module, builds the
// task prompt (background context, JSON-formatted context, repeated
// citation instructions), queries the LLM through the chat-completion
// interface, and parses the citations back out of the generated text.
package generation

import (
	"context"
	"fmt"
	"strings"

	"uniask/internal/llm"
)

// RetrievedChunk is one context chunk handed over by the search module.
type RetrievedChunk struct {
	// ID is the chunk id in the index.
	ID string
	// Title and Content are the retrievable fields shown to the LLM.
	Title   string
	Content string
}

// Answer is a generated response.
type Answer struct {
	// Text is the generated answer.
	Text string
	// Citations holds the chunk IDs the answer cites (resolved from the
	// [docN] keys).
	Citations []string
	// CitedKeys holds the raw [key] identifiers found in the text.
	CitedKeys []string
	// Usage is the underlying LLM usage.
	Usage llm.Response
}

// DefaultM is the number of context chunks in the current deployment.
const DefaultM = 4

// Generator produces grounded answers.
type Generator struct {
	// Client is the chat-completion backend.
	Client llm.Client
	// M caps the number of chunks placed in the prompt (DefaultM if 0).
	M int
	// MaxTokens caps the completion (0 = client default).
	MaxTokens int
}

// Generate builds the prompt for question over chunks and returns the
// parsed answer. Chunks beyond M are dropped, matching the deployment.
func (g *Generator) Generate(ctx context.Context, question string, chunks []RetrievedChunk) (Answer, error) {
	m := g.M
	if m <= 0 {
		m = DefaultM
	}
	if len(chunks) > m {
		chunks = chunks[:m]
	}
	ctxChunks := make([]llm.ContextChunk, len(chunks))
	keyToID := make(map[string]string, len(chunks))
	for i, ch := range chunks {
		key := fmt.Sprintf("doc%d", i+1)
		ctxChunks[i] = llm.ContextChunk{Key: key, Title: ch.Title, Content: ch.Content}
		keyToID[key] = ch.ID
	}
	req := llm.BuildAnswerPrompt(question, ctxChunks)
	req.MaxTokens = g.MaxTokens
	resp, err := g.Client.Complete(ctx, req)
	if err != nil {
		return Answer{}, fmt.Errorf("generation: %w", err)
	}
	keys := ExtractCitationKeys(resp.Content)
	ans := Answer{Text: resp.Content, CitedKeys: keys, Usage: resp}
	for _, k := range keys {
		if id, ok := keyToID[k]; ok {
			ans.Citations = append(ans.Citations, id)
		}
	}
	return ans, nil
}

// ExtractCitationKeys scans text for [key] citations and returns the keys
// in order of first appearance, deduplicated. Only bracketed tokens that
// look like citation keys (letters+digits, no spaces) are accepted.
func ExtractCitationKeys(text string) []string {
	var keys []string
	seen := map[string]bool{}
	for i := 0; i < len(text); i++ {
		if text[i] != '[' {
			continue
		}
		end := strings.IndexByte(text[i:], ']')
		if end < 0 {
			break
		}
		key := text[i+1 : i+end]
		if isCitationKey(key) && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
		i += end
	}
	return keys
}

// isCitationKey accepts short alphanumeric identifiers like "doc1".
func isCitationKey(s string) bool {
	if s == "" || len(s) > 32 {
		return false
	}
	hasLetter, hasDigit := false, false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
			hasLetter = true
		case r >= '0' && r <= '9':
			hasDigit = true
		default:
			return false
		}
	}
	return hasLetter && hasDigit
}
