package resilience

// Tail-latency hedging: for cheap idempotent calls (embeddings, reranker
// lookups) the p99 is dominated by an occasional straggler. Hedge launches
// the primary attempt, waits a small delay, and — if the primary has not
// answered — races a second attempt against it, returning whichever
// finishes first. The loser is cancelled. This trades a bounded amount of
// duplicate work (only on the slow tail) for a much tighter tail latency,
// the classic "tied requests" technique.

import (
	"context"
	"time"

	"uniask/internal/trace"
	"uniask/internal/vclock"
)

// Hedge runs op(ctx, 0); if it has not returned after delay, op(ctx, 1) is
// launched concurrently and the first result (success or failure) wins.
// The attempt index lets op vary telemetry or routing between the primary
// and the hedge. A nil clock uses the wall clock. delay <= 0 degrades to a
// plain call.
func Hedge[T any](ctx context.Context, clock vclock.Clock, delay time.Duration, op func(ctx context.Context, attempt int) (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if delay <= 0 {
		return op(ctx, 0)
	}
	if clock == nil {
		clock = vclock.Real{}
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		v   T
		err error
	}
	results := make(chan outcome, 2)
	launch := func(attempt int) {
		go func() {
			v, err := op(hctx, attempt)
			results <- outcome{v: v, err: err}
		}()
	}

	launch(0)
	timer := clock.After(delay)
	for {
		select {
		case r := <-results:
			// First finisher wins outright; the deferred cancel reaps the
			// other attempt (its buffered send never blocks).
			return r.v, r.err
		case <-timer:
			timer = nil // a nil channel never fires again
			trace.AddEvent(ctx, "hedge", trace.A("delay", delay.String()))
			launch(1)
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}
