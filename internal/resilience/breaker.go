package resilience

// Per-dependency circuit breaker. A dependency that fails repeatedly is
// almost certainly still failing one retry later: the breaker opens after a
// run of consecutive failures, sheds every call for a cooldown (callers get
// ErrBreakerOpen immediately and can degrade gracefully instead of waiting
// out retries), then admits a single half-open probe. A successful probe
// closes the circuit; a failed one reopens it for another cooldown.

import (
	"context"
	"errors"
	"sync"
	"time"

	"uniask/internal/trace"
	"uniask/internal/vclock"
)

// State is a breaker state.
type State int

// Breaker states.
const (
	// Closed admits every call (normal operation).
	Closed State = iota
	// Open sheds every call until the cooldown elapses.
	Open
	// HalfOpen admits exactly one probe call at a time.
	HalfOpen
)

// String renders the state for dashboards and health endpoints.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig configures a Breaker. The zero value gives the defaults.
type BreakerConfig struct {
	// Name identifies the guarded dependency ("llm", "embedding", ...) in
	// health output and state-change notifications.
	Name string
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// SuccessesToClose is how many consecutive probe successes close a
	// half-open circuit (default 1).
	SuccessesToClose int
	// IsFailure decides which errors count against the threshold (nil:
	// every non-nil error except context cancellation; a cancelled caller
	// says nothing about the dependency's health).
	IsFailure func(error) bool
	// Clock drives the cooldown (nil = wall clock).
	Clock vclock.Clock
	// OnStateChange, when set, is called (outside the breaker lock) after
	// every transition — the monitor wires its breaker gauges here.
	OnStateChange func(name string, from, to State)
}

// Breaker is a circuit breaker. The zero value is not usable; construct
// with NewBreaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int // consecutive failures while closed / probe failures observed
	successes int // consecutive probe successes while half-open
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
}

// NewBreaker creates a breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.SuccessesToClose <= 0 {
		cfg.SuccessesToClose = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.IsFailure == nil {
		cfg.IsFailure = func(err error) bool {
			return err != nil && !errors.Is(err, context.Canceled)
		}
	}
	return &Breaker{cfg: cfg}
}

// Name reports the configured dependency name.
func (b *Breaker) Name() string { return b.cfg.Name }

// State reports the current state, applying the open→half-open timeout.
func (b *Breaker) State() State {
	b.mu.Lock()
	notify := b.maybeHalfOpenLocked()
	s := b.state
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return s
}

// maybeHalfOpenLocked moves an open breaker whose cooldown has elapsed into
// half-open. Caller holds b.mu. Returns the notification to fire, if any.
func (b *Breaker) maybeHalfOpenLocked() (notify func()) {
	if b.state == Open && b.cfg.Clock.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return b.transitionLocked(HalfOpen)
	}
	return nil
}

// transitionLocked switches state and returns the deferred OnStateChange
// call (to run outside the lock). Caller holds b.mu.
func (b *Breaker) transitionLocked(to State) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	switch to {
	case Open:
		b.openedAt = b.cfg.Clock.Now()
		b.probing = false
		b.successes = 0
	case HalfOpen:
		b.probing = false
		b.successes = 0
	case Closed:
		b.failures = 0
		b.successes = 0
		b.probing = false
	}
	if cb := b.cfg.OnStateChange; cb != nil {
		name := b.cfg.Name
		return func() { cb(name, from, to) }
	}
	return nil
}

// Allow reports whether a call may proceed: nil in closed state, nil for
// exactly one in-flight probe in half-open state, ErrBreakerOpen otherwise.
// Every admitted call MUST be followed by exactly one Record.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	notify := b.maybeHalfOpenLocked()
	var err error
	switch b.state {
	case Open:
		err = ErrBreakerOpen
	case HalfOpen:
		if b.probing {
			err = ErrBreakerOpen
		} else {
			b.probing = true
		}
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return err
}

// Record reports the outcome of an admitted call.
func (b *Breaker) Record(err error) {
	b.record(err)
}

// RecordCtx is Record plus tracing: when the outcome transitions the
// breaker, the transition is attached as an event to the span active in
// ctx — the request that tripped (or healed) the circuit carries the
// evidence in its own trace.
func (b *Breaker) RecordCtx(ctx context.Context, err error) {
	from, to, changed := b.record(err)
	if changed && trace.Enabled(ctx) {
		trace.AddEvent(ctx, "breaker.transition",
			trace.A("breaker", b.cfg.Name),
			trace.A("from", from.String()),
			trace.A("to", to.String()))
	}
}

// record applies one admitted call's outcome and reports the state
// transition it caused, if any.
func (b *Breaker) record(err error) (from, to State, changed bool) {
	failed := b.cfg.IsFailure(err)
	b.mu.Lock()
	before := b.state
	var notify func()
	switch b.state {
	case Closed:
		if failed {
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				notify = b.transitionLocked(Open)
			}
		} else {
			b.failures = 0
		}
	case HalfOpen:
		b.probing = false
		if failed {
			notify = b.transitionLocked(Open)
		} else {
			b.successes++
			if b.successes >= b.cfg.SuccessesToClose {
				notify = b.transitionLocked(Closed)
			}
		}
	case Open:
		// A straggler from before the circuit opened; its outcome is stale.
	}
	after := b.state
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return before, after, before != after
}

// Do runs op through the breaker: shed with ErrBreakerOpen when the circuit
// is open, otherwise executed and its outcome recorded.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err)
	return err
}

// BreakerStatus is a point-in-time view of one breaker, surfaced by the
// engine's health report and the /api/health endpoint.
type BreakerStatus struct {
	// Name is the guarded dependency.
	Name string `json:"name"`
	// State is the current state string ("closed", "open", "half-open").
	State string `json:"state"`
	// ConsecutiveFailures is the current failure run length (closed state).
	ConsecutiveFailures int `json:"consecutiveFailures"`
}

// Status snapshots the breaker.
func (b *Breaker) Status() BreakerStatus {
	state := b.State() // applies the cooldown transition first
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{Name: b.cfg.Name, State: state.String(), ConsecutiveFailures: b.failures}
}
