// Package resilience is UniAsk's fault-tolerance substrate. The production
// system sits on flaky managed services — the chat-completion API, the
// embedding API, the search backend — and the paper's guardrail story only
// holds if the query pipeline survives their failures. This package provides
// the generic machinery every remote-shaped dependency is wrapped behind:
//
//   - Do / DoValue: a retry engine with capped exponential backoff,
//     deterministic seeded jitter, per-attempt timeouts and deadline
//     propagation, and error classification (retryable vs terminal vs
//     budget-exhausted);
//   - Breaker: a per-dependency circuit breaker (closed → open → half-open
//     with a single probe) so a hard-down dependency sheds load instead of
//     burning every request's latency budget on doomed retries;
//   - Hedge: tail-latency hedged requests for cheap idempotent calls.
//
// Everything is deterministic under a fixed seed and drives its waits
// through a vclock.Clock, so chaos tests and breaker-transition tests run on
// virtual time.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"uniask/internal/trace"
	"uniask/internal/vclock"
)

// Class is the retry-engine classification of an attempt error.
type Class int

// Error classes.
const (
	// Retryable errors are transient (rate limits, timeouts, 5xx-shaped
	// upstream failures): the engine backs off and tries again.
	Retryable Class = iota
	// Terminal errors cannot be cured by retrying (bad request, cancelled
	// caller, open breaker): the engine returns them immediately.
	Terminal
)

// Classifier maps an attempt error to a Class. A nil Classifier uses
// DefaultClassify.
type Classifier func(error) Class

// ErrBudgetExhausted wraps the last attempt error when every allowed
// attempt failed. errors.Is(err, ErrBudgetExhausted) identifies it;
// errors.Is also still matches the underlying cause.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// ErrBreakerOpen is returned by Breaker.Allow (and so by any wrapped call)
// while the circuit is open. It is terminal for the retry engine: retrying
// against an open breaker is pointless by construction.
var ErrBreakerOpen = errors.New("resilience: circuit open")

// terminalError marks an error as not worth retrying.
type terminalError struct{ err error }

func (t terminalError) Error() string { return t.err.Error() }
func (t terminalError) Unwrap() error { return t.err }

// MarkTerminal wraps err so DefaultClassify treats it as Terminal.
func MarkTerminal(err error) error {
	if err == nil {
		return nil
	}
	return terminalError{err: err}
}

// DefaultClassify treats context cancellation/deadline, open breakers and
// MarkTerminal-wrapped errors as Terminal, everything else as Retryable.
func DefaultClassify(err error) Class {
	var t terminalError
	switch {
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, ErrBreakerOpen),
		errors.As(err, &t):
		return Terminal
	}
	return Retryable
}

// Policy configures the retry engine. The zero value is usable: it means
// DefaultMaxAttempts attempts with the default backoff and jitter.
type Policy struct {
	// MaxAttempts is the total number of attempts, first call included
	// (0 = DefaultMaxAttempts; negative = exactly one attempt, no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1]
	// (default 0.2): the delay is scaled by a factor drawn uniformly from
	// [1-Jitter/2, 1+Jitter/2].
	Jitter float64
	// Seed drives the jitter deterministically; the same seed yields the
	// same delay sequence (0 = seed 1).
	Seed int64
	// AttemptTimeout bounds each individual attempt with a context deadline
	// (0 = no per-attempt bound; the caller's deadline still applies).
	AttemptTimeout time.Duration
	// Classify decides which errors are retried (nil = DefaultClassify).
	Classify Classifier
	// Clock drives the backoff waits (nil = wall clock). Virtual clocks
	// make backoff tests instantaneous.
	Clock vclock.Clock
}

// DefaultMaxAttempts is the attempt budget used when Policy.MaxAttempts is
// zero.
const DefaultMaxAttempts = 3

// attempts normalizes the attempt budget: 0 selects the default, negative
// disables retries entirely (one attempt).
func (p Policy) attempts() int {
	switch {
	case p.MaxAttempts == 0:
		return DefaultMaxAttempts
	case p.MaxAttempts < 0:
		return 1
	}
	return p.MaxAttempts
}

func (p Policy) clock() vclock.Clock {
	if p.Clock == nil {
		return vclock.Real{}
	}
	return p.Clock
}

func (p Policy) classify(err error) Class {
	if p.Classify == nil {
		return DefaultClassify(err)
	}
	return p.Classify(err)
}

// Delays returns the deterministic backoff sequence the policy would sleep
// between attempts: Delays(n)[i] is the wait after attempt i+1 fails. The
// same Policy (same Seed) always returns the same sequence — tests assert
// jitter determinism against this.
func (p Policy) Delays(n int) []time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	jitter := p.Jitter
	if jitter < 0 {
		jitter = 0
	}
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 1 {
		jitter = 1
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, 0, n)
	d := float64(base)
	for i := 0; i < n; i++ {
		scale := 1 - jitter/2 + jitter*rng.Float64()
		jittered := time.Duration(d * scale)
		if jittered > maxd {
			jittered = maxd
		}
		out = append(out, jittered)
		d *= mult
		if d > float64(maxd) {
			d = float64(maxd)
		}
	}
	return out
}

// Do runs op under the policy: it refuses when ctx is already done, bounds
// each attempt with AttemptTimeout, retries Retryable failures with the
// deterministic backoff, and stops on Terminal errors, caller cancellation,
// or an exhausted attempt budget (then wrapping the last error in
// ErrBudgetExhausted).
func Do(ctx context.Context, p Policy, op func(context.Context) error) error {
	_, err := DoValue(ctx, p, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, op(ctx)
	})
	return err
}

// DoValue is Do for operations that produce a value.
func DoValue[T any](ctx context.Context, p Policy, op func(context.Context) (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	attempts := p.attempts()
	delays := p.Delays(attempts - 1)
	clock := p.clock()

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		v, err := op(actx)
		cancel()
		if err == nil {
			return v, nil
		}
		lastErr = err
		// Each failed attempt becomes an event on whatever span is active
		// (the llm/embedding leaf span, or a retrieval component span), so a
		// fetched trace shows exactly how the retry budget was spent.
		if trace.Enabled(ctx) {
			trace.AddEvent(ctx, "retry",
				trace.A("attempt", strconv.Itoa(attempt+1)),
				trace.A("error", err.Error()))
		}
		// The caller's own cancellation always wins over classification: an
		// attempt that failed because the parent died must not be retried.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return zero, ctxErr
		}
		// A per-attempt timeout with a live parent is the signature of a
		// slow dependency — retryable even though the error is a ctx error.
		attemptTimedOut := p.AttemptTimeout > 0 && errors.Is(err, context.DeadlineExceeded)
		if !attemptTimedOut && p.classify(err) == Terminal {
			return zero, err
		}
		if attempt == attempts-1 {
			break
		}
		select {
		case <-clock.After(delays[attempt]):
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	return zero, fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, attempts, lastErr)
}
