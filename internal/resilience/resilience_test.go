package resilience

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"uniask/internal/vclock"
)

// fastPolicy retries aggressively with negligible real sleeps so tests stay
// quick without a virtual clock.
func fastPolicy(attempts int) Policy {
	return Policy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

var errBoom = errors.New("boom")

func TestDoPolicyTable(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name      string
		ctx       context.Context
		policy    Policy
		failures  int // op fails this many times before succeeding
		wantCalls int
		wantErr   error // sentinel the returned error must match (nil = success)
	}{
		{
			name: "success first try", ctx: context.Background(),
			policy: fastPolicy(3), failures: 0, wantCalls: 1,
		},
		{
			name: "retry until success", ctx: context.Background(),
			policy: fastPolicy(3), failures: 2, wantCalls: 3,
		},
		{
			name: "budget exhausted", ctx: context.Background(),
			policy: fastPolicy(3), failures: 99, wantCalls: 3, wantErr: ErrBudgetExhausted,
		},
		{
			name: "zero attempts means default budget", ctx: context.Background(),
			policy: Policy{BaseDelay: time.Microsecond}, failures: 99,
			wantCalls: DefaultMaxAttempts, wantErr: ErrBudgetExhausted,
		},
		{
			name: "negative attempts disables retry", ctx: context.Background(),
			policy: Policy{MaxAttempts: -1}, failures: 99, wantCalls: 1, wantErr: ErrBudgetExhausted,
		},
		{
			name: "ctx already cancelled refuses to start", ctx: cancelled,
			policy: fastPolicy(3), failures: 0, wantCalls: 0, wantErr: context.Canceled,
		},
		{
			name: "terminal error stops immediately", ctx: context.Background(),
			policy: fastPolicy(5), failures: 99, wantCalls: 1, wantErr: errBoom,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			p := tc.policy
			terminal := tc.name == "terminal error stops immediately"
			err := Do(tc.ctx, p, func(context.Context) error {
				calls++
				if calls <= tc.failures {
					if terminal {
						return MarkTerminal(errBoom)
					}
					return errBoom
				}
				return nil
			})
			if calls != tc.wantCalls {
				t.Fatalf("calls = %d, want %d", calls, tc.wantCalls)
			}
			if tc.wantErr == nil && err != nil {
				t.Fatalf("err = %v, want nil", err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestBudgetErrorKeepsCause checks that the exhausted-budget error still
// matches the underlying failure, so callers can classify the cause.
func TestBudgetErrorKeepsCause(t *testing.T) {
	err := Do(context.Background(), fastPolicy(2), func(context.Context) error { return errBoom })
	if !errors.Is(err, ErrBudgetExhausted) || !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want both ErrBudgetExhausted and errBoom", err)
	}
}

func TestCancellationMidRetryWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errBoom
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

// TestAttemptTimeoutIsRetryable: an attempt exceeding AttemptTimeout while
// the caller's context is alive must be retried, not surfaced as terminal.
func TestAttemptTimeoutIsRetryable(t *testing.T) {
	calls := 0
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, AttemptTimeout: 5 * time.Millisecond}
	err := Do(context.Background(), p, func(ctx context.Context) error {
		calls++
		if calls == 1 {
			<-ctx.Done() // simulate a hang cut short by the attempt deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want nil after retrying past the slow attempt", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestDelaysJitterDeterminism(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Seed: 42}
	a, b := p.Delays(6), p.Delays(6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed gave different delay sequences:\n%v\n%v", a, b)
	}
	p2 := p
	p2.Seed = 43
	if reflect.DeepEqual(a, p2.Delays(6)) {
		t.Fatalf("different seeds gave identical delay sequences: %v", a)
	}
	// Capped exponential shape: non-decreasing up to the cap, never above it.
	for i, d := range a {
		if d > time.Second {
			t.Fatalf("delay[%d] = %v exceeds MaxDelay", i, d)
		}
		if d <= 0 {
			t.Fatalf("delay[%d] = %v not positive", i, d)
		}
	}
	if a[5] < a[0] {
		t.Fatalf("delays shrank: %v", a)
	}
}

func TestDoValueReturnsValue(t *testing.T) {
	v, err := DoValue(context.Background(), fastPolicy(3), func(context.Context) (int, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("DoValue = %d, %v", v, err)
	}
}

func TestBreakerCycle(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Name: "dep", FailureThreshold: 3, Cooldown: time.Minute, Clock: clock,
		OnStateChange: func(name string, from, to State) {
			transitions = append(transitions, fmt.Sprintf("%s:%s->%s", name, from, to))
		},
	})

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
			t.Fatalf("closed call %d: %v", i, err)
		}
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v", b.State())
	}
	// A success resets the run.
	b.Do(func() error { return nil })
	if got := b.Status().ConsecutiveFailures; got != 0 {
		t.Fatalf("failures after success = %d", got)
	}

	// Third consecutive failure in a fresh run opens the circuit.
	for i := 0; i < 3; i++ {
		b.Do(func() error { return errBoom })
	}
	if b.State() != Open {
		t.Fatalf("state after threshold = %v", b.State())
	}
	if err := b.Do(func() error { t.Fatal("op ran while open"); return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open call err = %v", err)
	}

	// Cooldown elapses → half-open; a successful probe closes it.
	clock.Advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v", b.State())
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v", b.State())
	}

	want := []string{"dep:closed->open", "dep:open->half-open", "dep:half-open->closed"}
	if !reflect.DeepEqual(transitions, want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{Name: "dep", FailureThreshold: 1, Cooldown: time.Second, Clock: clock})
	b.Do(func() error { return errBoom })
	if b.State() != Open {
		t.Fatalf("state = %v", b.State())
	}
	clock.Advance(time.Second)
	if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("probe err = %v", err)
	}
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want Open", b.State())
	}
}

// TestBreakerHalfOpenSingleProbe races many goroutines against a half-open
// breaker and asserts exactly one is admitted while the probe is in flight
// (run under -race via make check).
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clock := vclock.NewVirtual(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{Name: "dep", FailureThreshold: 1, Cooldown: time.Second, Clock: clock})
	b.Do(func() error { return errBoom })
	clock.Advance(time.Second)

	const goroutines = 16
	results := make(chan bool, goroutines)
	release := make(chan struct{})
	done := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		go func() {
			ok := b.Allow() == nil
			results <- ok
			if ok {
				// Hold the probe until every goroutine has tried Allow, so
				// no late Allow can observe a re-closed breaker.
				<-release
				b.Record(nil)
				close(done)
			}
		}()
	}
	admitted := 0
	for i := 0; i < goroutines; i++ {
		if <-results {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("admitted probes = %d, want exactly 1", admitted)
	}
	close(release)
	<-done
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
}

// TestBreakerIgnoresCancellation: a cancelled caller must not count against
// the dependency's health.
func TestBreakerIgnoresCancellation(t *testing.T) {
	b := NewBreaker(BreakerConfig{Name: "dep", FailureThreshold: 1})
	b.Do(func() error { return context.Canceled })
	if b.State() != Closed {
		t.Fatalf("state after cancellation = %v, want Closed", b.State())
	}
}

func TestHedgeFastPrimaryWins(t *testing.T) {
	calls := 0
	v, err := Hedge(context.Background(), nil, 50*time.Millisecond, func(ctx context.Context, attempt int) (int, error) {
		calls++
		return attempt, nil
	})
	if err != nil || v != 0 {
		t.Fatalf("Hedge = %d, %v", v, err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no hedge for a fast primary)", calls)
	}
}

func TestHedgeRescuesSlowPrimary(t *testing.T) {
	v, err := Hedge(context.Background(), nil, time.Millisecond, func(ctx context.Context, attempt int) (int, error) {
		if attempt == 0 {
			<-ctx.Done() // primary hangs until the hedge wins and cancels it
			return -1, ctx.Err()
		}
		return attempt, nil
	})
	if err != nil || v != 1 {
		t.Fatalf("Hedge = %d, %v; want the hedged attempt's result", v, err)
	}
}

func TestHedgeRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Hedge(ctx, nil, time.Millisecond, func(ctx context.Context, attempt int) (int, error) {
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
