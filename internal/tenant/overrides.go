package tenant

// Per-tenant overrides, after the limits/overrides machinery of
// multi-tenant observability backends (Grafana Tempo's per-tenant
// overrides module is the proven shape): a defaults block every tenant
// inherits, per-tenant entries that override individual fields, and a
// runtime store that hot-reloads the file — atomically swapping in a new
// good configuration, and keeping the last good one (while logging) when
// the file is malformed. Admission reads the store on every request, so
// rate/class/concurrency changes apply to in-flight traffic immediately;
// engine-shape fields (cache share, fan-out, trace sampling) apply to
// tenants onboarded after the reload (see Registry).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Limits is one tenant's resource envelope. The zero value defers every
// field to the defaults block; a defaults-block zero means "engine
// default" (documented per field).
type Limits struct {
	// RateLimit is the sustained admission rate in queries/second enforced
	// by a token bucket (0 = inherit; negative = unlimited).
	RateLimit float64 `json:"rate"`
	// Burst is the token-bucket capacity: how many queries may arrive
	// back-to-back before the sustained rate bites (0 = inherit, with an
	// ultimate default of max(1, 2×rate)).
	Burst int `json:"burst"`
	// MaxConcurrent caps the tenant's in-flight queries; arrivals beyond it
	// are shed with 429 (0 = inherit; negative = uncapped). This is the
	// primary noisy-neighbor isolation bound: a flooding tenant can occupy
	// at most MaxConcurrent engine slots no matter how fast it sends.
	MaxConcurrent int `json:"maxConcurrent"`
	// CacheShare is the tenant's query-cache partition size in entries
	// (0 = inherit; negative = no cache). Partitions are disjoint LRUs, so
	// one tenant's traffic can never evict another's entries.
	CacheShare int `json:"cacheShare"`
	// MaxFanout bounds the tenant engine's retrieval fan-out workers —
	// BM25 + per-field ANN legs, and the per-shard scatter — per query
	// (0 = inherit; ultimately the engine default of one per CPU).
	MaxFanout int `json:"maxFanout"`
	// TraceSampleRate is the tenant's head-sampling probability in (0, 1]
	// (0 = inherit, ultimately the tracer's configured rate).
	TraceSampleRate float64 `json:"traceSampleRate"`
	// MaxSessions caps the tenant's live conversational sessions (0 =
	// inherit; negative = uncapped; ultimate default
	// session.DefaultTenantSessions). Creating a session beyond the cap is
	// rejected with 429, like any other quota.
	MaxSessions int `json:"maxSessions"`
	// Class is the tenant's priority class: "interactive" (default) or
	// "best-effort". JSON field "class".
	Class Class `json:"-"`
}

// limitsJSON is the wire form of Limits: Class travels as a string.
type limitsJSON struct {
	RateLimit       float64 `json:"rate"`
	Burst           int     `json:"burst"`
	MaxConcurrent   int     `json:"maxConcurrent"`
	CacheShare      int     `json:"cacheShare"`
	MaxFanout       int     `json:"maxFanout"`
	TraceSampleRate float64 `json:"traceSampleRate"`
	MaxSessions     int     `json:"maxSessions"`
	Class           string  `json:"class"`
}

// UnmarshalJSON decodes Limits, rejecting unknown fields (a typoed key in
// an overrides file must fail the reload loudly, not silently default).
func (l *Limits) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w limitsJSON
	if err := dec.Decode(&w); err != nil {
		return err
	}
	class, err := ParseClass(w.Class)
	if err != nil {
		return err
	}
	*l = Limits{
		RateLimit: w.RateLimit, Burst: w.Burst,
		MaxConcurrent: w.MaxConcurrent, CacheShare: w.CacheShare,
		MaxFanout: w.MaxFanout, TraceSampleRate: w.TraceSampleRate,
		MaxSessions: w.MaxSessions, Class: class,
	}
	return nil
}

// MarshalJSON encodes Limits with the string class.
func (l Limits) MarshalJSON() ([]byte, error) {
	return json.Marshal(limitsJSON{
		RateLimit: l.RateLimit, Burst: l.Burst,
		MaxConcurrent: l.MaxConcurrent, CacheShare: l.CacheShare,
		MaxFanout: l.MaxFanout, TraceSampleRate: l.TraceSampleRate,
		MaxSessions: l.MaxSessions, Class: l.Class.String(),
	})
}

// overlay returns l with every zero field replaced by the default's value.
// Class has no zero sentinel in the file (absent = interactive), so a
// per-tenant entry always carries its own class — the decoder defaulted it.
func (l Limits) overlay(def Limits) Limits {
	if l.RateLimit == 0 {
		l.RateLimit = def.RateLimit
	}
	if l.Burst == 0 {
		l.Burst = def.Burst
	}
	if l.MaxConcurrent == 0 {
		l.MaxConcurrent = def.MaxConcurrent
	}
	if l.CacheShare == 0 {
		l.CacheShare = def.CacheShare
	}
	if l.MaxFanout == 0 {
		l.MaxFanout = def.MaxFanout
	}
	if l.TraceSampleRate == 0 {
		l.TraceSampleRate = def.TraceSampleRate
	}
	if l.MaxSessions == 0 {
		l.MaxSessions = def.MaxSessions
	}
	return l
}

// validate rejects limits no deployment can mean: NaN-ish rates and
// malformed bursts are configuration mistakes that must fail the reload.
func (l Limits) validate(who string) error {
	if l.RateLimit != l.RateLimit { // NaN
		return fmt.Errorf("tenant: %s: rate is NaN", who)
	}
	if l.Burst < 0 {
		return fmt.Errorf("tenant: %s: negative burst %d", who, l.Burst)
	}
	if l.TraceSampleRate < 0 || l.TraceSampleRate > 1 {
		return fmt.Errorf("tenant: %s: traceSampleRate %v outside [0,1]", who, l.TraceSampleRate)
	}
	return nil
}

// File is the overrides file schema:
//
//	{
//	  "defaults": {"rate": 50, "burst": 100, "maxConcurrent": 8, "cacheShare": 128},
//	  "tenants": {
//	    "banca-alfa":  {"rate": 200, "maxConcurrent": 16},
//	    "banca-batch": {"class": "best-effort", "rate": 20}
//	  }
//	}
//
// Unknown keys anywhere fail the parse — and a failed parse keeps the
// previous configuration serving.
type File struct {
	Defaults Limits            `json:"defaults"`
	Tenants  map[string]Limits `json:"tenants"`
}

// ParseFile decodes and validates an overrides file.
func ParseFile(data []byte) (File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("tenant: overrides: %w", err)
	}
	if err := f.Defaults.validate("defaults"); err != nil {
		return File{}, err
	}
	for id, l := range f.Tenants {
		if err := ValidateID(id); err != nil {
			return File{}, err
		}
		if err := l.validate("tenant " + id); err != nil {
			return File{}, err
		}
	}
	return f, nil
}

// Overrides is the runtime limits store the admission controller and the
// registry read. Safe for concurrent use; Reload swaps atomically.
type Overrides struct {
	mu       sync.RWMutex
	defaults Limits
	tenants  map[string]Limits
	version  uint64 // bumps on every successful reload
	path     string
	modTime  time.Time

	// Log receives reload diagnostics ("" ok); nil discards. Set before
	// Watch. Signature matches log.Printf / testing.T.Logf.
	Log func(format string, args ...any)
}

// NewOverrides creates a store from an already-parsed file.
func NewOverrides(f File) *Overrides {
	o := &Overrides{}
	o.install(f)
	return o
}

// LoadOverrides reads, parses and installs an overrides file; the path is
// remembered for Reload/Watch.
func LoadOverrides(path string) (*Overrides, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: overrides: %w", err)
	}
	f, err := ParseFile(data)
	if err != nil {
		return nil, err
	}
	o := NewOverrides(f)
	o.path = path
	if st, err := os.Stat(path); err == nil {
		o.modTime = st.ModTime()
	}
	return o, nil
}

func (o *Overrides) install(f File) {
	tenants := make(map[string]Limits, len(f.Tenants))
	for id, l := range f.Tenants {
		tenants[id] = l
	}
	o.mu.Lock()
	o.defaults = f.Defaults
	o.tenants = tenants
	o.version++
	o.mu.Unlock()
}

func (o *Overrides) logf(format string, args ...any) {
	o.mu.RLock()
	logf := o.Log
	o.mu.RUnlock()
	if logf != nil {
		logf(format, args...)
	}
}

// Version is the successful-reload counter — gauges expose it so operators
// can confirm a pushed overrides change actually took.
func (o *Overrides) Version() uint64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.version
}

// For resolves a tenant's effective limits: its entry overlaid on the
// defaults (unlisted tenants get the defaults verbatim).
func (o *Overrides) For(id string) Limits {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if l, ok := o.tenants[id]; ok {
		return l.overlay(o.defaults)
	}
	return o.defaults
}

// Known reports whether the tenant has an explicit overrides entry.
func (o *Overrides) Known(id string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.tenants[id]
	return ok
}

// TenantIDs lists the explicitly configured tenants, sorted.
func (o *Overrides) TenantIDs() []string {
	o.mu.RLock()
	ids := make([]string, 0, len(o.tenants))
	for id := range o.tenants {
		ids = append(ids, id)
	}
	o.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// Reload re-reads the remembered path. On any error — unreadable file,
// malformed JSON, failed validation — the last good configuration stays
// installed and serving; the error is logged and returned. Traffic is
// never dropped by a bad reload.
func (o *Overrides) Reload() error {
	o.mu.RLock()
	path := o.path
	o.mu.RUnlock()
	if path == "" {
		return fmt.Errorf("tenant: overrides: no file path to reload from")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		o.logf("tenant: overrides reload failed, keeping last good config: %v", err)
		return err
	}
	f, err := ParseFile(data)
	if err != nil {
		o.logf("tenant: overrides reload failed, keeping last good config: %v", err)
		return err
	}
	o.install(f)
	o.logf("tenant: overrides reloaded from %s (version %d, %d tenants)", path, o.Version(), len(f.Tenants))
	return nil
}

// Watch polls the file's mtime every interval and Reloads on change, until
// ctx is cancelled. Run it on its own goroutine; reload failures are
// logged and leave the last good configuration serving.
func (o *Overrides) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			o.mu.RLock()
			path, last := o.path, o.modTime
			o.mu.RUnlock()
			if path == "" {
				return
			}
			st, err := os.Stat(path)
			if err != nil {
				o.logf("tenant: overrides watch: %v", err)
				continue
			}
			if st.ModTime().Equal(last) {
				continue
			}
			o.mu.Lock()
			o.modTime = st.ModTime()
			o.mu.Unlock()
			o.Reload() // logs its own outcome; last-good kept on failure
		}
	}
}
