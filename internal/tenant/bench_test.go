package tenant

// Admission-path benchmarks. BenchmarkTenantNoisyNeighbor is the recorded
// isolation number (make bench → BENCH_query.json): the p99 delta an
// abusive tenant's flood inflicts on a well-behaved tenant's
// admit→work→release cycle, reported as p99-delta-ns. The admission design
// pins this near zero: the abuser saturates its own token bucket and
// 4-slot concurrency cap, never the slots the good tenant uses.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func benchOverrides(b *testing.B, js string) *Overrides {
	b.Helper()
	f, err := ParseFile([]byte(js))
	if err != nil {
		b.Fatal(err)
	}
	return NewOverrides(f)
}

// BenchmarkTenantAdmit is the per-request front-door overhead on the
// uncontended happy path: one token-bucket take, one slot grant, one
// release.
func BenchmarkTenantAdmit(b *testing.B) {
	ov := benchOverrides(b, `{"tenants": {"bench": {"rate": -1, "maxConcurrent": -1}}}`)
	ctrl := NewController(AdmissionConfig{Capacity: -1}, ov)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release, rej := ctrl.Admit(ctx, "bench")
		if rej != nil {
			b.Fatal(rej)
		}
		release(time.Microsecond)
	}
}

// benchWork simulates one request's engine time: a short spin so latencies
// are nonzero without sleeping (sleep granularity would swamp the signal).
func benchWork() {
	for n := 0; n < 2000; n++ {
		_ = n * n
	}
}

func BenchmarkTenantNoisyNeighbor(b *testing.B) {
	ov := benchOverrides(b, `{
		"tenants": {
			"good":    {"rate": -1, "maxConcurrent": 8},
			"abusive": {"rate": 100, "burst": 100, "maxConcurrent": 4, "class": "best-effort"}
		}
	}`)
	ctrl := NewController(AdmissionConfig{Capacity: 16}, ov)
	ctx := context.Background()

	run := func(n int) []time.Duration {
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			start := time.Now()
			release, rej := ctrl.Admit(ctx, "good")
			if rej != nil {
				b.Fatalf("well-behaved tenant shed: %+v", rej)
			}
			benchWork()
			d := time.Since(start)
			release(d)
			lat = append(lat, d)
		}
		return lat
	}

	b.ResetTimer()
	// Phase 1: solo.
	solo := run(b.N)

	// Phase 2: same workload while 8 goroutines flood the abusive tenant.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if release, rej := ctrl.Admit(ctx, "abusive"); rej == nil {
					benchWork()
					release(time.Microsecond)
				}
			}
		}()
	}
	noisy := run(b.N)
	stop.Store(true)
	wg.Wait()
	b.StopTimer()

	delta := P99(noisy) - P99(solo)
	if delta < 0 {
		delta = 0
	}
	b.ReportMetric(float64(delta.Nanoseconds()), "p99-delta-ns")
	b.ReportMetric(float64(P99(solo).Nanoseconds()), "p99-solo-ns")
	b.ReportMetric(float64(P99(noisy).Nanoseconds()), "p99-noisy-ns")
}
