package tenant

// Admission control: the front door every multi-tenant query passes before
// it may touch an engine. Three gates, cheapest first:
//
//  1. Per-tenant token bucket — the sustained rate limit. A tenant
//     flooding at 50× its configured rate has ~98% of its arrivals shed
//     right here, each with a Retry-After computed from the bucket's
//     refill, before they can occupy memory or a queue slot.
//  2. Per-tenant concurrency cap — the isolation bound. However fast a
//     tenant's admitted requests arrive, it can hold at most MaxConcurrent
//     engine slots, so a well-behaved neighbor always finds capacity.
//  3. Global slots with weighted fair queueing — the engine's total
//     concurrency budget. When every slot is busy, arrivals wait in one
//     FIFO per priority class; freed slots are granted to the class with
//     the least weighted service (interactive outweighs best-effort
//     DefaultInteractiveWeight:DefaultBestEffortWeight), so interactive
//     latency stays flat under best-effort backlogs while queued
//     best-effort work still drains. Saturation sheds best-effort first:
//     a best-effort arrival is rejected immediately whenever interactive
//     work is already waiting, and either class is rejected when its queue
//     is full or the bounded wait expires.
//
// Every rejection carries a machine-readable reason and a Retry-After
// hint; the HTTP layer maps rejections to 429 — never 5xx — so clients
// can distinguish "slow down" from "broken".

import (
	"context"
	"math"
	"sort"
	"sync"
	"time"

	"uniask/internal/vclock"
)

// Defaults for the zero AdmissionConfig.
const (
	// DefaultCapacity is the global concurrent-query budget.
	DefaultCapacity = 64
	// DefaultQueueDepth bounds each class's wait queue.
	DefaultQueueDepth = 64
	// DefaultMaxWait bounds how long an admitted-but-queued request waits
	// for a slot before it is shed.
	DefaultMaxWait = 500 * time.Millisecond
	// DefaultInteractiveWeight and DefaultBestEffortWeight set the fair-
	// queueing service ratio between the classes.
	DefaultInteractiveWeight = 4
	// DefaultBestEffortWeight — see DefaultInteractiveWeight.
	DefaultBestEffortWeight = 1
	// DefaultRateLimit and DefaultBurst apply to tenants whose effective
	// limits leave the rate unset (0): a conservative floor so an
	// unconfigured tenant cannot flood.
	DefaultRateLimit = 50
	// DefaultMaxConcurrent caps an unconfigured tenant's in-flight queries.
	DefaultMaxConcurrent = 8
)

// AdmissionConfig parameterizes a Controller. The zero value uses the
// defaults above and the wall clock.
type AdmissionConfig struct {
	// Capacity is the global concurrent-query budget (0 = DefaultCapacity;
	// negative = unlimited, queueing never happens).
	Capacity int
	// QueueDepth bounds each priority class's wait queue (0 =
	// DefaultQueueDepth).
	QueueDepth int
	// MaxWait is how long a queued request may wait for a slot before it
	// is shed (0 = DefaultMaxWait).
	MaxWait time.Duration
	// InteractiveWeight / BestEffortWeight set the weighted-fair-queueing
	// grant ratio (0 = defaults 4:1).
	InteractiveWeight int
	BestEffortWeight  int
	// Clock supplies time for buckets and wait timers (nil = wall clock);
	// tests inject a vclock.Virtual for deterministic refill.
	Clock vclock.Clock
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Capacity == 0 {
		c.Capacity = DefaultCapacity
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxWait <= 0 {
		c.MaxWait = DefaultMaxWait
	}
	if c.InteractiveWeight <= 0 {
		c.InteractiveWeight = DefaultInteractiveWeight
	}
	if c.BestEffortWeight <= 0 {
		c.BestEffortWeight = DefaultBestEffortWeight
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
	return c
}

// Reason classifies a rejection.
type Reason string

// Rejection reasons, in gate order.
const (
	// ReasonRate: the tenant's token bucket is empty — it exceeded its
	// sustained rate limit.
	ReasonRate Reason = "rate-limit"
	// ReasonConcurrency: the tenant is already running MaxConcurrent
	// queries.
	ReasonConcurrency Reason = "tenant-concurrency"
	// ReasonSaturated: the engine's global slots are busy and the request
	// could not be queued (best-effort behind waiting interactive work, a
	// full class queue) or its bounded queue wait expired.
	ReasonSaturated Reason = "saturated"
)

// Rejection is one shed request: who, why, and when to come back. The
// server maps it to HTTP 429 with a Retry-After header.
type Rejection struct {
	Tenant     string
	Class      Class
	Reason     Reason
	RetryAfter time.Duration
}

// bucket is a token bucket advanced lazily on access.
type bucket struct {
	tokens float64
	last   time.Time
}

// take refills by elapsed time, then takes one token if available;
// otherwise it reports the wait until the next token. rate <= 0 means
// unlimited. burst is the bucket capacity.
func (b *bucket) take(now time.Time, rate float64, burst float64) (ok bool, wait time.Duration) {
	if rate <= 0 {
		return true, 0
	}
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+rate*dt.Seconds())
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rate
	return false, time.Duration(need * float64(time.Second))
}

// tenantState is the controller's per-tenant accounting.
type tenantState struct {
	bucket   bucket
	inflight int
	window   latencyWindow

	admitted uint64
	queued   uint64
	shed     map[Reason]uint64
}

// waiter is one queued request awaiting a slot grant.
type waiter struct {
	tenant string
	grant  chan struct{} // closed by the granter after transferring the slot
	gone   bool          // abandoned (timeout/cancel); skip on grant
}

// Controller is the admission front door. Create with NewController; one
// Controller fronts one engine process, across all its tenants.
type Controller struct {
	cfg AdmissionConfig
	ov  *Overrides

	mu      sync.Mutex
	free    int
	tenants map[string]*tenantState
	queues  [numClasses][]*waiter
	// vtime implements weighted fair queueing: each grant to a class costs
	// 1/weight; the next grant goes to the non-empty class with the lowest
	// accumulated cost, so service converges to the weight ratio.
	vtime [numClasses]float64
}

// NewController creates the front door over an overrides store (nil ov
// applies the package defaults to every tenant).
func NewController(cfg AdmissionConfig, ov *Overrides) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		ov:      ov,
		free:    cfg.Capacity,
		tenants: make(map[string]*tenantState),
	}
}

// limitsFor resolves effective limits, applying the hard floors for
// unset values so an unconfigured tenant is never unlimited.
func (c *Controller) limitsFor(id string) Limits {
	var l Limits
	if c.ov != nil {
		l = c.ov.For(id)
	}
	if l.RateLimit == 0 {
		l.RateLimit = DefaultRateLimit
	}
	if l.Burst <= 0 {
		l.Burst = int(math.Max(1, 2*l.RateLimit))
	}
	if l.MaxConcurrent == 0 {
		l.MaxConcurrent = DefaultMaxConcurrent
	}
	return l
}

func (c *Controller) state(id string) *tenantState {
	st, ok := c.tenants[id]
	if !ok {
		st = &tenantState{shed: make(map[Reason]uint64)}
		c.tenants[id] = st
	}
	return st
}

// Admit runs the three admission gates for one request of the tenant. On
// success it returns a release closure (call exactly once, when the
// request finishes, with the request's latency for the tenant's p99
// gauge) and a nil rejection. On shed it returns a nil release and the
// rejection. Blocking is bounded by MaxWait and by ctx.
func (c *Controller) Admit(ctx context.Context, id string) (release func(latency time.Duration), rej *Rejection) {
	lim := c.limitsFor(id)
	now := c.cfg.Clock.Now()

	c.mu.Lock()
	st := c.state(id)

	// Gate 1: rate limit.
	if ok, wait := st.bucket.take(now, lim.RateLimit, float64(lim.Burst)); !ok {
		st.shed[ReasonRate]++
		c.mu.Unlock()
		return nil, &Rejection{Tenant: id, Class: lim.Class, Reason: ReasonRate, RetryAfter: wait}
	}

	// Gate 2: per-tenant concurrency.
	if lim.MaxConcurrent > 0 && st.inflight >= lim.MaxConcurrent {
		st.shed[ReasonConcurrency]++
		c.mu.Unlock()
		// One in-flight query has to finish first; its expected residual
		// time is unknowable here, so hint the tenant's recent p99.
		hint := st.window.p99()
		if hint <= 0 {
			hint = 50 * time.Millisecond
		}
		return nil, &Rejection{Tenant: id, Class: lim.Class, Reason: ReasonConcurrency, RetryAfter: hint}
	}

	// Gate 3: global slots.
	if c.cfg.Capacity < 0 || c.free > 0 {
		if c.cfg.Capacity >= 0 {
			c.free--
		}
		st.inflight++
		st.admitted++
		c.mu.Unlock()
		return c.releaseFunc(id), nil
	}

	// Saturated. Best-effort sheds first: it never queues behind waiting
	// interactive work.
	class := lim.Class
	if class == BestEffort && len(c.queues[Interactive]) > 0 {
		st.shed[ReasonSaturated]++
		c.mu.Unlock()
		return nil, &Rejection{Tenant: id, Class: class, Reason: ReasonSaturated, RetryAfter: c.cfg.MaxWait}
	}
	if len(c.queues[class]) >= c.cfg.QueueDepth {
		st.shed[ReasonSaturated]++
		c.mu.Unlock()
		return nil, &Rejection{Tenant: id, Class: class, Reason: ReasonSaturated, RetryAfter: c.cfg.MaxWait}
	}
	w := &waiter{tenant: id, grant: make(chan struct{})}
	c.queues[class] = append(c.queues[class], w)
	st.queued++
	c.mu.Unlock()

	select {
	case <-w.grant:
		// The granter already moved the slot to us and bumped inflight.
		return c.releaseFunc(id), nil
	case <-c.cfg.Clock.After(c.cfg.MaxWait):
	case <-ctx.Done():
	}
	// Timed out or abandoned: mark the waiter gone so a racing grant is
	// re-dispatched instead of leaking the slot.
	c.mu.Lock()
	select {
	case <-w.grant:
		// Grant won the race after all; keep the slot.
		c.mu.Unlock()
		return c.releaseFunc(id), nil
	default:
	}
	w.gone = true
	st = c.state(id)
	st.shed[ReasonSaturated]++
	c.mu.Unlock()
	return nil, &Rejection{Tenant: id, Class: class, Reason: ReasonSaturated, RetryAfter: c.cfg.MaxWait}
}

// releaseFunc builds the slot-release closure for an admitted request.
func (c *Controller) releaseFunc(id string) func(latency time.Duration) {
	var once sync.Once
	return func(latency time.Duration) {
		once.Do(func() {
			c.mu.Lock()
			st := c.state(id)
			st.inflight--
			if latency > 0 {
				st.window.add(latency)
			}
			c.grantNextLocked()
			c.mu.Unlock()
		})
	}
}

// grantNextLocked hands the freed slot to the next waiter by weighted fair
// queueing, or returns it to the free pool. Caller holds c.mu.
func (c *Controller) grantNextLocked() {
	if c.cfg.Capacity < 0 {
		return // unlimited: no slots to hand over
	}
	for {
		class, ok := c.pickClassLocked()
		if !ok {
			c.free++
			return
		}
		w := c.queues[class][0]
		c.queues[class] = c.queues[class][1:]
		c.vtime[class] += 1 / float64(c.weight(class))
		if w.gone {
			continue // abandoned waiter: try the next one
		}
		st := c.state(w.tenant)
		st.inflight++
		st.admitted++
		close(w.grant)
		return
	}
}

func (c *Controller) weight(cl Class) int {
	if cl == Interactive {
		return c.cfg.InteractiveWeight
	}
	return c.cfg.BestEffortWeight
}

// pickClassLocked returns the non-empty class queue with the least
// weighted service so far.
func (c *Controller) pickClassLocked() (Class, bool) {
	best, found := Interactive, false
	for cl := Class(0); cl < numClasses; cl++ {
		if len(c.queues[cl]) == 0 {
			continue
		}
		if !found || c.vtime[cl] < c.vtime[best] {
			best, found = cl, true
		}
	}
	return best, found
}

// TenantStats is one tenant's admission gauge row.
type TenantStats struct {
	// Tenant is the tenant ID; Class its current priority class.
	Tenant string
	Class  Class
	// Admitted, Queued and Shed count lifetime outcomes; ShedByReason
	// breaks Shed down by gate.
	Admitted uint64
	Queued   uint64
	Shed     uint64
	// ShedByReason maps ReasonRate/ReasonConcurrency/ReasonSaturated to
	// their counts.
	ShedByReason map[Reason]uint64
	// Inflight is the tenant's current in-flight queries; P99 its recent
	// request latency (over the last latencyWindowSize requests).
	Inflight int
	P99      time.Duration
	// RateLimit and MaxConcurrent echo the effective limits, so the
	// dashboard shows the envelope next to the consumption.
	RateLimit     float64
	MaxConcurrent int
}

// Stats snapshots every tenant the controller has seen, sorted by ID.
func (c *Controller) Stats() []TenantStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TenantStats, 0, len(c.tenants))
	for id, st := range c.tenants {
		lim := c.limitsFor(id)
		row := TenantStats{
			Tenant: id, Class: lim.Class,
			Admitted: st.admitted, Queued: st.queued,
			ShedByReason: make(map[Reason]uint64, len(st.shed)),
			Inflight:     st.inflight, P99: st.window.p99(),
			RateLimit: lim.RateLimit, MaxConcurrent: lim.MaxConcurrent,
		}
		for r, n := range st.shed {
			row.ShedByReason[r] = n
			row.Shed += n
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// StatsFor returns one tenant's row (zero row, false when never seen).
func (c *Controller) StatsFor(id string) (TenantStats, bool) {
	for _, row := range c.Stats() {
		if row.Tenant == id {
			return row, true
		}
	}
	return TenantStats{}, false
}
