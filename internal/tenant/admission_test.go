package tenant

import (
	"context"
	"sync"
	"testing"
	"time"

	"uniask/internal/vclock"
)

func ctxb(t *testing.T) context.Context {
	t.Helper()
	return context.Background()
}

func contextWithCancel() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

func overridesFromJSON(t *testing.T, js string) *Overrides {
	t.Helper()
	f, err := ParseFile([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	return NewOverrides(f)
}

// TestAdmitRateLimit drives the token bucket on a virtual clock: burst
// admits, then shedding with a refill-derived Retry-After, then recovery
// after advancing the clock.
func TestAdmitRateLimit(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	ov := overridesFromJSON(t, `{"tenants": {"a": {"rate": 10, "burst": 2, "maxConcurrent": -1}}}`)
	ctrl := NewController(AdmissionConfig{Capacity: -1, Clock: clk}, ov)

	for i := 0; i < 2; i++ {
		release, rej := ctrl.Admit(ctxb(t), "a")
		if rej != nil {
			t.Fatalf("burst request %d shed: %+v", i, rej)
		}
		release(time.Millisecond)
	}
	_, rej := ctrl.Admit(ctxb(t), "a")
	if rej == nil || rej.Reason != ReasonRate {
		t.Fatalf("third request in the same instant: rej = %+v, want %s", rej, ReasonRate)
	}
	if rej.RetryAfter <= 0 || rej.RetryAfter > 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want (0, 100ms] at 10 q/s", rej.RetryAfter)
	}

	clk.Advance(100 * time.Millisecond) // one token at 10 q/s
	release, rej := ctrl.Admit(ctxb(t), "a")
	if rej != nil {
		t.Fatalf("post-refill request shed: %+v", rej)
	}
	release(time.Millisecond)
}

func TestAdmitConcurrencyCap(t *testing.T) {
	ov := overridesFromJSON(t, `{"tenants": {"a": {"rate": -1, "maxConcurrent": 2}}}`)
	ctrl := NewController(AdmissionConfig{Capacity: -1}, ov)

	r1, rej := ctrl.Admit(ctxb(t), "a")
	if rej != nil {
		t.Fatal(rej)
	}
	r2, rej := ctrl.Admit(ctxb(t), "a")
	if rej != nil {
		t.Fatal(rej)
	}
	if _, rej = ctrl.Admit(ctxb(t), "a"); rej == nil || rej.Reason != ReasonConcurrency {
		t.Fatalf("third concurrent request: rej = %+v, want %s", rej, ReasonConcurrency)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("concurrency rejection carries no Retry-After hint: %+v", rej)
	}
	r1(10 * time.Millisecond)
	r3, rej := ctrl.Admit(ctxb(t), "a")
	if rej != nil {
		t.Fatalf("after release the slot should be free again: %+v", rej)
	}
	r3(time.Millisecond)
	r2(time.Millisecond)

	st, ok := ctrl.StatsFor("a")
	if !ok {
		t.Fatal("no stats for tenant a")
	}
	if st.Admitted != 3 || st.Shed != 1 || st.ShedByReason[ReasonConcurrency] != 1 {
		t.Fatalf("stats = %+v, want 3 admitted / 1 shed by concurrency", st)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after all releases", st.Inflight)
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	ov := overridesFromJSON(t, `{"tenants": {"a": {"rate": -1, "maxConcurrent": 1}}}`)
	ctrl := NewController(AdmissionConfig{Capacity: 4}, ov)
	release, rej := ctrl.Admit(ctxb(t), "a")
	if rej != nil {
		t.Fatal(rej)
	}
	release(time.Millisecond)
	release(time.Millisecond) // double release must not double-free
	st, _ := ctrl.StatsFor("a")
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d, want 0", st.Inflight)
	}
	// The global pool must not have grown past capacity: admit 4, 5th queues
	// or sheds rather than finding a phantom 5th slot.
	ovB := overridesFromJSON(t, `{"defaults": {"rate": -1, "maxConcurrent": -1}}`)
	ctrl = NewController(AdmissionConfig{Capacity: 1, QueueDepth: 1, MaxWait: time.Millisecond}, ovB)
	r1, _ := ctrl.Admit(ctxb(t), "a")
	r1(0)
	r1(0)
	r2, rej := ctrl.Admit(ctxb(t), "a")
	if rej != nil {
		t.Fatal(rej)
	}
	done := make(chan *Rejection, 1)
	go func() {
		_, rej := ctrl.Admit(ctxb(t), "a")
		done <- rej
	}()
	if rej := <-done; rej == nil {
		t.Fatal("double release minted an extra global slot")
	}
	r2(0)
}

// TestSaturationShedsBestEffortFirst fills the global slots, parks an
// interactive waiter, and checks a best-effort arrival is shed immediately
// while the interactive waiter is eventually granted.
func TestSaturationShedsBestEffortFirst(t *testing.T) {
	ov := overridesFromJSON(t, `{
		"defaults": {"rate": -1, "maxConcurrent": -1},
		"tenants": {"int": {}, "batch": {"class": "best-effort"}}
	}`)
	ctrl := NewController(AdmissionConfig{Capacity: 1, QueueDepth: 8, MaxWait: 5 * time.Second}, ov)

	holder, rej := ctrl.Admit(ctxb(t), "int")
	if rej != nil {
		t.Fatal(rej)
	}

	granted := make(chan func(time.Duration), 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		release, rej := ctrl.Admit(ctxb(t), "int")
		if rej != nil {
			t.Errorf("queued interactive request shed: %+v", rej)
			return
		}
		granted <- release
	}()

	// Wait until the interactive request is actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := ctrl.StatsFor("int")
		if st.Queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interactive request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Best-effort arrival while interactive work waits: shed immediately.
	_, rej = ctrl.Admit(ctxb(t), "batch")
	if rej == nil || rej.Reason != ReasonSaturated {
		t.Fatalf("best-effort under saturation: rej = %+v, want immediate %s", rej, ReasonSaturated)
	}
	if rej.Class != BestEffort {
		t.Fatalf("rejection class = %v", rej.Class)
	}

	holder(time.Millisecond) // frees the slot -> granted to the waiter
	release := <-granted
	release(time.Millisecond)
	wg.Wait()
}

// TestWFQGrantRatio queues both classes deep, then releases slots one by
// one: grants must follow the configured weight ratio, and neither class
// may starve.
func TestWFQGrantRatio(t *testing.T) {
	ov := overridesFromJSON(t, `{
		"defaults": {"rate": -1, "maxConcurrent": -1},
		"tenants": {"int": {}, "batch": {"class": "best-effort"}}
	}`)
	ctrl := NewController(AdmissionConfig{
		Capacity: 1, QueueDepth: 32, MaxWait: time.Minute,
		InteractiveWeight: 3, BestEffortWeight: 1,
	}, ov)

	holder, rej := ctrl.Admit(ctxb(t), "int")
	if rej != nil {
		t.Fatal(rej)
	}

	const perClass = 8
	type grant struct {
		class   Class
		release func(time.Duration)
	}
	grants := make(chan grant, 2*perClass)
	var wg sync.WaitGroup
	enqueue := func(id string, class Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, rej := ctrl.Admit(context.Background(), id)
			if rej != nil {
				t.Errorf("%s shed: %+v", id, rej)
				return
			}
			grants <- grant{class: class, release: release}
		}()
	}
	// Best-effort must be parked first: a best-effort arrival is shed, not
	// queued, once interactive work is already waiting (tested separately in
	// TestSaturationShedsBestEffortFirst).
	waitQueued := func(id string, want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, _ := ctrl.StatsFor(id)
			if st.Queued == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s waiters never queued: %d/%d", id, st.Queued, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < perClass; i++ {
		enqueue("batch", BestEffort)
	}
	waitQueued("batch", perClass)
	for i := 0; i < perClass; i++ {
		enqueue("int", Interactive)
	}
	waitQueued("int", perClass)

	// Drain: release the held slot, then each granted request in turn. The
	// first 8 grants should split 6:2 by the 3:1 weights.
	holder(time.Millisecond)
	classes := make([]Class, 0, 2*perClass)
	for i := 0; i < 2*perClass; i++ {
		g := <-grants
		classes = append(classes, g.class)
		g.release(time.Millisecond)
	}
	wg.Wait()

	interactiveInFirst8 := 0
	for _, cl := range classes[:8] {
		if cl == Interactive {
			interactiveInFirst8++
		}
	}
	if interactiveInFirst8 != 6 {
		t.Fatalf("first 8 grants: %d interactive, want 6 (3:1 weights); order %v", interactiveInFirst8, classes)
	}
	// Both queues fully drained: no starvation.
	si, _ := ctrl.StatsFor("int")
	sb, _ := ctrl.StatsFor("batch")
	if si.Admitted != perClass+1 || sb.Admitted != perClass {
		t.Fatalf("admitted int=%d batch=%d, want %d/%d", si.Admitted, sb.Admitted, perClass+1, perClass)
	}
}

func TestQueueDepthBound(t *testing.T) {
	ov := overridesFromJSON(t, `{"defaults": {"rate": -1, "maxConcurrent": -1}, "tenants": {"a": {}}}`)
	ctrl := NewController(AdmissionConfig{Capacity: 1, QueueDepth: 1, MaxWait: time.Minute}, ov)
	holder, _ := ctrl.Admit(ctxb(t), "a")

	queued := make(chan func(time.Duration), 1)
	go func() {
		release, rej := ctrl.Admit(ctxb(t), "a")
		if rej == nil {
			queued <- release
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := ctrl.StatsFor("a")
		if st.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full: next arrival sheds immediately.
	if _, rej := ctrl.Admit(ctxb(t), "a"); rej == nil || rej.Reason != ReasonSaturated {
		t.Fatalf("overflow arrival: rej = %+v, want %s", rej, ReasonSaturated)
	}
	holder(time.Millisecond)
	(<-queued)(time.Millisecond)
}

func TestQueueWaitTimeout(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	ov := overridesFromJSON(t, `{"defaults": {"rate": -1, "maxConcurrent": -1}, "tenants": {"a": {}}}`)
	ctrl := NewController(AdmissionConfig{Capacity: 1, QueueDepth: 4, MaxWait: 100 * time.Millisecond, Clock: clk}, ov)
	holder, _ := ctrl.Admit(ctxb(t), "a")

	done := make(chan *Rejection, 1)
	go func() {
		_, rej := ctrl.Admit(ctxb(t), "a")
		done <- rej
	}()
	deadline := time.Now().Add(5 * time.Second)
	for clk.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never armed its timeout")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(101 * time.Millisecond)
	rej := <-done
	if rej == nil || rej.Reason != ReasonSaturated {
		t.Fatalf("timed-out waiter: rej = %+v, want %s", rej, ReasonSaturated)
	}
	// The abandoned waiter must not swallow the next grant: a release after
	// the timeout returns the slot to the free pool.
	holder(time.Millisecond)
	release, rej2 := ctrl.Admit(ctxb(t), "a")
	if rej2 != nil {
		t.Fatalf("slot leaked to an abandoned waiter: %+v", rej2)
	}
	release(time.Millisecond)
}

func TestAdmitContextCancel(t *testing.T) {
	ov := overridesFromJSON(t, `{"defaults": {"rate": -1, "maxConcurrent": -1}, "tenants": {"a": {}}}`)
	ctrl := NewController(AdmissionConfig{Capacity: 1, QueueDepth: 4, MaxWait: time.Minute}, ov)
	holder, _ := ctrl.Admit(ctxb(t), "a")

	ctx, cancel := contextWithCancel()
	done := make(chan *Rejection, 1)
	go func() {
		_, rej := ctrl.Admit(ctx, "a")
		done <- rej
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := ctrl.StatsFor("a")
		if st.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if rej := <-done; rej == nil {
		t.Fatal("cancelled waiter was admitted")
	}
	holder(time.Millisecond)
}

func TestLimitsFloorsForUnconfiguredTenant(t *testing.T) {
	ctrl := NewController(AdmissionConfig{}, nil)
	lim := ctrl.limitsFor("anyone")
	if lim.RateLimit != DefaultRateLimit {
		t.Fatalf("rate floor = %v, want %v", lim.RateLimit, DefaultRateLimit)
	}
	if lim.MaxConcurrent != DefaultMaxConcurrent {
		t.Fatalf("concurrency floor = %v, want %v", lim.MaxConcurrent, DefaultMaxConcurrent)
	}
	if lim.Burst != int(2*DefaultRateLimit) {
		t.Fatalf("burst floor = %v, want %v", lim.Burst, 2*DefaultRateLimit)
	}
}
