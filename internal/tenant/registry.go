package tenant

// Registry: tenant ID → fully assembled per-tenant engine. Each tenant
// gets its own knowledge base, index/shard facade, searcher and query
// cache partition; what is shared across tenants is the serving stack —
// the HTTP server, the admission controller, the tracer (tenant attribute
// on spans keeps per-tenant slices queryable) and the dashboard registry.
// Engines are built lazily on first use by the caller-provided factory, at
// most once per tenant even under concurrent first requests.

import (
	"fmt"
	"sort"
	"sync"

	"uniask/internal/core"
	"uniask/internal/search"
	"uniask/internal/trace"
)

// EngineFactory builds one tenant's engine from its effective limits —
// typically by deriving a per-tenant core.Config and ingesting the
// tenant's corpus. See StandardFactory.
type EngineFactory func(id string, lim Limits) (*core.Engine, error)

// ErrUnknownTenant is returned for tenants without an overrides entry when
// the registry is closed to unknown tenants.
var ErrUnknownTenant = fmt.Errorf("tenant: unknown tenant")

// Registry maps tenant IDs to engines. Safe for concurrent use.
type Registry struct {
	ov      *Overrides
	factory EngineFactory
	// AllowUnknown admits tenants without an overrides entry, built with
	// the defaults block. Off by default: onboarding a bank is an explicit
	// config change, not a side effect of a typoed header.
	AllowUnknown bool

	mu      sync.Mutex
	engines map[string]*regEntry
}

// regEntry builds the tenant's engine at most once, outside the registry
// lock (corpus ingestion is expensive; concurrent tenants must not
// serialize behind it).
type regEntry struct {
	once sync.Once
	eng  *core.Engine
	err  error
}

// NewRegistry creates a registry over an overrides store and a factory.
func NewRegistry(ov *Overrides, factory EngineFactory) *Registry {
	return &Registry{ov: ov, factory: factory, engines: make(map[string]*regEntry)}
}

// Overrides exposes the registry's limits store.
func (r *Registry) Overrides() *Overrides { return r.ov }

// Engine returns the tenant's engine, building it on first use. Unknown
// tenants (no overrides entry) are refused with ErrUnknownTenant unless
// AllowUnknown is set. A factory failure is not cached: the next request
// retries the build.
func (r *Registry) Engine(id string) (*core.Engine, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if !r.AllowUnknown && (r.ov == nil || !r.ov.Known(id)) {
		return nil, fmt.Errorf("%w %q (add it to the overrides file to onboard)", ErrUnknownTenant, id)
	}
	r.mu.Lock()
	e, ok := r.engines[id]
	if !ok {
		e = &regEntry{}
		r.engines[id] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		var lim Limits
		if r.ov != nil {
			lim = r.ov.For(id)
		}
		e.eng, e.err = r.factory(id, lim)
	})
	if e.err != nil {
		err := e.err
		r.mu.Lock()
		if r.engines[id] == e {
			delete(r.engines, id) // allow a retry to rebuild
		}
		r.mu.Unlock()
		return nil, err
	}
	return e.eng, nil
}

// Active lists tenants with a built engine, sorted.
func (r *Registry) Active() []string {
	r.mu.Lock()
	ids := make([]string, 0, len(r.engines))
	for id, e := range r.engines {
		if e.eng != nil {
			ids = append(ids, id)
		}
	}
	r.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// EngineIfActive returns the tenant's engine only if already built —
// gauges and health views use it to avoid triggering expensive onboarding
// from a read-only endpoint.
func (r *Registry) EngineIfActive(id string) (*core.Engine, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.engines[id]; ok && e.eng != nil {
		return e.eng, true
	}
	return nil, false
}

// StandardFactory derives tenant engines from one base configuration,
// applying each tenant's engine-shape limits:
//
//   - the query cache becomes the tenant's partition from the shared pool
//     (CacheShare entries; negative share disables caching for the tenant),
//   - MaxFanout caps the engine's retrieval fan-out workers,
//   - the shared tracer replaces per-engine tracers so every tenant's
//     spans land in one queryable store,
//   - TraceSampleRate is enforced per request by the server (the tracer is
//     shared), not here.
//
// onCreate, when non-nil, runs after assembly — the hook that ingests the
// tenant's knowledge base.
func StandardFactory(base core.Config, pool *search.CachePool, tracer *trace.Tracer, onCreate func(id string, eng *core.Engine) error) EngineFactory {
	return func(id string, lim Limits) (*core.Engine, error) {
		cfg := base
		if tracer != nil {
			cfg.Tracer = tracer
		}
		if pool != nil {
			cfg.QueryCache = pool.Partition(id, lim.CacheShare)
			if cfg.QueryCache == nil {
				cfg.QueryCacheCapacity = -1 // tenant opted out of caching
			}
		}
		if lim.MaxFanout > 0 && (cfg.SearchWorkers <= 0 || lim.MaxFanout < cfg.SearchWorkers) {
			cfg.SearchWorkers = lim.MaxFanout
		}
		eng := core.New(cfg)
		if onCreate != nil {
			if err := onCreate(id, eng); err != nil {
				return nil, fmt.Errorf("tenant: onboard %s: %w", id, err)
			}
		}
		return eng, nil
	}
}
