// Package tenant turns the single-tenant UniAsk engine into "one engine,
// many banks": tenant-scoped knowledge bases and indexes behind a shared
// serving stack, per-tenant overrides (rate limit, concurrency cap, query
// cache share, retrieval fan-out, trace sample rate) loaded from a
// hot-reloadable config file, and an admission-control front door — token
// bucket rate limiting plus weighted fair queueing across two priority
// classes, with load shedding that rejects best-effort tenants first when
// the engine saturates.
//
// The three pieces compose but stand alone:
//
//   - Overrides is the limits store: defaults plus per-tenant entries,
//     reloaded from JSON on file change (a bad file keeps the last good
//     configuration and logs; traffic is never dropped by a reload).
//   - Controller is the front door: Admit either grants a slot (call the
//     returned release when the request finishes) or returns a Rejection
//     carrying the HTTP-ready Retry-After hint. Shed requests are 429s by
//     construction, never 5xx.
//   - Registry maps tenant IDs to fully assembled per-tenant engines, each
//     with its own index, searcher and query-cache partition, built lazily
//     by the caller's factory.
//
// The tenant ID travels on the request context (WithID/FromContext)
// alongside the trace context, so spans, gauges and logs can attribute
// work to the tenant that caused it.
package tenant

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Default is the tenant ID used when no tenant was specified — the
// single-tenant deployments' implicit tenant, and the ID unaffiliated
// requests are attributed to in multi-tenant mode when no header or path
// names one.
const Default = "default"

// ctxKey carries the tenant ID on a request context.
type ctxKey struct{}

// WithID returns a context carrying the tenant ID, threaded through the
// query path alongside the trace context.
func WithID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext returns the context's tenant ID ("" when none was attached).
func FromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// ValidateID checks a tenant identifier: non-empty, at most 64 bytes, and
// limited to letters, digits, '-', '_' and '.' so IDs are safe in URLs,
// file names, span attributes and log lines without escaping.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("tenant: empty tenant id")
	}
	if len(id) > 64 {
		return fmt.Errorf("tenant: id %q longer than 64 bytes", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("tenant: id %q contains %q (allowed: letters, digits, - _ .)", id, r)
		}
	}
	return nil
}

// Class is a tenant's priority class. When the engine saturates,
// best-effort tenants are shed before interactive ones; the admission
// queues are drained by weighted fair queueing so a backlog of interactive
// work cannot starve queued best-effort requests entirely.
type Class int

// Priority classes, highest first.
const (
	// Interactive is the default class: human-facing traffic that queues
	// ahead of best-effort work and is shed last.
	Interactive Class = iota
	// BestEffort marks batch/background tenants: first to shed under
	// saturation, admitted through the weighted share otherwise.
	BestEffort

	numClasses = 2
)

// String returns the class's config-file spelling.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case BestEffort:
		return "best-effort"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass parses a config-file class name ("" = Interactive).
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interactive":
		return Interactive, nil
	case "best-effort", "besteffort", "batch":
		return BestEffort, nil
	}
	return Interactive, fmt.Errorf("tenant: unknown class %q (want interactive or best-effort)", s)
}

// latencyWindow keeps the most recent request latencies of one tenant for
// quantile gauges. Bounded, overwriting oldest; safe under the owner's lock.
type latencyWindow struct {
	buf  []time.Duration
	next int
	full bool
}

const latencyWindowSize = 512

func (w *latencyWindow) add(d time.Duration) {
	if w.buf == nil {
		w.buf = make([]time.Duration, latencyWindowSize)
	}
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.next == 0 {
		w.full = true
	}
}

// p99 returns the 99th-percentile latency over the window (0 when empty).
func (w *latencyWindow) p99() time.Duration { return w.quantile(0.99) }

func (w *latencyWindow) quantile(q float64) time.Duration {
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	if n == 0 {
		return 0
	}
	s := make([]time.Duration, n)
	copy(s, w.buf[:n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(n-1))
	return s[idx]
}

// P99 of a latency sample — the helper examples and tests share so every
// report computes the quantile the same way (nearest-rank on the sorted
// sample).
func P99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(0.99*float64(len(s)-1))]
}
