package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFileOverlayAndClass(t *testing.T) {
	f, err := ParseFile([]byte(`{
		"defaults": {"rate": 50, "burst": 100, "maxConcurrent": 8, "cacheShare": 128},
		"tenants": {
			"banca-alfa":  {"rate": 200, "maxConcurrent": 16},
			"banca-batch": {"class": "best-effort", "rate": 20}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ov := NewOverrides(f)

	alfa := ov.For("banca-alfa")
	if alfa.RateLimit != 200 || alfa.MaxConcurrent != 16 {
		t.Fatalf("banca-alfa limits = %+v, want rate 200 maxConcurrent 16", alfa)
	}
	if alfa.Burst != 100 || alfa.CacheShare != 128 {
		t.Fatalf("banca-alfa should inherit burst/cacheShare from defaults, got %+v", alfa)
	}
	if alfa.Class != Interactive {
		t.Fatalf("banca-alfa class = %v, want interactive", alfa.Class)
	}
	if batch := ov.For("banca-batch"); batch.Class != BestEffort {
		t.Fatalf("banca-batch class = %v, want best-effort", batch.Class)
	}
	// Unlisted tenants get the defaults verbatim and are not Known.
	if other := ov.For("banca-omega"); other.RateLimit != 50 {
		t.Fatalf("unlisted tenant rate = %v, want defaults 50", other.RateLimit)
	}
	if ov.Known("banca-omega") || !ov.Known("banca-alfa") {
		t.Fatal("Known: want banca-alfa known, banca-omega unknown")
	}
	if ids := ov.TenantIDs(); len(ids) != 2 || ids[0] != "banca-alfa" || ids[1] != "banca-batch" {
		t.Fatalf("TenantIDs = %v", ids)
	}
}

func TestParseFileRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown key":      `{"defaults": {"rait": 50}}`,
		"unknown class":    `{"tenants": {"a": {"class": "platinum"}}}`,
		"negative burst":   `{"defaults": {"burst": -1}}`,
		"bad sample rate":  `{"tenants": {"a": {"traceSampleRate": 2}}}`,
		"bad tenant id":    `{"tenants": {"no spaces": {}}}`,
		"not even json":    `{defaults}`,
		"unknown top key":  `{"defaultz": {}}`,
	}
	for name, input := range cases {
		if _, err := ParseFile([]byte(input)); err == nil {
			t.Errorf("%s: ParseFile accepted %q", name, input)
		}
	}
}

// TestReloadKeepsLastGood is the satellite requirement: a bad overrides
// push must keep the last good configuration serving and log the failure —
// never drop traffic.
func TestReloadKeepsLastGood(t *testing.T) {
	path := filepath.Join(t.TempDir(), "overrides.json")
	good := `{"defaults": {"rate": 50}, "tenants": {"banca-alfa": {"rate": 200}}}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	ov, err := LoadOverrides(path)
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	ov.Log = func(format string, args ...any) {
		logged = append(logged, strings.TrimSpace(format))
	}
	v1 := ov.Version()

	// Push a broken file: reload must fail, keep serving the old limits,
	// and log that it kept the last good config.
	if err := os.WriteFile(path, []byte(`{"defaults": {"rate": bad}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ov.Reload(); err == nil {
		t.Fatal("Reload accepted a malformed file")
	}
	if got := ov.For("banca-alfa").RateLimit; got != 200 {
		t.Fatalf("after bad reload banca-alfa rate = %v, want last-good 200", got)
	}
	if ov.Version() != v1 {
		t.Fatalf("version advanced on a failed reload: %d -> %d", v1, ov.Version())
	}
	foundKeep := false
	for _, l := range logged {
		if strings.Contains(l, "keeping last good config") {
			foundKeep = true
		}
	}
	if !foundKeep {
		t.Fatalf("failed reload did not log keeping last good config; logs: %v", logged)
	}

	// A good push then applies.
	if err := os.WriteFile(path, []byte(`{"defaults": {"rate": 50}, "tenants": {"banca-alfa": {"rate": 300}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ov.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := ov.For("banca-alfa").RateLimit; got != 300 {
		t.Fatalf("after good reload banca-alfa rate = %v, want 300", got)
	}
	if ov.Version() != v1+1 {
		t.Fatalf("version = %d, want %d", ov.Version(), v1+1)
	}
}

// TestReloadNeverDropsTraffic drives admission continuously through a bad
// reload: every request keeps resolving limits — a reload failure is
// invisible to the data path.
func TestReloadNeverDropsTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "overrides.json")
	if err := os.WriteFile(path, []byte(`{"defaults": {"rate": -1, "maxConcurrent": -1}, "tenants": {"banca-alfa": {}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ov, err := LoadOverrides(path)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(AdmissionConfig{Capacity: -1}, ov)

	admitOnce := func() {
		t.Helper()
		release, rej := ctrl.Admit(ctxb(t), "banca-alfa")
		if rej != nil {
			t.Fatalf("request shed during reload churn: %+v", rej)
		}
		release(time.Millisecond)
	}
	admitOnce()
	os.WriteFile(path, []byte(`broken{`), 0o644)
	ov.Reload() // fails, keeps last good
	admitOnce()
	os.WriteFile(path, []byte(`{"defaults": {"rate": -1, "maxConcurrent": -1}, "tenants": {"banca-alfa": {}, "banca-beta": {}}}`), 0o644)
	if err := ov.Reload(); err != nil {
		t.Fatal(err)
	}
	admitOnce()
	if !ov.Known("banca-beta") {
		t.Fatal("good reload did not apply")
	}
}

func TestWatchPicksUpChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "overrides.json")
	if err := os.WriteFile(path, []byte(`{"defaults": {"rate": 50}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ov, err := LoadOverrides(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithCancel()
	defer cancel()
	go ov.Watch(ctx, 5*time.Millisecond)

	// The watcher compares mtimes; backdate the original so the rewrite is
	// a guaranteed change even on coarse-mtime filesystems.
	old := time.Now().Add(-time.Hour)
	os.Chtimes(path, old, old)
	if err := os.WriteFile(path, []byte(`{"defaults": {"rate": 75}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ov.For("x").RateLimit != 75 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher never applied the change; rate = %v", ov.For("x").RateLimit)
		}
		time.Sleep(time.Millisecond)
	}
}
