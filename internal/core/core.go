// Package core assembles the UniAsk engine — the paper's contribution — out
// of the substrate packages: the ingestion/indexing pipeline that builds
// the search index from the knowledge base, and the user query flow of
// Figure 1 (content filter → hybrid retrieval with semantic reranking →
// grounded generation → guardrails), returning a natural-language answer
// with citations together with the retrieved document list.
//
// The query flow runs as an instrumented stage pipeline: each Figure-1
// stage honors context cancellation and reports its latency and sizes
// through a pipeline.Observer (see SetObserver), which the monitoring
// layer uses for the per-stage dashboard of §9.
package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"uniask/internal/embedding"
	"uniask/internal/generation"
	"uniask/internal/guardrails"
	"uniask/internal/index"
	"uniask/internal/indexer"
	"uniask/internal/ingest"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/pipeline"
	"uniask/internal/queue"
	"uniask/internal/remote"
	"uniask/internal/rerank"
	"uniask/internal/resilience"
	"uniask/internal/search"
	"uniask/internal/shard"
	"uniask/internal/trace"
	"uniask/internal/vector"
)

// ResilienceConfig parameterizes the fault-tolerance layer wrapped around
// the engine's remote-shaped dependencies (the chat-completion LLM and the
// embedding service). The zero value enables the layer with library
// defaults: 3 attempts with jittered capped-exponential backoff, and a
// per-dependency circuit breaker (5 consecutive failures open it for 5s).
type ResilienceConfig struct {
	// Disable turns the layer off: raw clients, no retries, no breakers
	// (the pre-resilience behavior, used by determinism-sensitive tests).
	Disable bool
	// LLMPolicy is the retry policy for chat completions.
	LLMPolicy resilience.Policy
	// LLMBreaker configures the LLM circuit breaker (Name forced to "llm").
	LLMBreaker resilience.BreakerConfig
	// EmbedPolicy is the retry policy for query embeddings.
	EmbedPolicy resilience.Policy
	// EmbedBreaker configures the embedding breaker (Name forced to
	// "embedding").
	EmbedBreaker resilience.BreakerConfig
}

// Config assembles an engine.
type Config struct {
	// LLM is the chat-completion backend (defaults to the simulator with
	// Table-5 calibration).
	LLM llm.Client
	// EmbeddingDim defaults to embedding.DefaultDim.
	EmbeddingDim int
	// Lexicon is the term→concept mapping for the synthetic embedder (use
	// the corpus lexicon; nil is allowed).
	Lexicon embedding.Lexicon
	// Indexer configures chunking and metadata enrichment.
	Indexer indexer.Config
	// Guardrails configures the answer-validation pipeline.
	Guardrails guardrails.Config
	// M is the number of context chunks passed to the LLM (default 4).
	M int
	// SearchOptions is the default retrieval configuration (zero value =
	// the deployed HSS configuration).
	SearchOptions search.Options
	// Observer receives per-stage pipeline reports (nil = discard).
	Observer pipeline.Observer
	// SearchWorkers bounds the retrieval fan-out (0 = one per CPU).
	SearchWorkers int
	// ShardCount splits the index into N hash-routed shards searched in
	// parallel and merged deterministically (see internal/shard). 0 or 1
	// keeps the monolithic index — exactly today's behavior, no facade in
	// the path.
	ShardCount int
	// RemoteShards lists shard-server endpoints (host:port, see
	// cmd/uniask-shard). When non-empty the facade's shards live on those
	// servers instead of in-process: each of the ShardCount logical shards
	// is placed on RemoteReplication distinct endpoints by consistent
	// hashing, reads hedge across replicas, and every endpoint is guarded
	// by a circuit breaker surfaced through Breakers(). Rankings stay
	// byte-identical to the in-process (and monolithic) topology. The shard
	// servers must run the same schema/analyzer configuration. With
	// RemoteShards set, ShardCount defaults to len(RemoteShards).
	RemoteShards []string
	// RemoteReplication is how many endpoints host each shard (default 2,
	// clamped to len(RemoteShards)).
	RemoteReplication int
	// RemoteHedgeDelay tunes the replica groups' latency hedge (0 =
	// remote.DefaultHedgeDelay).
	RemoteHedgeDelay time.Duration
	// MemtableMaxDocs seals a store's mutable memtable into an immutable
	// segment once it holds this many chunks (0 =
	// index.DefaultMemtableMaxDocs; negative disables auto-sealing, so only
	// end-of-cycle publication seals).
	MemtableMaxDocs int
	// CompactionFanIn is how many adjacent sealed segments one background
	// compaction merges (0 = index.DefaultCompactionFanIn; negative
	// disables background compaction).
	CompactionFanIn int
	// QueryCacheCapacity sizes the snapshot-keyed query-result cache
	// (0 = search.DefaultQueryCacheCapacity; negative disables caching).
	QueryCacheCapacity int
	// QueryCache, when set, is used as the searcher's result cache instead
	// of allocating one from QueryCacheCapacity. Multi-tenant serving
	// injects each tenant engine's partition from a shared
	// search.CachePool here, so one tenant's traffic cannot evict
	// another's entries.
	QueryCache *search.QueryCache
	// DisableVectorQuantization makes ANN search traverse full float32
	// vectors instead of the int8 quantized arena — exact traversal
	// distances at ~4× the memory bandwidth. The default (quantized) is
	// the right call everywhere except recall debugging.
	DisableVectorQuantization bool
	// Resilience configures retries and circuit breakers around the LLM and
	// embedding dependencies (zero value = enabled with defaults).
	Resilience ResilienceConfig
	// LLMMiddleware, when set, wraps the LLM client before the resilience
	// decorator — the seam the chaos harness uses to inject faults between
	// the retry layer and the backend.
	LLMMiddleware func(llm.Client) llm.Client
	// EmbedderMiddleware likewise wraps the query embedder before its
	// resilience decorator.
	EmbedderMiddleware func(embedding.CtxEmbedder) embedding.CtxEmbedder
	// Tracer, when set, is used instead of constructing one from the
	// Trace* knobs below. Multi-tenant serving shares one tracer (and so
	// one /api/traces store) across every tenant engine; spans carry the
	// tenant attribute so per-tenant slices stay queryable.
	Tracer *trace.Tracer
	// TraceCapacity bounds the in-memory trace store (0 =
	// trace.DefaultCapacity; negative disables tracing entirely — no tracer,
	// no per-request spans).
	TraceCapacity int
	// TraceSampleRate is the head-sampling probability in (0, 1]; 0 means
	// record every request. Sampled-out requests still get a trace ID (for
	// the response header) but record no spans and cost no allocations on
	// the query path.
	TraceSampleRate float64
	// TraceSlowThreshold is the duration at or above which a trace is
	// tail-retained in the protected ring even under head sampling victory
	// by healthy traffic (0 = trace.DefaultSlowThreshold; negative disables
	// slow retention).
	TraceSlowThreshold time.Duration
	// TraceSeed makes trace-ID generation (and therefore head-sampling
	// decisions) deterministic for tests (0 = a fixed default seed).
	TraceSeed int64
}

// Engine is a fully assembled UniAsk instance.
type Engine struct {
	cfg Config
	obs pipeline.Observer
	// Index is the chunk store: one segmented LSM-style store
	// (*index.Segmented) when Config.ShardCount <= 1, otherwise the
	// *shard.Sharded facade holding one segmented store per shard (see
	// Sharded()). All layers program against the Repository surface.
	Index     index.Repository
	Searcher  *search.Searcher
	Generator *generation.Generator
	Guards    *guardrails.Pipeline
	Embedder  *embedding.Synth
	Client    llm.Client

	// LLMBreaker and EmbedBreaker guard the two remote-shaped dependencies
	// (nil when Resilience.Disable is set).
	LLMBreaker   *resilience.Breaker
	EmbedBreaker *resilience.Breaker

	// Tracer owns the per-request span recording and the bounded trace
	// store behind /api/traces (nil when Config.TraceCapacity < 0; every
	// trace method is nil-safe, so callers never guard).
	Tracer *trace.Tracer

	notifyMu      sync.Mutex
	breakerNotify func(name, from, to string)
}

// New creates an engine with an empty index; feed it through IndexCorpus or
// the ingestion pipeline.
func New(cfg Config) *Engine {
	if cfg.LLM == nil {
		// The default simulator shares the engine's concept lexicon so its
		// paraphrase understanding matches the embedder's.
		b := llm.DefaultBehavior()
		b.Lexicon = cfg.Lexicon
		cfg.LLM = llm.NewSim(b)
	}
	if cfg.M <= 0 {
		cfg.M = generation.DefaultM
	}
	emb := embedding.NewSynth(cfg.EmbeddingDim, cfg.Lexicon)
	segCfg := index.SegmentConfig{
		MemtableMaxDocs: cfg.MemtableMaxDocs,
		CompactionFanIn: cfg.CompactionFanIn,
	}
	var ix index.Repository
	ixCfg := index.Config{
		Schema:                    indexer.Schema(),
		DisableVectorQuantization: cfg.DisableVectorQuantization,
	}
	eng := &Engine{
		cfg:      cfg,
		Embedder: emb,
	}
	if len(cfg.RemoteShards) > 0 {
		shards := cfg.ShardCount
		if shards < 1 {
			shards = len(cfg.RemoteShards)
		}
		backends := remote.Topology{
			Endpoints:       cfg.RemoteShards,
			Shards:          shards,
			Replication:     cfg.RemoteReplication,
			HedgeDelay:      cfg.RemoteHedgeDelay,
			OnBreakerChange: eng.fireBreakerNotify,
		}.Backends()
		ix = shard.NewWithBackends(shard.Config{
			Shards:  shards,
			Index:   ixCfg,
			Segment: segCfg,
			Workers: cfg.SearchWorkers,
		}, backends)
	} else if cfg.ShardCount > 1 {
		ix = shard.New(shard.Config{
			Shards:  cfg.ShardCount,
			Index:   ixCfg,
			Segment: segCfg,
			Workers: cfg.SearchWorkers,
		})
	} else {
		ix = index.NewSegmented(ixCfg, segCfg)
	}
	eng.Index = ix
	if cfg.Tracer != nil {
		eng.Tracer = cfg.Tracer
	} else if cfg.TraceCapacity >= 0 {
		eng.Tracer = trace.New(trace.Config{
			Capacity:      cfg.TraceCapacity,
			SampleRate:    cfg.TraceSampleRate,
			SlowThreshold: cfg.TraceSlowThreshold,
			Seed:          cfg.TraceSeed,
		})
	}
	eng.obs = eng.composeObserver(cfg.Observer)

	// Assemble the LLM and query-embedder stacks: optional fault-injection
	// middleware innermost, then the resilience decorator (retry + breaker)
	// the query path talks to.
	client := cfg.LLM
	if cfg.LLMMiddleware != nil {
		client = cfg.LLMMiddleware(client)
	}
	var queryEmbedder embedding.Embedder = emb
	ce := embedding.AsCtx(emb)
	if cfg.EmbedderMiddleware != nil {
		ce = cfg.EmbedderMiddleware(ce)
	}
	if !cfg.Resilience.Disable {
		lbc := cfg.Resilience.LLMBreaker
		lbc.Name = "llm"
		lbc.OnStateChange = eng.fireBreakerNotify
		eng.LLMBreaker = resilience.NewBreaker(lbc)
		client = &llm.ResilientClient{Inner: client, Policy: cfg.Resilience.LLMPolicy, Breaker: eng.LLMBreaker}

		ebc := cfg.Resilience.EmbedBreaker
		ebc.Name = "embedding"
		ebc.OnStateChange = eng.fireBreakerNotify
		eng.EmbedBreaker = resilience.NewBreaker(ebc)
		queryEmbedder = &embedding.Resilient{Inner: ce, Policy: cfg.Resilience.EmbedPolicy, Breaker: eng.EmbedBreaker}
	} else if cfg.EmbedderMiddleware != nil {
		queryEmbedder = ctxOnly{ce}
	}
	eng.Client = client

	eng.Searcher = &search.Searcher{
		Index:    ix,
		Embedder: queryEmbedder,
		Reranker: rerank.New(),
		LLM:      client,
		Observer: eng.obs,
		Workers:  cfg.SearchWorkers,
	}
	if cfg.QueryCache != nil {
		eng.Searcher.Cache = cfg.QueryCache
	} else if cfg.QueryCacheCapacity >= 0 {
		eng.Searcher.Cache = search.NewQueryCache(cfg.QueryCacheCapacity)
	}
	eng.Generator = &generation.Generator{Client: client, M: cfg.M}
	eng.Guards = guardrails.New(cfg.Guardrails)
	return eng
}

// ctxOnly lifts a CtxEmbedder back to the plain Embedder interface for the
// middleware-without-resilience configuration; errors degrade to the zero
// vector on the legacy path (the searcher uses EmbedCtx and sees them).
type ctxOnly struct{ embedding.CtxEmbedder }

func (c ctxOnly) Embed(text string) vector.Vector {
	v, err := c.EmbedCtx(context.Background(), text)
	if err != nil {
		return make(vector.Vector, c.Dim())
	}
	return v
}

// fireBreakerNotify forwards breaker transitions to the installed notify
// hook (see SetBreakerNotify).
func (e *Engine) fireBreakerNotify(name string, from, to resilience.State) {
	e.notifyMu.Lock()
	fn := e.breakerNotify
	e.notifyMu.Unlock()
	if fn != nil {
		fn(name, from.String(), to.String())
	}
}

// SetBreakerNotify installs a hook called after every circuit-breaker state
// change — the server wires the monitor's breaker gauge here.
func (e *Engine) SetBreakerNotify(fn func(name, from, to string)) {
	e.notifyMu.Lock()
	e.breakerNotify = fn
	e.notifyMu.Unlock()
}

// Breakers snapshots the engine's circuit breakers for health reporting:
// the LLM and embedding breakers (absent when resilience is disabled) plus
// one breaker per remote shard endpoint (absent for local topologies).
func (e *Engine) Breakers() []resilience.BreakerStatus {
	var out []resilience.BreakerStatus
	for _, b := range []*resilience.Breaker{e.LLMBreaker, e.EmbedBreaker} {
		if b != nil {
			out = append(out, b.Status())
		}
	}
	if s := e.Sharded(); s != nil {
		out = append(out, s.Breakers()...)
	}
	return out
}

// Sharded returns the sharded index facade, or nil when the engine runs a
// monolithic index (ShardCount <= 1). The server uses it to wire per-shard
// gauges into the dashboard.
func (e *Engine) Sharded() *shard.Sharded {
	s, _ := e.Index.(*shard.Sharded)
	return s
}

// Publish seals the store's memtable(s) into immutable segments and
// schedules background compaction — the publication point that rotates the
// cache's stats snapshot key. The ingestion entry points (IndexCorpus, each
// poller pass, single-page indexing) call it after their writes, mirroring
// a search engine's refresh-after-bulk; between publications writes are
// searchable but cached rankings may replay.
func (e *Engine) Publish() {
	if p, ok := e.Index.(index.Publisher); ok {
		p.Publish()
	}
}

// SegmentStats returns one segmented-store gauge snapshot per shard (one
// entry total for a monolithic engine) for the dashboard.
func (e *Engine) SegmentStats() []index.SegmentStats {
	switch ix := e.Index.(type) {
	case *shard.Sharded:
		return ix.SegmentStats()
	case *index.Segmented:
		return []index.SegmentStats{ix.SegmentStats()}
	}
	return nil
}

// CacheStats snapshots the query cache's effectiveness counters; ok is
// false when caching is disabled.
func (e *Engine) CacheStats() (search.CacheStats, bool) {
	if e.Searcher == nil || e.Searcher.Cache == nil {
		return search.CacheStats{}, false
	}
	return e.Searcher.Cache.Stats(), true
}

// LoadIndex replaces the engine's index with one restored from a snapshot,
// honoring the engine's shard configuration: a sharded engine accepts both
// the sharded container and legacy single-file snapshots (migrating the
// latter by re-routing every live document), while a monolithic engine
// accepts only single-file snapshots and rejects sharded containers with
// index.ErrShardedSnapshot. The searcher is repointed and the query cache
// purged — the fresh index restarts its epoch at zero, so stale entries
// could otherwise look current.
func (e *Engine) LoadIndex(r io.Reader) error {
	if len(e.cfg.RemoteShards) > 0 {
		// Remote shards own their data; restore them with uniask-shard
		// -snapshot on each server instead of through the facade.
		return fmt.Errorf("core: LoadIndex is unsupported with remote shards (restore each shard server from its own snapshot)")
	}
	var (
		ix  index.Repository
		err error
	)
	segCfg := index.SegmentConfig{
		MemtableMaxDocs: e.cfg.MemtableMaxDocs,
		CompactionFanIn: e.cfg.CompactionFanIn,
	}
	ixCfg := index.Config{
		Schema:                    indexer.Schema(),
		DisableVectorQuantization: e.cfg.DisableVectorQuantization,
	}
	if e.cfg.ShardCount > 1 {
		ix, err = shard.Load(r, shard.Config{
			Shards:  e.cfg.ShardCount,
			Index:   ixCfg,
			Segment: segCfg,
			Workers: e.cfg.SearchWorkers,
		})
	} else {
		ixCfg.Schema = nil
		ix, err = index.ReadSegmented(r, ixCfg, segCfg)
	}
	if err != nil {
		return err
	}
	e.Index = ix
	e.Searcher.Index = ix
	if e.Searcher.Cache != nil {
		e.Searcher.Cache.Purge()
	}
	return nil
}

// composeObserver pairs the caller's observer with the tracing stage
// adapter, so every stage report both feeds the dashboard aggregates and —
// on a traced request — becomes a span in the request's trace.
func (e *Engine) composeObserver(obs pipeline.Observer) pipeline.Observer {
	if e.Tracer == nil {
		return pipeline.OrNop(obs)
	}
	return pipeline.Multi(pipeline.OrNop(obs), trace.Stages())
}

// SetObserver replaces the engine's stage observer (nil = discard) for the
// whole query pipeline, including the searcher's retrieval stages. The
// server wires its metrics registry here so every Ask feeds the per-stage
// dashboard. The tracing stage adapter stays composed in regardless.
func (e *Engine) SetObserver(obs pipeline.Observer) {
	e.obs = e.composeObserver(obs)
	e.Searcher.Observer = e.obs
}

// BuildFromCorpus creates an engine and indexes a generated corpus through
// the full ingestion pipeline (HTML extraction → queue → chunking →
// enrichment → index).
func BuildFromCorpus(ctx context.Context, corpus *kb.Corpus, cfg Config) (*Engine, error) {
	if cfg.Lexicon == nil {
		cfg.Lexicon = corpus.Lexicon()
	}
	eng := New(cfg)
	if err := eng.IndexCorpus(ctx, corpus); err != nil {
		return nil, err
	}
	return eng, nil
}

// IndexCorpus runs the ingestion + indexing flow over every corpus page,
// using the parallel bulk path: extraction and embedding fan out over
// workers while the index is fed sequentially (the insert order — and so
// the HNSW graph — is identical to a one-at-a-time load).
func (e *Engine) IndexCorpus(ctx context.Context, corpus *kb.Corpus) error {
	pages := make(ingest.StaticSource, len(corpus.Docs))
	for i, d := range corpus.Docs {
		pages[i] = ingest.Page{ID: d.ID, HTML: d.HTML}
	}
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: pages, Out: q}
	if _, err := ing.SyncOnce(); err != nil {
		return fmt.Errorf("core: ingest: %w", err)
	}
	q.Close()
	docs := make([]ingest.Extracted, 0, len(corpus.Docs))
	for {
		doc, ok := q.TryDequeue()
		if !ok {
			break
		}
		docs = append(docs, doc)
	}
	in := indexer.New(e.Index, e.Embedder, e.Client, e.cfg.Indexer)
	if _, err := in.IndexBatch(ctx, docs, runtime.NumCPU()); err != nil {
		return fmt.Errorf("core: index: %w", err)
	}
	e.Publish()
	return nil
}

// Response is the outcome of one Ask call.
type Response struct {
	// Query is the question as asked.
	Query string
	// RewrittenQuery is the standalone query retrieval actually ran, when a
	// conversational turn was rewritten against its session history ("" for
	// one-shot asks and when the rewrite was shed).
	RewrittenQuery string
	// Answer is the text shown to the user: the generated answer when the
	// guardrails pass, otherwise the apology or clarification message.
	Answer string
	// AnswerValid reports whether the generated answer survived the
	// guardrails.
	AnswerValid bool
	// Guardrail identifies the guardrail that invalidated the answer
	// (guardrails.None when valid).
	Guardrail guardrails.Trigger
	// GeneratedAnswer is the raw LLM output before guardrails.
	GeneratedAnswer string
	// Citations holds the chunk ids the (raw) answer cites.
	Citations []string
	// Documents is the retrieved document list, always populated: when a
	// guardrail fires, UniAsk still shows the list for the user to check.
	Documents []search.Result
	// Degraded reports that parts of the query were shed to keep it
	// available; DegradedParts names them ("vector", "expansion",
	// "retrieval-components", "generation").
	Degraded      bool
	DegradedParts []string
}

// Search runs retrieval only, with the engine's default options.
func (e *Engine) Search(ctx context.Context, query string) ([]search.Result, error) {
	return e.Searcher.Search(ctx, query, e.cfg.SearchOptions)
}

// Ask runs the full user query flow of Figure 1 as an instrumented stage
// pipeline: filter → retrieval (itself staged inside the searcher) →
// generation → guardrails. Every stage honors ctx cancellation and reports
// to the engine's observer.
func (e *Engine) Ask(ctx context.Context, question string) (Response, error) {
	return e.AskConversational(ctx, question, nil, StreamEvents{})
}

// StreamEvents carries the optional streaming callbacks of a conversational
// ask. The zero value disables streaming: the flow then behaves exactly
// like Ask.
type StreamEvents struct {
	// OnCitations fires once, as soon as retrieval + rerank land, with the
	// retrieved documents — before generation starts, so a UI can render
	// the citation list while the answer streams.
	OnCitations func(results []search.Result)
	// OnToken receives incremental answer chunks as the LLM produces them.
	// Returning an error aborts the stream (the consumer went away). The
	// streamed tokens are the raw generated answer, pre-guardrails: when a
	// guardrail later invalidates the answer, the caller must tell its
	// consumer to discard them (the SSE layer's terminal event does).
	OnToken func(chunk string) error
}

// AskConversational is Ask plus conversation context: when history is
// non-empty the turn's question is first rewritten into a standalone query
// against it (one extra LLM call, StageRewrite), and retrieval runs on the
// rewritten query. A failed rewrite sheds to the raw question —
// Degradation.RewriteSkipped, never an error — and because the shed search
// runs under the raw query text, the cache can never memoize a wrong
// rewrite. The optional StreamEvents callbacks stream citations and answer
// tokens as they land.
func (e *Engine) AskConversational(ctx context.Context, question string, history []llm.Exchange, ev StreamEvents) (Response, error) {
	resp := Response{Query: question}

	// 1. Content filter on the question. A firing guardrail is a normal
	// outcome, not a stage error.
	var filterTrigger guardrails.Trigger
	err := pipeline.Run(ctx, e.obs, pipeline.StageFilter, 1, func(context.Context) (int, error) {
		filterTrigger = e.Guards.CheckQuestion(question)
		return 1, nil
	})
	if err != nil {
		return resp, err
	}
	if filterTrigger != guardrails.None {
		resp.Guardrail = filterTrigger
		resp.Answer = guardrails.ApologyMessage
		return resp, nil
	}

	// 2. History-aware rewrite (conversational turns only): one LLM call
	// turns the possibly elliptical question into a standalone query. A
	// failure with the caller still alive sheds to the raw question.
	retrieveQuery := question
	var rewriteShed bool
	if len(history) > 0 {
		var rresp llm.Response
		err := pipeline.Run(ctx, e.obs, pipeline.StageRewrite, 1, func(ctx context.Context) (int, error) {
			var err error
			rresp, err = e.Client.Complete(ctx, llm.BuildRewritePrompt(history, question))
			return 1, err
		})
		switch {
		case err != nil:
			if ctxErr := ctx.Err(); ctxErr != nil {
				return resp, ctxErr
			}
			pipeline.Observe(ctx, e.obs, pipeline.StageInfo{
				Stage: pipeline.StageDegraded, In: 1,
				Err: fmt.Errorf("core: shed rewrite: %w", err),
			})
			rewriteShed = true
		case strings.TrimSpace(rresp.Content) != "":
			retrieveQuery = strings.TrimSpace(rresp.Content)
			resp.RewrittenQuery = retrieveQuery
		}
	}

	// 3. Retrieval (the searcher reports its own retrieval/fusion/rerank
	// stages). Degradation — shed vector legs, skipped expansion — is a
	// normal outcome carried on the response, not an error.
	results, deg, err := e.Searcher.SearchDegraded(ctx, retrieveQuery, e.cfg.SearchOptions)
	if err != nil {
		return resp, fmt.Errorf("core: search: %w", err)
	}
	deg.RewriteSkipped = deg.RewriteSkipped || rewriteShed
	resp.Documents = results
	resp.DegradedParts = deg.Parts()
	if ev.OnCitations != nil {
		ev.OnCitations(results)
	}

	// 4. Generation over the top-m chunks, on the standalone query (the
	// raw question when no rewrite ran). With an OnToken callback the
	// answer streams chunk by chunk; a stream that dies mid-answer degrades
	// to the extractive fallback exactly like an unavailable LLM.
	m := e.cfg.M
	top := results
	if len(top) > m {
		top = top[:m]
	}
	chunks := make([]generation.RetrievedChunk, len(top))
	contexts := make([]string, len(top))
	for i, r := range top {
		chunks[i] = generation.RetrievedChunk{ID: r.ChunkID, Title: r.Title, Content: r.Content}
		contexts[i] = r.Content
	}
	var ans generation.Answer
	err = pipeline.Run(ctx, e.obs, pipeline.StageGeneration, len(chunks), func(ctx context.Context) (int, error) {
		var err error
		if ev.OnToken != nil {
			ans, err = e.Generator.GenerateStream(ctx, retrieveQuery, chunks, ev.OnToken)
		} else {
			ans, err = e.Generator.Generate(ctx, retrieveQuery, chunks)
		}
		return 1, err
	})
	if err != nil {
		return resp, fmt.Errorf("core: generate: %w", err)
	}
	if ans.Degraded {
		// The LLM was unavailable: the extractive fallback answered. Report
		// the shed generation like the searcher reports shed legs.
		pipeline.Observe(ctx, e.obs, pipeline.StageInfo{
			Stage: pipeline.StageDegraded, In: 1,
			Err: fmt.Errorf("core: shed generation: llm unavailable"),
		})
		resp.DegradedParts = append(resp.DegradedParts, "generation")
	}
	resp.Degraded = len(resp.DegradedParts) > 0
	resp.GeneratedAnswer = ans.Text
	resp.Citations = ans.Citations

	// 5. Guardrails on the generated answer.
	var trigger guardrails.Trigger
	err = pipeline.Run(ctx, e.obs, pipeline.StageGuardrails, len(contexts), func(context.Context) (int, error) {
		trigger = e.Guards.CheckAnswer(ans.Text, ans.Citations, contexts)
		return 1, nil
	})
	if err != nil {
		return resp, err
	}
	resp.Guardrail = trigger
	switch trigger {
	case guardrails.None:
		resp.AnswerValid = true
		resp.Answer = ans.Text
	case guardrails.Clarification:
		resp.Answer = guardrails.ClarificationMessage
	default:
		resp.Answer = guardrails.ApologyMessage
	}
	return resp, nil
}

// Retriever adapts the engine for eval.Evaluate: it returns the parent
// document ranking for a query, using opts instead of the engine defaults.
func (e *Engine) Retriever(ctx context.Context, opts search.Options) func(string) []string {
	return func(query string) []string {
		results, err := e.Searcher.Search(ctx, query, opts)
		if err != nil {
			return nil
		}
		return search.ParentRanking(results)
	}
}

// NewPoller returns a function that performs one §3 polling pass over the
// knowledge-base source: new and modified pages are re-extracted, chunked
// and indexed in place; vanished pages are tombstoned. The returned
// function reports how many pages changed. State (content fingerprints)
// persists across calls, exactly like the 15-minute cron ingester.
//
// Every pass runs under ctx, so a poller wired to the server's context
// stops indexing as soon as the server shuts down.
func (e *Engine) NewPoller(ctx context.Context, src ingest.Source) func() (int, error) {
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: src, Out: q}
	in := indexer.New(e.Index, e.Embedder, e.Client, e.cfg.Indexer)
	return func() (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		changed, err := ing.SyncOnce()
		if err != nil {
			return 0, fmt.Errorf("core: poll: %w", err)
		}
		for {
			doc, ok := q.TryDequeue()
			if !ok {
				break
			}
			if _, err := in.IndexDocument(ctx, doc); err != nil {
				return changed, fmt.Errorf("core: poll index: %w", err)
			}
		}
		if changed > 0 {
			// End-of-cycle publication: the pass's adds and deletes become a
			// new stats snapshot, exactly one cache rotation per poll.
			e.Publish()
		}
		return changed, nil
	}
}
