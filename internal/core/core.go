// Package core assembles the UniAsk engine — the paper's contribution — out
// of the substrate packages: the ingestion/indexing pipeline that builds
// the search index from the knowledge base, and the user query flow of
// Figure 1 (content filter → hybrid retrieval with semantic reranking →
// grounded generation → guardrails), returning a natural-language answer
// with citations together with the retrieved document list.
//
// The query flow runs as an instrumented stage pipeline: each Figure-1
// stage honors context cancellation and reports its latency and sizes
// through a pipeline.Observer (see SetObserver), which the monitoring
// layer uses for the per-stage dashboard of §9.
package core

import (
	"context"
	"fmt"
	"runtime"

	"uniask/internal/embedding"
	"uniask/internal/generation"
	"uniask/internal/guardrails"
	"uniask/internal/index"
	"uniask/internal/indexer"
	"uniask/internal/ingest"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/pipeline"
	"uniask/internal/queue"
	"uniask/internal/rerank"
	"uniask/internal/search"
)

// Config assembles an engine.
type Config struct {
	// LLM is the chat-completion backend (defaults to the simulator with
	// Table-5 calibration).
	LLM llm.Client
	// EmbeddingDim defaults to embedding.DefaultDim.
	EmbeddingDim int
	// Lexicon is the term→concept mapping for the synthetic embedder (use
	// the corpus lexicon; nil is allowed).
	Lexicon embedding.Lexicon
	// Indexer configures chunking and metadata enrichment.
	Indexer indexer.Config
	// Guardrails configures the answer-validation pipeline.
	Guardrails guardrails.Config
	// M is the number of context chunks passed to the LLM (default 4).
	M int
	// SearchOptions is the default retrieval configuration (zero value =
	// the deployed HSS configuration).
	SearchOptions search.Options
	// Observer receives per-stage pipeline reports (nil = discard).
	Observer pipeline.Observer
	// SearchWorkers bounds the retrieval fan-out (0 = one per CPU).
	SearchWorkers int
	// QueryCacheCapacity sizes the epoch-invalidated query-result cache
	// (0 = search.DefaultQueryCacheCapacity; negative disables caching).
	QueryCacheCapacity int
}

// Engine is a fully assembled UniAsk instance.
type Engine struct {
	cfg       Config
	obs       pipeline.Observer
	Index     *index.Index
	Searcher  *search.Searcher
	Generator *generation.Generator
	Guards    *guardrails.Pipeline
	Embedder  *embedding.Synth
	Client    llm.Client
}

// New creates an engine with an empty index; feed it through IndexCorpus or
// the ingestion pipeline.
func New(cfg Config) *Engine {
	if cfg.LLM == nil {
		// The default simulator shares the engine's concept lexicon so its
		// paraphrase understanding matches the embedder's.
		b := llm.DefaultBehavior()
		b.Lexicon = cfg.Lexicon
		cfg.LLM = llm.NewSim(b)
	}
	if cfg.M <= 0 {
		cfg.M = generation.DefaultM
	}
	emb := embedding.NewSynth(cfg.EmbeddingDim, cfg.Lexicon)
	ix := index.New(index.Config{Schema: indexer.Schema()})
	eng := &Engine{
		cfg:      cfg,
		obs:      pipeline.OrNop(cfg.Observer),
		Index:    ix,
		Embedder: emb,
		Client:   cfg.LLM,
	}
	eng.Searcher = &search.Searcher{
		Index:    ix,
		Embedder: emb,
		Reranker: rerank.New(),
		LLM:      cfg.LLM,
		Observer: eng.obs,
		Workers:  cfg.SearchWorkers,
	}
	if cfg.QueryCacheCapacity >= 0 {
		eng.Searcher.Cache = search.NewQueryCache(cfg.QueryCacheCapacity)
	}
	eng.Generator = &generation.Generator{Client: cfg.LLM, M: cfg.M}
	eng.Guards = guardrails.New(cfg.Guardrails)
	return eng
}

// SetObserver replaces the engine's stage observer (nil = discard) for the
// whole query pipeline, including the searcher's retrieval stages. The
// server wires its metrics registry here so every Ask feeds the per-stage
// dashboard.
func (e *Engine) SetObserver(obs pipeline.Observer) {
	e.obs = pipeline.OrNop(obs)
	e.Searcher.Observer = e.obs
}

// BuildFromCorpus creates an engine and indexes a generated corpus through
// the full ingestion pipeline (HTML extraction → queue → chunking →
// enrichment → index).
func BuildFromCorpus(ctx context.Context, corpus *kb.Corpus, cfg Config) (*Engine, error) {
	if cfg.Lexicon == nil {
		cfg.Lexicon = corpus.Lexicon()
	}
	eng := New(cfg)
	if err := eng.IndexCorpus(ctx, corpus); err != nil {
		return nil, err
	}
	return eng, nil
}

// IndexCorpus runs the ingestion + indexing flow over every corpus page,
// using the parallel bulk path: extraction and embedding fan out over
// workers while the index is fed sequentially (the insert order — and so
// the HNSW graph — is identical to a one-at-a-time load).
func (e *Engine) IndexCorpus(ctx context.Context, corpus *kb.Corpus) error {
	pages := make(ingest.StaticSource, len(corpus.Docs))
	for i, d := range corpus.Docs {
		pages[i] = ingest.Page{ID: d.ID, HTML: d.HTML}
	}
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: pages, Out: q}
	if _, err := ing.SyncOnce(); err != nil {
		return fmt.Errorf("core: ingest: %w", err)
	}
	q.Close()
	docs := make([]ingest.Extracted, 0, len(corpus.Docs))
	for {
		doc, ok := q.TryDequeue()
		if !ok {
			break
		}
		docs = append(docs, doc)
	}
	in := indexer.New(e.Index, e.Embedder, e.Client, e.cfg.Indexer)
	if _, err := in.IndexBatch(ctx, docs, runtime.NumCPU()); err != nil {
		return fmt.Errorf("core: index: %w", err)
	}
	return nil
}

// Response is the outcome of one Ask call.
type Response struct {
	// Query is the question as asked.
	Query string
	// Answer is the text shown to the user: the generated answer when the
	// guardrails pass, otherwise the apology or clarification message.
	Answer string
	// AnswerValid reports whether the generated answer survived the
	// guardrails.
	AnswerValid bool
	// Guardrail identifies the guardrail that invalidated the answer
	// (guardrails.None when valid).
	Guardrail guardrails.Trigger
	// GeneratedAnswer is the raw LLM output before guardrails.
	GeneratedAnswer string
	// Citations holds the chunk ids the (raw) answer cites.
	Citations []string
	// Documents is the retrieved document list, always populated: when a
	// guardrail fires, UniAsk still shows the list for the user to check.
	Documents []search.Result
}

// Search runs retrieval only, with the engine's default options.
func (e *Engine) Search(ctx context.Context, query string) ([]search.Result, error) {
	return e.Searcher.Search(ctx, query, e.cfg.SearchOptions)
}

// Ask runs the full user query flow of Figure 1 as an instrumented stage
// pipeline: filter → retrieval (itself staged inside the searcher) →
// generation → guardrails. Every stage honors ctx cancellation and reports
// to the engine's observer.
func (e *Engine) Ask(ctx context.Context, question string) (Response, error) {
	resp := Response{Query: question}

	// 1. Content filter on the question. A firing guardrail is a normal
	// outcome, not a stage error.
	var filterTrigger guardrails.Trigger
	err := pipeline.Run(ctx, e.obs, pipeline.StageFilter, 1, func(context.Context) (int, error) {
		filterTrigger = e.Guards.CheckQuestion(question)
		return 1, nil
	})
	if err != nil {
		return resp, err
	}
	if filterTrigger != guardrails.None {
		resp.Guardrail = filterTrigger
		resp.Answer = guardrails.ApologyMessage
		return resp, nil
	}

	// 2. Retrieval (the searcher reports its own retrieval/fusion/rerank
	// stages).
	results, err := e.Searcher.Search(ctx, question, e.cfg.SearchOptions)
	if err != nil {
		return resp, fmt.Errorf("core: search: %w", err)
	}
	resp.Documents = results

	// 3. Generation over the top-m chunks.
	m := e.cfg.M
	top := results
	if len(top) > m {
		top = top[:m]
	}
	chunks := make([]generation.RetrievedChunk, len(top))
	contexts := make([]string, len(top))
	for i, r := range top {
		chunks[i] = generation.RetrievedChunk{ID: r.ChunkID, Title: r.Title, Content: r.Content}
		contexts[i] = r.Content
	}
	var ans generation.Answer
	err = pipeline.Run(ctx, e.obs, pipeline.StageGeneration, len(chunks), func(ctx context.Context) (int, error) {
		var err error
		ans, err = e.Generator.Generate(ctx, question, chunks)
		return 1, err
	})
	if err != nil {
		return resp, fmt.Errorf("core: generate: %w", err)
	}
	resp.GeneratedAnswer = ans.Text
	resp.Citations = ans.Citations

	// 4. Guardrails on the generated answer.
	var trigger guardrails.Trigger
	err = pipeline.Run(ctx, e.obs, pipeline.StageGuardrails, len(contexts), func(context.Context) (int, error) {
		trigger = e.Guards.CheckAnswer(ans.Text, ans.Citations, contexts)
		return 1, nil
	})
	if err != nil {
		return resp, err
	}
	resp.Guardrail = trigger
	switch trigger {
	case guardrails.None:
		resp.AnswerValid = true
		resp.Answer = ans.Text
	case guardrails.Clarification:
		resp.Answer = guardrails.ClarificationMessage
	default:
		resp.Answer = guardrails.ApologyMessage
	}
	return resp, nil
}

// Retriever adapts the engine for eval.Evaluate: it returns the parent
// document ranking for a query, using opts instead of the engine defaults.
func (e *Engine) Retriever(ctx context.Context, opts search.Options) func(string) []string {
	return func(query string) []string {
		results, err := e.Searcher.Search(ctx, query, opts)
		if err != nil {
			return nil
		}
		return search.ParentRanking(results)
	}
}

// NewPoller returns a function that performs one §3 polling pass over the
// knowledge-base source: new and modified pages are re-extracted, chunked
// and indexed in place; vanished pages are tombstoned. The returned
// function reports how many pages changed. State (content fingerprints)
// persists across calls, exactly like the 15-minute cron ingester.
//
// Every pass runs under ctx, so a poller wired to the server's context
// stops indexing as soon as the server shuts down.
func (e *Engine) NewPoller(ctx context.Context, src ingest.Source) func() (int, error) {
	q := queue.New[ingest.Extracted]()
	ing := &ingest.Ingester{Source: src, Out: q}
	in := indexer.New(e.Index, e.Embedder, e.Client, e.cfg.Indexer)
	return func() (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		changed, err := ing.SyncOnce()
		if err != nil {
			return 0, fmt.Errorf("core: poll: %w", err)
		}
		for {
			doc, ok := q.TryDequeue()
			if !ok {
				break
			}
			if _, err := in.IndexDocument(ctx, doc); err != nil {
				return changed, fmt.Errorf("core: poll index: %w", err)
			}
		}
		return changed, nil
	}
}
