package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"uniask/internal/guardrails"
	"uniask/internal/ingest"
	"uniask/internal/kb"
	"uniask/internal/pipeline"
	"uniask/internal/search"
)

// buildEngine indexes a small corpus once for the whole test file.
var (
	testCorpus *kb.Corpus
	testEngine *Engine
)

func engine(t *testing.T) (*Engine, *kb.Corpus) {
	t.Helper()
	if testEngine == nil {
		testCorpus = kb.Generate(kb.GenConfig{Docs: 300, Seed: 11})
		var err error
		testEngine, err = BuildFromCorpus(context.Background(), testCorpus, Config{})
		if err != nil {
			t.Fatal(err)
		}
	}
	return testEngine, testCorpus
}

func TestBuildIndexesAllDocs(t *testing.T) {
	e, c := engine(t)
	if e.Index.Len() < len(c.Docs) {
		t.Fatalf("index has %d chunks for %d docs", e.Index.Len(), len(c.Docs))
	}
}

func TestAskGroundedQuestion(t *testing.T) {
	e, c := engine(t)
	// Ask about a real document using its own canonical phrasing: the
	// system must find it and generate a valid cited answer.
	ds := c.HumanDataset(30, 77)
	valid := 0
	for _, q := range ds.Queries {
		resp, err := e.Ask(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Documents) == 0 {
			t.Fatalf("no documents for %q", q.Text)
		}
		if resp.AnswerValid {
			valid++
			if len(resp.Citations) == 0 {
				t.Fatalf("valid answer without citations: %+v", resp)
			}
			if resp.Answer != resp.GeneratedAnswer {
				t.Fatal("valid answer text mismatch")
			}
		}
	}
	if valid < 20 {
		t.Fatalf("only %d/30 questions got valid answers", valid)
	}
}

func TestAskOutOfScopeTriggersGuardrail(t *testing.T) {
	e, c := engine(t)
	ds := c.OutOfScopeDataset(10, 3)
	triggered := 0
	for _, q := range ds.Queries {
		resp, err := e.Ask(context.Background(), q.Text)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.AnswerValid {
			triggered++
			// The document list is still shown.
			if resp.Answer == "" {
				t.Fatal("invalidated response has no user message")
			}
		}
	}
	if triggered < 7 {
		t.Fatalf("only %d/10 out-of-scope questions blocked", triggered)
	}
}

func TestAskContentFilterBlocksBeforeRetrieval(t *testing.T) {
	e, _ := engine(t)
	resp, err := e.Ask(context.Background(), "questo maledetto sistema, come apro un conto?")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Guardrail != guardrails.Content {
		t.Fatalf("guardrail = %v", resp.Guardrail)
	}
	if len(resp.Documents) != 0 {
		t.Fatal("content-filtered question still retrieved documents")
	}
}

func TestSearchReturnsParentableResults(t *testing.T) {
	e, c := engine(t)
	results, err := e.Search(context.Background(), c.Docs[0].Title)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if results[0].ParentID == "" || results[0].ChunkID == "" {
		t.Fatalf("result ids missing: %+v", results[0])
	}
	parents := search.ParentRanking(results)
	seen := map[string]bool{}
	for _, p := range parents {
		if seen[p] {
			t.Fatal("duplicate parent in ranking")
		}
		seen[p] = true
	}
}

func TestSearchFindsTargetDocument(t *testing.T) {
	e, c := engine(t)
	// Query with a document's exact title: its parent must rank first.
	d := c.Docs[5]
	results, err := e.Search(context.Background(), d.Title)
	if err != nil {
		t.Fatal(err)
	}
	parents := search.ParentRanking(results)
	found := false
	for i, p := range parents {
		if p == d.ID && i < 5 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("doc %s not in top-5 for its own title %q: %v", d.ID, d.Title, parents[:min(5, len(parents))])
	}
}

func TestRetrieverAdapter(t *testing.T) {
	e, c := engine(t)
	retr := e.Retriever(context.Background(), search.Options{})
	ranked := retr(c.Docs[0].Title)
	if len(ranked) == 0 {
		t.Fatal("retriever returned nothing")
	}
	for _, id := range ranked {
		if strings.Contains(id, "#") {
			t.Fatalf("retriever leaked chunk id: %s", id)
		}
	}
}

// stageRecorder is a thread-safe observer counting stage reports.
type stageRecorder struct {
	mu     sync.Mutex
	counts map[string]int
}

func (r *stageRecorder) ObserveStage(info pipeline.StageInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counts == nil {
		r.counts = map[string]int{}
	}
	r.counts[info.Stage]++
}

func (r *stageRecorder) count(stage string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[stage]
}

// TestAskReportsAllPipelineStages checks that one Ask reports every
// Figure-1 stage exactly once through the engine's observer.
func TestAskReportsAllPipelineStages(t *testing.T) {
	e, c := engine(t)
	rec := &stageRecorder{}
	e.SetObserver(rec)
	defer e.SetObserver(nil)
	if _, err := e.Ask(context.Background(), c.Docs[0].Title+"?"); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{
		pipeline.StageFilter, pipeline.StageEmbed, pipeline.StageRetrieval,
		pipeline.StageFusion, pipeline.StageRerank,
		pipeline.StageGeneration, pipeline.StageGuardrails,
	} {
		if n := rec.count(stage); n != 1 {
			t.Errorf("stage %q reported %d times, want 1 (counts=%v)", stage, n, rec.counts)
		}
	}
}

// TestAskContentFilterStopsPipeline checks a filtered question reports the
// filter stage but never reaches retrieval or generation.
func TestAskContentFilterStopsPipeline(t *testing.T) {
	e, _ := engine(t)
	rec := &stageRecorder{}
	e.SetObserver(rec)
	defer e.SetObserver(nil)
	resp, err := e.Ask(context.Background(), "questo maledetto sistema, come apro un conto?")
	if err != nil || resp.Guardrail != guardrails.Content {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if rec.count(pipeline.StageFilter) != 1 {
		t.Fatal("filter stage not reported")
	}
	if rec.count(pipeline.StageRetrieval) != 0 || rec.count(pipeline.StageGeneration) != 0 {
		t.Fatalf("filtered question still ran later stages: %v", rec.counts)
	}
}

// TestAskHonorsCancellation checks Ask surfaces ctx.Err() at every stage
// boundary instead of returning a partial response.
func TestAskHonorsCancellation(t *testing.T) {
	e, c := engine(t)
	defer e.SetObserver(nil)
	question := c.Docs[0].Title + "?"

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Ask(ctx, question); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Ask err = %v", err)
	}

	for _, stage := range []string{pipeline.StageFilter, pipeline.StageRetrieval, pipeline.StageGeneration} {
		// The test asserts every stage actually runs, so a query-cache hit
		// (the shared engine may have answered this question already) would
		// skip retrieval and never trigger the cancel.
		e.Searcher.Cache.Purge()
		ctx, cancel := context.WithCancel(context.Background())
		stage := stage
		var once sync.Once
		e.SetObserver(pipeline.ObserverFunc(func(info pipeline.StageInfo) {
			if info.Stage == stage {
				once.Do(cancel)
			}
		}))
		_, err := e.Ask(ctx, question)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel after %q: err = %v", stage, err)
		}
		cancel()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mutableSource is an editable KB for poller tests.
type mutableSource struct{ pages []ingest.Page }

func (m *mutableSource) Pages() []ingest.Page { return m.pages }

func TestPollerAppliesEditsAndDeletions(t *testing.T) {
	eng := New(Config{})
	src := &mutableSource{pages: []ingest.Page{
		{ID: "p1", HTML: "<html><head><title>Pagina uno</title></head><body><p>Contenuto originale con parola unicaoriginale.</p></body></html>"},
	}}
	sync := eng.NewPoller(context.Background(), src)

	if n, err := sync(); err != nil || n != 1 {
		t.Fatalf("initial sync = %d, %v", n, err)
	}
	if res, _ := eng.Search(context.Background(), "unicaoriginale"); len(res) == 0 {
		t.Fatal("initial content not indexed")
	}

	// Unchanged poll is a no-op.
	if n, err := sync(); err != nil || n != 0 {
		t.Fatalf("idempotent sync = %d, %v", n, err)
	}

	// Edit.
	src.pages[0].HTML = "<html><head><title>Pagina uno</title></head><body><p>Contenuto aggiornato con parola unicanuova.</p></body></html>"
	if n, err := sync(); err != nil || n != 1 {
		t.Fatalf("edit sync = %d, %v", n, err)
	}
	if res, _ := eng.Search(context.Background(), "unicanuova"); len(res) == 0 {
		t.Fatal("edited content not searchable")
	}
	// Vector search still returns the nearest (new) chunk for any query —
	// UniAsk always shows a document list — but no result may carry the
	// stale text.
	res, _ := eng.Search(context.Background(), "unicaoriginale")
	for _, r := range res {
		if strings.Contains(r.Content, "unicaoriginale") {
			t.Fatalf("stale content still searchable: %v", r)
		}
	}

	// Deletion.
	src.pages = nil
	if n, err := sync(); err != nil || n != 1 {
		t.Fatalf("delete sync = %d, %v", n, err)
	}
	if eng.Index.HasParent("p1") {
		t.Fatal("deleted page still live")
	}
}
