// Package rerank implements the semantic reranking stage of Hybrid Search
// with Semantic reranking (HSS). The production system uses a proprietary
// multi-lingual deep model from Bing / Microsoft Research (multi-task
// learning, Liu et al. 2019) that re-scores the fused top results; its
// final relevance score is added to the RRF score.
//
// The substitute here is a deterministic cross-scorer with the same signal
// structure a cross-encoder learns for this task: semantic affinity between
// query and chunk (embedding cosine), lexical evidence (normalized term
// overlap), and title affinity, combined through a calibrated logistic so
// the output lives in (0, 1) like a relevance probability.
//
// The logistic's weights are an atomically-published snapshot rather than
// plain fields: click feedback (see feedback.go) recalibrates them online
// with bounded steps, every publication bumps a version, and the query
// cache keys rankings on that version so a recalibration never replays a
// stale ordering.
package rerank

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"uniask/internal/textproc"
	"uniask/internal/vector"
)

// Input is one candidate to re-score.
type Input struct {
	// ID identifies the chunk.
	ID string
	// Title and Content are the chunk's retrievable text fields.
	Title   string
	Content string
	// ContentVector is the chunk's content embedding (may be nil; the
	// semantic component is then skipped).
	ContentVector vector.Vector
}

// Scored is a reranked candidate.
type Scored struct {
	ID string
	// Score is the semantic relevance score in (0, 1).
	Score float64
}

// Weights is one immutable parameter snapshot of the scoring logistic:
// the three evidence-channel weights and the bias.
type Weights struct {
	Semantic float64
	Lexical  float64
	Title    float64
	Bias     float64
}

// DefaultWeights is the pre-calibrated logistic: a strongly matching chunk
// scores ≈0.9 and an unrelated one ≈0.1. It anchors the recalibration
// envelope — online feedback may drift the weights only a bounded distance
// from this calibration.
var DefaultWeights = Weights{Semantic: 4.0, Lexical: 3.0, Title: 1.5, Bias: -3.0}

// snapshot pairs a weight set with its version so readers observe both
// atomically.
type snapshot struct {
	w       Weights
	version uint64
}

// Reranker is the simulated cross-encoder. Scoring reads one atomic weight
// snapshot; Recalibrate publishes new snapshots. Safe for concurrent use.
type Reranker struct {
	cur  atomic.Pointer[snapshot]
	base Weights // envelope anchor; immutable after New

	// mu serializes recalibrations (readers never take it).
	mu     sync.Mutex
	clicks uint64 // feedback events applied, under mu

	analyzer *textproc.Analyzer
}

// New returns a reranker with the default calibration.
func New() *Reranker {
	r := &Reranker{
		base:     DefaultWeights,
		analyzer: textproc.ItalianFull(),
	}
	r.cur.Store(&snapshot{w: DefaultWeights, version: 1})
	return r
}

// Weights returns the current parameter snapshot.
func (r *Reranker) Weights() Weights { return r.cur.Load().w }

// Version returns the current weight version. It changes exactly when a
// recalibration publishes new weights, so it keys anything (a cached
// ranking) whose validity depends on the parameters.
func (r *Reranker) Version() uint64 { return r.cur.Load().version }

// features computes the three evidence channels for one candidate.
func (r *Reranker) features(query string, qvec vector.Vector, in Input) (sem, lex, title float64) {
	qTerms := r.analyzer.AnalyzeUnique(query)
	if qvec != nil && in.ContentVector != nil {
		sem = float64(vector.Cosine(qvec, in.ContentVector))
		if sem < 0 {
			sem = 0
		}
	}
	lex = overlap(qTerms, r.analyzer.AnalyzeUnique(in.Content))
	title = overlap(qTerms, r.analyzer.AnalyzeUnique(in.Title))
	return sem, lex, title
}

// Score re-scores a single candidate against the query (and its embedding,
// which may be nil).
func (r *Reranker) Score(query string, qvec vector.Vector, in Input) float64 {
	sem, lex, title := r.features(query, qvec, in)
	w := r.cur.Load().w
	z := w.Semantic*sem + w.Lexical*lex + w.Title*title + w.Bias
	return 1 / (1 + math.Exp(-z))
}

// Rerank scores every candidate; it does not reorder — UniAsk adds the
// semantic score to the RRF score, so combination happens in the caller.
func (r *Reranker) Rerank(query string, qvec vector.Vector, ins []Input) []Scored {
	out := make([]Scored, len(ins))
	for i, in := range ins {
		out[i] = Scored{ID: in.ID, Score: r.Score(query, qvec, in)}
	}
	return out
}

// identifierWeight up-weights identifier-like query terms (error codes,
// procedure codes): a cross-encoder attends very strongly to an exact match
// on a rare identifier.
const identifierWeight = 3.0

// overlap is the weighted fraction of query terms present in the document
// term set.
func overlap(q, d map[string]struct{}) float64 {
	if len(q) == 0 {
		return 0
	}
	var n, total float64
	for t := range q {
		w := 1.0
		if strings.ContainsAny(t, "0123456789") {
			w = identifierWeight
		}
		total += w
		if _, ok := d[t]; ok {
			n += w
		}
	}
	return n / total
}
