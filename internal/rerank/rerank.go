// Package rerank implements the semantic reranking stage of Hybrid Search
// with Semantic reranking (HSS). The production system uses a proprietary
// multi-lingual deep model from Bing / Microsoft Research (multi-task
// learning, Liu et al. 2019) that re-scores the fused top results; its
// final relevance score is added to the RRF score.
//
// The substitute here is a deterministic cross-scorer with the same signal
// structure a cross-encoder learns for this task: semantic affinity between
// query and chunk (embedding cosine), lexical evidence (normalized term
// overlap), and title affinity, combined through a calibrated logistic so
// the output lives in (0, 1) like a relevance probability.
package rerank

import (
	"math"
	"strings"

	"uniask/internal/textproc"
	"uniask/internal/vector"
)

// Input is one candidate to re-score.
type Input struct {
	// ID identifies the chunk.
	ID string
	// Title and Content are the chunk's retrievable text fields.
	Title   string
	Content string
	// ContentVector is the chunk's content embedding (may be nil; the
	// semantic component is then skipped).
	ContentVector vector.Vector
}

// Scored is a reranked candidate.
type Scored struct {
	ID string
	// Score is the semantic relevance score in (0, 1).
	Score float64
}

// Reranker is the simulated cross-encoder.
type Reranker struct {
	// Weights of the three evidence channels and the bias, pre-calibrated
	// so that a strongly matching chunk scores ≈0.9 and an unrelated one
	// ≈0.1.
	WSemantic float64
	WLexical  float64
	WTitle    float64
	Bias      float64

	analyzer *textproc.Analyzer
}

// New returns a reranker with the default calibration.
func New() *Reranker {
	return &Reranker{
		WSemantic: 4.0,
		WLexical:  3.0,
		WTitle:    1.5,
		Bias:      -3.0,
		analyzer:  textproc.ItalianFull(),
	}
}

// Score re-scores a single candidate against the query (and its embedding,
// which may be nil).
func (r *Reranker) Score(query string, qvec vector.Vector, in Input) float64 {
	qTerms := r.analyzer.AnalyzeUnique(query)

	sem := 0.0
	if qvec != nil && in.ContentVector != nil {
		sem = float64(vector.Cosine(qvec, in.ContentVector))
		if sem < 0 {
			sem = 0
		}
	}
	lex := overlap(qTerms, r.analyzer.AnalyzeUnique(in.Content))
	title := overlap(qTerms, r.analyzer.AnalyzeUnique(in.Title))

	z := r.WSemantic*sem + r.WLexical*lex + r.WTitle*title + r.Bias
	return 1 / (1 + math.Exp(-z))
}

// Rerank scores every candidate; it does not reorder — UniAsk adds the
// semantic score to the RRF score, so combination happens in the caller.
func (r *Reranker) Rerank(query string, qvec vector.Vector, ins []Input) []Scored {
	out := make([]Scored, len(ins))
	for i, in := range ins {
		out[i] = Scored{ID: in.ID, Score: r.Score(query, qvec, in)}
	}
	return out
}

// identifierWeight up-weights identifier-like query terms (error codes,
// procedure codes): a cross-encoder attends very strongly to an exact match
// on a rare identifier.
const identifierWeight = 3.0

// overlap is the weighted fraction of query terms present in the document
// term set.
func overlap(q, d map[string]struct{}) float64 {
	if len(q) == 0 {
		return 0
	}
	var n, total float64
	for t := range q {
		w := 1.0
		if strings.ContainsAny(t, "0123456789") {
			w = identifierWeight
		}
		total += w
		if _, ok := d[t]; ok {
			n += w
		}
	}
	return n / total
}
