package rerank

// Click-feedback recalibration: when a user clicks one of the cited
// documents, the click is a weak relevance label — positive for the
// clicked chunk, negative for the chunks that were ranked above it and
// skipped (the classic click-skip pairs of online learning-to-rank). Each
// feedback event applies one small logistic-regression gradient step to
// the scoring weights, clamped to a pinned envelope around the factory
// calibration so no stream of adversarial or degenerate clicks can walk
// the model away from sanity. Every publication bumps the weight version,
// which the query cache keys on, so recalibration and caching compose
// without ever serving a ranking scored under weights that no longer
// exist.

import (
	"math"

	"uniask/internal/vector"
)

// Click is one recorded feedback event: the query it answered, the chunk
// the user clicked, and the chunks ranked above the click that the user
// skipped over.
type Click struct {
	// Query is the (rewritten) query text of the turn.
	Query string
	// QueryVec is the query embedding (nil degrades the semantic feature
	// to 0, exactly as in scoring).
	QueryVec vector.Vector
	// Clicked is the candidate the user opened — the positive example.
	Clicked Input
	// SkippedAbove holds the candidates ranked above the click — the
	// negative examples. May be empty (a click on the top result still
	// nudges the positive side).
	SkippedAbove []Input
}

// learnRate is the SGD step size. Small on purpose: one click should nudge
// the calibration, not rewrite it; convergence comes from volume.
const learnRate = 0.05

// driftFrac bounds each parameter to ±driftFrac·max(|base|, 1) around its
// factory value — the pinned envelope. With the default calibration the
// semantic weight may drift within [3.0, 5.0], the bias within
// [-3.75, -2.25], and so on.
const driftFrac = 0.25

// envelope returns the [lo, hi] clamp for one parameter.
func envelope(base float64) (lo, hi float64) {
	d := driftFrac * math.Max(math.Abs(base), 1)
	return base - d, base + d
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Recalibrate applies one click's bounded gradient step and publishes the
// new weights under a fresh version. Returns the published snapshot.
// Concurrent calls serialize; concurrent scoring keeps reading the previous
// snapshot until publication.
func (r *Reranker) Recalibrate(c Click) Weights {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cur.Load()
	w := cur.w

	step := func(in Input, label float64) {
		sem, lex, title := r.features(c.Query, c.QueryVec, in)
		z := w.Semantic*sem + w.Lexical*lex + w.Title*title + w.Bias
		p := 1 / (1 + math.Exp(-z))
		g := learnRate * (label - p)
		w.Semantic += g * sem
		w.Lexical += g * lex
		w.Title += g * title
		w.Bias += g
	}
	step(c.Clicked, 1)
	for _, in := range c.SkippedAbove {
		step(in, 0)
	}

	w.Semantic = clamp(w.Semantic, envelopeLo(r.base.Semantic), envelopeHi(r.base.Semantic))
	w.Lexical = clamp(w.Lexical, envelopeLo(r.base.Lexical), envelopeHi(r.base.Lexical))
	w.Title = clamp(w.Title, envelopeLo(r.base.Title), envelopeHi(r.base.Title))
	w.Bias = clamp(w.Bias, envelopeLo(r.base.Bias), envelopeHi(r.base.Bias))

	r.clicks++
	r.cur.Store(&snapshot{w: w, version: cur.version + 1})
	return w
}

func envelopeLo(base float64) float64 { lo, _ := envelope(base); return lo }
func envelopeHi(base float64) float64 { _, hi := envelope(base); return hi }

// Envelope reports the clamp bounds for a base parameter value — exported
// so tests pin the exact guarantee Recalibrate enforces.
func Envelope(base float64) (lo, hi float64) { return envelope(base) }

// Stats is a point-in-time view of the online recalibration, for the
// dashboard gauge.
type Stats struct {
	// Clicks counts feedback events applied since construction.
	Clicks uint64
	// Version is the current weight version.
	Version uint64
	// Weights is the current parameter snapshot.
	Weights Weights
	// Drift is the largest relative excursion from the factory calibration
	// across the four parameters, in units of the envelope half-width
	// (1.0 = a parameter is pinned at its clamp).
	Drift float64
}

// Stats reports the recalibration counters and current weights.
func (r *Reranker) Stats() Stats {
	r.mu.Lock()
	clicks := r.clicks
	r.mu.Unlock()
	cur := r.cur.Load()
	drift := 0.0
	for _, p := range [][2]float64{
		{cur.w.Semantic, r.base.Semantic},
		{cur.w.Lexical, r.base.Lexical},
		{cur.w.Title, r.base.Title},
		{cur.w.Bias, r.base.Bias},
	} {
		half := driftFrac * math.Max(math.Abs(p[1]), 1)
		if d := math.Abs(p[0]-p[1]) / half; d > drift {
			drift = d
		}
	}
	return Stats{Clicks: clicks, Version: cur.version, Weights: cur.w, Drift: drift}
}
