package rerank

import (
	"testing"

	"uniask/internal/embedding"
)

func TestScoreBounds(t *testing.T) {
	r := New()
	emb := embedding.NewSynth(64, nil)
	q := "come bloccare la carta di credito"
	s := r.Score(q, emb.Embed(q), Input{
		ID: "x", Title: "Blocco carta", Content: "Per bloccare la carta chiamare il numero verde.",
		ContentVector: emb.Embed("Per bloccare la carta chiamare il numero verde."),
	})
	if s <= 0 || s >= 1 {
		t.Fatalf("score out of (0,1): %v", s)
	}
}

func TestRelevantOutscoresIrrelevant(t *testing.T) {
	r := New()
	emb := embedding.NewSynth(64, nil)
	q := "come bloccare la carta di credito"
	qv := emb.Embed(q)
	rel := Input{ID: "rel", Title: "Blocco carta di credito",
		Content:       "Per bloccare la carta di credito chiamare il numero verde dedicato.",
		ContentVector: emb.Embed("Per bloccare la carta di credito chiamare il numero verde dedicato.")}
	irr := Input{ID: "irr", Title: "Mutuo prima casa",
		Content:       "Il mutuo prima casa offre un tasso agevolato ai giovani.",
		ContentVector: emb.Embed("Il mutuo prima casa offre un tasso agevolato ai giovani.")}
	sr := r.Score(q, qv, rel)
	si := r.Score(q, qv, irr)
	if sr <= si {
		t.Fatalf("relevant %.3f <= irrelevant %.3f", sr, si)
	}
	if sr < 0.6 {
		t.Fatalf("strong match scored low: %.3f", sr)
	}
	if si > 0.4 {
		t.Fatalf("non-match scored high: %.3f", si)
	}
}

func TestTitleSignalContributes(t *testing.T) {
	r := New()
	q := "blocco carta"
	withTitle := r.Score(q, nil, Input{Title: "Blocco carta", Content: "testo generico"})
	without := r.Score(q, nil, Input{Title: "Altro argomento", Content: "testo generico"})
	if withTitle <= without {
		t.Fatalf("title match ignored: %.3f <= %.3f", withTitle, without)
	}
}

func TestNilVectorSkipsSemantic(t *testing.T) {
	r := New()
	// Must not panic with nil vectors and still produce a sane score.
	s := r.Score("carta", nil, Input{Title: "carta", Content: "carta di credito"})
	if s <= 0 || s >= 1 {
		t.Fatalf("score = %v", s)
	}
}

func TestRerankPreservesOrderAndIDs(t *testing.T) {
	r := New()
	ins := []Input{{ID: "a", Content: "x"}, {ID: "b", Content: "y"}}
	out := r.Rerank("x", nil, ins)
	if len(out) != 2 || out[0].ID != "a" || out[1].ID != "b" {
		t.Fatalf("Rerank reordered or lost ids: %v", out)
	}
}

func TestEmptyQuery(t *testing.T) {
	r := New()
	s := r.Score("", nil, Input{Title: "t", Content: "c"})
	if s <= 0 || s >= 1 {
		t.Fatalf("score = %v", s)
	}
}

func TestDeterministic(t *testing.T) {
	r := New()
	emb := embedding.NewSynth(64, nil)
	in := Input{ID: "a", Title: "Blocco carta", Content: "Per bloccare la carta",
		ContentVector: emb.Embed("Per bloccare la carta")}
	q := "bloccare carta"
	qv := emb.Embed(q)
	if r.Score(q, qv, in) != r.Score(q, qv, in) {
		t.Fatal("nondeterministic score")
	}
}
