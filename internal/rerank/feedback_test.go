package rerank

import (
	"fmt"
	"sync"
	"testing"

	"uniask/internal/vector"
)

func clickFor(q string, clicked, skipped Input) Click {
	return Click{Query: q, Clicked: clicked, SkippedAbove: []Input{skipped}}
}

func TestRecalibrateMovesTowardClickedDocs(t *testing.T) {
	r := New()
	base := r.Weights()
	// The clicked doc matches the query lexically, the skipped one does
	// not: repeated clicks should not decrease the lexical weight.
	clicked := Input{ID: "good", Title: "bonifico estero", Content: "come fare un bonifico estero dal conto"}
	skipped := Input{ID: "bad", Title: "carta di credito", Content: "limiti della carta di credito"}
	for i := 0; i < 50; i++ {
		r.Recalibrate(clickFor("bonifico estero", clicked, skipped))
	}
	w := r.Weights()
	if w.Lexical < base.Lexical {
		t.Fatalf("lexical weight moved away from the clicked signal: %v -> %v", base.Lexical, w.Lexical)
	}
	if r.Version() != 51 {
		t.Fatalf("version = %d, want 51 (initial 1 + 50 clicks)", r.Version())
	}
}

// TestRecalibrateBoundedByEnvelope pins the safety guarantee: no volume of
// feedback — adversarial, repetitive, or plain weird — can push any weight
// outside Envelope(base). Online learning from clicks must never be able to
// destroy the factory calibration.
func TestRecalibrateBoundedByEnvelope(t *testing.T) {
	r := New()
	base := DefaultWeights
	adversarial := []Click{
		// Same doc clicked and skipped across calls: contradictory signal.
		clickFor("bonifico", Input{ID: "a", Title: "bonifico", Content: "bonifico"}, Input{ID: "b"}),
		clickFor("bonifico", Input{ID: "b"}, Input{ID: "a", Title: "bonifico", Content: "bonifico"}),
		// Empty inputs: zero features, only the bias moves.
		{Query: "", Clicked: Input{}},
		// Vectors attached: the semantic feature participates.
		{
			Query: "carta", QueryVec: vector.Vector{1, 0, 0},
			Clicked:      Input{ID: "v", ContentVector: vector.Vector{1, 0, 0}},
			SkippedAbove: []Input{{ID: "w", ContentVector: vector.Vector{-1, 0, 0}}},
		},
	}
	for i := 0; i < 2000; i++ {
		r.Recalibrate(adversarial[i%len(adversarial)])
	}
	w := r.Weights()
	for _, p := range []struct {
		name      string
		got, base float64
	}{
		{"semantic", w.Semantic, base.Semantic},
		{"lexical", w.Lexical, base.Lexical},
		{"title", w.Title, base.Title},
		{"bias", w.Bias, base.Bias},
	} {
		lo, hi := Envelope(p.base)
		if p.got < lo || p.got > hi {
			t.Fatalf("%s = %v escaped envelope [%v, %v]", p.name, p.got, lo, hi)
		}
	}
	st := r.Stats()
	if st.Clicks != 2000 {
		t.Fatalf("clicks = %d", st.Clicks)
	}
	if st.Drift < 0 || st.Drift > 1 {
		t.Fatalf("drift = %v outside [0, 1]", st.Drift)
	}
}

// TestRecalibrateVersionGatesCachedRankings: every click bumps the version
// the query cache keys on, so a ranking computed under old weights can
// never be served as if it were computed under the new ones.
func TestRecalibrateVersionGatesCachedRankings(t *testing.T) {
	r := New()
	v0 := r.Version()
	r.Recalibrate(clickFor("q", Input{ID: "a", Title: "q", Content: "q"}, Input{ID: "b"}))
	if r.Version() != v0+1 {
		t.Fatalf("version %d -> %d, want +1 per click", v0, r.Version())
	}
}

func TestRecalibrateConcurrentWithScoring(t *testing.T) {
	// Clicks land while queries score: the atomic snapshot must keep both
	// sides consistent (run under -race in make check).
	r := New()
	in := Input{ID: "x", Title: "bonifico", Content: "bonifico estero"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if w%2 == 0 {
					r.Recalibrate(clickFor(fmt.Sprintf("q%d", i), in, Input{ID: "y"}))
				} else {
					r.Score("bonifico", nil, in)
				}
			}
		}(w)
	}
	wg.Wait()
	st := r.Stats()
	if st.Clicks != 400 {
		t.Fatalf("clicks = %d, want 400", st.Clicks)
	}
}
