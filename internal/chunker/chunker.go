// Package chunker implements the two document-splitting strategies the
// paper evaluated for index construction: a generic recursive character
// splitter (the Langchain RecursiveCharacterTextSplitter the authors tested
// and rejected) and the ad-hoc HTML-paragraph splitter they adopted, which
// cuts at paragraph start offsets and recursively merges small adjacent
// fragments up to the 512-token target.
package chunker

import (
	"uniask/internal/htmlx"
	"uniask/internal/textproc"
)

// Chunk is one indexable fragment of a document.
type Chunk struct {
	// Text is the chunk content.
	Text string
	// Ordinal is the chunk's position within its document (0-based).
	Ordinal int
	// Tokens is the approximate LLM token count of Text.
	Tokens int
	// Start is the byte offset of the chunk within the source (paragraph
	// splitting reports HTML offsets; character splitting reports text
	// offsets).
	Start int
}

// Splitter turns a document into chunks.
type Splitter interface {
	// Split chunks plain text.
	Split(text string) []Chunk
}

// DefaultChunkTokens is the chunk-size target from the paper: 512 tokens,
// chosen because text-embedding-ada-002 performs well at that length.
const DefaultChunkTokens = 512

// ---------------------------------------------------------------------------
// Recursive character splitter (Langchain-style).

// RecursiveSplitter reproduces Langchain's RecursiveCharacterTextSplitter:
// it tries each separator in order, splitting the text and recursively
// re-splitting any piece that is still too large with the next separator.
type RecursiveSplitter struct {
	// MaxTokens is the chunk-size limit (DefaultChunkTokens when zero).
	MaxTokens int
	// Separators is the ordered separator list; the Langchain default
	// ["\n\n", "\n", " ", ""] is used when empty.
	Separators []string
}

func (r *RecursiveSplitter) maxTokens() int {
	if r.MaxTokens > 0 {
		return r.MaxTokens
	}
	return DefaultChunkTokens
}

func (r *RecursiveSplitter) separators() []string {
	if len(r.Separators) > 0 {
		return r.Separators
	}
	return []string{"\n\n", "\n", " ", ""}
}

// Split chunks text with the recursive strategy.
func (r *RecursiveSplitter) Split(text string) []Chunk {
	pieces := r.split(text, r.separators())
	// Greedily merge adjacent pieces below the limit, mimicking Langchain's
	// merge step.
	var out []Chunk
	cur := ""
	curStart := 0
	offset := 0
	flush := func() {
		if cur == "" {
			return
		}
		out = append(out, Chunk{Text: cur, Ordinal: len(out), Tokens: textproc.ApproxTokens(cur), Start: curStart})
		cur = ""
	}
	for _, p := range pieces {
		if p == "" {
			continue
		}
		joined := p
		if cur != "" {
			joined = cur + " " + p
		}
		if textproc.ApproxTokens(joined) > r.maxTokens() && cur != "" {
			flush()
			curStart = offset
			cur = p
		} else {
			if cur == "" {
				curStart = offset
			}
			cur = joined
		}
		offset += len(p) + 1
	}
	flush()
	return out
}

func (r *RecursiveSplitter) split(text string, seps []string) []string {
	if textproc.ApproxTokens(text) <= r.maxTokens() {
		return []string{text}
	}
	if len(seps) == 0 {
		return hardSplit(text, r.maxTokens())
	}
	sep := seps[0]
	if sep == "" {
		return hardSplit(text, r.maxTokens())
	}
	parts := splitKeepNonEmpty(text, sep)
	if len(parts) == 1 {
		return r.split(text, seps[1:])
	}
	var out []string
	for _, p := range parts {
		if textproc.ApproxTokens(p) > r.maxTokens() {
			out = append(out, r.split(p, seps[1:])...)
		} else {
			out = append(out, p)
		}
	}
	return out
}

func splitKeepNonEmpty(text, sep string) []string {
	var parts []string
	for {
		i := indexOf(text, sep)
		if i < 0 {
			break
		}
		if p := text[:i]; p != "" {
			parts = append(parts, p)
		}
		text = text[i+len(sep):]
	}
	if text != "" {
		parts = append(parts, text)
	}
	return parts
}

func indexOf(s, sub string) int {
	n := len(sub)
	if n == 0 || len(s) < n {
		return -1
	}
	for i := 0; i+n <= len(s); i++ {
		if s[i:i+n] == sub {
			return i
		}
	}
	return -1
}

// hardSplit cuts text into pieces of at most maxTokens by rune count
// approximation, used when no separator can produce small-enough pieces.
func hardSplit(text string, maxTokens int) []string {
	maxChars := maxTokens * 4
	var out []string
	runes := []rune(text)
	for len(runes) > 0 {
		n := maxChars
		if n > len(runes) {
			n = len(runes)
		}
		out = append(out, string(runes[:n]))
		runes = runes[n:]
	}
	return out
}

// ---------------------------------------------------------------------------
// HTML paragraph splitter (the strategy UniAsk adopted).

// HTMLSplitter extracts non-overlapping chunks from an HTML document using
// the start offsets of HTML paragraphs as splitting points, then recursively
// merges consecutive small chunks until the target length is reached. This
// keeps fragments coherent with the structure the human editors designed.
type HTMLSplitter struct {
	// TargetTokens is the desired chunk length (DefaultChunkTokens if zero).
	TargetTokens int
}

func (h *HTMLSplitter) target() int {
	if h.TargetTokens > 0 {
		return h.TargetTokens
	}
	return DefaultChunkTokens
}

// SplitHTML chunks an HTML document. Headings are prepended to the following
// paragraph so a chunk never begins with a dangling title line.
func (h *HTMLSplitter) SplitHTML(doc string) []Chunk {
	ex := htmlx.Extract(doc)
	return h.splitParagraphs(ex.Paragraphs)
}

// SplitDocument chunks an already-extracted document.
func (h *HTMLSplitter) SplitDocument(ex htmlx.Document) []Chunk {
	return h.splitParagraphs(ex.Paragraphs)
}

// Split implements Splitter over plain text by treating newline-separated
// blocks as paragraphs.
func (h *HTMLSplitter) Split(text string) []Chunk {
	var paras []htmlx.Paragraph
	off := 0
	for _, line := range splitKeepNonEmpty(text, "\n") {
		paras = append(paras, htmlx.Paragraph{Text: line, Tag: "p", Start: off})
		off += len(line) + 1
	}
	return h.splitParagraphs(paras)
}

func (h *HTMLSplitter) splitParagraphs(paras []htmlx.Paragraph) []Chunk {
	// First pass: one fragment per paragraph; heading text is glued to the
	// next body paragraph.
	type frag struct {
		text  string
		start int
	}
	var frags []frag
	pendingHeading := ""
	pendingStart := -1
	for _, p := range paras {
		if p.Heading {
			if pendingHeading != "" {
				pendingHeading += " — " + p.Text
			} else {
				pendingHeading = p.Text
				pendingStart = p.Start
			}
			continue
		}
		text := p.Text
		start := p.Start
		if pendingHeading != "" {
			text = pendingHeading + ". " + text
			start = pendingStart
			pendingHeading = ""
		}
		frags = append(frags, frag{text: text, start: start})
	}
	if pendingHeading != "" {
		frags = append(frags, frag{text: pendingHeading, start: pendingStart})
	}

	// Recursive merge: repeatedly join the smallest adjacent pair while the
	// merged fragment stays within the target.
	tokens := make([]int, len(frags))
	for i, f := range frags {
		tokens[i] = textproc.ApproxTokens(f.text)
	}
	for len(frags) > 1 {
		best := -1
		bestSum := 1 << 30
		for i := 0; i+1 < len(frags); i++ {
			sum := tokens[i] + tokens[i+1]
			if sum <= h.target() && sum < bestSum {
				best, bestSum = i, sum
			}
		}
		if best < 0 {
			break
		}
		frags[best].text = frags[best].text + "\n" + frags[best+1].text
		tokens[best] = bestSum
		frags = append(frags[:best+1], frags[best+2:]...)
		tokens = append(tokens[:best+1], tokens[best+2:]...)
	}

	// Any fragment still above target (a single giant paragraph) is split by
	// sentences.
	var out []Chunk
	for _, f := range frags {
		if textproc.ApproxTokens(f.text) <= h.target() {
			out = append(out, Chunk{Text: f.text, Start: f.start})
			continue
		}
		for _, piece := range h.splitOversized(f.text) {
			out = append(out, Chunk{Text: piece, Start: f.start})
		}
	}
	for i := range out {
		out[i].Ordinal = i
		out[i].Tokens = textproc.ApproxTokens(out[i].Text)
	}
	return out
}

func (h *HTMLSplitter) splitOversized(text string) []string {
	sentences := textproc.SentenceTexts(text)
	if len(sentences) <= 1 {
		return hardSplit(text, h.target())
	}
	var out []string
	cur := ""
	for _, s := range sentences {
		joined := s
		if cur != "" {
			joined = cur + " " + s
		}
		if textproc.ApproxTokens(joined) > h.target() && cur != "" {
			out = append(out, cur)
			cur = s
		} else {
			cur = joined
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
