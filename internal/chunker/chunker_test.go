package chunker

import (
	"strings"
	"testing"
	"testing/quick"

	"uniask/internal/textproc"
)

func repeatSentence(s string, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = s
	}
	return strings.Join(parts, " ")
}

func TestRecursiveSplitterSmallTextSingleChunk(t *testing.T) {
	r := &RecursiveSplitter{MaxTokens: 100}
	chunks := r.Split("testo breve di prova")
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks, want 1", len(chunks))
	}
	if chunks[0].Tokens == 0 {
		t.Fatal("token count not populated")
	}
}

func TestRecursiveSplitterRespectsLimit(t *testing.T) {
	r := &RecursiveSplitter{MaxTokens: 40}
	text := repeatSentence("Il bonifico estero richiede una autorizzazione preventiva.\n", 30)
	chunks := r.Split(text)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	for i, c := range chunks {
		if c.Tokens > 40 {
			t.Errorf("chunk %d has %d tokens > limit 40", i, c.Tokens)
		}
		if c.Ordinal != i {
			t.Errorf("chunk %d ordinal = %d", i, c.Ordinal)
		}
	}
}

func TestRecursiveSplitterNoTextLost(t *testing.T) {
	r := &RecursiveSplitter{MaxTokens: 30}
	text := repeatSentence("parola chiave numero uno due tre.\n", 20)
	var got int
	for _, c := range r.Split(text) {
		got += strings.Count(c.Text, "chiave")
	}
	if want := 20; got != want {
		t.Fatalf("lost content: %d occurrences, want %d", got, want)
	}
}

func TestRecursiveSplitterHardSplitLongWordRun(t *testing.T) {
	r := &RecursiveSplitter{MaxTokens: 10}
	text := strings.Repeat("x", 500) // no separators at all
	chunks := r.Split(text)
	if len(chunks) < 2 {
		t.Fatalf("expected hard split, got %d chunks", len(chunks))
	}
	var total int
	for _, c := range chunks {
		total += len(c.Text)
	}
	if total != 500 {
		t.Fatalf("hard split lost bytes: %d", total)
	}
}

const chunkHTML = `<html><head><title>Procedura bonifico estero</title></head><body>
<h1>Bonifico estero</h1>
<p>Il bonifico verso paesi extra SEPA richiede il codice BIC della banca beneficiaria.</p>
<p>La commissione applicata dipende dal paese di destinazione e dalla divisa.</p>
<h2>Errori frequenti</h2>
<p>In caso di errore ERR-2041 verificare il codice IBAN inserito.</p>
<p>In caso di errore ERR-2042 contattare il supporto operativo.</p>
</body></html>`

func TestHTMLSplitterCoherentChunks(t *testing.T) {
	h := &HTMLSplitter{TargetTokens: 60}
	chunks := h.SplitHTML(chunkHTML)
	if len(chunks) == 0 {
		t.Fatal("no chunks")
	}
	joined := ""
	for _, c := range chunks {
		joined += c.Text + "\n"
	}
	for _, want := range []string{"BIC", "ERR-2041", "ERR-2042", "commissione"} {
		if !strings.Contains(joined, want) {
			t.Errorf("chunks lost %q", want)
		}
	}
}

func TestHTMLSplitterHeadingGluedToBody(t *testing.T) {
	h := &HTMLSplitter{TargetTokens: 25}
	chunks := h.SplitHTML(chunkHTML)
	// No chunk should consist solely of a heading when body text follows.
	for _, c := range chunks {
		if c.Text == "Bonifico estero" || c.Text == "Errori frequenti" {
			t.Errorf("dangling heading chunk: %q", c.Text)
		}
	}
}

func TestHTMLSplitterMergesSmallParagraphs(t *testing.T) {
	h := &HTMLSplitter{TargetTokens: 512}
	chunks := h.SplitHTML(chunkHTML)
	if len(chunks) != 1 {
		t.Fatalf("small doc should merge to 1 chunk, got %d", len(chunks))
	}
}

func TestHTMLSplitterRespectsTarget(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < 40; i++ {
		b.WriteString("<p>La procedura operativa per la gestione della richiesta prevede numerosi passaggi autorizzativi interni.</p>")
	}
	b.WriteString("</body></html>")
	h := &HTMLSplitter{TargetTokens: 64}
	chunks := h.SplitHTML(b.String())
	if len(chunks) < 4 {
		t.Fatalf("expected several chunks, got %d", len(chunks))
	}
	for i, c := range chunks {
		if c.Tokens > 64 {
			t.Errorf("chunk %d exceeds target: %d tokens", i, c.Tokens)
		}
	}
}

func TestHTMLSplitterOversizedSingleParagraph(t *testing.T) {
	text := repeatSentence("Frase ripetuta della procedura interna di verifica.", 80)
	doc := "<html><body><p>" + text + "</p></body></html>"
	h := &HTMLSplitter{TargetTokens: 50}
	chunks := h.SplitHTML(doc)
	if len(chunks) < 2 {
		t.Fatalf("oversized paragraph not split: %d chunks", len(chunks))
	}
	for _, c := range chunks {
		if c.Tokens > 50 {
			t.Errorf("chunk exceeds target after sentence split: %d", c.Tokens)
		}
	}
}

func TestHTMLSplitterPlainTextMode(t *testing.T) {
	h := &HTMLSplitter{TargetTokens: 20}
	chunks := h.Split("prima riga di testo\nseconda riga di testo\nterza riga di testo")
	if len(chunks) == 0 {
		t.Fatal("no chunks from plain text")
	}
}

func TestApproxTokens(t *testing.T) {
	if got := textproc.ApproxTokens(""); got != 0 {
		t.Fatalf("ApproxTokens(\"\") = %d", got)
	}
	if got := textproc.ApproxTokens("ciao"); got != 1 {
		t.Fatalf("ApproxTokens(ciao) = %d", got)
	}
	long := strings.Repeat("parola ", 100)
	if got := textproc.ApproxTokens(long); got < 100 || got > 250 {
		t.Fatalf("ApproxTokens(100 words) = %d, want ~100-250", got)
	}
}

// Property: chunk ordinals are dense and token counts accurate.
func TestChunkOrdinalsProperty(t *testing.T) {
	h := &HTMLSplitter{TargetTokens: 32}
	f := func(s string) bool {
		chunks := h.Split(s)
		for i, c := range chunks {
			if c.Ordinal != i {
				return false
			}
			if c.Tokens != textproc.ApproxTokens(c.Text) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: recursive splitter never produces empty chunks.
func TestRecursiveNoEmptyChunksProperty(t *testing.T) {
	r := &RecursiveSplitter{MaxTokens: 16}
	f := func(s string) bool {
		for _, c := range r.Split(s) {
			if strings.TrimSpace(c.Text) == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
