package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"uniask/internal/core"
	"uniask/internal/guardrails"
	"uniask/internal/kb"
	"uniask/internal/llm"
	"uniask/internal/loadtest"
	"uniask/internal/monitor"
	"uniask/internal/vclock"
)

// ---------------------------------------------------------------------------
// §8 — pilot phases with real users.

// PhaseResult summarizes one pilot phase.
type PhaseResult struct {
	Name      string
	Questions int
	// ProperAnswers is the share of questions that got a cited answer past
	// the guardrails.
	ProperAnswers float64
	// PositiveFeedback is the share of proper answers rated positively by
	// the simulated users.
	PositiveFeedback float64
	Feedbacks        int
}

// UATResult summarizes the user-acceptance test.
type UATResult struct {
	Questions int
	// Correct is the share of answerable questions answered correctly (a
	// valid answer citing a ground-truth document).
	Correct float64
	// GuardrailsOK is the share of should-block questions (out of scope)
	// where a guardrail fired.
	GuardrailsOK float64
	// ImproperGuardrails is the share of answerable, well-retrieved
	// questions on which a guardrail fired anyway.
	ImproperGuardrails float64
}

// PilotsResult aggregates the §8 simulation.
type PilotsResult struct {
	Phase1R1, Phase1R2, Phase2 PhaseResult
	UAT                        UATResult
}

// userRates simulates a user's feedback on a valid answer: positive when
// the answer cites a ground-truth document, with stochastic noise (users
// sometimes dislike correct answers and vice versa). Determinism comes from
// a per-question hash.
func userRates(q kb.Query, resp core.Response, seed int64) bool {
	h := fnv.New64a()
	h.Write([]byte(q.Text))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	relevant := make(map[string]bool, len(q.Relevant))
	for _, id := range q.Relevant {
		relevant[id] = true
	}
	cited := false
	for _, c := range resp.Citations {
		if relevant[parentOf(c)] {
			cited = true
			break
		}
	}
	if cited {
		return rng.Float64() < 0.93 // satisfied users still grumble sometimes
	}
	// An answer grounded on a near-duplicate or related page is often still
	// useful even when it misses the expert's exact link.
	return rng.Float64() < 0.55
}

func parentOf(chunkID string) string {
	if i := strings.LastIndexByte(chunkID, '#'); i >= 0 {
		return chunkID[:i]
	}
	return chunkID
}

// runPhase asks every query and collects simulated feedback. feedbackRate
// is the share of askers who bother to fill the feedback form.
func runPhase(ctx context.Context, eng *core.Engine, name string, queries []kb.Query, feedbackRate float64, seed int64) (PhaseResult, error) {
	res := PhaseResult{Name: name}
	rng := rand.New(rand.NewSource(seed))
	proper, positive, rated := 0, 0, 0
	for _, q := range queries {
		resp, err := eng.Ask(ctx, q.Text)
		if err != nil {
			return res, err
		}
		res.Questions++
		if !resp.AnswerValid {
			continue
		}
		proper++
		if rng.Float64() > feedbackRate {
			continue
		}
		res.Feedbacks++
		if len(q.Relevant) == 0 {
			continue // no ground truth: skip rating
		}
		rated++
		if userRates(q, resp, seed) {
			positive++
		}
	}
	res.ProperAnswers = ratio(proper, res.Questions)
	res.PositiveFeedback = ratio(positive, rated)
	return res, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pilots simulates the three §8 test phases.
//
// Phase 1 (SMEs) release 1 runs with the guardrail bug the paper describes:
// an over-strict ROUGE threshold inflates the trigger rate to ~25%. Release
// 2 fixes the bug (default threshold) and the proper-answer rate recovers to
// ~90%. SMEs initially query keyword-style out of habit, so their question
// mix includes keyword queries. Phase 2 (branch users) runs with trained
// users asking natural-language questions. The UAT runs the 210-question
// mix and scores correctness and guardrail behavior.
func (e *Env) Pilots(ctx context.Context) PilotsResult {
	out := PilotsResult{}
	seed := e.Scale.Seed

	// Phase 1 question mix: SMEs' habits -> 40% keyword-style.
	n1 := 300
	p1 := append([]kb.Query{}, e.Corpus.HumanDataset(n1*6/10, seed+500).Queries...)
	p1 = append(p1, e.Corpus.KeywordDataset(n1*4/10, seed+501).Queries...)

	// Release 1: buggy over-strict guardrail.
	buggy := core.New(core.Config{
		Lexicon:    e.Corpus.Lexicon(),
		Guardrails: guardrails.Config{RougeThreshold: 0.27},
	})
	if err := buggy.IndexCorpus(ctx, e.Corpus); err == nil {
		if r, err := runPhase(ctx, buggy, "Phase 1 / release 1 (SMEs, guardrail bug)", p1, 0.5, seed+502); err == nil {
			out.Phase1R1 = r
		}
	}
	// Release 2: fixed guardrails, same questions.
	if r, err := runPhase(ctx, e.Engine, "Phase 1 / release 2 (SMEs, fixed)", p1, 0.5, seed+503); err == nil {
		out.Phase1R2 = r
	}
	// Phase 2: branch users, trained, natural-language questions, higher
	// feedback propensity (they were picked for it).
	p2 := e.Corpus.HumanDataset(400, seed+510).Queries
	if r, err := runPhase(ctx, e.Engine, "Phase 2 (branch users)", p2, 0.9, seed+511); err == nil {
		out.Phase2 = r
	}

	out.UAT = e.runUAT(ctx, seed+520)
	return out
}

// citesSameTopic reports whether doc id covers the same operation (entity
// and action) as any ground-truth document.
func citesSameTopic(c *kb.Corpus, id string, truth []string) bool {
	for _, t := range truth {
		if c.SameTopic(id, t) {
			return true
		}
	}
	return false
}

// runUAT executes the 210-question user-acceptance test.
func (e *Env) runUAT(ctx context.Context, seed int64) UATResult {
	ds := e.Corpus.UATDataset(210, seed)
	var res UATResult
	var answerable, correct, shouldBlock, blockedOK, wellRetrieved, improper int
	for _, q := range ds.Queries {
		resp, err := e.Engine.Ask(ctx, q.Text)
		if err != nil {
			continue
		}
		res.Questions++
		relevant := make(map[string]bool, len(q.Relevant))
		for _, id := range q.Relevant {
			relevant[id] = true
		}
		if q.Kind == kb.OutOfScopeQuery {
			shouldBlock++
			if !resp.AnswerValid {
				blockedOK++
			}
			continue
		}
		answerable++
		// SMEs judged answer text, not links: an answer grounded on any
		// page about the same operation counts as correct.
		citedTruth := false
		for _, c := range resp.Citations {
			p := parentOf(c)
			if relevant[p] || citesSameTopic(e.Corpus, p, q.Relevant) {
				citedTruth = true
				break
			}
		}
		if resp.AnswerValid && citedTruth {
			correct++
		}
		// Improper guardrail: retrieval found the truth in the top-4 but a
		// guardrail still blocked the answer.
		retrievedTruth := false
		for i, d := range resp.Documents {
			if i >= 4 {
				break
			}
			if relevant[d.ParentID] {
				retrievedTruth = true
				break
			}
		}
		if retrievedTruth {
			wellRetrieved++
			if !resp.AnswerValid {
				improper++
			}
		}
	}
	res.Correct = ratio(correct, answerable)
	res.GuardrailsOK = ratio(blockedOK, shouldBlock)
	res.ImproperGuardrails = ratio(improper, wellRetrieved)
	return res
}

// String renders the pilot simulation summary.
func (r PilotsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 8: pilot phases (simulated users)\n")
	for _, p := range []PhaseResult{r.Phase1R1, r.Phase1R2, r.Phase2} {
		fmt.Fprintf(&b, "  %-44s %4d questions, %4d feedbacks: proper answers %5.1f%%, positive %5.1f%%\n",
			p.Name, p.Questions, p.Feedbacks, 100*p.ProperAnswers, 100*p.PositiveFeedback)
	}
	fmt.Fprintf(&b, "  UAT (%d questions): correct %5.1f%%, guardrails ok %5.1f%%, improper guardrails %4.1f%%\n",
		r.UAT.Questions, 100*r.UAT.Correct, 100*r.UAT.GuardrailsOK, 100*r.UAT.ImproperGuardrails)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 2 — LLM-service load test.

// Figure2 runs the paper's load test: 60 virtual minutes, arrival ramp 1→3
// users/s, 7200 tokens per request, against a token quota calibrated like
// the deployment's (sized so a small share of peak-load requests is
// rejected — the paper saw 267 failures out of 7200 requests).
func Figure2() loadtest.Report {
	clk := vclock.NewVirtual(time.Date(2025, 1, 1, 9, 0, 0, 0, time.UTC))
	// The quota is sized so that only the ramp's final minutes overflow:
	// the paper's test saw 267 failed queries out of 7200 (3.7%), all at
	// peak load.
	svc := llm.NewService(llm.NewSim(llm.DefaultBehavior()), llm.ServiceConfig{
		TokensPerMinute: 1_020_000,
		BurstTokens:     1_020_000,
		Clock:           clk,
	})
	return loadtest.Run(svc, clk, loadtest.Config{MaxRequests: 7200})
}

// ---------------------------------------------------------------------------
// Figure 3 — monitoring dashboard.

// Figure3 replays a slice of query traffic through the engine while
// recording monitoring metrics — including per-stage pipeline latency via
// the engine's observer hook — then returns the dashboard snapshot.
func (e *Env) Figure3(ctx context.Context) (monitor.Dashboard, error) {
	m := monitor.New()
	e.Engine.SetObserver(m)
	defer e.Engine.SetObserver(nil)
	rng := rand.New(rand.NewSource(e.Scale.Seed + 900))
	queries := e.Corpus.HumanDataset(150, e.Scale.Seed+901).Queries
	for i, q := range queries {
		user := fmt.Sprintf("user%03d", rng.Intn(40))
		start := time.Now()
		resp, err := e.Engine.Ask(ctx, q.Text)
		latency := time.Since(start)
		if err != nil {
			m.RecordQuery(user, latency, "", true)
			continue
		}
		m.RecordQuery(user, latency, resp.Guardrail.String(), false)
		// Roughly half the users leave feedback.
		if i%2 == 0 && resp.AnswerValid {
			m.RecordFeedback(userRates(q, resp, e.Scale.Seed+902))
		}
	}
	return m.Snapshot(), nil
}
