// Package experiments regenerates every table and figure of the paper's
// evaluation (§7-§9) on the synthetic substrate: Table 1 (UniAsk vs the
// previous engine), Table 2 (hybrid-search ablation), Table 3 (query
// expansion and title boosting), Table 4 (keyword enrichment), Table 5
// (guardrail distribution), the pilot phases of §8, the Figure 2 load test
// and the Figure 3 monitoring snapshot. cmd/uniask-bench and the root
// benchmark suite are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"uniask/internal/baseline"
	"uniask/internal/core"
	"uniask/internal/eval"
	"uniask/internal/kb"
	"uniask/internal/search"
)

// Scale sizes an experiment run. The paper scale is Docs=59308, Human=2700,
// Keyword=800; the default is roughly one tenth so `go test` stays fast.
type Scale struct {
	Docs    int
	Human   int
	Keyword int
	Seed    int64
}

// DefaultScale is the fast configuration used by tests and benches.
var DefaultScale = Scale{Docs: 6000, Human: 600, Keyword: 300, Seed: 1}

// PaperScale matches the dataset sizes reported in the paper.
var PaperScale = Scale{Docs: 59308, Human: 2700, Keyword: 800, Seed: 1}

// Env is a fully prepared experimental environment: corpus, UniAsk engine,
// previous-engine baseline, and the validation/test splits of both query
// datasets.
type Env struct {
	Scale  Scale
	Corpus *kb.Corpus
	Engine *core.Engine
	Prev   *baseline.Engine

	HumanVal, HumanTest     kb.Dataset
	KeywordVal, KeywordTest kb.Dataset
}

// Setup generates the corpus, indexes it into a UniAsk engine and the
// baseline engine, and builds the query datasets with their 2/3-1/3 splits.
func Setup(ctx context.Context, s Scale) (*Env, error) {
	if s.Docs <= 0 {
		s = DefaultScale
	}
	corpus := kb.Generate(kb.GenConfig{Docs: s.Docs, Seed: s.Seed})
	engine, err := core.BuildFromCorpus(ctx, corpus, core.Config{})
	if err != nil {
		return nil, err
	}
	prev := baseline.New()
	for _, d := range corpus.Docs {
		prev.Add(d.ID, d.Title+"\n"+strings.Join(d.Paragraphs, "\n"))
	}
	env := &Env{Scale: s, Corpus: corpus, Engine: engine, Prev: prev}
	human := corpus.HumanDataset(s.Human, s.Seed+100)
	keyword := corpus.KeywordDataset(s.Keyword, s.Seed+200)
	env.HumanVal, env.HumanTest = human.Split(s.Seed + 300)
	env.KeywordVal, env.KeywordTest = keyword.Split(s.Seed + 400)
	return env, nil
}

// UniAskRetriever returns the engine's document-level retriever with the
// given options.
func (e *Env) UniAskRetriever(opts search.Options) eval.Retriever {
	return eval.Retriever(e.Engine.Retriever(context.Background(), opts))
}

// PrevRetriever returns the previous engine as a document-level retriever.
func (e *Env) PrevRetriever() eval.Retriever {
	return func(query string) []string {
		res := e.Prev.Search(query, 50)
		out := make([]string, len(res))
		for i, r := range res {
			out[i] = r.DocID
		}
		return out
	}
}

// ---------------------------------------------------------------------------
// Table 1 — retrieval performance, UniAsk vs previous engine.

// Table1Result holds the four summaries of Table 1.
type Table1Result struct {
	HumanPrev, HumanUniAsk     eval.Summary
	KeywordPrev, KeywordUniAsk eval.Summary
}

// Table1 evaluates UniAsk (deployed HSS configuration) and the previous
// engine on the human and keyword test datasets.
func (e *Env) Table1() Table1Result {
	hss := e.UniAskRetriever(search.Options{})
	prev := e.PrevRetriever()
	return Table1Result{
		HumanPrev:     eval.Evaluate(e.HumanTest, prev),
		HumanUniAsk:   eval.Evaluate(e.HumanTest, hss),
		KeywordPrev:   eval.Evaluate(e.KeywordTest, prev),
		KeywordUniAsk: eval.Evaluate(e.KeywordTest, hss),
	}
}

// String renders the result in the layout of Table 1.
func (r Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Retrieval performance of UniAsk vs previous engine (test datasets)\n")
	fmt.Fprintf(&b, "%-8s | %-28s | %-28s\n", "", "Human Test Dataset", "Keyword Test Dataset")
	fmt.Fprintf(&b, "%-8s | %8s %8s %8s | %8s %8s %8s\n", "Metric", "Prev.", "UniAsk", "% Var", "Prev.", "UniAsk", "% Var")
	hp, hu := r.HumanPrev.PaperConvention().Values(), r.HumanUniAsk.PaperConvention().Values()
	kp, ku := r.KeywordPrev.PaperConvention().Values(), r.KeywordUniAsk.PaperConvention().Values()
	for i, name := range eval.MetricNames {
		fmt.Fprintf(&b, "%-8s | %8.4f %8.4f %+7.1f%% | %8.4f %8.4f %+7.1f%%\n",
			name, hp[i], hu[i], eval.PercentVar(hp[i], hu[i]),
			kp[i], ku[i], eval.PercentVar(kp[i], ku[i]))
	}
	fmt.Fprintf(&b, "answered | %7.1f%% %7.1f%%          | %7.1f%% %7.1f%%\n",
		100*r.HumanPrev.AnsweredRate(), 100*r.HumanUniAsk.AnsweredRate(),
		100*r.KeywordPrev.AnsweredRate(), 100*r.KeywordUniAsk.AnsweredRate())
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 — ablation: text-only and vector-only vs HSS.

// Table2Result holds percentage variations vs HSS per dataset/component.
type Table2Result struct {
	HumanText, HumanVector     eval.Metrics
	KeywordText, KeywordVector eval.Metrics
	// Raw summaries for inspection.
	HumanHSS, KeywordHSS eval.Summary
}

// Table2 runs the hybrid-search component ablation. The components are
// evaluated bare — semantic reranking is an HSS add-on, not part of either
// text or vector search, so the single-component runs disable it (as the
// magnitude of the paper's Table 2 losses implies).
func (e *Env) Table2() Table2Result {
	hss := e.UniAskRetriever(search.Options{})
	text := e.UniAskRetriever(search.Options{Mode: search.TextOnly, DisableSemanticRerank: true})
	vec := e.UniAskRetriever(search.Options{Mode: search.VectorOnly, DisableSemanticRerank: true})

	hHSS := eval.Evaluate(e.HumanTest, hss)
	kHSS := eval.Evaluate(e.KeywordTest, hss)
	return Table2Result{
		HumanHSS:      hHSS,
		KeywordHSS:    kHSS,
		HumanText:     eval.VarTable(hHSS, eval.Evaluate(e.HumanTest, text)),
		HumanVector:   eval.VarTable(hHSS, eval.Evaluate(e.HumanTest, vec)),
		KeywordText:   eval.VarTable(kHSS, eval.Evaluate(e.KeywordTest, text)),
		KeywordVector: eval.VarTable(kHSS, eval.Evaluate(e.KeywordTest, vec)),
	}
}

// String renders the result in the layout of Table 2.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Ablation on the components of Hybrid Search (%% var wrt HSS)\n")
	fmt.Fprintf(&b, "%-8s | %-21s | %-21s\n", "", "Human Test Dataset", "Keyword Test Dataset")
	fmt.Fprintf(&b, "%-8s | %10s %10s | %10s %10s\n", "Metric", "Text", "Vector", "Text", "Vector")
	ht, hv := r.HumanText.Values(), r.HumanVector.Values()
	kt, kv := r.KeywordText.Values(), r.KeywordVector.Values()
	for i, name := range eval.MetricNames {
		if name == "p@4" || name == "p@50" { // Table 2 omits p@4/p@50 rows
			continue
		}
		fmt.Fprintf(&b, "%-8s | %+9.1f%% %+9.1f%% | %+9.1f%% %+9.1f%%\n",
			name, ht[i], hv[i], kt[i], kv[i])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3 — query expansion and title boosting (human test dataset).

// Table3Result holds percentage variations vs HSS for each variant.
type Table3Result struct {
	QGA, MQ1, MQ2 eval.Metrics
	T5, T50, T500 eval.Metrics
}

// Table3 runs the query-expansion and title-boost experiments.
func (e *Env) Table3() Table3Result {
	hss := eval.Evaluate(e.HumanTest, e.UniAskRetriever(search.Options{}))
	run := func(opts search.Options) eval.Metrics {
		return eval.VarTable(hss, eval.Evaluate(e.HumanTest, e.UniAskRetriever(opts)))
	}
	return Table3Result{
		QGA:  run(search.Options{Expansion: search.QGA}),
		MQ1:  run(search.Options{Expansion: search.MQ1}),
		MQ2:  run(search.Options{Expansion: search.MQ2}),
		T5:   run(search.Options{TitleBoost: 5}),
		T50:  run(search.Options{TitleBoost: 50}),
		T500: run(search.Options{TitleBoost: 500}),
	}
}

// String renders the result in the layout of Table 3.
func (r Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: (A) query expansion (B) title boosting (%% var wrt HSS, Human Test Dataset)\n")
	fmt.Fprintf(&b, "%-8s | %8s %8s %8s | %8s %8s %8s\n", "Metric", "QGA", "MQ1", "MQ2", "T5", "T50", "T500")
	cols := [][]float64{r.QGA.Values(), r.MQ1.Values(), r.MQ2.Values(), r.T5.Values(), r.T50.Values(), r.T500.Values()}
	for i, name := range eval.MetricNames {
		if name == "p@4" || name == "p@50" {
			continue
		}
		fmt.Fprintf(&b, "%-8s | %+7.1f%% %+7.1f%% %+7.1f%% | %+7.1f%% %+7.1f%% %+7.1f%%\n",
			name, cols[0][i], cols[1][i], cols[2][i], cols[3][i], cols[4][i], cols[5][i])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 4 — index enrichment with LLM keywords.

// Table4Result holds percentage variations vs HSS for the enriched indexes.
type Table4Result struct {
	HumanKT, HumanKTC     eval.Metrics
	KeywordKT, KeywordKTC eval.Metrics
}

// Table4 rebuilds the index with keyword enrichment and compares HSS-KT and
// HSS-KTC against plain HSS.
func (e *Env) Table4(ctx context.Context) (Table4Result, error) {
	hssH := eval.Evaluate(e.HumanTest, e.UniAskRetriever(search.Options{}))
	hssK := eval.Evaluate(e.KeywordTest, e.UniAskRetriever(search.Options{}))

	// One enriched engine provides both variants: kwTitle and
	// kwTitleContent are separate searchable fields.
	enriched, err := core.BuildFromCorpus(ctx, e.Corpus, core.Config{
		Lexicon: e.Corpus.Lexicon(),
		Indexer: indexerEnrichedConfig(),
	})
	if err != nil {
		return Table4Result{}, err
	}
	retr := func(field string, ds kb.Dataset) eval.Summary {
		r := enriched.Retriever(context.Background(), search.Options{SearchKeywordsField: field})
		return eval.Evaluate(ds, eval.Retriever(r))
	}
	return Table4Result{
		HumanKT:    eval.VarTable(hssH, retr("kwTitle", e.HumanTest)),
		HumanKTC:   eval.VarTable(hssH, retr("kwTitleContent", e.HumanTest)),
		KeywordKT:  eval.VarTable(hssK, retr("kwTitle", e.KeywordTest)),
		KeywordKTC: eval.VarTable(hssK, retr("kwTitleContent", e.KeywordTest)),
	}, nil
}

// String renders the result in the layout of Table 4.
func (r Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Enriching the index with keywords (%% var wrt HSS)\n")
	fmt.Fprintf(&b, "%-8s | %-19s | %-19s\n", "", "Human Test Dataset", "Keyword Test Dataset")
	fmt.Fprintf(&b, "%-8s | %9s %9s | %9s %9s\n", "Metric", "HSS-KT", "HSS-KTC", "HSS-KT", "HSS-KTC")
	hk, hkc := r.HumanKT.Values(), r.HumanKTC.Values()
	kk, kkc := r.KeywordKT.Values(), r.KeywordKTC.Values()
	for i, name := range eval.MetricNames {
		fmt.Fprintf(&b, "%-8s | %+8.1f%% %+8.1f%% | %+8.1f%% %+8.1f%%\n",
			name, hk[i], hkc[i], kk[i], kkc[i])
	}
	return b.String()
}
