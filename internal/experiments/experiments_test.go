package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// The shape tests share one small environment; building it dominates the
// package's test time.
var (
	envOnce sync.Once
	testEnv *Env
	envErr  error
)

func env(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv, envErr = Setup(context.Background(),
			Scale{Docs: 2500, Human: 450, Keyword: 240, Seed: 1})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return testEnv
}

func TestSetupShape(t *testing.T) {
	e := env(t)
	if len(e.Corpus.Docs) != 2500 {
		t.Fatalf("docs = %d", len(e.Corpus.Docs))
	}
	if e.Engine.Index.Len() < 2500 {
		t.Fatalf("index chunks = %d", e.Engine.Index.Len())
	}
	if e.Prev.Len() != 2500 {
		t.Fatalf("baseline docs = %d", e.Prev.Len())
	}
	// 2/3 - 1/3 splits.
	if len(e.HumanVal.Queries) != 300 || len(e.HumanTest.Queries) != 150 {
		t.Fatalf("human split = %d/%d", len(e.HumanVal.Queries), len(e.HumanTest.Queries))
	}
	if len(e.KeywordVal.Queries) != 160 || len(e.KeywordTest.Queries) != 80 {
		t.Fatalf("keyword split = %d/%d", len(e.KeywordVal.Queries), len(e.KeywordTest.Queries))
	}
}

// TestTable1Shape checks the headline claims of Table 1: the previous
// engine serves only ~1/5 of natural-language questions while UniAsk serves
// all of them; UniAsk's recall and MRR improvements on the human dataset
// are massive; on the keyword dataset the two systems are roughly
// comparable with UniAsk slightly behind.
func TestTable1Shape(t *testing.T) {
	r := env(t).Table1()

	// UniAsk answers every query; the previous engine only a small share of
	// the human questions (paper: 19.1%) but nearly all keyword queries.
	if got := r.HumanUniAsk.AnsweredRate(); got != 1 {
		t.Errorf("UniAsk human answered = %.2f, want 1.0", got)
	}
	if got := r.HumanPrev.AnsweredRate(); got < 0.08 || got > 0.40 {
		t.Errorf("Prev human answered = %.2f, want ~0.2", got)
	}
	if got := r.KeywordPrev.AnsweredRate(); got < 0.9 {
		t.Errorf("Prev keyword answered = %.2f, want ~1.0", got)
	}

	// Human dataset: recall and MRR over all queries improve by several
	// hundred percent (paper: +464% to +715%).
	hPrev, hUni := r.HumanPrev.OverAll, r.HumanUniAsk.OverAll
	if hUni.R50 < 2*hPrev.R50 {
		t.Errorf("human r@50: prev %.3f uniask %.3f, want >2x", hPrev.R50, hUni.R50)
	}
	if hUni.MRR < 2*hPrev.MRR {
		t.Errorf("human MRR: prev %.3f uniask %.3f, want >2x", hPrev.MRR, hUni.MRR)
	}

	// Keyword dataset: near-parity, UniAsk within ~20% below on MRR (the
	// paper reports -4.1%).
	kPrev, kUni := r.KeywordPrev.OverAll, r.KeywordUniAsk.OverAll
	if kUni.MRR < 0.75*kPrev.MRR {
		t.Errorf("keyword MRR: prev %.3f uniask %.3f, UniAsk too far behind", kPrev.MRR, kUni.MRR)
	}
	if kUni.MRR > 1.25*kPrev.MRR {
		t.Errorf("keyword MRR: prev %.3f uniask %.3f, UniAsk should not dominate", kPrev.MRR, kUni.MRR)
	}
}

// TestTable2Shape checks the ablation contrasts: both single components are
// worse than hybrid on the human dataset, text-only degrades more than
// vector-only there, and vector-only degrades more than text-only on the
// keyword dataset.
func TestTable2Shape(t *testing.T) {
	r := env(t).Table2()

	if r.HumanText.MRR >= 0 {
		t.Errorf("human text-only MRR var = %+.1f%%, want negative", r.HumanText.MRR)
	}
	if r.HumanVector.MRR >= 0 {
		t.Errorf("human vector-only MRR var = %+.1f%%, want negative", r.HumanVector.MRR)
	}
	// Text loses more than vector on human questions (paraphrase gap).
	if r.HumanText.MRR >= r.HumanVector.MRR {
		t.Errorf("human: text (%+.1f%%) should lose more than vector (%+.1f%%)",
			r.HumanText.MRR, r.HumanVector.MRR)
	}
	// Vector loses more than text on keyword queries (jargon opacity).
	if r.KeywordVector.MRR >= r.KeywordText.MRR {
		t.Errorf("keyword: vector (%+.1f%%) should lose more than text (%+.1f%%)",
			r.KeywordVector.MRR, r.KeywordText.MRR)
	}
}

// TestTable3Shape checks that no query-expansion variant helps (QGA hurts
// clearly; MQ1/MQ2 are at best neutral) and title boosting is ~neutral with
// slight degradation of deep recall at extreme weights.
func TestTable3Shape(t *testing.T) {
	r := env(t).Table3()

	if r.QGA.MRR > -5 {
		t.Errorf("QGA MRR var = %+.1f%%, want clearly negative (paper ~-15%%)", r.QGA.MRR)
	}
	if r.MQ1.MRR > 3 {
		t.Errorf("MQ1 MRR var = %+.1f%%, want <= ~0", r.MQ1.MRR)
	}
	if r.MQ2.MRR > 3 {
		t.Errorf("MQ2 MRR var = %+.1f%%, want <= ~0", r.MQ2.MRR)
	}
	// Title boosting never yields a significant improvement.
	for name, m := range map[string]float64{"T5": r.T5.MRR, "T50": r.T50.MRR, "T500": r.T500.MRR} {
		if m > 5 {
			t.Errorf("%s MRR var = %+.1f%%, want ~0", name, m)
		}
	}
	// Over-boosting does not help deep recall (paper: r@50 -5%).
	if r.T500.R50 > 1 {
		t.Errorf("T500 r@50 var = %+.1f%%, want <= ~0", r.T500.R50)
	}
}

// TestTable5Shape checks the guardrail distribution: the vast majority of
// answers pass, the citation guardrail fires a few percent of the time, and
// the content filter blocks the injected profane questions.
func TestTable5Shape(t *testing.T) {
	r, err := env(t).Table5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 150 {
		t.Fatalf("total = %d", r.Total)
	}
	if rate := r.Rate(r.Generated); rate < 85 {
		t.Errorf("generated = %.1f%%, want ~94%%", rate)
	}
	if rate := r.Rate(r.Citation); rate > 10 {
		t.Errorf("citation guardrail = %.1f%%, want small", rate)
	}
	if r.ContentFilter == 0 {
		t.Error("content filter never fired on injected profanity")
	}
	sum := r.Generated + r.Citation + r.Rouge + r.Clarification + r.ContentFilter
	if sum != r.Total {
		t.Errorf("outcome counts %d != total %d", sum, r.Total)
	}
}

// TestPilotsShape checks the §8 dynamics: the guardrail bug depresses
// release 1, the fix restores ~90% proper answers, positive feedback lands
// in the high-70s/80s, and the UAT blocks all out-of-scope questions.
func TestPilotsShape(t *testing.T) {
	r := env(t).Pilots(context.Background())
	if r.Phase1R1.ProperAnswers >= r.Phase1R2.ProperAnswers {
		t.Errorf("release 1 (%.2f) should be worse than release 2 (%.2f)",
			r.Phase1R1.ProperAnswers, r.Phase1R2.ProperAnswers)
	}
	if r.Phase1R2.ProperAnswers < 0.80 {
		t.Errorf("release 2 proper answers = %.2f, want ~0.9", r.Phase1R2.ProperAnswers)
	}
	if r.Phase2.PositiveFeedback < 0.6 || r.Phase2.PositiveFeedback > 0.95 {
		t.Errorf("phase 2 positive = %.2f, want ~0.8", r.Phase2.PositiveFeedback)
	}
	if r.UAT.GuardrailsOK < 0.8 {
		t.Errorf("UAT guardrails ok = %.2f, want ~0.9+", r.UAT.GuardrailsOK)
	}
	if r.UAT.Correct < 0.5 {
		t.Errorf("UAT correct = %.2f, want high", r.UAT.Correct)
	}
	if r.UAT.ImproperGuardrails > 0.15 {
		t.Errorf("UAT improper guardrails = %.2f, want small", r.UAT.ImproperGuardrails)
	}
}

// TestFigure2Shape checks the load test: ~7200 requests, a few percent
// failures, concentrated at peak load (paper: 267/7200).
func TestFigure2Shape(t *testing.T) {
	rep := Figure2()
	if rep.TotalRequests < 7100 || rep.TotalRequests > 7300 {
		t.Fatalf("requests = %d", rep.TotalRequests)
	}
	rate := rep.FailureRate()
	if rate < 0.005 || rate > 0.10 {
		t.Errorf("failure rate = %.3f, want ~0.037", rate)
	}
	if rep.Buckets[0].Failures != 0 {
		t.Error("failures in the first bucket; should be at peak only")
	}
	if rep.Buckets[len(rep.Buckets)-1].Failures == 0 {
		t.Error("no failures at peak")
	}
}

// TestFigure3Shape checks the dashboard snapshot after replayed traffic.
func TestFigure3Shape(t *testing.T) {
	d, err := env(t).Figure3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Queries != 150 {
		t.Fatalf("queries = %d", d.Queries)
	}
	if d.Users == 0 || d.Users > 40 {
		t.Fatalf("users = %d", d.Users)
	}
	if d.Feedbacks == 0 {
		t.Fatal("no feedback recorded")
	}
}

func TestTableRenderings(t *testing.T) {
	e := env(t)
	t1 := e.Table1().String()
	if !strings.Contains(t1, "Table 1") || !strings.Contains(t1, "MRR") {
		t.Errorf("table 1 rendering:\n%s", t1)
	}
	t2 := e.Table2().String()
	if !strings.Contains(t2, "Table 2") || strings.Contains(t2, "p@4") {
		t.Errorf("table 2 rendering:\n%s", t2)
	}
}

// TestPostLaunchShape checks the headline business result: UniAsk reduces
// the volume of search-failure tickets meaningfully (the paper reports
// ~20%), without eliminating the tickets caused by genuine KB gaps.
func TestPostLaunchShape(t *testing.T) {
	r, err := env(t).PostLaunch(context.Background(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reduction < 0.08 || r.Reduction > 0.45 {
		t.Errorf("ticket reduction = %.1f%%, want ~20%%", 100*r.Reduction)
	}
	// Tickets do not vanish: KB-gap queries keep generating them.
	if r.UniAsk.ExpectedTkt <= 0 {
		t.Error("UniAsk ticket volume dropped to zero; gap queries should persist")
	}
	if r.Prev.ExpectedTkt <= r.UniAsk.ExpectedTkt {
		t.Error("no reduction at all")
	}
}

// TestAdapterExperiment checks the §11 embedding-adapter machinery: the
// training loss decreases to a small value and the adapted retriever stays
// within a few percent of the baseline (the synthetic embedder leaves
// little headroom, so the expected outcome is neutrality, not a regression).
func TestAdapterExperiment(t *testing.T) {
	r, err := env(t).FutureWorkAdapter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Triplets < 100 {
		t.Fatalf("too few triplets mined: %d", r.Triplets)
	}
	if r.FinalLoss > 0.3 {
		t.Errorf("training did not converge: final loss %.3f", r.FinalLoss)
	}
	if gain := r.MRRGain(); gain < -0.10 || gain > 0.25 {
		t.Errorf("adapted MRR gain = %+.1f%%, outside the sane band", 100*gain)
	}
}

// TestKnowledgeGraphExperiment checks the §11 ontological guardrail: it
// agrees with the ROUGE guardrail on off-context answers while flagging
// few valid ones.
func TestKnowledgeGraphExperiment(t *testing.T) {
	r, err := env(t).FutureWorkKnowledgeGraph(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.GraphNodes < 50 {
		t.Fatalf("graph too small: %d", r.GraphNodes)
	}
	if r.ValidTotal == 0 {
		t.Fatal("no valid answers to compare against")
	}
	if rate := float64(r.ValidFlagged) / float64(r.ValidTotal); rate > 0.15 {
		t.Errorf("ontological guardrail flags %.0f%% of valid answers", 100*rate)
	}
	// The drift sample is tiny at test scale (a handful of rouge-blocked
	// answers); only a systematic miss is meaningful.
	if r.DriftTotal >= 3 && r.DriftCaught == 0 {
		t.Error("ontological guardrail caught none of the drift answers")
	}
}

// TestGroundednessUnreliable reproduces the §7 finding: the LLM-as-judge
// groundedness metric fails to return meaningful results for a large share
// of answers (which is why the paper deferred to user testing).
func TestGroundednessUnreliable(t *testing.T) {
	r, err := env(t).Groundedness(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Total < 50 {
		t.Fatalf("too few judged answers: %d", r.Total)
	}
	if rate := r.MeaningfulRate(); rate > 0.6 {
		t.Errorf("judge meaningful rate = %.0f%%; the paper found it unreliable", 100*rate)
	}
	if r.Meaningful > 0 && (r.MeanScore < 1 || r.MeanScore > 5) {
		t.Errorf("mean score out of range: %.1f", r.MeanScore)
	}
}
