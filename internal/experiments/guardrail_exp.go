package experiments

import (
	"context"
	"fmt"
	"strings"

	"uniask/internal/guardrails"
	"uniask/internal/indexer"
	"uniask/internal/kb"
	"uniask/internal/llm"
)

// indexerEnrichedConfig is the Table-4 index configuration.
func indexerEnrichedConfig() indexer.Config {
	return indexer.Config{KeywordsFromTitle: true, KeywordsFromTitleContent: true}
}

// ---------------------------------------------------------------------------
// Table 5 — answer generation rate and guardrail distribution.

// Table5Result is the guardrail trigger distribution over a dataset.
type Table5Result struct {
	Total         int
	Generated     int // answers that passed all guardrails
	Citation      int
	Rouge         int
	Clarification int
	ContentFilter int
}

// Rate returns count/total as a percentage.
func (r Table5Result) Rate(count int) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(count) / float64(r.Total)
}

// Table5 runs the full RAG pipeline over the human test dataset and counts
// guardrail outcomes. A small share of frustrated phrasings is mixed in to
// exercise the content filter, standing in for the real user questions that
// trip it in production (0.5% in the paper).
func (e *Env) Table5(ctx context.Context) (Table5Result, error) {
	ds := e.HumanTest
	// Inject profanity-laced variants at ~0.7% (the paper measured the
	// Azure content filter blocking 0.5% of real questions).
	queries := make([]kb.Query, len(ds.Queries))
	copy(queries, ds.Queries)
	for i := range queries {
		if i%150 == 149 {
			queries[i].Text = "questo maledetto sistema! " + queries[i].Text
		}
	}
	var r Table5Result
	for _, q := range queries {
		resp, err := e.Engine.Ask(ctx, q.Text)
		if err != nil {
			return r, err
		}
		r.Total++
		switch resp.Guardrail {
		case guardrails.None:
			r.Generated++
		case guardrails.Citation:
			r.Citation++
		case guardrails.Rouge:
			r.Rouge++
		case guardrails.Clarification:
			r.Clarification++
		case guardrails.Content:
			r.ContentFilter++
		}
	}
	return r, nil
}

// String renders the result in the layout of Table 5.
func (r Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Answer generation rate (Human Test Dataset, %d questions)\n", r.Total)
	fmt.Fprintf(&b, "%-38s %8s\n", "Guardrail Type", "% Answers")
	fmt.Fprintf(&b, "%-38s %7.1f%%\n", "Generated answers (no guardrails)", r.Rate(r.Generated))
	fmt.Fprintf(&b, "%-38s %7.1f%%\n", "Citation guardrail", r.Rate(r.Citation))
	fmt.Fprintf(&b, "%-38s %7.1f%%\n", "Rouge guardrail", r.Rate(r.Rouge))
	fmt.Fprintf(&b, "%-38s %7.1f%%\n", "Require clarification guardrail", r.Rate(r.Clarification))
	fmt.Fprintf(&b, "%-38s %7.1f%%\n", "Content Filter", r.Rate(r.ContentFilter))
	return b.String()
}

// ---------------------------------------------------------------------------
// §7 — the groundedness metric the paper tried and abandoned.

// GroundednessResult summarizes the LLM-as-judge groundedness evaluation.
type GroundednessResult struct {
	Total int
	// Meaningful counts judge responses carrying a parseable score.
	Meaningful int
	// MeanScore is the mean of the parseable scores.
	MeanScore float64
}

// MeaningfulRate is the share of judge calls that produced a usable score.
func (r GroundednessResult) MeaningfulRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Meaningful) / float64(r.Total)
}

// String renders the evaluation summary.
func (r GroundednessResult) String() string {
	return fmt.Sprintf(
		"Groundedness (LLM-as-judge, §7): %d answers judged, %.0f%% meaningful scores (mean %.1f)\n"+
			"  -> reproduces the paper's finding that groundedness \"failed to return\n"+
			"     meaningful results in the large majority of cases\"; generation quality\n"+
			"     was therefore assessed with real users (§8).",
		r.Total, 100*r.MeaningfulRate(), r.MeanScore)
}

// Groundedness runs the LLM-as-judge metric over the human test set's
// generated answers.
func (e *Env) Groundedness(ctx context.Context) (GroundednessResult, error) {
	var r GroundednessResult
	scoreSum := 0
	for _, q := range e.HumanTest.Queries {
		resp, err := e.Engine.Ask(ctx, q.Text)
		if err != nil {
			return r, err
		}
		if !resp.AnswerValid {
			continue
		}
		var contexts []string
		for i, d := range resp.Documents {
			if i == 4 {
				break
			}
			contexts = append(contexts, d.Content)
		}
		judged, err := e.Engine.Client.Complete(ctx,
			llm.BuildGroundednessPrompt(q.Text, resp.GeneratedAnswer, contexts))
		if err != nil {
			return r, err
		}
		r.Total++
		if score, ok := llm.ParseGroundedness(judged.Content); ok {
			r.Meaningful++
			scoreSum += score
		}
	}
	if r.Meaningful > 0 {
		r.MeanScore = float64(scoreSum) / float64(r.Meaningful)
	}
	return r, nil
}
