package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"uniask/internal/adapter"
	"uniask/internal/eval"
	"uniask/internal/guardrails"
	"uniask/internal/kgraph"
	"uniask/internal/search"
)

// ---------------------------------------------------------------------------
// §11 future work — embedding adapters.

// AdapterResult compares retrieval before and after training a query-side
// embedding adapter on the validation dataset.
type AdapterResult struct {
	Before, After eval.Summary
	FinalLoss     float64
	Triplets      int
}

// MRRGain is the relative MRR improvement of the adapted retriever.
func (r AdapterResult) MRRGain() float64 {
	if r.Before.OverAll.MRR == 0 {
		return 0
	}
	return r.After.OverAll.MRR/r.Before.OverAll.MRR - 1
}

// String renders the comparison.
func (r AdapterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Future work (§11): query-side embedding adapter\n")
	fmt.Fprintf(&b, "  (on the synthetic substrate the base embedder is already calibrated\n")
	fmt.Fprintf(&b, "   to the concept lexicon, so the adapter's headroom is marginal)\n")
	fmt.Fprintf(&b, "  trained on %d validation triplets, final loss %.3f\n", r.Triplets, r.FinalLoss)
	fmt.Fprintf(&b, "  human test  MRR: %.4f -> %.4f (%+.1f%%)\n",
		r.Before.OverAll.MRR, r.After.OverAll.MRR, 100*r.MRRGain())
	fmt.Fprintf(&b, "  human test  r@4: %.4f -> %.4f\n", r.Before.OverAll.R4, r.After.OverAll.R4)
	fmt.Fprintf(&b, "  human test hit@4: %.4f -> %.4f\n", r.Before.OverAll.Hit4, r.After.OverAll.Hit4)
	return b.String()
}

// FutureWorkAdapter mines (query, positive chunk, hard negative chunk)
// triplets from the human validation set, trains a low-rank adapter on
// query embeddings, and evaluates vector-only retrieval on the human test
// set with and without the adapter. Vector-only retrieval isolates the
// embedding contribution the adapter is supposed to improve.
func (e *Env) FutureWorkAdapter(ctx context.Context) (AdapterResult, error) {
	res := AdapterResult{}

	// Mine triplets from the validation split. Negatives are random
	// off-topic chunks: with facet-level ground truth the hardest negatives
	// share the query's very concepts, and training against them teaches
	// the adapter anti-topic directions that destroy generalization.
	rng := rand.New(rand.NewSource(e.Scale.Seed + 41))
	var triplets []adapter.Triplet
	for _, q := range e.HumanVal.Queries {
		relevant := make(map[string]bool, len(q.Relevant))
		for _, id := range q.Relevant {
			relevant[id] = true
		}
		qvec := e.Engine.Embedder.Embed(q.Text)
		// Positive: the content vector of the first chunk of a relevant doc.
		pos, ok := e.Engine.Index.DocByID(q.Relevant[0] + "#0")
		if !ok {
			continue
		}
		// Negative: a random chunk from an unrelated document.
		var negVec = pos.Vectors["contentVector"]
		for tries := 0; tries < 10; tries++ {
			doc := e.Engine.Index.Doc(rng.Intn(e.Engine.Index.Len()))
			if !relevant[doc.ParentID] {
				negVec = doc.Vectors["contentVector"]
				break
			}
		}
		triplets = append(triplets, adapter.Triplet{
			Query:    qvec,
			Positive: pos.Vectors["contentVector"],
			Negative: negVec,
		})
	}
	res.Triplets = len(triplets)

	ad := adapter.New(e.Engine.Embedder.Dim(), 4, e.Scale.Seed+42)
	loss, err := ad.Train(triplets, adapter.TrainConfig{Epochs: 30, Margin: 0.5, Seed: e.Scale.Seed + 43})
	if err != nil {
		return res, err
	}
	res.FinalLoss = loss

	opts := search.Options{Mode: search.VectorOnly, DisableSemanticRerank: true}
	res.Before = eval.Evaluate(e.HumanTest, e.UniAskRetriever(opts))

	adapted := &search.Searcher{
		Index:    e.Engine.Index,
		Embedder: &adapter.Embedder{Base: e.Engine.Embedder, Adapter: ad},
		Reranker: nil,
		LLM:      e.Engine.Client,
	}
	res.After = eval.Evaluate(e.HumanTest, func(query string) []string {
		results, err := adapted.Search(ctx, query, opts)
		if err != nil {
			return nil
		}
		return search.ParentRanking(results)
	})
	return res, nil
}

// ---------------------------------------------------------------------------
// §11 future work — knowledge graph for ontological answer validation.

// OntologyResult compares the knowledge-graph guardrail with the deployed
// ROUGE-L guardrail on the human test set.
type OntologyResult struct {
	// GraphNodes is the size of the concept graph.
	GraphNodes int
	// ValidTotal / ValidFlagged: answers that passed the deployed
	// guardrails, and how many of them the ontological check would flag
	// (false positives of the new guardrail).
	ValidTotal, ValidFlagged int
	// DriftTotal / DriftCaught: answers the ROUGE guardrail blocked as
	// off-context, and how many the ontological check also catches
	// (agreement on true hallucinations).
	DriftTotal, DriftCaught int
}

// String renders the comparison.
func (r OntologyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Future work (§11): knowledge-graph ontological guardrail\n")
	fmt.Fprintf(&b, "  concept graph: %d nodes\n", r.GraphNodes)
	fmt.Fprintf(&b, "  off-context (rouge-blocked) answers also caught: %d/%d\n", r.DriftCaught, r.DriftTotal)
	fmt.Fprintf(&b, "  valid answers wrongly flagged:                   %d/%d\n", r.ValidFlagged, r.ValidTotal)
	return b.String()
}

// FutureWorkKnowledgeGraph builds the concept graph from the corpus and
// evaluates the ontological guardrail against the deployed pipeline's
// verdicts on the human test set.
func (e *Env) FutureWorkKnowledgeGraph(ctx context.Context) (OntologyResult, error) {
	var docs []kgraph.DocText
	for _, d := range e.Corpus.Docs {
		text := d.Title
		for _, p := range d.Paragraphs {
			text += " " + p
		}
		docs = append(docs, kgraph.DocText{ID: d.ID, Text: text})
	}
	g := kgraph.Build(docs, e.Corpus.Lexicon())
	g.StrictPrefixes = []string{"ent", "jar"} // the corpus' subject classes
	res := OntologyResult{GraphNodes: g.Nodes()}

	for _, q := range e.HumanTest.Queries {
		resp, err := e.Engine.Ask(ctx, q.Text)
		if err != nil {
			return res, err
		}
		verdict := g.CheckAnswer(q.Text, resp.GeneratedAnswer)
		switch {
		case resp.AnswerValid:
			res.ValidTotal++
			if !verdict.OnTopic {
				res.ValidFlagged++
			}
		case resp.Guardrail == guardrails.Rouge:
			res.DriftTotal++
			if !verdict.OnTopic {
				res.DriftCaught++
			}
		}
	}
	return res, nil
}
