package experiments

import (
	"context"

	"uniask/internal/kb"
	"uniask/internal/tickets"
)

// StreamMix describes the production query stream used for the post-launch
// ticket analysis. Most employees keep their 20-year keyword habit right
// after launch (§8's user-education problem); a minority adopts
// natural-language questions; and a substantial share of ticket-prone
// queries concerns information that is simply absent from the knowledge
// base — no search system can rescue those, which is why the overall
// reduction lands around 20% rather than the 5x retrieval improvement of
// Table 1.
type StreamMix struct {
	Keyword float64 // keyword-habit queries (answer is in the KB)
	Human   float64 // natural-language questions (answer is in the KB)
	Gap     float64 // questions whose answer is not in the KB at all
}

// DefaultStreamMix is the calibrated post-launch stream.
func DefaultStreamMix() StreamMix {
	return StreamMix{Keyword: 0.65, Human: 0.05, Gap: 0.30}
}

// PostLaunchResult holds the ticket tallies of both systems.
type PostLaunchResult struct {
	Prev, UniAsk *tickets.Tally
	Reduction    float64
}

// String renders the comparison report.
func (r PostLaunchResult) String() string { return tickets.Report(r.Prev, r.UniAsk) }

// PostLaunch replays an identical query stream through the previous engine
// and through UniAsk, classifies each interaction from the employee's point
// of view, and estimates the relative reduction in search-failure tickets.
func (e *Env) PostLaunch(ctx context.Context, totalQueries int) (PostLaunchResult, error) {
	if totalQueries <= 0 {
		totalQueries = 600
	}
	mix := DefaultStreamMix()
	seed := e.Scale.Seed + 700

	nKw := int(mix.Keyword * float64(totalQueries))
	nHu := int(mix.Human * float64(totalQueries))
	nGap := totalQueries - nKw - nHu

	var stream []kb.Query
	stream = append(stream, e.Corpus.KeywordDataset(nKw, seed+1).Queries...)
	stream = append(stream, e.Corpus.HumanDataset(nHu, seed+2).Queries...)
	stream = append(stream, e.Corpus.OutOfScopeDataset(nGap, seed+3).Queries...)

	prop := tickets.DefaultPropensities()
	prev := tickets.NewTally("previous")
	uni := tickets.NewTally("uniask")

	for _, q := range stream {
		relevant := make(map[string]bool, len(q.Relevant))
		for _, id := range q.Relevant {
			relevant[id] = true
		}

		// Previous engine: a ranked document list or nothing.
		var prevIDs []string
		for _, r := range e.Prev.Search(q.Text, 50) {
			prevIDs = append(prevIDs, r.DocID)
		}
		prev.Record(q.Text, classifyDocList(relevant, prevIDs, false), prop, seed+10)

		// UniAsk: generated answer plus the document list.
		resp, err := e.Engine.Ask(ctx, q.Text)
		if err != nil {
			return PostLaunchResult{}, err
		}
		var parents []string
		seen := map[string]bool{}
		for _, d := range resp.Documents {
			if !seen[d.ParentID] {
				seen[d.ParentID] = true
				parents = append(parents, d.ParentID)
			}
		}
		answered := false
		if resp.AnswerValid {
			for _, c := range resp.Citations {
				if relevant[parentOf(c)] {
					answered = true
					break
				}
			}
		}
		uni.Record(q.Text, classifyDocList(relevant, parents, answered), prop, seed+11)
	}
	return PostLaunchResult{Prev: prev, UniAsk: uni, Reduction: tickets.Reduction(prev, uni)}, nil
}

// classifyDocList maps a retrieval outcome to the employee's experience:
// answeredWell (a valid grounded answer), docs-only (a relevant document
// visible in the top 10), irrelevant (results, none relevant), or nothing.
func classifyDocList(relevant map[string]bool, ranked []string, answeredWell bool) tickets.Outcome {
	if answeredWell {
		return tickets.AnsweredWell
	}
	if len(ranked) == 0 {
		return tickets.Nothing
	}
	for i, id := range ranked {
		if i >= 10 {
			break
		}
		if relevant[id] {
			return tickets.DocsOnly
		}
	}
	return tickets.Irrelevant
}
