package search

import (
	"context"
	"fmt"
	"testing"

	"uniask/internal/index"
	"uniask/internal/vector"
)

func TestCachePoolPartitioning(t *testing.T) {
	p := NewCachePool(100, 30)

	a := p.Partition("bank-a", 0) // default share
	if a == nil {
		t.Fatal("partition with default share is nil")
	}
	if again := p.Partition("bank-a", 50); again != a {
		t.Fatal("second Partition call for the same tenant returned a different cache")
	}
	b := p.Partition("bank-b", 60)
	if b == nil || b == a {
		t.Fatal("partitions must be distinct caches")
	}
	// Budget: 100 total, 30 to a, 60 to b → 10 remain; c asks 50, clamped.
	p.Partition("bank-c", 50)
	// d arrives with the budget exhausted: still gets a minimal partition.
	if d := p.Partition("bank-d", 20); d == nil {
		t.Fatal("exhausted budget must yield a minimal partition, not nil")
	}
	// Opt-out tenant gets no cache at all.
	if e := p.Partition("bank-e", -1); e != nil {
		t.Fatal("negative share must disable caching")
	}

	rows := p.Stats()
	want := map[string]int{"bank-a": 30, "bank-b": 60, "bank-c": 10, "bank-d": 1}
	if len(rows) != len(want) {
		t.Fatalf("stats rows = %d, want %d (%+v)", len(rows), len(want), rows)
	}
	for _, r := range rows {
		if want[r.Tenant] != r.Share {
			t.Errorf("tenant %s share = %d, want %d", r.Tenant, r.Share, want[r.Tenant])
		}
	}
}

// TestCachePoolPartitionIsolation is the satellite requirement: tenant A's
// ingest (which rotates A's stats snapshot and floods A's cache) must never
// evict tenant B's cached queries. Isolation is structural — disjoint
// LRUs — and this test proves it end to end through two searchers.
func TestCachePoolPartitionIsolation(t *testing.T) {
	pool := NewCachePool(0, 4)

	// Two tenants, two engines: same corpus shape, disjoint cache partitions.
	sA, _ := buildSearcher(t)
	sA.Cache = pool.Partition("bank-a", 4)
	sB, embB := buildSearcher(t)
	ceB := &embedCounter{inner: embB}
	sB.Embedder = ceB
	sB.Cache = pool.Partition("bank-b", 4)

	ctx := context.Background()
	queryB := "bloccare la carta di credito"
	if _, err := sB.Search(ctx, queryB, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ceB.n.Load(); got != 1 {
		t.Fatalf("priming search ran %d embeds", got)
	}

	// Tenant A churns: ingest (rotates A's snapshot key) plus a flood of
	// distinct queries far beyond A's share, which would evict everything in
	// a shared LRU.
	for i := 0; i < 3; i++ {
		err := sA.Index.(*index.Index).Add(index.Document{
			ID: fmt.Sprintf("churn%d#0", i), ParentID: fmt.Sprintf("churn%d", i),
			Fields: map[string]string{"title": "Nuova circolare", "content": fmt.Sprintf("Aggiornamento numero %d alla procedura operativa.", i)},
			Vectors: map[string]vector.Vector{
				"titleVector":   sA.Embedder.Embed("Nuova circolare"),
				"contentVector": sA.Embedder.Embed("procedura operativa"),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if _, err := sA.Search(ctx, fmt.Sprintf("procedura operativa %d %d", i, j), Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Tenant B's entry must still be warm: the repeat is a hit, no recompute.
	if _, err := sB.Search(ctx, queryB, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ceB.n.Load(); got != 1 {
		t.Fatalf("tenant A churn evicted tenant B's entry: B recomputed (embeds = %d, want 1)", got)
	}
	stB := sB.Cache.Stats()
	if stB.Hits != 1 {
		t.Fatalf("tenant B stats = %+v, want exactly 1 hit", stB)
	}
	// And A's own partition stayed within its share.
	if stA := sA.Cache.Stats(); stA.Entries > 4 {
		t.Fatalf("tenant A partition holds %d entries, share is 4", stA.Entries)
	}
}
