package search

import (
	"context"
	"testing"

	"uniask/internal/trace"
)

// BenchmarkTraceOverheadSearchText compares the retrieval path on an
// untraced context against BenchmarkTraceOverheadSearchTraced below: the
// instrumentation calls (trace.Start in every component and shard, the ctx
// observer dispatch) are all live, but head sampling rejected the request,
// so every one must be a no-op. The two numbers bracket the per-query cost
// of tracing; the sampled-out delta is the one the hot path pays always.
func BenchmarkTraceOverheadSearchText(b *testing.B) {
	s := buildLargeSearcher(b)
	s.Cache = nil // measure the pipeline, not the cache
	tr := trace.New(trace.Config{SampleRate: -1})
	ctx, req := tr.StartRequest(context.Background(), "bench")
	defer req.End()
	query := "bloccare la carta di credito"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(ctx, query, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverheadSearchTraced is the same retrieval with a sampled
// trace recording every component and shard span.
func BenchmarkTraceOverheadSearchTraced(b *testing.B) {
	s := buildLargeSearcher(b)
	s.Cache = nil
	tr := trace.New(trace.Config{Capacity: 64})
	query := "bloccare la carta di credito"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, req := tr.StartRequest(context.Background(), "bench")
		if _, err := s.Search(ctx, query, Options{}); err != nil {
			b.Fatal(err)
		}
		req.End()
	}
}
