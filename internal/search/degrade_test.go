package search

// Regression tests for graceful degradation: failures of the remote-shaped
// dependencies (embedding, LLM expansion, individual retrieval legs) shed
// work instead of aborting the query.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/fusion"
	"uniask/internal/pipeline"
	"uniask/internal/vector"
)

// brokenEmbedder implements both Embedder and CtxEmbedder; EmbedCtx always
// fails, the way a down remote embedding API would.
type brokenEmbedder struct{ dim int }

func (b brokenEmbedder) Embed(text string) vector.Vector { return make(vector.Vector, b.dim) }
func (b brokenEmbedder) Dim() int                        { return b.dim }
func (b brokenEmbedder) EmbedCtx(ctx context.Context, text string) (vector.Vector, error) {
	return nil, errors.New("embedding service down")
}

func TestEmbedErrorDegradesToTextOnly(t *testing.T) {
	s, _ := buildSearcher(t)
	s.Embedder = brokenEmbedder{dim: 64}

	res, deg, err := s.SearchDegraded(context.Background(), "bloccare la carta di credito", Options{})
	if err != nil {
		t.Fatalf("hybrid search with broken embedder errored: %v", err)
	}
	if !deg.VectorSkipped || !deg.Degraded() {
		t.Fatalf("degradation not reported: %+v", deg)
	}
	if len(res) == 0 || res[0].ParentID != "d1" {
		t.Fatalf("BM25-only degraded results = %+v", res)
	}
	// The answer must match a genuine text-only search: same docs, and the
	// reranker ran without its semantic component.
	textOnly, err := s.Search(context.Background(), "bloccare la carta di credito", Options{Mode: TextOnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(textOnly) {
		t.Fatalf("degraded hybrid returned %d results, text-only %d", len(res), len(textOnly))
	}
	for i := range res {
		if res[i].ChunkID != textOnly[i].ChunkID {
			t.Fatalf("degraded ranking diverges from text-only at %d: %s vs %s", i, res[i].ChunkID, textOnly[i].ChunkID)
		}
	}
}

func TestEmbedErrorVectorOnlyStillAborts(t *testing.T) {
	s, _ := buildSearcher(t)
	s.Embedder = brokenEmbedder{dim: 64}
	_, _, err := s.SearchDegraded(context.Background(), "sospendere la tessera", Options{Mode: VectorOnly})
	if err == nil {
		t.Fatal("vector-only search with broken embedder should error: there is nothing to degrade to")
	}
}

func TestEmbedErrorDegradationObserved(t *testing.T) {
	s, _ := buildSearcher(t)
	s.Embedder = brokenEmbedder{dim: 64}
	var shed []pipeline.StageInfo
	s.Observer = pipeline.ObserverFunc(func(info pipeline.StageInfo) {
		if info.Stage == pipeline.StageDegraded {
			shed = append(shed, info)
		}
	})
	if _, _, err := s.SearchDegraded(context.Background(), "carta", Options{}); err != nil {
		t.Fatal(err)
	}
	if len(shed) == 0 {
		t.Fatal("no degraded-stage report for the shed embedding")
	}
	if shed[0].Err == nil {
		t.Fatal("degraded-stage report lost the cause")
	}
}

func TestComponentFailureShedsNotAborts(t *testing.T) {
	s, _ := buildSearcher(t)
	okRanking := fusion.Ranking{"d1#0", "d1#1"}
	comps := []component{
		{kind: "text", run: func(ctx context.Context) (fusion.Ranking, int, error) {
			return okRanking, 0, nil
		}},
		{kind: "vector:contentVector", run: func(ctx context.Context) (fusion.Ranking, int, error) {
			return nil, 0, fmt.Errorf("shard unreachable")
		}},
	}
	rankings, deg, err := s.runComponents(context.Background(), comps)
	if err != nil {
		t.Fatalf("one failed leg aborted the fan-out: %v", err)
	}
	if deg.ComponentsShed != 1 {
		t.Fatalf("ComponentsShed = %d, want 1", deg.ComponentsShed)
	}
	if len(rankings) != 2 {
		t.Fatalf("rankings = %d, want positional slot per component", len(rankings))
	}
	if len(rankings[0]) != 2 || len(rankings[1]) != 0 {
		t.Fatalf("surviving/shed rankings = %v", rankings)
	}
}

func TestComponentPanicShedsNotCrashes(t *testing.T) {
	s, _ := buildSearcher(t)
	comps := []component{
		{kind: "text", run: func(ctx context.Context) (fusion.Ranking, int, error) {
			return fusion.Ranking{"d1#0"}, 0, nil
		}},
		{kind: "vector:poisoned", run: func(ctx context.Context) (fusion.Ranking, int, error) {
			panic("poisoned posting list")
		}},
	}
	rankings, deg, err := s.runComponents(context.Background(), comps)
	if err != nil {
		t.Fatalf("panicking leg aborted the fan-out: %v", err)
	}
	if deg.ComponentsShed != 1 || len(rankings[0]) != 1 {
		t.Fatalf("panic not shed: deg=%+v rankings=%v", deg, rankings)
	}
}

func TestAllComponentsFailedErrors(t *testing.T) {
	s, _ := buildSearcher(t)
	comps := []component{
		{kind: "text", run: func(ctx context.Context) (fusion.Ranking, int, error) {
			return nil, 0, fmt.Errorf("down")
		}},
	}
	if _, _, err := s.runComponents(context.Background(), comps); err == nil {
		t.Fatal("all legs failing must error, not return an empty ranking silently")
	}
}

func TestComponentRetrySucceeds(t *testing.T) {
	s, _ := buildSearcher(t)
	calls := 0
	comps := []component{
		{kind: "text", run: func(ctx context.Context) (fusion.Ranking, int, error) {
			calls++
			if calls == 1 {
				return nil, 0, fmt.Errorf("transient")
			}
			return fusion.Ranking{"d1#0"}, 0, nil
		}},
	}
	rankings, deg, err := s.runComponents(context.Background(), comps)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (one retry)", calls)
	}
	if deg.ComponentsShed != 0 || len(rankings[0]) != 1 {
		t.Fatalf("retried leg wrongly shed: deg=%+v", deg)
	}
}

func TestDegradedResultsNotCached(t *testing.T) {
	s, _ := buildSearcher(t)
	s.Cache = NewQueryCache(8)
	broken := brokenEmbedder{dim: 64}
	good := s.Embedder

	s.Embedder = broken
	_, deg, err := s.SearchDegraded(context.Background(), "bloccare la carta", Options{})
	if err != nil || !deg.Degraded() {
		t.Fatalf("degraded search: deg=%+v err=%v", deg, err)
	}

	// Dependency recovers: the same query must be recomputed at full
	// fidelity, not served degraded from the cache.
	s.Embedder = good
	_, deg, err = s.SearchDegraded(context.Background(), "bloccare la carta", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deg.Degraded() {
		t.Fatalf("cache pinned a degraded result: %+v", deg)
	}

	// Healthy results do cache, and replay their (empty) degradation.
	_, deg, err = s.SearchDegraded(context.Background(), "bloccare la carta", Options{})
	if err != nil || deg.Degraded() {
		t.Fatalf("cached healthy result: deg=%+v err=%v", deg, err)
	}
	if st := s.Cache.Stats(); st.Hits == 0 {
		t.Fatalf("healthy result was not cached: %+v", st)
	}
}

func TestMQ2EmbedErrorDegrades(t *testing.T) {
	s, _ := buildSearcher(t)
	s.Embedder = brokenEmbedder{dim: 64}
	res, deg, err := s.SearchDegraded(context.Background(), "bloccare la carta", Options{Expansion: MQ2})
	if err != nil {
		t.Fatalf("MQ2 with broken embedder errored: %v", err)
	}
	if !deg.VectorSkipped {
		t.Fatalf("MQ2 degradation = %+v, want VectorSkipped", deg)
	}
	if len(res) == 0 || res[0].ParentID != "d1" {
		t.Fatalf("MQ2 degraded results = %+v", res)
	}
}

func TestMQ1EmbedErrorDegrades(t *testing.T) {
	s, _ := buildSearcher(t)
	s.Embedder = brokenEmbedder{dim: 64}
	res, deg, err := s.SearchDegraded(context.Background(), "bloccare la carta", Options{Expansion: MQ1})
	if err != nil {
		t.Fatalf("MQ1 with broken embedder errored: %v", err)
	}
	if !deg.VectorSkipped {
		t.Fatalf("MQ1 degradation = %+v, want VectorSkipped", deg)
	}
	if len(res) == 0 || res[0].ParentID != "d1" {
		t.Fatalf("MQ1 degraded results = %+v", res)
	}
}

// resilientEmbedderIntegration: a Resilient embedder wrapping a flaky
// CtxEmbedder slots into the Searcher and heals transient failures before
// they become degradation.
type flakyEmbedder struct {
	inner        embedding.CtxEmbedder
	failuresLeft int
}

func (f *flakyEmbedder) Dim() int { return f.inner.Dim() }
func (f *flakyEmbedder) EmbedCtx(ctx context.Context, text string) (vector.Vector, error) {
	if f.failuresLeft > 0 {
		f.failuresLeft--
		return nil, errors.New("transient embedding failure")
	}
	return f.inner.EmbedCtx(ctx, text)
}
func (f *flakyEmbedder) Embed(text string) vector.Vector {
	v, _ := f.inner.EmbedCtx(context.Background(), text)
	return v
}

func TestResilientEmbedderHealsTransientFailure(t *testing.T) {
	s, emb := buildSearcher(t)
	s.Embedder = &embedding.Resilient{
		Inner: &flakyEmbedder{inner: embedding.AsCtx(emb), failuresLeft: 1},
	}
	res, deg, err := s.SearchDegraded(context.Background(), "bloccare la carta di credito", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deg.Degraded() {
		t.Fatalf("retry should have healed the transient failure, got %+v", deg)
	}
	if len(res) == 0 || res[0].ParentID != "d1" {
		t.Fatalf("results = %+v", res)
	}
}
