package search

// The concurrent stage pipeline must be observationally identical to the
// straight-line sequential query path it replaced: same rankings, same
// scores, same byte-for-byte results, in every retrieval mode and under
// every query expansion — and a cancelled search must return ctx.Err(),
// never partial results. This file keeps a faithful copy of the sequential
// reference implementation and asserts the equivalence.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/fusion"
	"uniask/internal/index"
	"uniask/internal/llm"
	"uniask/internal/pipeline"
	"uniask/internal/rerank"
	"uniask/internal/vector"
)

// buildLargeSearcher indexes a corpus big enough that rankings from the
// different components genuinely interleave, so any fan-out ordering bug
// would change the fused ranking.
func buildLargeSearcher(t testing.TB) *Searcher {
	t.Helper()
	lex := embedding.MapLexicon{
		"blocca": "act:block", "sospende": "act:block", "disattiva": "act:block",
		"cart": "obj:card", "tesser": "obj:card",
		"bonific": "obj:transfer", "trasferiment": "obj:transfer",
		"cont": "obj:account", "deposit": "obj:account",
		"mutu": "obj:loan", "prestit": "obj:loan",
	}
	emb := embedding.NewSynth(64, lex)
	ix := index.New(index.Config{})

	subjects := []string{"carta di credito", "bonifico estero", "conto corrente", "mutuo prima casa", "prestito personale"}
	actions := []string{"bloccare", "aprire", "chiudere", "modificare", "verificare"}
	codes := []string{"ERR-1001", "ERR-2002", "PRC-3003", "PRC-4004"}
	n := 0
	for si, subj := range subjects {
		for ai, act := range actions {
			for v := 0; v < 2; v++ {
				id := fmt.Sprintf("d%02d#%d", si*len(actions)+ai, v)
				title := fmt.Sprintf("%s %s", act, subj)
				content := fmt.Sprintf(
					"La procedura per %s il servizio %s richiede il codice %s e la verifica del cliente variante %d.",
					act, subj, codes[(si+ai+v)%len(codes)], v)
				err := ix.Add(index.Document{
					ID:       id,
					ParentID: id[:3],
					Fields:   map[string]string{"title": title, "content": content},
					Vectors: map[string]vector.Vector{
						"titleVector":   emb.Embed(title),
						"contentVector": emb.Embed(content),
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				n++
			}
		}
	}
	if n < 50 {
		t.Fatalf("corpus too small: %d chunks", n)
	}
	return &Searcher{
		Index:    ix,
		Embedder: emb,
		Reranker: rerank.New(),
		LLM:      llm.NewSim(llm.DefaultBehavior()),
	}
}

// --- Sequential reference: a faithful copy of the pre-pipeline code path. ---

func seqSearch(s *Searcher, ctx context.Context, query string, opts Options) ([]Result, error) {
	opts = opts.withDefaults()
	switch opts.Expansion {
	case QGA:
		resp, err := s.LLM.Complete(ctx, llm.BuildDirectAnswerPrompt(query))
		if err != nil {
			return nil, err
		}
		expanded := query + " " + resp.Content
		opts.Expansion = NoExpansion
		return seqOnce(s, expanded, s.Embedder.Embed(expanded), opts), nil
	case MQ1:
		queries, err := seqRelated(s, ctx, query, opts.RelatedQueries)
		if err != nil {
			return nil, err
		}
		queries = append([]string{query}, queries...)
		var rankings []fusion.Ranking
		for _, q := range queries {
			rankings = append(rankings, seqComponents(s, q, s.Embedder.Embed(q), opts)...)
		}
		fused := fusion.RRF(rankings, opts.RRFC)
		if len(fused) > opts.FinalN {
			fused = fused[:opts.FinalN]
		}
		return seqFinalize(s, query, s.Embedder.Embed(query), fused, opts), nil
	case MQ2:
		queries, err := seqRelated(s, ctx, query, opts.RelatedQueries)
		if err != nil {
			return nil, err
		}
		queries = append([]string{query}, queries...)
		concat := ""
		vecs := make([]vector.Vector, 0, len(queries))
		for _, q := range queries {
			if concat != "" {
				concat += " "
			}
			concat += q
			vecs = append(vecs, s.Embedder.Embed(q))
		}
		qvec := embedding.Mean(vecs, s.Embedder.Dim())
		opts.Expansion = NoExpansion
		return seqOnce(s, concat, qvec, opts), nil
	}
	return seqOnce(s, query, s.Embedder.Embed(query), opts), nil
}

func seqOnce(s *Searcher, query string, qvec vector.Vector, opts Options) []Result {
	rankings := seqComponents(s, query, qvec, opts)
	fused := fusion.RRF(rankings, opts.RRFC)
	if len(fused) > opts.FinalN {
		fused = fused[:opts.FinalN]
	}
	return seqFinalize(s, query, qvec, fused, opts)
}

func seqComponents(s *Searcher, query string, qvec vector.Vector, opts Options) []fusion.Ranking {
	var rankings []fusion.Ranking
	if opts.Mode != VectorOnly {
		textOpts := index.TextOptions{Filters: opts.Filters}
		textOpts.Fields = []string{"title", "content"}
		if opts.SearchKeywordsField != "" {
			textOpts.Fields = append(textOpts.Fields, opts.SearchKeywordsField)
		}
		if opts.TitleBoost > 1 {
			textOpts.FieldWeights = map[string]float64{"title": opts.TitleBoost}
		}
		rankings = append(rankings, hitsToRanking(s.Index.SearchText(query, opts.TextN, textOpts)))
	}
	if opts.Mode != TextOnly {
		for _, field := range s.Index.VectorFields() {
			rankings = append(rankings, hitsToRanking(s.Index.SearchVector(field, qvec, opts.VectorK, opts.Filters)))
		}
	}
	return rankings
}

func seqFinalize(s *Searcher, query string, qvec vector.Vector, fused []fusion.Fused, opts Options) []Result {
	results := make([]Result, 0, len(fused))
	for _, f := range fused {
		doc, ok := s.Index.DocByID(f.ID)
		if !ok {
			continue
		}
		results = append(results, Result{
			ChunkID:  doc.ID,
			ParentID: doc.ParentID,
			Title:    doc.Fields["title"],
			Content:  doc.Fields["content"],
			Summary:  doc.Fields["summary"],
			Score:    f.Score,
		})
	}
	if s.Reranker == nil || opts.DisableSemanticRerank {
		return results
	}
	for i := range results {
		doc, _ := s.Index.DocByID(results[i].ChunkID)
		in := rerank.Input{
			ID:            results[i].ChunkID,
			Title:         results[i].Title,
			Content:       results[i].Content,
			ContentVector: doc.Vectors["contentVector"],
		}
		results[i].Score += s.Reranker.Score(query, qvec, in)
	}
	// The original O(n²) insertion sort, kept verbatim so the sort.Slice
	// replacement is proven against it.
	for i := 1; i < len(results); i++ {
		for j := i; j > 0; j-- {
			if results[j-1].Score > results[j].Score ||
				(results[j-1].Score == results[j].Score && results[j-1].ChunkID <= results[j].ChunkID) {
				break
			}
			results[j-1], results[j] = results[j], results[j-1]
		}
	}
	return results
}

func seqRelated(s *Searcher, ctx context.Context, query string, n int) ([]string, error) {
	resp, err := s.LLM.Complete(ctx, llm.BuildRelatedQueriesPrompt(query, n))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range splitSeqLines(resp.Content) {
		if line != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

func splitSeqLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[start:i]
			for len(line) > 0 && (line[0] == ' ' || line[0] == '\t' || line[0] == '\r') {
				line = line[1:]
			}
			for len(line) > 0 && (line[len(line)-1] == ' ' || line[len(line)-1] == '\t' || line[len(line)-1] == '\r') {
				line = line[:len(line)-1]
			}
			out = append(out, line)
			start = i + 1
		}
	}
	return out
}

// --- The determinism assertion. ---

// TestConcurrentPipelineMatchesSequentialReference asserts the acceptance
// criterion: the concurrent fan-out reproduces the sequential ranking
// exactly (byte-identical results) across every mode and expansion, for
// several fan-out widths.
func TestConcurrentPipelineMatchesSequentialReference(t *testing.T) {
	s := buildLargeSearcher(t)
	queries := []string{
		"bloccare la carta di credito",
		"sospendere la tessera",
		"come aprire un conto corrente",
		"ERR-2002 bonifico",
		"verificare il mutuo prima casa",
		"",
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"Hybrid", Options{}},
		{"TextOnly", Options{Mode: TextOnly}},
		{"VectorOnly", Options{Mode: VectorOnly}},
		{"HybridNoRerank", Options{DisableSemanticRerank: true}},
		{"HybridTitleBoost", Options{TitleBoost: 50}},
		{"HybridSmallFinalN", Options{FinalN: 7}},
		{"QGA", Options{Expansion: QGA}},
		{"MQ1", Options{Expansion: MQ1}},
		{"MQ2", Options{Expansion: MQ2}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				s.Workers = workers
				for _, q := range queries {
					want, err := seqSearch(s, context.Background(), q, tc.opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := s.Search(context.Background(), q, tc.opts)
					if err != nil {
						t.Fatal(err)
					}
					wb, gb := fmt.Sprintf("%#v", want), fmt.Sprintf("%#v", got)
					if wb != gb {
						t.Fatalf("query %q: concurrent pipeline diverged from sequential reference\nseq: %s\ncon: %s", q, wb, gb)
					}
				}
			})
		}
	}
}

// --- Cancellation semantics. ---

// cancelOnStage cancels a context the moment a given stage reports.
type cancelOnStage struct {
	stage  string
	cancel context.CancelFunc
	mu     sync.Mutex
	seen   []string
}

func (c *cancelOnStage) ObserveStage(info pipeline.StageInfo) {
	c.mu.Lock()
	c.seen = append(c.seen, info.Stage)
	c.mu.Unlock()
	if info.Stage == c.stage {
		c.cancel()
	}
}

func TestSearchCancelledBeforeStart(t *testing.T) {
	s := buildLargeSearcher(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []Options{
		{}, {Mode: TextOnly}, {Mode: VectorOnly},
		{Expansion: QGA}, {Expansion: MQ1}, {Expansion: MQ2},
	} {
		res, err := s.Search(ctx, "bloccare la carta", opts)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("opts %+v: err = %v", opts, err)
		}
		if res != nil {
			t.Fatalf("opts %+v: cancelled search returned results: %v", opts, res)
		}
	}
}

// TestSearchCancelledMidFlight cancels the context as successive stages
// complete: whatever the cut point, the search must surface ctx.Err() and
// no partial results.
func TestSearchCancelledMidFlight(t *testing.T) {
	cases := []struct {
		stage string
		opts  Options
	}{
		{pipeline.StageEmbed, Options{}},
		{pipeline.StageRetrieval, Options{}},
		{pipeline.StageFusion, Options{}},
		{pipeline.StageExpand, Options{Expansion: MQ1}},
		{pipeline.StageEmbed, Options{Expansion: MQ1}},
		{pipeline.StageRetrieval, Options{Expansion: MQ1}},
		{pipeline.StageFusion, Options{Expansion: MQ1}},
		{pipeline.StageExpand, Options{Expansion: QGA}},
		{pipeline.StageExpand, Options{Expansion: MQ2}},
		{pipeline.StageRetrieval, Options{Mode: VectorOnly}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v-after-%s", tc.opts.Expansion, tc.stage), func(t *testing.T) {
			s := buildLargeSearcher(t)
			s.Workers = 4
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			obs := &cancelOnStage{stage: tc.stage, cancel: cancel}
			s.Observer = obs
			res, err := s.Search(ctx, "bloccare la carta di credito", tc.opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled (stages seen: %v)", err, obs.seen)
			}
			if res != nil {
				t.Fatalf("cancelled search returned partial results: %d", len(res))
			}
		})
	}
}

// TestRerankLoopHonorsCancellation cancels from inside the reranker's own
// stage via a context that dies during iteration.
func TestRerankLoopHonorsCancellation(t *testing.T) {
	s := buildLargeSearcher(t)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the fusion stage has produced the candidate list;
	// the rerank stage must then refuse to run.
	s.Observer = &cancelOnStage{stage: pipeline.StageFusion, cancel: cancel}
	res, err := s.Search(ctx, "verificare il prestito personale", Options{})
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("res=%v err=%v", res, err)
	}
	cancel()
}

// TestSearchStagesReported checks a plain hybrid search reports the
// embed/retrieval/fusion/rerank stages exactly once each, with sane sizes.
func TestSearchStagesReported(t *testing.T) {
	s := buildLargeSearcher(t)
	rec := &recordingObserver{}
	s.Observer = rec
	res, err := s.Search(context.Background(), "bloccare la carta di credito", Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.counts()
	for _, stage := range []string{pipeline.StageEmbed, pipeline.StageRetrieval, pipeline.StageFusion, pipeline.StageRerank} {
		if counts[stage] != 1 {
			t.Fatalf("stage %q reported %d times (counts=%v)", stage, counts[stage], counts)
		}
	}
	ret := rec.byStage(pipeline.StageRetrieval)[0]
	// text + titleVector + contentVector legs.
	if ret.In != 3 || ret.Out == 0 {
		t.Fatalf("retrieval sizes = %+v", ret)
	}
	rr := rec.byStage(pipeline.StageRerank)[0]
	if rr.In != len(res) || rr.Out != len(res) {
		t.Fatalf("rerank sizes = %+v for %d results", rr, len(res))
	}
}

type recordingObserver struct {
	mu    sync.Mutex
	infos []pipeline.StageInfo
}

func (r *recordingObserver) ObserveStage(info pipeline.StageInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos = append(r.infos, info)
}

func (r *recordingObserver) counts() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{}
	for _, i := range r.infos {
		out[i.Stage]++
	}
	return out
}

func (r *recordingObserver) byStage(stage string) []pipeline.StageInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []pipeline.StageInfo
	for _, i := range r.infos {
		if i.Stage == stage {
			out = append(out, i)
		}
	}
	return out
}

// TestMQ1EmbedsOriginalQueryOnce guards the satellite fix: MQ1 must embed
// the original query exactly once, reusing the vector for both its
// component searches and the final rerank.
func TestMQ1EmbedsOriginalQueryOnce(t *testing.T) {
	s := buildLargeSearcher(t)
	ce := &countingEmbedder{Embedder: s.Embedder}
	s.Embedder = ce
	if _, err := s.Search(context.Background(), "bloccare la carta", Options{Expansion: MQ1}); err != nil {
		t.Fatal(err)
	}
	if n := ce.count("bloccare la carta"); n != 1 {
		t.Fatalf("original query embedded %d times, want 1", n)
	}
}

type countingEmbedder struct {
	embedding.Embedder
	mu     sync.Mutex
	counts map[string]int
}

func (c *countingEmbedder) Embed(text string) vector.Vector {
	c.mu.Lock()
	if c.counts == nil {
		c.counts = map[string]int{}
	}
	c.counts[text]++
	c.mu.Unlock()
	return c.Embedder.Embed(text)
}

func (c *countingEmbedder) count(text string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[text]
}
