package search

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/index"
	"uniask/internal/shard"
	"uniask/internal/vector"
)

// embedCounter counts Embed calls: the embed stage runs exactly once per
// uncached search, so the counter measures how many searches actually
// executed versus were served from cache.
type embedCounter struct {
	inner *embedding.Synth
	n     atomic.Int64
}

func (c *embedCounter) Embed(text string) vector.Vector {
	c.n.Add(1)
	return c.inner.Embed(text)
}

func (c *embedCounter) Dim() int { return c.inner.Dim() }

// cachedSearcher wraps buildSearcher's corpus with a counting embedder and a
// query cache.
func cachedSearcher(t *testing.T, capacity int) (*Searcher, *embedCounter) {
	t.Helper()
	s, emb := buildSearcher(t)
	ce := &embedCounter{inner: emb}
	s.Embedder = ce
	s.Cache = NewQueryCache(capacity)
	return s, ce
}

func TestCacheServesRepeatedQuery(t *testing.T) {
	s, ce := cachedSearcher(t, 0)
	ctx := context.Background()
	first, err := s.Search(ctx, "bloccare la carta di credito", Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Search(ctx, "bloccare la carta di credito", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 1 {
		t.Fatalf("embed ran %d times, want 1 (second search must hit the cache)", got)
	}
	if len(first) != len(second) {
		t.Fatalf("cached result length %d != fresh %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached result[%d] = %+v, fresh %+v", i, second[i], first[i])
		}
	}
	st := s.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestCacheEpochInvalidation verifies both invalidation channels on a plain
// mutable index: an Add rotates the stats snapshot key (every write to a
// plain index is immediately "published"), and a Delete flows through the
// journal to evict exactly the entry naming the chunk — either way the
// repeat query recomputes and sees the change.
func TestCacheEpochInvalidation(t *testing.T) {
	s, ce := cachedSearcher(t, 0)
	ctx := context.Background()
	query := "procedura di apertura del conto corrente"
	if _, err := s.Search(ctx, query, Options{}); err != nil {
		t.Fatal(err)
	}
	// Index a new chunk that is a near-verbatim match for the query.
	title := "Apertura conto corrente online"
	content := "La nuova procedura di apertura del conto corrente online è immediata."
	err := s.Index.(index.Writer).Add(index.Document{
		ID:       "d9#0",
		ParentID: "d9",
		Fields:   map[string]string{"title": title, "content": content},
		Vectors: map[string]vector.Vector{
			"titleVector":   ce.inner.Embed(title),
			"contentVector": ce.inner.Embed(content),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(ctx, query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 2 {
		t.Fatalf("embed ran %d times, want 2 (the add must invalidate the entry)", got)
	}
	found := false
	for _, r := range res {
		if r.ChunkID == "d9#0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recomputed results %+v miss the newly added chunk", res)
	}

	// Deleting also bumps the epoch: the same query recomputes again.
	if !s.Index.(index.Writer).Delete("d9#0") {
		t.Fatal("delete failed")
	}
	if _, err := s.Search(ctx, query, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 3 {
		t.Fatalf("embed ran %d times after delete, want 3", got)
	}
}

// TestCacheKeySensitivity verifies distinct options are distinct cache
// entries while a repeat of either is a hit.
func TestCacheKeySensitivity(t *testing.T) {
	s, ce := cachedSearcher(t, 0)
	ctx := context.Background()
	query := "bonifico estero"
	variants := []Options{
		{},
		{FinalN: 3},
		{TitleBoost: 50},
		{Mode: TextOnly},
		{DisableSemanticRerank: true},
		{Filters: []index.Filter{{Field: "domain", Value: "prodotti"}}},
	}
	for i, opts := range variants {
		if _, err := s.Search(ctx, query, opts); err != nil {
			t.Fatal(err)
		}
		if got := ce.n.Load(); int(got) != i+1 {
			t.Fatalf("variant %d: embed ran %d times, want %d (options must key separately)", i, got, i+1)
		}
	}
	for _, opts := range variants {
		if _, err := s.Search(ctx, query, opts); err != nil {
			t.Fatal(err)
		}
	}
	if got := ce.n.Load(); int(got) != len(variants) {
		t.Fatalf("embed ran %d times after repeats, want %d (each repeat must hit)", got, len(variants))
	}
}

// TestCacheSingleflight verifies concurrent identical queries collapse into
// one execution.
func TestCacheSingleflight(t *testing.T) {
	s, ce := cachedSearcher(t, 0)
	ctx := context.Background()
	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := s.Search(ctx, "errore ERR-4032 durante il bonifico", Options{})
			if err == nil && len(res) == 0 {
				errs <- context.Canceled // sentinel: empty result
			}
			if err != nil {
				errs <- err
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 1 {
		t.Fatalf("embed ran %d times for %d concurrent identical queries, want 1", got, goroutines)
	}
}

// TestCacheLRUEviction verifies the capacity bound evicts the least recently
// used entry.
func TestCacheLRUEviction(t *testing.T) {
	s, ce := cachedSearcher(t, 2)
	ctx := context.Background()
	queries := []string{"bloccare la carta", "bonifico estero", "apertura conto"}
	for _, q := range queries {
		if _, err := s.Search(ctx, q, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Cache.Stats(); st.Entries != 2 {
		t.Fatalf("cache holds %d entries, want 2", st.Entries)
	}
	// The first query was evicted (capacity 2, LRU) and must recompute.
	if _, err := s.Search(ctx, queries[0], Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 4 {
		t.Fatalf("embed ran %d times, want 4 (first query must have been evicted)", got)
	}
	// The third query is still cached.
	if _, err := s.Search(ctx, queries[2], Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 4 {
		t.Fatalf("embed ran %d times, want 4 (third query must still be cached)", got)
	}
}

// TestCacheReturnsCopies verifies callers can mutate returned slices without
// corrupting the cached entry.
func TestCacheReturnsCopies(t *testing.T) {
	s, _ := cachedSearcher(t, 0)
	ctx := context.Background()
	first, err := s.Search(ctx, "bloccare la carta di credito", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no results")
	}
	first[0].ChunkID = "corrupted"
	second, err := s.Search(ctx, "bloccare la carta di credito", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second[0].ChunkID == "corrupted" {
		t.Fatal("mutating a returned slice corrupted the cache")
	}
}

// TestCachePurge verifies Purge drops all entries (the LoadIndex path).
func TestCachePurge(t *testing.T) {
	s, ce := cachedSearcher(t, 0)
	ctx := context.Background()
	if _, err := s.Search(ctx, "bonifico estero", Options{}); err != nil {
		t.Fatal(err)
	}
	s.Cache.Purge()
	if st := s.Cache.Stats(); st.Entries != 0 {
		t.Fatalf("cache holds %d entries after purge", st.Entries)
	}
	if _, err := s.Search(ctx, "bonifico estero", Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ce.n.Load(); got != 2 {
		t.Fatalf("embed ran %d times, want 2 (purge must force recompute)", got)
	}
}

// shardedCacheFixture builds a 4-shard facade behind a cached searcher and
// seeds the two-document idf setup shared by the survival and rotation
// tests: docA matches both query terms; docB matches "carta" with higher
// tf. While "rossa" is rare its idf dominates and A outranks B; once other
// shards fill with "rossa" documents the term is devalued and B wins.
func shardedCacheFixture(t *testing.T) (*shard.Sharded, *Searcher, func(id, content string)) {
	t.Helper()
	facade := shard.New(shard.Config{Shards: 4})
	s := &Searcher{
		Index:    facade,
		Embedder: embedding.NewSynth(16, nil),
		Cache:    NewQueryCache(0),
	}
	add := func(id, content string) {
		t.Helper()
		err := facade.Add(index.Document{
			ID: id, ParentID: id,
			Fields: map[string]string{"title": "pagina", "content": content},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("docA#0", "carta rossa")
	add("docB#0", "carta carta carta carta")
	return facade, s, add
}

// addFillers places n "rossa" documents on shards other than docA's and
// docB's home shards — unpublished memtable writes that shift global idf
// once they are published.
func addFillers(t *testing.T, facade *shard.Sharded, add func(id, content string), n int) {
	t.Helper()
	homeA, homeB := facade.ShardFor("docA#0"), facade.ShardFor("docB#0")
	fillers := 0
	for i := 0; fillers < n && i < 1000; i++ {
		id := fmt.Sprintf("fill%03d#0", i)
		if sh := facade.ShardFor(id); sh == homeA || sh == homeB {
			continue
		}
		add(id, "rossa")
		fillers++
	}
	if fillers != n {
		t.Fatalf("placed %d fillers off-shard, want %d", fillers, n)
	}
}

// TestCacheSurvivesUnpublishedShardWrites is the counterpart of the old
// TestCacheShardedEpochConservatism: with snapshot-keyed invalidation, a
// write absorbed by shard A's memtable but not yet published no longer
// evicts an entry whose results were scored only against shard B's
// segments. The test caches a query, floods other shards with term-bearing
// documents WITHOUT publishing, and asserts the repeat is a byte-identical
// hit with zero delete evictions — while a differently-keyed fresh query
// proves the unpublished writes are already searchable.
func TestCacheSurvivesUnpublishedShardWrites(t *testing.T) {
	facade, s, add := shardedCacheFixture(t)
	opts := Options{Mode: TextOnly, DisableSemanticRerank: true}
	ctx := context.Background()

	first, err := s.Search(ctx, "carta rossa", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) < 2 || first[0].ChunkID != "docA#0" {
		t.Fatalf("initial ranking = %+v, want docA#0 first", first)
	}

	addFillers(t, facade, add, 8)

	before := s.Cache.Stats()
	second, err := s.Search(ctx, "carta rossa", opts)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Cache.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("unpublished writes evicted the entry: before=%+v after=%+v", before, after)
	}
	if after.DeleteEvictions != 0 {
		t.Fatalf("delete evictions = %d, want 0 (nothing was deleted)", after.DeleteEvictions)
	}
	if after.HitRate() <= 0 {
		t.Fatalf("hit rate gauge = %v, want > 0", after.HitRate())
	}
	if len(second) != len(first) {
		t.Fatalf("cached result length %d != original %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached result[%d] = %+v, original %+v", i, second[i], first[i])
		}
	}

	// The unpublished writes are still searchable right now: a fresh query
	// (different cache key) finds a filler immediately.
	fresh, err := s.Search(ctx, "rossa", Options{Mode: TextOnly, DisableSemanticRerank: true, FinalN: 12})
	if err != nil {
		t.Fatal(err)
	}
	foundFiller := false
	for _, r := range fresh {
		if r.ChunkID != "docA#0" && r.ChunkID != "docB#0" {
			foundFiller = true
		}
	}
	if !foundFiller {
		t.Fatalf("fresh query %+v misses the unpublished fillers", fresh)
	}
}

// TestCacheStatsRotationRecomputes shows why publication must rotate the
// snapshot key: BM25 idf is global, so publishing writes on one shard can
// flip the relative ranking of documents living entirely on other shards.
// After Publish seals the filler memtables, the cached entry lapses and the
// recomputed ranking genuinely changes — a per-shard "skip unchanged
// shards" scheme would have served the stale order forever.
func TestCacheStatsRotationRecomputes(t *testing.T) {
	facade, s, add := shardedCacheFixture(t)
	opts := Options{Mode: TextOnly, DisableSemanticRerank: true}
	ctx := context.Background()

	first, err := s.Search(ctx, "carta rossa", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) < 2 || first[0].ChunkID != "docA#0" {
		t.Fatalf("initial ranking = %+v, want docA#0 first", first)
	}

	addFillers(t, facade, add, 8)
	facade.Publish()

	before := s.Cache.Stats()
	second, err := s.Search(ctx, "carta rossa", opts)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Cache.Stats()
	if after.Misses != before.Misses+1 || after.Hits != before.Hits {
		t.Fatalf("publication did not force a recompute: before=%+v after=%+v", before, after)
	}
	if len(second) < 2 || second[0].ChunkID != "docB#0" {
		t.Fatalf("post-publication ranking = %+v, want docB#0 first (global idf shifted)", second)
	}
}

// TestCacheDeleteJournalPreciseEviction verifies the delete journal evicts
// exactly the entries whose results name a deleted chunk: the entry holding
// the victim recomputes, an unrelated entry keeps hitting, and no stats
// rotation occurs (deletes change no BM25 statistic).
func TestCacheDeleteJournalPreciseEviction(t *testing.T) {
	facade, s, add := shardedCacheFixture(t)
	opts := Options{Mode: TextOnly, DisableSemanticRerank: true}
	ctx := context.Background()
	add("docC#0", "prestito auto")

	if _, err := s.Search(ctx, "carta rossa", opts); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search(ctx, "prestito auto", opts); err != nil {
		t.Fatal(err)
	}

	if !facade.Delete("docC#0") {
		t.Fatal("delete failed")
	}

	// The unrelated entry survives and hits.
	before := s.Cache.Stats()
	if _, err := s.Search(ctx, "carta rossa", opts); err != nil {
		t.Fatal(err)
	}
	mid := s.Cache.Stats()
	if mid.Hits != before.Hits+1 {
		t.Fatalf("unrelated entry did not hit after delete: before=%+v after=%+v", before, mid)
	}
	if mid.DeleteEvictions != 1 {
		t.Fatalf("delete evictions = %d, want 1 (only the victim's entry)", mid.DeleteEvictions)
	}

	// The victim's entry was evicted and recomputes without the chunk.
	res, err := s.Search(ctx, "prestito auto", opts)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Cache.Stats()
	if after.Misses != mid.Misses+1 {
		t.Fatalf("victim entry was not evicted: mid=%+v after=%+v", mid, after)
	}
	for _, r := range res {
		if r.ChunkID == "docC#0" {
			t.Fatalf("recomputed results %+v still contain the deleted chunk", res)
		}
	}
}
