package search

// Tenant-keyed query-cache partitioning. Multi-tenant serving must not let
// one tenant's traffic evict another's cached rankings, so instead of one
// shared LRU the pool hands each tenant its own QueryCache partition with
// its own entry budget. Isolation is structural: partitions share no LRU
// list, no entry map and no delete-journal cursor, so a flood of tenant-A
// queries (or an A-side ingest rotating A's stats snapshot) cannot touch a
// single tenant-B entry — proven by TestCachePoolPartitionIsolation.
//
// The pool also keeps the aggregate bounded: partition shares draw down a
// total entry budget, and a share request the remaining budget cannot
// cover is clamped (never refused — a tenant with a tiny clamped cache is
// degraded, not broken).

import (
	"sort"
	"sync"
)

// DefaultTenantCacheShare is the per-tenant partition size used when a
// tenant's share is unset.
const DefaultTenantCacheShare = 128

// CachePool hands out per-tenant QueryCache partitions against one total
// entry budget. Safe for concurrent use.
type CachePool struct {
	mu           sync.Mutex
	total        int // total entry budget; <= 0 means unbounded
	remaining    int
	defaultShare int
	parts        map[string]*QueryCache
	shares       map[string]int
}

// NewCachePool creates a pool with a total entry budget (<= 0 = unbounded)
// and a default per-tenant share (<= 0 = DefaultTenantCacheShare).
func NewCachePool(total, defaultShare int) *CachePool {
	if defaultShare <= 0 {
		defaultShare = DefaultTenantCacheShare
	}
	return &CachePool{
		total:        total,
		remaining:    total,
		defaultShare: defaultShare,
		parts:        make(map[string]*QueryCache),
		shares:       make(map[string]int),
	}
}

// Partition returns the tenant's cache partition, creating it on first use
// with the given share (0 = the pool's default share; negative = caching
// disabled for this tenant, returns nil). The share is clamped to the
// pool's remaining budget; once the budget is exhausted new tenants get a
// minimal 1-entry partition rather than none, so they still dedupe
// concurrent identical queries via singleflight.
func (p *CachePool) Partition(tenant string, share int) *QueryCache {
	if share < 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.parts[tenant]; ok {
		return c
	}
	if share == 0 {
		share = p.defaultShare
	}
	if p.total > 0 {
		if share > p.remaining {
			share = p.remaining
		}
		if share < 1 {
			share = 1
		}
		p.remaining -= share
		if p.remaining < 0 {
			p.remaining = 0
		}
	}
	c := NewQueryCache(share)
	p.parts[tenant] = c
	p.shares[tenant] = share
	return c
}

// PartitionStats is one tenant partition's gauge row.
type PartitionStats struct {
	Tenant string
	Share  int
	CacheStats
}

// Stats snapshots every partition, sorted by tenant.
func (p *CachePool) Stats() []PartitionStats {
	p.mu.Lock()
	rows := make([]PartitionStats, 0, len(p.parts))
	for id, c := range p.parts {
		rows = append(rows, PartitionStats{Tenant: id, Share: p.shares[id], CacheStats: c.Stats()})
	}
	p.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Tenant < rows[j].Tenant })
	return rows
}
