package search

// Query-result cache: pilot traffic and load tests hammer a small set of
// recurring questions (§8), so the searcher memoizes full retrieval results
// in an LRU keyed on (query, options). Entries carry the index mutation
// epoch they were computed at and are invalidated lazily when the epoch
// moves — the 15-minute ingestion poller bumping the index flushes exactly
// the stale answers, with no TTL guesswork. Concurrent identical queries
// collapse into one execution (singleflight): the first caller computes,
// the rest wait and share the result.
//
// Sharded indexes invalidate conservatively, on purpose. The facade's epoch
// is the sum of its shard epochs, so a write to ANY shard invalidates EVERY
// cached entry, including queries whose result documents all live on other
// shards. A per-shard scheme — remember which shards contributed to a cached
// ranking, keep the entry while those shards are unchanged — would be
// unsound: BM25 idf is computed from global corpus statistics, so adding a
// document to one shard shifts the scores (and potentially the order) of
// matches living entirely on other shards, and a newly added document can
// enter any query's top-k regardless of which shard it landed on.
// TestCacheShardedEpochConservatism demonstrates the ranking flip that the
// conservative purge protects against.

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
)

// DefaultQueryCacheCapacity is the entry budget used when NewQueryCache is
// given a non-positive capacity.
const DefaultQueryCacheCapacity = 512

// QueryCache is an epoch-invalidated LRU of search results with in-flight
// deduplication. Safe for concurrent use.
type QueryCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element holding *cacheEntry
	flights map[flightKey]*flight
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key     string
	epoch   uint64
	results []Result
	deg     Degradation
}

// flightKey includes the epoch so a flight started against a stale index
// never absorbs callers that already observed a newer epoch.
type flightKey struct {
	key   string
	epoch uint64
}

// flight is one in-progress computation; results/deg/err are published
// before done is closed.
type flight struct {
	done    chan struct{}
	results []Result
	deg     Degradation
	err     error
}

// NewQueryCache creates a cache holding up to capacity entries
// (DefaultQueryCacheCapacity when capacity <= 0).
func NewQueryCache(capacity int) *QueryCache {
	if capacity <= 0 {
		capacity = DefaultQueryCacheCapacity
	}
	return &QueryCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[flightKey]*flight),
	}
}

// lookup returns a copy of the results cached under key at the given epoch,
// with the degradation they were computed under. A key cached at any other
// epoch counts as a miss and is evicted.
func (c *QueryCache) lookup(key string, epoch uint64) ([]Result, Degradation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, Degradation{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.epoch != epoch {
		c.lru.Remove(el)
		delete(c.entries, key)
		c.misses++
		return nil, Degradation{}, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return copyResults(e.results), e.deg, true
}

// join registers interest in (key, epoch): the first caller becomes the
// leader (leader=true) and must call complete; later callers receive the
// same flight and wait on its done channel.
func (c *QueryCache) join(key string, epoch uint64) (f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fk := flightKey{key: key, epoch: epoch}
	if f, ok := c.flights[fk]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[fk] = f
	return f, true
}

// complete publishes the leader's outcome to waiters and, when store is
// true (the caller decided the result is cacheable: success, still-current
// epoch, not degraded), stores it in the LRU.
func (c *QueryCache) complete(key string, epoch uint64, f *flight, results []Result, deg Degradation, err error, store bool) {
	c.mu.Lock()
	delete(c.flights, flightKey{key: key, epoch: epoch})
	if err == nil && store {
		c.storeLocked(key, epoch, copyResults(results), deg)
	}
	c.mu.Unlock()
	f.results, f.deg, f.err = results, deg, err
	close(f.done)
}

// storeLocked inserts or refreshes an entry; the caller holds c.mu.
func (c *QueryCache) storeLocked(key string, epoch uint64, results []Result, deg Degradation) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.epoch, e.results, e.deg = epoch, results, deg
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, epoch: epoch, results: results, deg: deg})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
}

// Purge drops every cached entry (used when the backing index object is
// swapped wholesale, e.g. LoadIndex, where epochs restart from zero).
func (c *QueryCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// Stats reports hit/miss counters and the current entry count.
func (c *QueryCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len()}
}

// copyResults returns a defensive copy so cached slices are never aliased
// by callers (Result itself holds only immutable fields).
func copyResults(rs []Result) []Result {
	if rs == nil {
		return nil
	}
	out := make([]Result, len(rs))
	copy(out, rs)
	return out
}

// cacheKey canonicalizes a (query, options) pair. Every Options field that
// can change the ranking participates; filters are keyed in the order given
// (conjunction is order-insensitive semantically, so differently ordered
// but equal filter sets merely cache twice).
func cacheKey(query string, o Options) string {
	var b strings.Builder
	b.Grow(len(query) + len(o.SearchKeywordsField) + 64)
	b.WriteString(query)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.TextN))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.VectorK))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.FinalN))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.RRFC))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(int(o.Mode)))
	b.WriteByte(0)
	if o.DisableSemanticRerank {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	b.WriteByte(0)
	b.WriteString(strconv.FormatFloat(o.TitleBoost, 'g', -1, 64))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(int(o.Expansion)))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.RelatedQueries))
	b.WriteByte(0)
	b.WriteString(o.SearchKeywordsField)
	for _, f := range o.Filters {
		b.WriteByte(1)
		b.WriteString(f.Field)
		b.WriteByte(0)
		b.WriteString(f.Value)
	}
	return b.String()
}
