package search

// Query-result cache: pilot traffic and load tests hammer a small set of
// recurring questions (§8), so the searcher memoizes full retrieval results
// in an LRU keyed on (query, options). Entries carry the BM25 stats
// snapshot key (index.Queryable.StatsKey) they were scored under and are
// invalidated lazily when the key rotates. Concurrent identical queries
// collapse into one execution (singleflight): the first caller computes,
// the rest wait and share the result.
//
// Two invalidation channels replace the old whole-epoch flush:
//
//   - Stats rotation. BM25 idf is computed from global corpus statistics,
//     so once a write is *published* — a segmented store sealing a non-empty
//     memtable, a compaction dropping tombstones, any Add on a plain
//     mutable index — every cached ranking is potentially reordered (adding
//     one document can shift the scores of matches living entirely on other
//     shards; TestCacheStatsRotationRecomputes demonstrates the flip) and
//     entries keyed on the old snapshot lapse. Writes a segmented store has
//     absorbed but not yet published do not rotate the key, which is what
//     lets entries survive live ingestion: a write to shard A no longer
//     evicts results scored only against shard B's sealed segments.
//   - The delete journal. Tombstoning a chunk changes no statistic (the
//     chunk keeps counting toward N, average length and DF), so instead of
//     rotating the key, SyncDeletes drains the store's journal and evicts
//     exactly the entries whose results name a deleted chunk. A cached
//     top-k without the chunk is still byte-exact and survives.
//
// Unpublished writes are still searchable immediately — uncached queries
// always score against live statistics. What the cache trades is
// recency-under-repetition: a repeated query can replay a pre-write ranking
// until the next publication (the ingestion layer publishes at the end of
// every bulk load and poll cycle), the near-real-time semantics of a
// Lucene/Elasticsearch refresh interval.

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"uniask/internal/index"
)

// DefaultQueryCacheCapacity is the entry budget used when NewQueryCache is
// given a non-positive capacity.
const DefaultQueryCacheCapacity = 512

// QueryCache is a snapshot-keyed LRU of search results with in-flight
// deduplication and precise delete eviction. Safe for concurrent use.
type QueryCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element holding *cacheEntry
	flights map[flightKey]*flight
	hits    uint64
	misses  uint64

	// delCursor is the cache's position in the store's delete journal;
	// delEvictions counts entries evicted because a result was deleted.
	delCursor    uint64
	delEvictions uint64
}

type cacheEntry struct {
	key     string
	snap    uint64 // stats snapshot key the results were scored under
	results []Result
	deg     Degradation
}

// flightKey includes the stats snapshot key so a flight started against a
// stale snapshot never absorbs callers that already observed a newer one.
type flightKey struct {
	key  string
	snap uint64
}

// flight is one in-progress computation; results/deg/err are published
// before done is closed.
type flight struct {
	done    chan struct{}
	results []Result
	deg     Degradation
	err     error
}

// NewQueryCache creates a cache holding up to capacity entries
// (DefaultQueryCacheCapacity when capacity <= 0).
func NewQueryCache(capacity int) *QueryCache {
	if capacity <= 0 {
		capacity = DefaultQueryCacheCapacity
	}
	return &QueryCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[flightKey]*flight),
	}
}

// lookup returns a copy of the results cached under key at the given stats
// snapshot, with the degradation they were computed under. A key cached at
// any other snapshot counts as a miss and is evicted.
func (c *QueryCache) lookup(key string, snap uint64) ([]Result, Degradation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, Degradation{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.snap != snap {
		c.lru.Remove(el)
		delete(c.entries, key)
		c.misses++
		return nil, Degradation{}, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return copyResults(e.results), e.deg, true
}

// SyncDeletes advances the cache's cursor through the store's delete
// journal and evicts exactly the entries whose cached results name a
// deleted chunk — the precise counterpart of the stats-snapshot check:
// deletes change no statistic, so every other entry remains byte-exact.
// When the bounded journal has wrapped past the cursor the cache has missed
// deletes and the only sound move is a full purge.
func (c *QueryCache) SyncDeletes(q index.Queryable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids, next, ok := q.DeletesSince(c.delCursor)
	c.delCursor = next
	if !ok {
		c.lru.Init()
		c.entries = make(map[string]*list.Element)
		return
	}
	if len(ids) == 0 {
		return
	}
	deleted := make(map[string]bool, len(ids))
	for _, id := range ids {
		deleted[id] = true
	}
	var nextEl *list.Element
	for el := c.lru.Front(); el != nil; el = nextEl {
		nextEl = el.Next()
		e := el.Value.(*cacheEntry)
		for _, r := range e.results {
			if deleted[r.ChunkID] {
				c.lru.Remove(el)
				delete(c.entries, e.key)
				c.delEvictions++
				break
			}
		}
	}
}

// join registers interest in (key, snap): the first caller becomes the
// leader (leader=true) and must call complete; later callers receive the
// same flight and wait on its done channel.
func (c *QueryCache) join(key string, snap uint64) (f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fk := flightKey{key: key, snap: snap}
	if f, ok := c.flights[fk]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[fk] = f
	return f, true
}

// complete publishes the leader's outcome to waiters and, when store is
// true (the caller decided the result is cacheable: success, snapshot and
// delete journal still current, not degraded), stores it in the LRU.
func (c *QueryCache) complete(key string, snap uint64, f *flight, results []Result, deg Degradation, err error, store bool) {
	c.mu.Lock()
	delete(c.flights, flightKey{key: key, snap: snap})
	if err == nil && store {
		c.storeLocked(key, snap, copyResults(results), deg)
	}
	c.mu.Unlock()
	f.results, f.deg, f.err = results, deg, err
	close(f.done)
}

// storeLocked inserts or refreshes an entry; the caller holds c.mu.
func (c *QueryCache) storeLocked(key string, snap uint64, results []Result, deg Degradation) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.snap, e.results, e.deg = snap, results, deg
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, snap: snap, results: results, deg: deg})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
}

// Purge drops every cached entry and resets the delete-journal cursor
// (used when the backing index object is swapped wholesale, e.g. LoadIndex,
// where snapshot keys and journals restart from zero).
func (c *QueryCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	c.delCursor = 0
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
	// DeleteEvictions counts entries evicted by SyncDeletes because one of
	// their results had been deleted — the precise-invalidation channel.
	DeleteEvictions uint64
}

// HitRate is hits over lookups (0 when the cache has never been consulted).
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Stats reports hit/miss counters and the current entry count.
func (c *QueryCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len(), DeleteEvictions: c.delEvictions}
}

// copyResults returns a defensive copy so cached slices are never aliased
// by callers (Result itself holds only immutable fields).
func copyResults(rs []Result) []Result {
	if rs == nil {
		return nil
	}
	out := make([]Result, len(rs))
	copy(out, rs)
	return out
}

// cacheKey canonicalizes a (query, options) pair. Every Options field that
// can change the ranking participates; filters are keyed in the order given
// (conjunction is order-insensitive semantically, so differently ordered
// but equal filter sets merely cache twice).
func cacheKey(query string, o Options) string {
	var b strings.Builder
	b.Grow(len(query) + len(o.SearchKeywordsField) + 64)
	b.WriteString(query)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.TextN))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.VectorK))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.FinalN))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.RRFC))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(int(o.Mode)))
	b.WriteByte(0)
	if o.DisableSemanticRerank {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	b.WriteByte(0)
	b.WriteString(strconv.FormatFloat(o.TitleBoost, 'g', -1, 64))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(int(o.Expansion)))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(o.RelatedQueries))
	b.WriteByte(0)
	b.WriteString(o.SearchKeywordsField)
	for _, f := range o.Filters {
		b.WriteByte(1)
		b.WriteString(f.Field)
		b.WriteByte(0)
		b.WriteString(f.Value)
	}
	return b.String()
}
