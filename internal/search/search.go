// Package search implements UniAsk's retrieval module (§4): Hybrid Search
// with Semantic reranking (HSS). Full-text BM25 retrieves the top n
// documents, vector search retrieves the top K nearest chunks for each
// vector field, Reciprocal Rank Fusion merges the rankings, and the final
// relevance score adds a semantic-reranker score to the RRF score.
//
// The retrieval legs are independent, so the Searcher runs them as a
// concurrent fan-out over a bounded worker pool (see internal/pipeline):
// BM25 and the per-field ANN searches — and, under MQ1 expansion, the
// per-query searches — execute in parallel and join before RRF. The join
// preserves component order, so the fused ranking is byte-identical to a
// sequential execution. Every stage honors context cancellation and
// reports latency and sizes through a pipeline.Observer.
//
// The package also implements every retrieval variant the paper ablates in
// Tables 2-4: text-only and vector-only modes, the QGA/MQ1/MQ2 query
// expansions, multiplicative title boosting (T5/T50/T500), and searching
// over the LLM-keyword enrichment fields (HSS-KT/HSS-KTC).
package search

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"uniask/internal/embedding"
	"uniask/internal/fusion"
	"uniask/internal/index"
	"uniask/internal/llm"
	"uniask/internal/pipeline"
	"uniask/internal/rerank"
	"uniask/internal/vector"
)

// Mode selects which retrieval components run.
type Mode int

// Retrieval modes.
const (
	// Hybrid runs text + vector search fused with RRF (the deployed mode).
	Hybrid Mode = iota
	// TextOnly runs BM25 full-text search alone (Table 2 ablation).
	TextOnly
	// VectorOnly runs ANN vector search alone (Table 2 ablation).
	VectorOnly
)

// Expansion selects a query-expansion strategy (Table 3).
type Expansion int

// Query-expansion strategies.
const (
	// NoExpansion is the deployed configuration.
	NoExpansion Expansion = iota
	// QGA asks the LLM for a context-free answer and retrieves with the
	// query expanded by that answer.
	QGA
	// MQ1 asks the LLM for related queries and fuses one hybrid search per
	// query.
	MQ1
	// MQ2 asks the LLM for related queries, then runs one hybrid search on
	// the text concatenation and the averaged embedding of all queries.
	MQ2
)

// Options configures a search call. The zero value gives the deployed HSS
// configuration of §7.
type Options struct {
	// TextN is the full-text result count (default 50).
	TextN int
	// VectorK is the ANN neighbor count per vector field (default 15; the
	// paper swept K over {3,...,50} and picked 15).
	VectorK int
	// FinalN is the fused ranking length (default 50).
	FinalN int
	// RRFC is the RRF constant (default 60).
	RRFC int
	// Mode selects hybrid/text/vector retrieval.
	Mode Mode
	// DisableSemanticRerank turns the reranker off (plain hybrid search).
	DisableSemanticRerank bool
	// TitleBoost multiplies the BM25 weight of title matches (0 or 1 =
	// no boost; the paper tried 5, 50, 500).
	TitleBoost float64
	// Expansion selects a query-expansion variant.
	Expansion Expansion
	// RelatedQueries is how many related queries MQ1/MQ2 request (default 3).
	RelatedQueries int
	// SearchKeywordsField includes the LLM-keyword enrichment field among
	// the searchable text fields (HSS-KT / HSS-KTC; the field must exist in
	// the index schema).
	SearchKeywordsField string
	// Filters restrict results by exact match on filterable fields.
	Filters []index.Filter
}

func (o Options) withDefaults() Options {
	if o.TextN <= 0 {
		o.TextN = 50
	}
	if o.VectorK <= 0 {
		o.VectorK = 15
	}
	if o.FinalN <= 0 {
		o.FinalN = 50
	}
	if o.RRFC <= 0 {
		o.RRFC = fusion.DefaultC
	}
	if o.RelatedQueries <= 0 {
		o.RelatedQueries = 3
	}
	return o
}

// Result is one retrieved chunk.
type Result struct {
	// ChunkID is the index chunk identifier.
	ChunkID string
	// ParentID is the KB document the chunk belongs to.
	ParentID string
	// Title, Content and Summary are the retrievable fields.
	Title   string
	Content string
	Summary string
	// Score is the final relevance score (RRF + semantic rerank for HSS).
	Score float64
}

// Searcher executes queries against an index.
type Searcher struct {
	// Index is the chunk index to search.
	Index *index.Index
	// Embedder produces query embeddings for vector search.
	Embedder embedding.Embedder
	// Reranker is the semantic reranking model (nil disables reranking).
	Reranker *rerank.Reranker
	// LLM serves the query-expansion prompts (required only when an
	// Expansion is requested).
	LLM llm.Client
	// Observer receives per-stage reports (nil = discard).
	Observer pipeline.Observer
	// Workers bounds the retrieval fan-out (0 = pipeline.DefaultWorkers).
	Workers int
	// Cache memoizes results per (query, options) at a given index epoch,
	// with singleflight dedup of concurrent identical queries (nil = no
	// caching).
	Cache *QueryCache
}

func (s *Searcher) obs() pipeline.Observer { return pipeline.OrNop(s.Observer) }

func (s *Searcher) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return pipeline.DefaultWorkers()
}

// Search retrieves the chunks most relevant to query. With a Cache set,
// repeated queries at an unchanged index epoch are served from memory, and
// concurrent identical queries collapse into one execution.
func (s *Searcher) Search(ctx context.Context, query string, opts Options) ([]Result, error) {
	opts = opts.withDefaults()
	if s.Cache == nil {
		return s.run(ctx, query, opts)
	}
	epoch := s.Index.Epoch()
	key := cacheKey(query, opts)
	if res, ok := s.Cache.lookup(key, epoch); ok {
		return res, nil
	}
	f, leader := s.Cache.join(key, epoch)
	if leader {
		res, err := s.run(ctx, query, opts)
		// Re-check the epoch at store time: a write racing with this query
		// must not leave a stale entry behind.
		s.Cache.complete(key, epoch, f, res, err, s.Index.Epoch() == epoch)
		return res, err
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if f.err != nil {
		// The leader failed (possibly on its own canceled context); run
		// independently rather than propagating a foreign error.
		return s.run(ctx, query, opts)
	}
	return copyResults(f.results), nil
}

// run executes one search with already-defaulted options, bypassing the
// cache.
func (s *Searcher) run(ctx context.Context, query string, opts Options) ([]Result, error) {
	switch opts.Expansion {
	case QGA:
		return s.searchQGA(ctx, query, opts)
	case MQ1:
		return s.searchMQ1(ctx, query, opts)
	case MQ2:
		return s.searchMQ2(ctx, query, opts)
	}
	qvec, err := s.embed(ctx, query)
	if err != nil {
		return nil, err
	}
	return s.searchOnce(ctx, query, qvec, opts)
}

// embed runs one query embedding as an observed stage.
func (s *Searcher) embed(ctx context.Context, query string) (vector.Vector, error) {
	var qvec vector.Vector
	err := pipeline.Run(ctx, s.obs(), pipeline.StageEmbed, 1, func(context.Context) (int, error) {
		qvec = s.Embedder.Embed(query)
		return 1, nil
	})
	if err != nil {
		return nil, err
	}
	return qvec, nil
}

// searchOnce runs one text+vector+RRF+rerank pass with the given query text
// and query vector.
func (s *Searcher) searchOnce(ctx context.Context, query string, qvec vector.Vector, opts Options) ([]Result, error) {
	rankings, err := s.runComponents(ctx, s.components(query, qvec, opts))
	if err != nil {
		return nil, err
	}
	fused, err := s.fuse(ctx, rankings, opts)
	if err != nil {
		return nil, err
	}
	return s.finalize(ctx, query, qvec, fused, opts)
}

// component is one independent retrieval leg: BM25 full-text search or one
// ANN search over a vector field. Components are pure reads over the index
// and safe to run concurrently.
type component func() fusion.Ranking

// components lists the retrieval legs for one (query, vector) pair, in the
// deterministic order RRF fuses them: text first, then vector fields in
// the index's sorted field order.
func (s *Searcher) components(query string, qvec vector.Vector, opts Options) []component {
	var comps []component
	if opts.Mode != VectorOnly {
		textOpts := index.TextOptions{Filters: opts.Filters}
		textOpts.Fields = []string{"title", "content"}
		if opts.SearchKeywordsField != "" {
			textOpts.Fields = append(textOpts.Fields, opts.SearchKeywordsField)
		}
		if opts.TitleBoost > 1 {
			textOpts.FieldWeights = map[string]float64{"title": opts.TitleBoost}
		}
		comps = append(comps, func() fusion.Ranking {
			return hitsToRanking(s.Index.SearchText(query, opts.TextN, textOpts))
		})
	}
	if opts.Mode != TextOnly {
		for _, field := range s.Index.VectorFields() {
			field := field
			comps = append(comps, func() fusion.Ranking {
				return hitsToRanking(s.Index.SearchVector(field, qvec, opts.VectorK, opts.Filters))
			})
		}
	}
	return comps
}

// runComponents executes the retrieval legs over the bounded worker pool
// as one observed "retrieval" stage. Results keep component order, so the
// rankings slice is identical to a sequential loop's.
func (s *Searcher) runComponents(ctx context.Context, comps []component) ([]fusion.Ranking, error) {
	var rankings []fusion.Ranking
	err := pipeline.Run(ctx, s.obs(), pipeline.StageRetrieval, len(comps), func(ctx context.Context) (int, error) {
		var err error
		rankings, err = pipeline.Map(ctx, s.workers(), len(comps), func(ctx context.Context, i int) (fusion.Ranking, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return comps[i](), nil
		})
		if err != nil {
			return 0, err
		}
		total := 0
		for _, r := range rankings {
			total += len(r)
		}
		return total, nil
	})
	if err != nil {
		return nil, err
	}
	return rankings, nil
}

// fuse merges the component rankings with RRF and truncates to FinalN, as
// one observed "fusion" stage.
func (s *Searcher) fuse(ctx context.Context, rankings []fusion.Ranking, opts Options) ([]fusion.Fused, error) {
	in := 0
	for _, r := range rankings {
		in += len(r)
	}
	var fused []fusion.Fused
	err := pipeline.Run(ctx, s.obs(), pipeline.StageFusion, in, func(context.Context) (int, error) {
		fused = fusion.RRF(rankings, opts.RRFC)
		if len(fused) > opts.FinalN {
			fused = fused[:opts.FinalN]
		}
		return len(fused), nil
	})
	if err != nil {
		return nil, err
	}
	return fused, nil
}

// finalize materializes results and applies semantic reranking: the final
// score is the RRF score plus the reranker score, re-sorted.
func (s *Searcher) finalize(ctx context.Context, query string, qvec vector.Vector, fused []fusion.Fused, opts Options) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(fused))
	for _, f := range fused {
		doc, ok := s.Index.DocByID(f.ID)
		if !ok {
			continue
		}
		results = append(results, Result{
			ChunkID:  doc.ID,
			ParentID: doc.ParentID,
			Title:    doc.Fields["title"],
			Content:  doc.Fields["content"],
			Summary:  doc.Fields["summary"],
			Score:    f.Score,
		})
	}
	if s.Reranker == nil || opts.DisableSemanticRerank {
		return results, nil
	}
	err := pipeline.Run(ctx, s.obs(), pipeline.StageRerank, len(results), func(ctx context.Context) (int, error) {
		for i := range results {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			doc, _ := s.Index.DocByID(results[i].ChunkID)
			in := rerank.Input{
				ID:            results[i].ChunkID,
				Title:         results[i].Title,
				Content:       results[i].Content,
				ContentVector: doc.Vectors["contentVector"],
			}
			results[i].Score += s.Reranker.Score(query, qvec, in)
		}
		sortResults(results)
		return len(results), nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// searchQGA expands the query with a context-free LLM answer.
func (s *Searcher) searchQGA(ctx context.Context, query string, opts Options) ([]Result, error) {
	var resp llm.Response
	err := pipeline.Run(ctx, s.obs(), pipeline.StageExpand, 1, func(ctx context.Context) (int, error) {
		var err error
		resp, err = s.LLM.Complete(ctx, llm.BuildDirectAnswerPrompt(query))
		return 1, err
	})
	if err != nil {
		return nil, fmt.Errorf("search: QGA expansion: %w", err)
	}
	expanded := query + " " + resp.Content
	qvec, err := s.embed(ctx, expanded)
	if err != nil {
		return nil, err
	}
	opts.Expansion = NoExpansion
	return s.searchOnce(ctx, expanded, qvec, opts)
}

// searchMQ1 fuses one hybrid search per generated related query (plus the
// original). The per-query component searches form one flat fan-out over
// the shared worker pool; the original query's embedding is computed once
// and reused for its component searches and for reranking.
func (s *Searcher) searchMQ1(ctx context.Context, query string, opts Options) ([]Result, error) {
	queries, err := s.relatedQueries(ctx, query, opts.RelatedQueries)
	if err != nil {
		return nil, err
	}
	queries = append([]string{query}, queries...)

	var vecs []vector.Vector
	err = pipeline.Run(ctx, s.obs(), pipeline.StageEmbed, len(queries), func(ctx context.Context) (int, error) {
		var err error
		vecs, err = pipeline.Map(ctx, s.workers(), len(queries), func(ctx context.Context, i int) (vector.Vector, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return s.Embedder.Embed(queries[i]), nil
		})
		return len(vecs), err
	})
	if err != nil {
		return nil, err
	}

	var comps []component
	for qi := range queries {
		comps = append(comps, s.components(queries[qi], vecs[qi], opts)...)
	}
	rankings, err := s.runComponents(ctx, comps)
	if err != nil {
		return nil, err
	}
	fused, err := s.fuse(ctx, rankings, opts)
	if err != nil {
		return nil, err
	}
	// vecs[0] is the original query's embedding — reused, not re-embedded.
	return s.finalize(ctx, query, vecs[0], fused, opts)
}

// searchMQ2 runs a single hybrid search over the concatenated text and the
// averaged embedding of all queries.
func (s *Searcher) searchMQ2(ctx context.Context, query string, opts Options) ([]Result, error) {
	queries, err := s.relatedQueries(ctx, query, opts.RelatedQueries)
	if err != nil {
		return nil, err
	}
	queries = append([]string{query}, queries...)
	concat := strings.Join(queries, " ")
	var qvec vector.Vector
	err = pipeline.Run(ctx, s.obs(), pipeline.StageEmbed, len(queries), func(ctx context.Context) (int, error) {
		vecs := make([]vector.Vector, 0, len(queries))
		for _, q := range queries {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			vecs = append(vecs, s.Embedder.Embed(q))
		}
		qvec = embedding.Mean(vecs, s.Embedder.Dim())
		return 1, nil
	})
	if err != nil {
		return nil, err
	}
	opts.Expansion = NoExpansion
	return s.searchOnce(ctx, concat, qvec, opts)
}

func (s *Searcher) relatedQueries(ctx context.Context, query string, n int) ([]string, error) {
	var resp llm.Response
	err := pipeline.Run(ctx, s.obs(), pipeline.StageExpand, 1, func(ctx context.Context) (int, error) {
		var err error
		resp, err = s.LLM.Complete(ctx, llm.BuildRelatedQueriesPrompt(query, n))
		return n, err
	})
	if err != nil {
		return nil, fmt.Errorf("search: related-query expansion: %w", err)
	}
	var out []string
	for _, line := range strings.Split(resp.Content, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

func hitsToRanking(hits []index.Hit) fusion.Ranking {
	r := make(fusion.Ranking, len(hits))
	for i, h := range hits {
		r[i] = h.ID
	}
	return r
}

// sortResults orders by score descending, ties broken by ChunkID ascending
// for determinism.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].ChunkID < rs[j].ChunkID
	})
}

// ParentRanking collapses a chunk ranking into a KB-document ranking,
// keeping each parent's best-ranked occurrence — the document list shown to
// the user and evaluated against the ground truth.
func ParentRanking(results []Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range results {
		if seen[r.ParentID] {
			continue
		}
		seen[r.ParentID] = true
		out = append(out, r.ParentID)
	}
	return out
}
