// Package search implements UniAsk's retrieval module (§4): Hybrid Search
// with Semantic reranking (HSS). Full-text BM25 retrieves the top n
// documents, vector search retrieves the top K nearest chunks for each
// vector field, Reciprocal Rank Fusion merges the rankings, and the final
// relevance score adds a semantic-reranker score to the RRF score.
//
// The retrieval legs are independent, so the Searcher runs them as a
// concurrent fan-out over a bounded worker pool (see internal/pipeline):
// BM25 and the per-field ANN searches — and, under MQ1 expansion, the
// per-query searches — execute in parallel and join before RRF. The join
// preserves component order, so the fused ranking is byte-identical to a
// sequential execution. Every stage honors context cancellation and
// reports latency and sizes through a pipeline.Observer.
//
// The package also implements every retrieval variant the paper ablates in
// Tables 2-4: text-only and vector-only modes, the QGA/MQ1/MQ2 query
// expansions, multiplicative title boosting (T5/T50/T500), and searching
// over the LLM-keyword enrichment fields (HSS-KT/HSS-KTC).
package search

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"uniask/internal/embedding"
	"uniask/internal/fusion"
	"uniask/internal/index"
	"uniask/internal/llm"
	"uniask/internal/pipeline"
	"uniask/internal/rerank"
	"uniask/internal/resilience"
	"uniask/internal/trace"
	"uniask/internal/vector"
)

// Degradation reports which parts of a query were shed to keep it
// available. A degraded search still returns a ranking — computed from the
// components that survived — and the caller (the engine, the server, the
// dashboard) surfaces the reduced fidelity instead of an error.
type Degradation struct {
	// VectorSkipped means query embedding failed, so the vector legs (and
	// the semantic component of reranking) were shed: BM25-only retrieval.
	VectorSkipped bool
	// ExpansionSkipped means the LLM query-expansion call failed, so the
	// search ran without expansion.
	ExpansionSkipped bool
	// ComponentsShed counts retrieval legs that failed and were dropped
	// from fusion.
	ComponentsShed int
	// ShardsDown counts index shards that could not be reached (every
	// replica of the shard unreachable): the ranking was computed over the
	// surviving shards' documents only. Partial results, not an error —
	// exactly like the other degradations.
	ShardsDown int
	// RewriteSkipped means the history-aware query rewrite failed (breaker
	// open, timeout), so retrieval ran on the raw turn query instead of the
	// standalone rewritten one. Set by the conversational engine path, not
	// by the Searcher itself.
	RewriteSkipped bool
}

// Degraded reports whether anything was shed.
func (d Degradation) Degraded() bool {
	return d.VectorSkipped || d.ExpansionSkipped || d.ComponentsShed > 0 || d.ShardsDown > 0 || d.RewriteSkipped
}

// Parts names the shed parts for logs, metrics and API responses.
func (d Degradation) Parts() []string {
	var out []string
	if d.RewriteSkipped {
		out = append(out, "rewrite")
	}
	if d.VectorSkipped {
		out = append(out, "vector")
	}
	if d.ExpansionSkipped {
		out = append(out, "expansion")
	}
	if d.ComponentsShed > 0 {
		out = append(out, "retrieval-components")
	}
	if d.ShardsDown > 0 {
		out = append(out, "shards")
	}
	return out
}

func (d *Degradation) merge(o Degradation) {
	d.VectorSkipped = d.VectorSkipped || o.VectorSkipped
	d.ExpansionSkipped = d.ExpansionSkipped || o.ExpansionSkipped
	d.ComponentsShed += o.ComponentsShed
	// Max, not sum: every retrieval leg fans out over the same shards, so
	// the same dead shard would otherwise be double-counted per leg.
	if o.ShardsDown > d.ShardsDown {
		d.ShardsDown = o.ShardsDown
	}
	d.RewriteSkipped = d.RewriteSkipped || o.RewriteSkipped
}

// Mode selects which retrieval components run.
type Mode int

// Retrieval modes.
const (
	// Hybrid runs text + vector search fused with RRF (the deployed mode).
	Hybrid Mode = iota
	// TextOnly runs BM25 full-text search alone (Table 2 ablation).
	TextOnly
	// VectorOnly runs ANN vector search alone (Table 2 ablation).
	VectorOnly
)

// Expansion selects a query-expansion strategy (Table 3).
type Expansion int

// Query-expansion strategies.
const (
	// NoExpansion is the deployed configuration.
	NoExpansion Expansion = iota
	// QGA asks the LLM for a context-free answer and retrieves with the
	// query expanded by that answer.
	QGA
	// MQ1 asks the LLM for related queries and fuses one hybrid search per
	// query.
	MQ1
	// MQ2 asks the LLM for related queries, then runs one hybrid search on
	// the text concatenation and the averaged embedding of all queries.
	MQ2
)

// Options configures a search call. The zero value gives the deployed HSS
// configuration of §7.
type Options struct {
	// TextN is the full-text result count (default 50).
	TextN int
	// VectorK is the ANN neighbor count per vector field (default 15; the
	// paper swept K over {3,...,50} and picked 15).
	VectorK int
	// FinalN is the fused ranking length (default 50).
	FinalN int
	// RRFC is the RRF constant (default 60).
	RRFC int
	// Mode selects hybrid/text/vector retrieval.
	Mode Mode
	// DisableSemanticRerank turns the reranker off (plain hybrid search).
	DisableSemanticRerank bool
	// TitleBoost multiplies the BM25 weight of title matches (0 or 1 =
	// no boost; the paper tried 5, 50, 500).
	TitleBoost float64
	// Expansion selects a query-expansion variant.
	Expansion Expansion
	// RelatedQueries is how many related queries MQ1/MQ2 request (default 3).
	RelatedQueries int
	// SearchKeywordsField includes the LLM-keyword enrichment field among
	// the searchable text fields (HSS-KT / HSS-KTC; the field must exist in
	// the index schema).
	SearchKeywordsField string
	// Filters restrict results by exact match on filterable fields.
	Filters []index.Filter
}

func (o Options) withDefaults() Options {
	if o.TextN <= 0 {
		o.TextN = 50
	}
	if o.VectorK <= 0 {
		o.VectorK = 15
	}
	if o.FinalN <= 0 {
		o.FinalN = 50
	}
	if o.RRFC <= 0 {
		o.RRFC = fusion.DefaultC
	}
	if o.RelatedQueries <= 0 {
		o.RelatedQueries = 3
	}
	return o
}

// Result is one retrieved chunk.
type Result struct {
	// ChunkID is the index chunk identifier.
	ChunkID string
	// ParentID is the KB document the chunk belongs to.
	ParentID string
	// Title, Content and Summary are the retrievable fields.
	Title   string
	Content string
	Summary string
	// Score is the final relevance score (RRF + semantic rerank for HSS).
	Score float64
}

// Searcher executes queries against an index.
type Searcher struct {
	// Index is the chunk index to search: a plain *index.Index, the
	// segmented store, or the sharded facade (internal/shard) — the
	// Searcher is agnostic, it only needs the Queryable surface. StatsKey()
	// keys the query cache either way: it rotates exactly when the store
	// publishes new BM25 statistics, and the delete journal (DeletesSince)
	// carries tombstoned chunk ids for precise eviction in between.
	Index index.Queryable
	// Embedder produces query embeddings for vector search.
	Embedder embedding.Embedder
	// Reranker is the semantic reranking model (nil disables reranking).
	Reranker *rerank.Reranker
	// LLM serves the query-expansion prompts (required only when an
	// Expansion is requested).
	LLM llm.Client
	// Observer receives per-stage reports (nil = discard).
	Observer pipeline.Observer
	// Workers bounds the retrieval fan-out (0 = pipeline.DefaultWorkers).
	Workers int
	// Cache memoizes results per (query, options) at a given stats
	// snapshot, with singleflight dedup of concurrent identical queries and
	// precise eviction of deleted chunks (nil = no caching).
	Cache *QueryCache
}

func (s *Searcher) obs() pipeline.Observer { return pipeline.OrNop(s.Observer) }

func (s *Searcher) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return pipeline.DefaultWorkers()
}

// Search retrieves the chunks most relevant to query. With a Cache set,
// repeated queries at an unchanged index epoch are served from memory, and
// concurrent identical queries collapse into one execution.
func (s *Searcher) Search(ctx context.Context, query string, opts Options) ([]Result, error) {
	res, _, err := s.SearchDegraded(ctx, query, opts)
	return res, err
}

// SearchDegraded is Search plus the degradation report: which parts of the
// query (vector legs, expansion, individual retrieval components) were shed
// to keep it available. Cached entries replay the degradation they were
// computed under.
func (s *Searcher) SearchDegraded(ctx context.Context, query string, opts Options) ([]Result, Degradation, error) {
	opts = opts.withDefaults()
	if s.Cache == nil {
		return s.run(ctx, query, opts)
	}
	// Drain the delete journal first so a tombstoned chunk is never served
	// from cache, then key the lookup on the published stats snapshot. The
	// reranker weight version participates in the key: a click-feedback
	// recalibration between two identical queries must not replay a ranking
	// scored under the old weights.
	s.Cache.SyncDeletes(s.Index)
	snap := s.Index.StatsKey()
	_, delMark, _ := s.Index.DeletesSince(^uint64(0))
	rv := s.rerankVersion(opts)
	key := cacheKey(query, opts) + "\x00" + strconv.FormatUint(rv, 10)
	if res, deg, ok := s.Cache.lookup(key, snap); ok {
		return res, deg, nil
	}
	f, leader := s.Cache.join(key, snap)
	if leader {
		res, deg, err := s.run(ctx, query, opts)
		// Re-check at store time: a stats publication racing this query must
		// not leave a stale entry behind, and a delete racing it must not
		// leave an entry the already-advanced journal cursor would never
		// evict. A rerank recalibration racing the query invalidates it the
		// same way: the scores may mix old and new weights. Degraded results
		// are not cached either: the dependency may already be healthy
		// again, and a cache must not pin reduced fidelity for a whole
		// snapshot.
		_, delNow, _ := s.Index.DeletesSince(^uint64(0))
		s.Cache.complete(key, snap, f, res, deg, err,
			err == nil && !deg.Degraded() && s.Index.StatsKey() == snap &&
				delNow == delMark && s.rerankVersion(opts) == rv)
		return res, deg, err
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		return nil, Degradation{}, ctx.Err()
	}
	if f.err != nil {
		// The leader failed (possibly on its own canceled context); run
		// independently rather than propagating a foreign error.
		return s.run(ctx, query, opts)
	}
	return copyResults(f.results), f.deg, nil
}

// rerankVersion is the reranker weight version a query's ranking depends
// on (0 when reranking is off for the query — weight changes then cannot
// affect it).
func (s *Searcher) rerankVersion(opts Options) uint64 {
	if s.Reranker == nil || opts.DisableSemanticRerank {
		return 0
	}
	return s.Reranker.Version()
}

// run executes one search with already-defaulted options, bypassing the
// cache.
func (s *Searcher) run(ctx context.Context, query string, opts Options) ([]Result, Degradation, error) {
	switch opts.Expansion {
	case QGA:
		return s.searchQGA(ctx, query, opts)
	case MQ1:
		return s.searchMQ1(ctx, query, opts)
	case MQ2:
		return s.searchMQ2(ctx, query, opts)
	}
	return s.searchPlain(ctx, query, opts)
}

// searchPlain is the no-expansion path: embed (degrading to BM25-only when
// embedding fails) and run one hybrid pass.
func (s *Searcher) searchPlain(ctx context.Context, query string, opts Options) ([]Result, Degradation, error) {
	var deg Degradation
	qvec, err := s.embed(ctx, query)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, deg, ctxErr
		}
		if opts.Mode == VectorOnly {
			// Nothing to degrade to: vector-only retrieval needs the vector.
			return nil, deg, fmt.Errorf("search: embed: %w", err)
		}
		s.shed(ctx, pipeline.StageEmbed, 1, err)
		deg.VectorSkipped = true
		qvec = nil
	}
	res, d, err := s.searchOnce(ctx, query, qvec, opts)
	deg.merge(d)
	return res, deg, err
}

// ctxEmbedder returns the searcher's embedder as a fallible, cancellable
// CtxEmbedder (in-process embedders are adapted and never fail).
func (s *Searcher) ctxEmbedder() embedding.CtxEmbedder {
	return embedding.AsCtx(s.Embedder)
}

// embed runs one query embedding as an observed stage. Failures are
// returned for the caller to classify (degrade or abort).
func (s *Searcher) embed(ctx context.Context, query string) (vector.Vector, error) {
	var qvec vector.Vector
	ce := s.ctxEmbedder()
	err := pipeline.Run(ctx, s.obs(), pipeline.StageEmbed, 1, func(ctx context.Context) (int, error) {
		var err error
		qvec, err = ce.EmbedCtx(ctx, query)
		return 1, err
	})
	if err != nil {
		return nil, err
	}
	return qvec, nil
}

// shed reports n dropped units of work to the observer under the synthetic
// "degraded" stage, with the cause. The context carries the active trace, so
// a traced request records each shed as a degraded span.
func (s *Searcher) shed(ctx context.Context, what string, n int, cause error) {
	pipeline.Observe(ctx, s.obs(), pipeline.StageInfo{
		Stage: pipeline.StageDegraded, In: n,
		Err: fmt.Errorf("search: shed %s: %w", what, cause),
	})
}

// ctxQueryable is the optional context-aware query surface. The sharded
// facade implements it to emit per-shard fan-out spans; a plain
// index.Queryable (the monolithic index) simply runs without them.
type ctxQueryable interface {
	SearchTextCtx(ctx context.Context, query string, n int, opts index.TextOptions) []index.Hit
	SearchVectorCtx(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) []index.Hit
}

// partialQueryable is the optional partial-result query surface. The
// sharded facade implements it when shards can genuinely fail (remote
// shards): the int reports how many shards were unreachable for the call,
// which the searcher folds into Degradation.ShardsDown so callers see
// partial results flagged as degraded rather than silently complete.
type partialQueryable interface {
	SearchTextPartial(ctx context.Context, query string, n int, opts index.TextOptions) ([]index.Hit, int)
	SearchVectorPartial(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) ([]index.Hit, int)
}

// searchText routes one BM25 leg through the richest surface the index
// offers, reporting how many shards the leg lost (0 for local indexes,
// which cannot lose any).
func (s *Searcher) searchText(ctx context.Context, query string, n int, opts index.TextOptions) ([]index.Hit, int) {
	if pq, ok := s.Index.(partialQueryable); ok {
		return pq.SearchTextPartial(ctx, query, n, opts)
	}
	if cq, ok := s.Index.(ctxQueryable); ok {
		return cq.SearchTextCtx(ctx, query, n, opts), 0
	}
	return s.Index.SearchText(query, n, opts), 0
}

// searchVector routes one ANN leg the same way.
func (s *Searcher) searchVector(ctx context.Context, field string, q vector.Vector, k int, filters []index.Filter) ([]index.Hit, int) {
	if pq, ok := s.Index.(partialQueryable); ok {
		return pq.SearchVectorPartial(ctx, field, q, k, filters)
	}
	if cq, ok := s.Index.(ctxQueryable); ok {
		return cq.SearchVectorCtx(ctx, field, q, k, filters), 0
	}
	return s.Index.SearchVector(field, q, k, filters), 0
}

// searchOnce runs one text+vector+RRF+rerank pass with the given query text
// and query vector. A nil qvec sheds the vector legs (BM25-only).
func (s *Searcher) searchOnce(ctx context.Context, query string, qvec vector.Vector, opts Options) ([]Result, Degradation, error) {
	rankings, deg, err := s.runComponents(ctx, s.components(query, qvec, opts))
	if err != nil {
		return nil, deg, err
	}
	fused, err := s.fuse(ctx, rankings, opts)
	if err != nil {
		return nil, deg, err
	}
	res, err := s.finalize(ctx, query, qvec, fused, opts)
	return res, deg, err
}

// component is one independent retrieval leg: BM25 full-text search or one
// ANN search over a vector field. Components are safe to run concurrently;
// a component that fails (a remote shard, a poisoned read) is retried once
// and then shed from fusion rather than failing the query.
type component struct {
	// kind names the leg for degradation reports ("text", "vector:field").
	kind string
	// run executes the leg, additionally reporting how many index shards
	// the leg could not reach (partial coverage).
	run func(ctx context.Context) (fusion.Ranking, int, error)
}

// componentPolicy is the per-leg retry budget: one immediate retry, no
// backoff worth speaking of — a leg that fails twice is shed, the query
// moves on.
var componentPolicy = resilience.Policy{MaxAttempts: 2, BaseDelay: 1, MaxDelay: 1, Jitter: 0.01}

// components lists the retrieval legs for one (query, vector) pair, in the
// deterministic order RRF fuses them: text first, then vector fields in
// the index's sorted field order. A nil qvec (degraded embedding) yields no
// vector legs.
func (s *Searcher) components(query string, qvec vector.Vector, opts Options) []component {
	var comps []component
	if opts.Mode != VectorOnly {
		textOpts := index.TextOptions{Filters: opts.Filters}
		textOpts.Fields = []string{"title", "content"}
		if opts.SearchKeywordsField != "" {
			textOpts.Fields = append(textOpts.Fields, opts.SearchKeywordsField)
		}
		if opts.TitleBoost > 1 {
			textOpts.FieldWeights = map[string]float64{"title": opts.TitleBoost}
		}
		comps = append(comps, component{kind: "text", run: func(ctx context.Context) (fusion.Ranking, int, error) {
			hits, down := s.searchText(ctx, query, opts.TextN, textOpts)
			return hitsToRanking(hits), down, nil
		}})
	}
	if opts.Mode != TextOnly && qvec != nil {
		for _, field := range s.Index.VectorFields() {
			field := field
			comps = append(comps, component{kind: "vector:" + field, run: func(ctx context.Context) (fusion.Ranking, int, error) {
				hits, down := s.searchVector(ctx, field, qvec, opts.VectorK, opts.Filters)
				return hitsToRanking(hits), down, nil
			}})
		}
	}
	return comps
}

// runComponent executes one leg under the per-component retry policy, with
// panics converted to errors so a poisoned leg sheds instead of crashing
// the process. On a traced request the leg is a live "component" span: the
// per-shard fan-out spans nest under it, and its retry attempts attach as
// events.
func runComponent(ctx context.Context, c component) (r fusion.Ranking, down int, err error) {
	ctx, sp := trace.Start(ctx, "component", trace.A("kind", c.kind))
	defer func() {
		sp.SetError(err)
		sp.End()
	}()
	// DoValue is single-valued; thread the shard-down count alongside the
	// ranking through one carrier struct.
	type legResult struct {
		ranking fusion.Ranking
		down    int
	}
	out, err := resilience.DoValue(ctx, componentPolicy, func(ctx context.Context) (_ legResult, opErr error) {
		defer func() {
			if p := recover(); p != nil {
				opErr = fmt.Errorf("search: component %s panicked: %v", c.kind, p)
			}
		}()
		r, down, err := c.run(ctx)
		return legResult{ranking: r, down: down}, err
	})
	if out.down > 0 {
		sp.SetAttr("shardsDown", strconv.Itoa(out.down))
	}
	return out.ranking, out.down, err
}

// compOutcome carries a leg's ranking or its failure through the fan-out
// without aborting sibling legs.
type compOutcome struct {
	ranking fusion.Ranking
	down    int
	err     error
}

// runComponents executes the retrieval legs over the bounded worker pool
// as one observed "retrieval" stage. Results keep component order, so the
// rankings slice is identical to a sequential loop's. Legs that fail after
// their retry are shed: fusion proceeds over the survivors (an empty
// ranking keeps positional order stable) and the shed legs are reported as
// degradation. Only when every leg fails — or the caller is cancelled —
// does the stage error.
func (s *Searcher) runComponents(ctx context.Context, comps []component) ([]fusion.Ranking, Degradation, error) {
	var (
		rankings []fusion.Ranking
		deg      Degradation
	)
	err := pipeline.Run(ctx, s.obs(), pipeline.StageRetrieval, len(comps), func(ctx context.Context) (int, error) {
		outcomes, err := pipeline.Map(ctx, s.workers(), len(comps), func(ctx context.Context, i int) (compOutcome, error) {
			if err := ctx.Err(); err != nil {
				return compOutcome{}, err
			}
			r, down, err := runComponent(ctx, comps[i])
			return compOutcome{ranking: r, down: down, err: err}, nil
		})
		if err != nil {
			return 0, err
		}
		rankings = make([]fusion.Ranking, len(outcomes))
		var firstErr error
		failed := 0
		for i, o := range outcomes {
			// The same dead shards degrade every leg, so the report takes the
			// worst leg's count rather than summing the fan-out.
			if o.down > deg.ShardsDown {
				deg.ShardsDown = o.down
			}
			if o.err != nil {
				failed++
				if firstErr == nil {
					firstErr = o.err
				}
				s.shed(ctx, "component "+comps[i].kind, 1, o.err)
				rankings[i] = fusion.Ranking{}
				continue
			}
			rankings[i] = o.ranking
		}
		if failed > 0 && failed == len(outcomes) {
			return 0, fmt.Errorf("search: all %d retrieval components failed: %w", failed, firstErr)
		}
		deg.ComponentsShed = failed
		total := 0
		for _, r := range rankings {
			total += len(r)
		}
		return total, nil
	})
	if err != nil {
		return nil, deg, err
	}
	return rankings, deg, nil
}

// fuse merges the component rankings with RRF and truncates to FinalN, as
// one observed "fusion" stage.
func (s *Searcher) fuse(ctx context.Context, rankings []fusion.Ranking, opts Options) ([]fusion.Fused, error) {
	in := 0
	for _, r := range rankings {
		in += len(r)
	}
	var fused []fusion.Fused
	err := pipeline.Run(ctx, s.obs(), pipeline.StageFusion, in, func(context.Context) (int, error) {
		fused = fusion.RRF(rankings, opts.RRFC)
		if len(fused) > opts.FinalN {
			fused = fused[:opts.FinalN]
		}
		return len(fused), nil
	})
	if err != nil {
		return nil, err
	}
	return fused, nil
}

// finalize materializes results and applies semantic reranking: the final
// score is the RRF score plus the reranker score, re-sorted.
func (s *Searcher) finalize(ctx context.Context, query string, qvec vector.Vector, fused []fusion.Fused, opts Options) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(fused))
	for _, f := range fused {
		doc, ok := s.Index.DocByID(f.ID)
		if !ok {
			continue
		}
		results = append(results, Result{
			ChunkID:  doc.ID,
			ParentID: doc.ParentID,
			Title:    doc.Fields["title"],
			Content:  doc.Fields["content"],
			Summary:  doc.Fields["summary"],
			Score:    f.Score,
		})
	}
	if s.Reranker == nil || opts.DisableSemanticRerank {
		return results, nil
	}
	err := pipeline.Run(ctx, s.obs(), pipeline.StageRerank, len(results), func(ctx context.Context) (int, error) {
		for i := range results {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			doc, _ := s.Index.DocByID(results[i].ChunkID)
			in := rerank.Input{
				ID:            results[i].ChunkID,
				Title:         results[i].Title,
				Content:       results[i].Content,
				ContentVector: doc.Vectors["contentVector"],
			}
			results[i].Score += s.Reranker.Score(query, qvec, in)
		}
		sortResults(results)
		return len(results), nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// searchQGA expands the query with a context-free LLM answer. When the
// expansion call fails (and the caller is still alive) the search degrades
// to the unexpanded query instead of aborting.
func (s *Searcher) searchQGA(ctx context.Context, query string, opts Options) ([]Result, Degradation, error) {
	var deg Degradation
	var resp llm.Response
	err := pipeline.Run(ctx, s.obs(), pipeline.StageExpand, 1, func(ctx context.Context) (int, error) {
		var err error
		resp, err = s.LLM.Complete(ctx, llm.BuildDirectAnswerPrompt(query))
		return 1, err
	})
	expanded := query
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, deg, ctxErr
		}
		s.shed(ctx, "QGA expansion", 1, err)
		deg.ExpansionSkipped = true
	} else {
		expanded = query + " " + resp.Content
	}
	opts.Expansion = NoExpansion
	res, d, err := s.searchPlain(ctx, expanded, opts)
	deg.merge(d)
	return res, deg, err
}

// searchMQ1 fuses one hybrid search per generated related query (plus the
// original). The per-query component searches form one flat fan-out over
// the shared worker pool; the original query's embedding is computed once
// and reused for its component searches and for reranking. A failed
// expansion degrades to the plain search; a failed per-query embedding
// sheds that query's vector legs only.
func (s *Searcher) searchMQ1(ctx context.Context, query string, opts Options) ([]Result, Degradation, error) {
	var deg Degradation
	queries, err := s.relatedQueries(ctx, query, opts.RelatedQueries)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, deg, ctxErr
		}
		s.shed(ctx, "MQ1 expansion", 1, err)
		deg.ExpansionSkipped = true
		opts.Expansion = NoExpansion
		res, d, err := s.searchPlain(ctx, query, opts)
		deg.merge(d)
		return res, deg, err
	}
	queries = append([]string{query}, queries...)

	vecs, d, err := s.embedMany(ctx, queries)
	if err != nil {
		return nil, deg, err
	}
	deg.merge(d)

	var comps []component
	for qi := range queries {
		comps = append(comps, s.components(queries[qi], vecs[qi], opts)...)
	}
	rankings, d, err := s.runComponents(ctx, comps)
	deg.merge(d)
	if err != nil {
		return nil, deg, err
	}
	fused, err := s.fuse(ctx, rankings, opts)
	if err != nil {
		return nil, deg, err
	}
	// vecs[0] is the original query's embedding — reused, not re-embedded.
	res, err := s.finalize(ctx, query, vecs[0], fused, opts)
	return res, deg, err
}

// embedOutcome carries one query's embedding result through the tolerant
// fan-out: the error rides in the value so a failed embedding does not
// abort its siblings.
type embedOutcome struct {
	vec vector.Vector
	err error
}

// embedMany embeds the given queries as one observed stage, tolerating
// per-query failures: a failed embedding yields a nil vector (that query
// then contributes text legs only) and is shed. Only caller cancellation
// errors the stage; if every embedding fails the whole vector side is
// marked skipped.
func (s *Searcher) embedMany(ctx context.Context, queries []string) ([]vector.Vector, Degradation, error) {
	var deg Degradation
	ce := s.ctxEmbedder()
	vecs := make([]vector.Vector, len(queries))
	err := pipeline.Run(ctx, s.obs(), pipeline.StageEmbed, len(queries), func(ctx context.Context) (int, error) {
		outcomes, err := pipeline.Map(ctx, s.workers(), len(queries), func(ctx context.Context, i int) (embedOutcome, error) {
			if err := ctx.Err(); err != nil {
				return embedOutcome{}, err
			}
			v, err := ce.EmbedCtx(ctx, queries[i])
			if err != nil && ctx.Err() != nil {
				return embedOutcome{}, ctx.Err()
			}
			return embedOutcome{vec: v, err: err}, nil
		})
		if err != nil {
			return 0, err
		}
		ok := 0
		for i, o := range outcomes {
			if o.err != nil {
				s.shed(ctx, "embedding "+strconv.Itoa(i), 1, o.err)
				continue
			}
			vecs[i] = o.vec
			ok++
		}
		if ok == 0 {
			deg.VectorSkipped = true
		}
		return ok, nil
	})
	if err != nil {
		return nil, deg, err
	}
	return vecs, deg, err
}

// searchMQ2 runs a single hybrid search over the concatenated text and the
// averaged embedding of all queries. A failed expansion degrades to the
// plain search; failed per-query embeddings are skipped from the mean (all
// failing sheds the vector legs entirely).
func (s *Searcher) searchMQ2(ctx context.Context, query string, opts Options) ([]Result, Degradation, error) {
	var deg Degradation
	queries, err := s.relatedQueries(ctx, query, opts.RelatedQueries)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, deg, ctxErr
		}
		s.shed(ctx, "MQ2 expansion", 1, err)
		deg.ExpansionSkipped = true
		opts.Expansion = NoExpansion
		res, d, err := s.searchPlain(ctx, query, opts)
		deg.merge(d)
		return res, deg, err
	}
	queries = append([]string{query}, queries...)
	concat := strings.Join(queries, " ")
	ce := s.ctxEmbedder()
	var qvec vector.Vector
	err = pipeline.Run(ctx, s.obs(), pipeline.StageEmbed, len(queries), func(ctx context.Context) (int, error) {
		vecs := make([]vector.Vector, 0, len(queries))
		for _, q := range queries {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			v, err := ce.EmbedCtx(ctx, q)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return 0, ctxErr
				}
				s.shed(ctx, "MQ2 embedding", 1, err)
				deg.VectorSkipped = true
				continue
			}
			vecs = append(vecs, v)
		}
		if len(vecs) == 0 {
			qvec = nil
			return 0, nil
		}
		qvec = embedding.Mean(vecs, ce.Dim())
		return 1, nil
	})
	if err != nil {
		return nil, deg, err
	}
	if qvec != nil {
		deg.VectorSkipped = false
	}
	opts.Expansion = NoExpansion
	res, d, err := s.searchOnce(ctx, concat, qvec, opts)
	deg.merge(d)
	return res, deg, err
}

func (s *Searcher) relatedQueries(ctx context.Context, query string, n int) ([]string, error) {
	var resp llm.Response
	err := pipeline.Run(ctx, s.obs(), pipeline.StageExpand, 1, func(ctx context.Context) (int, error) {
		var err error
		resp, err = s.LLM.Complete(ctx, llm.BuildRelatedQueriesPrompt(query, n))
		return n, err
	})
	if err != nil {
		return nil, fmt.Errorf("search: related-query expansion: %w", err)
	}
	var out []string
	for _, line := range strings.Split(resp.Content, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

func hitsToRanking(hits []index.Hit) fusion.Ranking {
	r := make(fusion.Ranking, len(hits))
	for i, h := range hits {
		r[i] = h.ID
	}
	return r
}

// sortResults orders by score descending, ties broken by ChunkID ascending
// for determinism.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].ChunkID < rs[j].ChunkID
	})
}

// ParentRanking collapses a chunk ranking into a KB-document ranking,
// keeping each parent's best-ranked occurrence — the document list shown to
// the user and evaluated against the ground truth.
func ParentRanking(results []Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range results {
		if seen[r.ParentID] {
			continue
		}
		seen[r.ParentID] = true
		out = append(out, r.ParentID)
	}
	return out
}
