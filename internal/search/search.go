// Package search implements UniAsk's retrieval module (§4): Hybrid Search
// with Semantic reranking (HSS). Full-text BM25 retrieves the top n
// documents, vector search retrieves the top K nearest chunks for each
// vector field, Reciprocal Rank Fusion merges the rankings, and the final
// relevance score adds a semantic-reranker score to the RRF score.
//
// The package also implements every retrieval variant the paper ablates in
// Tables 2-4: text-only and vector-only modes, the QGA/MQ1/MQ2 query
// expansions, multiplicative title boosting (T5/T50/T500), and searching
// over the LLM-keyword enrichment fields (HSS-KT/HSS-KTC).
package search

import (
	"context"
	"fmt"

	"uniask/internal/embedding"
	"uniask/internal/fusion"
	"uniask/internal/index"
	"uniask/internal/llm"
	"uniask/internal/rerank"
	"uniask/internal/vector"
)

// Mode selects which retrieval components run.
type Mode int

// Retrieval modes.
const (
	// Hybrid runs text + vector search fused with RRF (the deployed mode).
	Hybrid Mode = iota
	// TextOnly runs BM25 full-text search alone (Table 2 ablation).
	TextOnly
	// VectorOnly runs ANN vector search alone (Table 2 ablation).
	VectorOnly
)

// Expansion selects a query-expansion strategy (Table 3).
type Expansion int

// Query-expansion strategies.
const (
	// NoExpansion is the deployed configuration.
	NoExpansion Expansion = iota
	// QGA asks the LLM for a context-free answer and retrieves with the
	// query expanded by that answer.
	QGA
	// MQ1 asks the LLM for related queries and fuses one hybrid search per
	// query.
	MQ1
	// MQ2 asks the LLM for related queries, then runs one hybrid search on
	// the text concatenation and the averaged embedding of all queries.
	MQ2
)

// Options configures a search call. The zero value gives the deployed HSS
// configuration of §7.
type Options struct {
	// TextN is the full-text result count (default 50).
	TextN int
	// VectorK is the ANN neighbor count per vector field (default 15; the
	// paper swept K over {3,...,50} and picked 15).
	VectorK int
	// FinalN is the fused ranking length (default 50).
	FinalN int
	// RRFC is the RRF constant (default 60).
	RRFC int
	// Mode selects hybrid/text/vector retrieval.
	Mode Mode
	// DisableSemanticRerank turns the reranker off (plain hybrid search).
	DisableSemanticRerank bool
	// TitleBoost multiplies the BM25 weight of title matches (0 or 1 =
	// no boost; the paper tried 5, 50, 500).
	TitleBoost float64
	// Expansion selects a query-expansion variant.
	Expansion Expansion
	// RelatedQueries is how many related queries MQ1/MQ2 request (default 3).
	RelatedQueries int
	// SearchKeywordsField includes the LLM-keyword enrichment field among
	// the searchable text fields (HSS-KT / HSS-KTC; the field must exist in
	// the index schema).
	SearchKeywordsField string
	// Filters restrict results by exact match on filterable fields.
	Filters []index.Filter
}

func (o Options) withDefaults() Options {
	if o.TextN <= 0 {
		o.TextN = 50
	}
	if o.VectorK <= 0 {
		o.VectorK = 15
	}
	if o.FinalN <= 0 {
		o.FinalN = 50
	}
	if o.RRFC <= 0 {
		o.RRFC = fusion.DefaultC
	}
	if o.RelatedQueries <= 0 {
		o.RelatedQueries = 3
	}
	return o
}

// Result is one retrieved chunk.
type Result struct {
	// ChunkID is the index chunk identifier.
	ChunkID string
	// ParentID is the KB document the chunk belongs to.
	ParentID string
	// Title, Content and Summary are the retrievable fields.
	Title   string
	Content string
	Summary string
	// Score is the final relevance score (RRF + semantic rerank for HSS).
	Score float64
}

// Searcher executes queries against an index.
type Searcher struct {
	// Index is the chunk index to search.
	Index *index.Index
	// Embedder produces query embeddings for vector search.
	Embedder embedding.Embedder
	// Reranker is the semantic reranking model (nil disables reranking).
	Reranker *rerank.Reranker
	// LLM serves the query-expansion prompts (required only when an
	// Expansion is requested).
	LLM llm.Client
}

// Search retrieves the chunks most relevant to query.
func (s *Searcher) Search(ctx context.Context, query string, opts Options) ([]Result, error) {
	opts = opts.withDefaults()

	switch opts.Expansion {
	case QGA:
		return s.searchQGA(ctx, query, opts)
	case MQ1:
		return s.searchMQ1(ctx, query, opts)
	case MQ2:
		return s.searchMQ2(ctx, query, opts)
	}
	qvec := s.Embedder.Embed(query)
	return s.searchOnce(query, qvec, opts), nil
}

// searchOnce runs one text+vector+RRF+rerank pass with the given query text
// and query vector.
func (s *Searcher) searchOnce(query string, qvec vector.Vector, opts Options) []Result {
	rankings := s.componentRankings(query, qvec, opts)
	fused := fusion.RRF(rankings, opts.RRFC)
	if len(fused) > opts.FinalN {
		fused = fused[:opts.FinalN]
	}
	return s.finalize(query, qvec, fused, opts)
}

// componentRankings produces the per-component rankings RRF merges: one
// from full-text search and one per vector field.
func (s *Searcher) componentRankings(query string, qvec vector.Vector, opts Options) []fusion.Ranking {
	var rankings []fusion.Ranking
	if opts.Mode != VectorOnly {
		textOpts := index.TextOptions{Filters: opts.Filters}
		textOpts.Fields = []string{"title", "content"}
		if opts.SearchKeywordsField != "" {
			textOpts.Fields = append(textOpts.Fields, opts.SearchKeywordsField)
		}
		if opts.TitleBoost > 1 {
			textOpts.FieldWeights = map[string]float64{"title": opts.TitleBoost}
		}
		hits := s.Index.SearchText(query, opts.TextN, textOpts)
		rankings = append(rankings, hitsToRanking(hits))
	}
	if opts.Mode != TextOnly {
		for _, field := range s.Index.VectorFields() {
			hits := s.Index.SearchVector(field, qvec, opts.VectorK, opts.Filters)
			rankings = append(rankings, hitsToRanking(hits))
		}
	}
	return rankings
}

// finalize materializes results and applies semantic reranking: the final
// score is the RRF score plus the reranker score, re-sorted.
func (s *Searcher) finalize(query string, qvec vector.Vector, fused []fusion.Fused, opts Options) []Result {
	results := make([]Result, 0, len(fused))
	for _, f := range fused {
		doc, ok := s.Index.DocByID(f.ID)
		if !ok {
			continue
		}
		results = append(results, Result{
			ChunkID:  doc.ID,
			ParentID: doc.ParentID,
			Title:    doc.Fields["title"],
			Content:  doc.Fields["content"],
			Summary:  doc.Fields["summary"],
			Score:    f.Score,
		})
	}
	if s.Reranker == nil || opts.DisableSemanticRerank {
		return results
	}
	for i := range results {
		doc, _ := s.Index.DocByID(results[i].ChunkID)
		in := rerank.Input{
			ID:            results[i].ChunkID,
			Title:         results[i].Title,
			Content:       results[i].Content,
			ContentVector: doc.Vectors["contentVector"],
		}
		results[i].Score += s.Reranker.Score(query, qvec, in)
	}
	sortResults(results)
	return results
}

// searchQGA expands the query with a context-free LLM answer.
func (s *Searcher) searchQGA(ctx context.Context, query string, opts Options) ([]Result, error) {
	resp, err := s.LLM.Complete(ctx, llm.BuildDirectAnswerPrompt(query))
	if err != nil {
		return nil, fmt.Errorf("search: QGA expansion: %w", err)
	}
	expanded := query + " " + resp.Content
	qvec := s.Embedder.Embed(expanded)
	opts.Expansion = NoExpansion
	return s.searchOnce(expanded, qvec, opts), nil
}

// searchMQ1 fuses one hybrid search per generated related query (plus the
// original).
func (s *Searcher) searchMQ1(ctx context.Context, query string, opts Options) ([]Result, error) {
	queries, err := s.relatedQueries(ctx, query, opts.RelatedQueries)
	if err != nil {
		return nil, err
	}
	queries = append([]string{query}, queries...)
	var rankings []fusion.Ranking
	for _, q := range queries {
		rankings = append(rankings, s.componentRankings(q, s.Embedder.Embed(q), opts)...)
	}
	fused := fusion.RRF(rankings, opts.RRFC)
	if len(fused) > opts.FinalN {
		fused = fused[:opts.FinalN]
	}
	return s.finalize(query, s.Embedder.Embed(query), fused, opts), nil
}

// searchMQ2 runs a single hybrid search over the concatenated text and the
// averaged embedding of all queries.
func (s *Searcher) searchMQ2(ctx context.Context, query string, opts Options) ([]Result, error) {
	queries, err := s.relatedQueries(ctx, query, opts.RelatedQueries)
	if err != nil {
		return nil, err
	}
	queries = append([]string{query}, queries...)
	concat := ""
	vecs := make([]vector.Vector, 0, len(queries))
	for _, q := range queries {
		if concat != "" {
			concat += " "
		}
		concat += q
		vecs = append(vecs, s.Embedder.Embed(q))
	}
	qvec := embedding.Mean(vecs, s.Embedder.Dim())
	opts.Expansion = NoExpansion
	return s.searchOnce(concat, qvec, opts), nil
}

func (s *Searcher) relatedQueries(ctx context.Context, query string, n int) ([]string, error) {
	resp, err := s.LLM.Complete(ctx, llm.BuildRelatedQueriesPrompt(query, n))
	if err != nil {
		return nil, fmt.Errorf("search: related-query expansion: %w", err)
	}
	var out []string
	for _, line := range splitLines(resp.Content) {
		if line != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := trimSpace(s[start:i])
			out = append(out, line)
			start = i + 1
		}
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t' || s[0] == '\r') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

func hitsToRanking(hits []index.Hit) fusion.Ranking {
	r := make(fusion.Ranking, len(hits))
	for i, h := range hits {
		r[i] = h.ID
	}
	return r
}

func sortResults(rs []Result) {
	// Insertion sort is fine for <= 50 results and keeps determinism with
	// explicit tie-breaking by chunk id.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j-1].Score > rs[j].Score ||
				(rs[j-1].Score == rs[j].Score && rs[j-1].ChunkID <= rs[j].ChunkID) {
				break
			}
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}

// ParentRanking collapses a chunk ranking into a KB-document ranking,
// keeping each parent's best-ranked occurrence — the document list shown to
// the user and evaluated against the ground truth.
func ParentRanking(results []Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range results {
		if seen[r.ParentID] {
			continue
		}
		seen[r.ParentID] = true
		out = append(out, r.ParentID)
	}
	return out
}
