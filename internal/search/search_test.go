package search

import (
	"context"
	"fmt"
	"testing"

	"uniask/internal/embedding"
	"uniask/internal/index"
	"uniask/internal/llm"
	"uniask/internal/rerank"
	"uniask/internal/vector"
)

// buildSearcher indexes a small hand-crafted chunk set.
func buildSearcher(t *testing.T) (*Searcher, *embedding.Synth) {
	t.Helper()
	lex := embedding.MapLexicon{
		"blocca": "act:block", "sospende": "act:block",
		"cart": "obj:card", "tesser": "obj:card",
		"bonific": "obj:transfer", "trasferiment": "obj:transfer",
	}
	emb := embedding.NewSynth(64, lex)
	ix := index.New(index.Config{})
	docs := []struct{ id, title, content string }{
		{"d1#0", "Blocco carta di credito", "Per bloccare la carta di credito chiamare il numero verde dedicato."},
		{"d1#1", "Blocco carta di credito", "Il blocco della carta è definitivo dopo la denuncia."},
		{"d2#0", "Bonifico estero", "Il bonifico verso paesi extra SEPA richiede il codice BIC della banca."},
		{"d3#0", "Errore ERR-4032", "In caso di errore ERR-4032 durante il bonifico verificare il codice IBAN."},
		{"d4#0", "Apertura conto corrente", "La procedura di apertura del conto corrente prevede il riconoscimento del cliente."},
	}
	for _, d := range docs {
		err := ix.Add(index.Document{
			ID:       d.id,
			ParentID: d.id[:2],
			Fields:   map[string]string{"title": d.title, "content": d.content},
			Vectors: map[string]vector.Vector{
				"titleVector":   emb.Embed(d.title),
				"contentVector": emb.Embed(d.content),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return &Searcher{
		Index:    ix,
		Embedder: emb,
		Reranker: rerank.New(),
		LLM:      llm.NewSim(llm.DefaultBehavior()),
	}, emb
}

func TestHybridSearchExactQuery(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "bloccare la carta di credito", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ParentID != "d1" {
		t.Fatalf("results = %+v", res)
	}
}

func TestHybridSearchSynonymQuery(t *testing.T) {
	s, _ := buildSearcher(t)
	// Pure paraphrase: "sospendere la tessera" shares no word with d1 but
	// the same concepts; vector search must rescue it.
	res, err := s.Search(context.Background(), "sospendere la tessera", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results for synonym query")
	}
	if res[0].ParentID != "d1" {
		t.Fatalf("synonym query top = %+v", res[0])
	}
}

func TestTextOnlyMisssesSynonyms(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "sospendere la tessera", Options{Mode: TextOnly})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ParentID == "d1" {
			t.Fatalf("text-only search should not match a pure paraphrase: %+v", res)
		}
	}
}

func TestVectorOnlyFindsSynonyms(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "sospendere la tessera", Options{Mode: VectorOnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ParentID != "d1" {
		t.Fatalf("vector-only results = %+v", res)
	}
}

func TestCodeQueryRanksExactDocFirst(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "ERR-4032", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ParentID != "d3" {
		t.Fatalf("code query results = %+v", res)
	}
}

func TestFinalNTruncates(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "carta bonifico conto", Options{FinalN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) > 2 {
		t.Fatalf("FinalN ignored: %d results", len(res))
	}
}

func TestRerankingChangesScores(t *testing.T) {
	s, _ := buildSearcher(t)
	with, _ := s.Search(context.Background(), "bloccare la carta", Options{})
	without, _ := s.Search(context.Background(), "bloccare la carta", Options{DisableSemanticRerank: true})
	if len(with) == 0 || len(without) == 0 {
		t.Fatal("missing results")
	}
	// Reranked scores include the semantic component and must be larger.
	if with[0].Score <= without[0].Score {
		t.Fatalf("rerank score not added: %v vs %v", with[0].Score, without[0].Score)
	}
}

func TestQGAExpansionRuns(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "Come posso bloccare la carta?", Options{Expansion: QGA})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("QGA returned nothing")
	}
}

func TestMQ1ExpansionRuns(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "Come posso bloccare la carta?", Options{Expansion: MQ1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ParentID != "d1" {
		t.Fatalf("MQ1 results = %+v", res)
	}
}

func TestMQ2ExpansionRuns(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "Come posso bloccare la carta?", Options{Expansion: MQ2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ParentID != "d1" {
		t.Fatalf("MQ2 results = %+v", res)
	}
}

func TestExpansionErrorDegrades(t *testing.T) {
	s, _ := buildSearcher(t)
	s.LLM = failingClient{}
	for _, exp := range []Expansion{QGA, MQ1, MQ2} {
		res, deg, err := s.SearchDegraded(context.Background(), "bloccare la carta", Options{Expansion: exp})
		if err != nil {
			t.Fatalf("expansion %d with failing LLM errored: %v", exp, err)
		}
		if !deg.ExpansionSkipped {
			t.Fatalf("expansion %d: degradation not reported: %+v", exp, deg)
		}
		if len(res) == 0 || res[0].ParentID != "d1" {
			t.Fatalf("expansion %d degraded results = %+v", exp, res)
		}
	}
}

type failingClient struct{}

func (failingClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return llm.Response{}, fmt.Errorf("llm down")
}

func TestParentRankingDedupes(t *testing.T) {
	in := []Result{
		{ChunkID: "d1#0", ParentID: "d1"},
		{ChunkID: "d1#1", ParentID: "d1"},
		{ChunkID: "d2#0", ParentID: "d2"},
	}
	got := ParentRanking(in)
	if len(got) != 2 || got[0] != "d1" || got[1] != "d2" {
		t.Fatalf("ParentRanking = %v", got)
	}
	if ParentRanking(nil) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestDeterministicResults(t *testing.T) {
	s, _ := buildSearcher(t)
	a, _ := s.Search(context.Background(), "bloccare carta", Options{})
	b, _ := s.Search(context.Background(), "bloccare carta", Options{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic results at %d", i)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TextN != 50 || o.VectorK != 15 || o.FinalN != 50 || o.RRFC != 60 || o.RelatedQueries != 3 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestSortResults(t *testing.T) {
	rs := []Result{
		{ChunkID: "b", Score: 1},
		{ChunkID: "a", Score: 3},
		{ChunkID: "c", Score: 2},
		{ChunkID: "aa", Score: 2},
	}
	sortResults(rs)
	if rs[0].ChunkID != "a" || rs[1].ChunkID != "aa" || rs[2].ChunkID != "c" || rs[3].ChunkID != "b" {
		t.Fatalf("sortResults = %+v", rs)
	}
}

func TestEmptyQueryYieldsNoResults(t *testing.T) {
	s, _ := buildSearcher(t)
	res, err := s.Search(context.Background(), "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The empty query produces an empty text ranking and a zero query
	// vector; results may be empty or all-zero-scored but must not panic.
	_ = res
}
