package search

import (
	"context"
	"testing"
)

// BenchmarkQueryCacheHit measures a repeated query served from the LRU: the
// steady state of pilot traffic, where the same questions recur within one
// ingestion epoch.
func BenchmarkQueryCacheHit(b *testing.B) {
	s := buildLargeSearcher(b)
	s.Cache = NewQueryCache(0)
	ctx := context.Background()
	query := "bloccare la carta di credito"
	if _, err := s.Search(ctx, query, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(ctx, query, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCacheMiss measures the full uncached pipeline through the
// cache wrapper (lookup miss + singleflight join + store), isolating the
// cache's overhead on cold queries. The entry is purged every iteration so
// each Search recomputes.
func BenchmarkQueryCacheMiss(b *testing.B) {
	s := buildLargeSearcher(b)
	s.Cache = NewQueryCache(0)
	ctx := context.Background()
	query := "bloccare la carta di credito"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cache.Purge()
		if _, err := s.Search(ctx, query, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
