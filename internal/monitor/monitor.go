// Package monitor implements UniAsk's health/usage monitoring (§9, Figure
// 3): a thread-safe metrics registry the services write into, and a
// dashboard snapshot reporting the number of users, feedbacks, average
// response time, failed requests and triggered guardrails.
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is the registry the microservices record events into.
type Metrics struct {
	mu                sync.Mutex
	users             map[string]bool
	queries           int
	failures          int
	guardrails        map[string]int
	feedbacks         int
	positiveFeedbacks int
	totalLatency      time.Duration
}

// New returns an empty registry.
func New() *Metrics {
	return &Metrics{users: make(map[string]bool), guardrails: make(map[string]int)}
}

// RecordQuery logs one user query: who asked, how long the request took,
// which guardrail (if any) fired, and whether the request failed outright.
func (m *Metrics) RecordQuery(user string, latency time.Duration, guardrail string, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.users[user] = true
	m.queries++
	m.totalLatency += latency
	if failed {
		m.failures++
	}
	if guardrail != "" && guardrail != "none" {
		m.guardrails[guardrail]++
	}
}

// RecordFeedback logs one feedback submission.
func (m *Metrics) RecordFeedback(positive bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.feedbacks++
	if positive {
		m.positiveFeedbacks++
	}
}

// Dashboard is a point-in-time snapshot (the Figure 3 page).
type Dashboard struct {
	Users               int
	Queries             int
	Feedbacks           int
	PositiveFeedbacks   int
	AvgResponse         time.Duration
	FailedRequests      int
	GuardrailsTriggered int
	PerGuardrail        map[string]int
}

// Snapshot reads the current dashboard.
func (m *Metrics) Snapshot() Dashboard {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := Dashboard{
		Users:             len(m.users),
		Queries:           m.queries,
		Feedbacks:         m.feedbacks,
		PositiveFeedbacks: m.positiveFeedbacks,
		FailedRequests:    m.failures,
		PerGuardrail:      make(map[string]int, len(m.guardrails)),
	}
	for k, v := range m.guardrails {
		d.PerGuardrail[k] = v
		d.GuardrailsTriggered += v
	}
	if m.queries > 0 {
		d.AvgResponse = m.totalLatency / time.Duration(m.queries)
	}
	return d
}

// String renders the dashboard page.
func (d Dashboard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Monitoring dashboard\n")
	fmt.Fprintf(&b, "  users:                 %d\n", d.Users)
	fmt.Fprintf(&b, "  queries:               %d\n", d.Queries)
	fmt.Fprintf(&b, "  feedbacks:             %d (%d positive)\n", d.Feedbacks, d.PositiveFeedbacks)
	fmt.Fprintf(&b, "  avg response time:     %v\n", d.AvgResponse.Round(time.Millisecond))
	fmt.Fprintf(&b, "  failed requests:       %d\n", d.FailedRequests)
	fmt.Fprintf(&b, "  guardrails triggered:  %d\n", d.GuardrailsTriggered)
	keys := make([]string, 0, len(d.PerGuardrail))
	for k := range d.PerGuardrail {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "    %-20s %d\n", k+":", d.PerGuardrail[k])
	}
	return b.String()
}
