// Package monitor implements UniAsk's health/usage monitoring (§9, Figure
// 3): a thread-safe metrics registry the services write into, and a
// dashboard snapshot reporting the number of users, feedbacks, average
// response time, failed requests and triggered guardrails.
//
// The registry is also a pipeline.Observer: wired into the query pipeline
// (core.Engine.SetObserver) it aggregates per-stage call counts, errors,
// latency and input/output sizes for every Figure-1 stage — filter,
// retrieval, fusion, rerank, generation, guardrails — surfaced both in the
// dashboard string and in the server's /api/dashboard JSON.
package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"uniask/internal/pipeline"
	"uniask/internal/trace"
)

// Metrics is the registry the microservices record events into.
//
// Locking: the stage-aggregate map lives under its own stageMu, separate
// from the registry lock. ObserveStage fires several times per query on the
// pipeline hot path; splitting the locks means stage reports never contend
// with RecordQuery/RecordFeedback writers or a dashboard Snapshot walking
// the registry maps.
type Metrics struct {
	mu                 sync.Mutex
	users              map[string]bool
	queries            int
	failures           int
	guardrails         map[string]int
	feedbacks          int
	positiveFeedbacks  int
	totalLatency       time.Duration
	breakerStates      map[string]string
	breakerTransitions map[string]int
	degradedQueries    int
	degradedParts      map[string]int
	shardSource        func() []ShardGauge
	segmentSource      func() []SegmentGauge
	cacheSource        func() (CacheGauge, bool)
	tenantSource       func() []TenantGauge
	sessionSource      func() (SessionGauge, bool)
	rerankSource       func() []RerankGauge

	stageMu sync.Mutex
	stages  map[string]*stageAgg
}

// stageAgg accumulates one pipeline stage's reports.
type stageAgg struct {
	count        int
	errors       int
	totalLatency time.Duration
	totalIn      int
	totalOut     int
	// maxLatency is the worst single execution seen; exemplar is the trace
	// ID of the worst *traced* execution (exemplarLatency its latency), the
	// dashboard's link from an aggregate to one concrete slow request.
	maxLatency      time.Duration
	exemplar        string
	exemplarLatency time.Duration
}

// New returns an empty registry.
func New() *Metrics {
	return &Metrics{
		users:              make(map[string]bool),
		guardrails:         make(map[string]int),
		stages:             make(map[string]*stageAgg),
		breakerStates:      make(map[string]string),
		breakerTransitions: make(map[string]int),
		degradedParts:      make(map[string]int),
	}
}

// RecordBreakerTransition logs one circuit-breaker state change; the gauge
// keeps the latest state per dependency plus a transition counter. Wire it
// to core.Engine.SetBreakerNotify.
func (m *Metrics) RecordBreakerTransition(name, from, to string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.breakerStates[name] = to
	m.breakerTransitions[name]++
}

// RecordDegraded logs one query answered in degraded mode, with the parts
// that were shed ("vector", "expansion", "retrieval-components",
// "generation").
func (m *Metrics) RecordDegraded(parts []string) {
	if len(parts) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.degradedQueries++
	for _, p := range parts {
		m.degradedParts[p]++
	}
}

// ShardGauge is one index shard's dashboard row: size gauges plus the
// shard-local query latency the facade records on every fan-out.
type ShardGauge struct {
	// Shard is the shard number.
	Shard int
	// Docs counts chunks ever inserted (including tombstones), Live the
	// searchable ones, Tombstones the deleted-but-unreclaimed ones.
	Docs       int
	Live       int
	Tombstones int
	// Postings counts inverted-index posting entries — the shard's dominant
	// memory term.
	Postings int
	// Queries and AvgQueryLatency aggregate the shard-local search calls.
	Queries         uint64
	AvgQueryLatency time.Duration
}

// SetShardSource installs a provider polled at Snapshot time for per-shard
// gauges (nil when the engine runs a monolithic index). The server wires
// the sharded facade's ShardStats here.
func (m *Metrics) SetShardSource(fn func() []ShardGauge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardSource = fn
}

// SegmentGauge is one segmented store's dashboard row: how much live
// ingestion sits unpublished in the memtable, how many immutable segments
// back queries, and how far the background compactor has to go.
type SegmentGauge struct {
	// Shard is the owning shard number (0 on a monolithic engine).
	Shard int
	// MemtableDocs is the number of chunks absorbed but not yet sealed.
	MemtableDocs int
	// Segments is the current sealed-segment count; Backlog is how many of
	// them exceed the compaction fan-in (0 = compactor keeping up).
	Segments int
	Backlog  int
	// Seals and Compactions count lifetime memtable seals and completed
	// background merges.
	Seals       uint64
	Compactions uint64
	// StatsKey is the store's current published-stats snapshot key; it only
	// moves when a publication changed global BM25 statistics.
	StatsKey uint64
}

// SetSegmentSource installs a provider polled at Snapshot time for
// per-store segment gauges. The server wires the engine's SegmentStats
// here.
func (m *Metrics) SetSegmentSource(fn func() []SegmentGauge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.segmentSource = fn
}

// CacheGauge is the query cache's dashboard row. HitRate is the headline
// number for live-ingestion health: with snapshot-keyed invalidation it
// should stay high while writes land on other shards' memtables.
type CacheGauge struct {
	Hits            uint64
	Misses          uint64
	HitRate         float64
	Entries         int
	DeleteEvictions uint64
}

// SetCacheSource installs a provider polled at Snapshot time for the query
// cache gauge; ok=false (caching disabled) leaves the dashboard row empty.
func (m *Metrics) SetCacheSource(fn func() (CacheGauge, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheSource = fn
}

// TenantGauge is one tenant's dashboard row in multi-tenant serving: the
// admission outcomes (admitted / queued / shed, with the shed broken down
// by gate), current consumption against the configured envelope, the
// tenant's recent p99, and its query-cache partition effectiveness. The
// noisy-neighbor triage runbook (docs/OPERATIONS.md) reads these first.
type TenantGauge struct {
	// Tenant is the tenant ID; Class its priority class ("interactive" or
	// "best-effort").
	Tenant string
	Class  string
	// Admitted, Queued and Shed count lifetime admission outcomes;
	// ShedByReason splits Shed by gate ("rate-limit",
	// "tenant-concurrency", "saturated").
	Admitted     uint64
	Queued       uint64
	Shed         uint64
	ShedByReason map[string]uint64
	// Inflight is the tenant's current in-flight queries; RateLimit and
	// MaxConcurrent echo the effective limits so consumption reads next to
	// the envelope.
	Inflight      int
	RateLimit     float64
	MaxConcurrent int
	// P99 is the tenant's recent request latency (admission-to-release).
	P99 time.Duration
	// CacheHitRate / CacheEntries describe the tenant's query-cache
	// partition; HasCache is false when the tenant opted out.
	CacheHitRate float64
	CacheEntries int
	HasCache     bool
}

// SetTenantSource installs a provider polled at Snapshot time for
// per-tenant admission gauges. The server wires the admission controller's
// Stats (joined with the cache pool's partition stats) here.
func (m *Metrics) SetTenantSource(fn func() []TenantGauge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenantSource = fn
}

// SessionGauge is the conversational layer's dashboard row: live session
// and stream population plus the counters the stuck-streams runbook reads
// (heartbeats prove the server side is alive; disconnects say clients are
// going away mid-turn).
type SessionGauge struct {
	// Live is the current session count; Turns the retained turns across
	// them. Expired and Evicted count TTL and LRU-budget drops.
	Live    int
	Turns   int
	Expired uint64
	Evicted uint64
	// OpenStreams is the number of SSE streams currently open;
	// StreamsOpened/StreamsClosed are lifetime counters.
	OpenStreams   int64
	StreamsOpened uint64
	StreamsClosed uint64
	// Heartbeats counts keep-alive comments written to idle streams;
	// Disconnects counts clients that vanished before the terminal event.
	Heartbeats  uint64
	Disconnects uint64
}

// SetSessionSource installs a provider polled at Snapshot time for the
// session gauge; ok=false (no session store) leaves the row empty.
func (m *Metrics) SetSessionSource(fn func() (SessionGauge, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionSource = fn
}

// RerankGauge is one reranker's click-recalibration dashboard row (one per
// tenant in multi-tenant serving, one total otherwise).
type RerankGauge struct {
	// Tenant is the owning tenant ("" on a single-tenant engine).
	Tenant string
	// Clicks counts feedback events folded into the weights; Version is
	// the current weight version (the query cache keys on it).
	Clicks  uint64
	Version uint64
	// Drift is the largest parameter excursion from the factory
	// calibration in envelope units (1.0 = pinned at the clamp).
	Drift float64
}

// SetRerankSource installs a provider polled at Snapshot time for the
// rerank recalibration gauges.
func (m *Metrics) SetRerankSource(fn func() []RerankGauge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rerankSource = fn
}

// RecordQuery logs one user query: who asked, how long the request took,
// which guardrail (if any) fired, and whether the request failed outright.
func (m *Metrics) RecordQuery(user string, latency time.Duration, guardrail string, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.users[user] = true
	m.queries++
	m.totalLatency += latency
	if failed {
		m.failures++
	}
	if guardrail != "" && guardrail != "none" {
		m.guardrails[guardrail]++
	}
}

// RecordFeedback logs one feedback submission.
func (m *Metrics) RecordFeedback(positive bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.feedbacks++
	if positive {
		m.positiveFeedbacks++
	}
}

// ObserveStage implements pipeline.Observer: one report per stage
// execution, aggregated into per-stage counters and latency.
func (m *Metrics) ObserveStage(info pipeline.StageInfo) {
	m.observeStage("", info)
}

// ObserveStageCtx implements pipeline.CtxObserver: like ObserveStage, but
// when the reporting request is traced its trace ID competes to become the
// stage's worst-latency exemplar — the dashboard aggregate then links
// straight to a full span tree at /api/traces/{id}.
func (m *Metrics) ObserveStageCtx(ctx context.Context, info pipeline.StageInfo) {
	m.observeStage(trace.ContextID(ctx), info)
}

func (m *Metrics) observeStage(traceID string, info pipeline.StageInfo) {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	agg, ok := m.stages[info.Stage]
	if !ok {
		agg = &stageAgg{}
		m.stages[info.Stage] = agg
	}
	agg.count++
	agg.totalLatency += info.Duration
	agg.totalIn += info.In
	agg.totalOut += info.Out
	if info.Err != nil {
		agg.errors++
	}
	if info.Duration > agg.maxLatency {
		agg.maxLatency = info.Duration
	}
	if traceID != "" && (agg.exemplar == "" || info.Duration > agg.exemplarLatency) {
		agg.exemplar = traceID
		agg.exemplarLatency = info.Duration
	}
}

// StageStats is the dashboard view of one pipeline stage.
type StageStats struct {
	// Stage is the stage name (pipeline.Stage* or custom).
	Stage string
	// Count and Errors are executions and failed executions (cancellation
	// counts as a failure).
	Count  int
	Errors int
	// AvgLatency is mean stage latency over all executions; MaxLatency is
	// the worst single execution.
	AvgLatency time.Duration
	MaxLatency time.Duration
	// ExemplarTraceID is the trace of the worst-latency traced execution
	// (empty when no traced request has reported) — fetch it from
	// /api/traces/{id} to see where that slow sample spent its time.
	ExemplarTraceID string
	// AvgIn and AvgOut are the mean input/output sizes (items).
	AvgIn, AvgOut float64
}

// Dashboard is a point-in-time snapshot (the Figure 3 page).
type Dashboard struct {
	Users               int
	Queries             int
	Feedbacks           int
	PositiveFeedbacks   int
	AvgResponse         time.Duration
	FailedRequests      int
	GuardrailsTriggered int
	PerGuardrail        map[string]int
	// Stages holds per-pipeline-stage latency and size aggregates, in
	// query-flow order (filter … guardrails, then custom stages).
	Stages []StageStats
	// DegradedQueries counts queries answered at reduced fidelity, and
	// DegradedParts breaks them down by what was shed.
	DegradedQueries int
	DegradedParts   map[string]int
	// Breakers maps each circuit breaker to its latest observed state, and
	// BreakerTransitions counts its state changes.
	Breakers           map[string]string
	BreakerTransitions map[string]int
	// Shards holds per-shard index gauges (nil on a monolithic index).
	Shards []ShardGauge
	// Segments holds per-store segmented-index gauges (one row per shard,
	// one total on a monolithic engine).
	Segments []SegmentGauge
	// Cache holds the query-cache gauge; HasCache is false when caching is
	// disabled or never wired.
	Cache    CacheGauge
	HasCache bool
	// Tenants holds per-tenant admission gauges (nil outside multi-tenant
	// serving).
	Tenants []TenantGauge
	// Sessions holds the conversational-layer gauge; HasSessions is false
	// when no session store is wired.
	Sessions    SessionGauge
	HasSessions bool
	// Rerank holds the click-recalibration gauges (one row per reranker).
	Rerank []RerankGauge
}

// Snapshot reads the current dashboard.
func (m *Metrics) Snapshot() Dashboard {
	m.mu.Lock()
	src := m.shardSource
	segSrc := m.segmentSource
	cacheSrc := m.cacheSource
	tenantSrc := m.tenantSource
	sessionSrc := m.sessionSource
	rerankSrc := m.rerankSource
	m.mu.Unlock()
	var shards []ShardGauge
	if src != nil {
		// Poll outside the registry lock: the source reads the shards' own
		// locks and must not nest under m.mu.
		shards = src()
	}
	var segments []SegmentGauge
	if segSrc != nil {
		segments = segSrc()
	}
	var cache CacheGauge
	var hasCache bool
	if cacheSrc != nil {
		cache, hasCache = cacheSrc()
	}
	var tenants []TenantGauge
	if tenantSrc != nil {
		tenants = tenantSrc()
	}
	var sessions SessionGauge
	var hasSessions bool
	if sessionSrc != nil {
		sessions, hasSessions = sessionSrc()
	}
	var rerankRows []RerankGauge
	if rerankSrc != nil {
		rerankRows = rerankSrc()
	}
	stages := m.stageStats() // under stageMu only, never nested in m.mu
	m.mu.Lock()
	defer m.mu.Unlock()
	d := Dashboard{
		Users:              len(m.users),
		Queries:            m.queries,
		Feedbacks:          m.feedbacks,
		PositiveFeedbacks:  m.positiveFeedbacks,
		FailedRequests:     m.failures,
		PerGuardrail:       make(map[string]int, len(m.guardrails)),
		DegradedQueries:    m.degradedQueries,
		DegradedParts:      make(map[string]int, len(m.degradedParts)),
		Breakers:           make(map[string]string, len(m.breakerStates)),
		BreakerTransitions: make(map[string]int, len(m.breakerTransitions)),
	}
	for k, v := range m.guardrails {
		d.PerGuardrail[k] = v
		d.GuardrailsTriggered += v
	}
	for k, v := range m.degradedParts {
		d.DegradedParts[k] = v
	}
	for k, v := range m.breakerStates {
		d.Breakers[k] = v
	}
	for k, v := range m.breakerTransitions {
		d.BreakerTransitions[k] = v
	}
	if m.queries > 0 {
		d.AvgResponse = m.totalLatency / time.Duration(m.queries)
	}
	d.Stages = stages
	sort.Slice(d.Stages, func(i, j int) bool {
		oi, oj := pipeline.StageOrder(d.Stages[i].Stage), pipeline.StageOrder(d.Stages[j].Stage)
		if oi != oj {
			return oi < oj
		}
		return d.Stages[i].Stage < d.Stages[j].Stage
	})
	d.Shards = shards
	d.Segments = segments
	d.Cache, d.HasCache = cache, hasCache
	d.Tenants = tenants
	d.Sessions, d.HasSessions = sessions, hasSessions
	d.Rerank = rerankRows
	return d
}

// TenantByID returns one tenant's gauge row (zero row, false when absent).
func (d Dashboard) TenantByID(id string) (TenantGauge, bool) {
	for _, t := range d.Tenants {
		if t.Tenant == id {
			return t, true
		}
	}
	return TenantGauge{}, false
}

// stageStats snapshots the per-stage aggregates under stageMu.
func (m *Metrics) stageStats() []StageStats {
	m.stageMu.Lock()
	defer m.stageMu.Unlock()
	out := make([]StageStats, 0, len(m.stages))
	for name, agg := range m.stages {
		s := StageStats{
			Stage: name, Count: agg.count, Errors: agg.errors,
			MaxLatency: agg.maxLatency, ExemplarTraceID: agg.exemplar,
		}
		if agg.count > 0 {
			s.AvgLatency = agg.totalLatency / time.Duration(agg.count)
			s.AvgIn = float64(agg.totalIn) / float64(agg.count)
			s.AvgOut = float64(agg.totalOut) / float64(agg.count)
		}
		out = append(out, s)
	}
	return out
}

// StageByName returns the stats for one stage (zero value when absent).
func (d Dashboard) StageByName(stage string) (StageStats, bool) {
	for _, s := range d.Stages {
		if s.Stage == stage {
			return s, true
		}
	}
	return StageStats{}, false
}

// String renders the dashboard page.
func (d Dashboard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Monitoring dashboard\n")
	fmt.Fprintf(&b, "  users:                 %d\n", d.Users)
	fmt.Fprintf(&b, "  queries:               %d\n", d.Queries)
	fmt.Fprintf(&b, "  feedbacks:             %d (%d positive)\n", d.Feedbacks, d.PositiveFeedbacks)
	fmt.Fprintf(&b, "  avg response time:     %v\n", d.AvgResponse.Round(time.Millisecond))
	fmt.Fprintf(&b, "  failed requests:       %d\n", d.FailedRequests)
	fmt.Fprintf(&b, "  guardrails triggered:  %d\n", d.GuardrailsTriggered)
	keys := make([]string, 0, len(d.PerGuardrail))
	for k := range d.PerGuardrail {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "    %-20s %d\n", k+":", d.PerGuardrail[k])
	}
	if d.DegradedQueries > 0 {
		fmt.Fprintf(&b, "  degraded queries:      %d\n", d.DegradedQueries)
		parts := make([]string, 0, len(d.DegradedParts))
		for k := range d.DegradedParts {
			parts = append(parts, k)
		}
		sort.Strings(parts)
		for _, k := range parts {
			fmt.Fprintf(&b, "    %-20s %d\n", k+":", d.DegradedParts[k])
		}
	}
	if len(d.Breakers) > 0 {
		fmt.Fprintf(&b, "  circuit breakers:      (state / transitions)\n")
		names := make([]string, 0, len(d.Breakers))
		for k := range d.Breakers {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&b, "    %-12s %-10s %d\n", k+":", d.Breakers[k], d.BreakerTransitions[k])
		}
	}
	if len(d.Shards) > 0 {
		fmt.Fprintf(&b, "  index shards:          (docs / live / postings / queries / avg latency)\n")
		for _, s := range d.Shards {
			fmt.Fprintf(&b, "    shard %-6d %8d  %8d  %10d  %8d  %10v\n",
				s.Shard, s.Docs, s.Live, s.Postings, s.Queries, s.AvgQueryLatency.Round(time.Microsecond))
		}
	}
	if len(d.Segments) > 0 {
		fmt.Fprintf(&b, "  index segments:        (memtable / segments / backlog / seals / compactions)\n")
		for _, s := range d.Segments {
			fmt.Fprintf(&b, "    shard %-6d %8d  %8d  %7d  %6d  %11d\n",
				s.Shard, s.MemtableDocs, s.Segments, s.Backlog, s.Seals, s.Compactions)
		}
	}
	if d.HasCache {
		fmt.Fprintf(&b, "  query cache:           %.0f%% hit rate (%d hits / %d misses, %d entries, %d delete evictions)\n",
			d.Cache.HitRate*100, d.Cache.Hits, d.Cache.Misses, d.Cache.Entries, d.Cache.DeleteEvictions)
	}
	if len(d.Tenants) > 0 {
		fmt.Fprintf(&b, "  tenants:               (class / admitted / shed / inflight / p99 / cache hit)\n")
		for _, t := range d.Tenants {
			cacheCol := "-"
			if t.HasCache {
				cacheCol = fmt.Sprintf("%.0f%%", t.CacheHitRate*100)
			}
			fmt.Fprintf(&b, "    %-14s %-12s %8d  %8d  %4d  %10v  %6s\n",
				t.Tenant+":", t.Class, t.Admitted, t.Shed, t.Inflight, t.P99.Round(time.Microsecond), cacheCol)
		}
	}
	if d.HasSessions {
		s := d.Sessions
		fmt.Fprintf(&b, "  sessions:              %d live (%d turns, %d expired, %d evicted)\n",
			s.Live, s.Turns, s.Expired, s.Evicted)
		fmt.Fprintf(&b, "  streams:               %d open (%d opened / %d closed, %d heartbeats, %d disconnects)\n",
			s.OpenStreams, s.StreamsOpened, s.StreamsClosed, s.Heartbeats, s.Disconnects)
	}
	if len(d.Rerank) > 0 {
		fmt.Fprintf(&b, "  rerank feedback:       (clicks / weight version / drift)\n")
		for _, r := range d.Rerank {
			name := r.Tenant
			if name == "" {
				name = "engine"
			}
			fmt.Fprintf(&b, "    %-14s %6d  %6d  %.2f\n", name+":", r.Clicks, r.Version, r.Drift)
		}
	}
	b.WriteString(d.StagesString())
	return b.String()
}

// StagesString renders the per-stage pipeline section of the dashboard
// (empty when no stage was ever observed).
func (d Dashboard) StagesString() string {
	if len(d.Stages) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  pipeline stages:       (calls / errors / avg latency / avg in -> out)\n")
	for _, s := range d.Stages {
		fmt.Fprintf(&b, "    %-12s %6d  %4d  %10v  %8.1f -> %.1f",
			s.Stage+":", s.Count, s.Errors, s.AvgLatency.Round(time.Microsecond), s.AvgIn, s.AvgOut)
		if s.ExemplarTraceID != "" {
			fmt.Fprintf(&b, "  worst=%v trace=%s", s.MaxLatency.Round(time.Microsecond), s.ExemplarTraceID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
