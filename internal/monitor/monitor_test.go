package monitor

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSnapshotBasics(t *testing.T) {
	m := New()
	m.RecordQuery("alice", 100*time.Millisecond, "none", false)
	m.RecordQuery("bob", 300*time.Millisecond, "citation", false)
	m.RecordQuery("alice", 200*time.Millisecond, "", true)
	m.RecordFeedback(true)
	m.RecordFeedback(false)

	d := m.Snapshot()
	if d.Users != 2 {
		t.Fatalf("users = %d", d.Users)
	}
	if d.Queries != 3 {
		t.Fatalf("queries = %d", d.Queries)
	}
	if d.FailedRequests != 1 {
		t.Fatalf("failed = %d", d.FailedRequests)
	}
	if d.GuardrailsTriggered != 1 || d.PerGuardrail["citation"] != 1 {
		t.Fatalf("guardrails = %+v", d.PerGuardrail)
	}
	if d.Feedbacks != 2 || d.PositiveFeedbacks != 1 {
		t.Fatalf("feedbacks = %d/%d", d.Feedbacks, d.PositiveFeedbacks)
	}
	if d.AvgResponse != 200*time.Millisecond {
		t.Fatalf("avg response = %v", d.AvgResponse)
	}
}

func TestNoneGuardrailNotCounted(t *testing.T) {
	m := New()
	m.RecordQuery("u", time.Millisecond, "none", false)
	m.RecordQuery("u", time.Millisecond, "", false)
	if d := m.Snapshot(); d.GuardrailsTriggered != 0 {
		t.Fatalf("guardrails = %d", d.GuardrailsTriggered)
	}
}

func TestEmptySnapshot(t *testing.T) {
	d := New().Snapshot()
	if d.Users != 0 || d.Queries != 0 || d.AvgResponse != 0 {
		t.Fatalf("empty snapshot = %+v", d)
	}
}

func TestDashboardString(t *testing.T) {
	m := New()
	m.RecordQuery("u", 50*time.Millisecond, "rouge", false)
	m.RecordFeedback(true)
	out := m.Snapshot().String()
	for _, want := range []string{"Figure 3", "users", "rouge", "feedbacks", "avg response"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.RecordQuery("user", time.Millisecond, "none", false)
				m.RecordFeedback(j%2 == 0)
			}
		}(i)
	}
	wg.Wait()
	d := m.Snapshot()
	if d.Queries != 800 || d.Feedbacks != 800 {
		t.Fatalf("lost events: %d queries, %d feedbacks", d.Queries, d.Feedbacks)
	}
}
