package monitor

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"uniask/internal/pipeline"
	"uniask/internal/trace"
)

func TestSnapshotBasics(t *testing.T) {
	m := New()
	m.RecordQuery("alice", 100*time.Millisecond, "none", false)
	m.RecordQuery("bob", 300*time.Millisecond, "citation", false)
	m.RecordQuery("alice", 200*time.Millisecond, "", true)
	m.RecordFeedback(true)
	m.RecordFeedback(false)

	d := m.Snapshot()
	if d.Users != 2 {
		t.Fatalf("users = %d", d.Users)
	}
	if d.Queries != 3 {
		t.Fatalf("queries = %d", d.Queries)
	}
	if d.FailedRequests != 1 {
		t.Fatalf("failed = %d", d.FailedRequests)
	}
	if d.GuardrailsTriggered != 1 || d.PerGuardrail["citation"] != 1 {
		t.Fatalf("guardrails = %+v", d.PerGuardrail)
	}
	if d.Feedbacks != 2 || d.PositiveFeedbacks != 1 {
		t.Fatalf("feedbacks = %d/%d", d.Feedbacks, d.PositiveFeedbacks)
	}
	if d.AvgResponse != 200*time.Millisecond {
		t.Fatalf("avg response = %v", d.AvgResponse)
	}
}

func TestNoneGuardrailNotCounted(t *testing.T) {
	m := New()
	m.RecordQuery("u", time.Millisecond, "none", false)
	m.RecordQuery("u", time.Millisecond, "", false)
	if d := m.Snapshot(); d.GuardrailsTriggered != 0 {
		t.Fatalf("guardrails = %d", d.GuardrailsTriggered)
	}
}

func TestEmptySnapshot(t *testing.T) {
	d := New().Snapshot()
	if d.Users != 0 || d.Queries != 0 || d.AvgResponse != 0 {
		t.Fatalf("empty snapshot = %+v", d)
	}
}

func TestDashboardString(t *testing.T) {
	m := New()
	m.RecordQuery("u", 50*time.Millisecond, "rouge", false)
	m.RecordFeedback(true)
	out := m.Snapshot().String()
	for _, want := range []string{"Figure 3", "users", "rouge", "feedbacks", "avg response"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestObserveStageAggregates(t *testing.T) {
	m := New()
	m.ObserveStage(pipeline.StageInfo{Stage: pipeline.StageRetrieval, Duration: 10 * time.Millisecond, In: 3, Out: 90})
	m.ObserveStage(pipeline.StageInfo{Stage: pipeline.StageRetrieval, Duration: 30 * time.Millisecond, In: 3, Out: 110})
	m.ObserveStage(pipeline.StageInfo{Stage: pipeline.StageFusion, Duration: time.Millisecond, In: 200, Out: 50, Err: errors.New("x")})

	d := m.Snapshot()
	r, ok := d.StageByName(pipeline.StageRetrieval)
	if !ok {
		t.Fatalf("retrieval stage missing: %+v", d.Stages)
	}
	if r.Count != 2 || r.Errors != 0 || r.AvgLatency != 20*time.Millisecond || r.AvgIn != 3 || r.AvgOut != 100 {
		t.Fatalf("retrieval stats = %+v", r)
	}
	f, ok := d.StageByName(pipeline.StageFusion)
	if !ok || f.Count != 1 || f.Errors != 1 {
		t.Fatalf("fusion stats = %+v", f)
	}
	if _, ok := d.StageByName("nonexistent"); ok {
		t.Fatal("StageByName invented a stage")
	}
}

func TestSnapshotStagesOrdered(t *testing.T) {
	m := New()
	for _, s := range []string{pipeline.StageGuardrails, "custom", pipeline.StageFilter, pipeline.StageRerank} {
		m.ObserveStage(pipeline.StageInfo{Stage: s})
	}
	d := m.Snapshot()
	var names []string
	for _, s := range d.Stages {
		names = append(names, s.Stage)
	}
	want := []string{pipeline.StageFilter, pipeline.StageRerank, pipeline.StageGuardrails, "custom"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stage order = %v, want %v", names, want)
		}
	}
}

func TestDashboardStringIncludesStages(t *testing.T) {
	m := New()
	m.ObserveStage(pipeline.StageInfo{Stage: pipeline.StageFilter, Duration: time.Millisecond, In: 1, Out: 1})
	out := m.Snapshot().String()
	for _, want := range []string{"pipeline stages", "filter:"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	// A dashboard with no stage reports omits the section entirely.
	if strings.Contains(New().Snapshot().String(), "pipeline stages") {
		t.Error("empty dashboard shows a stage section")
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.RecordQuery("user", time.Millisecond, "none", false)
				m.RecordFeedback(j%2 == 0)
				m.ObserveStage(pipeline.StageInfo{Stage: pipeline.StageRetrieval, Duration: time.Microsecond, In: 3, Out: 50})
			}
		}(i)
	}
	wg.Wait()
	d := m.Snapshot()
	if d.Queries != 800 || d.Feedbacks != 800 {
		t.Fatalf("lost events: %d queries, %d feedbacks", d.Queries, d.Feedbacks)
	}
	if s, _ := d.StageByName(pipeline.StageRetrieval); s.Count != 800 {
		t.Fatalf("lost stage reports: %+v", s)
	}
}

// tracedCtx returns a context carrying a sampled trace, plus its id.
func tracedCtx(t *testing.T, tr *trace.Tracer) (context.Context, string) {
	t.Helper()
	ctx, req := tr.StartRequest(context.Background(), "ask")
	if !req.Sampled() {
		t.Fatal("request must be sampled")
	}
	return ctx, req.TraceID()
}

func TestStageExemplarTracksWorstLatency(t *testing.T) {
	m := New()
	tr := trace.New(trace.Config{})
	fast, fastID := tracedCtx(t, tr)
	slow, slowID := tracedCtx(t, tr)

	m.ObserveStageCtx(fast, pipeline.StageInfo{Stage: pipeline.StageRerank, Duration: 2 * time.Millisecond})
	m.ObserveStageCtx(slow, pipeline.StageInfo{Stage: pipeline.StageRerank, Duration: 9 * time.Millisecond})
	// A later, faster traced run must not displace the worst exemplar.
	m.ObserveStageCtx(fast, pipeline.StageInfo{Stage: pipeline.StageRerank, Duration: 1 * time.Millisecond})
	// An untraced run raises the max but cannot become the exemplar.
	m.ObserveStage(pipeline.StageInfo{Stage: pipeline.StageRerank, Duration: 20 * time.Millisecond})

	s, ok := m.Snapshot().StageByName(pipeline.StageRerank)
	if !ok {
		t.Fatal("rerank stage missing")
	}
	if s.MaxLatency != 20*time.Millisecond {
		t.Fatalf("MaxLatency = %v, want 20ms", s.MaxLatency)
	}
	if s.ExemplarTraceID != slowID {
		t.Fatalf("exemplar = %q, want the slow trace %q (fast was %q)", s.ExemplarTraceID, slowID, fastID)
	}
	if !strings.Contains(m.Snapshot().StagesString(), "trace="+slowID) {
		t.Fatal("StagesString must surface the exemplar trace id")
	}
}

// TestConcurrentStageObserversVsSnapshot hammers the stage-aggregate map
// from observer and reader goroutines at once; run with -race this proves
// the stageMu split (satellite of the tracing PR) is sound.
func TestConcurrentStageObserversVsSnapshot(t *testing.T) {
	m := New()
	tr := trace.New(trace.Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, _ := tr.StartRequest(context.Background(), "ask")
			for j := 0; j < 200; j++ {
				m.ObserveStageCtx(ctx, pipeline.StageInfo{Stage: pipeline.StageRetrieval, Duration: time.Duration(j) * time.Microsecond, In: 1, Out: 1})
				m.ObserveStage(pipeline.StageInfo{Stage: pipeline.StageFusion, Duration: time.Microsecond})
				m.RecordQuery("user", time.Millisecond, "none", false)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d := m.Snapshot()
				_ = d.StagesString()
				_ = d.String()
			}
		}
	}()
	// Let the reader contend for a few ms, then stop it and join everyone.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < 5; i++ {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	s, _ := m.Snapshot().StageByName(pipeline.StageRetrieval)
	if s.Count != 800 {
		t.Fatalf("lost stage reports under contention: %d, want 800", s.Count)
	}
	if s.ExemplarTraceID == "" {
		t.Fatal("traced reports must leave an exemplar")
	}
}
